/// E4 — the paper's WAN table: the same Pastry exchange across a
/// California-France WAN. Wire time dominates (~1-2 s in the paper), so the
/// relative gaps between systems compress, but the ordering survives through
/// message-size differences (XML's encoding is several times larger).
#include "bench_gras_tables.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 100;
  // Trans-atlantic path of the era: ~90 ms one-way, a few Mb/s achievable.
  bench::print_table("E4: Pastry message exchange on a WAN (California - France)",
                     4e3, 9e-2, reps);
  std::printf("paper shape: every system ~1-2 s; relative gaps much smaller than on the LAN,\n");
  std::printf("but XML remains measurably slower (bigger message on the same wire)\n");
  return 0;
}
