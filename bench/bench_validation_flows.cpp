/// E1 — the paper's validation figure: per-flow transfer rates for 10 random
/// flows on a BRITE-generated topology, compared across NS2-like and
/// GTNetS-like packet-level simulation and the SimGrid fluid model.
/// Paper claim: fluid rates within +/-15% of packet level, most within a few
/// percent; simulation orders of magnitude faster (see bench_simulation_speed).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "pkt/pkt.hpp"
#include "xbt/config.hpp"

namespace {

std::vector<double> fluid_rates(const bench::ValidationScenario& sc, double bytes) {
  sg::platform::Platform copy = sc.platform;
  sg::core::Engine engine(std::move(copy));
  std::vector<sg::core::ActionPtr> comms;
  comms.reserve(sc.flows.size());
  for (const auto& f : sc.flows)
    comms.push_back(engine.comm_start(f.src, f.dst, bytes));
  while (engine.running_action_count() > 0)
    engine.run_until();
  std::vector<double> rates;
  rates.reserve(comms.size());
  for (const auto& c : comms)
    rates.push_back(bytes / c->finish_time());
  return rates;
}

std::vector<double> packet_rates(const bench::ValidationScenario& sc, double bytes,
                                 const sg::pkt::TcpParams& params) {
  sg::pkt::PacketNet net(sc.platform, params);
  for (const auto& f : sc.flows)
    net.add_flow({f.src, f.dst, bytes, 0.0});
  net.run();
  std::vector<double> rates;
  for (size_t i = 0; i < sc.flows.size(); ++i)
    rates.push_back(bytes / net.result(static_cast<int>(i)).finish_time);
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_flows = argc > 1 ? std::atoi(argv[1]) : 10;
  const double bytes = argc > 2 ? std::atof(argv[2]) : 1e8;  // 100 MBytes, as in the paper
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2006;

  sg::core::declare_engine_config();
  auto sc = bench::make_validation_scenario(30, n_flows, seed);

  std::printf("E1: validation experiment (paper's NS2/GTNetS/SimGrid figure)\n");
  std::printf("    Waxman topology, %zu nodes / %zu links, %d flows x %.0f MB\n\n",
              sc.platform.host_count(), sc.platform.link_count(), n_flows, bytes / 1e6);

  const auto ns2 = packet_rates(sc, bytes, sg::pkt::TcpParams::ns2());
  const auto gtnets = packet_rates(sc, bytes, sg::pkt::TcpParams::gtnets());
  const auto fluid = fluid_rates(sc, bytes);

  std::printf("%-8s %14s %14s %14s %10s %10s\n", "Flow ID", "NS2-like", "GTNetS-like",
              "SimGrid", "err-vs-ns2", "err-vs-gt");
  std::printf("%-8s %14s %14s %14s %10s %10s\n", "", "(MB/s)", "(MB/s)", "(MB/s)", "(%)", "(%)");
  int within15 = 0;
  double worst = 0;
  for (int i = 0; i < n_flows; ++i) {
    const double e_ns2 = 100.0 * (fluid[i] - ns2[i]) / ns2[i];
    const double e_gt = 100.0 * (fluid[i] - gtnets[i]) / gtnets[i];
    std::printf("%-8d %14.3f %14.3f %14.3f %+9.1f%% %+9.1f%%\n", i + 1, ns2[i] / 1e6,
                gtnets[i] / 1e6, fluid[i] / 1e6, e_ns2, e_gt);
    const double err = std::max(std::abs(e_ns2), std::abs(e_gt));
    worst = std::max(worst, err);
    if (err <= 15.0)
      ++within15;
  }
  std::printf("\n%d/%d flows within +/-15%% of both packet simulators (worst |err| %.1f%%)\n",
              within15, n_flows, worst);
  std::printf("paper: \"within +/- 15%%, with most within only a few percents\"\n");
  return 0;
}
