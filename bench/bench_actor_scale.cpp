/// Actor-runtime scale bench: the "millions of simulated processes" axis.
///
/// For each scale (10k, 100k, 1M actors) it spawns rendezvous pairs across a
/// multi-zone cluster — the same shape as examples/actor_swarm.cpp — and
/// measures what the fiber runtime costs per actor:
///
///  * spawn_per_sec    — actor creation rate (slot arena + lazy contexts)
///  * wakeups_per_sec  — blocked->ready transitions retired per wall second
///    (the scheduler's useful-work rate; mailbox matching, per-shard queues
///    and comm pooling all sit on this path)
///  * bytes_per_actor  — peak RSS growth divided by actor count (stacks are
///    lazily committed and slab-pooled, so this is far below stack-size)
///
/// With --json=PATH the results are written in the BENCH_engine.json shape
/// as a BENCH_actors.json artifact for CI trend tracking: wall times and
/// bytes are tracked lower-is-better, the *_per_sec extras higher-is-better.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/engine.hpp"
#include "kernel/context.hpp"
#include "kernel/kernel.hpp"
#include "platform/platform.hpp"
#include "xbt/config.hpp"
#include "xbt/str.hpp"

namespace {

bench::JsonWriter g_json;

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch()).count();
}

size_t read_rss(bool peak) {
  size_t bytes = 0;
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    const char* want = peak ? "VmHWM: %zu kB" : "VmRSS: %zu kB";
    while (std::fgets(line, sizeof line, f)) {
      size_t kb = 0;
      if (std::sscanf(line, want, &kb) == 1) {
        bytes = kb * 1024;
        break;
      }
    }
    std::fclose(f);
  }
  return bytes;
}

/// Multi-zone cluster big enough to spread the swarm; zone count scales so
/// the per-shard run queues are exercised at every size.
sg::platform::Platform make_swarm_platform(long n_actors) {
  const int zones = n_actors >= 500000 ? 16 : 4;
  sg::platform::Platform p;
  for (int z = 0; z < zones; ++z) {
    sg::platform::ClusterZoneSpec zone;
    zone.name = "zone" + std::to_string(z);
    zone.host_prefix = "z" + std::to_string(z) + "-";
    zone.count = 64;
    p.add_cluster_zone(zone);
  }
  p.seal();
  return p;
}

void bench_scale(long n_actors) {
  using sg::kernel::Kernel;
  using sg::kernel::MailboxId;

  const long n_pairs = n_actors / 2;
  sg::platform::Platform p = make_swarm_platform(n_actors);
  const int host_count = static_cast<int>(p.host_count());

  const size_t rss_before = read_rss(/*peak=*/false);
  Kernel k(std::move(p));

  const double t_spawn = now_s();
  for (long i = 0; i < n_pairs; ++i) {
    const int host = static_cast<int>(i % host_count);
    const MailboxId mbox = k.mailbox_by_name("pair:" + std::to_string(i));
    k.spawn("rx", host, [&k, mbox] { k.recv(mbox); });
    k.spawn("tx", host, [&k, mbox] { k.send(mbox, nullptr, 1e3); });
  }
  const double spawn_wall = now_s() - t_spawn;

  const double t_run = now_s();
  k.run();
  const double run_wall = now_s() - t_run;

  const size_t rss_peak = read_rss(/*peak=*/true);
  const double bytes_per_actor =
      rss_peak > rss_before
          ? static_cast<double>(rss_peak - rss_before) / static_cast<double>(n_actors)
          : 0.0;
  const auto& st = k.stats();
  const auto pool = k.context_factory().pool_stats();

  const std::string name = sg::xbt::format("actor_scale/%ldk", n_actors / 1000);
  g_json.record(name, spawn_wall + run_wall,
                {{"spawn_per_sec", static_cast<double>(n_actors) / spawn_wall},
                 {"wakeups_per_sec", static_cast<double>(st.wakeups) / run_wall}});
  g_json.record_bytes(name + "/bytes_per_actor", bytes_per_actor);

  std::printf(
      "%8ld actors [%s]: spawn %.2fs (%.0f/s), run %.2fs (%" PRIu64 " wakeups, %.0f/s), "
      "%.0f B/actor, %zu stacks in %zu slabs\n",
      n_actors, k.context_factory().backend_name(), spawn_wall,
      static_cast<double>(n_actors) / spawn_wall, run_wall, st.wakeups,
      static_cast<double>(st.wakeups) / run_wall, bytes_per_actor, pool.stacks_allocated,
      pool.slabs);
}

/// Lane-scaling section: zone-local ping-pong pairs (actors intern their own
/// mailboxes in-body, so every match is home-shard and commits inline in the
/// scheduling phase) driven with engine/parallel-actors at 1/2/4 lanes. The
/// wakeups_per_sec rate is the scheduler's useful-work throughput; CI tracks
/// the parallel_actors/* rows higher-is-better, so lanes regressing back to
/// the serial rate gates the build.
void bench_parallel_lanes(int lanes) {
  using sg::kernel::Kernel;
  using sg::kernel::MailboxId;

  sg::config::set(sg::core::kCfgThreads, lanes);
  sg::config::set(sg::core::kCfgParallelActors, lanes > 1);

  const int zones = 8;
  const int hosts_per_zone = 64;
  const long n_pairs = 4000;
  const int rounds = 20;

  // What the lanes actually parallelize is the user code running between
  // simcalls (the simcall commits stay serial), so each quantum carries a
  // few microseconds of real CPU work — without it the bench only measures
  // the serial epilogue and the fan-out overhead. Each body accumulates
  // locally and publishes once at exit: a shared hot accumulator would
  // ping-pong its cache line across the lanes and drown the scaling.
  auto busy = [](std::uint64_t seed) {
    std::uint64_t h = seed * 0x9e3779b97f4a7c15ull + 1;
    for (int i = 0; i < 4000; ++i)
      h = (h ^ (h >> 31)) * 0xbf58476d1ce4e5b9ull;
    return h;
  };
  std::atomic<std::uint64_t> sink{0};

  sg::platform::Platform p;
  for (int z = 0; z < zones; ++z) {
    sg::platform::ClusterZoneSpec zone;
    zone.name = "zone" + std::to_string(z);
    zone.host_prefix = "z" + std::to_string(z) + "-";
    zone.count = hosts_per_zone;
    p.add_cluster_zone(zone);
  }
  p.seal();
  Kernel k(std::move(p));

  const double t_spawn = now_s();
  for (long i = 0; i < n_pairs; ++i) {
    const int host = static_cast<int>(i % (zones * hosts_per_zone));
    const std::string ping = "ping:" + std::to_string(i);
    const std::string pong = "pong:" + std::to_string(i);
    k.spawn("rx", host, [&k, &busy, &sink, ping, pong, i] {
      const MailboxId in = k.mailbox_by_name(ping);
      const MailboxId out = k.mailbox_by_name(pong);
      std::uint64_t acc = 0;
      for (int r = 0; r < rounds; ++r) {
        k.recv(in);
        acc ^= busy(static_cast<std::uint64_t>(i * rounds + r));
        k.send(out, nullptr, 1e3);
      }
      sink.fetch_xor(acc, std::memory_order_relaxed);
    });
    k.spawn("tx", host, [&k, &busy, &sink, ping, pong, i] {
      const MailboxId out = k.mailbox_by_name(ping);
      const MailboxId in = k.mailbox_by_name(pong);
      std::uint64_t acc = 0;
      for (int r = 0; r < rounds; ++r) {
        k.send(out, nullptr, 1e3);
        acc ^= busy(static_cast<std::uint64_t>(~(i * rounds + r)));
        k.recv(in);
      }
      sink.fetch_xor(acc, std::memory_order_relaxed);
    });
  }
  const double spawn_wall = now_s() - t_spawn;

  const double t_run = now_s();
  k.run();
  const double run_wall = now_s() - t_run;

  const auto& st = k.stats();
  g_json.record_rate(sg::xbt::format("parallel_actors/lanes:%d", lanes),
                     static_cast<double>(st.wakeups) / run_wall,
                     {{"wakeups_per_sec", static_cast<double>(st.wakeups) / run_wall},
                      {"run_wall_s", run_wall}});

  std::printf("%8ld pairs x%2d rounds [%d lane(s)]: spawn %.2fs, run %.2fs (%" PRIu64
              " wakeups, %.0f/s)\n",
              n_pairs, rounds, lanes, spawn_wall, run_wall, st.wakeups,
              static_cast<double>(st.wakeups) / run_wall);
  if (sink.load(std::memory_order_relaxed) == 42)  // defeat dead-code elimination
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = argv[i] + 7;
    else if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
  }

  // Swarm tuning (same as examples/actor_swarm.cpp): tiny lazily-committed
  // stacks, no guard pages so 1M stacks fit the default VMA budget.
  sg::kernel::declare_context_config();
  auto& cfg = sg::xbt::Config::instance();
  cfg.set("contexts/stack-size", 64.0 * 1024);
  cfg.set("contexts/guard-pages", 0.0);

  std::vector<long> scales{10000, 100000, 1000000};
  if (quick)
    scales = {10000, 100000};
  for (long n : scales)
    bench_scale(n);

  sg::core::declare_engine_config();
  for (int lanes : {1, 2, 4})
    bench_parallel_lanes(lanes);

  if (!json_path.empty())
    g_json.write(json_path);
  return 0;
}
