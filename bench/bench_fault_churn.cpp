/// Fault-churn workload: resource failures under a large running mix, the
/// scenario the cnst -> actions failure index exists for. Before the index,
/// `fail_actions_on_constraint` and the sleep sweep scanned *every* running
/// action per failure (quadratic-ish once failures scale with the platform);
/// now a failure costs O(actions actually on the dead resource).
///
/// Two scenarios:
///  * flap_isolated — N pairs each hold a long-running flow; one private
///    link flaps down/up per round, failing exactly one flow, which is then
///    restarted. The per-flap cost must be independent of N: comparing
///    N=2000 against N=8000 demonstrates O(affected) (the old scan was 4x).
///  * fault_churn — the E9a churn mix (one completed-and-replaced flow per
///    event) with availability-trace-driven link flaps layered on top:
///    square-wave state traces (src/trace) take a slice of links down and up
///    again; failed pairs park until their link recovers (resource
///    observer) and then re-enter the churn.
///
/// With --json=PATH the results are written in the BENCH_engine.json shape
/// ("benchmarks" array, tracked metric "wall_time_s") as a
/// BENCH_fault_churn.json artifact for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/engine.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"
#include "xbt/str.hpp"

namespace {

bench::JsonWriter g_json;

void record(const std::string& name, double wall, const std::string& extra_key = "",
            double extra_value = 0) {
  g_json.record(name, wall, extra_key, extra_value);
}

/// Star cluster of 2*n_pairs hosts (client 2i <-> server 2i+1 over private
/// links and a fatpipe backbone, like the E9a churn platform). Every
/// `flap_stride`-th client link (if > 0) carries a periodic state trace:
/// up for `up_s`, down for `down_s`, phase-shifted per link so failures
/// spread over time instead of arriving in lockstep.
sg::platform::Platform make_fault_cluster(int n_pairs, int flap_stride, double up_s, double down_s) {
  using namespace sg::platform;
  Platform p;
  const NodeId sw = p.add_router("sw");
  const NodeId out = p.add_router("out");
  const LinkId bb = p.add_link("backbone", 1.25e9, 5e-4, SharingPolicy::kFatpipe);
  p.add_edge(sw, out, bb);
  const int n_hosts = 2 * n_pairs;
  for (int i = 0; i < n_hosts; ++i) {
    const std::string name = sg::xbt::format("node%d", i);
    const NodeId h = p.add_host(name, 1e9);
    LinkSpec link;
    link.name = name + "-link";
    link.bandwidth_Bps = 1.25e8;
    link.latency_s = 5e-5;
    const bool is_client = i % 2 == 0;
    const int pair = i / 2;
    if (flap_stride > 0 && is_client && pair % flap_stride == 0) {
      const double period = up_s + down_s;
      const double phase = period * (pair / flap_stride % 16) / 16.0;
      // Piecewise-constant state: up at 0, down at up_s - phase (wrapped).
      double down_at = up_s - phase;
      if (down_at <= 0)
        down_at += period;
      std::vector<sg::trace::TracePoint> pts;
      if (down_at < period) {
        pts = {{0.0, 1.0}, {down_at, 0.0}, {down_at + down_s, 1.0}};
        if (pts.back().time >= period)
          pts = {{0.0, 0.0}, {down_at + down_s - period, 1.0}, {down_at, 0.0}};
      }
      link.state = sg::trace::Trace(link.name + "-state", pts, period);
    }
    const LinkId l = p.add_link(link);
    p.add_edge(h, sw, l);
  }
  p.seal();
  return p;
}

/// Scenario 1: per-failure cost with N-1 unaffected flows. Every round
/// kills one rotating private link, fails its single flow, repairs the
/// link, restarts the flow. Wall time per round must not grow with N.
double run_isolated_flaps(int n_pairs, int n_flaps, double* per_flap_us) {
  using Clock = std::chrono::steady_clock;
  sg::core::Engine engine(make_fault_cluster(n_pairs, /*flap_stride=*/0, 0, 0));

  // Long-running flows: nothing completes during the measurement, so every
  // delivered event is a failure.
  for (int i = 0; i < n_pairs; ++i)
    engine.comm_start(2 * i, 2 * i + 1, 1e18);
  while (engine.running_action_count() > 0 && engine.run_until(1.0).empty() && engine.now() < 1.0) {
  }

  const auto t0 = Clock::now();
  int failures = 0;
  for (int f = 0; f < n_flaps; ++f) {
    const int pair = f % n_pairs;
    const int client_link = 1 + 2 * pair;  // link 0 is the backbone
    engine.set_link_state(client_link, false);
    for (const auto& ev : engine.run_until())
      failures += ev.failed ? 1 : 0;
    engine.set_link_state(client_link, true);
    engine.comm_start(2 * pair, 2 * pair + 1, 1e18);
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  if (failures != n_flaps)
    std::fprintf(stderr, "warning: expected %d failures, saw %d\n", n_flaps, failures);
  *per_flap_us = wall * 1e6 / n_flaps;
  return wall;
}

/// Scenario 2: the E9a churn mix + trace-driven link flaps. Completed flows
/// restart immediately; failed pairs park until the resource observer
/// reports their link back up.
double run_fault_churn(int n_pairs, int n_events, double* events_per_sec, int* failures_out) {
  using Clock = std::chrono::steady_clock;
  sg::core::Engine engine(make_fault_cluster(n_pairs, /*flap_stride=*/50, /*up_s=*/0.8, /*down_s=*/0.2));

  std::vector<int> parked;  // pairs waiting for their client link to heal
  engine.set_resource_observer([&](bool is_host, int index, bool now_on) {
    if (is_host || !now_on)
      return;
    // Client link of pair k is link id 1 + 2k.
    if (index >= 1 && (index - 1) % 2 == 0)
      parked.push_back((index - 1) / 2);
  });

  auto start_pair = [&](int pair, int salt) {
    engine.comm_start(2 * pair, 2 * pair + 1, 1e6 * (1.0 + salt % 7));
  };
  for (int i = 0; i < n_pairs; ++i)
    start_pair(i, i);

  int events = 0, failures = 0;
  auto pump = [&](int until_events) {
    while (events < until_events) {
      const auto fired = engine.run_until();
      for (const auto& ev : fired) {
        ++events;
        const int pair = ev.action->host() / 2;
        if (ev.failed)
          ++failures;  // parked: restarted on link recovery
        else
          start_pair(pair, events);
      }
      for (int pair : parked)
        start_pair(pair, events);
      parked.clear();
    }
  };

  pump(n_pairs);  // steady-state warm-up (routes, components, first flaps)
  events = 0;
  failures = 0;
  const auto t0 = Clock::now();
  pump(n_events);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  *events_per_sec = events / wall;
  *failures_out = failures;
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = argv[i] + 7;

  std::printf("F1: isolated link flaps — 1 failure per round, N-1 bystander flows\n\n");
  std::printf("%10s %10s %15s %15s\n", "pairs", "flaps", "wall time (s)", "us/flap");
  const int n_flaps = 2000;
  double per_flap_2k = 0, per_flap_8k = 0;
  for (int pairs : {2000, 8000}) {
    double per_flap = 0;
    // Best of 3 against scheduler noise on shared runners.
    double wall = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      double rep_per_flap = 0;
      const double rep_wall = run_isolated_flaps(pairs, n_flaps, &rep_per_flap);
      if (rep_wall < wall) {
        wall = rep_wall;
        per_flap = rep_per_flap;
      }
    }
    (pairs == 2000 ? per_flap_2k : per_flap_8k) = per_flap;
    std::printf("%10d %10d %15.4f %15.2f\n", pairs, n_flaps, wall, per_flap);
    record(sg::xbt::format("flap_isolated/pairs:%d", pairs), wall, "per_flap_us", per_flap);
  }
  std::printf("\nshape: per-failure cost is O(actions on the dead resource) — the victims\n");
  std::printf("come from the solver's element arena, not a scan of all running actions —\n");
  std::printf("so 4x the bystanders leaves the per-flap cost flat (8000/2000 ratio: %.2f;\n",
              per_flap_2k > 0 ? per_flap_8k / per_flap_2k : 0.0);
  std::printf("the pre-index engine walked the whole running set: ratio ~4).\n\n");

  std::printf("F2: trace-driven fault churn — E9a mix + square-wave link failures\n\n");
  std::printf("%10s %12s %12s %15s %18s\n", "pairs", "events", "failures", "wall time (s)", "events/s");
  for (int pairs : {2000, 8000}) {
    const int n_events = 10000;
    double eps = 0, wall = 1e30;
    int failures = 0;
    for (int rep = 0; rep < 3; ++rep) {
      double rep_eps = 0;
      int rep_failures = 0;
      const double rep_wall = run_fault_churn(pairs, n_events, &rep_eps, &rep_failures);
      if (rep_wall < wall) {
        wall = rep_wall;
        eps = rep_eps;
        failures = rep_failures;
      }
    }
    std::printf("%10d %12d %12d %15.3f %18.0f\n", pairs, n_events, failures, wall, eps);
    record(sg::xbt::format("fault_churn/pairs:%d", pairs), wall, "events_per_sec", eps);
  }
  std::printf("\nshape: every ~50th pair's link flaps (0.8s up / 0.2s down, phase-shifted)\n");
  std::printf("while the rest churn; failure delivery rides the same O(affected) index,\n");
  std::printf("so the mixed workload stays within a few percent of pure churn.\n");

  if (!json_path.empty())
    g_json.write(json_path);
  return 0;
}
