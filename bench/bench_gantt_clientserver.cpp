/// E5 — the paper's Gantt-chart figure: "an execution of the above code for
/// 2 servers and 3 clients. Dark portions denote computations, light
/// portions denote communications. Concurrent communications interfere with
/// each other as the TCP flows share network links."
#include <cstdio>
#include <vector>

#include "msg/msg.hpp"
#include "platform/builders.hpp"
#include "viz/gantt.hpp"

using namespace sg::msg;

namespace {

constexpr int PORT_22 = 2;
constexpr int PORT_23 = 3;

void client(const std::string& server_name) {
  m_host_t destination = MSG_get_host_by_name(server_name);
  m_task_t remote = MSG_task_create("Remote", 30.0e6, 3.2e6);
  MSG_task_put(remote, destination, PORT_22);
  m_task_t local = MSG_task_create("Local", 10.50e6, 3.2e6);
  MSG_task_execute(local);
  MSG_task_destroy(local);
  m_task_t ack = nullptr;
  MSG_task_get(&ack, PORT_23);
  MSG_task_destroy(ack);
}

void server() {
  while (true) {
    m_task_t task = nullptr;
    MSG_task_get(&task, PORT_22);
    MSG_task_execute(task);
    m_host_t source = task->source;
    MSG_task_destroy(task);
    m_task_t ack = MSG_task_create("Ack", 0, 0.01e6);
    MSG_task_put(ack, source, PORT_23);
  }
}

}  // namespace

int main() {
  // The paper's LAN: 3 clients on a shared hub segment, 2 servers behind a
  // switch, joined by a router. Client flows contend on the hub segment.
  MSG_init(sg::platform::make_client_server_lan(3, 2, 5e8, 1e9, 1.25e6, 1e-4));
  sg::viz::Tracer tracer(MSG_kernel().engine());

  const char* servers[3] = {"server1", "server2", "server1"};
  for (int i = 0; i < 3; ++i) {
    const std::string srv = servers[i];
    MSG_process_create("client" + std::to_string(i + 1), [srv] { client(srv); },
                       MSG_get_host_by_name("client" + std::to_string(i + 1)));
  }
  for (int i = 0; i < 2; ++i)
    MSG_process_create("server" + std::to_string(i + 1), server,
                       MSG_get_host_by_name("server" + std::to_string(i + 1)), /*daemon=*/true);

  const double end = MSG_main();

  std::printf("E5: Gantt chart, 2 servers and 3 clients (paper's MSG figure)\n\n");
  std::printf("%s\n", tracer.render_ascii(100).c_str());
  std::printf("CSV trace:\n%s\n", tracer.to_csv().c_str());
  std::printf("simulation ended at t=%.6f s\n", end);
  std::printf("paper shape: client transfers (=) serialized by the shared hub segment;\n");
  std::printf("servers compute (#) after each reception; tiny acks close each exchange\n");
  tracer.detach();
  MSG_clean();
  return 0;
}
