/// E9 — scalability of the MSG concurrency model ("all simulated application
/// processes run within a single OS process"): wall-clock cost of a
/// master/worker simulation as the number of processes grows.
#include <chrono>
#include <cstdio>

#include "msg/msg.hpp"
#include "platform/builders.hpp"

using namespace sg::msg;

namespace {

double run_master_worker(int n_workers, int tasks_per_worker, double* sim_time) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  sg::platform::ClusterSpec spec;
  spec.count = n_workers + 1;
  spec.backbone_fatpipe = true;  // scalability run: no artificial backbone contention
  MSG_init(sg::platform::make_cluster(spec));

  const int total = n_workers * tasks_per_worker;
  MSG_process_create("master", [=] {
    for (int t = 0; t < total; ++t) {
      m_task_t task = MSG_task_create("work", 1e8, 1e5);
      MSG_task_put(task, MSG_host_by_index(1 + t % n_workers), 0);
    }
  }, MSG_host_by_index(0));
  for (int w = 1; w <= n_workers; ++w) {
    MSG_process_create("worker" + std::to_string(w), [=] {
      for (int t = 0; t < tasks_per_worker; ++t) {
        m_task_t task = nullptr;
        MSG_task_get(&task, 0);
        MSG_task_execute(task);
        MSG_task_destroy(task);
      }
    }, MSG_host_by_index(w));
  }
  *sim_time = MSG_main();
  MSG_clean();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("E9: kernel scalability — master/worker, 8 tasks per worker\n\n");
  std::printf("%10s %12s %15s %18s\n", "processes", "sim time(s)", "wall time (s)",
              "wall us/task");
  for (int workers : {10, 50, 100, 500, 1000, 2000}) {
    double sim = 0;
    const double wall = run_master_worker(workers, 8, &sim);
    std::printf("%10d %12.2f %15.3f %18.1f\n", workers + 1, sim, wall,
                wall * 1e6 / (workers * 8));
  }
  std::printf("\nshape: wall time grows near-linearly in the number of simulated events;\n");
  std::printf("thousands of processes fit in one OS process (the paper's MSG design point)\n");
  return 0;
}
