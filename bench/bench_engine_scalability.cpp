/// E9 — scalability of the MSG concurrency model ("all simulated application
/// processes run within a single OS process"): wall-clock cost of a
/// master/worker simulation as the number of processes grows. Plus the SURF
/// incremental-churn workload: N independent client/server pairs with one
/// flow changing per event, the access pattern the incremental max-min
/// solver and the completion-date heap are built for. Plus platform seal
/// time, which lazy on-demand routing made O(nodes + edges) instead of
/// O(hosts^2) — the former cap on the churn workload size.
///
/// With --json=PATH the results are also written as a BENCH_engine.json
/// artifact (same shape as google-benchmark JSON: a "benchmarks" array; the
/// tracked metric is "wall_time_s", lower is better) for CI trend tracking
/// and the regression-compare step.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/engine.hpp"
#include "msg/msg.hpp"
#include "platform/builders.hpp"
#include "xbt/str.hpp"

using namespace sg::msg;

namespace {

bench::JsonWriter g_json;

void record(const std::string& name, double wall, const std::string& extra_key = "",
            double extra_value = 0) {
  g_json.record(name, wall, extra_key, extra_value);
}

double run_master_worker(int n_workers, int tasks_per_worker, double* sim_time) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  sg::platform::ClusterSpec spec;
  spec.count = n_workers + 1;
  spec.backbone_fatpipe = true;  // scalability run: no artificial backbone contention
  MSG_init(sg::platform::make_cluster(spec));

  const int total = n_workers * tasks_per_worker;
  MSG_process_create("master", [=] {
    for (int t = 0; t < total; ++t) {
      m_task_t task = MSG_task_create("work", 1e8, 1e5);
      MSG_task_put(task, MSG_host_by_index(1 + t % n_workers), 0);
    }
  }, MSG_host_by_index(0));
  for (int w = 1; w <= n_workers; ++w) {
    MSG_process_create("worker" + std::to_string(w), [=] {
      for (int t = 0; t < tasks_per_worker; ++t) {
        m_task_t task = nullptr;
        MSG_task_get(&task, 0);
        MSG_task_execute(task);
        MSG_task_destroy(task);
      }
    }, MSG_host_by_index(w));
  }
  *sim_time = MSG_main();
  MSG_clean();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Engine-level incremental churn: 2N hosts on a fatpipe-backbone cluster,
// one comm flow per client/server pair (client 2i -> server 2i+1 over
// private up/down links; adjacent ids keep each pair's resources on
// neighboring cache lines). Steady state: whenever a flow completes, a new
// one starts on the same pair — exactly one component changes per event.
struct ChurnMemory {
  double bytes_per_action = 0;  ///< slimmed Action + fused control block
  double bytes_per_flow = 0;    ///< solver arena + SoA bytes per live flow
};

double run_engine_churn(int n_pairs, int n_events, double* events_per_sec,
                        ChurnMemory* mem = nullptr) {
  using Clock = std::chrono::steady_clock;
  sg::platform::ClusterSpec spec;
  spec.count = 2 * n_pairs;
  spec.backbone_fatpipe = true;  // a shared backbone would couple all pairs
  sg::core::Engine engine(sg::platform::make_cluster(spec));

  for (int i = 0; i < n_pairs; ++i)
    engine.comm_start(2 * i, 2 * i + 1, 1e6 * (1.0 + i % 7));

  // Warm up to steady state: the initial flows all expire their latency
  // phase in a single step (an O(n) burst by construction), and every pair's
  // first completion resolves its route and solver component. Time only the
  // steady-state regime the workload is about: one completed-and-replaced
  // flow per event.
  int events = 0;
  while (events < n_pairs) {
    const auto fired = engine.run_until();
    for (const auto& ev : fired) {
      ++events;
      const int client = ev.action->host();
      engine.comm_start(client, ev.action->peer_host(), 1e6 * (1.0 + events % 7));
    }
  }

  const auto t0 = Clock::now();
  events = 0;
  while (events < n_events) {
    const auto fired = engine.run_until();
    for (const auto& ev : fired) {
      ++events;
      const int client = ev.action->host();
      engine.comm_start(client, ev.action->peer_host(), 1e6 * (1.0 + events % 7));
    }
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  *events_per_sec = n_events / wall;
  if (mem != nullptr) {
    // sizeof(Action) understates the allocation by the shared_ptr control
    // block that allocate_shared fuses in front of it (2 refcounts + vtable
    // + allocator copy, 32 bytes with libstdc++).
    mem->bytes_per_action = static_cast<double>(sizeof(sg::core::Action) + 32);
    const auto stats = engine.sharing_system().memory_stats();
    if (stats.live_variables > 0)
      mem->bytes_per_flow =
          static_cast<double>(stats.total_bytes()) / static_cast<double>(stats.live_variables);
  }
  return wall;
}

// E9e: sharded churn. N cluster zones (fat-pipe backbones) behind fat-pipe
// WAN links, M client/server pairs per zone, every flow intra-zone. Each
// zone owns a solver shard and its own event heaps, so one completed-and-
// replaced flow touches only its zone's state: per-event cost tracks the
// per-zone load, not the platform size.
// hot_zone_only: churn runs in zone 0 alone while every other zone holds
// `pairs_per_zone` parked (steady, never-completing) flows — the direct
// measurement of "intra-zone per-event cost is independent of platform
// size": the parked zones contribute nothing but their cached heap heads.
double run_sharded_churn(int n_zones, int pairs_per_zone, int n_events, double* events_per_sec,
                         double* solver_bytes_per_shard, bool hot_zone_only = false,
                         double* serial_fraction = nullptr) {
  using Clock = std::chrono::steady_clock;
  sg::platform::Platform p;
  for (int z = 0; z < n_zones; ++z) {
    sg::platform::ClusterZoneSpec spec;
    spec.name = sg::xbt::format("dz%d", z);
    spec.host_prefix = spec.name + "-";  // "dz1" + "10" must not alias "dz11" + "0"
    spec.count = 2 * pairs_per_zone;
    spec.backbone_fatpipe = true;  // a shared backbone would couple all pairs
    p.add_cluster_zone(spec);
  }
  for (int z = 1; z < n_zones; ++z) {
    const auto wan = p.add_link(sg::xbt::format("wan%d", z), 1.25e9, 1e-2,
                                sg::platform::SharingPolicy::kFatpipe);
    p.add_edge(p.zone_gateway(0), p.zone_gateway(z), wan);
  }
  sg::core::Engine engine(std::move(p));

  for (int z = 0; z < n_zones; ++z) {
    const int base = z * 2 * pairs_per_zone;
    const bool parked = hot_zone_only && z > 0;
    for (int i = 0; i < pairs_per_zone; ++i)
      engine.comm_start(base + 2 * i, base + 2 * i + 1,
                        parked ? 1e18 : 1e6 * (1.0 + i % 7));
  }
  // Warm up to steady state (see run_engine_churn). Parked flows never
  // complete, so only the churning pairs produce events either way.
  const int total_pairs = hot_zone_only ? pairs_per_zone : n_zones * pairs_per_zone;
  int events = 0;
  while (events < total_pairs) {
    const auto fired = engine.run_until();
    for (const auto& ev : fired) {
      ++events;
      engine.comm_start(ev.action->host(), ev.action->peer_host(), 1e6 * (1.0 + events % 7));
    }
  }

  const auto t0 = Clock::now();
  events = 0;
  while (events < n_events) {
    const auto fired = engine.run_until();
    for (const auto& ev : fired) {
      ++events;
      engine.comm_start(ev.action->host(), ev.action->peer_host(), 1e6 * (1.0 + events % 7));
    }
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  *events_per_sec = n_events / wall;
  if (serial_fraction != nullptr)
    *serial_fraction = engine.phase_stats().serial_fraction();
  double zone_bytes = 0;
  const auto& sys = engine.sharing_system();
  for (int s = 1; s < sys.shard_count(); ++s)
    zone_bytes += static_cast<double>(sys.shard(s).memory_stats().total_bytes());
  *solver_bytes_per_shard = zone_bytes / n_zones;
  return wall;
}

// Build (but do not seal) the same star cluster make_cluster produces —
// WITHOUT the zone record, so routes resolve through the flat graph-mode
// path (per-source Dijkstra + per-pair cache). This is the baseline the
// cluster-zone fast path is measured against.
sg::platform::Platform build_unsealed_flat_cluster(int n_hosts) {
  using namespace sg::platform;
  Platform p;
  const NodeId sw = p.add_router("node-switch");
  const NodeId out = p.add_router("node-out");
  const LinkId bb = p.add_link("node-backbone", 1.25e9, 5e-4, SharingPolicy::kFatpipe);
  p.add_edge(sw, out, bb);
  for (int i = 0; i < n_hosts; ++i) {
    const std::string name = sg::xbt::format("node%d", i);
    const NodeId h = p.add_host(name, 1e9);
    const LinkId l = p.add_link(name + "-link", 1.25e8, 5e-5);
    p.add_edge(h, sw, l);
  }
  return p;
}

// E9d: hierarchical cluster-zone routing at scale. Builds an n-host cluster
// zone, seals it, and resolves `n_routes` random member pairs: every
// resolution is an O(1) composition over the interned up/down segments —
// no Dijkstra, no per-pair cache — so routing state stays O(hosts) no
// matter how many pairs the workload touches.
void run_zone_routing(int n_hosts, int n_routes, double* seal_s, double* resolve_s,
                      double* bytes_per_host) {
  using Clock = std::chrono::steady_clock;
  sg::platform::ClusterZoneSpec spec;
  spec.name = "node";
  spec.count = n_hosts;
  spec.backbone_fatpipe = true;
  sg::platform::Platform p;
  p.add_cluster_zone(spec);
  const auto t0 = Clock::now();
  p.seal();
  const auto t1 = Clock::now();
  // Cheap deterministic pair sequence (LCG): rng call overhead would drown
  // the ~10 ns composition we are measuring.
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  double lat_sum = 0;
  for (int i = 0; i < n_routes; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const int s = static_cast<int>((x >> 33) % static_cast<std::uint64_t>(n_hosts));
    const int d = static_cast<int>((x >> 13) % static_cast<std::uint64_t>(n_hosts));
    if (s == d)
      continue;
    lat_sum += p.route(s, d).latency();  // consume so the call cannot be elided
  }
  const auto t2 = Clock::now();
  if (lat_sum < 0)
    std::printf("impossible\n");
  *seal_s = std::chrono::duration<double>(t1 - t0).count();
  *resolve_s = std::chrono::duration<double>(t2 - t1).count();
  *bytes_per_host = static_cast<double>(p.routing_memory().total()) / n_hosts;
}

// Flat-graph baseline for the same workload shape: resolve n_src * n_dst
// distinct pairs on an (un-zoned) star cluster. Every pair costs a cache
// entry and an interned path; every source costs a Dijkstra + an O(nodes)
// memoized SSSP tree. This is the representation the zone layer replaces —
// at 100k hosts it cannot complete at all in reasonable memory.
void run_flat_routing(int n_hosts, int n_src, int n_dst, double* resolve_s, double* total_bytes) {
  using Clock = std::chrono::steady_clock;
  sg::platform::Platform p = build_unsealed_flat_cluster(n_hosts);
  p.seal();
  const auto t0 = Clock::now();
  double lat_sum = 0;
  for (int s = 0; s < n_src; ++s)
    for (int d = 0; d < n_dst; ++d) {
      const int dst = (s + 1 + d) % n_hosts;
      lat_sum += p.route(s, dst).latency();
    }
  const auto t1 = Clock::now();
  if (lat_sum < 0)
    std::printf("impossible\n");
  *resolve_s = std::chrono::duration<double>(t1 - t0).count();
  *total_bytes = static_cast<double>(p.routing_memory().total());
}

// Seal an n-host graph platform and resolve a first batch of routes. seal()
// used to run all-pairs Dijkstra (O(hosts^2), ~48 s at 8000 hosts); it is
// now O(nodes + edges), with routes resolved lazily on first use.
void run_seal(int n_hosts, double* seal_s, double* first_routes_s) {
  using Clock = std::chrono::steady_clock;
  sg::platform::Platform p = build_unsealed_flat_cluster(n_hosts);
  const auto t0 = Clock::now();
  p.seal();
  const auto t1 = Clock::now();
  const int batch = n_hosts / 2;
  for (int i = 0; i < batch; ++i)
    (void)p.route(i, batch + i);
  const auto t2 = Clock::now();
  *seal_s = std::chrono::duration<double>(t1 - t0).count();
  *first_routes_s = std::chrono::duration<double>(t2 - t1).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = argv[i] + 7;

  std::printf("E9c: platform seal time — graph cluster, lazy on-demand routing\n\n");
  std::printf("%10s %15s %22s\n", "hosts", "seal (s)", "first n/2 routes (s)");
  for (int hosts : {1000, 4000, 8000}) {
    double seal_s = 0, routes_s = 0;
    run_seal(hosts, &seal_s, &routes_s);
    std::printf("%10d %15.4f %22.4f\n", hosts, seal_s, routes_s);
    record(sg::xbt::format("seal/hosts:%d", hosts), seal_s, "first_routes_s", routes_s);
  }
  std::printf("\nshape: seal() is O(nodes + edges); Dijkstra runs per-source on first\n");
  std::printf("use and each resolved pair is memoized (it used to be all-pairs, ~48 s\n");
  std::printf("at 8000 hosts).\n\n");

  std::printf("E9d: hierarchical cluster-zone routing — O(1) composition, O(hosts) state\n\n");
  std::printf("%10s %12s %15s %15s %18s\n", "hosts", "seal (s)", "1M routes (s)", "ns/route",
              "routing B/host");
  for (int hosts : {8000, 32000, 100000}) {
    const int n_routes = 1000000;
    double seal_s = 0, resolve_s = 0, bph = 0;
    run_zone_routing(hosts, n_routes, &seal_s, &resolve_s, &bph);
    std::printf("%10d %12.4f %15.3f %15.1f %18.0f\n", hosts, seal_s, resolve_s,
                resolve_s * 1e9 / n_routes, bph);
    record(sg::xbt::format("zone_routing/resolve_1M/hosts:%d", hosts), resolve_s, "ns_per_route",
           resolve_s * 1e9 / n_routes);
    g_json.record_bytes(sg::xbt::format("zone_routing/routing_bytes_per_host/hosts:%d", hosts), bph);
  }
  {
    // Flat-graph baseline at 8000 hosts: 500 sources x 500 destinations.
    // Every pair is a cache entry + an interned path, every source an
    // O(nodes) SSSP tree; the zone build answers the same queries from
    // O(hosts) state.
    const int hosts = 8000, n_src = 500, n_dst = 500;
    double flat_s = 0, flat_bytes = 0;
    run_flat_routing(hosts, n_src, n_dst, &flat_s, &flat_bytes);
    double zone_seal = 0, zone_s = 0, zone_bph = 0;
    run_zone_routing(hosts, n_src * n_dst, &zone_seal, &zone_s, &zone_bph);
    const double zone_bytes = zone_bph * hosts;
    std::printf("\nflat vs zone at %d hosts, %d resolved pairs:\n", hosts, n_src * n_dst);
    std::printf("  flat graph: %7.3f s, %10.0f KB routing state\n", flat_s, flat_bytes / 1024);
    std::printf("  zone rule:  %7.3f s, %10.0f KB routing state (%.0fx less memory)\n", zone_s,
                zone_bytes / 1024, flat_bytes / zone_bytes);
    g_json.record_bytes("zone_routing/flat_bytes_8000h_250kpairs", flat_bytes);
    g_json.record_bytes("zone_routing/zone_bytes_8000h_250kpairs", zone_bytes);
  }
  std::printf("\nshape: a cluster member's route is composed from interned up/down\n");
  std::printf("segments in a few array reads; routing bytes per host stay flat from\n");
  std::printf("8k to 100k hosts, a scale the flat per-pair representation cannot reach.\n\n");

  std::printf("E9a: SURF incremental churn — client/server pairs, 1 flow per event\n");
  std::printf("(per-event cost is the metric the SoA completion-heap split moves:\n");
  std::printf("sift compares walk a dense array of dates instead of 32-byte entries)\n\n");
  std::printf("%10s %12s %15s %18s %12s\n", "pairs", "events", "wall time (s)", "events/s",
              "us/event");
  ChurnMemory mem;
  for (int pairs : {100, 500, 1000, 2000, 4000, 8000}) {
    const int n_events = 10000;
    // Best of 5: the absolute times are milliseconds on a shared CI runner,
    // so scheduler blips would otherwise dominate the tracked metric.
    double wall = 1e30, eps = 0;
    for (int rep = 0; rep < 5; ++rep) {
      double rep_eps = 0;
      const double rep_wall = run_engine_churn(pairs, n_events, &rep_eps, pairs == 8000 ? &mem : nullptr);
      if (rep_wall < wall) {
        wall = rep_wall;
        eps = rep_eps;
      }
    }
    std::printf("%10d %12d %15.3f %18.0f %12.3f\n", pairs, n_events, wall, eps, 1e6 / eps);
    record(sg::xbt::format("churn/pairs:%d", pairs), wall, "events_per_sec", eps);
  }
  std::printf("\nsteady-state footprint at 8000 pairs: %.0f bytes/action (object + fused\n",
              mem.bytes_per_action);
  std::printf("control block), %.0f solver bytes/flow (element arena + SoA arrays).\n",
              mem.bytes_per_flow);
  g_json.record_bytes("mem/action_bytes", mem.bytes_per_action);
  g_json.record_bytes("mem/solver_bytes_per_flow", mem.bytes_per_flow);
  std::printf("\nshape: the incremental solver re-solves only the component the completed\n");
  std::printf("flow touches, and the completion-date heap replaces the per-event scan of\n");
  std::printf("all running actions, so per-event cost is O(affected + log n) and stays\n");
  std::printf("flat as the number of concurrent pairs grows.\n\n");

  std::printf("E9e: sharded churn — per-zone MaxMin shards + event heaps\n\n");
  std::printf("constant total load (2000 pairs split across zones):\n");
  std::printf("%8s %12s %12s %18s %12s %16s\n", "zones", "pairs/zone", "events", "events/s",
              "us/event", "solver B/shard");
  for (int zones : {1, 4, 16}) {
    const int pairs_per_zone = 2000 / zones;
    const int n_events = 10000;
    double wall = 1e30, eps = 0, bps = 0;
    for (int rep = 0; rep < 5; ++rep) {
      double rep_eps = 0, rep_bps = 0;
      const double rep_wall = run_sharded_churn(zones, pairs_per_zone, n_events, &rep_eps, &rep_bps);
      if (rep_wall < wall) {
        wall = rep_wall;
        eps = rep_eps;
        bps = rep_bps;
      }
    }
    std::printf("%8d %12d %12d %18.0f %12.3f %16.0f\n", zones, pairs_per_zone, n_events, eps,
                1e6 / eps, bps);
    g_json.record(sg::xbt::format("sharded_churn/zones:%d/pairs_per_zone:%d", zones, pairs_per_zone),
                  wall, {{"events_per_sec", eps}, {"us_per_event", 1e6 / eps}});
    g_json.record_bytes(sg::xbt::format("mem/solver_bytes_per_shard/zones:%d", zones), bps);
  }
  std::printf("\nhot-zone locality (2000 churn pairs in zone 0; every other zone holds\n");
  std::printf("2000 parked flows — intra-zone per-event cost must not see them):\n");
  std::printf("%8s %12s %12s %18s %12s %10s\n", "zones", "total pairs", "events", "events/s",
              "us/event", "vs 1 zone");
  double single_zone_us = 0;
  for (int zones : {1, 4, 16}) {
    const int pairs_per_zone = 2000;
    const int n_events = 10000;
    double wall = 1e30, eps = 0, bps = 0;
    for (int rep = 0; rep < 5; ++rep) {
      double rep_eps = 0, rep_bps = 0;
      const double rep_wall = run_sharded_churn(zones, pairs_per_zone, n_events, &rep_eps, &rep_bps,
                                                /*hot_zone_only=*/true);
      if (rep_wall < wall) {
        wall = rep_wall;
        eps = rep_eps;
        bps = rep_bps;
      }
    }
    if (zones == 1)
      single_zone_us = 1e6 / eps;
    std::printf("%8d %12d %12d %18.0f %12.3f %10.2f\n", zones, zones * pairs_per_zone, n_events,
                eps, 1e6 / eps, (1e6 / eps) / single_zone_us);
    g_json.record(sg::xbt::format("sharded_hotzone/zones:%d/pairs_per_zone:%d", zones, pairs_per_zone),
                  wall, {{"events_per_sec", eps},
                         {"us_per_event", 1e6 / eps},
                         {"us_per_event_vs_1zone", (1e6 / eps) / single_zone_us}});
  }
  std::printf("\naggregate scale-out (2000 churning pairs in EVERY zone — all shards hot;\n");
  std::printf("the residual growth is LLC capacity over the full working set):\n");
  std::printf("%8s %12s %12s %18s %12s\n", "zones", "total pairs", "events", "events/s", "us/event");
  for (int zones : {4, 16}) {
    const int pairs_per_zone = 2000;
    const int n_events = 10000;
    double wall = 1e30, eps = 0, bps = 0;
    for (int rep = 0; rep < 3; ++rep) {
      double rep_eps = 0, rep_bps = 0;
      const double rep_wall = run_sharded_churn(zones, pairs_per_zone, n_events, &rep_eps, &rep_bps);
      if (rep_wall < wall) {
        wall = rep_wall;
        eps = rep_eps;
        bps = rep_bps;
      }
    }
    std::printf("%8d %12d %12d %18.0f %12.3f\n", zones, zones * pairs_per_zone, n_events, eps,
                1e6 / eps);
    g_json.record(sg::xbt::format("sharded_scaleout/zones:%d/pairs_per_zone:%d", zones, pairs_per_zone),
                  wall, {{"events_per_sec", eps}, {"us_per_event", 1e6 / eps}});
  }
  std::printf("\nshape: a churn event re-solves one zone shard and walks that zone's own\n");
  std::printf("completion heap; other zones' solver and heap state is never read (their\n");
  std::printf("only per-event trace is a cached head date), so a 16x bigger platform\n");
  std::printf("leaves the hot zone's per-event cost unchanged.\n\n");

  std::printf("E9f: parallel per-shard stepping — engine/threads over the all-zones-hot\n");
  std::printf("workload (16 zones x 2000 churning pairs, every shard advancing every\n");
  std::printf("step; the shard phases of run_until() fan out across worker lanes):\n");
  std::printf("%8s %12s %12s %18s %12s %10s %10s %10s\n", "threads", "total pairs", "events",
              "events/s", "us/event", "vs 1 thr", "par eff", "serial fr");
  {
    sg::core::declare_engine_config();
    // The phase profiler rides along: serial_fraction is the profiler-measured
    // share of run_until() wall time spent OUTSIDE the instrumented fan-outs
    // (target pick, deferred epilogue, gather) — the Amdahl residue the
    // parallel phases cannot touch. Informational only: the gated metric
    // stays events_per_sec.
    sg::config::set(sg::core::kCfgProfile, true);
    const int zones = 16, pairs_per_zone = 2000, n_events = 10000;
    double one_thread_eps = 0;
    for (int threads : {1, 2, 4, 8}) {
      sg::config::set(sg::core::kCfgThreads, threads);
      double wall = 1e30, eps = 0, sf = 0;
      for (int rep = 0; rep < 3; ++rep) {
        double rep_eps = 0, rep_bps = 0, rep_sf = 0;
        const double rep_wall = run_sharded_churn(zones, pairs_per_zone, n_events, &rep_eps,
                                                  &rep_bps, /*hot_zone_only=*/false, &rep_sf);
        if (rep_wall < wall) {
          wall = rep_wall;
          eps = rep_eps;
          sf = rep_sf;
        }
      }
      if (threads == 1)
        one_thread_eps = eps;
      const double speedup = eps / one_thread_eps;
      std::printf("%8d %12d %12d %18.0f %12.3f %10.2f %10.2f %10.3f\n", threads,
                  zones * pairs_per_zone, n_events, eps, 1e6 / eps, speedup, speedup / threads, sf);
      g_json.record_rate(sg::xbt::format("thread_scaling/all_zones_hot/threads:%d", threads), eps,
                         {{"speedup_vs_1_thread", speedup},
                          {"parallel_efficiency", speedup / threads},
                          {"serial_fraction", sf}});
    }
    sg::config::set(sg::core::kCfgThreads, 1);  // later sections measure the serial engine
    sg::config::set(sg::core::kCfgProfile, false);
  }
  std::printf("\nshape: the shard advance/solve phases are embarrassingly parallel; the\n");
  std::printf("serial residue is the target reduction and the deterministic gather, so\n");
  std::printf("events/s grows near-linearly until the backbone-coupling joins and the\n");
  std::printf("gather dominate. (On a 1-core runner all rows collapse to the serial rate.)\n\n");

  std::printf("E9: kernel scalability — master/worker, 8 tasks per worker\n\n");
  std::printf("%10s %12s %15s %18s\n", "processes", "sim time(s)", "wall time (s)",
              "wall us/task");
  for (int workers : {10, 50, 100, 500, 1000, 2000}) {
    double sim = 0;
    const double wall = run_master_worker(workers, 8, &sim);
    std::printf("%10d %12.2f %15.3f %18.1f\n", workers + 1, sim, wall,
                wall * 1e6 / (workers * 8));
    record(sg::xbt::format("master_worker/procs:%d", workers + 1), wall, "sim_time_s", sim);
  }
  std::printf("\nshape: wall time grows near-linearly in the number of simulated events;\n");
  std::printf("thousands of processes fit in one OS process (the paper's MSG design point)\n");

  if (!json_path.empty())
    g_json.write(json_path);
  return 0;
}
