/// E9 — scalability of the MSG concurrency model ("all simulated application
/// processes run within a single OS process"): wall-clock cost of a
/// master/worker simulation as the number of processes grows. Plus the SURF
/// incremental-churn workload: N independent client/server pairs with one
/// flow changing per event, the access pattern the incremental max-min
/// solver is built for.
#include <chrono>
#include <cstdio>

#include "core/engine.hpp"
#include "msg/msg.hpp"
#include "platform/builders.hpp"

using namespace sg::msg;

namespace {

double run_master_worker(int n_workers, int tasks_per_worker, double* sim_time) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  sg::platform::ClusterSpec spec;
  spec.count = n_workers + 1;
  spec.backbone_fatpipe = true;  // scalability run: no artificial backbone contention
  MSG_init(sg::platform::make_cluster(spec));

  const int total = n_workers * tasks_per_worker;
  MSG_process_create("master", [=] {
    for (int t = 0; t < total; ++t) {
      m_task_t task = MSG_task_create("work", 1e8, 1e5);
      MSG_task_put(task, MSG_host_by_index(1 + t % n_workers), 0);
    }
  }, MSG_host_by_index(0));
  for (int w = 1; w <= n_workers; ++w) {
    MSG_process_create("worker" + std::to_string(w), [=] {
      for (int t = 0; t < tasks_per_worker; ++t) {
        m_task_t task = nullptr;
        MSG_task_get(&task, 0);
        MSG_task_execute(task);
        MSG_task_destroy(task);
      }
    }, MSG_host_by_index(w));
  }
  *sim_time = MSG_main();
  MSG_clean();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Engine-level incremental churn: 2N hosts on a fatpipe-backbone cluster,
// one comm flow per client/server pair (client i -> server N+i over private
// up/down links). Steady state: whenever a flow completes, a new one starts
// on the same pair — exactly one component changes per engine event.
double run_engine_churn(int n_pairs, int n_events, double* events_per_sec) {
  using Clock = std::chrono::steady_clock;
  sg::platform::ClusterSpec spec;
  spec.count = 2 * n_pairs;
  spec.backbone_fatpipe = true;  // a shared backbone would couple all pairs
  sg::core::Engine engine(sg::platform::make_cluster(spec));

  for (int i = 0; i < n_pairs; ++i)
    engine.comm_start(i, n_pairs + i, 1e6 * (1.0 + i % 7));

  const auto t0 = Clock::now();
  int events = 0;
  while (events < n_events) {
    auto fired = engine.step();
    for (auto& ev : fired) {
      ++events;
      const int client = ev.action->host();
      engine.comm_start(client, ev.action->peer_host(), 1e6 * (1.0 + events % 7));
    }
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  *events_per_sec = n_events / wall;
  return wall;
}

}  // namespace

int main() {
  std::printf("E9a: SURF incremental churn — client/server pairs, 1 flow per event\n\n");
  std::printf("%10s %12s %15s %18s\n", "pairs", "events", "wall time (s)", "events/s");
  for (int pairs : {100, 500, 1000, 2000}) {
    const int n_events = 2000;
    double eps = 0;
    const double wall = run_engine_churn(pairs, n_events, &eps);
    std::printf("%10d %12d %15.3f %18.0f\n", pairs, n_events, wall, eps);
  }
  std::printf("\nshape: the incremental solver re-solves only the component the completed\n");
  std::printf("flow touches, so per-event solve cost is flat; the remaining decay comes\n");
  std::printf("from the engine's O(running actions) completion scan per step.\n");
  std::printf("(sizes capped: platform route sealing is currently O(hosts^2))\n\n");

  std::printf("E9: kernel scalability — master/worker, 8 tasks per worker\n\n");
  std::printf("%10s %12s %15s %18s\n", "processes", "sim time(s)", "wall time (s)",
              "wall us/task");
  for (int workers : {10, 50, 100, 500, 1000, 2000}) {
    double sim = 0;
    const double wall = run_master_worker(workers, 8, &sim);
    std::printf("%10d %12.2f %15.3f %18.1f\n", workers + 1, sim, wall,
                wall * 1e6 / (workers * 8));
  }
  std::printf("\nshape: wall time grows near-linearly in the number of simulated events;\n");
  std::printf("thousands of processes fit in one OS process (the paper's MSG design point)\n");
  return 0;
}
