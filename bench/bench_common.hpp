/// Shared scenario construction for the reproduction benches.
#pragma once

#include <vector>

#include "platform/platform.hpp"
#include "topo/brite.hpp"
#include "xbt/random.hpp"

namespace bench {

struct FlowPair {
  int src;
  int dst;
};

/// The paper's validation scenario: a BRITE/Waxman random topology with
/// random bandwidths and latencies, plus `n_flows` random source-destination
/// pairs.
struct ValidationScenario {
  sg::platform::Platform platform;
  std::vector<FlowPair> flows;
};

inline ValidationScenario make_validation_scenario(int n_nodes, int n_flows, std::uint64_t seed) {
  sg::topo::WaxmanSpec spec;
  spec.n_nodes = n_nodes;
  spec.m_edges_per_node = 2;
  spec.seed = seed;
  spec.bw_min_Bps = 1.25e6;   // 10 Mb/s
  spec.bw_max_Bps = 1.25e7;   // 100 Mb/s
  spec.latency_per_unit = 2e-6;
  ValidationScenario out;
  out.platform = sg::topo::to_platform(sg::topo::generate_waxman(spec));
  sg::xbt::Rng rng(seed * 1000 + 7);
  const int n = n_nodes;
  while (static_cast<int>(out.flows.size()) < n_flows) {
    const int s = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n - 1)));
    const int d = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n - 1)));
    if (s != d)
      out.flows.push_back({s, d});
  }
  return out;
}

}  // namespace bench
