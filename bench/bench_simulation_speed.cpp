/// E2 — the paper's "Simulation time is orders of magnitude faster" claim:
/// wall-clock cost of the validation scenario under the fluid model vs the
/// packet-level simulators, swept over transfer sizes.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "pkt/pkt.hpp"
#include "xbt/config.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double time_fluid(const bench::ValidationScenario& sc, double bytes) {
  sg::platform::Platform copy = sc.platform;
  const auto t0 = Clock::now();
  sg::core::Engine engine(std::move(copy));
  std::vector<sg::core::ActionPtr> comms;
  for (const auto& f : sc.flows)
    comms.push_back(engine.comm_start(f.src, f.dst, bytes));
  while (engine.running_action_count() > 0)
    engine.run_until();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double time_packet(const bench::ValidationScenario& sc, double bytes, long* events) {
  const auto t0 = Clock::now();
  sg::pkt::PacketNet net(sc.platform, sg::pkt::TcpParams::ns2());
  for (const auto& f : sc.flows)
    net.add_flow({f.src, f.dst, bytes, 0.0});
  net.run();
  *events = net.events_processed();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  sg::core::declare_engine_config();
  auto sc = bench::make_validation_scenario(30, 10, 2006);

  std::printf("E2: simulation cost, fluid (SURF) vs packet level (NS2-like)\n");
  std::printf("    10 flows on the validation topology, size swept\n\n");
  std::printf("%12s %15s %15s %12s %14s\n", "size/flow", "fluid wall (s)", "packet wall (s)",
              "speedup", "pkt events");
  for (double bytes : {1e6, 1e7, 1e8}) {
    const double t_fluid = time_fluid(sc, bytes);
    long events = 0;
    const double t_pkt = time_packet(sc, bytes, &events);
    std::printf("%10.0f MB %15.6f %15.3f %11.0fx %14ld\n", bytes / 1e6, t_fluid, t_pkt,
                t_pkt / std::max(t_fluid, 1e-9), events);
  }
  std::printf("\npaper: \"Simulation time is orders of magnitude faster\"\n");
  return 0;
}
