/// E6 — the paper's SMPI figure: 1-D matrix multiplication with vertical
/// strip decomposition, column blocks broadcast at every step, local compute
/// captured with SMPI_BENCH_ONCE. We reproduce the heterogeneity study:
/// identical code, homogeneous vs increasingly heterogeneous platforms.
#include <cstdio>
#include <vector>

#include "platform/platform.hpp"
#include "smpi/smpi.hpp"

using namespace sg::smpi;

namespace {

void local_rank1_update(int M, int NN, double alpha, const double* col, const double* row,
                        double beta, double* C) {
  for (int i = 0; i < M; ++i) {
    const double a = alpha * col[i];
    double* c = C + static_cast<size_t>(i) * NN;
    for (int j = 0; j < NN; ++j)
      c[j] = a * row[j] + beta * c[j];
  }
}

void parallel_mat_mult(int M, int N, int K, double alpha, const double* A, const double* B,
                       double beta, double* C) {
  const int num_proc = MPI_Comm_size();
  const int my_id = MPI_Comm_rank();
  const int KK = K / num_proc;
  const int NN = N / num_proc;
  std::vector<double> buf_col(static_cast<size_t>(M));
  for (int k = 0; k < K; ++k) {
    if (k / KK == my_id)
      for (int i = 0; i < M; ++i)
        buf_col[static_cast<size_t>(i)] = A[static_cast<size_t>(i) * KK + (k % KK)];
    MPI_Bcast(buf_col.data(), M, MPI_DOUBLE, k / KK);
    SMPI_BENCH_ONCE_RUN_ONCE_BEGIN();
    local_rank1_update(M, NN, alpha, buf_col.data(), &B[static_cast<size_t>(k) * NN],
                       k ? 1.0 : beta, C);
    SMPI_BENCH_ONCE_RUN_ONCE_END();
  }
}

sg::platform::Platform star(int P, double slow_factor) {
  sg::platform::Platform p;
  auto sw = p.add_router("sw");
  for (int i = 0; i < P; ++i) {
    // host i speed interpolates between 1e9 (i=0) and 1e9/slow_factor (i=P-1)
    const double f = P > 1 ? static_cast<double>(i) / (P - 1) : 0.0;
    const double speed = 1e9 / (1.0 + f * (slow_factor - 1.0));
    auto h = p.add_host("h" + std::to_string(i), speed);
    p.add_edge(h, sw, p.add_link("l" + std::to_string(i), 1.25e8, 5e-5));
  }
  p.seal();
  return p;
}

double run_matmul(sg::platform::Platform platform, int P, int M) {
  bench_reset();
  return smpi_run(std::move(platform), P, [M, P](int) {
    const int NN = M / P;
    const int KK = M / P;
    std::vector<double> A(static_cast<size_t>(M) * KK, 1.0);
    std::vector<double> B(static_cast<size_t>(M) * NN, 0.5);
    std::vector<double> C(static_cast<size_t>(M) * NN, 0.0);
    parallel_mat_mult(M, M, M, 1.0, A.data(), B.data(), 0.0, C.data());
  });
}

}  // namespace

int main(int argc, char** argv) {
  const int P = argc > 1 ? std::atoi(argv[1]) : 4;
  const int M = argc > 2 ? std::atoi(argv[2]) : 256;

  std::printf("E6: SMPI 1-D matrix multiply (paper's strip-decomposition example)\n");
  std::printf("    P=%d ranks, M=%d, column-block broadcast per step, SMPI_BENCH_ONCE\n\n", P, M);
  std::printf("%-28s %16s %12s\n", "platform", "makespan (s)", "slowdown");
  double base = -1;
  for (double slow : {1.0, 2.0, 4.0, 8.0}) {
    const double t = run_matmul(star(P, slow), P, M);
    if (base < 0)
      base = t;
    std::printf("slowest host %4.0fx slower    %16.5f %11.2fx\n", slow, t, t / base);
  }
  std::printf("\npaper shape: unmodified MPI code; heterogeneity shifts the makespan toward\n");
  std::printf("the slowest strip (broadcast synchronizes every step)\n");
  return 0;
}
