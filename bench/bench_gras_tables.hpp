/// Shared machinery for E3/E4 — the paper's "average time to exchange one
/// Pastry message" tables. For every (system, sender arch, receiver arch)
/// cell we measure the real encode and decode CPU time of the codec and add
/// the SURF-simulated wire time of the encoded bytes over the LAN/WAN link.
#pragma once

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "datadesc/codec.hpp"
#include "datadesc/pastry.hpp"
#include "platform/platform.hpp"
#include "xbt/random.hpp"

namespace bench {

struct CellResult {
  double total_s = 0;   ///< encode + wire + decode
  double cpu_s = 0;     ///< encode + decode only
  size_t wire_bytes = 0;
};

/// Simulated wire time for `bytes` across a single link (lat + size/eff_bw).
inline double wire_time(double bytes, double bandwidth_Bps, double latency_s) {
  const double eff = bandwidth_Bps * (1460.0 / 1500.0);
  return latency_s + bytes / eff;
}

/// 2006-era hosts (the paper's PowerPC G4 / UltraSPARC / P4 testbeds) run
/// this byte-munging roughly two orders of magnitude slower than the machine
/// executing this bench; the factor rescales measured CPU so that the
/// CPU-vs-wire balance matches the paper's regime.
constexpr double kEraCpuScale = 150.0;

inline CellResult measure_cell(const sg::datadesc::Codec& codec, const sg::datadesc::ArchDesc& snd,
                               const sg::datadesc::ArchDesc& rcv, double bandwidth_Bps,
                               double latency_s, int reps) {
  using Clock = std::chrono::steady_clock;
  sg::xbt::Rng rng(42);
  const auto desc = sg::datadesc::pastry_message_desc();
  const auto msg = sg::datadesc::make_pastry_message(rng, 256);

  // Warm-up (page in code paths, stabilize allocator).
  auto warm = codec.encode(*desc, msg, snd);
  (void)codec.decode(*desc, warm, rcv);

  CellResult out;
  const auto t0 = Clock::now();
  size_t bytes = 0;
  for (int i = 0; i < reps; ++i) {
    const auto wire = codec.encode(*desc, msg, snd);
    bytes = wire.size();
    (void)codec.decode(*desc, wire, rcv);
  }
  out.cpu_s = kEraCpuScale * std::chrono::duration<double>(Clock::now() - t0).count() / reps;
  out.wire_bytes = bytes;
  out.total_s = out.cpu_s + wire_time(static_cast<double>(bytes), bandwidth_Bps, latency_s);
  return out;
}

inline void print_table(const char* title, double bandwidth_Bps, double latency_s, int reps) {
  const std::vector<const char*> archs = {"ppc", "sparc", "x86"};
  const std::vector<const char*> systems = {"gras", "mpich", "omniorb", "pbio", "xml"};

  std::printf("%s\n", title);
  std::printf("(link: %.3g MB/s, one-way latency %.3g ms; Pastry message, avg of %d exchanges;\n",
              bandwidth_Bps / 1e6, latency_s * 1e3, reps);
  std::printf(" measured codec CPU rescaled x%.0f to 2006-era hosts)\n\n", kEraCpuScale);
  std::printf("%-7s %-7s | %10s %10s %10s %10s %10s | winner\n", "From", "To", "GRAS", "MPICH",
              "OmniORB", "PBIO", "XML");
  std::printf("--------------------------------------------------------------------------------\n");
  for (const char* from : archs) {
    for (const char* to : archs) {
      std::printf("%-7s %-7s |", from, to);
      double best = 1e30;
      size_t best_idx = 0;
      std::vector<double> totals;
      for (size_t s = 0; s < systems.size(); ++s) {
        const auto cell = measure_cell(sg::datadesc::codec_by_name(systems[s]),
                                       sg::datadesc::arch_by_name(from),
                                       sg::datadesc::arch_by_name(to), bandwidth_Bps, latency_s, reps);
        totals.push_back(cell.total_s);
        if (cell.total_s < best) {
          best = cell.total_s;
          best_idx = s;
        }
      }
      for (double t : totals) {
        if (t < 0.1)
          std::printf(" %8.2fms", t * 1e3);
        else
          std::printf(" %8.3fs ", t);
      }
      std::printf(" | %s\n", systems[best_idx]);
    }
  }
  std::printf("\n");
}

}  // namespace bench
