/// E8 — microbenchmark behind the paper's "fast and accurate simulation
/// capabilities" claim: cost of the MaxMin progressive-filling solve as the
/// system grows, and the sharing-policy ablation (shared vs fatpipe).
#include <benchmark/benchmark.h>

#include "core/maxmin.hpp"
#include "xbt/random.hpp"

namespace {

using sg::core::MaxMinSystem;

void build_random_system(MaxMinSystem& sys, int n_vars, int n_cnsts, bool fatpipes,
                         std::uint64_t seed) {
  sg::xbt::Rng rng(seed);
  std::vector<MaxMinSystem::CnstId> cnsts;
  for (int c = 0; c < n_cnsts; ++c)
    cnsts.push_back(sys.new_constraint(rng.uniform(10, 1000), !fatpipes || rng.uniform01() < 0.7));
  for (int v = 0; v < n_vars; ++v) {
    auto var = sys.new_variable(rng.uniform(0.5, 2.0));
    const int uses = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int u = 0; u < uses; ++u)
      sys.expand(cnsts[rng.uniform_int(0, static_cast<std::uint64_t>(n_cnsts - 1))], var,
                 rng.uniform(0.5, 2.0));
  }
}

void BM_SolveShared(benchmark::State& state) {
  MaxMinSystem sys;
  build_random_system(sys, static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 4 + 1,
                      false, 1);
  for (auto _ : state) {
    sys.solve();
    benchmark::DoNotOptimize(sys.value(0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolveShared)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_SolveWithFatpipes(benchmark::State& state) {
  MaxMinSystem sys;
  build_random_system(sys, static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) / 4 + 1,
                      true, 2);
  for (auto _ : state) {
    sys.solve();
    benchmark::DoNotOptimize(sys.value(0));
  }
}
BENCHMARK(BM_SolveWithFatpipes)->RangeMultiplier(4)->Range(16, 4096);

void BM_IncrementalChurn(benchmark::State& state) {
  // The engine's actual usage pattern: actions come and go between solves.
  MaxMinSystem sys;
  sg::xbt::Rng rng(3);
  std::vector<MaxMinSystem::CnstId> cnsts;
  for (int c = 0; c < 64; ++c)
    cnsts.push_back(sys.new_constraint(100.0));
  std::vector<MaxMinSystem::VarId> vars;
  for (int v = 0; v < 256; ++v) {
    auto var = sys.new_variable(1.0);
    sys.expand(cnsts[static_cast<size_t>(v) % cnsts.size()], var);
    vars.push_back(var);
  }
  size_t cursor = 0;
  for (auto _ : state) {
    sys.release_variable(vars[cursor]);
    auto var = sys.new_variable(1.0);
    sys.expand(cnsts[cursor % cnsts.size()], var);
    vars[cursor] = var;
    cursor = (cursor + 1) % vars.size();
    sys.solve();
    benchmark::DoNotOptimize(sys.usage(cnsts[0]));
  }
}
BENCHMARK(BM_IncrementalChurn);

// --- the acceptance workload: N independent client/server pairs, one flow
// changed per event. Each flow crosses its pair's client and server link.
// BM_ChurnIncremental re-solves with the incremental path (only the touched
// pair's component); BM_ChurnFullResolve forces the from-scratch solver on
// the identical mutation sequence. The ratio of the two is the speedup that
// turns per-event cost from O(system) into O(affected subgraph).

struct PairedFlows {
  MaxMinSystem sys;
  std::vector<MaxMinSystem::CnstId> client_links;
  std::vector<MaxMinSystem::CnstId> server_links;
  std::vector<MaxMinSystem::VarId> flows;
};

PairedFlows build_paired_flows(int n_pairs) {
  PairedFlows p;
  sg::xbt::Rng rng(7);
  for (int i = 0; i < n_pairs; ++i) {
    p.client_links.push_back(p.sys.new_constraint(rng.uniform(50, 150)));
    p.server_links.push_back(p.sys.new_constraint(rng.uniform(50, 150)));
    auto flow = p.sys.new_variable(1.0);
    p.sys.expand(p.client_links.back(), flow);
    p.sys.expand(p.server_links.back(), flow);
    p.flows.push_back(flow);
  }
  p.sys.solve();
  return p;
}

void churn_one_flow(PairedFlows& p, size_t cursor) {
  p.sys.release_variable(p.flows[cursor]);
  auto flow = p.sys.new_variable(1.0);
  p.sys.expand(p.client_links[cursor], flow);
  p.sys.expand(p.server_links[cursor], flow);
  p.flows[cursor] = flow;
}

void BM_ChurnIncremental(benchmark::State& state) {
  auto p = build_paired_flows(static_cast<int>(state.range(0)));
  size_t cursor = 0;
  for (auto _ : state) {
    churn_one_flow(p, cursor);
    cursor = (cursor + 1) % p.flows.size();
    p.sys.solve();
    benchmark::DoNotOptimize(p.sys.value(p.flows[cursor]));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChurnIncremental)->RangeMultiplier(4)->Range(160, 10240)->Complexity();

void BM_ChurnFullResolve(benchmark::State& state) {
  auto p = build_paired_flows(static_cast<int>(state.range(0)));
  size_t cursor = 0;
  for (auto _ : state) {
    churn_one_flow(p, cursor);
    cursor = (cursor + 1) % p.flows.size();
    p.sys.solve_full();
    benchmark::DoNotOptimize(p.sys.value(p.flows[cursor]));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChurnFullResolve)->RangeMultiplier(4)->Range(160, 10240)->Complexity();

}  // namespace

BENCHMARK_MAIN();
