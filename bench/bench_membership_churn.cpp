/// Membership-churn cost: join_host / leave_host / rejoin_host on a sealed
/// platform must cost O(affected) per event — the joined member's segments,
/// constraints, and shard-map rows; the departed leaf's presence bits and
/// private-link constraints — never a re-seal or a scan of the bystanders.
///
/// Scenario: an N-host star cluster idles (every host runs one long exec so
/// the solver is populated) while one corner of the platform churns with the
/// event mix of a volunteer overlay: per round one fresh host joins and a
/// window of existing members flaps (leave, failure delivery, return) —
/// availability cycles of known members dominate first-time arrivals in
/// deployed desktop grids. The per-event cost is compared from 2k to 32k
/// bystander hosts; the acceptance shape is flat (<= 1.2x across the 16x
/// size spread).
///
/// With --json=PATH the results are written in the BENCH_engine.json shape
/// ("benchmarks" array, tracked metric "wall_time_s") as a BENCH_churn.json
/// artifact for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/engine.hpp"
#include "platform/platform.hpp"
#include "xbt/str.hpp"

namespace {

bench::JsonWriter g_json;

void record(const std::string& name, double wall, const std::string& extra_key = "",
            double extra_value = 0) {
  g_json.record(name, wall, extra_key, extra_value);
}

sg::platform::Platform make_star(int n_hosts) {
  using namespace sg::platform;
  Platform p;
  ClusterZoneSpec spec;
  spec.name = "star";
  spec.host_prefix = "node";
  spec.count = n_hosts;
  spec.host_speed = 1e9;
  spec.link_bandwidth = 1.25e8;
  spec.link_latency = 5e-5;
  spec.backbone_bandwidth = 1.25e9;
  spec.backbone_latency = 5e-4;
  spec.backbone_fatpipe = true;
  p.add_cluster_zone(spec);
  p.seal();
  return p;
}

/// Availability flaps per fresh join, the overlay's churn mix.
constexpr int kFlapsPerJoin = 16;

/// The flapping corner of the overlay: a fixed-size window of members. The
/// benchmark scales the *bystander* population around a constant churn
/// activity — growing the window with the platform would measure the memory
/// hierarchy (every flap touching a never-seen host is a cold read at any
/// algorithmic complexity), not the membership machinery.
constexpr int kChurnWindow = 256;

/// One churn round = 1 join + kFlapsPerJoin flap cycles (leave + failure
/// delivery + rejoin), i.e. 1 + 2 * kFlapsPerJoin membership events. The
/// flap victims rotate through the churn window; each victim's long
/// exec fails (the structured teardown) and is restarted after the rejoin,
/// so the solver stays fully populated at N bystander variables throughout.
double run_churn(int n_hosts, int n_rounds, const char* zone_name, double* per_event_us) {
  using Clock = std::chrono::steady_clock;
  sg::core::Engine engine(make_star(n_hosts));
  const auto zone = *engine.platform().zone_by_name(zone_name);

  for (int h = 0; h < n_hosts; ++h)
    engine.exec_start(h, 1e18);
  engine.run_until(engine.now());

  // Warm-up: push every growth array (platform, shard map, engine per-host
  // state) past the next capacity boundary so no geometric reallocation
  // lands inside the timed window. The doubling copy is O(N) once per ~N
  // joins — amortized O(1) per join over a long churn run, but at a fixed
  // window size it would read as a per-event cost proportional to the
  // bystander count. n_rounds + 1 warm-up joins guarantee the window that
  // follows is reallocation-free steady state.
  for (int w = 0; w <= n_rounds; ++w)
    engine.join_host(zone);

  const auto t0 = Clock::now();
  for (int r = 0; r < n_rounds; ++r) {
    engine.join_host(zone);
    for (int f = 0; f < kFlapsPerJoin; ++f) {
      const int victim = (r * kFlapsPerJoin + f) % kChurnWindow;
      engine.leave_host(victim);
      engine.run_until(engine.now());  // deliver the victim's failure event, clock held
      engine.rejoin_host(victim);
      engine.exec_start(victim, 1e18);
    }
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  *per_event_us = wall * 1e6 / ((1.0 + 2.0 * kFlapsPerJoin) * n_rounds);
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      json_path = argv[i] + 7;

  std::printf("M1: membership churn — join + leave + rejoin per round, N bystander hosts\n\n");
  std::printf("%10s %10s %15s %15s\n", "hosts", "rounds", "wall time (s)", "us/event");
  const int n_rounds = 2000;
  double per_event_2k = 0, per_event_32k = 0;
  for (int hosts : {2000, 8000, 32000}) {
    double per_event = 0;
    // Best of 3 against scheduler noise on shared runners.
    double wall = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      double rep_per_event = 0;
      const double rep_wall = run_churn(hosts, n_rounds, "star", &rep_per_event);
      if (rep_wall < wall) {
        wall = rep_wall;
        per_event = rep_per_event;
      }
    }
    if (hosts == 2000)
      per_event_2k = per_event;
    if (hosts == 32000)
      per_event_32k = per_event;
    std::printf("%10d %10d %15.4f %15.2f\n", hosts, n_rounds, wall, per_event);
    record(sg::xbt::format("membership_churn/hosts:%d", hosts), wall, "per_event_us", per_event);
  }
  const double ratio = per_event_2k > 0 ? per_event_32k / per_event_2k : 0.0;
  std::printf("\nshape: a membership event touches the affected member only — its interned\n");
  std::printf("segments, shard rows, presence bits, and recycled constraint ids — so 16x\n");
  std::printf("the bystanders leaves the per-event cost flat (32000/2000 ratio: %.2f;\n", ratio);
  std::printf("acceptance <= 1.2; a re-seal would scale with the platform, ratio ~16).\n");

  if (!json_path.empty())
    g_json.write(json_path);
  return 0;
}
