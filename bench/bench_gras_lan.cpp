/// E3 — the paper's LAN table: "Average time to exchange one Pastry message
/// on a LAN for MPICH, OmniORB, PBIO, and XML-based communication, between
/// PowerPC, Sparc, and x86 architectures."
/// Expected shape: GRAS fastest everywhere (2-6 ms in the paper), XML slowest
/// (13-56 ms); same-architecture pairs cheaper than cross-architecture ones.
#include "bench_gras_tables.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 200;
  // 100 Mb/s switched LAN, sub-millisecond latency: wire time for a ~3.5 KB
  // message is small, so codec CPU dominates — exactly the paper's regime.
  bench::print_table("E3: Pastry message exchange on a LAN (paper's first GRAS table)",
                     1.25e7, 5e-4, reps);
  std::printf("paper shape: GRAS 2.3-6.3ms < MPICH/OmniORB/PBIO < XML 12.8-55.7ms\n");
  return 0;
}
