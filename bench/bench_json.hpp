/// Shared BENCH_*.json writer for the free-standing (non-google-benchmark)
/// benches. One artifact shape for the CI comparator: a "benchmarks" array
/// whose entries carry "wall_time_s" (plus one optional informational
/// metric), "bytes" for deterministic memory metrics (both tracked
/// lower-is-better by .github/scripts/compare_bench.py), or a bare
/// "events_per_sec" throughput rate (tracked higher-is-better).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace bench {

struct JsonRecord {
  std::string name;
  double wall_time_s = 0;
  /// Optional secondary metrics (informational "name#key" rows in CI).
  std::vector<std::pair<std::string, double>> extras;
  double bytes = 0;
  bool is_bytes = false;  ///< memory metric: emitted as "bytes", not wall time
  double rate = 0;
  bool is_rate = false;  ///< throughput metric: emitted as "events_per_sec" only
};

class JsonWriter {
 public:
  void record(const std::string& name, double wall, const std::string& extra_key = "",
              double extra_value = 0) {
    JsonRecord r{name, wall, {}, 0, false};
    if (!extra_key.empty())
      r.extras.emplace_back(extra_key, extra_value);
    records_.push_back(std::move(r));
  }

  void record(const std::string& name, double wall,
              std::vector<std::pair<std::string, double>> extras) {
    records_.push_back({name, wall, std::move(extras), 0, false});
  }

  /// Deterministic memory metric (tracked by CI like the wall times: lower
  /// is better, but with no timing-noise floor).
  void record_bytes(const std::string& name, double bytes) {
    records_.push_back({name, 0, {}, bytes, true, 0, false});
  }

  /// Throughput rate (events/s): tracked by CI higher-is-better, so a
  /// thread-scaling regression (parallel rows dropping back toward the
  /// serial rate) gates the build just like a wall-time regression.
  void record_rate(const std::string& name, double events_per_sec,
                   std::vector<std::pair<std::string, double>> extras = {}) {
    records_.push_back({name, 0, std::move(extras), 0, false, events_per_sec, true});
  }

  void write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      if (r.is_bytes) {
        std::fprintf(f, "    {\"name\": \"%s\", \"bytes\": %.9g", r.name.c_str(), r.bytes);
      } else if (r.is_rate) {
        std::fprintf(f, "    {\"name\": \"%s\", \"events_per_sec\": %.9g", r.name.c_str(), r.rate);
        for (const auto& [key, value] : r.extras)
          std::fprintf(f, ", \"%s\": %.9g", key.c_str(), value);
      } else {
        std::fprintf(f, "    {\"name\": \"%s\", \"wall_time_s\": %.9g", r.name.c_str(), r.wall_time_s);
        for (const auto& [key, value] : r.extras)
          std::fprintf(f, ", \"%s\": %.9g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu benchmarks)\n", path.c_str(), records_.size());
  }

 private:
  std::vector<JsonRecord> records_;
};

}  // namespace bench
