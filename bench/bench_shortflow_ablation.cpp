/// E7 — ablation behind the paper's "work in progress" note: "MaxMin
/// fairness less accurate for short-lived TCP flows. For short-lived flows,
/// one can use more accurate, but more expensive, packet-level simulation."
/// We sweep the flow size on the validation topology and report the fluid
/// model's error against packet level: it should grow as flows shrink below
/// the regime where slow start and the latency phase dominate.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "pkt/pkt.hpp"
#include "xbt/config.hpp"

namespace {

double mean_abs_error(const bench::ValidationScenario& sc, double bytes, double* worst) {
  sg::pkt::PacketNet net(sc.platform, sg::pkt::TcpParams::ns2());
  for (const auto& f : sc.flows)
    net.add_flow({f.src, f.dst, bytes, 0.0});
  net.run();

  sg::platform::Platform copy = sc.platform;
  sg::core::Engine engine(std::move(copy));
  std::vector<sg::core::ActionPtr> comms;
  for (const auto& f : sc.flows)
    comms.push_back(engine.comm_start(f.src, f.dst, bytes));
  while (engine.running_action_count() > 0)
    engine.run_until();

  double sum = 0;
  *worst = 0;
  for (size_t i = 0; i < sc.flows.size(); ++i) {
    const double t_pkt = net.result(static_cast<int>(i)).finish_time;
    const double t_fluid = comms[i]->finish_time();
    const double err = std::abs(t_fluid - t_pkt) / t_pkt;
    sum += err;
    *worst = std::max(*worst, err);
  }
  return sum / static_cast<double>(sc.flows.size());
}

}  // namespace

int main() {
  sg::core::declare_engine_config();
  auto sc = bench::make_validation_scenario(30, 10, 2006);

  std::printf("E7: fluid-model accuracy vs flow size (short-flow ablation)\n");
  std::printf("    10 flows on the validation topology, NS2-like packet reference\n\n");
  std::printf("%12s %18s %18s\n", "size/flow", "mean |error| (%)", "worst |error| (%)");
  for (double bytes : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    double worst = 0;
    const double mean = mean_abs_error(sc, bytes, &worst);
    std::printf("%9.3g MB %17.1f%% %17.1f%%\n", bytes / 1e6, mean * 100, worst * 100);
  }
  std::printf("\npaper shape: errors shrink as flows grow (steady state); short flows are\n");
  std::printf("dominated by slow start, which the fluid model does not capture\n");
  return 0;
}
