/// "A network monitoring application running on a wide-area network" — the
/// Grid Application Toolbox in action: CPU availability sensors on every
/// host, pairwise bandwidth probes, and topology discovery, all as GRAS
/// processes over a simulated WAN with background load traces.
#include <cstdio>
#include <vector>

#include "gras/gras.hpp"
#include "platform/platform.hpp"
#include "toolbox/toolbox.hpp"
#include "trace/trace.hpp"

using namespace sg::toolbox;

int main() {
  // Three sites joined by WAN links; site CPUs carry periodic load traces.
  sg::platform::Platform p;
  std::vector<sg::platform::NodeId> hosts;
  for (int i = 0; i < 3; ++i) {
    sg::platform::HostSpec spec;
    spec.name = "site" + std::to_string(i);
    spec.speed_flops = 2e9;
    spec.availability = sg::trace::square_wave("load" + std::to_string(i), 1.0, 3.0 + i, 0.5, 2.0);
    hosts.push_back(p.add_host(spec));
  }
  p.add_route(hosts[0], hosts[1], {p.add_link("wan01", 1.25e6, 2e-2)});
  p.add_route(hosts[1], hosts[2], {p.add_link("wan12", 2.5e6, 1e-2)});
  p.add_route(hosts[0], hosts[2], {p.add_link("wan02", 6.25e5, 4e-2)});
  p.seal();

  sg::gras::SimWorld world(std::move(p));
  auto* kernel = &world.kernel();

  std::vector<std::vector<Sample>> cpu_logs(3);
  for (int i = 0; i < 3; ++i) {
    world.spawn("cpu-sensor" + std::to_string(i), "site" + std::to_string(i), [&, i] {
      cpu_monitor_body(1.0, 12, cpu_logs[static_cast<size_t>(i)],
                       [kernel, i] { return kernel->engine().host_available_speed_fraction(i); });
    });
  }

  world.spawn("echo1", "site1", [] { bandwidth_echo_body(90, 2); });
  std::vector<double> bw(2, 0.0);
  world.spawn("probe0", "site0", [&] {
    sg::gras::os_sleep(0.2);
    bw[0] = bandwidth_probe("site1", 90, 5e5);
  });
  world.spawn("probe2", "site2", [&] {
    sg::gras::os_sleep(0.4);
    bw[1] = bandwidth_probe("site1", 90, 5e5);
  });

  DiscoveredTopology topo;
  world.spawn("collector", "site0", [&] { topo = topology_collect_body(91, 2); });
  world.spawn("rep1", "site1", [] {
    sg::gras::os_sleep(0.1);
    topology_report_body("site1", {"site0", "site2"}, "site0", 91);
  });
  world.spawn("rep2", "site2", [] {
    sg::gras::os_sleep(0.1);
    topology_report_body("site2", {"site0", "site1"}, "site0", 91);
  });

  world.run();

  std::printf("== CPU availability logs ==\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("site%d:", i);
    for (const Sample& s : cpu_logs[static_cast<size_t>(i)])
      std::printf(" %.2f@%.1fs", s.value, s.time);
    std::printf("\n");
  }
  std::printf("== bandwidth probes (to site1) ==\n");
  std::printf("site0 -> site1: %.0f B/s (link nominal 1.25e6)\n", bw[0]);
  std::printf("site2 -> site1: %.0f B/s (link nominal 2.5e6)\n", bw[1]);
  std::printf("== discovered topology ==\n");
  for (const auto& [a, b] : topo.edges())
    std::printf("  %s -- %s\n", a.c_str(), b.c_str());
  return 0;
}
