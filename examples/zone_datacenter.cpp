/// Two-datacenter master/worker at 32k hosts — the scale hierarchical zone
/// routing exists for. Two 16384-host cluster zones sit behind a fat-pipe
/// WAN link; a master in dc0 keeps a window of tasks in flight across
/// workers drawn from BOTH zones (dispatch comm -> exec -> result comm).
/// Every route is composed in O(1) from interned zone segments: after
/// hundreds of thousands of communications over tens of thousands of
/// distinct pairs, the platform still holds ZERO per-pair routing state.
///
/// The workload drives the SURF engine directly (simulated processes are OS
/// threads in this kernel, so 32k actors would be a thread-count exercise,
/// not a routing one; the engine event loop is where the scale lives).
///
///   zone_datacenter [hosts_per_zone] [n_tasks] [window]
#include <cstdio>
#include <cstdlib>
#include <chrono>

#include "core/engine.hpp"
#include "platform/platform.hpp"
#include "xbt/random.hpp"

namespace {

struct Task {
  int stage = 0;  ///< 0: dispatch comm, 1: exec, 2: result comm
  int worker = -1;
};

}  // namespace

int main(int argc, char** argv) {
  const int per_zone = argc > 1 ? std::atoi(argv[1]) : 16384;
  const int n_tasks = argc > 2 ? std::atoi(argv[2]) : 10000;
  const int window = argc > 3 ? std::atoi(argv[3]) : 128;

  using namespace sg::platform;
  Platform p;
  for (int z = 0; z < 2; ++z) {
    ClusterZoneSpec zone;
    zone.name = "dc" + std::to_string(z);
    zone.count = per_zone;
    zone.host_speed = 1e9;
    zone.link_bandwidth = 1.25e8;
    zone.link_latency = 5e-5;
    zone.backbone_bandwidth = 1.25e10;
    zone.backbone_latency = 5e-4;
    zone.backbone_fatpipe = true;
    p.add_cluster_zone(zone);
  }
  const LinkId wan = p.add_link("wan", 1.25e9, 1e-2, SharingPolicy::kFatpipe);
  p.add_edge(p.zone_gateway(0), p.zone_gateway(1), wan);
  p.seal();

  const int n_hosts = static_cast<int>(p.host_count());
  std::printf("platform: %d hosts in 2 cluster zones behind a fat-pipe WAN\n", n_hosts);
  {
    const auto cross = p.route(0, per_zone);
    std::printf("cross-zone route dc00 -> dc10: %zu links, %.1f ms latency\n", cross.size(),
                cross.latency() * 1e3);
  }

  sg::core::Engine engine(std::move(p));
  const Platform& plat = engine.platform();
  sg::xbt::Rng rng(4242);
  const int master = 0;

  auto pick_worker = [&] { return 1 + static_cast<int>(rng.uniform_int(0, n_hosts - 2)); };
  auto dispatch = [&](Task* t) {
    t->stage = 0;
    t->worker = pick_worker();
    engine.comm_start(master, t->worker, 2.5e5)->user_data = t;
  };

  const auto t0 = std::chrono::steady_clock::now();
  int launched = 0, done = 0;
  long long events = 0;
  std::vector<long long> zone_tasks(plat.zone_count(), 0);
  for (; launched < window && launched < n_tasks; ++launched)
    dispatch(new Task);

  while (done < n_tasks) {
    const auto fired = engine.run_until();
    for (const auto& ev : fired) {
      ++events;
      Task* t = static_cast<Task*>(ev.action->user_data);
      if (t == nullptr)
        continue;
      switch (t->stage) {
        case 0:  // task arrived at the worker: crunch
          t->stage = 1;
          ++zone_tasks[static_cast<size_t>(plat.zone_of_host(t->worker))];
          engine.exec_start(t->worker, rng.uniform(5e7, 5e8))->user_data = t;
          break;
        case 1:  // done crunching: send the result home
          t->stage = 2;
          engine.comm_start(t->worker, master, 1.6e4)->user_data = t;
          break;
        case 2:  // result landed at the master
          ++done;
          if (launched < n_tasks) {
            ++launched;
            dispatch(t);  // keep the window full
          } else {
            delete t;
          }
          break;
      }
    }
  }
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto mem = plat.routing_memory();
  std::printf("\n%d tasks over %d hosts in %.2f simulated s (%.2f wall s, %.0f events/s)\n", done,
              n_hosts, engine.now(), wall, static_cast<double>(events) / wall);
  std::printf("routing state: %.0f KB total (%.0f B/host), %zu interned segments,\n",
              mem.total() / 1024.0, static_cast<double>(mem.total()) / n_hosts,
              plat.interned_segment_count());
  std::printf("%zu per-pair cache entries, %zu SSSP trees — O(hosts), not O(pairs)\n",
              plat.resolved_route_count(), plat.cached_sssp_tree_count());

  // Per-zone view through the shard map: each zone owns a solver shard (and
  // its own event heaps); only the master's cross-zone dispatches touch the
  // backbone shard.
  const auto& smap = plat.shard_map();
  const auto& sys = engine.sharing_system();
  std::printf("\nsimulation shards (%d = %zu zones + backbone):\n", engine.shard_count(),
              plat.zone_count());
  std::printf("%10s %8s %8s %12s %16s\n", "zone", "shard", "hosts", "tasks", "solver KB");
  for (size_t z = 0; z < plat.zone_count(); ++z) {
    const auto shard = smap.zone_shard[z];
    std::printf("%10s %8d %8d %12lld %16.0f\n", plat.zone_name(static_cast<int>(z)).c_str(), shard,
                plat.zone_host_count(static_cast<int>(z)), zone_tasks[z],
                sys.shard(shard).memory_stats().total_bytes() / 1024.0);
  }
  std::printf("%10s %8d %8s %12s %16.0f  (%zu gateway links, %zu joint solves)\n", "backbone", 0,
              "-", "-", sys.shard(0).memory_stats().total_bytes() / 1024.0,
              smap.gateway_links.size(), sys.group_solve_count());
  return 0;
}
