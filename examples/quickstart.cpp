/// Quickstart: the MSG client/server from the paper, nearly verbatim.
///
/// The client sends a "Remote" task (30 MFlop compute payload, 3.2 MB comm
/// payload) to the server on PORT_22, executes a "Local" task, then waits
/// for the server's ack (0 MFlop, 10 KB) on PORT_23. The server loops:
/// receive, execute, ack — exactly the paper's second listing (it runs as a
/// daemon so the simulation ends when the clients are done).
#include <cstdio>

#include "msg/msg.hpp"
#include "platform/builders.hpp"

using namespace sg::msg;

namespace {

constexpr int PORT_22 = 2;
constexpr int PORT_23 = 3;

const char* server_host_name = "server1";

void client() {
  m_host_t destination = MSG_get_host_by_name(server_host_name);

  /* simulated data transfer */
  m_task_t remote = MSG_task_create("Remote", 30.0e6, 3.2e6); /* 30.0 MFlop, 3.2 MB */
  MSG_task_put(remote, destination, PORT_22);

  /* simulated task execution */
  m_task_t local = MSG_task_create("Local", 10.50e6, 3.2e6); /* 10.50 MFlop, 3.2 MB */
  MSG_task_execute(local);
  MSG_task_destroy(local);

  /* simulated data reception */
  m_task_t ack = nullptr;
  MSG_task_get(&ack, PORT_23);
  MSG_task_destroy(ack);

  std::printf("[%.6f] %s: done\n", MSG_get_clock(),
              MSG_host_get_name(MSG_host_self()).c_str());
}

void server() {
  while (true) {
    /* simulated data reception */
    m_task_t task = nullptr;
    MSG_task_get(&task, PORT_22);

    /* simulated task execution */
    MSG_task_execute(task);
    m_host_t source = task->source;
    MSG_task_destroy(task);

    /* simulated data transfer */
    m_task_t ack = MSG_task_create("Ack", 0, 0.01e6); /* 0 MFlop, 10KB */
    MSG_task_put(ack, source, PORT_23);
  }
}

}  // namespace

int main() {
  // A small LAN: one client host, one server host.
  MSG_init(sg::platform::make_client_server_lan(1, 1, 5e8, 2e9, 1.25e7, 1e-4));

  MSG_process_create("client", client, MSG_get_host_by_name("client1"));
  MSG_process_create("server", server, MSG_get_host_by_name("server1"), /*daemon=*/true);

  const double end = MSG_main();
  std::printf("Simulation ended at t=%.6f s\n", end);
  MSG_clean();
  return 0;
}
