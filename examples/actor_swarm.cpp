/// actor_swarm — the "millions of simulated processes" demonstration.
///
/// Spawns a swarm of actor pairs across a multi-zone cluster platform: each
/// pair lives on one host and rendezvouses over its own interned mailbox a
/// few times, then both actors exit. This exercises exactly the scale path
/// the fiber runtime is built for — pooled recycled stacks, slot-arena
/// actors, dense mailbox ids, per-shard run queues — and reports the cost:
/// spawn rate, wakeups/s, context switches/s, and peak bytes per actor.
///
/// Usage: actor_swarm [n_actors] [rounds]
///   n_actors  total actors, rounded to a pair multiple (default 20000,
///             overridable with SWARM_ACTORS; the headline run is 1000000)
///   rounds    messages per pair (default 2)
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/kernel.hpp"
#include "platform/platform.hpp"
#include "xbt/config.hpp"

using sg::kernel::Kernel;
using sg::kernel::MailboxId;

namespace {

/// Current and peak resident set, from /proc (Linux); zeros elsewhere.
struct Rss {
  size_t current = 0;
  size_t peak = 0;
};

Rss read_rss() {
  Rss r;
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f)) {
      size_t kb = 0;
      if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1)
        r.current = kb * 1024;
      else if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1)
        r.peak = kb * 1024;
    }
    std::fclose(f);
  }
  return r;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  long n_actors = 20000;
  if (const char* env = std::getenv("SWARM_ACTORS"))
    n_actors = std::atol(env);
  if (argc > 1)
    n_actors = std::atol(argv[1]);
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 2;
  const long n_pairs = std::max(1L, n_actors / 2);
  n_actors = n_pairs * 2;

  // Swarm tuning: tiny stacks (the bodies below are shallow) and no guard
  // pages — at 1M actors, per-stack mprotect guards would exhaust the
  // default vm.max_map_count VMA budget; slab pooling keeps mappings at
  // one per 256 stacks instead.
  sg::kernel::declare_context_config();
  auto& cfg = sg::xbt::Config::instance();
  cfg.set("contexts/stack-size", 64.0 * 1024);
  cfg.set("contexts/guard-pages", 0.0);

  // A few cluster zones so the per-shard run queues actually shard.
  const int zones = n_actors >= 500000 ? 16 : 4;
  const int hosts_per_zone = 64;
  sg::platform::Platform p;
  for (int z = 0; z < zones; ++z) {
    sg::platform::ClusterZoneSpec zone;
    zone.name = "zone" + std::to_string(z);
    zone.host_prefix = "z" + std::to_string(z) + "-";
    zone.count = hosts_per_zone;
    p.add_cluster_zone(zone);
  }
  p.seal();
  const int host_count = static_cast<int>(p.host_count());

  const Rss base = read_rss();
  Kernel kernel(std::move(p));

  const auto t_spawn = std::chrono::steady_clock::now();
  for (long i = 0; i < n_pairs; ++i) {
    const int host = static_cast<int>(i % host_count);
    const MailboxId mbox = kernel.mailbox_by_name("pair:" + std::to_string(i));
    kernel.spawn("rx" + std::to_string(i), host, [&kernel, mbox, rounds] {
      for (int r = 0; r < rounds; ++r)
        kernel.recv(mbox);
    });
    kernel.spawn("tx" + std::to_string(i), host, [&kernel, mbox, rounds] {
      for (int r = 0; r < rounds; ++r)
        kernel.send(mbox, nullptr, 1e3);
    });
  }
  const double spawn_wall = seconds_since(t_spawn);

  const auto t_run = std::chrono::steady_clock::now();
  const double sim_end = kernel.run();
  const double run_wall = seconds_since(t_run);

  const Rss after = read_rss();
  const auto& st = kernel.stats();
  const auto pool = kernel.context_factory().pool_stats();
  const double bytes_per_actor =
      after.peak > base.current ? static_cast<double>(after.peak - base.current) /
                                      static_cast<double>(n_actors)
                                : 0.0;

  std::printf("swarm: %ld actors (%ld pairs x %d rounds) on %d hosts in %d zones [%s backend]\n",
              n_actors, n_pairs, rounds, host_count, zones,
              kernel.context_factory().backend_name());
  std::printf("  spawn:    %.2f s (%.0f actors/s)\n", spawn_wall,
              static_cast<double>(n_actors) / spawn_wall);
  std::printf("  run:      %.2f s simulating %.3f s (%" PRIu64 " wakeups, %.0f wakeups/s)\n",
              run_wall, sim_end, st.wakeups, static_cast<double>(st.wakeups) / run_wall);
  std::printf("  switches: %" PRIu64 " (%.0f/s)\n", st.context_switches,
              static_cast<double>(st.context_switches) / run_wall);
  std::printf("  memory:   peak rss %.1f MiB (%.0f bytes/actor)\n",
              static_cast<double>(after.peak) / (1024.0 * 1024.0), bytes_per_actor);
  std::printf("  stacks:   %zu allocated, %zu free, %zu slabs, %zu B usable each\n",
              pool.stacks_allocated, pool.stacks_free, pool.slabs, pool.stack_bytes);
  return 0;
}
