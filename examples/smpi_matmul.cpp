/// The paper's SMPI example: 1-D parallel matrix multiplication. Matrices
/// are distributed in vertical strips; at every step the owner broadcasts
/// one column block, and every rank updates its strip of C with a local
/// dgemm wrapped in SMPI_BENCH_ONCE (measured once for real, replayed on
/// the simulated — possibly heterogeneous — hosts afterwards).
#include <cstdio>
#include <vector>

#include "platform/platform.hpp"
#include "smpi/smpi.hpp"

using namespace sg::smpi;

namespace {

/// Row-major C += alpha * col (M x 1) * row (1 x NN): the rank-1 update at
/// the heart of the strip algorithm (stands in for the paper's cblas_dgemm).
void local_rank1_update(int M, int NN, double alpha, const double* col, const double* row,
                        double beta, double* C) {
  for (int i = 0; i < M; ++i) {
    const double a = alpha * col[i];
    double* c = C + static_cast<size_t>(i) * NN;
    for (int j = 0; j < NN; ++j)
      c[j] = a * row[j] + (beta != 1.0 ? beta * c[j] : c[j]);
  }
}

void parallel_mat_mult(int M, int N, int K, double alpha, const double* A, const double* B,
                       double beta, double* C) {
  const int num_proc = MPI_Comm_size();
  const int my_id = MPI_Comm_rank();
  const int KK = K / num_proc;
  const int NN = N / num_proc;
  std::vector<double> buf_col(static_cast<size_t>(M));

  for (int k = 0; k < K; ++k) {
    if (k / KK == my_id)
      for (int i = 0; i < M; ++i)
        buf_col[static_cast<size_t>(i)] = A[static_cast<size_t>(i) * KK + (k % KK)];
    MPI_Bcast(buf_col.data(), M, MPI_DOUBLE, k / KK);
    /* Start benchmarking */
    SMPI_BENCH_ONCE_RUN_ONCE_BEGIN();
    /* The local compute kernel (the paper calls cblas_dgemm here) */
    local_rank1_update(M, NN, alpha, buf_col.data(), &B[static_cast<size_t>(k) * NN], k ? 1.0 : beta,
                       C);
    /* Stop benchmarking */
    SMPI_BENCH_ONCE_RUN_ONCE_END();
  }
}

double run_on(sg::platform::Platform platform, int P, int M, const char* label) {
  bench_reset();
  const double makespan = smpi_run(std::move(platform), P, [&](int rank) {
    const int NN = M / P;
    const int KK = M / P;
    std::vector<double> A(static_cast<size_t>(M) * KK, 1.0 + rank);
    std::vector<double> B(static_cast<size_t>(M) * NN, 0.5);
    std::vector<double> C(static_cast<size_t>(M) * NN, 0.0);
    parallel_mat_mult(M, M, M, 1.0, A.data(), B.data(), 0.0, C.data());
  });
  std::printf("%-14s P=%d M=%d -> simulated makespan %.4f s\n", label, P, M, makespan);
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  const int P = argc > 1 ? std::atoi(argv[1]) : 4;
  const int M = argc > 2 ? std::atoi(argv[2]) : 256;

  // Homogeneous cluster.
  sg::platform::Platform homo;
  {
    auto sw = homo.add_router("sw");
    for (int i = 0; i < P; ++i) {
      auto h = homo.add_host("h" + std::to_string(i), 1e9);
      homo.add_edge(h, sw, homo.add_link("l" + std::to_string(i), 1.25e8, 5e-5));
    }
    homo.seal();
  }
  // Heterogeneous platform: same topology, speeds 1x .. 1/P x.
  sg::platform::Platform hetero;
  {
    auto sw = hetero.add_router("sw");
    for (int i = 0; i < P; ++i) {
      auto h = hetero.add_host("h" + std::to_string(i), 1e9 / (1.0 + i));
      hetero.add_edge(h, sw, hetero.add_link("l" + std::to_string(i), 1.25e8, 5e-5));
    }
    hetero.seal();
  }

  const double t_homo = run_on(std::move(homo), P, M, "homogeneous");
  const double t_hetero = run_on(std::move(hetero), P, M, "heterogeneous");
  std::printf("heterogeneity slowdown: %.2fx (the slowest strip dominates)\n", t_hetero / t_homo);
  return 0;
}
