/// The paper's GRAS ping-pong, written once and deployed both ways:
///   ./gras_pingpong sim    — runs inside the simulator (SURF timing)
///   ./gras_pingpong real   — runs over real TCP sockets on localhost
/// The client/server bodies are shared verbatim between the two modes —
/// the paper's headline GRAS feature ("unmodified code run in simulation
/// mode or in real-world mode").
#include <cstdio>
#include <cstring>

#include "gras/gras.hpp"
#include "platform/platform.hpp"

using namespace sg::gras;
using sg::datadesc::Value;
using sg::datadesc::datadesc_by_name;

namespace {

void declare_types() {
  msgtype_declare("ping", datadesc_by_name("int")); /* name, payload */
  msgtype_declare("pong", datadesc_by_name("int"));
}

void client() {
  declare_types();
  os_sleep(1.0); /* Wait for the server startup (as in the paper) */

  auto peer = socket_client("server-host", 4000);
  int ping = 1234;
  std::printf("[%8.3f] client: sending ping=%d\n", os_time(), ping);
  msg_send(peer, "ping", Value(ping)); /* dest, msgtype, payload */

  Message m = msg_wait(6.0, "pong"); /* timeout, wanted msgtype */
  std::printf("[%8.3f] client: got pong=%ld from %s\n", os_time(), (long)m.payload.as_int(),
              m.source->peer().c_str());
}

void server() {
  declare_types();
  cb_register("ping", [](Message& m) {
    const int msg = static_cast<int>(m.payload.as_int());
    std::printf("[%8.3f] server: got ping=%d\n", os_time(), msg);
    GRAS_BENCH_ALWAYS_BEGIN();
    /* Some computation whose duration should be simulated */
    volatile double x = 1.0;
    for (int i = 0; i < 1000000; ++i)
      x = x * 1.0000001;
    GRAS_BENCH_ALWAYS_END();
    /* Send data back as payload of pong message to the ping's source */
    msg_send(m.source, "pong", Value(msg + 1));
  });
  socket_server(4000);
  msg_handle(600.0); /* wait for next message (up to 600s) and handle it */
}

}  // namespace

int main(int argc, char** argv) {
  const bool real = argc > 1 && std::strcmp(argv[1], "real") == 0;

  if (real) {
    std::printf("=== GRAS ping-pong, real-world mode (TCP on localhost) ===\n");
    RealWorld world;
    world.spawn("server", "server-host", server);
    world.spawn("client", "client-host", client);
    const double wall = world.join_all();
    std::printf("done in %.3f wall seconds\n", wall);
  } else {
    std::printf("=== GRAS ping-pong, simulation mode ===\n");
    sg::platform::Platform p;
    auto c = p.add_host("client-host", 1e9);
    auto s = p.add_host("server-host", 1e9);
    p.add_route(c, s, {p.add_link("wan", 1.25e6, 2.5e-2)});
    SimWorld world(std::move(p));
    world.spawn("server", "server-host", server);
    world.spawn("client", "client-host", client);
    const double end = world.run();
    std::printf("done at t=%.3f simulated seconds\n", end);
  }
  return 0;
}
