/// "A peer-to-peer file-sharing application running on volatile Internet
/// hosts" — the paper's last target application. Peers live on hosts whose
/// availability follows failure traces: they exchange chunk announcements
/// and download chunks from each other, surviving churn via timeouts and
/// kernel auto-restart.
#include <cstdio>
#include <set>
#include <vector>

#include "msg/msg.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"

using namespace sg::msg;

namespace {

constexpr int kChunkChannel = 0;
constexpr int kChunks = 8;
constexpr double kChunkBytes = 2e6;

struct ChunkRequest {
  int chunk;
  m_host_t requester;
};

std::vector<std::set<int>> g_have;  // per-peer chunk ownership (shared address space!)

/// Serve chunk requests forever (daemon, restarted with its host).
void seeder(int my_id) {
  while (true) {
    m_task_t req = nullptr;
    MSG_task_get(&req, kChunkChannel);
    auto* r = static_cast<ChunkRequest*>(req->data);
    const int chunk = r->chunk;
    const m_host_t dest = r->requester;
    delete r;
    MSG_task_destroy(req);
    if (!g_have[static_cast<size_t>(my_id)].count(chunk))
      continue;  // lost it (restart) — requester will time out and retry
    m_task_t data = MSG_task_create("chunk" + std::to_string(chunk), 1e6, kChunkBytes,
                                    new int(chunk));
    try {
      MSG_task_put_with_timeout(data, dest, 10 + chunk, 30.0);
    } catch (const sg::xbt::Exception&) {
      MSG_task_destroy(data);  // requester died; drop
    }
  }
}

/// Fetch all chunks from whoever has them, retrying across failures.
void leecher(int my_id, int n_peers) {
  sg::xbt::Rng rng(static_cast<unsigned>(my_id) * 77 + 1);
  auto& mine = g_have[static_cast<size_t>(my_id)];
  int attempts = 0;
  while (static_cast<int>(mine.size()) < kChunks && attempts < 400) {
    ++attempts;
    // Pick a missing chunk and a random other peer to ask.
    int want = -1;
    for (int c = 0; c < kChunks; ++c)
      if (!mine.count(c)) {
        want = c;
        break;
      }
    if (want < 0)
      break;
    int peer = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n_peers - 1)));
    if (peer == my_id)
      continue;
    const m_host_t peer_host = MSG_get_host_by_name("peer" + std::to_string(peer));
    if (!MSG_host_is_on(peer_host))
      continue;  // peer is down right now
    try {
      m_task_t req = MSG_task_create("req", 0, 1e3, new ChunkRequest{want, MSG_host_self()});
      MSG_task_put_with_timeout(req, peer_host, kChunkChannel, 5.0);
      m_task_t data = nullptr;
      MSG_task_get_with_timeout(&data, 10 + want, 30.0);
      mine.insert(*static_cast<int*>(data->data));
      delete static_cast<int*>(data->data);
      MSG_task_destroy(data);
    } catch (const sg::xbt::Exception&) {
      MSG_process_sleep(1.0);  // peer churned away; back off and retry
    }
  }
  std::printf("[%8.3f] peer%d: %zu/%d chunks after %d attempts\n", MSG_get_clock(), my_id,
              mine.size(), kChunks, attempts);
}

}  // namespace

int main(int argc, char** argv) {
  const int n_peers = argc > 1 ? std::atoi(argv[1]) : 6;

  // Internet-ish star with volatile hosts: every peer flaps with its own
  // periodic failure trace (phase-shifted square waves).
  sg::platform::Platform p;
  auto hub = p.add_router("hub");
  for (int i = 0; i < n_peers; ++i) {
    sg::platform::HostSpec spec;
    spec.name = "peer" + std::to_string(i);
    spec.speed_flops = 1e9;
    if (i != 0) {  // peer0 (the initial seeder) stays up
      std::vector<sg::trace::TracePoint> points{{0.0, 1.0},
                                                {20.0 + 7.0 * i, 0.0},
                                                {26.0 + 7.0 * i, 1.0}};
      spec.state = sg::trace::Trace("churn" + std::to_string(i), points, 60.0 + 3.0 * i);
    }
    auto h = p.add_host(spec);
    p.add_edge(h, hub, p.add_link("up" + std::to_string(i), 5e6, 2e-2));
  }
  p.seal();
  MSG_init(std::move(p), /*channels=*/kChunks + 10);

  g_have.assign(static_cast<size_t>(n_peers), {});
  for (int c = 0; c < kChunks; ++c)
    g_have[0].insert(c);  // peer0 seeds everything

  for (int i = 0; i < n_peers; ++i) {
    MSG_process_create("seeder" + std::to_string(i), [i] { seeder(i); },
                       MSG_get_host_by_name("peer" + std::to_string(i)),
                       /*daemon=*/true, /*auto_restart=*/true);
    if (i != 0)
      MSG_process_create("leecher" + std::to_string(i), [i, n_peers] { leecher(i, n_peers); },
                         MSG_get_host_by_name("peer" + std::to_string(i)),
                         /*daemon=*/false, /*auto_restart=*/true);
  }

  const double end = MSG_main();
  int complete = 0;
  for (int i = 0; i < n_peers; ++i)
    complete += static_cast<int>(g_have[static_cast<size_t>(i)].size()) == kChunks;
  std::printf("t=%.3f s: %d/%d peers hold the full file despite churn\n", end, complete, n_peers);
  MSG_clean();
  return 0;
}
