/// "A peer-to-peer file-sharing application running on volatile Internet
/// hosts" — the paper's last target application. Peers live on hosts whose
/// availability follows failure traces: they exchange chunk announcements
/// and download chunks from each other, surviving churn via timeouts and
/// kernel auto-restart.
///
/// Written directly against the kernel actor API: each peer owns an interned
/// request mailbox plus one data mailbox per chunk; every id is interned once
/// in main() before the churn starts.
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"

using sg::kernel::Kernel;
using sg::kernel::MailboxId;

namespace {

constexpr int kChunks = 8;
constexpr double kChunkBytes = 2e6;

struct ChunkRequest {
  int chunk;
  int requester;  ///< peer index to ship the chunk back to
};

struct Mailboxes {
  std::vector<MailboxId> request;            ///< per peer: incoming chunk requests
  std::vector<std::vector<MailboxId>> data;  ///< per peer, per chunk: downloads
};

std::vector<std::set<int>> g_have;  // per-peer chunk ownership (shared address space!)

/// Serve chunk requests forever (daemon, restarted with its host).
void seeder(Kernel& k, const Mailboxes& mb, int my_id) {
  while (true) {
    auto* r = static_cast<ChunkRequest*>(k.recv(mb.request[static_cast<size_t>(my_id)]));
    const int chunk = r->chunk;
    const int dest = r->requester;
    delete r;
    if (!g_have[static_cast<size_t>(my_id)].count(chunk))
      continue;  // lost it (restart) — requester will time out and retry
    // unique_ptr until delivery: frees the payload if the send times out OR
    // this seeder is killed mid-transfer by its own host flapping.
    auto payload = std::make_unique<int>(chunk);
    try {
      k.send(mb.data[static_cast<size_t>(dest)][static_cast<size_t>(chunk)], payload.get(),
             kChunkBytes, 30.0);
      payload.release();  // delivered: the leecher owns it now
    } catch (const sg::xbt::Exception&) {
      // requester died before the transfer finished; drop
    }
  }
}

/// Fetch all chunks from whoever has them, retrying across failures.
void leecher(Kernel& k, const Mailboxes& mb, int my_id, int n_peers) {
  sg::xbt::Rng rng(static_cast<unsigned>(my_id) * 77 + 1);
  auto& mine = g_have[static_cast<size_t>(my_id)];
  int attempts = 0;
  while (static_cast<int>(mine.size()) < kChunks && attempts < 400) {
    ++attempts;
    // Pick a missing chunk and a random other peer to ask.
    int want = -1;
    for (int c = 0; c < kChunks; ++c)
      if (!mine.count(c)) {
        want = c;
        break;
      }
    if (want < 0)
      break;
    int peer = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n_peers - 1)));
    if (peer == my_id)
      continue;
    if (!k.engine().host_is_on(peer))
      continue;  // peer is down right now
    auto req = std::make_unique<ChunkRequest>(ChunkRequest{want, my_id});
    try {
      k.send(mb.request[static_cast<size_t>(peer)], req.get(), 1e3, 5.0);
      req.release();  // delivered: the seeder owns it now
      void* raw = k.recv(mb.data[static_cast<size_t>(my_id)][static_cast<size_t>(want)], 30.0);
      std::unique_ptr<int> chunk(static_cast<int*>(raw));
      mine.insert(*chunk);
    } catch (const sg::xbt::Exception&) {
      k.sleep_for(1.0);  // peer churned away; back off and retry
    }
  }
  std::printf("[%8.3f] peer%d: %zu/%d chunks after %d attempts\n", k.now(), my_id, mine.size(),
              kChunks, attempts);
}

}  // namespace

int main(int argc, char** argv) {
  const int n_peers = argc > 1 ? std::atoi(argv[1]) : 6;

  // Internet-ish star with volatile hosts: every peer flaps with its own
  // periodic failure trace (phase-shifted square waves).
  sg::platform::Platform p;
  auto hub = p.add_router("hub");
  for (int i = 0; i < n_peers; ++i) {
    sg::platform::HostSpec spec;
    spec.name = "peer" + std::to_string(i);
    spec.speed_flops = 1e9;
    if (i != 0) {  // peer0 (the initial seeder) stays up
      std::vector<sg::trace::TracePoint> points{{0.0, 1.0},
                                                {20.0 + 7.0 * i, 0.0},
                                                {26.0 + 7.0 * i, 1.0}};
      spec.state = sg::trace::Trace("churn" + std::to_string(i), points, 60.0 + 3.0 * i);
    }
    auto h = p.add_host(spec);
    p.add_edge(h, hub, p.add_link("up" + std::to_string(i), 5e6, 2e-2));
  }
  p.seal();
  Kernel kernel(std::move(p));

  Mailboxes mb;
  mb.request.resize(static_cast<size_t>(n_peers));
  mb.data.resize(static_cast<size_t>(n_peers));
  for (int i = 0; i < n_peers; ++i) {
    mb.request[static_cast<size_t>(i)] = kernel.mailbox_by_name("req:" + std::to_string(i));
    mb.data[static_cast<size_t>(i)].resize(kChunks);
    for (int c = 0; c < kChunks; ++c)
      mb.data[static_cast<size_t>(i)][static_cast<size_t>(c)] =
          kernel.mailbox_by_name("data:" + std::to_string(i) + ":" + std::to_string(c));
  }

  g_have.assign(static_cast<size_t>(n_peers), {});
  for (int c = 0; c < kChunks; ++c)
    g_have[0].insert(c);  // peer0 seeds everything

  for (int i = 0; i < n_peers; ++i) {
    kernel.spawn("seeder" + std::to_string(i), i, [&kernel, &mb, i] { seeder(kernel, mb, i); },
                 /*daemon=*/true, /*auto_restart=*/true);
    if (i != 0)
      kernel.spawn("leecher" + std::to_string(i), i,
                   [&kernel, &mb, i, n_peers] { leecher(kernel, mb, i, n_peers); },
                   /*daemon=*/false, /*auto_restart=*/true);
  }

  const double end = kernel.run();
  int complete = 0;
  for (int i = 0; i < n_peers; ++i)
    complete += static_cast<int>(g_have[static_cast<size_t>(i)].size()) == kChunks;
  std::printf("t=%.3f s: %d/%d peers hold the full file despite churn\n", end, complete, n_peers);
  return 0;
}
