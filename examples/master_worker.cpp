/// Master/worker on a commodity cluster — "a parallel linear system solver
/// on a commodity cluster" is the first target application the paper lists;
/// this is the canonical scheduling skeleton for it: a master scatters
/// compute tasks of uneven size to workers and collects results.
///
/// Written directly against the kernel actor API: each worker owns one
/// interned mailbox for incoming tasks, results flow back through a shared
/// "results" mailbox. Mailbox names are interned once at startup; the
/// per-task loop is entirely id-keyed.
#include <cstdio>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "platform/builders.hpp"
#include "xbt/random.hpp"

using sg::kernel::Kernel;
using sg::kernel::MailboxId;

namespace {

struct Work {
  int id;
  int worker;  ///< which worker processed it (stamped by the worker)
  double flops;
  bool poison = false;
};

void worker(Kernel& k, int my_index, MailboxId my_tasks, MailboxId results) {
  while (true) {
    auto* work = static_cast<Work*>(k.recv(my_tasks));
    if (work->poison) {
      delete work;
      return;
    }
    k.execute(work->flops);
    work->worker = my_index;
    k.send(results, work, 1e4);
  }
}

void master(Kernel& k, int n_tasks, int n_workers, const std::vector<MailboxId>& task_mbox,
            MailboxId results) {
  sg::xbt::Rng rng(7);
  // Dispatch: send each task to the next idle worker (greedy self-scheduling
  // via the results mailbox).
  int sent = 0, received = 0;
  // Prime one task per worker.
  for (int w = 1; w <= n_workers && sent < n_tasks; ++w, ++sent)
    k.send(task_mbox[static_cast<size_t>(w)], new Work{sent, 0, rng.uniform(5e8, 2e9)}, 1e6);
  while (received < n_tasks) {
    auto* work = static_cast<Work*>(k.recv(results));
    const int idle = work->worker;
    ++received;
    std::printf("[%8.3f] master: task %d done by node%d (%d/%d)\n", k.now(), work->id, idle,
                received, n_tasks);
    delete work;
    if (sent < n_tasks)
      k.send(task_mbox[static_cast<size_t>(idle)], new Work{sent++, 0, rng.uniform(5e8, 2e9)}, 1e6);
  }
  // Poison pills.
  for (int w = 1; w <= n_workers; ++w)
    k.send(task_mbox[static_cast<size_t>(w)], new Work{-1, 0, 0.0, true}, 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const int n_workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n_tasks = argc > 2 ? std::atoi(argv[2]) : 16;

  sg::platform::ClusterSpec spec;
  spec.count = n_workers + 1;  // node0 is the master
  spec.host_speed = 1e9;
  Kernel kernel(sg::platform::make_cluster(spec));

  // Intern every mailbox once, before the actors start.
  const MailboxId results = kernel.mailbox_by_name("results");
  std::vector<MailboxId> task_mbox(static_cast<size_t>(n_workers) + 1, sg::kernel::kNoMailbox);
  for (int w = 1; w <= n_workers; ++w)
    task_mbox[static_cast<size_t>(w)] = kernel.mailbox_by_name("tasks:" + std::to_string(w));

  kernel.spawn("master", 0, [&] { master(kernel, n_tasks, n_workers, task_mbox, results); });
  for (int w = 1; w <= n_workers; ++w)
    kernel.spawn("worker" + std::to_string(w), w,
                 [&kernel, w, &task_mbox, results] {
                   worker(kernel, w, task_mbox[static_cast<size_t>(w)], results);
                 });

  const double end = kernel.run();
  std::printf("All %d tasks processed by %d workers in %.3f simulated seconds\n", n_tasks,
              n_workers, end);
  return 0;
}
