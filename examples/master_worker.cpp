/// Master/worker on a commodity cluster — "a parallel linear system solver
/// on a commodity cluster" is the first target application the paper lists;
/// this is the canonical MSG scheduling skeleton for it: a master scatters
/// compute tasks of uneven size to workers and collects results.
#include <cstdio>
#include <queue>
#include <vector>

#include "msg/msg.hpp"
#include "platform/builders.hpp"
#include "xbt/random.hpp"

using namespace sg::msg;

namespace {

constexpr int kTaskChannel = 0;
constexpr int kResultChannel = 1;

struct Work {
  int id;
  bool poison = false;
};

void worker(int id) {
  (void)id;
  m_host_t master = MSG_get_host_by_name("node0");
  while (true) {
    m_task_t task = nullptr;
    MSG_task_get(&task, kTaskChannel);
    auto* work = static_cast<Work*>(task->data);
    const bool poison = work->poison;
    if (!poison)
      MSG_task_execute(task);
    MSG_task_destroy(task);
    if (poison) {
      delete work;
      return;
    }
    m_task_t result = MSG_task_create("result", 0, 1e4, work);
    MSG_task_put(result, master, kResultChannel);
  }
}

void master(int n_tasks, int n_workers) {
  sg::xbt::Rng rng(7);
  // Dispatch: send each task to the next idle worker (greedy self-scheduling
  // via result channel).
  int sent = 0, received = 0;
  // Prime one task per worker.
  for (int w = 1; w <= n_workers && sent < n_tasks; ++w, ++sent) {
    auto* work = new Work{sent, false};
    m_task_t t = MSG_task_create("chunk", rng.uniform(5e8, 2e9), 1e6, work);
    MSG_task_put(t, MSG_get_host_by_name("node" + std::to_string(w)), kTaskChannel);
  }
  while (received < n_tasks) {
    m_task_t result = nullptr;
    MSG_task_get(&result, kResultChannel);
    auto* work = static_cast<Work*>(result->data);
    const int worker_host = result->source.index;
    ++received;
    std::printf("[%8.3f] master: task %d done by %s (%d/%d)\n", MSG_get_clock(), work->id,
                MSG_host_get_name(result->source).c_str(), received, n_tasks);
    delete work;
    MSG_task_destroy(result);
    if (sent < n_tasks) {
      auto* next = new Work{sent++, false};
      m_task_t t = MSG_task_create("chunk", rng.uniform(5e8, 2e9), 1e6, next);
      MSG_task_put(t, m_host_t{worker_host}, kTaskChannel);
    }
  }
  // Poison pills.
  for (int w = 1; w <= n_workers; ++w) {
    m_task_t t = MSG_task_create("stop", 0, 1e3, new Work{-1, true});
    MSG_task_put(t, MSG_get_host_by_name("node" + std::to_string(w)), kTaskChannel);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int n_workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n_tasks = argc > 2 ? std::atoi(argv[2]) : 16;

  sg::platform::ClusterSpec spec;
  spec.count = n_workers + 1;  // node0 is the master
  spec.host_speed = 1e9;
  MSG_init(sg::platform::make_cluster(spec));

  MSG_process_create("master", [=] { master(n_tasks, n_workers); }, MSG_get_host_by_name("node0"));
  for (int w = 1; w <= n_workers; ++w)
    MSG_process_create("worker" + std::to_string(w), [w] { worker(w); },
                       MSG_get_host_by_name("node" + std::to_string(w)));

  const double end = MSG_main();
  std::printf("All %d tasks processed by %d workers in %.3f simulated seconds\n", n_tasks,
              n_workers, end);
  MSG_clean();
  return 0;
}
