/// Volunteer-computing overlay on a dynamic platform — the HPDC'06 target
/// deployment where membership, not just availability, is transient. A stable
/// coordinator farms work units out to volunteer hosts; volunteers *depart*
/// (host leaves the platform: residents killed, constraints released) and
/// *return* on availability traces promoted to whole-host membership events by
/// the membership driver, and fresh volunteers are donated after the platform
/// was sealed via runtime join_host.
///
/// Graceful degradation, end to end:
///   * workers are restart-on-rejoin daemons — killed with their host,
///     respawned when it returns;
///   * the coordinator rides vanished peers with bounded-retry-with-backoff
///     (retry_send / retry_recv) instead of dying on the first timeout;
///   * a work unit whose volunteer departs mid-compute is counted lost and
///     the coordinator moves on.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/membership.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"

using sg::kernel::HostChurn;
using sg::kernel::Kernel;
using sg::kernel::MailboxId;
using sg::kernel::RetryPolicy;

int main(int argc, char** argv) {
  const int n_units = argc > 1 ? std::atoi(argv[1]) : 40;

  // Sealed star cluster: node0 is the stable coordinator, node1..4 are the
  // founding volunteers.
  sg::platform::Platform p;
  sg::platform::ClusterZoneSpec spec;
  spec.name = "overlay";
  spec.host_prefix = "node";
  spec.count = 5;
  spec.host_speed = 1e9;
  spec.link_bandwidth = 1.25e8;
  spec.link_latency = 5e-4;
  spec.backbone_bandwidth = 1.25e9;
  spec.backbone_latency = 1e-3;
  spec.backbone_fatpipe = true;
  p.add_cluster_zone(spec);
  p.seal();

  Kernel k(std::move(p));
  const auto zone = *k.engine().platform().zone_by_name("overlay");

  // Three volunteers donated after seal: join_host wires each into the
  // cluster — shard map, route segments, solver constraints — in O(affected).
  std::vector<int> volunteers{1, 2, 3, 4};
  for (int j = 0; j < 3; ++j)
    volunteers.push_back(k.join_host(zone));
  const size_t n_founding = 4;

  // Every volunteer flaps its *membership* on a staggered square wave:
  // 4–7.5 s donated, 1.5 s gone. The driver daemon (on the stable
  // coordinator host) promotes each trace edge to leave_host / rejoin_host.
  std::vector<HostChurn> churn;
  for (size_t i = 0; i < volunteers.size(); ++i) {
    auto wave = sg::trace::square_wave("churn" + std::to_string(volunteers[i]),
                                       /*hi=*/1.0, /*hi_duration=*/4.0 + 0.5 * static_cast<double>(i),
                                       /*lo=*/0.0, /*lo_duration=*/1.5);
    churn.push_back({volunteers[i], std::move(wave)});
  }
  sg::kernel::start_membership_driver(k, /*driver_host=*/0, std::move(churn));

  // Workers: one restart-on-rejoin daemon per volunteer. Dies with its host,
  // respawns when the host rejoins, picks up whatever is queued on its inbox.
  std::vector<int> completed(k.engine().platform().host_count(), 0);
  for (const int h : volunteers) {
    sg::kernel::register_rejoin_daemon(
        k, "worker@" + k.engine().platform().host(h).name, h, [&k, &completed, h] {
          const MailboxId inbox = k.mailbox_by_name("tasks:" + std::to_string(h));
          const MailboxId results = k.mailbox_by_name("results");
          while (true) {
            void* raw = k.recv(inbox);
            const auto unit = reinterpret_cast<std::intptr_t>(raw);
            k.execute(2e8 + 5e7 * static_cast<double>(unit % 3));
            completed[static_cast<size_t>(h)]++;
            k.send(results, raw, 1e4);
          }
        });
  }

  // Coordinator: round-robin dispatch with bounded retry. A volunteer that
  // departed mid-round makes the send time out and back off; one that
  // departed mid-compute loses the unit (counted, not fatal).
  int done = 0, lost = 0;
  k.spawn("coordinator", 0, [&] {
    const MailboxId results = k.mailbox_by_name("results");
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.timeout = 0.5;
    policy.backoff = 2.0;
    policy.max_timeout = 8.0;
    for (int u = 1; u <= n_units; ++u) {
      const int w = volunteers[static_cast<size_t>(u - 1) % volunteers.size()];
      if (!retry_send(k, k.mailbox_by_name("tasks:" + std::to_string(w)),
                      reinterpret_cast<void*>(static_cast<std::intptr_t>(u)), 1e5, policy)) {
        ++lost;
        continue;
      }
      if (retry_recv(k, results, policy) != nullptr)
        ++done;
      else
        ++lost;
    }
  });

  const double end = k.run();

  std::printf("t=%.3f s: %d/%d work units done, %d lost to churn\n", end, done, n_units, lost);
  for (size_t i = 0; i < volunteers.size(); ++i) {
    const int h = volunteers[i];
    std::printf("  %-8s %s: %d units\n", k.engine().platform().host(h).name.c_str(),
                i < n_founding ? "(founding)   " : "(joined late)",
                completed[static_cast<size_t>(h)]);
  }
  return 0;
}
