/// Trace-driven fault injection ("simulation of dynamic resource failures"
/// in the paper): hosts and links of a small cluster go down and come back
/// following availability/state traces while a workload of computations,
/// transfers, and timers keeps running. The engine delivers each failure
/// only to the actions actually on the dead resource (O(affected), via the
/// solver's element arena and the per-host sleep index), and the example
/// restarts work as resources heal — a miniature dependability study.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"
#include "xbt/str.hpp"

using namespace sg::core;
using namespace sg::platform;

namespace {

/// 16 hosts on a switch; every 4th host flaps (2s up / 0.5s down), two links
/// flap on their own schedule, and one host's speed follows a square wave.
Platform make_flaky_cluster() {
  Platform p;
  const NodeId sw = p.add_router("switch");
  for (int i = 0; i < 16; ++i) {
    HostSpec host;
    host.name = sg::xbt::format("host%d", i);
    host.speed_flops = 1e9;
    if (i % 4 == 0) {
      // 2.5s up / 0.5s down, phase-shifted per host; wrap points that would
      // spill past the period (a trace is one period long).
      const double period = 3.0;
      const double phase = 0.3 * (i / 4);
      const double down_t = 2.0 + phase;
      const double up_t = 2.5 + phase;
      std::vector<sg::trace::TracePoint> pts;
      if (up_t < period)
        pts = {{0.0, 1.0}, {down_t, 0.0}, {up_t, 1.0}};
      else
        pts = {{0.0, 0.0}, {up_t - period, 1.0}, {down_t, 0.0}};
      host.state = sg::trace::Trace(host.name + "-state", pts, period);
    }
    if (i == 1)
      host.availability = sg::trace::square_wave(host.name + "-avail", 1.0, 1.0, 0.4, 1.0);
    const NodeId h = p.add_host(host);
    LinkSpec link;
    link.name = host.name + "-link";
    link.bandwidth_Bps = 1.25e8;
    link.latency_s = 1e-4;
    if (i == 3 || i == 7)
      link.state = sg::trace::Trace(link.name + "-state", {{0.0, 1.0}, {1.5, 0.0}, {2.0, 1.0}}, 2.5);
    const LinkId l = p.add_link(link);
    p.add_edge(h, sw, l);
  }
  p.seal();
  return p;
}

}  // namespace

int main() {
  Engine engine(make_flaky_cluster());

  int done = 0, failed_exec = 0, failed_comm = 0, failed_sleep = 0;
  int host_outages = 0, link_outages = 0;
  engine.set_resource_observer([&](bool is_host, int index, bool now_on) {
    if (!now_on)
      ++(is_host ? host_outages : link_outages);
    std::printf("t=%7.3f  %s %d %s\n", engine.now(), is_host ? "host" : "link", index,
                now_on ? "is back" : "FAILED");
  });

  // The workload: a computation per host, a ring of transfers, and a watchdog
  // timer on each flapping host. Failed work is resubmitted as soon as the
  // resource allows; transfers re-route the moment comm_start is retried.
  auto submit_exec = [&](int host) {
    if (engine.host_is_on(host))
      engine.exec_start(host, 5e8, 1.0, sg::xbt::format("job-h%d", host));
  };
  auto submit_comm = [&](int src) { engine.comm_start(src, (src + 1) % 16, 2e7); };
  auto submit_sleep = [&](int host) {
    if (engine.host_is_on(host))
      engine.sleep_start(host, 0.25, "watchdog");
  };
  for (int h = 0; h < 16; ++h) {
    submit_exec(h);
    submit_comm(h);
    if (h % 4 == 0)
      submit_sleep(h);
  }

  while (engine.now() < 10.0) {
    auto events = engine.step(10.0);
    if (events.empty() && engine.next_event_time() > 10.0)
      break;
    for (const auto& ev : events) {
      const Action& a = *ev.action;
      if (ev.failed) {
        switch (a.kind()) {
          case ActionKind::kExec:
            ++failed_exec;
            submit_exec(a.host());
            break;
          case ActionKind::kPtask:
            ++failed_exec;
            break;
          case ActionKind::kComm:
            ++failed_comm;
            // Retry later: the next completion on the source host resubmits.
            break;
          case ActionKind::kSleep:
            ++failed_sleep;
            submit_sleep(a.host());
            break;
        }
        continue;
      }
      ++done;
      switch (a.kind()) {
        case ActionKind::kExec:
          submit_exec(a.host());
          submit_comm(a.host());  // also retries transfers killed by link loss
          break;
        case ActionKind::kComm:
          submit_comm(a.host());
          break;
        case ActionKind::kSleep:
          submit_sleep(a.host());
          break;
        case ActionKind::kPtask:
          break;
      }
    }
  }

  std::printf("\nafter %.2f simulated seconds:\n", engine.now());
  std::printf("  %6d activities completed\n", done);
  std::printf("  %6d executions failed (resubmitted)\n", failed_exec);
  std::printf("  %6d transfers failed (re-routed on retry)\n", failed_comm);
  std::printf("  %6d watchdog timers killed with their host\n", failed_sleep);
  std::printf("  %6d host outages, %d link outages delivered O(affected)\n", host_outages,
              link_outages);

  const bool plausible = done > 0 && host_outages > 0 && link_outages > 0 &&
                         (failed_exec + failed_comm + failed_sleep) > 0;
  if (!plausible) {
    std::fprintf(stderr, "fault injection scenario did not exercise failures!\n");
    return 1;
  }
  std::printf("\nthe paper's dependability story: trace-driven failures, scalable delivery.\n");
  return 0;
}
