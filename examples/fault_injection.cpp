/// Trace-driven fault injection ("simulation of dynamic resource failures"
/// in the paper): hosts and links of a two-zone platform go down and come
/// back following availability/state traces while a workload of
/// computations, transfers, and timers keeps running. The engine delivers
/// each failure only to the actions actually on the dead resource
/// (O(affected), via the solver's element arena and the per-host sleep
/// index), and the example restarts work as resources heal — a miniature
/// dependability study.
///
/// The platform is two cluster zones behind a fat-pipe WAN, so the sharded
/// core is on display too: each zone owns a solver shard and its own event
/// heaps, a ring of transfers crosses the WAN twice per lap (coupling the
/// shards through linked replicas), and the final report breaks outages and
/// completed work down per zone through the platform's shard map.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"
#include "xbt/str.hpp"

using namespace sg::core;
using namespace sg::platform;

namespace {

constexpr int kHosts = 16;

/// Two 8-host cluster zones behind a fat-pipe WAN; every 4th host flaps
/// (2s up / 0.5s down), two member links flap on their own schedule, and
/// one host's speed follows a square wave. Traces are attached to the
/// zone-built resources through the mutable spec accessors.
Platform make_flaky_zones() {
  Platform p;
  for (int z = 0; z < 2; ++z) {
    ClusterZoneSpec zone;
    zone.name = sg::xbt::format("dc%d", z);
    zone.host_prefix = zone.name + "-";
    zone.count = kHosts / 2;
    zone.host_speed = 1e9;
    zone.link_bandwidth = 1.25e8;
    zone.link_latency = 1e-4;
    zone.backbone_bandwidth = 1.25e9;
    zone.backbone_latency = 1e-4;
    p.add_cluster_zone(zone);
  }
  const LinkId wan = p.add_link("wan", 1.25e9, 1e-3, SharingPolicy::kFatpipe);
  p.add_edge(p.zone_gateway(0), p.zone_gateway(1), wan);

  for (int i = 0; i < kHosts; ++i) {
    HostSpec& host = p.host_mutable(i);
    if (i % 4 == 0) {
      // 2.5s up / 0.5s down, phase-shifted per host; wrap points that would
      // spill past the period (a trace is one period long).
      const double period = 3.0;
      const double phase = 0.3 * (i / 4);
      const double down_t = 2.0 + phase;
      const double up_t = 2.5 + phase;
      std::vector<sg::trace::TracePoint> pts;
      if (up_t < period)
        pts = {{0.0, 1.0}, {down_t, 0.0}, {up_t, 1.0}};
      else
        pts = {{0.0, 0.0}, {up_t - period, 1.0}, {down_t, 0.0}};
      host.state = sg::trace::Trace(host.name + "-state", pts, period);
    }
    if (i == 1)
      host.availability = sg::trace::square_wave(host.name + "-avail", 1.0, 1.0, 0.4, 1.0);
    if (i == 3 || i == 7) {
      LinkSpec& link = p.link_mutable(*p.link_by_name(host.name + "-link"));
      link.state = sg::trace::Trace(link.name + "-state", {{0.0, 1.0}, {1.5, 0.0}, {2.0, 1.0}}, 2.5);
    }
  }
  p.seal();
  return p;
}

}  // namespace

int main() {
  Engine engine(make_flaky_zones());
  const Platform& plat = engine.platform();
  const ShardMap& smap = plat.shard_map();

  int done = 0, failed_exec = 0, failed_comm = 0, failed_sleep = 0;
  std::vector<int> zone_done(plat.zone_count(), 0);
  std::vector<int> zone_outages(plat.zone_count() + 1, 0);  // [zones..., backbone]
  int host_outages = 0, link_outages = 0;
  engine.set_resource_observer([&](bool is_host, int index, bool now_on) {
    if (!now_on) {
      ++(is_host ? host_outages : link_outages);
      const std::int32_t shard = is_host ? smap.host_shard[static_cast<size_t>(index)]
                                         : smap.link_shard[static_cast<size_t>(index)];
      ++zone_outages[shard == 0 ? plat.zone_count() : static_cast<size_t>(shard - 1)];
    }
    std::printf("t=%7.3f  %s %d %s\n", engine.now(), is_host ? "host" : "link", index,
                now_on ? "is back" : "FAILED");
  });

  // The workload: a computation per host, a ring of transfers (crossing the
  // WAN twice per lap), and a watchdog timer on each flapping host. Failed
  // work is resubmitted as soon as the resource allows; transfers re-route
  // the moment comm_start is retried.
  auto submit_exec = [&](int host) {
    if (engine.host_is_on(host))
      engine.exec_start(host, 5e8, 1.0, sg::xbt::format("job-h%d", host));
  };
  auto submit_comm = [&](int src) { engine.comm_start(src, (src + 1) % kHosts, 2e7); };
  auto submit_sleep = [&](int host) {
    if (engine.host_is_on(host))
      engine.sleep_start(host, 0.25, "watchdog");
  };
  for (int h = 0; h < kHosts; ++h) {
    submit_exec(h);
    submit_comm(h);
    if (h % 4 == 0)
      submit_sleep(h);
  }

  while (engine.now() < 10.0) {
    const double before = engine.now();
    const auto events = engine.run_until(10.0);
    if (events.empty() && engine.now() == before)
      break;  // nothing left to happen before the horizon
    for (const auto& ev : events) {
      const Action& a = *ev.action;
      if (ev.failed) {
        switch (a.kind()) {
          case ActionKind::kExec:
            ++failed_exec;
            submit_exec(a.host());
            break;
          case ActionKind::kPtask:
            ++failed_exec;
            break;
          case ActionKind::kComm:
            ++failed_comm;
            // Retry later: the next completion on the source host resubmits.
            break;
          case ActionKind::kSleep:
            ++failed_sleep;
            submit_sleep(a.host());
            break;
        }
        continue;
      }
      ++done;
      ++zone_done[static_cast<size_t>(plat.zone_of_host(a.host()))];
      switch (a.kind()) {
        case ActionKind::kExec:
          submit_exec(a.host());
          submit_comm(a.host());  // also retries transfers killed by link loss
          break;
        case ActionKind::kComm:
          submit_comm(a.host());
          break;
        case ActionKind::kSleep:
          submit_sleep(a.host());
          break;
        case ActionKind::kPtask:
          break;
      }
    }
  }

  std::printf("\nafter %.2f simulated seconds:\n", engine.now());
  std::printf("  %6d activities completed\n", done);
  std::printf("  %6d executions failed (resubmitted)\n", failed_exec);
  std::printf("  %6d transfers failed (re-routed on retry)\n", failed_comm);
  std::printf("  %6d watchdog timers killed with their host\n", failed_sleep);
  std::printf("  %6d host outages, %d link outages delivered O(affected)\n", host_outages,
              link_outages);

  // Per-zone breakdown through the shard map: each zone is one solver shard,
  // the WAN ring segments couple them through the backbone shard.
  const auto& sys = engine.sharing_system();
  std::printf("\nper-zone (shard map: %d shards, %zu gateway links):\n", smap.shard_count,
              smap.gateway_links.size());
  std::printf("%10s %8s %12s %10s %14s\n", "zone", "shard", "completed", "outages", "solver KB");
  for (size_t z = 0; z < plat.zone_count(); ++z)
    std::printf("%10s %8d %12d %10d %14.1f\n", plat.zone_name(static_cast<int>(z)).c_str(),
                smap.zone_shard[z], zone_done[z], zone_outages[z],
                sys.shard(smap.zone_shard[z]).memory_stats().total_bytes() / 1024.0);
  std::printf("%10s %8d %12s %10d %14.1f  (%zu cross-zone joint solves)\n", "backbone", 0, "-",
              zone_outages[plat.zone_count()], sys.shard(0).memory_stats().total_bytes() / 1024.0,
              sys.group_solve_count());

  const bool plausible = done > 0 && host_outages > 0 && link_outages > 0 &&
                         (failed_exec + failed_comm + failed_sleep) > 0 &&
                         zone_done[0] > 0 && zone_done[1] > 0 && sys.group_solve_count() > 0;
  if (!plausible) {
    std::fprintf(stderr, "fault injection scenario did not exercise failures!\n");
    return 1;
  }
  std::printf("\nthe paper's dependability story: trace-driven failures, scalable delivery.\n");
  return 0;
}
