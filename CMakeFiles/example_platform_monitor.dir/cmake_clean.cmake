file(REMOVE_RECURSE
  "CMakeFiles/example_platform_monitor.dir/examples/platform_monitor.cpp.o"
  "CMakeFiles/example_platform_monitor.dir/examples/platform_monitor.cpp.o.d"
  "example_platform_monitor"
  "example_platform_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_platform_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
