# Empty dependencies file for example_platform_monitor.
# This may be replaced when dependencies are built.
