# Empty dependencies file for example_zone_datacenter.
# This may be replaced when dependencies are built.
