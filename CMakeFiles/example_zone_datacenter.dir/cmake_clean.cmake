file(REMOVE_RECURSE
  "CMakeFiles/example_zone_datacenter.dir/examples/zone_datacenter.cpp.o"
  "CMakeFiles/example_zone_datacenter.dir/examples/zone_datacenter.cpp.o.d"
  "example_zone_datacenter"
  "example_zone_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_zone_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
