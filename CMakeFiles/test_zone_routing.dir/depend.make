# Empty dependencies file for test_zone_routing.
# This may be replaced when dependencies are built.
