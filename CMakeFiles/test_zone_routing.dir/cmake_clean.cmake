file(REMOVE_RECURSE
  "CMakeFiles/test_zone_routing.dir/tests/test_zone_routing.cpp.o"
  "CMakeFiles/test_zone_routing.dir/tests/test_zone_routing.cpp.o.d"
  "test_zone_routing"
  "test_zone_routing.pdb"
  "test_zone_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
