# Empty dependencies file for example_gras_pingpong.
# This may be replaced when dependencies are built.
