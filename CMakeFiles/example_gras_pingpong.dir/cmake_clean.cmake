file(REMOVE_RECURSE
  "CMakeFiles/example_gras_pingpong.dir/examples/gras_pingpong.cpp.o"
  "CMakeFiles/example_gras_pingpong.dir/examples/gras_pingpong.cpp.o.d"
  "example_gras_pingpong"
  "example_gras_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gras_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
