file(REMOVE_RECURSE
  "CMakeFiles/example_master_worker.dir/examples/master_worker.cpp.o"
  "CMakeFiles/example_master_worker.dir/examples/master_worker.cpp.o.d"
  "example_master_worker"
  "example_master_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_master_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
