# Empty dependencies file for example_master_worker.
# This may be replaced when dependencies are built.
