# Empty dependencies file for bench_maxmin_solver.
# This may be replaced when dependencies are built.
