file(REMOVE_RECURSE
  "CMakeFiles/bench_maxmin_solver.dir/bench/bench_maxmin_solver.cpp.o"
  "CMakeFiles/bench_maxmin_solver.dir/bench/bench_maxmin_solver.cpp.o.d"
  "bench_maxmin_solver"
  "bench_maxmin_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxmin_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
