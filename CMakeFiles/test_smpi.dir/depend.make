# Empty dependencies file for test_smpi.
# This may be replaced when dependencies are built.
