file(REMOVE_RECURSE
  "CMakeFiles/test_smpi.dir/tests/test_smpi.cpp.o"
  "CMakeFiles/test_smpi.dir/tests/test_smpi.cpp.o.d"
  "test_smpi"
  "test_smpi.pdb"
  "test_smpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
