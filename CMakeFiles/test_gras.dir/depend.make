# Empty dependencies file for test_gras.
# This may be replaced when dependencies are built.
