file(REMOVE_RECURSE
  "CMakeFiles/test_gras.dir/tests/test_gras.cpp.o"
  "CMakeFiles/test_gras.dir/tests/test_gras.cpp.o.d"
  "test_gras"
  "test_gras.pdb"
  "test_gras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
