# Empty dependencies file for bench_engine_scalability.
# This may be replaced when dependencies are built.
