file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_scalability.dir/bench/bench_engine_scalability.cpp.o"
  "CMakeFiles/bench_engine_scalability.dir/bench/bench_engine_scalability.cpp.o.d"
  "bench_engine_scalability"
  "bench_engine_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
