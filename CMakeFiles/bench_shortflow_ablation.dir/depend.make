# Empty dependencies file for bench_shortflow_ablation.
# This may be replaced when dependencies are built.
