file(REMOVE_RECURSE
  "CMakeFiles/bench_shortflow_ablation.dir/bench/bench_shortflow_ablation.cpp.o"
  "CMakeFiles/bench_shortflow_ablation.dir/bench/bench_shortflow_ablation.cpp.o.d"
  "bench_shortflow_ablation"
  "bench_shortflow_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shortflow_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
