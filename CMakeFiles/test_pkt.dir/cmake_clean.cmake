file(REMOVE_RECURSE
  "CMakeFiles/test_pkt.dir/tests/test_pkt.cpp.o"
  "CMakeFiles/test_pkt.dir/tests/test_pkt.cpp.o.d"
  "test_pkt"
  "test_pkt.pdb"
  "test_pkt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
