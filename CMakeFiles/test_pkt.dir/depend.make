# Empty dependencies file for test_pkt.
# This may be replaced when dependencies are built.
