file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_churn.dir/bench/bench_fault_churn.cpp.o"
  "CMakeFiles/bench_fault_churn.dir/bench/bench_fault_churn.cpp.o.d"
  "bench_fault_churn"
  "bench_fault_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
