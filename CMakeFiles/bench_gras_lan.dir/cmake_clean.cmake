file(REMOVE_RECURSE
  "CMakeFiles/bench_gras_lan.dir/bench/bench_gras_lan.cpp.o"
  "CMakeFiles/bench_gras_lan.dir/bench/bench_gras_lan.cpp.o.d"
  "bench_gras_lan"
  "bench_gras_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gras_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
