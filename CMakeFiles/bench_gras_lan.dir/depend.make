# Empty dependencies file for bench_gras_lan.
# This may be replaced when dependencies are built.
