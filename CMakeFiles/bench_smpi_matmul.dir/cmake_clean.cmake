file(REMOVE_RECURSE
  "CMakeFiles/bench_smpi_matmul.dir/bench/bench_smpi_matmul.cpp.o"
  "CMakeFiles/bench_smpi_matmul.dir/bench/bench_smpi_matmul.cpp.o.d"
  "bench_smpi_matmul"
  "bench_smpi_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smpi_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
