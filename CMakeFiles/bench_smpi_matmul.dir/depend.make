# Empty dependencies file for bench_smpi_matmul.
# This may be replaced when dependencies are built.
