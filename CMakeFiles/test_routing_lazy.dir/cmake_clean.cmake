file(REMOVE_RECURSE
  "CMakeFiles/test_routing_lazy.dir/tests/test_routing_lazy.cpp.o"
  "CMakeFiles/test_routing_lazy.dir/tests/test_routing_lazy.cpp.o.d"
  "test_routing_lazy"
  "test_routing_lazy.pdb"
  "test_routing_lazy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
