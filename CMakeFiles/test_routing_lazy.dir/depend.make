# Empty dependencies file for test_routing_lazy.
# This may be replaced when dependencies are built.
