# Empty dependencies file for example_smpi_matmul.
# This may be replaced when dependencies are built.
