file(REMOVE_RECURSE
  "CMakeFiles/example_smpi_matmul.dir/examples/smpi_matmul.cpp.o"
  "CMakeFiles/example_smpi_matmul.dir/examples/smpi_matmul.cpp.o.d"
  "example_smpi_matmul"
  "example_smpi_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smpi_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
