# Empty dependencies file for example_fault_injection.
# This may be replaced when dependencies are built.
