file(REMOVE_RECURSE
  "CMakeFiles/example_fault_injection.dir/examples/fault_injection.cpp.o"
  "CMakeFiles/example_fault_injection.dir/examples/fault_injection.cpp.o.d"
  "example_fault_injection"
  "example_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
