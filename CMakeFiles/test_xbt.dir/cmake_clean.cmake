file(REMOVE_RECURSE
  "CMakeFiles/test_xbt.dir/tests/test_xbt.cpp.o"
  "CMakeFiles/test_xbt.dir/tests/test_xbt.cpp.o.d"
  "test_xbt"
  "test_xbt.pdb"
  "test_xbt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
