# Empty dependencies file for test_xbt.
# This may be replaced when dependencies are built.
