# Empty dependencies file for test_datadesc.
# This may be replaced when dependencies are built.
