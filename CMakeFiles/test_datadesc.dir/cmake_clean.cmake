file(REMOVE_RECURSE
  "CMakeFiles/test_datadesc.dir/tests/test_datadesc.cpp.o"
  "CMakeFiles/test_datadesc.dir/tests/test_datadesc.cpp.o.d"
  "test_datadesc"
  "test_datadesc.pdb"
  "test_datadesc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datadesc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
