# Empty dependencies file for example_p2p_filesharing.
# This may be replaced when dependencies are built.
