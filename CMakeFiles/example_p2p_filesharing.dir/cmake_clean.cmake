file(REMOVE_RECURSE
  "CMakeFiles/example_p2p_filesharing.dir/examples/p2p_filesharing.cpp.o"
  "CMakeFiles/example_p2p_filesharing.dir/examples/p2p_filesharing.cpp.o.d"
  "example_p2p_filesharing"
  "example_p2p_filesharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_p2p_filesharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
