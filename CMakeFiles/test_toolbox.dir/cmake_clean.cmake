file(REMOVE_RECURSE
  "CMakeFiles/test_toolbox.dir/tests/test_toolbox.cpp.o"
  "CMakeFiles/test_toolbox.dir/tests/test_toolbox.cpp.o.d"
  "test_toolbox"
  "test_toolbox.pdb"
  "test_toolbox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
