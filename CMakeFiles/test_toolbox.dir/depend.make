# Empty dependencies file for test_toolbox.
# This may be replaced when dependencies are built.
