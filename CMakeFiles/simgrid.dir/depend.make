# Empty dependencies file for simgrid.
# This may be replaced when dependencies are built.
