file(REMOVE_RECURSE
  "libsimgrid.a"
)
