
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "CMakeFiles/simgrid.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/core/maxmin.cpp" "CMakeFiles/simgrid.dir/src/core/maxmin.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/core/maxmin.cpp.o.d"
  "/root/repo/src/datadesc/arch.cpp" "CMakeFiles/simgrid.dir/src/datadesc/arch.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/arch.cpp.o.d"
  "/root/repo/src/datadesc/cdr.cpp" "CMakeFiles/simgrid.dir/src/datadesc/cdr.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/cdr.cpp.o.d"
  "/root/repo/src/datadesc/datadesc.cpp" "CMakeFiles/simgrid.dir/src/datadesc/datadesc.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/datadesc.cpp.o.d"
  "/root/repo/src/datadesc/ndr.cpp" "CMakeFiles/simgrid.dir/src/datadesc/ndr.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/ndr.cpp.o.d"
  "/root/repo/src/datadesc/pastry.cpp" "CMakeFiles/simgrid.dir/src/datadesc/pastry.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/pastry.cpp.o.d"
  "/root/repo/src/datadesc/pbio.cpp" "CMakeFiles/simgrid.dir/src/datadesc/pbio.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/pbio.cpp.o.d"
  "/root/repo/src/datadesc/value.cpp" "CMakeFiles/simgrid.dir/src/datadesc/value.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/value.cpp.o.d"
  "/root/repo/src/datadesc/xdr.cpp" "CMakeFiles/simgrid.dir/src/datadesc/xdr.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/xdr.cpp.o.d"
  "/root/repo/src/datadesc/xml.cpp" "CMakeFiles/simgrid.dir/src/datadesc/xml.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/datadesc/xml.cpp.o.d"
  "/root/repo/src/gras/common.cpp" "CMakeFiles/simgrid.dir/src/gras/common.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/gras/common.cpp.o.d"
  "/root/repo/src/gras/real.cpp" "CMakeFiles/simgrid.dir/src/gras/real.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/gras/real.cpp.o.d"
  "/root/repo/src/gras/sim.cpp" "CMakeFiles/simgrid.dir/src/gras/sim.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/gras/sim.cpp.o.d"
  "/root/repo/src/kernel/context.cpp" "CMakeFiles/simgrid.dir/src/kernel/context.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/kernel/context.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "CMakeFiles/simgrid.dir/src/kernel/kernel.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/kernel/kernel.cpp.o.d"
  "/root/repo/src/msg/msg.cpp" "CMakeFiles/simgrid.dir/src/msg/msg.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/msg/msg.cpp.o.d"
  "/root/repo/src/pkt/pkt.cpp" "CMakeFiles/simgrid.dir/src/pkt/pkt.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/pkt/pkt.cpp.o.d"
  "/root/repo/src/platform/builders.cpp" "CMakeFiles/simgrid.dir/src/platform/builders.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/platform/builders.cpp.o.d"
  "/root/repo/src/platform/parser.cpp" "CMakeFiles/simgrid.dir/src/platform/parser.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/platform/parser.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "CMakeFiles/simgrid.dir/src/platform/platform.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/platform/platform.cpp.o.d"
  "/root/repo/src/smpi/smpi.cpp" "CMakeFiles/simgrid.dir/src/smpi/smpi.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/smpi/smpi.cpp.o.d"
  "/root/repo/src/toolbox/toolbox.cpp" "CMakeFiles/simgrid.dir/src/toolbox/toolbox.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/toolbox/toolbox.cpp.o.d"
  "/root/repo/src/topo/brite.cpp" "CMakeFiles/simgrid.dir/src/topo/brite.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/topo/brite.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/simgrid.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/viz/gantt.cpp" "CMakeFiles/simgrid.dir/src/viz/gantt.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/viz/gantt.cpp.o.d"
  "/root/repo/src/xbt/config.cpp" "CMakeFiles/simgrid.dir/src/xbt/config.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/xbt/config.cpp.o.d"
  "/root/repo/src/xbt/log.cpp" "CMakeFiles/simgrid.dir/src/xbt/log.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/xbt/log.cpp.o.d"
  "/root/repo/src/xbt/random.cpp" "CMakeFiles/simgrid.dir/src/xbt/random.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/xbt/random.cpp.o.d"
  "/root/repo/src/xbt/str.cpp" "CMakeFiles/simgrid.dir/src/xbt/str.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/xbt/str.cpp.o.d"
  "/root/repo/src/xbt/units.cpp" "CMakeFiles/simgrid.dir/src/xbt/units.cpp.o" "gcc" "CMakeFiles/simgrid.dir/src/xbt/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
