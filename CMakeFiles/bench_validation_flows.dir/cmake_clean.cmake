file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_flows.dir/bench/bench_validation_flows.cpp.o"
  "CMakeFiles/bench_validation_flows.dir/bench/bench_validation_flows.cpp.o.d"
  "bench_validation_flows"
  "bench_validation_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
