# Empty dependencies file for bench_validation_flows.
# This may be replaced when dependencies are built.
