file(REMOVE_RECURSE
  "CMakeFiles/bench_simulation_speed.dir/bench/bench_simulation_speed.cpp.o"
  "CMakeFiles/bench_simulation_speed.dir/bench/bench_simulation_speed.cpp.o.d"
  "bench_simulation_speed"
  "bench_simulation_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulation_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
