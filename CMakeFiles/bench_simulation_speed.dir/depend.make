# Empty dependencies file for bench_simulation_speed.
# This may be replaced when dependencies are built.
