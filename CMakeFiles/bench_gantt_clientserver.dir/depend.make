# Empty dependencies file for bench_gantt_clientserver.
# This may be replaced when dependencies are built.
