file(REMOVE_RECURSE
  "CMakeFiles/bench_gantt_clientserver.dir/bench/bench_gantt_clientserver.cpp.o"
  "CMakeFiles/bench_gantt_clientserver.dir/bench/bench_gantt_clientserver.cpp.o.d"
  "bench_gantt_clientserver"
  "bench_gantt_clientserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gantt_clientserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
