file(REMOVE_RECURSE
  "CMakeFiles/test_maxmin.dir/tests/test_maxmin.cpp.o"
  "CMakeFiles/test_maxmin.dir/tests/test_maxmin.cpp.o.d"
  "test_maxmin"
  "test_maxmin.pdb"
  "test_maxmin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
