# Empty dependencies file for test_maxmin.
# This may be replaced when dependencies are built.
