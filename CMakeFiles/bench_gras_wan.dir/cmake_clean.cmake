file(REMOVE_RECURSE
  "CMakeFiles/bench_gras_wan.dir/bench/bench_gras_wan.cpp.o"
  "CMakeFiles/bench_gras_wan.dir/bench/bench_gras_wan.cpp.o.d"
  "bench_gras_wan"
  "bench_gras_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gras_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
