# Empty dependencies file for bench_gras_wan.
# This may be replaced when dependencies are built.
