/// Tests for platform descriptions: hosts/links/routers, explicit and
/// graph-derived routing, the text parser, and the builders.
#include <gtest/gtest.h>

#include "platform/builders.hpp"
#include "platform/parser.hpp"
#include "platform/platform.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::platform;

TEST(Platform, HostsAndLookup) {
  Platform p;
  p.add_host("a", 1e9);
  p.add_host("b", 2e9);
  p.seal();
  EXPECT_EQ(p.host_count(), 2u);
  ASSERT_TRUE(p.host_by_name("b").has_value());
  EXPECT_DOUBLE_EQ(p.host(*p.host_by_name("b")).speed_flops, 2e9);
  EXPECT_FALSE(p.host_by_name("zz").has_value());
}

TEST(Platform, DuplicateNamesRejected) {
  Platform p;
  p.add_host("a", 1e9);
  EXPECT_THROW(p.add_host("a", 1e9), sg::xbt::InvalidArgument);
  p.add_link("l", 1e8, 1e-4);
  EXPECT_THROW(p.add_link("l", 1e8, 1e-4), sg::xbt::InvalidArgument);
}

TEST(Platform, BadLinkSpecsRejected) {
  Platform p;
  EXPECT_THROW(p.add_link("l", 0.0, 1e-4), sg::xbt::InvalidArgument);
  EXPECT_THROW(p.add_link("l", 1e8, -1.0), sg::xbt::InvalidArgument);
}

TEST(Platform, ExplicitRoute) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l1 = p.add_link("l1", 1e8, 1e-3);
  auto l2 = p.add_link("l2", 1e8, 2e-3);
  p.add_route(a, b, {l1, l2});
  p.seal();
  const Route& r = p.route(0, 1);
  ASSERT_EQ(r.links.size(), 2u);
  EXPECT_DOUBLE_EQ(r.latency, 3e-3);
  // symmetric reverse route
  const Route& rr = p.route(1, 0);
  EXPECT_EQ(rr.links.front(), l2);
  EXPECT_EQ(rr.links.back(), l1);
}

TEST(Platform, OneWayRoute) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l = p.add_link("l", 1e8, 1e-3);
  p.add_route(a, b, {l}, /*symmetric=*/false);
  p.seal();
  EXPECT_TRUE(p.reachable(0, 1));
  EXPECT_FALSE(p.reachable(1, 0));
}

TEST(Platform, GraphRoutingShortestLatency) {
  // a - r1 - b with a slow direct path a - r2 - b; Dijkstra must choose the
  // lower-latency path through r1.
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto r1 = p.add_router("r1");
  auto r2 = p.add_router("r2");
  auto fast1 = p.add_link("fast1", 1e8, 1e-4);
  auto fast2 = p.add_link("fast2", 1e8, 1e-4);
  auto slow1 = p.add_link("slow1", 1e9, 1e-2);
  auto slow2 = p.add_link("slow2", 1e9, 1e-2);
  p.add_edge(a, r1, fast1);
  p.add_edge(r1, b, fast2);
  p.add_edge(a, r2, slow1);
  p.add_edge(r2, b, slow2);
  p.seal();
  const Route& r = p.route(0, 1);
  ASSERT_EQ(r.links.size(), 2u);
  EXPECT_EQ(r.links[0], fast1);
  EXPECT_EQ(r.links[1], fast2);
  EXPECT_NEAR(r.latency, 2e-4, 1e-12);
}

TEST(Platform, GraphRoutingMultiHopChain) {
  Platform p;
  std::vector<NodeId> hosts;
  for (int i = 0; i < 5; ++i)
    hosts.push_back(p.add_host("h" + std::to_string(i), 1e9));
  for (int i = 0; i < 4; ++i) {
    auto l = p.add_link("l" + std::to_string(i), 1e8, 1e-3);
    p.add_edge(hosts[static_cast<size_t>(i)], hosts[static_cast<size_t>(i + 1)], l);
  }
  p.seal();
  EXPECT_EQ(p.route(0, 4).links.size(), 4u);
  EXPECT_NEAR(p.route(0, 4).latency, 4e-3, 1e-12);
  EXPECT_EQ(p.route(2, 3).links.size(), 1u);
}

TEST(Platform, UnreachableHosts) {
  Platform p;
  p.add_host("a", 1e9);
  p.add_host("b", 1e9);
  p.seal();
  EXPECT_FALSE(p.reachable(0, 1));
  EXPECT_THROW(p.route(0, 1), sg::xbt::InvalidArgument);
}

TEST(Platform, LoopbackRouteAlwaysExists) {
  Platform p;
  p.add_host("a", 1e9);
  p.seal();
  EXPECT_TRUE(p.reachable(0, 0));
  EXPECT_TRUE(p.route(0, 0).links.empty());
}

TEST(Platform, ExplicitRouteWinsOverGraph) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto graph_link = p.add_link("g", 1e8, 1e-4);
  auto special = p.add_link("s", 1e8, 5e-2);
  p.add_edge(a, b, graph_link);
  p.add_route(a, b, {special});
  p.seal();
  EXPECT_EQ(p.route(0, 1).links[0], special);
}

TEST(PlatformParser, RoundTrip) {
  const std::string text = R"(
# test platform
host n0 speed:2Gf
host n1 speed:500Mf
router r0
link l0 bw:125MBps lat:50us
link l1 bw:1Gbps lat:10ms fatpipe
edge n0 r0 l0
edge n1 r0 l1
)";
  Platform p = parse_platform(text);
  EXPECT_EQ(p.host_count(), 2u);
  EXPECT_EQ(p.link_count(), 2u);
  EXPECT_DOUBLE_EQ(p.host(0).speed_flops, 2e9);
  EXPECT_DOUBLE_EQ(p.link(0).bandwidth_Bps, 1.25e8);
  EXPECT_DOUBLE_EQ(p.link(1).latency_s, 1e-2);
  EXPECT_EQ(p.link(1).policy, SharingPolicy::kFatpipe);
  EXPECT_EQ(p.route(0, 1).links.size(), 2u);

  // dump and re-parse: same structure
  Platform p2 = parse_platform(dump_platform(p));
  EXPECT_EQ(p2.host_count(), p.host_count());
  EXPECT_EQ(p2.link_count(), p.link_count());
  EXPECT_EQ(p2.route(0, 1).links.size(), 2u);
}

TEST(PlatformParser, InlineTraces) {
  const std::string text =
      "host n0 speed:1Gf avail:\"0 1.0;5 0.5;P:10\" state:\"0 1;8 0;P:10\"\n";
  Platform p = parse_platform(text);
  const auto& h = p.host(0);
  ASSERT_FALSE(h.availability.empty());
  EXPECT_DOUBLE_EQ(h.availability.value_at(6.0), 0.5);
  EXPECT_DOUBLE_EQ(h.availability.periodicity(), 10.0);
  EXPECT_DOUBLE_EQ(h.state.value_at(9.0), 0.0);
}

TEST(PlatformParser, ExplicitRouteDirective) {
  const std::string text = R"(
host a speed:1Gf
host b speed:1Gf
link l0 bw:100MBps lat:1ms
route a b l0
)";
  Platform p = parse_platform(text);
  EXPECT_EQ(p.route(0, 1).links.size(), 1u);
  EXPECT_EQ(p.route(1, 0).links.size(), 1u);
}

TEST(PlatformParser, Errors) {
  EXPECT_THROW(parse_platform("bogus x\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("host\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("edge a b c\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("host a speed:1Gf\nroute a zz\n"), sg::xbt::InvalidArgument);
}

TEST(Builders, Cluster) {
  ClusterSpec spec;
  spec.count = 4;
  Platform p = make_cluster(spec);
  EXPECT_EQ(p.host_count(), 4u);
  // node0 -> node1: private link, backbone? no — both behind the same switch.
  const Route& r = p.route(0, 1);
  EXPECT_EQ(r.links.size(), 2u);  // up + down private links
}

TEST(Builders, ClusterCrossBackbone) {
  // Traffic leaving through -out is not exercised here, but all intra-cluster
  // routes must avoid the backbone (pure star through the switch).
  ClusterSpec spec;
  spec.count = 3;
  Platform p = make_cluster(spec);
  auto bb = p.link_by_name("node-backbone");
  ASSERT_TRUE(bb.has_value());
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      if (i == j)
        continue;
      for (auto l : p.route(i, j).links)
        EXPECT_NE(l, *bb);
    }
}

TEST(Builders, Dumbbell) {
  Platform p = make_dumbbell(1e9, 1.25e8, 1e-4);
  EXPECT_EQ(p.host_count(), 2u);
  EXPECT_EQ(p.route(0, 1).links.size(), 1u);
}

TEST(Builders, ClientServerLanSharedSegment) {
  Platform p = make_client_server_lan(3, 2);
  EXPECT_EQ(p.host_count(), 5u);
  auto c1 = *p.host_by_name("client1");
  auto c2 = *p.host_by_name("client2");
  auto s1 = *p.host_by_name("server1");
  // All client->server routes share the hub segment.
  auto hub = *p.link_by_name("hub-segment");
  const auto& r1 = p.route(c1, s1);
  const auto& r2 = p.route(c2, s1);
  EXPECT_NE(std::find(r1.links.begin(), r1.links.end(), hub), r1.links.end());
  EXPECT_NE(std::find(r2.links.begin(), r2.links.end(), hub), r2.links.end());
}

}  // namespace
