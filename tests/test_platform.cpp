/// Tests for platform descriptions: hosts/links/routers, explicit and
/// graph-derived routing, the text parser, and the builders.
#include <gtest/gtest.h>

#include "platform/builders.hpp"
#include "platform/parser.hpp"
#include "platform/platform.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::platform;

TEST(Platform, HostsAndLookup) {
  Platform p;
  p.add_host("a", 1e9);
  p.add_host("b", 2e9);
  p.seal();
  EXPECT_EQ(p.host_count(), 2u);
  ASSERT_TRUE(p.host_by_name("b").has_value());
  EXPECT_DOUBLE_EQ(p.host(*p.host_by_name("b")).speed_flops, 2e9);
  EXPECT_FALSE(p.host_by_name("zz").has_value());
}

TEST(Platform, DuplicateNamesRejected) {
  Platform p;
  p.add_host("a", 1e9);
  EXPECT_THROW(p.add_host("a", 1e9), sg::xbt::InvalidArgument);
  p.add_link("l", 1e8, 1e-4);
  EXPECT_THROW(p.add_link("l", 1e8, 1e-4), sg::xbt::InvalidArgument);
}

TEST(Platform, BadLinkSpecsRejected) {
  Platform p;
  EXPECT_THROW(p.add_link("l", 0.0, 1e-4), sg::xbt::InvalidArgument);
  EXPECT_THROW(p.add_link("l", 1e8, -1.0), sg::xbt::InvalidArgument);
}

TEST(Platform, ExplicitRoute) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l1 = p.add_link("l1", 1e8, 1e-3);
  auto l2 = p.add_link("l2", 1e8, 2e-3);
  p.add_route(a, b, {l1, l2});
  p.seal();
  const RouteView r = p.route(0, 1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.latency(), 3e-3);
  // symmetric reverse route
  const std::vector<LinkId> rr = p.route(1, 0).links();
  EXPECT_EQ(rr.front(), l2);
  EXPECT_EQ(rr.back(), l1);
}

TEST(Platform, OneWayRoute) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l = p.add_link("l", 1e8, 1e-3);
  p.add_route(a, b, {l}, /*symmetric=*/false);
  p.seal();
  EXPECT_TRUE(p.reachable(0, 1));
  EXPECT_FALSE(p.reachable(1, 0));
}

TEST(Platform, GraphRoutingShortestLatency) {
  // a - r1 - b with a slow direct path a - r2 - b; Dijkstra must choose the
  // lower-latency path through r1.
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto r1 = p.add_router("r1");
  auto r2 = p.add_router("r2");
  auto fast1 = p.add_link("fast1", 1e8, 1e-4);
  auto fast2 = p.add_link("fast2", 1e8, 1e-4);
  auto slow1 = p.add_link("slow1", 1e9, 1e-2);
  auto slow2 = p.add_link("slow2", 1e9, 1e-2);
  p.add_edge(a, r1, fast1);
  p.add_edge(r1, b, fast2);
  p.add_edge(a, r2, slow1);
  p.add_edge(r2, b, slow2);
  p.seal();
  const std::vector<LinkId> r = p.route(0, 1).links();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], fast1);
  EXPECT_EQ(r[1], fast2);
  EXPECT_NEAR(p.route(0, 1).latency(), 2e-4, 1e-12);
}

TEST(Platform, GraphRoutingMultiHopChain) {
  Platform p;
  std::vector<NodeId> hosts;
  for (int i = 0; i < 5; ++i)
    hosts.push_back(p.add_host("h" + std::to_string(i), 1e9));
  for (int i = 0; i < 4; ++i) {
    auto l = p.add_link("l" + std::to_string(i), 1e8, 1e-3);
    p.add_edge(hosts[static_cast<size_t>(i)], hosts[static_cast<size_t>(i + 1)], l);
  }
  p.seal();
  EXPECT_EQ(p.route(0, 4).size(), 4u);
  EXPECT_NEAR(p.route(0, 4).latency(), 4e-3, 1e-12);
  EXPECT_EQ(p.route(2, 3).size(), 1u);
}

TEST(Platform, UnreachableHosts) {
  Platform p;
  p.add_host("a", 1e9);
  p.add_host("b", 1e9);
  p.seal();
  EXPECT_FALSE(p.reachable(0, 1));
  EXPECT_THROW(p.route(0, 1), sg::xbt::InvalidArgument);
}

TEST(Platform, LoopbackRouteAlwaysExists) {
  Platform p;
  p.add_host("a", 1e9);
  p.seal();
  EXPECT_TRUE(p.reachable(0, 0));
  EXPECT_TRUE(p.route(0, 0).empty());
}

TEST(Platform, ExplicitRouteWinsOverGraph) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto graph_link = p.add_link("g", 1e8, 1e-4);
  auto special = p.add_link("s", 1e8, 5e-2);
  p.add_edge(a, b, graph_link);
  p.add_route(a, b, {special});
  p.seal();
  EXPECT_EQ(p.route(0, 1).links().front(), special);
}

TEST(PlatformParser, RoundTrip) {
  const std::string text = R"(
# test platform
host n0 speed:2Gf
host n1 speed:500Mf
router r0
link l0 bw:125MBps lat:50us
link l1 bw:1Gbps lat:10ms fatpipe
edge n0 r0 l0
edge n1 r0 l1
)";
  Platform p = parse_platform(text);
  EXPECT_EQ(p.host_count(), 2u);
  EXPECT_EQ(p.link_count(), 2u);
  EXPECT_DOUBLE_EQ(p.host(0).speed_flops, 2e9);
  EXPECT_DOUBLE_EQ(p.link(0).bandwidth_Bps, 1.25e8);
  EXPECT_DOUBLE_EQ(p.link(1).latency_s, 1e-2);
  EXPECT_EQ(p.link(1).policy, SharingPolicy::kFatpipe);
  EXPECT_EQ(p.route(0, 1).size(), 2u);

  // dump and re-parse: same structure
  Platform p2 = parse_platform(dump_platform(p));
  EXPECT_EQ(p2.host_count(), p.host_count());
  EXPECT_EQ(p2.link_count(), p.link_count());
  EXPECT_EQ(p2.route(0, 1).size(), 2u);
}

TEST(PlatformParser, InlineTraces) {
  const std::string text =
      "host n0 speed:1Gf avail:\"0 1.0;5 0.5;P:10\" state:\"0 1;8 0;P:10\"\n";
  Platform p = parse_platform(text);
  const auto& h = p.host(0);
  ASSERT_FALSE(h.availability.empty());
  EXPECT_DOUBLE_EQ(h.availability.value_at(6.0), 0.5);
  EXPECT_DOUBLE_EQ(h.availability.periodicity(), 10.0);
  EXPECT_DOUBLE_EQ(h.state.value_at(9.0), 0.0);
}

TEST(PlatformParser, ExplicitRouteDirective) {
  const std::string text = R"(
host a speed:1Gf
host b speed:1Gf
link l0 bw:100MBps lat:1ms
route a b l0
)";
  Platform p = parse_platform(text);
  EXPECT_EQ(p.route(0, 1).size(), 1u);
  EXPECT_EQ(p.route(1, 0).size(), 1u);
}

TEST(PlatformParser, Errors) {
  EXPECT_THROW(parse_platform("bogus x\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("host\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("edge a b c\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("host a speed:1Gf\nroute a zz\n"), sg::xbt::InvalidArgument);
}

TEST(Builders, Cluster) {
  ClusterSpec spec;
  spec.count = 4;
  Platform p = make_cluster(spec);
  EXPECT_EQ(p.host_count(), 4u);
  // node0 -> node1: private link, backbone? no — both behind the same switch.
  const RouteView r = p.route(0, 1);
  EXPECT_EQ(r.size(), 2u);  // up + down private links
}

TEST(Builders, ClusterCrossBackbone) {
  // Traffic leaving through -out is not exercised here, but all intra-cluster
  // routes must avoid the backbone (pure star through the switch).
  ClusterSpec spec;
  spec.count = 3;
  Platform p = make_cluster(spec);
  auto bb = p.link_by_name("node-backbone");
  ASSERT_TRUE(bb.has_value());
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      if (i == j)
        continue;
      for (auto l : p.route(i, j))
        EXPECT_NE(l, *bb);
    }
}

TEST(Builders, Dumbbell) {
  Platform p = make_dumbbell(1e9, 1.25e8, 1e-4);
  EXPECT_EQ(p.host_count(), 2u);
  EXPECT_EQ(p.route(0, 1).size(), 1u);
}

TEST(Builders, ClientServerLanSharedSegment) {
  Platform p = make_client_server_lan(3, 2);
  EXPECT_EQ(p.host_count(), 5u);
  auto c1 = *p.host_by_name("client1");
  auto c2 = *p.host_by_name("client2");
  auto s1 = *p.host_by_name("server1");
  // All client->server routes share the hub segment.
  auto hub = *p.link_by_name("hub-segment");
  const auto r1 = p.route(c1, s1).links();
  const auto r2 = p.route(c2, s1).links();
  EXPECT_NE(std::find(r1.begin(), r1.end(), hub), r1.end());
  EXPECT_NE(std::find(r2.begin(), r2.end(), hub), r2.end());
}

// ---------------------------------------------------------------------------
// Cluster zones: the `cluster` parser directive and zone introspection.
// ---------------------------------------------------------------------------

TEST(PlatformParser, ClusterDirective) {
  const std::string text =
      "cluster c0 hosts:16 speed:1Gf bw:125MBps lat:50us backbone:10GBps blat:500us fatpipe\n";
  Platform p = parse_platform(text);
  EXPECT_EQ(p.host_count(), 16u);
  EXPECT_EQ(p.link_count(), 17u);  // 16 up-links + backbone
  ASSERT_EQ(p.zone_count(), 1u);
  EXPECT_EQ(p.zone_kind(0), ZoneKind::kCluster);
  EXPECT_EQ(p.zone_name(0), "c0");
  ASSERT_TRUE(p.host_by_name("c00").has_value());
  EXPECT_DOUBLE_EQ(p.host(*p.host_by_name("c00")).speed_flops, 1e9);
  auto bb = p.link_by_name("c0-backbone");
  ASSERT_TRUE(bb.has_value());
  EXPECT_EQ(p.link(*bb).policy, SharingPolicy::kFatpipe);
  EXPECT_DOUBLE_EQ(p.link(*bb).bandwidth_Bps, 1e10);
  EXPECT_DOUBLE_EQ(p.link(*bb).latency_s, 5e-4);
  // Member routes: private up + down, composed by the zone rule.
  EXPECT_EQ(p.route(0, 15).size(), 2u);
  EXPECT_NEAR(p.route(0, 15).latency(), 1e-4, 1e-12);
  // Zone composition leaves no per-pair state behind.
  EXPECT_EQ(p.resolved_route_count(), 0u);
}

TEST(PlatformParser, ClusterDirectiveWithoutBackbone) {
  Platform p = parse_platform("cluster lan hosts:4 bw:1Gbps lat:10us\n");
  EXPECT_EQ(p.link_count(), 4u);  // no backbone link
  EXPECT_FALSE(p.link_by_name("lan-backbone").has_value());
  // Without a backbone the hub doubles as the gateway.
  EXPECT_EQ(p.zone_gateway(0), *p.node_by_name("lan-switch"));
  EXPECT_EQ(p.route(1, 3).size(), 2u);
}

TEST(PlatformParser, ClusterDirectiveErrors) {
  EXPECT_THROW(parse_platform("cluster\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("cluster c0\n"), sg::xbt::InvalidArgument);  // no hosts:
  EXPECT_THROW(parse_platform("cluster c0 hosts:0\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("cluster c0 hosts:abc\n"), sg::xbt::InvalidArgument);  // not std::
  EXPECT_THROW(parse_platform("cluster c0 hosts:99999999999999\n"), sg::xbt::InvalidArgument);
  // Backbone attributes without a backbone would silently change the shape.
  EXPECT_THROW(parse_platform("cluster c0 hosts:4 blat:1ms\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(parse_platform("cluster c0 hosts:4 fatpipe\n"), sg::xbt::InvalidArgument);
}

TEST(PlatformParser, ClusterRoundTrip) {
  const std::string text = R"(
cluster c0 hosts:8 speed:2Gf bw:125MBps lat:50us backbone:1250MBps blat:500us fatpipe
cluster c1 hosts:4 prefix:edge- speed:1Gf bw:250MBps lat:20us
host lone speed:1Gf
router wan
link wan0 bw:12.5MBps lat:20ms
link wan1 bw:12.5MBps lat:30ms
link wan2 bw:25MBps lat:15ms
edge c0-out wan wan0
edge c1-switch wan wan1
edge lone wan wan2
)";
  Platform p = parse_platform(text);
  Platform p2 = parse_platform(dump_platform(p));
  EXPECT_EQ(p2.host_count(), p.host_count());
  EXPECT_EQ(p2.link_count(), p.link_count());
  EXPECT_EQ(p2.zone_count(), p.zone_count());
  // Same routes (by link name) between the same hosts across the round-trip.
  auto names = [](const Platform& plat, int s, int d) {
    std::vector<std::string> out;
    for (LinkId l : plat.route(s, d))
      out.push_back(plat.link(l).name);
    return out;
  };
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"c00", "c07"}, {"c00", "edge-0"}, {"edge-2", "lone"}, {"c03", "lone"}};
  for (const auto& [a, b] : pairs) {
    const int s1 = *p.host_by_name(a), d1 = *p.host_by_name(b);
    const int s2 = *p2.host_by_name(a), d2 = *p2.host_by_name(b);
    EXPECT_EQ(names(p, s1, d1), names(p2, s2, d2)) << a << " -> " << b;
    EXPECT_DOUBLE_EQ(p.route(s1, d1).latency(), p2.route(s2, d2).latency()) << a << " -> " << b;
  }
}

TEST(Platform, ClusterZoneInteriorIsSealedOffFromAdHocEdges) {
  Platform p;
  ClusterZoneSpec spec;
  spec.name = "c";
  spec.count = 2;
  p.add_cluster_zone(spec);
  const NodeId outsider = p.add_host("outsider", 1e9);
  const LinkId l = p.add_link("wild", 1e8, 1e-4);
  // Splicing into a member or the hub would break the gateway invariant that
  // makes O(1) composition exact.
  EXPECT_THROW(p.add_edge(outsider, *p.node_by_name("c0"), l), sg::xbt::InvalidArgument);
  EXPECT_THROW(p.add_edge(outsider, *p.node_by_name("c-switch"), l), sg::xbt::InvalidArgument);
  // The gateway is the attach point.
  p.add_edge(outsider, *p.node_by_name("c-out"), l);
  p.seal();
  EXPECT_EQ(p.route(*p.host_by_name("c0"), *p.host_by_name("outsider")).size(), 3u);
}

TEST(Builders, ClusterIsZoneBacked) {
  ClusterSpec spec;
  spec.count = 6;
  Platform p = make_cluster(spec);
  ASSERT_EQ(p.zone_count(), 1u);
  EXPECT_EQ(p.zone_kind(0), ZoneKind::kCluster);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(p.zone_of_host(i), 0);
  // All member pairs compose without touching the pair cache or Dijkstra.
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      if (i != j) {
        EXPECT_EQ(p.route(i, j).size(), 2u);
      }
  EXPECT_EQ(p.resolved_route_count(), 0u);
  EXPECT_EQ(p.cached_sssp_tree_count(), 0u);
}

}  // namespace
