/// Tests for the MaxMin fairness solver — the heart of SURF. Includes
/// parameterized property sweeps checking feasibility and max-min optimality
/// on random systems.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/maxmin.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"

namespace {

using sg::core::MaxMinSystem;

TEST(MaxMin, SingleVariableGetsFullCapacity) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 100.0);
  EXPECT_DOUBLE_EQ(sys.usage(c), 100.0);
}

TEST(MaxMin, EqualSharing) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(90.0);
  std::vector<MaxMinSystem::VarId> vars;
  for (int i = 0; i < 3; ++i) {
    auto v = sys.new_variable(1.0);
    sys.expand(c, v);
    vars.push_back(v);
  }
  sys.solve();
  for (auto v : vars)
    EXPECT_NEAR(sys.value(v), 30.0, 1e-9);
}

TEST(MaxMin, WeightedSharing) {
  // Weights act as growth shares: w=2 gets twice the allocation of w=1.
  MaxMinSystem sys;
  auto c = sys.new_constraint(90.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(2.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 30.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 60.0, 1e-9);
}

TEST(MaxMin, BoundCapsAllocation) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(1.0, /*bound=*/10.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 10.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 90.0, 1e-9);  // leftover goes to the unbounded one
}

TEST(MaxMin, ZeroWeightSuspended) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(0.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v1), 0.0);
  EXPECT_NEAR(sys.value(v2), 100.0, 1e-9);
}

TEST(MaxMin, BottleneckChain) {
  // v1 crosses both constraints; v2 only the wide one. v1 is limited by the
  // narrow constraint, and v2 picks up the slack on the wide one.
  MaxMinSystem sys;
  auto narrow = sys.new_constraint(10.0);
  auto wide = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(narrow, v1);
  sys.expand(wide, v1);
  sys.expand(wide, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 10.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 90.0, 1e-9);
}

TEST(MaxMin, FatpipeCapsIndividually) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(50.0, /*shared=*/false);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  // Each flow gets the full capacity: a fatpipe does not divide.
  EXPECT_NEAR(sys.value(v1), 50.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 50.0, 1e-9);
  EXPECT_NEAR(sys.usage(c), 50.0, 1e-9);  // usage is the max, not the sum
}

TEST(MaxMin, CoefficientScalesConsumption) {
  // v consumes 2 units of c per unit of rate -> rate capped at cap/2.
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v, 2.0);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 50.0, 1e-9);
}

TEST(MaxMin, MultiResourceParallelTaskCoupling) {
  // One variable consuming two constraints with different coefficients is
  // limited by the tightest ratio — the L07 parallel-task situation.
  MaxMinSystem sys;
  auto cpu = sys.new_constraint(1000.0);
  auto link = sys.new_constraint(10.0);
  auto v = sys.new_variable(1.0);
  sys.expand(cpu, v, 100.0);  // 100 flops per unit of progress
  sys.expand(link, v, 5.0);   // 5 bytes per unit of progress
  sys.solve();
  // cpu allows 10 units/s; link allows 2 units/s -> 2.
  EXPECT_NEAR(sys.value(v), 2.0, 1e-9);
}

TEST(MaxMin, ReleaseVariableFreesCapacity) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 50.0, 1e-9);
  sys.release_variable(v1);
  sys.solve();
  EXPECT_NEAR(sys.value(v2), 100.0, 1e-9);
  EXPECT_EQ(sys.variable_count(), 1u);
}

TEST(MaxMin, VariableIdReuse) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(10.0);
  auto v1 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.release_variable(v1);
  auto v2 = sys.new_variable(1.0);  // recycles the slot
  EXPECT_EQ(v1, v2);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v2), 10.0, 1e-9);
}

TEST(MaxMin, ZeroCapacityConstraint) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(0.0);  // failed resource
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 0.0);
}

TEST(MaxMin, UnconstrainedVariableGetsHugeRate) {
  MaxMinSystem sys;
  auto v = sys.new_variable(1.0);
  sys.solve();
  EXPECT_GE(sys.value(v), MaxMinSystem::kUnlimited);
}

TEST(MaxMin, UnboundedVariableWithOnlyFatpipe) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(42.0, /*shared=*/false);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 42.0, 1e-9);
}

TEST(MaxMin, InvalidArguments) {
  MaxMinSystem sys;
  EXPECT_THROW(sys.new_constraint(-1.0), sg::xbt::InvalidArgument);
  EXPECT_THROW(sys.new_variable(-1.0), sg::xbt::InvalidArgument);
  auto c = sys.new_constraint(1.0);
  auto v = sys.new_variable(1.0);
  EXPECT_THROW(sys.expand(c, v, 0.0), sg::xbt::InvalidArgument);
}

TEST(MaxMin, CapacityUpdateChangesSolution) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 100.0, 1e-9);
  sys.set_capacity(c, 25.0);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 25.0, 1e-9);
}

// -- property-based sweep -------------------------------------------------------
//
// On random systems, the solution must be (a) feasible: no shared constraint
// over capacity, no fatpipe element over capacity, no variable over bound;
// (b) max-min optimal: every active variable is blocked by *something* — a
// saturated shared constraint it crosses, a fatpipe cap, or its own bound.

struct RandomSystemParams {
  std::uint64_t seed;
  int n_vars;
  int n_cnsts;
  bool with_bounds;
  bool with_fatpipes;
  bool with_weights;
};

class MaxMinProperty : public ::testing::TestWithParam<RandomSystemParams> {};

TEST_P(MaxMinProperty, FeasibleAndMaxMinOptimal) {
  const auto p = GetParam();
  sg::xbt::Rng rng(p.seed);
  MaxMinSystem sys;

  std::vector<MaxMinSystem::CnstId> cnsts;
  std::vector<bool> shared;
  std::vector<double> caps;
  for (int c = 0; c < p.n_cnsts; ++c) {
    const bool sh = !p.with_fatpipes || rng.uniform01() < 0.7;
    const double cap = rng.uniform(10.0, 1000.0);
    cnsts.push_back(sys.new_constraint(cap, sh));
    shared.push_back(sh);
    caps.push_back(cap);
  }

  struct VarInfo {
    MaxMinSystem::VarId id;
    double weight;
    double bound;
    std::vector<int> used;  // constraint indices
    std::vector<double> coeffs;
  };
  std::vector<VarInfo> vars;
  for (int i = 0; i < p.n_vars; ++i) {
    VarInfo info;
    info.weight = p.with_weights ? rng.uniform(0.5, 4.0) : 1.0;
    info.bound = (p.with_bounds && rng.uniform01() < 0.4) ? rng.uniform(5.0, 200.0) : -1.0;
    info.id = sys.new_variable(info.weight, info.bound);
    const int uses = static_cast<int>(rng.uniform_int(1, std::min(3, p.n_cnsts)));
    for (int u = 0; u < uses; ++u) {
      const int c = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(p.n_cnsts - 1)));
      const double coeff = rng.uniform(0.5, 2.0);
      sys.expand(cnsts[static_cast<size_t>(c)], info.id, coeff);
      info.used.push_back(c);
      info.coeffs.push_back(coeff);
    }
    vars.push_back(info);
  }

  sys.solve();

  const double tol = 1e-6;
  // (a) feasibility
  std::vector<double> usage_sum(static_cast<size_t>(p.n_cnsts), 0.0);
  std::vector<double> usage_max(static_cast<size_t>(p.n_cnsts), 0.0);
  for (const auto& v : vars) {
    const double val = sys.value(v.id);
    EXPECT_GE(val, 0.0);
    if (v.bound >= 0)
      EXPECT_LE(val, v.bound * (1 + tol));
    for (size_t k = 0; k < v.used.size(); ++k) {
      usage_sum[static_cast<size_t>(v.used[k])] += v.coeffs[k] * val;
      usage_max[static_cast<size_t>(v.used[k])] =
          std::max(usage_max[static_cast<size_t>(v.used[k])], v.coeffs[k] * val);
    }
  }
  for (int c = 0; c < p.n_cnsts; ++c) {
    if (shared[static_cast<size_t>(c)])
      EXPECT_LE(usage_sum[static_cast<size_t>(c)], caps[static_cast<size_t>(c)] * (1 + tol))
          << "shared constraint " << c << " over capacity";
    else
      EXPECT_LE(usage_max[static_cast<size_t>(c)], caps[static_cast<size_t>(c)] * (1 + tol))
          << "fatpipe constraint " << c << " over capacity";
  }

  // (b) optimality: every variable is blocked by something.
  for (const auto& v : vars) {
    const double val = sys.value(v.id);
    bool blocked = false;
    if (v.bound >= 0 && val >= v.bound * (1 - tol))
      blocked = true;
    for (size_t k = 0; k < v.used.size() && !blocked; ++k) {
      const int c = v.used[k];
      if (shared[static_cast<size_t>(c)]) {
        if (usage_sum[static_cast<size_t>(c)] >= caps[static_cast<size_t>(c)] * (1 - tol))
          blocked = true;
      } else {
        if (v.coeffs[k] * val >= caps[static_cast<size_t>(c)] * (1 - tol))
          blocked = true;
      }
    }
    EXPECT_TRUE(blocked) << "variable with value " << val << " is not blocked by anything";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSystems, MaxMinProperty,
    ::testing::Values(RandomSystemParams{1, 5, 3, false, false, false},
                      RandomSystemParams{2, 10, 4, true, false, false},
                      RandomSystemParams{3, 10, 4, false, true, false},
                      RandomSystemParams{4, 20, 6, true, true, false},
                      RandomSystemParams{5, 20, 6, true, true, true},
                      RandomSystemParams{6, 50, 10, true, true, true},
                      RandomSystemParams{7, 100, 15, true, true, true},
                      RandomSystemParams{8, 200, 20, true, true, true},
                      RandomSystemParams{9, 40, 2, false, false, true},
                      RandomSystemParams{10, 8, 8, true, false, true}));

}  // namespace
