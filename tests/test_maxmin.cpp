/// Tests for the MaxMin fairness solver — the heart of SURF. Includes
/// parameterized property sweeps checking feasibility and max-min optimality
/// on random systems.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/maxmin.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"

namespace {

using sg::core::MaxMinSystem;

TEST(MaxMin, SingleVariableGetsFullCapacity) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 100.0);
  EXPECT_DOUBLE_EQ(sys.usage(c), 100.0);
}

TEST(MaxMin, EqualSharing) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(90.0);
  std::vector<MaxMinSystem::VarId> vars;
  for (int i = 0; i < 3; ++i) {
    auto v = sys.new_variable(1.0);
    sys.expand(c, v);
    vars.push_back(v);
  }
  sys.solve();
  for (auto v : vars)
    EXPECT_NEAR(sys.value(v), 30.0, 1e-9);
}

TEST(MaxMin, WeightedSharing) {
  // Weights act as growth shares: w=2 gets twice the allocation of w=1.
  MaxMinSystem sys;
  auto c = sys.new_constraint(90.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(2.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 30.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 60.0, 1e-9);
}

TEST(MaxMin, BoundCapsAllocation) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(1.0, /*bound=*/10.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 10.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 90.0, 1e-9);  // leftover goes to the unbounded one
}

TEST(MaxMin, ZeroWeightSuspended) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(0.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v1), 0.0);
  EXPECT_NEAR(sys.value(v2), 100.0, 1e-9);
}

TEST(MaxMin, BottleneckChain) {
  // v1 crosses both constraints; v2 only the wide one. v1 is limited by the
  // narrow constraint, and v2 picks up the slack on the wide one.
  MaxMinSystem sys;
  auto narrow = sys.new_constraint(10.0);
  auto wide = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(narrow, v1);
  sys.expand(wide, v1);
  sys.expand(wide, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 10.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 90.0, 1e-9);
}

TEST(MaxMin, FatpipeCapsIndividually) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(50.0, /*shared=*/false);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  // Each flow gets the full capacity: a fatpipe does not divide.
  EXPECT_NEAR(sys.value(v1), 50.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 50.0, 1e-9);
  EXPECT_NEAR(sys.usage(c), 50.0, 1e-9);  // usage is the max, not the sum
}

TEST(MaxMin, CoefficientScalesConsumption) {
  // v consumes 2 units of c per unit of rate -> rate capped at cap/2.
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v, 2.0);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 50.0, 1e-9);
}

TEST(MaxMin, MultiResourceParallelTaskCoupling) {
  // One variable consuming two constraints with different coefficients is
  // limited by the tightest ratio — the L07 parallel-task situation.
  MaxMinSystem sys;
  auto cpu = sys.new_constraint(1000.0);
  auto link = sys.new_constraint(10.0);
  auto v = sys.new_variable(1.0);
  sys.expand(cpu, v, 100.0);  // 100 flops per unit of progress
  sys.expand(link, v, 5.0);   // 5 bytes per unit of progress
  sys.solve();
  // cpu allows 10 units/s; link allows 2 units/s -> 2.
  EXPECT_NEAR(sys.value(v), 2.0, 1e-9);
}

TEST(MaxMin, ReleaseVariableFreesCapacity) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 50.0, 1e-9);
  sys.release_variable(v1);
  sys.solve();
  EXPECT_NEAR(sys.value(v2), 100.0, 1e-9);
  EXPECT_EQ(sys.variable_count(), 1u);
}

TEST(MaxMin, VariableIdReuse) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(10.0);
  auto v1 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.release_variable(v1);
  auto v2 = sys.new_variable(1.0);  // recycles the slot
  EXPECT_EQ(v1, v2);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v2), 10.0, 1e-9);
}

TEST(MaxMin, RecycledVariableDoesNotReviveOldElements) {
  // Regression: release used to leave the released variable's elements in the
  // constraint (lazy compaction). When the id was recycled by a variable on a
  // *different* constraint, the stale element re-attached the new variable to
  // the old constraint as a phantom flow.
  MaxMinSystem sys;
  auto c1 = sys.new_constraint(90.0);
  auto other = sys.new_constraint(10.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  auto v3 = sys.new_variable(1.0);
  sys.expand(c1, v1);
  sys.expand(c1, v2);
  sys.expand(c1, v3);
  sys.solve();
  sys.release_variable(v3);  // 1 dead of 3: lazy compaction would not fire
  auto v4 = sys.new_variable(1.0);
  ASSERT_EQ(v4, v3);  // the id is recycled...
  sys.expand(other, v4);  // ...but onto an unrelated constraint
  sys.solve_full();
  EXPECT_NEAR(sys.value(v1), 45.0, 1e-9);  // c1 shared by v1/v2 only
  EXPECT_NEAR(sys.value(v2), 45.0, 1e-9);
  EXPECT_NEAR(sys.value(v4), 10.0, 1e-9);
  EXPECT_NEAR(sys.usage(c1), 90.0, 1e-9);
}

TEST(MaxMin, ZeroCapacityConstraint) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(0.0);  // failed resource
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_DOUBLE_EQ(sys.value(v), 0.0);
}

TEST(MaxMin, UnconstrainedVariableGetsHugeRate) {
  MaxMinSystem sys;
  auto v = sys.new_variable(1.0);
  sys.solve();
  EXPECT_GE(sys.value(v), MaxMinSystem::kUnlimited);
}

TEST(MaxMin, UnboundedVariableWithOnlyFatpipe) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(42.0, /*shared=*/false);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 42.0, 1e-9);
}

TEST(MaxMin, InvalidArguments) {
  MaxMinSystem sys;
  EXPECT_THROW(sys.new_constraint(-1.0), sg::xbt::InvalidArgument);
  EXPECT_THROW(sys.new_variable(-1.0), sg::xbt::InvalidArgument);
  auto c = sys.new_constraint(1.0);
  auto v = sys.new_variable(1.0);
  EXPECT_THROW(sys.expand(c, v, 0.0), sg::xbt::InvalidArgument);
}

TEST(MaxMin, ExpandRejectsBadIds) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(10.0);
  auto v = sys.new_variable(1.0);
  // Out-of-range ids (both signs) throw the xbt exception, not std::out_of_range.
  EXPECT_THROW(sys.expand(c + 1, v), sg::xbt::Exception);
  EXPECT_THROW(sys.expand(-1, v), sg::xbt::Exception);
  EXPECT_THROW(sys.expand(c, v + 1), sg::xbt::Exception);
  EXPECT_THROW(sys.expand(c, -1), sg::xbt::Exception);
}

TEST(MaxMin, ExpandRejectsReleasedVariable) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(10.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.release_variable(v);
  EXPECT_THROW(sys.expand(c, v), sg::xbt::InvalidArgument);
  // The slot stays usable once legitimately recycled.
  auto v2 = sys.new_variable(1.0);
  EXPECT_NO_THROW(sys.expand(c, v2));
}

TEST(MaxMin, CapacityUpdateChangesSolution) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 100.0, 1e-9);
  sys.set_capacity(c, 25.0);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 25.0, 1e-9);
}

// -- property-based sweep -------------------------------------------------------
//
// On random systems, the solution must be (a) feasible: no shared constraint
// over capacity, no fatpipe element over capacity, no variable over bound;
// (b) max-min optimal: every active variable is blocked by *something* — a
// saturated shared constraint it crosses, a fatpipe cap, or its own bound.

struct RandomSystemParams {
  std::uint64_t seed;
  int n_vars;
  int n_cnsts;
  bool with_bounds;
  bool with_fatpipes;
  bool with_weights;
};

class MaxMinProperty : public ::testing::TestWithParam<RandomSystemParams> {};

TEST_P(MaxMinProperty, FeasibleAndMaxMinOptimal) {
  const auto p = GetParam();
  sg::xbt::Rng rng(p.seed);
  MaxMinSystem sys;

  std::vector<MaxMinSystem::CnstId> cnsts;
  std::vector<bool> shared;
  std::vector<double> caps;
  for (int c = 0; c < p.n_cnsts; ++c) {
    const bool sh = !p.with_fatpipes || rng.uniform01() < 0.7;
    const double cap = rng.uniform(10.0, 1000.0);
    cnsts.push_back(sys.new_constraint(cap, sh));
    shared.push_back(sh);
    caps.push_back(cap);
  }

  struct VarInfo {
    MaxMinSystem::VarId id;
    double weight;
    double bound;
    std::vector<int> used;  // constraint indices
    std::vector<double> coeffs;
  };
  std::vector<VarInfo> vars;
  for (int i = 0; i < p.n_vars; ++i) {
    VarInfo info;
    info.weight = p.with_weights ? rng.uniform(0.5, 4.0) : 1.0;
    info.bound = (p.with_bounds && rng.uniform01() < 0.4) ? rng.uniform(5.0, 200.0) : -1.0;
    info.id = sys.new_variable(info.weight, info.bound);
    const int uses = static_cast<int>(rng.uniform_int(1, std::min(3, p.n_cnsts)));
    for (int u = 0; u < uses; ++u) {
      const int c = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(p.n_cnsts - 1)));
      const double coeff = rng.uniform(0.5, 2.0);
      sys.expand(cnsts[static_cast<size_t>(c)], info.id, coeff);
      info.used.push_back(c);
      info.coeffs.push_back(coeff);
    }
    vars.push_back(info);
  }

  sys.solve();

  const double tol = 1e-6;
  // (a) feasibility
  std::vector<double> usage_sum(static_cast<size_t>(p.n_cnsts), 0.0);
  std::vector<double> usage_max(static_cast<size_t>(p.n_cnsts), 0.0);
  for (const auto& v : vars) {
    const double val = sys.value(v.id);
    EXPECT_GE(val, 0.0);
    if (v.bound >= 0) {
      EXPECT_LE(val, v.bound * (1 + tol));
    }
    for (size_t k = 0; k < v.used.size(); ++k) {
      usage_sum[static_cast<size_t>(v.used[k])] += v.coeffs[k] * val;
      usage_max[static_cast<size_t>(v.used[k])] =
          std::max(usage_max[static_cast<size_t>(v.used[k])], v.coeffs[k] * val);
    }
  }
  for (int c = 0; c < p.n_cnsts; ++c) {
    if (shared[static_cast<size_t>(c)])
      EXPECT_LE(usage_sum[static_cast<size_t>(c)], caps[static_cast<size_t>(c)] * (1 + tol))
          << "shared constraint " << c << " over capacity";
    else
      EXPECT_LE(usage_max[static_cast<size_t>(c)], caps[static_cast<size_t>(c)] * (1 + tol))
          << "fatpipe constraint " << c << " over capacity";
  }

  // (b) optimality: every variable is blocked by something.
  for (const auto& v : vars) {
    const double val = sys.value(v.id);
    bool blocked = false;
    if (v.bound >= 0 && val >= v.bound * (1 - tol))
      blocked = true;
    for (size_t k = 0; k < v.used.size() && !blocked; ++k) {
      const int c = v.used[k];
      if (shared[static_cast<size_t>(c)]) {
        if (usage_sum[static_cast<size_t>(c)] >= caps[static_cast<size_t>(c)] * (1 - tol))
          blocked = true;
      } else {
        if (v.coeffs[k] * val >= caps[static_cast<size_t>(c)] * (1 - tol))
          blocked = true;
      }
    }
    EXPECT_TRUE(blocked) << "variable with value " << val << " is not blocked by anything";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSystems, MaxMinProperty,
    ::testing::Values(RandomSystemParams{1, 5, 3, false, false, false},
                      RandomSystemParams{2, 10, 4, true, false, false},
                      RandomSystemParams{3, 10, 4, false, true, false},
                      RandomSystemParams{4, 20, 6, true, true, false},
                      RandomSystemParams{5, 20, 6, true, true, true},
                      RandomSystemParams{6, 50, 10, true, true, true},
                      RandomSystemParams{7, 100, 15, true, true, true},
                      RandomSystemParams{8, 200, 20, true, true, true},
                      RandomSystemParams{9, 40, 2, false, false, true},
                      RandomSystemParams{10, 8, 8, true, false, true}));

// -- incremental solving --------------------------------------------------------

TEST(MaxMinIncremental, UntouchedComponentStaysFrozen) {
  MaxMinSystem sys;
  auto c1 = sys.new_constraint(100.0);
  auto c2 = sys.new_constraint(60.0);
  auto v1 = sys.new_variable(1.0);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c1, v1);
  sys.expand(c2, v2);
  sys.solve();  // first solve is full
  EXPECT_NEAR(sys.value(v1), 100.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 60.0, 1e-9);

  const auto solves_before = sys.solve_stats().solves;
  const auto visited_before = sys.solve_stats().vars_visited;
  sys.set_capacity(c2, 30.0);
  sys.solve();
  // Only v2's component was re-solved.
  EXPECT_EQ(sys.solve_stats().solves, solves_before + 1);
  EXPECT_EQ(sys.solve_stats().vars_visited, visited_before + 1);
  EXPECT_NEAR(sys.value(v1), 100.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 30.0, 1e-9);
  ASSERT_EQ(sys.changed_variables().size(), 1u);
  EXPECT_EQ(sys.changed_variables()[0], v2);
}

TEST(MaxMinIncremental, SolveIsNoOpWhenClean) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(10.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.solve();
  EXPECT_FALSE(sys.needs_solve());
  const auto solves_before = sys.solve_stats().solves;
  sys.solve();
  EXPECT_EQ(sys.solve_stats().solves, solves_before);
  EXPECT_TRUE(sys.changed_variables().empty());
  // A no-op mutation does not dirty anything either.
  sys.set_capacity(c, 10.0);
  sys.set_weight(v, 1.0);
  EXPECT_FALSE(sys.needs_solve());
}

TEST(MaxMinIncremental, NewFlowOnSharedConstraintResharesPeers) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v1 = sys.new_variable(1.0);
  sys.expand(c, v1);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 100.0, 1e-9);
  auto v2 = sys.new_variable(1.0);
  sys.expand(c, v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 50.0, 1e-9);
  EXPECT_NEAR(sys.value(v2), 50.0, 1e-9);
  sys.release_variable(v2);
  sys.solve();
  EXPECT_NEAR(sys.value(v1), 100.0, 1e-9);
}

TEST(MaxMinIncremental, FatpipeBackboneDoesNotMergeComponents) {
  // The cluster shape: every flow crosses its private link plus one shared
  // backbone fatpipe. Churning one flow must not pull the other flows'
  // components into the re-solve (a fatpipe caps users independently), but a
  // backbone capacity change must reach all of them.
  MaxMinSystem sys;
  auto backbone = sys.new_constraint(1000.0, /*shared=*/false);
  std::vector<MaxMinSystem::CnstId> links;
  std::vector<MaxMinSystem::VarId> flows;
  for (int i = 0; i < 8; ++i) {
    links.push_back(sys.new_constraint(100.0 + i));
    auto v = sys.new_variable(1.0);
    sys.expand(links.back(), v);
    sys.expand(backbone, v);
    flows.push_back(v);
  }
  sys.solve();

  const auto full_before = sys.solve_stats().full_solves;
  const auto visited_before = sys.solve_stats().vars_visited;
  sys.release_variable(flows[0]);
  flows[0] = sys.new_variable(1.0);
  sys.expand(links[0], flows[0]);
  sys.expand(backbone, flows[0]);
  sys.solve();
  EXPECT_EQ(sys.solve_stats().full_solves, full_before) << "churn fell back to a full solve";
  EXPECT_EQ(sys.solve_stats().vars_visited, visited_before + 1)
      << "churning one flow re-solved other fatpipe users";
  EXPECT_NEAR(sys.value(flows[0]), 100.0, 1e-9);
  EXPECT_NEAR(sys.value(flows[3]), 103.0, 1e-9);

  // Capacity change on the fatpipe affects every user's cap.
  sys.set_capacity(backbone, 50.0);
  sys.solve();
  for (auto v : flows)
    EXPECT_NEAR(sys.value(v), 50.0, 1e-9);
}

// The headline property: after an arbitrary mutation history, the incremental
// solve must produce exactly the allocation a from-scratch solve computes.
// 1000 mixed mutations; every 10 mutations the incremental result is compared
// to solve_full() on every live variable.
TEST(MaxMinIncremental, EquivalentToFullSolveUnderRandomMutations) {
  sg::xbt::Rng rng(20260730);
  MaxMinSystem sys;

  // Constraints come in small clusters and variables only expand within one
  // cluster — the shape of real platforms (mostly-independent flows), which
  // keeps connected components small so the incremental path is exercised
  // instead of always falling back to solve_full().
  constexpr int kClusters = 20;
  constexpr int kCnstsPerCluster = 3;
  std::vector<MaxMinSystem::CnstId> cnsts;
  for (int c = 0; c < kClusters * kCnstsPerCluster; ++c)
    cnsts.push_back(sys.new_constraint(rng.uniform(10.0, 1000.0), rng.uniform01() < 0.8));
  std::vector<MaxMinSystem::VarId> live;
  auto random_cnst = [&] { return cnsts[rng.uniform_int(0, cnsts.size() - 1)]; };
  auto add_var = [&] {
    const double bound = rng.uniform01() < 0.3 ? rng.uniform(5.0, 200.0) : MaxMinSystem::kNoBound;
    auto v = sys.new_variable(rng.uniform01() < 0.1 ? 0.0 : rng.uniform(0.5, 4.0), bound);
    const auto cluster = rng.uniform_int(0, kClusters - 1);
    const int uses = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int u = 0; u < uses; ++u) {
      const auto c = cluster * kCnstsPerCluster + rng.uniform_int(0, kCnstsPerCluster - 1);
      sys.expand(cnsts[static_cast<size_t>(c)], v, rng.uniform(0.5, 2.0));
    }
    live.push_back(v);
  };
  for (int i = 0; i < 60; ++i)
    add_var();
  sys.solve();

  for (int step = 1; step <= 1000; ++step) {
    const double kind = rng.uniform01();
    if (kind < 0.25 || live.empty()) {
      add_var();
    } else if (kind < 0.45) {
      const size_t k = rng.uniform_int(0, live.size() - 1);
      sys.release_variable(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (kind < 0.65) {
      sys.set_weight(live[rng.uniform_int(0, live.size() - 1)],
                     rng.uniform01() < 0.15 ? 0.0 : rng.uniform(0.5, 4.0));
    } else if (kind < 0.8) {
      sys.set_bound(live[rng.uniform_int(0, live.size() - 1)],
                    rng.uniform01() < 0.3 ? MaxMinSystem::kNoBound : rng.uniform(5.0, 200.0));
    } else {
      sys.set_capacity(random_cnst(), rng.uniform(10.0, 1000.0));
    }

    sys.solve();  // incremental

    if (step % 10 == 0) {
      std::vector<double> incremental(live.size());
      for (size_t k = 0; k < live.size(); ++k)
        incremental[k] = sys.value(live[k]);
      sys.solve_full();
      for (size_t k = 0; k < live.size(); ++k) {
        const double full = sys.value(live[k]);
        EXPECT_NEAR(incremental[k], full, 1e-9 * std::max(1.0, std::abs(full)))
            << "step " << step << ", variable " << live[k];
      }
    }
  }

  // The sweep must actually have exercised the incremental path.
  const auto& stats = sys.solve_stats();
  EXPECT_GT(stats.solves, stats.full_solves * 2)
      << "incremental path was not exercised (solves=" << stats.solves
      << ", full=" << stats.full_solves << ")";
}

// -- element arena ---------------------------------------------------------------
//
// The incidence lists live in a shared arena of 4-entry nodes with an
// index-linked free list. These tests pin the recycling invariants: churn
// must not grow the arena, degree growth past the small-buffer threshold
// must chain nodes correctly, and released ids (variables *and* constraints)
// must never revive stale elements.

TEST(MaxMinArena, ReleaseReuseCyclesKeepFootprintFlat) {
  MaxMinSystem sys;
  std::vector<MaxMinSystem::CnstId> cnsts;
  for (int c = 0; c < 10; ++c)
    cnsts.push_back(sys.new_constraint(100.0 + c));

  auto build = [&] {
    std::vector<MaxMinSystem::VarId> vars;
    for (int i = 0; i < 100; ++i) {
      auto v = sys.new_variable(1.0);
      for (int u = 0; u < 3; ++u)
        sys.expand(cnsts[static_cast<size_t>((i + u) % 10)], v);
      vars.push_back(v);
    }
    return vars;
  };

  auto vars = build();
  sys.solve();
  const auto baseline = sys.memory_stats();
  EXPECT_GT(baseline.arena_nodes_in_use, 0u);

  for (int cycle = 0; cycle < 50; ++cycle) {
    for (auto v : vars)
      sys.release_variable(v);
    EXPECT_EQ(sys.variable_count(), 0u);
    vars = build();
    sys.solve();
  }

  const auto after = sys.memory_stats();
  // Same shape rebuilt 50 times: the free lists must hand back the same
  // nodes and ids, not grow the arena.
  EXPECT_EQ(after.arena_nodes_in_use, baseline.arena_nodes_in_use);
  EXPECT_EQ(after.arena_nodes_allocated, baseline.arena_nodes_allocated);
  EXPECT_EQ(after.arena_bytes, baseline.arena_bytes);
  EXPECT_EQ(after.live_variables, 100u);
}

TEST(MaxMinArena, DegreeGrowthPastSmallBufferThreshold) {
  // Degree <= 4 fits one node; 19 constraints forces a 5-node chain. The
  // allocation must still be limited by the tightest cap / coeff ratio.
  MaxMinSystem sys;
  std::vector<MaxMinSystem::CnstId> cnsts;
  auto v = sys.new_variable(1.0);
  for (int c = 0; c < 19; ++c) {
    auto id = sys.new_constraint(100.0 + 10.0 * c);
    sys.expand(id, v, 1.0 + c);  // cap/coeff minimized at c=18: 280/19
    cnsts.push_back(id);
  }
  EXPECT_EQ(sys.variable_degree(v), 19u);
  for (auto c : cnsts)
    EXPECT_EQ(sys.constraint_degree(c), 1u);
  sys.solve();
  double tightest = 1e30;
  for (int c = 0; c < 19; ++c)
    tightest = std::min(tightest, (100.0 + 10.0 * c) / (1.0 + c));
  EXPECT_NEAR(sys.value(v), tightest, 1e-9 * tightest);

  const auto in_use = sys.memory_stats().arena_nodes_in_use;
  sys.release_variable(v);
  // The 5-node chain and the 19 single-entry constraint nodes all free.
  EXPECT_EQ(sys.memory_stats().arena_nodes_in_use, in_use - 5 - 19);
}

TEST(MaxMinArena, DuplicateExpandAddsConsumption) {
  // Expanding the same (cnst, var) twice keeps both elements: consumption is
  // additive, exactly like the old per-object vector layout.
  MaxMinSystem sys;
  auto c = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v, 1.0);
  sys.expand(c, v, 1.0);
  EXPECT_EQ(sys.constraint_degree(c), 2u);
  EXPECT_EQ(sys.variable_degree(v), 2u);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 50.0, 1e-9);
  EXPECT_NEAR(sys.usage(c), 100.0, 1e-9);
  sys.release_variable(v);
  EXPECT_EQ(sys.constraint_degree(c), 0u);
}

TEST(MaxMinArena, ConstraintReleaseFreesUsersAndRecyclesId) {
  MaxMinSystem sys;
  auto narrow = sys.new_constraint(10.0);
  auto wide = sys.new_constraint(100.0);
  auto v = sys.new_variable(1.0);
  sys.expand(narrow, v);
  sys.expand(wide, v);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 10.0, 1e-9);

  sys.release_constraint(narrow);
  EXPECT_EQ(sys.constraint_count(), 1u);
  EXPECT_EQ(sys.variable_degree(v), 1u);  // the narrow element is gone
  sys.solve();
  EXPECT_NEAR(sys.value(v), 100.0, 1e-9) << "releasing the bottleneck must free its users";

  // The id is recycled; stale elements must not re-attach to it.
  auto recycled = sys.new_constraint(7.0);
  EXPECT_EQ(recycled, narrow);
  EXPECT_EQ(sys.constraint_degree(recycled), 0u);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 100.0, 1e-9) << "recycled constraint revived a stale element";

  auto v2 = sys.new_variable(1.0);
  sys.expand(recycled, v2);
  sys.solve_full();
  EXPECT_NEAR(sys.value(v2), 7.0, 1e-9);
  EXPECT_NEAR(sys.value(v), 100.0, 1e-9);
}

TEST(MaxMinArena, ReleasedConstraintOperations) {
  MaxMinSystem sys;
  auto c = sys.new_constraint(10.0);
  auto v = sys.new_variable(1.0);
  sys.expand(c, v);
  sys.release_constraint(c);
  EXPECT_THROW(sys.expand(c, v), sg::xbt::InvalidArgument);
  EXPECT_NO_THROW(sys.release_constraint(c));  // idempotent
  EXPECT_THROW(sys.release_constraint(c + 1), sg::xbt::Exception);
  // A release while dirty must not confuse the next incremental solve.
  sys.solve();
  EXPECT_GE(sys.value(v), MaxMinSystem::kUnlimited);  // unconstrained now
}

TEST(MaxMinArena, ConstraintIdRecyclingStress) {
  // Random create/release cycles over both id spaces with full-solve
  // equivalence checks: recycling must be indistinguishable from fresh ids.
  sg::xbt::Rng rng(97);
  MaxMinSystem sys;
  std::vector<MaxMinSystem::CnstId> cnsts;
  std::vector<std::pair<MaxMinSystem::VarId, std::vector<MaxMinSystem::CnstId>>> vars;

  for (int step = 0; step < 400; ++step) {
    const double op = rng.uniform01();
    if (op < 0.3 || cnsts.size() < 3) {
      cnsts.push_back(sys.new_constraint(rng.uniform(10.0, 500.0)));
    } else if (op < 0.45) {
      // Release a random constraint; forget it from every tracked variable.
      const size_t k = rng.uniform_int(0, cnsts.size() - 1);
      sys.release_constraint(cnsts[k]);
      for (auto& [v, used] : vars)
        std::erase(used, cnsts[k]);
      cnsts.erase(cnsts.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (op < 0.75 || vars.empty()) {
      auto v = sys.new_variable(rng.uniform(0.5, 2.0));
      std::vector<MaxMinSystem::CnstId> used;
      const int uses = 1 + static_cast<int>(rng.uniform_int(0, 2));
      for (int u = 0; u < uses; ++u) {
        const auto c = cnsts[rng.uniform_int(0, cnsts.size() - 1)];
        sys.expand(c, v);
        used.push_back(c);
      }
      vars.push_back({v, std::move(used)});
    } else {
      const size_t k = rng.uniform_int(0, vars.size() - 1);
      sys.release_variable(vars[k].first);
      vars.erase(vars.begin() + static_cast<std::ptrdiff_t>(k));
    }

    sys.solve();
    if (step % 20 == 0) {
      std::vector<double> incremental;
      incremental.reserve(vars.size());
      for (const auto& [v, used] : vars)
        incremental.push_back(sys.value(v));
      sys.solve_full();
      for (size_t k = 0; k < vars.size(); ++k)
        EXPECT_NEAR(incremental[k], sys.value(vars[k].first),
                    1e-9 * std::max(1.0, sys.value(vars[k].first)))
            << "step " << step;
      // Degrees must agree with the tracked incidences.
      for (const auto& [v, used] : vars)
        EXPECT_EQ(sys.variable_degree(v), used.size());
    }
  }
  EXPECT_EQ(sys.constraint_count(), cnsts.size());
  EXPECT_EQ(sys.variable_count(), vars.size());
}

}  // namespace
