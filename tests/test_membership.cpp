/// Dynamic platform membership: join/leave/rejoin after seal(), with every
/// seal-time structure updated incrementally. The headline sweep churns a
/// sealed platform through a random join/leave/rejoin sequence and demands
/// that routes, shard grouping, and solver results match a freshly
/// built-and-sealed platform of the survivors to 1e-9; a kernel-level churn
/// workload (trace-driven membership driver + retry helpers) must be
/// log-identical between serial and 4-lane parallel-actor runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "kernel/context.hpp"
#include "kernel/kernel.hpp"
#include "kernel/membership.hpp"
#include "platform/parser.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"

namespace {

using namespace sg::kernel;
using sg::core::ActionEvent;
using sg::core::ActionKind;
using sg::core::Engine;
using sg::platform::ClusterZoneSpec;
using sg::platform::LinkId;
using sg::platform::Platform;
using sg::platform::ZoneId;

class MembershipTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    declare_context_config();
    declare_membership_config();
    sg::config::set(sg::core::kCfgThreads, 1);
    sg::config::set(sg::core::kCfgParallelActors, false);
  }
  void TearDown() override {
    sg::config::set(sg::core::kCfgThreads, 1);
    sg::config::set(sg::core::kCfgParallelActors, false);
  }
};

/// A backboneless cluster zone (hub doubles as gateway): member routes are
/// [up(src), up(dst)], which a flat star graph reproduces link for link —
/// the shape the churn ≡ rebuild sweep compares against.
Platform make_star_zone(int count) {
  Platform p;
  ClusterZoneSpec spec;
  spec.name = "star";
  spec.host_prefix = "n";
  spec.count = count;
  spec.host_speed = 1e9;
  spec.link_bandwidth = 1e8;
  spec.link_latency = 5e-5;
  spec.backbone_bandwidth = 0.0;  // hub is the gateway
  p.add_cluster_zone(spec);
  p.seal();
  return p;
}

// ---------------------------------------------------------------------------
// Incremental structure updates
// ---------------------------------------------------------------------------

TEST_F(MembershipTest, JoinExtendsSealedStructuresInPlace) {
  Platform p = make_star_zone(4);
  const size_t hosts0 = p.host_count();
  const size_t links0 = p.link_count();
  const auto zone = *p.zone_by_name("star");

  const int h = p.join_host(zone);
  EXPECT_EQ(p.host_count(), hosts0 + 1);
  EXPECT_EQ(p.link_count(), links0 + 1);
  EXPECT_EQ(p.host(h).name, "n4");  // members ever created
  EXPECT_EQ(p.zone_of_host(h), zone);

  // The shard map gained the member and its uplink in place.
  const auto& sm = p.shard_map();
  ASSERT_EQ(sm.host_shard.size(), p.host_count());
  ASSERT_EQ(sm.link_shard.size(), p.link_count());
  EXPECT_EQ(sm.host_shard[static_cast<size_t>(h)], sm.zone_shard[static_cast<size_t>(zone)]);
  EXPECT_EQ(sm.host_shard[static_cast<size_t>(h)], sm.host_shard[0]);

  // Routes to and from the joined member compose like any other member's.
  const auto r01 = p.route(0, 1).links();
  const auto r0h = p.route(0, h).links();
  ASSERT_EQ(r0h.size(), r01.size());
  EXPECT_NEAR(p.route(0, h).latency(), p.route(0, 1).latency(), 1e-12);
  EXPECT_EQ(p.link(r0h.back()).name, "n4-link");
}

TEST_F(MembershipTest, LeaveAndRejoinFlipPresenceAndRouting) {
  Platform p = make_star_zone(4);
  EXPECT_TRUE(p.host_present(2));
  EXPECT_EQ(p.departed_host_count(), 0u);

  p.leave_host(2, /*at=*/3.25);
  EXPECT_FALSE(p.host_present(2));
  EXPECT_EQ(p.departed_host_count(), 1u);
  EXPECT_DOUBLE_EQ(p.host_departed_at(2), 3.25);
  EXPECT_FALSE(p.reachable(0, 2));
  EXPECT_TRUE(p.reachable(0, 1));
  EXPECT_THROW(p.leave_host(2), sg::xbt::InvalidArgument);  // double leave

  p.rejoin_host(2);
  EXPECT_TRUE(p.host_present(2));
  EXPECT_EQ(p.departed_host_count(), 0u);
  EXPECT_TRUE(p.reachable(0, 2));
  EXPECT_EQ(p.route(0, 2).links().size(), 2u);
  EXPECT_THROW(p.rejoin_host(2), sg::xbt::InvalidArgument);  // not departed
}

// ---------------------------------------------------------------------------
// Satellite: departed hosts name themselves in errors
// ---------------------------------------------------------------------------

TEST_F(MembershipTest, DepartedHostErrorsNameHostAndDate) {
  Platform p = make_star_zone(4);
  p.leave_host(1, /*at=*/7.5);
  try {
    p.route(0, 1);
    FAIL() << "route() to a departed host resolved";
  } catch (const sg::xbt::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("n1"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("departed at t=7.5"), std::string::npos) << e.what();
  }
}

TEST_F(MembershipTest, EngineActivitiesOnDepartedHostsFailWithDeparture) {
  Engine e(make_star_zone(4));
  e.leave_host(1);

  try {
    e.exec_start(1, 1e9);
    FAIL() << "exec started on a departed host";
  } catch (const sg::xbt::HostFailureException& ex) {
    EXPECT_NE(std::string(ex.what()).find("n1"), std::string::npos) << ex.what();
    EXPECT_NE(std::string(ex.what()).find("departed at t="), std::string::npos) << ex.what();
  }
  EXPECT_THROW(e.sleep_start(1, 1.0), sg::xbt::HostFailureException);
  EXPECT_THROW(e.set_host_state(1, false), sg::xbt::InvalidArgument);

  // Comms to/from a departed endpoint fail immediately (no route resolution).
  auto c = e.comm_start(0, 1, 1e6);
  EXPECT_EQ(c->state(), sg::core::ActionState::kFailed);

  e.rejoin_host(1);
  auto c2 = e.comm_start(0, 1, 1e6);
  EXPECT_EQ(c2->state(), sg::core::ActionState::kRunning);
}

TEST_F(MembershipTest, SpawnOnDepartedHostNamesDeparture) {
  Kernel k(make_star_zone(4));
  k.leave_host(2);
  try {
    k.spawn("ghost", 2, [] {});
    FAIL() << "spawned on a departed host";
  } catch (const sg::xbt::HostFailureException& e) {
    EXPECT_NE(std::string(e.what()).find("n2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("departed at t="), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Churn ≡ rebuild property sweep
// ---------------------------------------------------------------------------

/// (bandwidth, latency) fingerprint of a route — host/link *ids* differ
/// between a churned platform and a fresh build of the survivors, but the
/// physical link sequence must not.
std::vector<std::pair<double, double>> route_fingerprint(const Platform& p, int src, int dst) {
  std::vector<std::pair<double, double>> out;
  for (LinkId l : p.route(src, dst))
    out.push_back({p.link(l).bandwidth_Bps, p.link(l).latency_s});
  return out;
}

/// Star graph of exactly the churned platform's present hosts, flat (no
/// zone): host names, speeds, and uplink specs copied from the survivors.
Platform rebuild_survivors(const Platform& churned) {
  Platform fresh;
  const auto hub = fresh.add_router("hub");
  for (size_t h = 0; h < churned.host_count(); ++h) {
    const int hi = static_cast<int>(h);
    if (!churned.host_present(hi))
      continue;
    const auto& spec = churned.host(hi);
    const auto node = fresh.add_host(spec.name, spec.speed_flops);
    const auto uplinks = churned.host_private_links(hi);
    EXPECT_EQ(uplinks.size(), 1u) << "star member " << spec.name;
    const auto& lspec = churned.link(uplinks[0]);
    const LinkId l = fresh.add_link(lspec.name, lspec.bandwidth_Bps, lspec.latency_s);
    fresh.add_edge(node, hub, l);
  }
  fresh.seal();
  return fresh;
}

/// Drain an engine to quiescence, returning each completion keyed by
/// (kind, host name, peer name) — names, again, because indices differ.
std::map<std::string, double> drain_completions(Engine& e) {
  std::map<std::string, double> done;
  const double inf = std::numeric_limits<double>::infinity();
  while (e.running_action_count() > 0) {
    const double t = e.next_event_time();
    EXPECT_LT(t, inf) << "stranded actions";
    if (t >= inf)
      return done;
    for (const auto& ev : e.step(t)) {
      EXPECT_FALSE(ev.failed);
      std::string key = ev.action->kind() == ActionKind::kComm
                            ? "comm " + e.platform().host(ev.action->host()).name + ">" +
                                  e.platform().host(ev.action->peer_host()).name
                            : "exec " + e.platform().host(ev.action->host()).name;
      done[key] = e.now();
    }
  }
  return done;
}

TEST_F(MembershipTest, ChurnEqualsRebuildSweep) {
  for (std::uint64_t seed : {5u, 17u, 41u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sg::xbt::Rng rng(seed);
    Engine e(make_star_zone(10));
    const ZoneId zone = *e.platform().zone_by_name("star");

    // Random churn: joins, leaves, rejoins — always keeping a quorum.
    for (int op = 0; op < 40; ++op) {
      const auto& pf = e.platform();
      std::vector<int> present;
      std::vector<int> departed;
      for (size_t h = 0; h < pf.host_count(); ++h)
        (pf.host_present(static_cast<int>(h)) ? present : departed).push_back(static_cast<int>(h));
      const double pick = rng.uniform01();
      if (pick < 0.3 && pf.host_count() < 24) {
        e.join_host(zone);
      } else if (pick < 0.65 && present.size() > 4) {
        e.leave_host(present[rng.uniform_int(0, present.size() - 1)]);
      } else if (!departed.empty()) {
        e.rejoin_host(departed[rng.uniform_int(0, departed.size() - 1)]);
      }
    }

    const auto& churned = e.platform();
    Platform fresh = rebuild_survivors(churned);

    // Map names to indices on both sides.
    std::vector<int> survivors;
    for (size_t h = 0; h < churned.host_count(); ++h)
      if (churned.host_present(static_cast<int>(h)))
        survivors.push_back(static_cast<int>(h));
    ASSERT_GE(survivors.size(), 4u);
    ASSERT_EQ(fresh.host_count(), survivors.size());

    const auto& sm = churned.shard_map();
    const auto zone_shard = sm.zone_shard[static_cast<size_t>(zone)];
    for (size_t i = 0; i < survivors.size(); ++i) {
      const int ci = survivors[i];
      const int fi = *fresh.host_by_name(churned.host(ci).name);
      // Shard grouping: every present member (seal-time or joined) lives in
      // the zone's shard, as does its uplink.
      EXPECT_EQ(sm.host_shard[static_cast<size_t>(ci)], zone_shard);
      for (LinkId l : churned.host_private_links(ci))
        EXPECT_EQ(sm.link_shard[static_cast<size_t>(l)], zone_shard);
      // Routes: same latency, same physical link sequence as the rebuild.
      for (size_t j = 0; j < survivors.size(); ++j) {
        if (i == j)
          continue;
        const int cj = survivors[j];
        const int fj = *fresh.host_by_name(churned.host(cj).name);
        EXPECT_NEAR(churned.route(ci, cj).latency(), fresh.route(fi, fj).latency(), 1e-9);
        EXPECT_EQ(route_fingerprint(churned, ci, cj), route_fingerprint(fresh, fi, fj))
            << churned.host(ci).name << " -> " << churned.host(cj).name;
      }
    }

    // Solver results: an identical workload (ring comms + per-host execs
    // over the survivors) completes at identical clocks on both engines.
    Engine ef(std::move(fresh));
    for (size_t i = 0; i < survivors.size(); ++i) {
      const int ci = survivors[i];
      const int cj = survivors[(i + 1) % survivors.size()];
      const int fi = *ef.platform().host_by_name(churned.host(ci).name);
      const int fj = *ef.platform().host_by_name(churned.host(cj).name);
      e.comm_start(ci, cj, 1e7);
      ef.comm_start(fi, fj, 1e7);
      e.exec_start(ci, 4e8);
      ef.exec_start(fi, 4e8);
    }
    const auto done_churned = drain_completions(e);
    const auto done_fresh = drain_completions(ef);
    ASSERT_EQ(done_churned.size(), done_fresh.size());
    ASSERT_EQ(done_churned.size(), 2 * survivors.size());
    for (const auto& [key, t] : done_churned) {
      auto it = done_fresh.find(key);
      ASSERT_NE(it, done_fresh.end()) << key;
      EXPECT_NEAR(t, it->second, 1e-9 * std::max(1.0, it->second)) << key;
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite: suspended residents are reaped exactly once
// ---------------------------------------------------------------------------

TEST_F(MembershipTest, SuspendedResidentsReapedExactlyOnce) {
  Kernel k(make_star_zone(4));
  std::atomic<int> exec_exits{0};
  std::atomic<int> sleep_exits{0};
  std::atomic<int> parked_exits{0};

  const ActorId exec_victim = k.spawn("exec-victim", 1, [&k] { k.execute(1e15); });
  const ActorId sleep_victim = k.spawn("sleep-victim", 1, [&k] { k.sleep_for(1e9); });
  const ActorId parked_victim = k.spawn("parked-victim", 1, [&k] {
    k.suspend(Kernel::self()->id());  // parks itself until resumed — or killed
  });
  k.actor(exec_victim)->on_exit([&](bool failed) {
    EXPECT_TRUE(failed);
    ++exec_exits;
  });
  k.actor(sleep_victim)->on_exit([&](bool failed) {
    EXPECT_TRUE(failed);
    ++sleep_exits;
  });
  k.actor(parked_victim)->on_exit([&](bool failed) {
    EXPECT_TRUE(failed);
    ++parked_exits;
  });

  k.spawn("controller", 0, [&] {
    k.sleep_for(0.1);  // let the victims block
    k.suspend(exec_victim);
    k.suspend(sleep_victim);
    k.sleep_for(0.1);
    k.host_off(1);  // reaps all three, suspended or not
    k.sleep_for(0.1);
    EXPECT_FALSE(k.is_alive(exec_victim));
    EXPECT_FALSE(k.is_alive(sleep_victim));
    EXPECT_FALSE(k.is_alive(parked_victim));
  });
  k.run();
  EXPECT_EQ(exec_exits.load(), 1);
  EXPECT_EQ(sleep_exits.load(), 1);
  EXPECT_EQ(parked_exits.load(), 1);
}

TEST_F(MembershipTest, SuspendedResidentsReapedOnceByDeparture) {
  Kernel k(make_star_zone(4));
  std::atomic<int> exits{0};
  const ActorId victim = k.spawn("victim", 2, [&k] { k.execute(1e15); });
  k.actor(victim)->on_exit([&](bool) { ++exits; });
  k.spawn("controller", 0, [&] {
    k.sleep_for(0.1);
    k.suspend(victim);
    k.leave_host(2);
    k.sleep_for(0.1);
    EXPECT_FALSE(k.is_alive(victim));
  });
  k.run();
  EXPECT_EQ(exits.load(), 1);
}

// ---------------------------------------------------------------------------
// Graceful degradation: rejoin daemons, retry helpers, membership driver
// ---------------------------------------------------------------------------

TEST_F(MembershipTest, RejoinDaemonRestartsWhenHostReturns) {
  Kernel k(make_star_zone(4));
  std::atomic<int> incarnations{0};
  register_rejoin_daemon(k, "beacon", 3, [&] {
    ++incarnations;
    k.sleep_for(1e9);  // idles until killed with its host
  });
  k.spawn("controller", 0, [&] {
    k.sleep_for(0.5);
    k.leave_host(3);
    EXPECT_FALSE(k.engine().host_present(3));
    k.sleep_for(0.5);
    EXPECT_EQ(incarnations.load(), 1);
    k.rejoin_host(3);
    k.sleep_for(0.5);
    EXPECT_EQ(incarnations.load(), 2);  // restarted on rejoin
  });
  k.run();
  EXPECT_EQ(incarnations.load(), 2);
}

TEST_F(MembershipTest, RetrySendRidesOutDepartureAndReturn) {
  Kernel k(make_star_zone(4));
  std::atomic<int> received{0};
  std::atomic<bool> sent_ok{false};

  register_rejoin_daemon(k, "worker", 2, [&] {
    void* raw = k.recv("inbox");
    received += static_cast<int>(reinterpret_cast<std::intptr_t>(raw));
    k.sleep_for(1e9);
  });
  k.spawn("chaos", 0,
          [&] {
            k.sleep_for(0.05);
            k.leave_host(2);
            k.sleep_for(1.0);
            k.rejoin_host(2);
          },
          /*daemon=*/true);
  k.spawn("master", 1, [&] {
    k.sleep_for(0.1);  // after departure: first attempts fail
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.timeout = 0.25;
    policy.backoff = 2.0;
    sent_ok = retry_send(k, k.mailbox_by_name("inbox"),
                         reinterpret_cast<void*>(static_cast<std::intptr_t>(7)), 1e6, policy);
  });
  k.run();
  EXPECT_TRUE(sent_ok.load());
  EXPECT_EQ(received.load(), 7);
}

TEST_F(MembershipTest, RetryGivesUpAfterBoundedAttempts) {
  Kernel k(make_star_zone(4));
  double gave_up_at = -1.0;
  k.spawn("master", 0, [&] {
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.timeout = 0.5;
    policy.backoff = 2.0;
    // Nobody ever receives: 3 attempts (0.5 + 1.0 + 2.0) with backoff
    // sleeps (0.5 + 1.0) between them.
    EXPECT_FALSE(retry_send(k, k.mailbox_by_name("void"), nullptr, 1e6, policy));
    gave_up_at = k.now();
  });
  k.run();
  EXPECT_NEAR(gave_up_at, 0.5 + 0.5 + 1.0 + 1.0 + 2.0, 1e-9);
}

TEST_F(MembershipTest, MembershipDriverFollowsChurnTraces) {
  // The parser accepts churn: traces; the driver promotes their edges to
  // whole-host departure and return.
  Platform p = sg::platform::parse_platform(R"(
host stable speed:1e9
host flappy speed:1e9 churn:"0 1;2 0;4 1"
link l bw:1e8 lat:1e-4
edge stable flappy l
)");
  ASSERT_FALSE(p.host(1).churn.empty());
  Kernel k(std::move(p));
  start_membership_driver(k, /*driver_host=*/0);
  k.spawn("observer", 0, [&] {
    EXPECT_TRUE(k.engine().host_present(1));
    k.sleep_for(3.0);  // t=3: past the departure edge at t=2
    EXPECT_FALSE(k.engine().host_present(1));
    k.sleep_for(2.0);  // t=5: past the return edge at t=4
    EXPECT_TRUE(k.engine().host_present(1));
  });
  k.run();
}

// ---------------------------------------------------------------------------
// Parallel ≡ serial log equivalence of a churn workload
// ---------------------------------------------------------------------------

/// Multi-zone platform (the kernel only shards its run queues across zones).
Platform make_zoned_platform(int zones, int per_zone) {
  Platform p;
  for (int z = 0; z < zones; ++z) {
    ClusterZoneSpec zone;
    zone.name = "zone" + std::to_string(z);
    zone.host_prefix = "z" + std::to_string(z) + "-";
    zone.count = per_zone;
    zone.host_speed = 1e9;
    zone.link_bandwidth = 1e8;
    zone.link_latency = 5e-5;
    p.add_cluster_zone(zone);
  }
  for (int z = 1; z < zones; ++z) {
    const LinkId wan =
        p.add_link("wan" + std::to_string(z), 4e8, 1e-3, sg::platform::SharingPolicy::kFatpipe);
    p.add_edge(p.zone_gateway(0), p.zone_gateway(z), wan);
  }
  p.seal();
  return p;
}

/// Trace-churned master/worker run: one worker host per zone flaps its
/// membership on a square wave (each zone phase-shifted); workers are rejoin
/// daemons, the master rides the churn with retry_send/recv. Returns the
/// per-actor logs concatenated in actor order plus the end clock.
std::pair<std::vector<std::string>, double> run_churn_workload(bool parallel, int lanes) {
  sg::config::set(sg::core::kCfgThreads, lanes);
  sg::config::set(sg::core::kCfgParallelActors, parallel);

  constexpr int kZones = 3;
  constexpr int kPerZone = 4;
  Kernel k(make_zoned_platform(kZones, kPerZone));

  // Worker w lives on host 1 of zone w; that host churns on a square wave
  // (1.1s member, 0.6s departed), staggered so departures never collide.
  std::vector<HostChurn> churn;
  std::vector<int> worker_hosts;
  for (int z = 0; z < kZones; ++z) {
    const int host = z * kPerZone + 1;
    worker_hosts.push_back(host);
    auto wave = sg::trace::square_wave("churn" + std::to_string(z), 1.0, 1.1 + 0.2 * z, 0.0, 0.6);
    churn.push_back({host, std::move(wave)});
  }
  const int n_workers = static_cast<int>(worker_hosts.size());

  std::vector<std::vector<std::string>> logs(1 + static_cast<size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) {
    register_rejoin_daemon(k, "worker" + std::to_string(w), worker_hosts[static_cast<size_t>(w)],
                           [&k, &logs, w] {
                             const MailboxId inbox = k.mailbox_by_name("tasks:" + std::to_string(w));
                             const MailboxId results = k.mailbox_by_name("results");
                             while (true) {
                               void* raw = k.recv(inbox);
                               const auto task = reinterpret_cast<std::intptr_t>(raw);
                               logs[static_cast<size_t>(1 + w)].push_back(
                                   sg::xbt::format("%.9f w%d task=%ld", k.now(), w, task));
                               k.execute(4e7 + 1e7 * static_cast<double>(task % 5));
                               k.send(results, raw, 1e4);
                             }
                           });
  }

  start_membership_driver(k, /*driver_host=*/0, std::move(churn));

  k.spawn("master", 0, [&] {
    const MailboxId results = k.mailbox_by_name("results");
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.timeout = 0.4;
    policy.backoff = 2.0;
    for (int t = 1; t <= 24; ++t) {
      const int w = t % n_workers;
      if (!retry_send(k, k.mailbox_by_name("tasks:" + std::to_string(w)),
                      reinterpret_cast<void*>(static_cast<std::intptr_t>(t)), 1e5, policy)) {
        logs[0].push_back(sg::xbt::format("%.9f give-up task=%d worker=%d", k.now(), t, w));
        continue;
      }
      void* ack = retry_recv(k, results, policy);
      if (ack != nullptr)
        logs[0].push_back(sg::xbt::format("%.9f done task=%ld worker=%d", k.now(),
                                          reinterpret_cast<std::intptr_t>(ack), w));
      else
        logs[0].push_back(sg::xbt::format("%.9f lost task=%d worker=%d", k.now(), t, w));
    }
    logs[0].push_back(sg::xbt::format("%.9f master finished", k.now()));
  });

  const double end = k.run();
  std::vector<std::string> log;
  for (const auto& l : logs)
    log.insert(log.end(), l.begin(), l.end());
  return {log, end};
}

TEST_F(MembershipTest, ParallelChurnWorkloadMatchesSerialLog) {
  const auto serial = run_churn_workload(false, 1);
  EXPECT_GT(serial.first.size(), 20u);
  for (int lanes : {1, 4}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    const auto par = run_churn_workload(true, lanes);
    EXPECT_EQ(par.first, serial.first);
    EXPECT_NEAR(par.second, serial.second, 1e-9 * std::max(1.0, serial.second));
  }
}

}  // namespace
