/// Cross-layer integration and property tests: the full stack exercised
/// end-to-end (platform -> engine -> kernel -> MSG/GRAS/SMPI), with
/// parameterized sweeps over platform shapes and scales.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/engine.hpp"
#include "gras/gras.hpp"
#include "msg/msg.hpp"
#include "pkt/pkt.hpp"
#include "platform/builders.hpp"
#include "platform/parser.hpp"
#include "datadesc/pastry.hpp"
#include "smpi/smpi.hpp"
#include "topo/brite.hpp"
#include "trace/trace.hpp"
#include "viz/gantt.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"

namespace {

class IntegrationTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
  }
  void TearDown() override {
    sg::msg::MSG_clean();
    sg::smpi::bench_reset();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }
};

// -- MSG on generated topologies ---------------------------------------------------

TEST_F(IntegrationTest, MsgAllPairsPingOnWaxman) {
  // Every host pings every other host; all pings must arrive, and the
  // simulation must stay deterministic across two runs.
  auto run_once = [] {
    using namespace sg::msg;
    sg::topo::WaxmanSpec spec;
    spec.n_nodes = 8;
    spec.seed = 5;
    MSG_init(sg::topo::to_platform(sg::topo::generate_waxman(spec)));
    static int received;
    received = 0;
    const int n = MSG_get_host_number();
    for (int i = 0; i < n; ++i) {
      MSG_process_create("pinger" + std::to_string(i), [i, n] {
        for (int j = 0; j < n; ++j) {
          if (j == i)
            continue;
          m_task_t t = MSG_task_create("ping", 0, 1e4);
          MSG_task_put(t, MSG_host_by_index(j), 0);
        }
      }, MSG_host_by_index(i));
      MSG_process_create("ponger" + std::to_string(i), [i, n] {
        (void)i;
        for (int j = 0; j < n - 1; ++j) {
          m_task_t t = nullptr;
          MSG_task_get(&t, 0);
          MSG_task_destroy(t);
          ++received;
        }
      }, MSG_host_by_index(i));
    }
    const double end = MSG_main();
    EXPECT_EQ(received, n * (n - 1));
    MSG_clean();
    return end;
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST_F(IntegrationTest, MsgWorkConservationUnderAvailabilityTrace) {
  // Total simulated work time equals work / integral of available speed:
  // a host at 50% availability half the time does 0.75x work per second.
  using namespace sg::msg;
  sg::platform::Platform p;
  sg::platform::HostSpec spec;
  spec.name = "h";
  spec.speed_flops = 1e9;
  spec.availability = sg::trace::square_wave("w", 1.0, 1.0, 0.5, 1.0);
  p.add_host(spec);
  MSG_init(std::move(p));
  double done = -1;
  MSG_process_create("worker", [&] {
    m_task_t t = MSG_task_create("work", 7.5e9, 0);
    MSG_task_execute(t);
    MSG_task_destroy(t);
    done = MSG_get_clock();
  }, MSG_host_by_index(0));
  MSG_main();
  // 7.5e9 flops at avg 0.75e9 flop/s = 10 s (and 10s is a whole number of
  // trace periods, so the equality is exact).
  EXPECT_NEAR(done, 10.0, 1e-6);
}

// -- parameterized MSG pipeline sweep -------------------------------------------------

class MsgPipelineSweep : public IntegrationTest, public ::testing::WithParamInterface<int> {};

TEST_P(MsgPipelineSweep, TokenRingCompletes) {
  // A token circles a ring of n processes k times; total hops = n*k, and the
  // finish time scales linearly with hops on a uniform ring.
  using namespace sg::msg;
  const int n = GetParam();
  sg::platform::Platform p;
  std::vector<sg::platform::NodeId> hosts;
  for (int i = 0; i < n; ++i)
    hosts.push_back(p.add_host("r" + std::to_string(i), 1e9));
  for (int i = 0; i < n; ++i) {
    auto l = p.add_link("rl" + std::to_string(i), 1e8, 1e-3);
    p.add_edge(hosts[static_cast<size_t>(i)], hosts[static_cast<size_t>((i + 1) % n)], l);
  }
  p.seal();
  MSG_init(std::move(p));
  const int laps = 3;
  static int hops;
  hops = 0;
  for (int i = 0; i < n; ++i) {
    MSG_process_create("node" + std::to_string(i), [i, n, laps] {
      const int my_rounds = laps;
      if (i == 0) {
        m_task_t token = MSG_task_create("token", 0, 1e5);
        MSG_task_put(token, MSG_host_by_index(1 % n), 0);
      }
      for (int r = 0; r < my_rounds; ++r) {
        if (i == 0 && r == my_rounds - 1)
          break;  // the initiator stops after receiving the last lap
        m_task_t token = nullptr;
        MSG_task_get(&token, 0);
        ++hops;
        const int next = (i + 1) % n;
        if (i == 0 && r == my_rounds - 2) {
          MSG_task_destroy(token);
          break;
        }
        MSG_task_put(token, MSG_host_by_index(next), 0);
      }
    }, MSG_host_by_index(i));
  }
  MSG_main();
  EXPECT_GT(hops, n);  // the token circulated
  MSG_clean();
}

INSTANTIATE_TEST_SUITE_P(RingSizes, MsgPipelineSweep, ::testing::Values(2, 3, 5, 8, 13));

// -- SMPI collectives on varied platform shapes ------------------------------------------

struct CollectiveCase {
  int ranks;
  bool hetero;
};

class SmpiCollectiveSweep : public IntegrationTest,
                            public ::testing::WithParamInterface<CollectiveCase> {};

TEST_P(SmpiCollectiveSweep, AllreduceAllgatherAgree) {
  using namespace sg::smpi;
  const auto param = GetParam();
  const int P = param.ranks;
  sg::platform::Platform p;
  auto sw = p.add_router("sw");
  for (int i = 0; i < P; ++i) {
    const double speed = param.hetero ? 1e9 / (1 + i % 3) : 1e9;
    auto h = p.add_host("h" + std::to_string(i), speed);
    p.add_edge(h, sw, p.add_link("l" + std::to_string(i), 1.25e8, 5e-5));
  }
  p.seal();
  bool ok = true;
  smpi_run(std::move(p), P, [&](int rank) {
    // Allreduce of rank -> everyone has sum; allgather of rank -> identity.
    int sum = 0;
    MPI_Allreduce(&rank, &sum, 1, MPI_INT, MPI_SUM);
    if (sum != P * (P - 1) / 2)
      ok = false;
    std::vector<int> all(static_cast<size_t>(P), -1);
    MPI_Allgather(&rank, 1, MPI_INT, all.data());
    for (int r = 0; r < P; ++r)
      if (all[static_cast<size_t>(r)] != r)
        ok = false;
    MPI_Barrier();
  });
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SmpiCollectiveSweep,
                         ::testing::Values(CollectiveCase{2, false}, CollectiveCase{3, true},
                                           CollectiveCase{4, false}, CollectiveCase{7, true},
                                           CollectiveCase{8, false}, CollectiveCase{16, true}));

// -- GRAS across the stack -------------------------------------------------------------

TEST_F(IntegrationTest, GrasRequestReplyFarmOnCluster) {
  // One GRAS server, many clients, platform from the parser: end-to-end
  // through parsing, routing, kernel, datadesc and the GRAS transport.
  const std::string platform_text = R"(
host hub speed:2Gf
host c0 speed:1Gf
host c1 speed:1Gf
host c2 speed:1Gf
router sw
link lhub bw:125MBps lat:100us
link l0 bw:12.5MBps lat:1ms
link l1 bw:12.5MBps lat:1ms
link l2 bw:12.5MBps lat:1ms
edge hub sw lhub
edge c0 sw l0
edge c1 sw l1
edge c2 sw l2
)";
  sg::gras::SimWorld world(sg::platform::parse_platform(platform_text));
  sg::gras::msgtype_declare("work", sg::datadesc::datadesc_by_name("int"));
  sg::gras::msgtype_declare("done", sg::datadesc::datadesc_by_name("int"));
  int handled = 0;
  world.spawn("server", "hub", [&] {
    sg::gras::cb_register("work", [&](sg::gras::Message& m) {
      ++handled;
      sg::gras::msg_send(m.source, "done", sg::datadesc::Value(m.payload.as_int() * 2));
    });
    sg::gras::socket_server(4000);
    for (int i = 0; i < 9; ++i)
      sg::gras::msg_handle(60.0);
  });
  std::vector<int> replies;
  for (int c = 0; c < 3; ++c) {
    world.spawn("client" + std::to_string(c), "c" + std::to_string(c), [&, c] {
      sg::gras::os_sleep(0.01);
      auto peer = sg::gras::socket_client("hub", 4000);
      for (int i = 0; i < 3; ++i) {
        sg::gras::msg_send(peer, "work", sg::datadesc::Value(c * 10 + i));
        auto m = sg::gras::msg_wait(30.0, "done");
        replies.push_back(static_cast<int>(m.payload.as_int()));
      }
    });
  }
  world.run();
  EXPECT_EQ(handled, 9);
  ASSERT_EQ(replies.size(), 9u);
  int sum = std::accumulate(replies.begin(), replies.end(), 0);
  EXPECT_EQ(sum, 2 * (0 + 1 + 2 + 10 + 11 + 12 + 20 + 21 + 22));
}

// -- engine + viz + failures end-to-end ----------------------------------------------

TEST_F(IntegrationTest, TracedExecutionSurvivesFailuresAndRendersGantt) {
  using namespace sg::msg;
  sg::platform::Platform p;
  sg::platform::HostSpec flaky;
  flaky.name = "flaky";
  flaky.speed_flops = 1e9;
  flaky.state = sg::trace::Trace("s", {{0.0, 1.0}, {2.0, 0.0}, {4.0, 1.0}}, -1.0);
  p.add_host(flaky);
  auto stable = p.add_host("stable", 1e9);
  p.add_route(p.node_by_name("flaky").value(), stable, {p.add_link("l", 1e8, 1e-4)});
  MSG_init(std::move(p));
  sg::viz::Tracer tracer(MSG_kernel().engine());

  static int attempts;
  attempts = 0;
  MSG_process_create("phoenix", [] {
    ++attempts;
    m_task_t t = MSG_task_create("work", 10e9, 0);  // 10 s of work: dies at t=2
    try {
      MSG_task_execute(t);
    } catch (...) {
      MSG_task_destroy(t);  // host failure unwinds the actor mid-execute
      throw;
    }
    MSG_task_destroy(t);
  }, MSG_get_host_by_name("flaky"), /*daemon=*/true, /*auto_restart=*/true);
  MSG_process_create("observer", [] { MSG_process_sleep(6.0); },
                     MSG_get_host_by_name("stable"));
  MSG_main();
  EXPECT_EQ(attempts, 2);  // killed at t=2, restarted at t=4
  // The tracer saw a failed interval and the render mentions both hosts.
  bool saw_flaky_interval = false;
  for (const auto& iv : tracer.intervals())
    if (iv.host == 0 && iv.kind == sg::viz::IntervalKind::kCompute)
      saw_flaky_interval = true;
  EXPECT_TRUE(saw_flaky_interval);
  const std::string chart = tracer.render_ascii(60);
  EXPECT_NE(chart.find("flaky"), std::string::npos);
  tracer.detach();
}

// -- fluid vs packet consistency through the MSG layer ----------------------------------

TEST_F(IntegrationTest, MsgTransferTimeMatchesEngineAndPacketBallpark) {
  auto& cfg = sg::xbt::Config::instance();
  cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
  cfg.set("network/tcp-gamma", 65536.0);
  const double bytes = 4e6;
  const auto platform = sg::platform::make_dumbbell(1e9, 1.25e6, 2e-3);

  // MSG-level transfer.
  using namespace sg::msg;
  MSG_init(sg::platform::Platform(platform));
  double msg_time = -1;
  MSG_process_create("s", [&] {
    m_task_t t = MSG_task_create("blob", 0, bytes);
    MSG_task_put(t, MSG_host_by_index(1), 0);
  }, MSG_host_by_index(0));
  MSG_process_create("r", [&] {
    m_task_t t = nullptr;
    MSG_task_get(&t, 0);
    MSG_task_destroy(t);
    msg_time = MSG_get_clock();
  }, MSG_host_by_index(1));
  MSG_main();

  // Packet-level reference.
  sg::pkt::PacketNet net(platform, sg::pkt::TcpParams::ns2());
  net.add_flow({0, 1, bytes, 0.0});
  net.run();
  const double pkt_time = net.result(0).finish_time;

  EXPECT_NEAR(msg_time / pkt_time, 1.0, 0.15)
      << "MSG " << msg_time << " vs packet " << pkt_time;
}

// -- datadesc through GRAS across simulated architectures -------------------------------

TEST_F(IntegrationTest, PastryStateFloodsThroughSimWorld) {
  // Pastry-like state exchange among 4 nodes: every node sends its state to
  // every other; payloads survive the codec + transport round trip intact.
  sg::gras::msgtype_declare("pastry-state", sg::datadesc::pastry_message_desc());
  sg::platform::ClusterSpec spec;
  spec.count = 4;
  spec.prefix = "peer";
  sg::gras::SimWorld world(sg::platform::make_cluster(spec));
  sg::xbt::Rng rng(31);
  std::vector<sg::datadesc::Value> states;
  for (int i = 0; i < 4; ++i)
    states.push_back(sg::datadesc::make_pastry_message(rng, 128));
  int verified = 0;
  for (int i = 0; i < 4; ++i) {
    world.spawn("peer" + std::to_string(i), "peer" + std::to_string(i), [&, i] {
      sg::gras::socket_server(7000 + i);
      sg::gras::os_sleep(0.05);
      for (int j = 0; j < 4; ++j) {
        if (j == i)
          continue;
        auto sock = sg::gras::socket_client("peer" + std::to_string(j), 7000 + j);
        sg::gras::msg_send(sock, "pastry-state", states[static_cast<size_t>(i)]);
      }
      for (int j = 0; j < 3; ++j) {
        auto m = sg::gras::msg_wait(60.0, "pastry-state");
        // Identify the sender by matching payloads (they are all distinct).
        bool matched = false;
        for (const auto& s : states)
          if (m.payload == s)
            matched = true;
        if (matched)
          ++verified;
      }
    });
  }
  world.run();
  EXPECT_EQ(verified, 12);  // 4 nodes x 3 incoming states each, all intact
}

}  // namespace
