/// Tests for `engine/parallel-actors`: fanning actor execution out across
/// the engine's ShardWorkers lanes must be *observably invisible*. The
/// headline sweep drives a randomized fault-flapping master/worker scenario
/// on a multi-zone platform at 1/2/4/8 lanes and compares the ordered event
/// log bitwise, the clocks to 1e-9, and the scheduler counters exactly
/// against the serial (`engine/parallel-actors=0`) baseline.
///
/// Also covered: the all-cross-shard stress where every mailbox's home is
/// the backbone shard (interned from the maestro), so every send, recv,
/// probe, and test a zone actor makes takes the deferred-simcall path and
/// replays in the serial epilogue.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "kernel/context.hpp"
#include "kernel/kernel.hpp"
#include "platform/platform.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"

namespace {

using namespace sg::kernel;
using sg::platform::ClusterZoneSpec;
using sg::platform::Platform;

class ParallelActorsTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    declare_context_config();
    saved_backend_ = sg::xbt::Config::instance().get_string("contexts/backend");
    sg::config::set(sg::core::kCfgThreads, 1);
    sg::config::set(sg::core::kCfgParallelActors, false);
  }
  void TearDown() override {
    sg::xbt::Config::instance().set_string("contexts/backend", saved_backend_);
    sg::config::set(sg::core::kCfgThreads, 1);
    sg::config::set(sg::core::kCfgParallelActors, false);
  }

private:
  std::string saved_backend_;
};

/// Multi-zone platform so the kernel actually shards its run queues (a flat
/// platform has one shard and the parallel phase never fans out).
Platform make_zoned_platform(int zones, int per_zone) {
  Platform p;
  for (int z = 0; z < zones; ++z) {
    ClusterZoneSpec zone;
    zone.name = "zone" + std::to_string(z);
    zone.host_prefix = "z" + std::to_string(z) + "-";
    zone.count = per_zone;
    zone.host_speed = 1e9;
    zone.link_bandwidth = 1e8;
    zone.link_latency = 5e-5;
    p.add_cluster_zone(zone);
  }
  for (int z = 1; z < zones; ++z) {
    const sg::platform::LinkId wan = p.add_link("wan" + std::to_string(z), 4e8, 1e-3,
                                                sg::platform::SharingPolicy::kFatpipe);
    p.add_edge(p.zone_gateway(0), p.zone_gateway(z), wan);
  }
  p.seal();
  return p;
}

/// Everything observable about one run. The log is the concatenation of
/// per-actor logs in actor order — actors must not share a log vector, since
/// their bodies may run on different worker lanes.
struct SweepResult {
  std::vector<std::string> log;
  double end_clock = 0.0;
  std::uint64_t wakeups = 0;
  std::uint64_t switches = 0;
  int completions = 0;
};

/// Randomized master/worker with fault flaps across four zones: the master
/// (zone 0) farms tasks to auto-restarting workers in every zone over
/// worker-interned mailboxes (cross-shard sends, home-shard recvs) while a
/// chaos daemon powers worker hosts off and on. Completions, timeouts, and
/// failure exceptions land in per-actor logs.
SweepResult run_flapping_master_worker(bool parallel, int lanes, unsigned seed) {
  sg::config::set(sg::core::kCfgThreads, lanes);
  sg::config::set(sg::core::kCfgParallelActors, parallel);

  constexpr int kZones = 4;
  constexpr int kPerZone = 4;
  Kernel k(make_zoned_platform(kZones, kPerZone));
  EXPECT_GT(k.engine().platform().shard_map().shard_count, 1);

  // Two workers per zone, on hosts {1, 2} of each zone (host 0 of zone 0
  // belongs to the master, and chaos only ever flaps worker hosts).
  std::vector<int> worker_hosts;
  for (int z = 0; z < kZones; ++z) {
    worker_hosts.push_back(z * kPerZone + 1);
    worker_hosts.push_back(z * kPerZone + 2);
  }
  const int n_workers = static_cast<int>(worker_hosts.size());

  SweepResult res;
  // log slot 0 = master, 1 = chaos, 2 + w = worker w.
  std::vector<std::vector<std::string>> logs(2 + static_cast<size_t>(n_workers));

  for (int w = 0; w < n_workers; ++w) {
    k.spawn("worker" + std::to_string(w), worker_hosts[static_cast<size_t>(w)],
            [&k, &logs, w] {
              // Interned from the worker body: the mailbox's home is the
              // worker's own shard, so its recv matches inline on its lane
              // while the master's sends defer.
              const MailboxId inbox = k.mailbox_by_name("tasks:" + std::to_string(w));
              const MailboxId results = k.mailbox_by_name("results");
              while (true) {
                void* raw = k.recv(inbox);
                const auto task = reinterpret_cast<std::intptr_t>(raw);
                logs[static_cast<size_t>(2 + w)].push_back(
                    sg::xbt::format("%.9f w%d got task=%ld", k.now(), w, task));
                k.execute(5e7 + 1e7 * static_cast<double>(task % 7));
                k.send(results, raw, 1e4);
              }
            },
            /*daemon=*/true, /*auto_restart=*/true);
  }

  k.spawn("master", 0, [&] {
    const MailboxId results = k.mailbox_by_name("results");
    sg::xbt::Rng rng(seed);
    const int n_tasks = 30;
    for (int t = 1; t <= n_tasks; ++t) {
      const int w = static_cast<int>(rng.uniform_int(0, n_workers - 1));
      try {
        k.send("tasks:" + std::to_string(w),
               reinterpret_cast<void*>(static_cast<std::intptr_t>(t)), 1e5, /*timeout=*/1.5);
        void* ack = k.recv(results, /*timeout=*/1.5);
        ++res.completions;
        logs[0].push_back(sg::xbt::format("%.9f done task=%ld worker=%d", k.now(),
                                          reinterpret_cast<std::intptr_t>(ack), w));
      } catch (const sg::xbt::Exception& e) {
        logs[0].push_back(sg::xbt::format("%.9f fail task=%d worker=%d: %s", k.now(), t, w, e.what()));
        k.sleep_for(0.25);  // let the flapped host come back
      }
    }
    logs[0].push_back(sg::xbt::format("%.9f master finished", k.now()));
  });

  k.spawn("chaos", 3,
          [&] {
            sg::xbt::Rng rng(seed * 31 + 7);
            for (int i = 0; i < 6; ++i) {
              k.sleep_for(rng.uniform(0.3, 1.0));
              const int victim = worker_hosts[rng.uniform_int(0, n_workers - 1)];
              logs[1].push_back(sg::xbt::format("%.9f chaos: host %d off", k.now(), victim));
              k.host_off(victim);
              k.sleep_for(0.2);
              k.host_on(victim);
              logs[1].push_back(sg::xbt::format("%.9f chaos: host %d on", k.now(), victim));
            }
          },
          /*daemon=*/true);

  res.end_clock = k.run();
  res.wakeups = k.stats().wakeups;
  res.switches = k.stats().context_switches;
  for (const auto& log : logs)
    res.log.insert(res.log.end(), log.begin(), log.end());
  return res;
}

TEST_F(ParallelActorsTest, ParallelLanesMatchSerialBitwiseAcrossLaneCounts) {
  for (unsigned seed : {3u, 11u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const SweepResult serial = run_flapping_master_worker(false, 1, seed);
    EXPECT_GT(serial.completions, 0);
    bool saw_failure = false;
    for (const std::string& line : serial.log)
      saw_failure |= line.find("fail ") != std::string::npos;
    EXPECT_TRUE(saw_failure);  // the flaps must actually bite

    for (int lanes : {1, 2, 4, 8}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes));
      const SweepResult par = run_flapping_master_worker(true, lanes, seed);
      EXPECT_EQ(serial.log, par.log);
      EXPECT_NEAR(serial.end_clock, par.end_clock, 1e-9);
      EXPECT_EQ(serial.completions, par.completions);
      EXPECT_EQ(serial.wakeups, par.wakeups);
      EXPECT_EQ(serial.switches, par.switches);
    }
  }
}

/// Every mailbox is interned from the maestro, so its home is shard 0 — the
/// backbone shard, where no actor lives. Every send/recv/probe/test from the
/// zone actors is therefore cross-shard and takes the deferred path; the
/// scenario mixes blocking pairs, async+wait, detached sends, polling via
/// comm_waiting/comm_test, and timeouts that actually fire.
SweepResult run_all_cross_shard_stress(bool parallel, int lanes) {
  sg::config::set(sg::core::kCfgThreads, lanes);
  sg::config::set(sg::core::kCfgParallelActors, parallel);

  constexpr int kZones = 3;
  constexpr int kPerZone = 4;
  constexpr int kPairs = 6;
  Kernel k(make_zoned_platform(kZones, kPerZone));

  std::vector<MailboxId> boxes;
  for (int i = 0; i < kPairs; ++i)
    boxes.push_back(k.mailbox_by_name("x:" + std::to_string(i)));  // maestro-interned: home 0
  const MailboxId nobody = k.mailbox_by_name("nobody-sends-here");

  SweepResult res;
  std::vector<std::vector<std::string>> logs(2 * kPairs);

  for (int i = 0; i < kPairs; ++i) {
    const int tx_host = kPerZone + i % kPerZone;      // zone 1
    const int rx_host = 2 * kPerZone + i % kPerZone;  // zone 2
    auto& tx_log = logs[static_cast<size_t>(2 * i)];
    auto& rx_log = logs[static_cast<size_t>(2 * i + 1)];
    const MailboxId mb = boxes[static_cast<size_t>(i)];

    k.spawn("tx" + std::to_string(i), tx_host, [&k, &tx_log, mb, nobody, i] {
      for (int round = 0; round < 3; ++round) {
        if (i % 3 == 0) {
          k.send_detached(mb, reinterpret_cast<void*>(static_cast<std::intptr_t>(100 * i + round)),
                          2e4);
          k.execute(1e7);  // detached: keep the quantum honest before looping
        } else {
          CommPtr c = k.send_async(mb, reinterpret_cast<void*>(static_cast<std::intptr_t>(100 * i + round)),
                                   2e4);
          k.comm_wait(c);
        }
        tx_log.push_back(sg::xbt::format("%.9f tx%d sent round=%d", k.now(), i, round));
      }
      // A recv on a mailbox nobody sends to: the timeout must fire.
      try {
        k.recv(nobody, /*timeout=*/0.05);
        tx_log.push_back("unexpected recv success");
      } catch (const sg::xbt::TimeoutException&) {
        tx_log.push_back(sg::xbt::format("%.9f tx%d timed out as expected", k.now(), i));
      }
    });

    k.spawn("rx" + std::to_string(i), rx_host, [&k, &rx_log, &res, mb, i] {
      for (int round = 0; round < 3; ++round) {
        if (i % 2 == 0) {
          // Poll the (cross-shard) mailbox before committing to the recv.
          while (!k.comm_waiting(mb))
            k.sleep_for(0.001);
          rx_log.push_back(sg::xbt::format("%.9f rx%d saw a queued send", k.now(), i));
          const auto got = reinterpret_cast<std::intptr_t>(k.recv(mb));
          rx_log.push_back(sg::xbt::format("%.9f rx%d got %ld", k.now(), i, got));
        } else {
          CommPtr c = k.recv_async(mb);
          while (!k.comm_test(c))
            k.sleep_for(0.001);
          const auto got = reinterpret_cast<std::intptr_t>(k.comm_wait(c));
          rx_log.push_back(sg::xbt::format("%.9f rx%d polled %ld", k.now(), i, got));
        }
        ++res.completions;
      }
    });
  }

  res.end_clock = k.run();
  res.wakeups = k.stats().wakeups;
  res.switches = k.stats().context_switches;
  for (const auto& log : logs)
    res.log.insert(res.log.end(), log.begin(), log.end());
  return res;
}

TEST_F(ParallelActorsTest, AllCrossShardTrafficReplaysIdentically) {
  const SweepResult serial = run_all_cross_shard_stress(false, 1);
  EXPECT_EQ(serial.completions, 18);  // 6 pairs x 3 rounds, all delivered
  for (int lanes : {2, 4, 8}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    const SweepResult par = run_all_cross_shard_stress(true, lanes);
    EXPECT_EQ(serial.log, par.log);
    EXPECT_NEAR(serial.end_clock, par.end_clock, 1e-9);
    EXPECT_EQ(serial.completions, par.completions);
    EXPECT_EQ(serial.wakeups, par.wakeups);
    EXPECT_EQ(serial.switches, par.switches);
  }
}

#if defined(__SANITIZE_THREAD__)
#define SG_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SG_UNDER_TSAN 1
#endif
#endif

/// Both context backends must agree under parallel lanes too (thread-backend
/// bodies run on their own OS threads; the phase flag travels on the actor).
TEST_F(ParallelActorsTest, BackendsAgreeUnderParallelLanes) {
#ifdef SG_UNDER_TSAN
  GTEST_SKIP() << "fiber stack switches across worker lanes are invisible to TSan "
                  "(see the SIMGRID_TSAN option: pair TSan with SG_CONTEXTS=thread)";
#endif
  sg::xbt::Config::instance().set_string("contexts/backend", "fiber");
  const SweepResult fiber = run_flapping_master_worker(true, 4, 99u);
  sg::xbt::Config::instance().set_string("contexts/backend", "thread");
  const SweepResult thread = run_flapping_master_worker(true, 4, 99u);
  EXPECT_EQ(fiber.log, thread.log);
  EXPECT_NEAR(fiber.end_clock, thread.end_clock, 1e-9);
  EXPECT_EQ(fiber.wakeups, thread.wakeups);
  EXPECT_EQ(fiber.switches, thread.switches);
}

}  // namespace
