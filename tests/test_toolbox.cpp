/// Tests for the Grid Application Toolbox (monitoring + discovery on GRAS).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "platform/builders.hpp"
#include "toolbox/toolbox.hpp"
#include "trace/trace.hpp"
#include "xbt/config.hpp"

namespace {

using namespace sg::toolbox;

class ToolboxTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
  }
  void TearDown() override {
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }
};

TEST_F(ToolboxTest, CpuMonitorTracksAvailabilityTrace) {
  // Host availability follows a square wave; the sensor must see both levels.
  sg::platform::Platform p;
  sg::platform::HostSpec spec;
  spec.name = "h";
  spec.speed_flops = 1e9;
  spec.availability = sg::trace::square_wave("w", 1.0, 2.0, 0.25, 2.0);
  p.add_host(spec);
  sg::gras::SimWorld world(std::move(p));
  std::vector<Sample> samples;
  auto* kernel = &world.kernel();
  world.spawn("sensor", "h", [&] {
    cpu_monitor_body(0.5, 10, samples, [kernel] {
      return kernel->engine().host_available_speed_fraction(0);
    });
  });
  world.run();
  ASSERT_EQ(samples.size(), 10u);
  bool saw_hi = false, saw_lo = false;
  for (const auto& s : samples) {
    if (s.value > 0.9)
      saw_hi = true;
    if (s.value < 0.3)
      saw_lo = true;
  }
  EXPECT_TRUE(saw_hi);
  EXPECT_TRUE(saw_lo);
}

TEST_F(ToolboxTest, BandwidthProbeMeasuresLink) {
  // 1 MB/s link; the probe should land in the right decade.
  sg::platform::Platform p;
  auto a = p.add_host("pa", 1e9);
  auto b = p.add_host("pb", 1e9);
  p.add_route(a, b, {p.add_link("l", 1e6, 1e-4)});
  sg::gras::SimWorld world(std::move(p));
  double measured = -1;
  world.spawn("echo", "pb", [] { bandwidth_echo_body(70, 1); });
  world.spawn("probe", "pa", [&] {
    sg::gras::os_sleep(0.1);
    measured = bandwidth_probe("pb", 70, 1e6);
  });
  world.run();
  EXPECT_GT(measured, 0.5e6);
  EXPECT_LT(measured, 1.2e6);
}

TEST_F(ToolboxTest, TopologyDiscoveryAssemblesEdges) {
  sg::platform::ClusterSpec spec;
  spec.count = 4;
  sg::gras::SimWorld world(sg::platform::make_cluster(spec));
  DiscoveredTopology topo;
  world.spawn("collector", "node0", [&] { topo = topology_collect_body(80, 3); });
  // Nodes 1..3 report a ring-ish neighbour view.
  const std::vector<std::vector<std::string>> nbrs = {
      {}, {"node0", "node2"}, {"node1", "node3"}, {"node2", "node0"}};
  for (int i = 1; i <= 3; ++i) {
    world.spawn("reporter" + std::to_string(i), "node" + std::to_string(i), [&, i] {
      sg::gras::os_sleep(0.05 * i);
      topology_report_body("node" + std::to_string(i), nbrs[static_cast<size_t>(i)], "node0", 80);
    });
  }
  world.run();
  EXPECT_EQ(topo.neighbours.size(), 3u);
  const auto edges = topo.edges();
  // Unique undirected edges: 0-1, 1-2, 2-3, 0-3.
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_NE(std::find(edges.begin(), edges.end(), std::make_pair(std::string("node0"), std::string("node1"))),
            edges.end());
}

TEST_F(ToolboxTest, BandwidthProbeRealWorldMode) {
  // The same probe code over real sockets: sanity (positive, finite).
  sg::gras::RealWorld world;
  double measured = -1;
  world.spawn("echo", "he", [] { bandwidth_echo_body(71, 1); });
  world.spawn("probe", "hp", [&] { measured = bandwidth_probe("he", 71, 1e5); });
  world.join_all();
  EXPECT_GT(measured, 0.0);
}

}  // namespace
