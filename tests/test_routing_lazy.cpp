/// Property tests for lazy on-demand routing: lazily resolved routes must be
/// identical (same links, same latency) to the old eager all-pairs
/// computation, resolved route contents must stay stable while other pairs
/// resolve (segment interning), and the SSSP-tree LRU must never change
/// results.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "platform/platform.hpp"
#include "topo/brite.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"

namespace {

using namespace sg::platform;

/// Reference implementation: the eager all-pairs computation the platform
/// used to run in seal() — one Dijkstra per source host over the edge list,
/// same metric (latency + 1e-9 per hop so zero-latency LANs prefer fewer
/// hops, ties favour first-declared edges).
struct EagerRoutes {
  struct FlatRoute {
    std::vector<LinkId> links;
    double latency = 0;
  };
  std::vector<std::optional<FlatRoute>> routes;  // src * n_hosts + dst
  size_t n_hosts;

  explicit EagerRoutes(const Platform& p) : n_hosts(p.host_count()) {
    const size_t n_nodes = p.node_count();
    std::vector<std::vector<std::pair<NodeId, LinkId>>> adj(n_nodes);
    for (const Platform::Edge& e : p.edges()) {
      adj[static_cast<size_t>(e.a)].push_back({e.b, e.link});
      adj[static_cast<size_t>(e.b)].push_back({e.a, e.link});
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    routes.resize(n_hosts * n_hosts);
    for (size_t s = 0; s < n_hosts; ++s) {
      const NodeId src = p.host_node(static_cast<int>(s));
      std::vector<double> dist(n_nodes, kInf);
      std::vector<NodeId> prev_node(n_nodes, -1);
      std::vector<LinkId> prev_link(n_nodes, -1);
      using QE = std::pair<double, NodeId>;
      std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
      dist[static_cast<size_t>(src)] = 0.0;
      queue.push({0.0, src});
      while (!queue.empty()) {
        auto [d, u] = queue.top();
        queue.pop();
        if (d > dist[static_cast<size_t>(u)])
          continue;
        for (auto [v, l] : adj[static_cast<size_t>(u)]) {
          const double w = p.link(l).latency_s + 1e-9;
          if (dist[static_cast<size_t>(u)] + w < dist[static_cast<size_t>(v)]) {
            dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + w;
            prev_node[static_cast<size_t>(v)] = u;
            prev_link[static_cast<size_t>(v)] = l;
            queue.push({dist[static_cast<size_t>(v)], v});
          }
        }
      }
      for (size_t d = 0; d < n_hosts; ++d) {
        if (d == s)
          continue;
        const NodeId dst = p.host_node(static_cast<int>(d));
        if (dist[static_cast<size_t>(dst)] == kInf)
          continue;
        std::vector<LinkId> path;
        double lat = 0;
        for (NodeId v = dst; v != src; v = prev_node[static_cast<size_t>(v)]) {
          path.push_back(prev_link[static_cast<size_t>(v)]);
          lat += p.link(prev_link[static_cast<size_t>(v)]).latency_s;
        }
        std::reverse(path.begin(), path.end());
        routes[s * n_hosts + d] = FlatRoute{std::move(path), lat};
      }
    }
  }
};

void expect_all_pairs_match(const Platform& p) {
  const EagerRoutes ref(p);
  const int n = static_cast<int>(p.host_count());
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d)
        continue;
      const auto& expected = ref.routes[static_cast<size_t>(s) * p.host_count() + static_cast<size_t>(d)];
      ASSERT_EQ(p.reachable(s, d), expected.has_value()) << "pair " << s << " -> " << d;
      if (!expected)
        continue;
      const RouteView got = p.route(s, d);
      EXPECT_EQ(got.links(), expected->links) << "pair " << s << " -> " << d;
      EXPECT_DOUBLE_EQ(got.latency(), expected->latency) << "pair " << s << " -> " << d;
    }
}

TEST(LazyRouting, MatchesEagerOnBriteTopologies) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    sg::topo::WaxmanSpec spec;
    spec.n_nodes = 40;
    spec.m_edges_per_node = 2;
    spec.seed = seed;
    const auto topo = sg::topo::generate_waxman(spec);
    Platform p = sg::topo::to_platform(topo);
    expect_all_pairs_match(p);
  }
}

TEST(LazyRouting, MatchesEagerOnRandomBuilderGraphs) {
  for (std::uint64_t seed : {3u, 11u, 99u}) {
    sg::xbt::Rng rng(seed);
    Platform p;
    const int n_hosts = 25;
    const int n_routers = 8;
    std::vector<NodeId> nodes;
    for (int i = 0; i < n_hosts; ++i)
      nodes.push_back(p.add_host("h" + std::to_string(i), 1e9));
    for (int i = 0; i < n_routers; ++i)
      nodes.push_back(p.add_router("r" + std::to_string(i)));
    // Random sparse graph; zero-latency links included to exercise the
    // per-hop epsilon tie-break. Possibly disconnected — unreachable pairs
    // must match the reference too.
    const int n_edges = 50;
    for (int i = 0; i < n_edges; ++i) {
      const auto a = nodes[rng.uniform_int(0, nodes.size() - 1)];
      const auto b = nodes[rng.uniform_int(0, nodes.size() - 1)];
      if (a == b)
        continue;
      const double lat = rng.uniform01() < 0.3 ? 0.0 : rng.uniform(1e-5, 1e-2);
      const LinkId l = p.add_link("l" + std::to_string(i), rng.uniform(1e7, 1e9), lat);
      p.add_edge(a, b, l);
    }
    p.seal();
    expect_all_pairs_match(p);
  }
}

TEST(LazyRouting, ExplicitRoutesWinOverLazyResolution) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto c = p.add_host("c", 1e9);
  auto fast = p.add_link("fast", 1e9, 1e-5);
  auto slow = p.add_link("slow", 1e8, 5e-2);
  p.add_edge(a, b, fast);
  p.add_edge(b, c, fast);
  p.add_route(a, c, {slow});
  p.seal();
  // Explicit (a, c) wins even though the graph offers a lower-latency path.
  EXPECT_EQ(p.route(0, 2).links(), std::vector<LinkId>{slow});
  // The graph still serves the other pairs.
  EXPECT_EQ(p.route(0, 1).links(), std::vector<LinkId>{fast});
}

TEST(LazyRouting, RouteContentsStayStableAsMorePairsResolve) {
  // A star big enough that resolving all pairs rehashes the route cache,
  // grows the segment arena many times over, and cycles the SSSP-tree LRU.
  // Routes materialized early must read back identical afterwards: segment
  // interning may move storage, never contents.
  Platform p;
  const int n = 80;  // > SSSP cache capacity
  const NodeId sw = p.add_router("sw");
  std::vector<NodeId> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(p.add_host("h" + std::to_string(i), 1e9));
    const LinkId l = p.add_link("l" + std::to_string(i), 1e8, 1e-4);
    p.add_edge(hosts.back(), sw, l);
  }
  p.seal();

  const std::vector<LinkId> pinned_links = p.route(0, 1).links();
  const double pinned_latency = p.route(0, 1).latency();

  // Resolve well over 1000 further pairs.
  int resolved = 0;
  for (int s = 0; s < n && resolved < 1500; ++s)
    for (int d = 0; d < n && resolved < 1500; ++d)
      if (s != d) {
        (void)p.route(s, d);
        ++resolved;
      }
  ASSERT_GE(resolved, 1500);

  // Same contents on a fresh query: segment storage may move, contents may
  // not. (Graph paths here are distinct [up_s, up_d] sequences per pair, so
  // interning cannot merge them — deduplication across identical sequences
  // is pinned by SegmentInterningDeduplicatesIdenticalPaths below.)
  EXPECT_EQ(p.route(0, 1).links(), pinned_links);
  EXPECT_DOUBLE_EQ(p.route(0, 1).latency(), pinned_latency);
  EXPECT_GE(p.resolved_route_count(), 1500u);
}

TEST(LazyRouting, SegmentInterningDeduplicatesIdenticalPaths) {
  // Four explicit routes (two pairs, both directions) all traverse the same
  // single-link sequence: the arena must hold exactly one segment, shared by
  // all four cached RouteRefs.
  Platform p;
  const NodeId a = p.add_host("a", 1e9);
  const NodeId b = p.add_host("b", 1e9);
  const NodeId c = p.add_host("c", 1e9);
  const NodeId d = p.add_host("d", 1e9);
  const LinkId l = p.add_link("shared", 1e8, 1e-3);
  p.add_route(a, b, {l});
  p.add_route(c, d, {l});
  p.seal();
  EXPECT_EQ(p.resolved_route_count(), 4u);
  EXPECT_EQ(p.interned_segment_count(), 1u);
  EXPECT_EQ(p.route(0, 1).links(), p.route(3, 2).links());
}

TEST(LazyRouting, SsspCacheEvictionDoesNotChangeResults) {
  // Chain topology: route(i, j) has |i - j| links. Query from more sources
  // than the tree cache holds, then re-query the first ones (their trees were
  // evicted and must be recomputed identically).
  Platform p;
  const int n = 100;
  std::vector<NodeId> hosts;
  for (int i = 0; i < n; ++i)
    hosts.push_back(p.add_host("h" + std::to_string(i), 1e9));
  for (int i = 0; i + 1 < n; ++i) {
    const LinkId l = p.add_link("l" + std::to_string(i), 1e8, 1e-3);
    p.add_edge(hosts[static_cast<size_t>(i)], hosts[static_cast<size_t>(i + 1)], l);
  }
  p.seal();

  for (int s = 0; s + 1 < n; ++s)
    EXPECT_EQ(p.route(s, s + 1).size(), 1u);
  EXPECT_LE(p.cached_sssp_tree_count(), 64u);
  // First sources were evicted; fresh queries must agree with the chain.
  for (int s = 0; s < 10; ++s)
    EXPECT_EQ(p.route(s, n - 1).size(), static_cast<size_t>(n - 1 - s));
}

TEST(LazyRouting, UnsealedRouteNamesBothHosts) {
  Platform p;
  p.add_host("alpha", 1e9);
  p.add_host("beta", 1e9);
  try {
    (void)p.route(0, 1);
    FAIL() << "expected xbt::InvalidArgument";
  } catch (const sg::xbt::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sealed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("alpha"), std::string::npos) << msg;
    EXPECT_NE(msg.find("beta"), std::string::npos) << msg;
  }
}

TEST(LazyRouting, UnreachablePairNamesBothHosts) {
  Platform p;
  p.add_host("island-a", 1e9);
  p.add_host("island-b", 1e9);
  p.seal();
  try {
    (void)p.route(0, 1);
    FAIL() << "expected xbt::InvalidArgument";
  } catch (const sg::xbt::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("island-a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("island-b"), std::string::npos) << msg;
  }
}

TEST(LazyRouting, OutOfRangeHostIndexIsDiagnosed) {
  Platform p;
  p.add_host("only", 1e9);
  p.seal();
  try {
    (void)p.route(0, 5);
    FAIL() << "expected xbt::InvalidArgument";
  } catch (const sg::xbt::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// SSSP-tree cache sizing: `routing/sssp-cache` config floor, raised to
// hosts/16 at seal time.
// ---------------------------------------------------------------------------

namespace {
Platform star_platform(int n_hosts) {
  Platform p;
  const NodeId sw = p.add_router("sw");
  for (int i = 0; i < n_hosts; ++i) {
    const NodeId h = p.add_host("h" + std::to_string(i), 1e9);
    const LinkId l = p.add_link("l" + std::to_string(i), 1e8, 1e-4);
    p.add_edge(h, sw, l);
  }
  return p;
}
}  // namespace

TEST(LazyRouting, SsspCacheCapacityIsConfigurable) {
  auto& cfg = sg::xbt::Config::instance();
  cfg.declare("routing/sssp-cache", 64.0);
  cfg.set("routing/sssp-cache", 4.0);
  Platform p = star_platform(32);  // hosts/16 = 2 < configured 4
  p.seal();
  cfg.set("routing/sssp-cache", 64.0);  // restore the global default
  EXPECT_EQ(p.sssp_cache_capacity(), 4u);
  for (int s = 0; s < 12; ++s)
    (void)p.route(s, (s + 1) % 32);
  EXPECT_LE(p.cached_sssp_tree_count(), 4u);
  // Results stay correct under the tiny cache.
  for (int s = 0; s < 12; ++s)
    EXPECT_EQ(p.route(s, (s + 1) % 32).size(), 2u);
}

TEST(LazyRouting, SsspCacheGrowsWithPlatformSize) {
  Platform p = star_platform(2048);  // hosts/16 = 128 > default 64
  p.seal();
  EXPECT_EQ(p.sssp_cache_capacity(), 128u);
  // 100 distinct sources now fit without thrashing (the old fixed 64 cap
  // would have evicted 36 of them).
  for (int s = 0; s < 100; ++s)
    (void)p.route(s, s + 1000);
  EXPECT_EQ(p.cached_sssp_tree_count(), 100u);
}

}  // namespace
