/// Fault-injection property sweep: random host/link flaps under a running
/// mix of execs, comms, sleeps, and ptasks. The engine finds failure victims
/// through the solver's element arena and the per-host sleep index
/// (O(affected)); the reference here is the brute-force definition — scan
/// every tracked running action and ask whether it uses the dead resource.
/// Event sets, delivery counts, and failure clocks must match exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/engine.hpp"
#include "platform/builders.hpp"
#include "trace/trace.hpp"
#include "xbt/config.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"

namespace {

using namespace sg::core;
using sg::platform::LinkId;
using sg::platform::Platform;

class FaultInjectionTest : public ::testing::Test {
protected:
  void SetUp() override {
    declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
  }
  void TearDown() override {
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }
};

/// What the brute-force reference knows about one running action.
struct TrackedAction {
  ActionPtr action;
  std::set<int> hosts;      ///< hosts whose death must fail it
  std::set<LinkId> links;   ///< links whose death must fail it
};

/// The brute-force victim set for a resource death.
std::set<const Action*> expected_victims(const std::vector<TrackedAction>& tracked, bool is_host,
                                         int index) {
  std::set<const Action*> out;
  for (const TrackedAction& t : tracked) {
    const bool hit = is_host ? t.hosts.count(index) > 0 : t.links.count(index) > 0;
    if (hit)
      out.insert(t.action.get());
  }
  return out;
}

TEST_F(FaultInjectionTest, RandomFlapsMatchBruteForceReference) {
  for (std::uint64_t seed : {11u, 23u, 37u}) {
    sg::xbt::Rng rng(seed);
    sg::platform::ClusterSpec spec;
    spec.count = 24;
    spec.backbone_fatpipe = true;
    Engine e(sg::platform::make_cluster(spec));
    const auto& platform = e.platform();
    const int n_hosts = static_cast<int>(platform.host_count());
    const int n_links = static_cast<int>(platform.link_count());

    std::vector<TrackedAction> tracked;
    // Keyed by ActionPtr, not raw pointer: holding the reference keeps the
    // engine's action block pool from recycling the address, which would
    // conflate two different actions' delivery counts.
    std::map<ActionPtr, int> failure_deliveries;

    auto track_comm = [&](int src, int dst, const ActionPtr& a) {
      TrackedAction t;
      t.action = a;
      if (src == dst) {
        t.hosts.insert(src);  // loopback dies with its host
      } else {
        for (LinkId l : platform.route(src, dst))
          t.links.insert(l);
      }
      tracked.push_back(std::move(t));
    };

    auto start_random_action = [&] {
      const double pick = rng.uniform01();
      const int h = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n_hosts - 1)));
      if (!e.host_is_on(h))
        return;
      if (pick < 0.35) {
        TrackedAction t;
        t.action = e.exec_start(h, rng.uniform(1e8, 1e11));
        t.hosts.insert(h);
        tracked.push_back(std::move(t));
      } else if (pick < 0.7) {
        const int d = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n_hosts - 1)));
        auto a = e.comm_start(h, d, rng.uniform(1e6, 1e9));
        if (a->state() == ActionState::kFailed)
          return;  // started over a currently-dead route: not running
        track_comm(h, d, a);
      } else if (pick < 0.9) {
        TrackedAction t;
        t.action = e.sleep_start(h, rng.uniform(0.5, 50.0));
        t.hosts.insert(h);
        tracked.push_back(std::move(t));
      } else {
        const int h2 = (h + 1 + static_cast<int>(rng.uniform_int(0, 5))) % n_hosts;
        if (!e.host_is_on(h2) || h2 == h)
          return;
        TrackedAction t;
        t.action = e.ptask_start({h, h2}, {rng.uniform(1e8, 1e10), rng.uniform(1e8, 1e10)},
                                 {{0.0, 1e7}, {0.0, 0.0}});
        t.hosts.insert(h);
        t.hosts.insert(h2);
        for (LinkId l : platform.route(h, h2))
          t.links.insert(l);
        tracked.push_back(std::move(t));
      }
    };

    auto drop_finished = [&](const Action* a) {
      tracked.erase(std::remove_if(tracked.begin(), tracked.end(),
                                   [a](const TrackedAction& t) { return t.action.get() == a; }),
                    tracked.end());
    };

    auto drain = [&](const std::vector<ActionEvent>& events) {
      for (const auto& ev : events) {
        if (ev.failed)
          ++failure_deliveries[ev.action];
        drop_finished(ev.action.get());
      }
    };

    for (int i = 0; i < 40; ++i)
      start_random_action();

    for (int round = 0; round < 120; ++round) {
      // Advance a little, letting completions interleave with failures.
      const double until = e.now() + rng.uniform(0.01, 0.3);
      while (e.next_event_time() < until)
        drain(e.step(until));
      drain(e.step(until));

      const double op = rng.uniform01();
      if (op < 0.4) {
        start_random_action();
        continue;
      }

      const bool is_host = rng.uniform01() < 0.5;
      const int index = is_host
                            ? static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n_hosts - 1)))
                            : static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n_links - 1)));
      const bool currently_on = is_host ? e.host_is_on(index) : e.link_is_on(index);
      if (!currently_on) {
        // Heal it; nothing may fail because of a recovery. step(now) cannot
        // advance time, so only pending events (and completions due exactly
        // now) surface here.
        if (is_host)
          e.set_host_state(index, true);
        else
          e.set_link_state(index, true);
        for (const auto& ev : e.step(e.now())) {
          EXPECT_FALSE(ev.failed) << "recovery produced a failure event";
          drop_finished(ev.action.get());
        }
        continue;
      }

      const auto expected = expected_victims(tracked, is_host, index);
      const double flap_time = e.now();
      if (is_host)
        e.set_host_state(index, false);
      else
        e.set_link_state(index, false);

      // step(now) delivers the pending failures without advancing the clock;
      // completions that happen to be due exactly now are drained normally.
      std::set<const Action*> actual;
      for (const auto& ev : e.step(flap_time)) {
        if (!ev.failed) {
          drop_finished(ev.action.get());
          continue;
        }
        EXPECT_NEAR(ev.action->finish_time(), flap_time, 1e-9 * std::max(1.0, flap_time))
            << "failure clock diverged from the flap date";
        EXPECT_EQ(ev.action->state(), ActionState::kFailed);
        EXPECT_TRUE(actual.insert(ev.action.get()).second)
            << "the same action was delivered twice in one flap";
        ++failure_deliveries[ev.action];
        drop_finished(ev.action.get());
      }
      EXPECT_EQ(actual, expected)
          << "index-based victim set diverged from the brute-force reference (seed " << seed
          << ", round " << round << ", " << (is_host ? "host " : "link ") << index << ")";

      // The running count must now match the reference's books exactly.
      EXPECT_EQ(e.running_action_count(), tracked.size());
    }

    // Every failure was delivered exactly once over the whole run.
    for (const auto& [action, count] : failure_deliveries)
      EXPECT_EQ(count, 1) << "an action emitted " << count << " failure events";
  }
}

// ---------------------------------------------------------------------------
// Trace-driven ≡ direct-injection equivalence: the same failure schedule
// applied through state traces and through set_*_state must produce the same
// event sequence at the same clocks (1e-9).
// ---------------------------------------------------------------------------

struct LoggedEvent {
  double time;
  bool failed;
  ActionKind kind;
  int host;
};

/// Deterministic workload driver shared by both runs: every completed or
/// failed activity is restarted (execs/sleeps when the host is up, comms
/// when the route is up), so the two runs stay in lockstep.
std::vector<LoggedEvent> run_workload(Engine& e, double horizon,
                                      const std::vector<std::pair<double, bool>>& manual_flaps,
                                      int flapping_host) {
  std::vector<LoggedEvent> log;
  auto submit_exec = [&](int host) {
    if (e.host_is_on(host))
      e.exec_start(host, 3e8);
  };
  auto submit_comm = [&](int src, int dst) {
    if (e.host_is_on(src))  // keep both runs deterministic
      e.comm_start(src, dst, 1e7);
  };
  const int n = static_cast<int>(e.platform().host_count());
  for (int h = 0; h < n; ++h) {
    submit_exec(h);
    submit_comm(h, (h + 1) % n);
  }
  size_t next_flap = 0;
  while (true) {
    double bound = horizon;
    if (next_flap < manual_flaps.size())
      bound = std::min(bound, manual_flaps[next_flap].first);
    const double t = e.next_event_time();
    if (t > bound && next_flap >= manual_flaps.size() && bound == horizon)
      break;
    auto events = e.step(bound);
    for (const auto& ev : events) {
      log.push_back({e.now(), ev.failed, ev.action->kind(), ev.action->host()});
      if (ev.action->kind() == ActionKind::kExec)
        submit_exec(ev.action->host());
      else if (ev.action->kind() == ActionKind::kComm)
        submit_comm(ev.action->host(), ev.action->peer_host());
    }
    if (next_flap < manual_flaps.size() && e.now() >= manual_flaps[next_flap].first - 1e-12) {
      e.set_host_state(flapping_host, manual_flaps[next_flap].second);
      for (const auto& ev : e.step()) {  // deliver the injected failures
        log.push_back({e.now(), ev.failed, ev.action->kind(), ev.action->host()});
        if (ev.action->kind() == ActionKind::kExec)
          submit_exec(ev.action->host());
        else if (ev.action->kind() == ActionKind::kComm)
          submit_comm(ev.action->host(), ev.action->peer_host());
      }
      ++next_flap;
    }
    if (e.now() >= horizon)
      break;
  }
  return log;
}

TEST_F(FaultInjectionTest, TraceDrivenEqualsDirectInjection) {
  constexpr int kFlappingHost = 2;
  constexpr double kHorizon = 7.9;  // strictly between flap dates

  // Run A: host 2 flaps via a state trace (down at 2.0, up at 2.5, period 3).
  sg::platform::ClusterSpec spec;
  spec.count = 6;
  auto platform_a = sg::platform::make_cluster(spec);
  platform_a.host_mutable(kFlappingHost).state =
      sg::trace::Trace("flap", {{0.0, 1.0}, {2.0, 0.0}, {2.5, 1.0}}, 3.0);
  Engine ea(std::move(platform_a));
  auto log_a = run_workload(ea, kHorizon, {}, kFlappingHost);

  // Run B: the same schedule injected with set_host_state at the same dates.
  Engine eb(sg::platform::make_cluster(spec));
  const std::vector<std::pair<double, bool>> flaps = {
      {2.0, false}, {2.5, true}, {5.0, false}, {5.5, true}};
  auto log_b = run_workload(eb, kHorizon, flaps, kFlappingHost);

  // Events at one instant may be delivered in either order by the two
  // mechanisms (trace events fire inside the step; direct injection queues
  // pending events); normalize before comparing.
  auto normalize = [](std::vector<LoggedEvent>& log) {
    std::stable_sort(log.begin(), log.end(), [](const LoggedEvent& x, const LoggedEvent& y) {
      if (x.time != y.time)
        return x.time < y.time;
      if (x.failed != y.failed)
        return x.failed < y.failed;
      if (x.kind != y.kind)
        return x.kind < y.kind;
      return x.host < y.host;
    });
  };
  normalize(log_a);
  normalize(log_b);

  size_t failures = 0;
  ASSERT_EQ(log_a.size(), log_b.size());
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_NEAR(log_a[i].time, log_b[i].time, 1e-9 * std::max(1.0, log_b[i].time)) << "event " << i;
    EXPECT_EQ(log_a[i].failed, log_b[i].failed) << "event " << i;
    EXPECT_EQ(log_a[i].kind, log_b[i].kind) << "event " << i;
    EXPECT_EQ(log_a[i].host, log_b[i].host) << "event " << i;
    failures += log_a[i].failed;
  }
  EXPECT_GT(failures, 0u) << "the scenario never exercised a failure";
}

}  // namespace
