/// Tests for the SURF engine: action timing, resource sharing, latency
/// phases, TCP window bound, traces, failures, parallel tasks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "platform/builders.hpp"
#include "trace/trace.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"

namespace {

using namespace sg::core;
using sg::platform::Platform;

/// Pin the model parameters to clean values and restore defaults afterwards.
class EngineTest : public ::testing::Test {
protected:
  void SetUp() override {
    declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);  // effectively no window cap
  }
  void TearDown() override {
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }

  /// Run the engine until the given action completes; returns finish time.
  static double run_until_done(Engine& e, const ActionPtr& a) {
    for (int guard = 0; guard < 100000; ++guard) {
      if (a->state() != ActionState::kRunning && a->state() != ActionState::kSuspended)
        return a->finish_time();
      e.step();
    }
    ADD_FAILURE() << "action never completed";
    return -1;
  }
};

TEST_F(EngineTest, ExecTiming) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 2e9);
  EXPECT_DOUBLE_EQ(run_until_done(e, a), 2.0);
  EXPECT_EQ(a->state(), ActionState::kDone);
}

TEST_F(EngineTest, TwoExecsShareCpu) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 1e9);
  auto b = e.exec_start(0, 1e9);
  run_until_done(e, a);
  // Each ran at 5e8 flop/s -> both end at t=2.
  EXPECT_DOUBLE_EQ(a->finish_time(), 2.0);
  EXPECT_DOUBLE_EQ(run_until_done(e, b), 2.0);
}

TEST_F(EngineTest, ExecPriorityShares) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto hi = e.exec_start(0, 1e9, 3.0);
  auto lo = e.exec_start(0, 1e9, 1.0);
  run_until_done(e, hi);
  // hi gets 7.5e8, lo 2.5e8 until hi ends at 4/3.
  EXPECT_NEAR(hi->finish_time(), 4.0 / 3.0, 1e-9);
  run_until_done(e, lo);
  // lo: did 1/3e9 flops by t=4/3, then full speed: 4/3 + 2/3 = 2.
  EXPECT_NEAR(lo->finish_time(), 2.0, 1e-9);
}

TEST_F(EngineTest, ExecStaggeredStarts) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 2e9);
  // Advance time to 1.0, then start a competitor.
  e.step(1.0);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
  auto b = e.exec_start(0, 1e9);
  run_until_done(e, a);
  // a has 1e9 left at t=1, shares at 5e8 -> needs 2s more.
  EXPECT_DOUBLE_EQ(a->finish_time(), 3.0);
  // b: 5e8 for 2s = 1e9 done exactly when a ends.
  EXPECT_DOUBLE_EQ(run_until_done(e, b), 3.0);
}

TEST_F(EngineTest, CommLatencyPlusBandwidth) {
  Engine e(sg::platform::make_dumbbell(1e9, 1e8, 1e-3));
  auto c = e.comm_start(0, 1, 1e8);
  const double t = run_until_done(e, c);
  EXPECT_NEAR(t, 1e-3 + 1.0, 1e-9);
}

TEST_F(EngineTest, ZeroByteCommTakesLatencyOnly) {
  Engine e(sg::platform::make_dumbbell(1e9, 1e8, 5e-3));
  auto c = e.comm_start(0, 1, 0.0);
  EXPECT_NEAR(run_until_done(e, c), 5e-3, 1e-12);
}

TEST_F(EngineTest, TwoFlowsShareLink) {
  Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  auto c1 = e.comm_start(0, 1, 1e8);
  auto c2 = e.comm_start(0, 1, 1e8);
  run_until_done(e, c1);
  EXPECT_NEAR(c1->finish_time(), 2.0, 1e-9);
  EXPECT_NEAR(run_until_done(e, c2), 2.0, 1e-9);
}

TEST_F(EngineTest, OppositeFlowsAlsoShare) {
  // Links are full-duplex-agnostic single resources here (CM02 behaviour):
  // both directions contend.
  Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  auto c1 = e.comm_start(0, 1, 5e7);
  auto c2 = e.comm_start(1, 0, 5e7);
  run_until_done(e, c1);
  EXPECT_NEAR(c1->finish_time(), 1.0, 1e-9);
  EXPECT_NEAR(run_until_done(e, c2), 1.0, 1e-9);
}

TEST_F(EngineTest, FatpipeDoesNotDivide) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l = p.add_link("bb", 1e8, 0.0, sg::platform::SharingPolicy::kFatpipe);
  p.add_route(a, b, {l});
  Engine e(std::move(p));
  auto c1 = e.comm_start(0, 1, 1e8);
  auto c2 = e.comm_start(0, 1, 1e8);
  run_until_done(e, c1);
  EXPECT_NEAR(c1->finish_time(), 1.0, 1e-9);
  EXPECT_NEAR(run_until_done(e, c2), 1.0, 1e-9);
}

TEST_F(EngineTest, TcpWindowBoundsLongFatLinks) {
  auto& cfg = sg::xbt::Config::instance();
  cfg.set("network/tcp-gamma", 65536.0);
  // WAN link: 50ms one-way latency -> cap = 65536 / 0.1 = 655360 B/s.
  Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.05));
  auto c = e.comm_start(0, 1, 655360.0);
  const double t = run_until_done(e, c);
  EXPECT_NEAR(t, 0.05 + 1.0, 1e-6);
}

TEST_F(EngineTest, RateLimitedComm) {
  Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  auto c = e.comm_start(0, 1, 1e7, /*rate_limit=*/1e6);
  EXPECT_NEAR(run_until_done(e, c), 10.0, 1e-9);
}

TEST_F(EngineTest, LoopbackComm) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto c = e.comm_start(0, 0, 1e9);
  const double t = run_until_done(e, c);
  // loopback defaults: 1e10 B/s, 1e-7 s latency
  EXPECT_NEAR(t, 1e-7 + 0.1, 1e-9);
}

TEST_F(EngineTest, MultiHopRouteSharesEveryLink) {
  // chain a - m - b; flow a->b and flow a->m compete on the first link.
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto m = p.add_host("m", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l1 = p.add_link("l1", 1e8, 0.0);
  auto l2 = p.add_link("l2", 1e8, 0.0);
  p.add_edge(a, m, l1);
  p.add_edge(m, b, l2);
  Engine e(std::move(p));
  auto long_flow = e.comm_start(0, 2, 1e8);
  auto short_flow = e.comm_start(0, 1, 5e7);
  run_until_done(e, short_flow);
  EXPECT_NEAR(short_flow->finish_time(), 1.0, 1e-9);  // 5e7 at 5e7/s
  run_until_done(e, long_flow);
  // long flow: 5e7 B by t=1 (rate 5e7), then full 1e8 -> 0.5s more.
  EXPECT_NEAR(long_flow->finish_time(), 1.5, 1e-9);
}

TEST_F(EngineTest, BandwidthFactorApplied) {
  auto& cfg = sg::xbt::Config::instance();
  cfg.set("network/bandwidth-factor", 0.5);
  Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  auto c = e.comm_start(0, 1, 1e8);
  EXPECT_NEAR(run_until_done(e, c), 2.0, 1e-9);
}

TEST_F(EngineTest, SuspendResumeFreezesProgress) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 2e9);
  e.step(1.0);
  a->suspend();
  EXPECT_EQ(a->state(), ActionState::kSuspended);
  e.step(5.0);  // nothing progresses
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_NEAR(a->remaining(), 1e9, 1.0);
  a->resume();
  EXPECT_DOUBLE_EQ(run_until_done(e, a), 6.0);
}

TEST_F(EngineTest, CancelAction) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 2e9);
  e.step(0.5);
  a->cancel();
  EXPECT_EQ(a->state(), ActionState::kCanceled);
  auto events = e.step();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].action.get(), a.get());
}

TEST_F(EngineTest, AvailabilityTraceSlowsExec) {
  Platform p;
  sg::platform::HostSpec spec;
  spec.name = "h";
  spec.speed_flops = 1e9;
  // 100% for 1s, then 50% for 1s, repeating.
  spec.availability = sg::trace::square_wave("avail", 1.0, 1.0, 0.5, 1.0);
  p.add_host(spec);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 2e9);
  // 1e9 flops in [0,1) at full speed; 5e8 in [1,2); rest 5e8 in [2, 2.5).
  EXPECT_NEAR(run_until_done(e, a), 2.5, 1e-9);
}

TEST_F(EngineTest, StateTraceFailsRunningExec) {
  Platform p;
  sg::platform::HostSpec spec;
  spec.name = "h";
  spec.speed_flops = 1e9;
  spec.state = sg::trace::Trace("state", {{0.0, 1.0}, {1.5, 0.0}}, -1.0);
  p.add_host(spec);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 1e12);
  bool failed = false;
  for (int i = 0; i < 1000 && !failed; ++i) {
    for (const auto& ev : e.step())
      if (ev.action.get() == a.get() && ev.failed)
        failed = true;
  }
  EXPECT_TRUE(failed);
  EXPECT_EQ(a->state(), ActionState::kFailed);
  EXPECT_DOUBLE_EQ(a->finish_time(), 1.5);
  EXPECT_FALSE(e.host_is_on(0));
  EXPECT_THROW(e.exec_start(0, 1.0), sg::xbt::HostFailureException);
}

TEST_F(EngineTest, LinkFailureKillsComm) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  sg::platform::LinkSpec lspec;
  lspec.name = "l";
  lspec.bandwidth_Bps = 1e6;
  lspec.latency_s = 0.0;
  lspec.state = sg::trace::Trace("ls", {{0.0, 1.0}, {2.0, 0.0}}, -1.0);
  auto l = p.add_link(lspec);
  p.add_route(a, b, {l});
  Engine e(std::move(p));
  auto c = e.comm_start(0, 1, 1e9);
  bool failed = false;
  for (int i = 0; i < 1000 && !failed; ++i)
    for (const auto& ev : e.step())
      if (ev.action.get() == c.get() && ev.failed)
        failed = true;
  EXPECT_TRUE(failed);
  EXPECT_DOUBLE_EQ(c->finish_time(), 2.0);
}

TEST_F(EngineTest, CommOnDeadRouteFailsImmediately) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l = p.add_link("l", 1e8, 0.0);
  p.add_route(a, b, {l});
  Engine e(std::move(p));
  e.set_link_state(0, false);
  auto c = e.comm_start(0, 1, 100.0);
  EXPECT_EQ(c->state(), ActionState::kFailed);
  auto events = e.step();
  bool found = false;
  for (const auto& ev : events)
    if (ev.action.get() == c.get() && ev.failed)
      found = true;
  EXPECT_TRUE(found);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);  // no time elapsed
}

TEST_F(EngineTest, HostRecoversAfterFailure) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  e.set_host_state(0, false);
  e.step();  // drain events
  EXPECT_FALSE(e.host_is_on(0));
  e.set_host_state(0, true);
  EXPECT_TRUE(e.host_is_on(0));
  auto a = e.exec_start(0, 1e9);
  const double finish = run_until_done(e, a);
  EXPECT_DOUBLE_EQ(finish, e.now());
  EXPECT_EQ(a->state(), ActionState::kDone);
}

TEST_F(EngineTest, ParallelTaskCoupledRates) {
  // Two hosts compute 1e9 flops each while exchanging 1e8 bytes over a 1e8 B/s
  // link: the communication is the bottleneck (1s); computation would take 1s
  // alone as well -> both saturate, total 2s (cpu gets 1e9/2s = rate .5e9
  // since progress is limited by min ratio).
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l = p.add_link("l", 1e8, 0.0);
  p.add_route(a, b, {l});
  Engine e(std::move(p));
  // progress rate limited by: cpu: 1e9/1e9 = 1/s ; link: 1e8/1e8 = 1/s.
  // combined constraint is independent (different resources): rate = 1 -> 1s.
  auto t = e.ptask_start({0, 1}, {1e9, 1e9}, {{0.0, 1e8}, {0.0, 0.0}});
  EXPECT_NEAR(run_until_done(e, t), 1.0, 1e-9);
}

TEST_F(EngineTest, ParallelTaskSharesCpuWithExec) {
  Platform p;
  p.add_host("a", 1e9);
  p.add_host("b", 1e9);
  Engine e(std::move(p));
  auto pt = e.ptask_start({0, 1}, {1e9, 1e9}, {});
  auto ex = e.exec_start(0, 1e9);
  // On host a: ptask consumes 1e9 * rate, exec consumes rate'. MaxMin splits:
  // ptask rate r with coeff 1e9, exec rate x with coeff 1: growth equalizes
  // consumption shares... both saturate host a: 1e9*r + x = 1e9.
  // Progressive filling: both grow until a saturates; r grows at 1 (weight 1,
  // value in units of progress/s), x at 1 (flop/s)! Units differ wildly, so r
  // saturates a almost alone: delta where 1e9*d + d = 1e9 -> d ~= 1.
  run_until_done(e, pt);
  const double r = pt->finish_time();
  EXPECT_GT(r, 1.0);  // slowed down by the competing exec a bit
  run_until_done(e, ex);
  EXPECT_GT(ex->finish_time(), 1.0);
}

TEST_F(EngineTest, StepBoundStopsEarly) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 1e10);
  auto events = e.step(3.0);
  EXPECT_TRUE(events.empty());
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_NEAR(a->remaining(), 7e9, 1.0);
}

TEST_F(EngineTest, NextEventTimeEmptyEngine) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  EXPECT_TRUE(std::isinf(e.next_event_time()));
  auto events = e.step();
  EXPECT_TRUE(events.empty());
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST_F(EngineTest, LoadIntrospection) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  EXPECT_DOUBLE_EQ(e.host_load(0), 0.0);
  auto a = e.exec_start(0, 1e10);
  EXPECT_DOUBLE_EQ(e.host_load(0), 1e9);
  (void)a;
}

// ---------------------------------------------------------------------------
// Completion-heap equivalence sweep: the heap-driven step() must order and
// date completions exactly like the old exhaustive scan. The reference is an
// independent fluid simulation of weighted max-min sharing on one link
// (rate_i = C * w_i / sum of active weights), driven through the same random
// schedule of starts, suspends, resumes, and priority changes — every such
// event re-rates all flows, exercising heap invalidation en masse.
// ---------------------------------------------------------------------------

namespace heap_sweep {

struct RefFlow {
  double remaining;
  double weight;
  bool suspended = false;
  bool done = false;
  double finish = -1.0;
};

class RefLink {
public:
  explicit RefLink(double capacity) : capacity_(capacity) {}

  int start(double bytes, double weight) {
    flows_.push_back({bytes, weight});
    return static_cast<int>(flows_.size()) - 1;
  }
  // Mutators apply at the model's current date: callers must run_until(t)
  // to the mutation time first.
  void suspend(int i) { flows_[static_cast<size_t>(i)].suspended = true; }
  void resume(int i) { flows_[static_cast<size_t>(i)].suspended = false; }
  void set_weight(int i, double w) { flows_[static_cast<size_t>(i)].weight = w; }

  /// Advance the fluid model to `t`, completing flows on the way.
  void run_until(double t) {
    while (true) {
      const double w_sum = active_weight();
      double next_done = std::numeric_limits<double>::infinity();
      int which = -1;
      if (w_sum > 0) {
        for (size_t i = 0; i < flows_.size(); ++i) {
          const RefFlow& f = flows_[i];
          if (f.done || f.suspended || f.weight <= 0)
            continue;
          const double rate = capacity_ * f.weight / w_sum;
          const double eta = now_ + f.remaining / rate;
          if (eta < next_done) {
            next_done = eta;
            which = static_cast<int>(i);
          }
        }
      }
      if (which < 0 || next_done > t) {
        advance_to(t);
        return;
      }
      advance_to(next_done);
      flows_[static_cast<size_t>(which)].done = true;
      flows_[static_cast<size_t>(which)].finish = next_done;
      flows_[static_cast<size_t>(which)].remaining = 0;
    }
  }

  const RefFlow& flow(int i) const { return flows_[static_cast<size_t>(i)]; }
  size_t flow_count() const { return flows_.size(); }

private:
  double active_weight() const {
    double s = 0;
    for (const RefFlow& f : flows_)
      if (!f.done && !f.suspended)
        s += f.weight;
    return s;
  }
  void advance_to(double t) {
    const double dt = t - now_;
    if (dt > 0) {
      const double w_sum = active_weight();
      if (w_sum > 0)
        for (RefFlow& f : flows_)
          if (!f.done && !f.suspended && f.weight > 0)
            f.remaining = std::max(0.0, f.remaining - capacity_ * f.weight / w_sum * dt);
    }
    now_ = t;
  }

  double capacity_;
  double now_ = 0;
  std::vector<RefFlow> flows_;
};

}  // namespace heap_sweep

TEST_F(EngineTest, HeapMatchesScanUnderRateChurn) {
  using namespace heap_sweep;
  sg::xbt::Rng rng(2024);
  const double kCapacity = 1e8;
  Engine e(sg::platform::make_dumbbell(1e9, kCapacity, 0.0));
  RefLink ref(kCapacity);

  std::vector<ActionPtr> actions;
  std::vector<double> engine_finish;  // filled as completions fire

  auto drain = [&](const std::vector<ActionEvent>& events) {
    for (const auto& ev : events) {
      EXPECT_EQ(ev.action->state(), ActionState::kDone);
      EXPECT_FALSE(ev.failed);
    }
  };

  // Random schedule: 30 ops at increasing dates, each a start / suspend /
  // resume / priority change. Every op shifts every active flow's rate.
  double t = 0;
  for (int op = 0; op < 30; ++op) {
    t += rng.uniform(0.05, 0.6);
    // Run both models to date t.
    while (e.next_event_time() < t)
      drain(e.step(t));
    drain(e.step(t));  // advance the clock the rest of the way
    ASSERT_DOUBLE_EQ(e.now(), t);
    ref.run_until(t);

    const double pick = rng.uniform01();
    if (pick < 0.45 || actions.empty()) {
      const double bytes = rng.uniform(1e6, 5e8);
      const double prio = rng.uniform(0.5, 4.0);
      auto a = e.comm_start(0, 1, bytes);
      a->set_priority(prio);
      actions.push_back(a);
      ref.start(bytes, prio);
    } else {
      const int i = static_cast<int>(rng.uniform_int(0, actions.size() - 1));
      if (pick < 0.65) {
        actions[static_cast<size_t>(i)]->suspend();
        if (actions[static_cast<size_t>(i)]->state() == ActionState::kSuspended)
          ref.suspend(i);
      } else if (pick < 0.85) {
        actions[static_cast<size_t>(i)]->resume();
        if (!ref.flow(i).done)
          ref.resume(i);
      } else {
        const double prio = rng.uniform(0.5, 4.0);
        if (actions[static_cast<size_t>(i)]->state() == ActionState::kRunning ||
            actions[static_cast<size_t>(i)]->state() == ActionState::kSuspended) {
          actions[static_cast<size_t>(i)]->set_priority(prio);
          ref.set_weight(i, prio);
        }
      }
    }
  }

  // Resume any still-suspended flows and run both models dry.
  for (size_t i = 0; i < actions.size(); ++i)
    if (actions[i]->state() == ActionState::kSuspended) {
      actions[i]->resume();
      ref.resume(static_cast<int>(i));
    }
  for (int guard = 0; guard < 100000; ++guard) {
    if (std::isinf(e.next_event_time()))
      break;
    drain(e.step());
  }
  ref.run_until(1e9);

  // Every flow completed, at the reference date. The completion *ordering*
  // is implied: identical dates means identical order.
  ASSERT_EQ(actions.size(), ref.flow_count());
  for (size_t i = 0; i < actions.size(); ++i) {
    ASSERT_EQ(actions[i]->state(), ActionState::kDone) << "flow " << i;
    ASSERT_TRUE(ref.flow(static_cast<int>(i)).done) << "flow " << i;
    EXPECT_NEAR(actions[i]->finish_time(), ref.flow(static_cast<int>(i)).finish,
                1e-6 * std::max(1.0, ref.flow(static_cast<int>(i)).finish))
        << "flow " << i;
  }
}

TEST_F(EngineTest, HeapCompletionsAreChronological) {
  // Many independent execs with random sizes completing in bursts: events
  // must fire in non-decreasing time order and at their own finish dates.
  sg::xbt::Rng rng(7);
  Platform p;
  for (int i = 0; i < 64; ++i)
    p.add_host(sg::xbt::format("h%d", i), 1e9);
  Engine e(std::move(p));
  std::vector<ActionPtr> actions;
  for (int i = 0; i < 256; ++i)
    actions.push_back(e.exec_start(i % 64, rng.uniform(1e7, 1e10)));

  double last = 0;
  size_t fired = 0;
  for (int guard = 0; guard < 100000 && fired < actions.size(); ++guard) {
    for (const auto& ev : e.step()) {
      EXPECT_GE(e.now(), last);
      last = e.now();
      EXPECT_DOUBLE_EQ(ev.action->finish_time(), e.now());
      ++fired;
    }
  }
  EXPECT_EQ(fired, actions.size());
  EXPECT_EQ(e.running_action_count(), 0u);
}

TEST_F(EngineTest, ZeroWorkActionCompletesOnStarvedResource) {
  // A 0-flop exec on a host whose availability is currently 0 must still
  // complete immediately: its solver allocation never changes (0 -> 0), so
  // the completion has to be scheduled at creation, not via a rate refresh.
  Platform p;
  sg::platform::HostSpec spec;
  spec.name = "h";
  spec.speed_flops = 1e9;
  spec.availability = sg::trace::Trace("a", {{0.0, 0.0}}, -1.0);  // starved
  p.add_host(spec);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 0.0);
  EXPECT_DOUBLE_EQ(run_until_done(e, a), 0.0);
  EXPECT_EQ(a->state(), ActionState::kDone);
}

TEST_F(EngineTest, CanceledActionsAreNotPinnedByStaleHeapEntries) {
  // Cancelling actions whose completion dates lie far in the future leaves
  // stale heap entries buried under the top; compaction must release them
  // (and the actions they hold) without waiting for simulated time to reach
  // those dates.
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  std::vector<std::weak_ptr<Action>> ghosts;
  {
    std::vector<ActionPtr> sleeps;
    for (int i = 0; i < 20; ++i)
      sleeps.push_back(e.sleep_start(0, 1e9));
    for (auto& s : sleeps) {
      s->cancel();
      ghosts.push_back(s);
    }
  }
  e.step();  // drain the cancellation events (they hold the last strong refs)
  // Any new scheduling triggers the stale-dominated compaction.
  auto trigger = e.sleep_start(0, 1.0);
  (void)trigger;
  int expired = 0;
  for (const auto& g : ghosts)
    expired += g.expired();
  EXPECT_EQ(expired, 20);
}

TEST_F(EngineTest, ReentrantObserverCancelDoesNotDoubleFinish) {
  // A host failure collects its victims up front; an observer that reacts to
  // the first failure by cancelling a sibling must not make the engine
  // finish that sibling twice (regression: stale run_idx_ reuse corrupted
  // the running set).
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 1e12, 1.0, "a");
  auto b = e.exec_start(0, 1e12, 1.0, "b");
  auto c = e.exec_start(0, 1e12, 1.0, "c");
  e.set_action_observer([&](const Action& act, ActionState, ActionState ns) {
    if (ns == ActionState::kFailed && act.name() == "a")
      b->cancel();  // re-enters finish_action while b is a pending victim
  });
  e.set_host_state(0, false);
  auto events = e.step();  // drain pending failure events
  EXPECT_EQ(a->state(), ActionState::kFailed);
  EXPECT_EQ(b->state(), ActionState::kCanceled);
  EXPECT_EQ(c->state(), ActionState::kFailed);
  EXPECT_EQ(e.running_action_count(), 0u);
  // Each action reported exactly once.
  int seen_a = 0, seen_b = 0, seen_c = 0;
  for (const auto& ev : events) {
    seen_a += ev.action.get() == a.get();
    seen_b += ev.action.get() == b.get();
    seen_c += ev.action.get() == c.get();
  }
  EXPECT_EQ(seen_a, 1);
  EXPECT_EQ(seen_b, 1);
  EXPECT_EQ(seen_c, 1);
}

// ---------------------------------------------------------------------------
// Failure propagation through the arena index: victims are found via the
// solver's element lists (cnst -> vars -> actions) and the per-host sleep
// index, never by scanning the running set. These tests pin the delivery
// invariants — most importantly exactly-one-event per failed action.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, PtaskSpanningTwoFailedConstraintsEmitsOneEvent) {
  // A ptask over host 0's CPU and the 0-1 link; host 0 and the link die at
  // the same instant. The action sits on both dead constraints but must
  // emit exactly one failure event.
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l = p.add_link("l", 1e8, 0.0);
  p.add_route(a, b, {l});
  Engine e(std::move(p));
  auto pt = e.ptask_start({0, 1}, {1e12, 1e12}, {{0.0, 1e12}, {0.0, 0.0}});
  auto bystander = e.exec_start(1, 1e12);
  e.step(0.5);
  e.set_host_state(0, false);
  e.set_link_state(0, false);
  auto events = e.step();
  int pt_failures = 0;
  for (const auto& ev : events)
    if (ev.action.get() == pt.get()) {
      EXPECT_TRUE(ev.failed);
      ++pt_failures;
    }
  EXPECT_EQ(pt_failures, 1) << "action spanning two failed constraints double-delivered";
  EXPECT_EQ(pt->state(), ActionState::kFailed);
  EXPECT_EQ(bystander->state(), ActionState::kRunning) << "unaffected action was touched";
  EXPECT_EQ(e.running_action_count(), 1u);
}

TEST_F(EngineTest, DuplicateElementsOnOneConstraintFailOnce) {
  // Symmetric ptask traffic puts the same variable twice on the same link
  // constraint; the link's death must still deliver a single event.
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto b = p.add_host("b", 1e9);
  auto l = p.add_link("l", 1e8, 0.0);
  p.add_route(a, b, {l});
  Engine e(std::move(p));
  auto pt = e.ptask_start({0, 1}, {0.0, 0.0}, {{0.0, 1e12}, {1e12, 0.0}});
  e.step(0.25);
  e.set_link_state(0, false);
  auto events = e.step();
  int failures = 0;
  for (const auto& ev : events)
    if (ev.action.get() == pt.get() && ev.failed)
      ++failures;
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(pt->state(), ActionState::kFailed);
}

TEST_F(EngineTest, LoopbackCommDiesWithItsHost) {
  Platform p;
  p.add_host("h", 1e9);
  p.add_host("other", 1e9);
  Engine e(std::move(p));
  auto c = e.comm_start(0, 0, 1e12);
  e.step(0.1);
  EXPECT_EQ(c->state(), ActionState::kRunning);
  e.set_host_state(0, false);
  auto events = e.step();
  int failures = 0;
  for (const auto& ev : events)
    if (ev.action.get() == c.get() && ev.failed)
      ++failures;
  EXPECT_EQ(failures, 1) << "loopback comm must die with its host";
  EXPECT_EQ(c->state(), ActionState::kFailed);

  // Starting a loopback transfer on a dead host fails immediately, like a
  // transfer over a dead route.
  auto dead = e.comm_start(0, 0, 100.0);
  EXPECT_EQ(dead->state(), ActionState::kFailed);

  // After recovery the loopback works again at full speed.
  e.set_host_state(0, true);
  e.step();
  auto revived = e.comm_start(0, 0, 1e9);
  for (int guard = 0; guard < 1000 && revived->state() == ActionState::kRunning; ++guard)
    e.step();
  EXPECT_EQ(revived->state(), ActionState::kDone);
}

TEST_F(EngineTest, SleepIndexKillsOnlyAffectedHost) {
  Platform p;
  p.add_host("a", 1e9);
  p.add_host("b", 1e9);
  Engine e(std::move(p));
  auto s_a1 = e.sleep_start(0, 100.0);
  auto s_b = e.sleep_start(1, 100.0);
  auto s_a2 = e.sleep_start(0, 200.0);
  e.step(1.0);
  e.set_host_state(0, false);
  auto events = e.step();
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(s_a1->state(), ActionState::kFailed);
  EXPECT_EQ(s_a2->state(), ActionState::kFailed);
  EXPECT_EQ(s_b->state(), ActionState::kRunning);
  // The index stays consistent after the swap-removals: the survivor still
  // completes at its own date.
  EXPECT_DOUBLE_EQ(run_until_done(e, s_b), 100.0);
}

TEST_F(EngineTest, SuspendedActionStillFailsWithItsResource) {
  // A suspended exec keeps its solver variable, so the arena index must
  // still find it when the host dies.
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  auto a = e.exec_start(0, 1e12);
  e.step(0.5);
  a->suspend();
  e.set_host_state(0, false);
  e.step();
  EXPECT_EQ(a->state(), ActionState::kFailed);
}

TEST_F(EngineTest, NamedActionOutlivesEngine) {
  // The name side table (and the block the action lives in) are co-owned by
  // the action's control block, so an ActionPtr — named or not — may
  // legally outlive its engine; destroying it afterwards must not touch
  // freed engine memory (regression caught by ASan).
  ActionPtr survivor_named;
  ActionPtr survivor_plain;
  {
    Platform p;
    p.add_host("h", 1e9);
    Engine e(std::move(p));
    survivor_named = e.exec_start(0, 1e9, 1.0, "long-lived");
    survivor_plain = e.exec_start(0, 1e9);
    run_until_done(e, survivor_named);
    run_until_done(e, survivor_plain);
  }
  // name() only needs the co-owned side table, not the engine.
  EXPECT_EQ(survivor_named->name(), "long-lived");
  EXPECT_EQ(survivor_plain->name(), "exec");
  survivor_named.reset();
  survivor_plain.reset();
}

TEST_F(EngineTest, NamedAndDefaultActionNames) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  // The creation notify must already see the custom name.
  std::vector<std::string> observed;
  e.set_action_observer([&](const Action& a, ActionState, ActionState ns) {
    if (ns == ActionState::kRunning)
      observed.push_back(a.name());
  });
  auto plain = e.exec_start(0, 1e9);
  auto named = e.exec_start(0, 1e9, 1.0, "my-job");
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], "exec");
  EXPECT_EQ(observed[1], "my-job");
  e.set_action_observer(nullptr);
  auto explicit_default = e.sleep_start(0, 1.0, "sleep");
  EXPECT_EQ(plain->name(), "exec");
  EXPECT_EQ(named->name(), "my-job");
  EXPECT_EQ(explicit_default->name(), "sleep");
  run_until_done(e, named);
  EXPECT_EQ(named->name(), "my-job") << "name must survive completion";
}

TEST_F(EngineTest, ObserverSeesTransitions) {
  Platform p;
  p.add_host("h", 1e9);
  Engine e(std::move(p));
  int done_count = 0;
  e.set_action_observer([&](const Action&, ActionState, ActionState ns) {
    if (ns == ActionState::kDone)
      ++done_count;
  });
  auto a = e.exec_start(0, 1e9);
  run_until_done(e, a);
  EXPECT_EQ(done_count, 1);
}

}  // namespace
