/// Tests for cross-architecture data description & the five wire codecs.
/// The core guarantee: any described value round-trips bit-exactly through
/// any codec between any pair of architectures (when representable on the
/// receiver).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "datadesc/codec.hpp"
#include "datadesc/pastry.hpp"
#include "datadesc/wire.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"

namespace {

using namespace sg::datadesc;

// -- architecture table -----------------------------------------------------------

TEST(Arch, TableSanity) {
  EXPECT_GE(arch_table().size(), 6u);
  EXPECT_EQ(arch_by_name("x86").big_endian, false);
  EXPECT_EQ(arch_by_name("sparc").big_endian, true);
  EXPECT_EQ(arch_by_name("ppc").big_endian, true);
  EXPECT_EQ(arch_by_name("x86").size_of(CType::kLong), 4);
  EXPECT_EQ(arch_by_name("amd64").size_of(CType::kLong), 8);
  // classic ia32 ABI: 8-byte scalars aligned on 4
  EXPECT_EQ(arch_by_name("x86").align_of(CType::kDouble), 4);
  EXPECT_EQ(arch_by_name("sparc").align_of(CType::kDouble), 8);
  EXPECT_THROW(arch_by_name("vax"), sg::xbt::InvalidArgument);
  EXPECT_THROW(arch_by_id(99), sg::xbt::InvalidArgument);
}

TEST(Arch, StableIds) {
  // Wire compatibility depends on these ids never changing.
  EXPECT_EQ(arch_by_name("x86").id, 0);
  EXPECT_EQ(arch_by_name("sparc").id, 1);
  EXPECT_EQ(arch_by_name("ppc").id, 2);
  EXPECT_EQ(arch_by_name("amd64").id, 3);
}

// -- value model ------------------------------------------------------------------

TEST(Value, AccessorsAndEquality) {
  Value v(int64_t{-5});
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -5);
  EXPECT_THROW(v.as_string(), sg::xbt::InvalidArgument);

  Value s(ValueStruct{{"a", Value(1)}, {"b", Value("x")}});
  EXPECT_EQ(s.field("b").as_string(), "x");
  EXPECT_THROW(s.field("zz"), sg::xbt::InvalidArgument);
  EXPECT_EQ(s, Value(ValueStruct{{"a", Value(1)}, {"b", Value("x")}}));
  EXPECT_TRUE(Value::null().is_null());
}

TEST(Value, ToStringRendering) {
  Value v(ValueStruct{{"n", Value(3)}, {"l", Value(ValueList{Value(1.5), Value("s")})}});
  EXPECT_EQ(v.to_string(), "{n: 3, l: [1.5, \"s\"]}");
}

// -- datadesc validation ------------------------------------------------------------

TEST(DataDesc, CheckAcceptsMatching) {
  auto desc = DataDesc::struct_("pair", {{"x", datadesc_by_name("int")},
                                         {"y", datadesc_by_name("double")}});
  EXPECT_NO_THROW(desc->check(Value(ValueStruct{{"x", Value(1)}, {"y", Value(2.0)}})));
}

TEST(DataDesc, CheckRejectsMismatch) {
  auto desc = DataDesc::struct_("pair", {{"x", datadesc_by_name("int")}});
  EXPECT_THROW(desc->check(Value(1)), sg::xbt::InvalidArgument);
  EXPECT_THROW(desc->check(Value(ValueStruct{{"y", Value(1)}})), sg::xbt::InvalidArgument);
  EXPECT_THROW(desc->check(Value(ValueStruct{{"x", Value("nope")}})), sg::xbt::InvalidArgument);
  auto arr = DataDesc::fixed_array(datadesc_by_name("int"), 3);
  EXPECT_THROW(arr->check(Value(ValueList{Value(1)})), sg::xbt::InvalidArgument);
}

TEST(DataDesc, Registry) {
  EXPECT_NO_THROW(datadesc_by_name("uint16"));
  EXPECT_THROW(datadesc_by_name("no-such-type"), sg::xbt::InvalidArgument);
  datadesc_register("my_pair", DataDesc::struct_("my_pair", {{"a", datadesc_by_name("int")}}));
  EXPECT_NO_THROW(datadesc_by_name("my_pair"));
}

// -- round-trip matrix --------------------------------------------------------------

/// A description exercising every DataDesc kind and tricky scalar layouts.
DataDescPtr kitchen_sink_desc() {
  static const DataDescPtr desc = DataDesc::struct_(
      "sink",
      {
          {"i8", DataDesc::scalar(CType::kInt8, "i8")},
          {"u8", DataDesc::scalar(CType::kUInt8, "u8")},
          {"i16", DataDesc::scalar(CType::kInt16, "i16")},
          {"i32", DataDesc::scalar(CType::kInt32, "i32")},
          {"u32", DataDesc::scalar(CType::kUInt32, "u32")},
          {"i64", DataDesc::scalar(CType::kInt64, "i64")},
          {"lng", DataDesc::scalar(CType::kLong, "lng")},
          {"f32", DataDesc::scalar(CType::kFloat, "f32")},
          {"f64", DataDesc::scalar(CType::kDouble, "f64")},
          {"str", DataDesc::string("str")},
          {"arr", DataDesc::fixed_array(DataDesc::scalar(CType::kInt16, "e"), 3, "arr")},
          {"dyn", DataDesc::dyn_array(DataDesc::scalar(CType::kInt32, "d"), "dyn")},
          {"ref", DataDesc::ref(DataDesc::scalar(CType::kInt32, "p"), "ref")},
          {"nested", DataDesc::struct_("inner", {{"a", DataDesc::scalar(CType::kUInt16, "a")},
                                                 {"b", DataDesc::string("b")}})},
      });
  return desc;
}

Value kitchen_sink_value(bool null_ref) {
  return Value(ValueStruct{
      {"i8", Value(int64_t{-100})},
      {"u8", Value(uint64_t{200})},
      {"i16", Value(int64_t{-30000})},
      {"i32", Value(int64_t{-2000000000})},
      {"u32", Value(uint64_t{4000000000u})},
      {"i64", Value(int64_t{-9000000000000000000LL})},
      {"lng", Value(int64_t{-2000000000})},  // fits a 32-bit long
      {"f32", Value(0.5)},                   // exactly representable in binary32
      {"f64", Value(3.141592653589793)},
      {"str", Value(std::string("héllo <&> \"world\""))},
      {"arr", Value(ValueList{Value(1), Value(-2), Value(3)})},
      {"dyn", Value(ValueList{Value(10), Value(20), Value(30), Value(40)})},
      {"ref", null_ref ? Value::null() : Value(int64_t{77})},
      {"nested", Value(ValueStruct{{"a", Value(uint64_t{65535})}, {"b", Value("inner")}})},
  });
}

struct RoundTripCase {
  const char* codec;
  const char* sender;
  const char* receiver;
};

void PrintTo(const RoundTripCase& c, std::ostream* os) {
  *os << c.codec << ":" << c.sender << "->" << c.receiver;
}

class CodecRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CodecRoundTrip, KitchenSink) {
  const auto p = GetParam();
  const Codec& codec = codec_by_name(p.codec);
  const ArchDesc& snd = arch_by_name(p.sender);
  const ArchDesc& rcv = arch_by_name(p.receiver);
  for (bool null_ref : {false, true}) {
    const Value original = kitchen_sink_value(null_ref);
    const auto wire = codec.encode(*kitchen_sink_desc(), original, snd);
    const Value decoded = codec.decode(*kitchen_sink_desc(), wire, rcv);
    EXPECT_EQ(decoded, original) << "wire size " << wire.size() << "\n got: " << decoded.to_string()
                                 << "\nwant: " << original.to_string();
  }
}

TEST_P(CodecRoundTrip, PastryMessage) {
  const auto p = GetParam();
  const Codec& codec = codec_by_name(p.codec);
  sg::xbt::Rng rng(2006);
  const Value msg = make_pastry_message(rng, 512);
  pastry_message_desc()->check(msg);
  const auto wire = codec.encode(*pastry_message_desc(), msg, arch_by_name(p.sender));
  const Value decoded = codec.decode(*pastry_message_desc(), wire, arch_by_name(p.receiver));
  EXPECT_EQ(decoded, msg);
}

std::vector<RoundTripCase> all_cases() {
  std::vector<RoundTripCase> cases;
  for (const char* codec : {"gras", "mpich", "omniorb", "pbio", "xml"})
    for (const char* snd : {"x86", "sparc", "ppc", "amd64"})
      for (const char* rcv : {"x86", "sparc", "ppc", "amd64"})
        cases.push_back({codec, snd, rcv});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllArchPairs, CodecRoundTrip, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<RoundTripCase>& info) {
                           return std::string(info.param.codec) + "_" + info.param.sender + "_to_" +
                                  info.param.receiver;
                         });

// -- codec specifics -----------------------------------------------------------------

TEST(Ndr, SameArchIsSmallerThanXdrForNarrowTypes) {
  // NDR keeps an int16 at 2 bytes; XDR inflates it to 4.
  auto desc = DataDesc::fixed_array(DataDesc::scalar(CType::kInt16, "v"), 64);
  ValueList vals;
  for (int i = 0; i < 64; ++i)
    vals.emplace_back(i);
  const Value v{ValueList(vals)};
  const auto ndr = ndr_codec().encode(*desc, v, arch_by_name("x86"));
  const auto xdr = xdr_codec().encode(*desc, v, arch_by_name("x86"));
  EXPECT_LT(ndr.size(), xdr.size());
}

TEST(Ndr, CarriesSenderArchId) {
  auto desc = datadesc_by_name("int");
  const auto wire = ndr_codec().encode(*desc, Value(1), arch_by_name("sparc"));
  EXPECT_EQ(wire[0], arch_by_name("sparc").id);
}

TEST(Ndr, LongWidthFollowsSenderArch) {
  auto desc = datadesc_by_name("long");
  const auto wire32 = ndr_codec().encode(*desc, Value(1), arch_by_name("x86"));
  const auto wire64 = ndr_codec().encode(*desc, Value(1), arch_by_name("amd64"));
  EXPECT_EQ(wire32.size(), 1u + 4u + 3u);  // arch byte + aligned(4) int32... padding
  EXPECT_GT(wire64.size(), wire32.size());
}

TEST(Ndr, ReceiverCannotRepresentWideLong) {
  // A 64-bit long from amd64 that exceeds 32 bits must be rejected by an
  // ILP32 receiver (receiver-makes-right failure mode).
  auto desc = datadesc_by_name("long");
  const Value big(int64_t{1} << 40);
  const auto wire = ndr_codec().encode(*desc, big, arch_by_name("amd64"));
  EXPECT_NO_THROW(ndr_codec().decode(*desc, wire, arch_by_name("amd64")));
  EXPECT_THROW(ndr_codec().decode(*desc, wire, arch_by_name("x86")), sg::xbt::InvalidArgument);
}

TEST(Ndr, ValueTooWideForSenderRejected) {
  auto desc = datadesc_by_name("long");
  EXPECT_THROW(ndr_codec().encode(*desc, Value(int64_t{1} << 40), arch_by_name("x86")),
               sg::xbt::InvalidArgument);
}

TEST(Xdr, CanonicalFormIsArchIndependent) {
  auto desc = pastry_message_desc();
  sg::xbt::Rng rng(7);
  const Value msg = make_pastry_message(rng, 64);
  const auto a = xdr_codec().encode(*desc, msg, arch_by_name("x86"));
  const auto b = xdr_codec().encode(*desc, msg, arch_by_name("sparc"));
  EXPECT_EQ(a, b);  // sender layout does not leak into XDR
}

TEST(Cdr, EndianFlagHonored) {
  auto desc = datadesc_by_name("int");
  const auto le = cdr_codec().encode(*desc, Value(0x01020304), arch_by_name("x86"));
  const auto be = cdr_codec().encode(*desc, Value(0x01020304), arch_by_name("sparc"));
  EXPECT_NE(le, be);
  EXPECT_EQ(cdr_codec().decode(*desc, le, arch_by_name("sparc")).as_int(), 0x01020304);
  EXPECT_EQ(cdr_codec().decode(*desc, be, arch_by_name("x86")).as_int(), 0x01020304);
}

TEST(Pbio, DetectsFormatMismatch) {
  auto desc_a = DataDesc::struct_("m", {{"x", datadesc_by_name("int")}});
  auto desc_b = DataDesc::struct_("m", {{"y", datadesc_by_name("int")}});
  const auto wire = pbio_codec().encode(*desc_a, Value(ValueStruct{{"x", Value(1)}}),
                                        arch_by_name("x86"));
  EXPECT_THROW(pbio_codec().decode(*desc_b, wire, arch_by_name("x86")), sg::xbt::InvalidArgument);
}

TEST(Xml, EscapesMarkup) {
  auto desc = datadesc_by_name("string");
  const Value v(std::string("a<b>&c\"d"));
  const auto wire = xml_codec().encode(*desc, v, arch_by_name("x86"));
  const std::string text(wire.begin(), wire.end());
  EXPECT_EQ(text.find("a<b>"), std::string::npos);  // must be escaped
  EXPECT_EQ(xml_codec().decode(*desc, wire, arch_by_name("sparc")).as_string(), "a<b>&c\"d");
}

TEST(Xml, IsLargestEncoding) {
  auto desc = pastry_message_desc();
  sg::xbt::Rng rng(11);
  const Value msg = make_pastry_message(rng, 128);
  const auto& x86 = arch_by_name("x86");
  const size_t ndr = ndr_codec().encode(*desc, msg, x86).size();
  const size_t xml = xml_codec().encode(*desc, msg, x86).size();
  EXPECT_GT(xml, 2 * ndr);
}

TEST(Codecs, TruncatedBuffersRejected) {
  auto desc = pastry_message_desc();
  sg::xbt::Rng rng(3);
  const Value msg = make_pastry_message(rng, 64);
  for (const Codec* codec : all_codecs()) {
    auto wire = codec->encode(*desc, msg, arch_by_name("x86"));
    wire.resize(wire.size() / 2);
    EXPECT_THROW(codec->decode(*desc, wire, arch_by_name("x86")), sg::xbt::InvalidArgument)
        << codec->name();
  }
}

TEST(Codecs, SpecialFloats) {
  auto desc = datadesc_by_name("double");
  for (const Codec* codec : all_codecs()) {
    for (double v : {0.0, -0.0, 1e-300, -1e300, std::numeric_limits<double>::infinity()}) {
      const auto wire = codec->encode(*desc, Value(v), arch_by_name("ppc"));
      const Value out = codec->decode(*desc, wire, arch_by_name("x86"));
      EXPECT_EQ(out.as_float(), v) << codec->name();
    }
    // NaN compares unequal to itself; check bit-level survival separately.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const auto wire = codec->encode(*desc, Value(nan), arch_by_name("ppc"));
    EXPECT_TRUE(std::isnan(codec->decode(*desc, wire, arch_by_name("x86")).as_float()))
        << codec->name();
  }
}

TEST(Codecs, EmptyStringAndEmptyDynArray) {
  auto desc = DataDesc::struct_("m", {{"s", DataDesc::string("s")},
                                      {"d", DataDesc::dyn_array(datadesc_by_name("int"), "d")}});
  const Value v(ValueStruct{{"s", Value(std::string())}, {"d", Value(ValueList{})}});
  for (const Codec* codec : all_codecs()) {
    const auto wire = codec->encode(*desc, v, arch_by_name("sparc"));
    EXPECT_EQ(codec->decode(*desc, wire, arch_by_name("x86")), v) << codec->name();
  }
}

TEST(Pastry, GeneratedMessagesMatchDesc) {
  sg::xbt::Rng rng(1);
  for (int i = 0; i < 20; ++i)
    EXPECT_NO_THROW(pastry_message_desc()->check(make_pastry_message(rng, 100)));
}

}  // namespace
