/// Tests for the pluggable actor runtime: thread-vs-fiber backend
/// equivalence (identical schedules, completions, clocks, and failure
/// statuses on randomized fault-flapping scenarios), fiber stack-pool
/// recycling under spawn/die/restart churn, mailbox interning, and
/// per-shard scheduling determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/kernel.hpp"
#include "platform/builders.hpp"
#include "platform/platform.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"

#if defined(__SANITIZE_THREAD__)
#define SG_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SG_UNDER_TSAN 1
#endif
#endif

namespace {

using namespace sg::kernel;
using sg::platform::Platform;

/// TSan cannot follow fiber stack switches once engine/parallel-actors fans
/// them out across worker lanes (the SIMGRID_TSAN option pairs TSan with the
/// thread backend for exactly this reason). Serial fiber runs are fine, so
/// only the TSan + SG_PARALLEL_ACTORS=1 combination skips fiber tests.
bool fiber_lanes_invisible_to_tsan() {
#ifdef SG_UNDER_TSAN
  const char* env = std::getenv("SG_PARALLEL_ACTORS");
  return env != nullptr && std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0;
#else
  return false;
#endif
}

#define SKIP_IF_FIBER_LANES_UNDER_TSAN()                                             \
  do {                                                                               \
    if (fiber_lanes_invisible_to_tsan())                                             \
      GTEST_SKIP() << "fiber switches across parallel lanes are invisible to TSan"; \
  } while (0)

/// Runs each test body once per backend by flipping the config key; restores
/// the previous backend afterwards so the rest of the suite is unaffected.
class ActorRuntimeTest : public ::testing::Test {
protected:
  void SetUp() override {
    declare_context_config();
    saved_backend_ = sg::xbt::Config::instance().get_string("contexts/backend");
  }
  void TearDown() override {
    sg::xbt::Config::instance().set_string("contexts/backend", saved_backend_);
  }

  static void use_backend(const std::string& name) {
    sg::xbt::Config::instance().set_string("contexts/backend", name);
  }

private:
  std::string saved_backend_;
};

/// Everything observable about one scenario run: an ordered event log (with
/// 9-digit clocks, so "identical schedule" means identical interleaving AND
/// identical timings), the final clock, and the scheduler counters.
struct ScenarioResult {
  std::vector<std::string> log;
  double end_clock = 0.0;
  std::uint64_t wakeups = 0;
  std::uint64_t switches = 0;
  int completions = 0;
};

/// Randomized master/worker with fault flaps: a master farms tasks to
/// auto-restarting workers over per-worker mailboxes while a chaos daemon
/// powers worker hosts off and on. Every completion, timeout, and failure
/// exception lands in the log, so two backends agree iff they made exactly
/// the same scheduling decisions and mapped every wake status identically.
ScenarioResult run_faulty_master_worker(const std::string& backend, unsigned seed) {
  sg::xbt::Config::instance().set_string("contexts/backend", backend);

  sg::platform::ClusterSpec spec;
  spec.count = 5;  // node0 = master, nodes 1..4 = workers
  spec.host_speed = 1e9;
  Kernel k(sg::platform::make_cluster(spec));

  ScenarioResult res;
  auto log_event = [&](const std::string& what) {
    res.log.push_back(sg::xbt::format("%.9f %s", k.now(), what.c_str()));
  };

  const int n_workers = 4;
  const int n_tasks = 24;
  const MailboxId results = k.mailbox_by_name("results");
  std::vector<MailboxId> tasks;
  tasks.push_back(kNoMailbox);
  for (int w = 1; w <= n_workers; ++w)
    tasks.push_back(k.mailbox_by_name("tasks:" + std::to_string(w)));

  for (int w = 1; w <= n_workers; ++w) {
    k.spawn("worker" + std::to_string(w), w,
            [&k, &tasks, results, w] {
              while (true) {
                void* raw = k.recv(tasks[static_cast<size_t>(w)]);
                const auto task = reinterpret_cast<std::intptr_t>(raw);
                k.execute(1e8 + 1e7 * static_cast<double>(task));
                k.send(results, raw, 1e4);
              }
            },
            /*daemon=*/true, /*auto_restart=*/true);
  }

  k.spawn("master", 0, [&] {
    sg::xbt::Rng rng(seed);
    for (int t = 1; t <= n_tasks; ++t) {
      const int w = 1 + static_cast<int>(rng.uniform_int(0, n_workers - 1));
      try {
        k.send(tasks[static_cast<size_t>(w)], reinterpret_cast<void*>(static_cast<std::intptr_t>(t)),
               1e5, /*timeout=*/1.5);
        void* ack = k.recv(results, /*timeout=*/1.5);
        ++res.completions;
        log_event(sg::xbt::format("done task=%ld worker=%d", reinterpret_cast<std::intptr_t>(ack), w));
      } catch (const sg::xbt::Exception& e) {
        log_event(sg::xbt::format("fail task=%d worker=%d: %s", t, w, e.what()));
        k.sleep_for(0.25);  // let the flapped host come back
      }
    }
    log_event("master finished");
  });

  k.spawn("chaos", 0,
          [&] {
            sg::xbt::Rng rng(seed * 31 + 7);
            for (int i = 0; i < 5; ++i) {
              k.sleep_for(rng.uniform(0.4, 1.2));
              const int victim = 1 + static_cast<int>(rng.uniform_int(0, n_workers - 1));
              log_event(sg::xbt::format("chaos: host %d off", victim));
              k.host_off(victim);
              k.sleep_for(0.3);
              k.host_on(victim);
              log_event(sg::xbt::format("chaos: host %d on", victim));
            }
          },
          /*daemon=*/true);

  res.end_clock = k.run();
  res.wakeups = k.stats().wakeups;
  res.switches = k.stats().context_switches;
  EXPECT_EQ(backend, std::string(k.context_factory().backend_name()));
  return res;
}

TEST_F(ActorRuntimeTest, ThreadAndFiberBackendsProduceIdenticalSchedules) {
  SKIP_IF_FIBER_LANES_UNDER_TSAN();
  for (unsigned seed : {1u, 17u, 424242u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ScenarioResult fiber = run_faulty_master_worker("fiber", seed);
    const ScenarioResult thread = run_faulty_master_worker("thread", seed);

    EXPECT_EQ(fiber.log, thread.log);
    EXPECT_NEAR(fiber.end_clock, thread.end_clock, 1e-9);
    EXPECT_EQ(fiber.completions, thread.completions);
    EXPECT_EQ(fiber.wakeups, thread.wakeups);
    EXPECT_EQ(fiber.switches, thread.switches);
    EXPECT_GT(fiber.completions, 0);        // the scenario must do real work
    EXPECT_FALSE(fiber.log.empty());
    // With fault flaps in play, some sends/recvs must have failed — that is
    // the WakeStatus mapping the equivalence is meant to cover.
    bool saw_failure = false;
    for (const std::string& line : fiber.log)
      saw_failure |= line.find("fail ") != std::string::npos;
    EXPECT_TRUE(saw_failure);
  }
}

TEST_F(ActorRuntimeTest, BackendsAgreeOnPureYieldInterleaving) {
  SKIP_IF_FIBER_LANES_UNDER_TSAN();
  auto run_yield_storm = [](const std::string& backend) {
    sg::xbt::Config::instance().set_string("contexts/backend", backend);
    Kernel k(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
    std::vector<std::string> order;
    for (int a = 0; a < 8; ++a)
      k.spawn("y" + std::to_string(a), a % 2, [&k, &order, a] {
        for (int round = 0; round < 5; ++round) {
          order.push_back(std::to_string(a) + ":" + std::to_string(round));
          k.yield_now();
        }
      });
    k.run();
    return order;
  };
  EXPECT_EQ(run_yield_storm("fiber"), run_yield_storm("thread"));
}

TEST_F(ActorRuntimeTest, FiberPoolRecyclesStacksAcrossWaves) {
  SKIP_IF_FIBER_LANES_UNDER_TSAN();
  use_backend("fiber");
  Kernel k(sg::platform::make_dumbbell(1e9, 1e8, 0.0));

  constexpr int kWaves = 5;
  constexpr int kPerWave = 400;
  k.spawn("driver", 0, [&k] {
    for (int wave = 0; wave < kWaves; ++wave) {
      for (int i = 0; i < kPerWave; ++i)
        k.spawn("ephemeral", i % 2, [&k] { k.execute(1e6); });
      k.sleep_for(1.0);  // every spawned actor finishes well within this
    }
  });
  k.run();

  EXPECT_EQ(k.stats().actors_spawned, 1u + kWaves * kPerWave);
  const ContextFactory::PoolStats pool = k.context_factory().pool_stats();
  // Stacks are recycled between waves: the pool never carves anywhere near
  // one stack per spawned actor, only enough for the peak concurrency.
  EXPECT_GT(pool.stacks_allocated, 0u);
  EXPECT_LE(pool.stacks_allocated, static_cast<size_t>(kPerWave) + 2);
  EXPECT_EQ(pool.stacks_free, pool.stacks_allocated);  // all dead => all parked
  EXPECT_GE(pool.stack_bytes, 4096u);
}

TEST_F(ActorRuntimeTest, FiberPoolSurvivesKillRestartChurn) {
  SKIP_IF_FIBER_LANES_UNDER_TSAN();
  use_backend("fiber");
  sg::platform::ClusterSpec spec;
  spec.count = 3;
  Kernel k(sg::platform::make_cluster(spec));

  int restarts = 0;
  for (int i = 0; i < 50; ++i)
    k.spawn("flappy" + std::to_string(i), 1 + i % 2,
            [&k, &restarts] {
              ++restarts;
              k.sleep_for(100.0);  // parked until killed by the next flap
            },
            /*daemon=*/true, /*auto_restart=*/true);
  k.spawn("flapper", 0, [&k] {
    for (int round = 0; round < 4; ++round) {
      k.sleep_for(1.0);
      k.host_off(1);
      k.host_on(1);
      k.sleep_for(1.0);
      k.host_off(2);
      k.host_on(2);
    }
  });
  k.run();

  EXPECT_GT(restarts, 50);  // every flap re-ran the residents of that host
  const ContextFactory::PoolStats pool = k.context_factory().pool_stats();
  // Kill + restart reuses parked stacks instead of growing the pool.
  EXPECT_LE(pool.stacks_allocated, 60u);
}

TEST_F(ActorRuntimeTest, MailboxNamesInternToStableDenseIds) {
  Kernel k(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  const MailboxId a = k.mailbox_by_name("alpha");
  const MailboxId b = k.mailbox_by_name("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, k.mailbox_by_name("alpha"));  // same name, same id
  EXPECT_EQ(b, k.mailbox_by_name("beta"));
  EXPECT_EQ("alpha", k.mailbox_name(a));  // round-trip
  EXPECT_EQ("beta", k.mailbox_name(b));
}

TEST_F(ActorRuntimeTest, StringAndIdKeyedSimcallsShareTheMailbox) {
  Kernel k(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  const MailboxId mbox = k.mailbox_by_name("shared");
  std::intptr_t got = 0;
  k.spawn("tx", 0,
          [&k] { k.send("shared", reinterpret_cast<void*>(static_cast<std::intptr_t>(99)), 1e3); });
  k.spawn("rx", 1, [&k, &got, mbox] {
    got = reinterpret_cast<std::intptr_t>(k.recv(mbox));  // id-keyed recv
  });
  k.run();
  EXPECT_EQ(99, got);
  EXPECT_FALSE(k.comm_waiting(mbox));
  EXPECT_FALSE(k.comm_waiting("never-used"));  // probe must not intern
}

TEST_F(ActorRuntimeTest, ShardedRunQueuesStayDeterministicAcrossBackends) {
  SKIP_IF_FIBER_LANES_UNDER_TSAN();
  auto run_sharded = [](const std::string& backend) {
    sg::xbt::Config::instance().set_string("contexts/backend", backend);
    Platform p;
    for (int z = 0; z < 3; ++z) {
      sg::platform::ClusterZoneSpec zone;
      zone.name = "zone" + std::to_string(z);
      zone.host_prefix = "z" + std::to_string(z) + "-";
      zone.count = 4;
      p.add_cluster_zone(zone);
    }
    p.seal();
    Kernel k(std::move(p));
    EXPECT_GT(k.engine().platform().shard_map().shard_count, 1);

    // One log per actor: bodies may run on different worker lanes under
    // engine/parallel-actors, so they must not share a log vector.
    std::vector<std::vector<std::string>> logs(12);
    const MailboxId ring = k.mailbox_by_name("ring");
    for (int a = 0; a < 12; ++a)
      k.spawn("actor" + std::to_string(a), a, [&k, &logs, &ring, a] {
        for (int round = 0; round < 3; ++round) {
          if (a % 2 == 0) {
            k.send(ring, reinterpret_cast<void*>(static_cast<std::intptr_t>(a + 1)), 1e4);
          } else {
            k.recv(ring);
          }
          logs[static_cast<size_t>(a)].push_back(sg::xbt::format("%d:%d@%.9f", a, round, k.now()));
        }
      });
    const double end = k.run();
    std::vector<std::string> order;
    for (const auto& log : logs)
      order.insert(order.end(), log.begin(), log.end());
    order.push_back(sg::xbt::format("end@%.9f", end));
    return order;
  };
  const auto fiber = run_sharded("fiber");
  const auto thread = run_sharded("thread");
  EXPECT_EQ(fiber, thread);
  const auto fiber_again = run_sharded("fiber");
  EXPECT_EQ(fiber, fiber_again);  // rerun determinism, not just agreement
}

}  // namespace
