/// Tests for parallel per-shard stepping (`engine/threads`) and the
/// redesigned run/config API.
///
/// The headline property: the phase-structured run_until() produces the SAME
/// simulation at every thread count — not just the same clocks and counts,
/// but the identical ordered event log (fixed shard order, stable intra-
/// shard order), with completion clocks matching to 1e-9. The sweep drives a
/// random multi-zone platform through churn plus trace-driven host/link
/// fault flaps at 1/2/4/8 threads and compares the logs bitwise on
/// (slot, failed) and numerically on clocks.
///
/// Also covered here: the cross-shard coupled-group stress (backbone-
/// crossing comms solved jointly while zone lanes advance concurrently),
/// the codified trace-before-completion tie-break, run_until()'s deadline
/// semantics, and the typed sg::config registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "kernel/context.hpp"
#include "platform/platform.hpp"
#include "trace/trace.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"
#include "xbt/settings.hpp"

namespace {

using namespace sg::core;
using sg::platform::ClusterZoneSpec;
using sg::platform::LinkId;
using sg::platform::Platform;
using sg::platform::SharingPolicy;

constexpr double kInf = std::numeric_limits<double>::infinity();

class ParallelStepTest : public ::testing::Test {
protected:
  void SetUp() override {
    declare_engine_config();
    sg::config::set(kCfgBandwidthFactor, 1.0);
    sg::config::set(kCfgTcpGamma, 1e18);  // effectively no window cap
    sg::config::set(kCfgSharding, true);
    sg::config::set(kCfgKillTransitComms, false);
    sg::config::set(kCfgThreads, 1);
  }
  void TearDown() override {
    sg::config::set(kCfgBandwidthFactor, 1460.0 / 1500.0);
    sg::config::set(kCfgTcpGamma, 65536.0);
    sg::config::set(kCfgSharding, true);
    sg::config::set(kCfgKillTransitComms, false);
    sg::config::set(kCfgThreads, 1);
  }
};

// ---------------------------------------------------------------------------
// Parallel == serial: the equivalence sweep
// ---------------------------------------------------------------------------

struct LogEntry {
  int slot;
  bool failed;
  double clock;
};

struct SweepResult {
  std::vector<LogEntry> log;
  int completions = 0;
  int failures = 0;
  double final_now = 0;
  unsigned long group_solves = 0;
  int thread_count = 0;
};

// Multi-zone platform with trace-driven fault flaps: square-wave state
// traces on two hosts per zone and on a handful of links (private up/down
// links and, via small ids, the zone backbones). Identical for every engine.
Platform make_flapping_platform(int zones, int per_zone) {
  Platform p;
  for (int z = 0; z < zones; ++z) {
    ClusterZoneSpec zone;
    zone.name = "z" + std::to_string(z);
    zone.count = per_zone;
    zone.host_speed = 1e9;
    zone.link_bandwidth = 1e8;
    zone.link_latency = 5e-5;
    zone.backbone_bandwidth = 6e8;
    zone.backbone_latency = 1e-4;
    zone.backbone_fatpipe = (z % 2 == 1);
    p.add_cluster_zone(zone);
  }
  for (int z = 1; z < zones; ++z) {
    const LinkId wan =
        p.add_link("wan" + std::to_string(z), 4e8, 1e-3, SharingPolicy::kFatpipe);
    p.add_edge(p.zone_gateway(0), p.zone_gateway(z), wan);
  }
  // Host flaps: hosts 0 and 2 of every zone, staggered periods so downs and
  // heals interleave with completions rather than clustering.
  for (int z = 0; z < zones; ++z)
    for (int k : {0, 2}) {
      const int h = z * per_zone + k;
      p.host_mutable(h).state = sg::trace::square_wave(
          "hf" + std::to_string(h), 1.0, 0.013 + 0.0017 * h, 0.0, 0.004 + 0.0011 * k);
    }
  // Link flaps: a stride over all links hits private up/down links and some
  // backbones (same ids in every engine built from this platform).
  for (LinkId l = 1; l < static_cast<LinkId>(p.link_count()); l += 5)
    p.link_mutable(l).state = sg::trace::square_wave(
        "lf" + std::to_string(l), 1.0, 0.019 + 0.0013 * l, 0.0, 0.0035);
  p.seal();
  return p;
}

// Drive the churn scenario on a fresh engine with `threads` worker lanes and
// return the full ordered event log.
SweepResult run_sweep(int threads, int zones, int per_zone, int steps,
                      bool kill_transit) {
  sg::config::set(kCfgKillTransitComms, kill_transit);
  sg::config::set(kCfgThreads, threads);
  Engine e(make_flapping_platform(zones, per_zone));
  sg::config::set(kCfgThreads, 1);

  const int n_hosts = zones * per_zone;
  sg::xbt::Rng rng(20260808);
  struct Slot {
    int src, dst;
    bool exec;
    int starts = 0;
  };
  std::vector<Slot> slots;
  for (int s = 0; s < 2 * n_hosts; ++s) {
    Slot slot;
    slot.exec = (s % 5 == 4);
    const int za = s % zones;
    slot.src = za * per_zone + static_cast<int>(rng.uniform_int(0, per_zone - 1));
    if (s % 3 == 0 && !slot.exec) {
      // A third of the comm slots cross zones: their solver variables span
      // >= 3 shards and join at the backbone coupling layer.
      const int zb = (za + 1 + s / 3) % zones;
      slot.dst = zb * per_zone + static_cast<int>(rng.uniform_int(0, per_zone - 1));
    } else {
      slot.dst = za * per_zone + static_cast<int>(rng.uniform_int(0, per_zone - 1));
    }
    slots.push_back(slot);
  }

  SweepResult r;
  r.thread_count = e.thread_count();
  std::vector<ActionPtr> current(slots.size());
  std::vector<char> idle(slots.size(), 0);
  auto start_slot = [&](size_t k) {
    Slot& s = slots[static_cast<size_t>(k)];
    if (!e.host_is_on(s.src) || !e.host_is_on(s.dst)) {
      idle[k] = 1;
      current[k] = nullptr;
      return;
    }
    const double work = s.exec ? 2.5e7 * (1.0 + (s.starts % 5))
                               : 1.5e6 * (1.0 + ((s.src + s.starts) % 7));
    ActionPtr a = s.exec ? e.exec_start(s.src, work) : e.comm_start(s.src, s.dst, work);
    ++s.starts;
    a->user_data = reinterpret_cast<void*>(k + 1);
    current[k] = a;
    idle[k] = 0;
  };
  // Heals restart the idle slots (the observer fires from the deterministic
  // serial epilogue, in event-log order, at every thread count).
  e.set_resource_observer([&](bool, int, bool now_on) {
    if (!now_on)
      return;
    for (size_t k = 0; k < slots.size(); ++k)
      if (idle[k])
        start_slot(k);
  });
  for (size_t k = 0; k < slots.size(); ++k)
    start_slot(k);

  for (int step = 0; step < steps; ++step) {
    const double before = e.now();
    const auto fired = e.run_until();
    // An empty span with an advanced clock is a latency-expiry-only step;
    // empty with a frozen clock means nothing will ever happen again.
    if (fired.empty() && e.now() == before)
      break;
    for (const auto& ev : fired) {
      const size_t k = reinterpret_cast<size_t>(ev.action->user_data);
      if (k == 0 || k > slots.size())
        continue;
      r.log.push_back({static_cast<int>(k - 1), ev.failed, e.now()});
      if (ev.failed) {
        ++r.failures;
        idle[k - 1] = 1;  // parked until a heal restarts it
        current[k - 1] = nullptr;
      } else {
        ++r.completions;
        start_slot(k - 1);
      }
    }
  }
  r.final_now = e.now();
  r.group_solves = e.sharing_system().group_solve_count();
  return r;
}

void expect_same_simulation(const SweepResult& base, const SweepResult& par) {
  ASSERT_EQ(base.log.size(), par.log.size());
  for (size_t i = 0; i < base.log.size(); ++i) {
    EXPECT_EQ(base.log[i].slot, par.log[i].slot) << "event " << i;
    EXPECT_EQ(base.log[i].failed, par.log[i].failed) << "event " << i;
    EXPECT_NEAR(base.log[i].clock, par.log[i].clock,
                1e-9 * std::max(1.0, base.log[i].clock))
        << "event " << i;
  }
  EXPECT_EQ(base.completions, par.completions);
  EXPECT_EQ(base.failures, par.failures);
  EXPECT_NEAR(base.final_now, par.final_now, 1e-9 * std::max(1.0, base.final_now));
}

TEST_F(ParallelStepTest, ParallelMatchesSerialUnderChurnAndFaultFlaps) {
  constexpr int kZones = 3;
  constexpr int kPerZone = 4;
  constexpr int kSteps = 500;
  const SweepResult serial = run_sweep(1, kZones, kPerZone, kSteps, false);
  ASSERT_EQ(serial.thread_count, 1);
  // The sweep must contain real churn, real failures, and real cross-shard
  // coupling — otherwise it proves nothing.
  ASSERT_GT(serial.completions, 200);
  ASSERT_GT(serial.failures, 10);
  ASSERT_GT(serial.group_solves, 0u);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult par = run_sweep(threads, kZones, kPerZone, kSteps, false);
    EXPECT_EQ(par.thread_count, std::min(threads, kZones + 1));
    expect_same_simulation(serial, par);
  }
}

TEST_F(ParallelStepTest, ParallelMatchesSerialWithKillTransitComms) {
  // kill-transit-comms maintains per-host endpoint comm lists; a lane may
  // only touch them when both endpoints are shard-local (the lists_local
  // rule), so this sweep exercises the deferred cross-shard finish path.
  constexpr int kZones = 3;
  constexpr int kPerZone = 4;
  constexpr int kSteps = 400;
  const SweepResult serial = run_sweep(1, kZones, kPerZone, kSteps, true);
  ASSERT_GT(serial.completions, 100);
  ASSERT_GT(serial.failures, 10);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_simulation(serial, run_sweep(threads, kZones, kPerZone, kSteps, true));
  }
}

TEST_F(ParallelStepTest, CrossShardCoupledGroupStress) {
  // Every flow crosses the backbone: all solver variables are multi-shard,
  // every solve is a coupled-group join, and NO completion may be finished
  // inside a parallel phase (they all take the deferred path). The event
  // logs must still be identical.
  auto build = [] {
    Platform p;
    for (int z = 0; z < 4; ++z) {
      ClusterZoneSpec zone;
      zone.name = "s" + std::to_string(z);
      zone.count = 4;
      zone.link_bandwidth = 1e8;
      zone.backbone_bandwidth = 5e8;
      p.add_cluster_zone(zone);
    }
    for (int z = 1; z < 4; ++z)
      p.add_edge(p.zone_gateway(0), p.zone_gateway(z),
                 p.add_link("wan" + std::to_string(z), 3e8, 1e-3, SharingPolicy::kShared));
    p.seal();
    return p;
  };
  std::vector<std::vector<LogEntry>> logs_;
  auto run = [&](int threads) {
    sg::config::set(kCfgThreads, threads);
    Engine e(build());
    sg::config::set(kCfgThreads, 1);
    std::vector<LogEntry> log;
    int events = 0;
    for (int i = 0; i < 16; ++i) {
      const int src = (i % 4) * 4 + i % 3;           // zone i%4
      const int dst = ((i + 1 + i / 4) % 4) * 4 + i % 2;  // a different zone
      e.comm_start(src, dst, 1e6 * (1.0 + i % 5))->user_data =
          reinterpret_cast<void*>(static_cast<size_t>(i + 1));
    }
    int spins = 0;
    while (events < 400) {
      const auto fired = e.run_until();
      ASSERT_LT(++spins, 100000);
      for (const auto& ev : fired) {
        const size_t k = reinterpret_cast<size_t>(ev.action->user_data);
        if (k == 0)
          continue;
        ++events;
        log.push_back({static_cast<int>(k - 1), ev.failed, e.now()});
        const int src = ev.action->host();
        e.comm_start(src, ev.action->peer_host(), 1e6 * (1.0 + events % 5))->user_data =
            reinterpret_cast<void*>(k);
      }
    }
    EXPECT_GT(e.sharing_system().group_solve_count(), 0u);
    logs_.push_back(std::move(log));
  };
  run(1);
  run(4);
  ASSERT_EQ(logs_.size(), 2u);
  ASSERT_EQ(logs_[0].size(), logs_[1].size());
  for (size_t i = 0; i < logs_[0].size(); ++i) {
    EXPECT_EQ(logs_[0][i].slot, logs_[1][i].slot) << "event " << i;
    EXPECT_NEAR(logs_[0][i].clock, logs_[1][i].clock, 1e-9 * std::max(1.0, logs_[0][i].clock));
  }
}

TEST_F(ParallelStepTest, DisjointCoupledGroupsSweep) {
  // Two flops-only ptasks span zones {1,2} and {3,4}: no bytes means no
  // backbone links, so each ptask couples exactly its two zone shards and
  // the two groups are DISJOINT — the group partition must produce two
  // independent group solves that the lanes can run concurrently, while
  // intra-zone churn keeps every shard's local solver hot. The event log,
  // and the number of group solves, must match the serial run exactly.
  constexpr int kZones = 5;
  constexpr int kPerZone = 3;
  auto build = [] {
    Platform p;
    for (int z = 0; z < kZones; ++z) {
      ClusterZoneSpec zone;
      zone.name = "g" + std::to_string(z);
      zone.count = kPerZone;
      zone.host_speed = 1e9;
      zone.link_bandwidth = 1e8;
      p.add_cluster_zone(zone);
    }
    p.seal();
    return p;
  };
  auto run = [&](int threads) {
    sg::config::set(kCfgThreads, threads);
    Engine e(build());
    sg::config::set(kCfgThreads, 1);
    SweepResult r;
    r.thread_count = e.thread_count();
    auto start_ptask = [&](size_t slot, int za, int zb, int scale) {
      const std::vector<int> hosts{za * kPerZone, zb * kPerZone + 1};
      const std::vector<double> flops{1e7 * scale, 1.5e7 * scale};
      e.ptask_start(hosts, flops, {})->user_data = reinterpret_cast<void*>(slot + 1);
    };
    auto start_local = [&](size_t slot, int scale) {
      const int z = static_cast<int>(slot) % kZones;
      ActionPtr a = (slot % 2 == 0)
                        ? e.exec_start(z * kPerZone + 1, 4e6 * scale)
                        : e.comm_start(z * kPerZone, z * kPerZone + 2, 3e5 * scale);
      a->user_data = reinterpret_cast<void*>(slot + 1);
    };
    start_ptask(0, 1, 2, 1);
    start_ptask(1, 3, 4, 2);
    for (size_t slot = 2; slot < 12; ++slot)
      start_local(slot, 1 + static_cast<int>(slot) % 4);
    int spins = 0;
    while (static_cast<int>(r.log.size()) < 300) {
      const auto fired = e.run_until();
      if (++spins >= 100000) {
        ADD_FAILURE() << "sweep made no progress";
        break;
      }
      for (const auto& ev : fired) {
        const size_t k = reinterpret_cast<size_t>(ev.action->user_data);
        if (k == 0)
          continue;
        r.log.push_back({static_cast<int>(k - 1), ev.failed, e.now()});
        const int scale = 1 + static_cast<int>(r.log.size()) % 4;
        if (k == 1)
          start_ptask(0, 1, 2, scale);
        else if (k == 2)
          start_ptask(1, 3, 4, scale);
        else
          start_local(k - 1, scale);
      }
    }
    r.final_now = e.now();
    r.group_solves = e.sharing_system().group_solve_count();
    return r;
  };
  const SweepResult serial = run(1);
  ASSERT_EQ(serial.thread_count, 1);
  ASSERT_GT(serial.group_solves, 0u);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult par = run(threads);
    EXPECT_EQ(par.thread_count, std::min(threads, kZones + 1));
    // The group partition is lane-independent: same groups, same count.
    EXPECT_EQ(serial.group_solves, par.group_solves);
    expect_same_simulation(serial, par);
  }
}

TEST_F(ParallelStepTest, SameDateMultiShardBatch) {
  // Three zones, one exec each, all completing at EXACTLY t=1.0 — plus a
  // state trace killing the middle zone's host at exactly t=1.0, so that
  // exec fails while its neighbours complete. All shards share the target
  // date: one run_until() must advance them in a single batched fan-out and
  // deliver every event, in fixed shard order, at any thread count.
  constexpr int kZones = 3;
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Platform p;
    for (int z = 0; z < kZones; ++z) {
      ClusterZoneSpec zone;
      zone.name = "b" + std::to_string(z);
      zone.count = 2;
      zone.host_speed = 1e9;
      p.add_cluster_zone(zone);
    }
    p.host_mutable(2).state = sg::trace::Trace("die", {{0.0, 1.0}, {1.0, 0.0}}, -1.0);
    p.seal();
    sg::config::set(kCfgThreads, threads);
    Engine e(std::move(p));
    sg::config::set(kCfgThreads, 1);
    std::vector<ActionPtr> execs;
    for (int z = 0; z < kZones; ++z)
      execs.push_back(e.exec_start(z * 2, 1e9));  // completes at exactly 1.0
    const auto fired = e.run_until();
    EXPECT_DOUBLE_EQ(e.now(), 1.0);
    ASSERT_EQ(fired.size(), 3u) << "same-date shards must batch into one round";
    // Fixed shard order: zone 0, zone 1 (the failure), zone 2.
    EXPECT_EQ(fired[0].action.get(), execs[0].get());
    EXPECT_FALSE(fired[0].failed);
    EXPECT_EQ(fired[1].action.get(), execs[1].get());
    EXPECT_TRUE(fired[1].failed) << "equal-date trace event must beat the completion";
    EXPECT_EQ(fired[2].action.get(), execs[2].get());
    EXPECT_FALSE(fired[2].failed);
    for (int z = 0; z < kZones; ++z)
      EXPECT_DOUBLE_EQ(execs[static_cast<size_t>(z)]->finish_time(), 1.0);
  }
}

// ---------------------------------------------------------------------------
// The phase profiler (engine/profile)
// ---------------------------------------------------------------------------

TEST_F(ParallelStepTest, PhaseStatsSanity) {
  const bool prev_profile = sg::config::get(kCfgProfile);
  sg::config::set(kCfgProfile, true);
  sg::config::set(kCfgThreads, 2);
  Engine e(make_flapping_platform(3, 4));
  sg::config::set(kCfgThreads, 1);
  for (int h = 0; h < 12; ++h)
    e.exec_start(h, 1e6 * (1 + h % 3));
  for (int i = 0; i < 8; ++i)
    e.run_until();
  const Engine::PhaseStats s1 = e.phase_stats();
  EXPECT_GT(s1.rounds, 0u);
  EXPECT_GT(s1.events, 0u);
  EXPECT_GT(s1.total_ns, 0u);
  // The four phases tile each round's wall time exactly.
  const auto phase_sum = [](const Engine::PhaseStats& s) {
    return s.solve_ns + s.pick_ns + s.advance_ns + s.epilogue_ns;
  };
  EXPECT_LE(phase_sum(s1), s1.total_ns);
  EXPECT_GE(phase_sum(s1), s1.total_ns / 2);
  // Fanned-out wall time can never exceed total wall time...
  EXPECT_LE(s1.parallel_ns, s1.total_ns);
  // ...so the serial fraction is a proper fraction.
  EXPECT_GE(s1.serial_fraction(), 0.0);
  EXPECT_LE(s1.serial_fraction(), 1.0);
  ASSERT_EQ(s1.lane_busy_ns.size(), static_cast<size_t>(e.thread_count()));
  // Counters are cumulative: more rounds only grow them.
  for (int h = 0; h < 12; ++h)
    if (e.host_is_on(h))
      e.exec_start(h, 2e6);
  for (int i = 0; i < 8; ++i)
    e.run_until();
  const Engine::PhaseStats s2 = e.phase_stats();
  EXPECT_GE(s2.rounds, s1.rounds);
  EXPECT_GE(s2.events, s1.events);
  EXPECT_GE(s2.total_ns, s1.total_ns);
  EXPECT_GE(s2.solve_ns, s1.solve_ns);
  EXPECT_GE(s2.pick_ns, s1.pick_ns);
  EXPECT_GE(s2.advance_ns, s1.advance_ns);
  EXPECT_GE(s2.epilogue_ns, s1.epilogue_ns);
  EXPECT_GE(s2.parallel_ns, s1.parallel_ns);
  // Profiling off: zero overhead, zero stats.
  sg::config::set(kCfgProfile, false);
  Engine off(make_flapping_platform(2, 4));
  off.exec_start(0, 1e6);
  off.run_until();
  EXPECT_EQ(off.phase_stats().total_ns, 0u);
  EXPECT_EQ(off.phase_stats().rounds, 0u);
  sg::config::set(kCfgProfile, prev_profile);
}

TEST_F(ParallelStepTest, ThreadCountIsClampedToShardCount) {
  auto build = [](int zones) {
    Platform p;
    for (int z = 0; z < zones; ++z) {
      ClusterZoneSpec zone;
      zone.name = "c" + std::to_string(z);
      zone.count = 2;
      p.add_cluster_zone(zone);
    }
    p.seal();
    return p;
  };
  sg::config::set(kCfgThreads, 8);
  Engine e(build(2));  // 3 shards: backbone + 2 zones
  EXPECT_EQ(e.thread_count(), 3);
  sg::config::set(kCfgThreads, 8);
  Platform flat;
  flat.add_host("a", 1e9);
  flat.add_host("b", 1e9);
  flat.seal();
  Engine f(std::move(flat));  // single shard: nothing to parallelize
  EXPECT_EQ(f.thread_count(), 1);
  sg::config::set(kCfgThreads, 1);
}

// ---------------------------------------------------------------------------
// The codified tie-break: trace events BEFORE completions at the same date
// ---------------------------------------------------------------------------

TEST_F(ParallelStepTest, TraceEventBeatsCompletionAtTheSameDate) {
  // A 1e9-flop exec on a 1e9 flop/s host completes at exactly t=1.0; a state
  // trace kills the host at exactly t=1.0. Engine::kTraceEventsBeforeCompletions
  // says the host dies FIRST, so the exec must fail — at any thread count.
  for (int threads : {1, 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Platform p;
    sg::platform::HostSpec spec;
    spec.name = "h";
    spec.speed_flops = 1e9;
    spec.state = sg::trace::Trace("die", {{0.0, 1.0}, {1.0, 0.0}}, -1.0);
    p.add_host(spec);
    p.seal();
    sg::config::set(kCfgThreads, threads);
    Engine e(std::move(p));
    sg::config::set(kCfgThreads, 1);
    auto a = e.exec_start(0, 1e9);
    bool saw = false, failed = false;
    for (int i = 0; i < 10 && !saw; ++i)
      for (const auto& ev : e.run_until())
        if (ev.action.get() == a.get()) {
          saw = true;
          failed = ev.failed;
        }
    ASSERT_TRUE(saw);
    EXPECT_TRUE(failed) << "completion was delivered before the equal-date trace event";
    EXPECT_EQ(a->state(), ActionState::kFailed);
    EXPECT_DOUBLE_EQ(a->finish_time(), 1.0);
    EXPECT_FALSE(e.host_is_on(0));
  }
}

// ---------------------------------------------------------------------------
// run_until() semantics (the API the old step()/next_event_time() polling
// loop collapsed into)
// ---------------------------------------------------------------------------

TEST_F(ParallelStepTest, RunUntilJumpsToDeadlineWhenNothingFires) {
  Platform p;
  p.add_host("h", 1e9);
  p.seal();
  Engine e(std::move(p));
  // Nothing pending at all: +inf deadline must not move time.
  EXPECT_TRUE(e.run_until().empty());
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  // Finite deadline with nothing due: empty span, clock lands on it.
  EXPECT_TRUE(e.run_until(0.5).empty());
  EXPECT_DOUBLE_EQ(e.now(), 0.5);
  // An event beyond the deadline stays queued; the deadline wins.
  auto a = e.exec_start(0, 1e9);  // completes at 1.5
  EXPECT_TRUE(e.run_until(1.0).empty());
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
  const auto fired = e.run_until(10.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].action.get(), a.get());
  EXPECT_NEAR(e.now(), 1.5, 1e-9);
}

TEST_F(ParallelStepTest, RunUntilSpanStaysValidUntilNextCall) {
  Platform p;
  p.add_host("h", 1e9);
  p.seal();
  Engine e(std::move(p));
  e.exec_start(0, 1e8);
  e.exec_start(0, 1e8);
  const auto fired = e.run_until();
  ASSERT_EQ(fired.size(), 2u);
  // The span is a view into engine-owned storage: readable after the call...
  EXPECT_EQ(fired[0].action->state(), ActionState::kDone);
  // ...and the deprecated step() wrapper still returns an owning vector.
  e.exec_start(0, 1e8);
  const std::vector<ActionEvent> owned = e.step();
  EXPECT_EQ(owned.size(), 1u);
}

// ---------------------------------------------------------------------------
// The typed config registry
// ---------------------------------------------------------------------------

TEST(ConfigRegistryTest, TypedGettersReturnDeclaredValues) {
  declare_engine_config();
  sg::kernel::declare_context_config();
  EXPECT_GE(sg::config::get(kCfgTcpGamma), 0.0);
  // engine/threads defaults to 1 but the SG_THREADS env var seeds the
  // declared default (the CI TSan job runs this very test with SG_THREADS=4).
  const long threads = sg::config::get(kCfgThreads);
  if (const char* env = std::getenv("SG_THREADS"))
    EXPECT_EQ(threads, std::atol(env));
  else
    EXPECT_EQ(threads, 1);
  EXPECT_TRUE(sg::config::get(kCfgSharding));
  const std::string backend = sg::config::get(sg::kernel::kCfgContextBackend);
  EXPECT_TRUE(backend == "fiber" || backend == "thread") << backend;
  sg::config::set(kCfgThreads, 4);
  EXPECT_EQ(sg::config::get(kCfgThreads), 4);
  sg::config::set(kCfgThreads, 1);
}

TEST(ConfigRegistryTest, TypeMismatchThrows) {
  declare_engine_config();
  // engine/sharding is a flag; reading it through an IntKey is a bug in the
  // caller and must throw, not silently coerce.
  EXPECT_THROW(sg::config::get(sg::config::IntKey{"engine/sharding"}),
               sg::xbt::InvalidArgument);
  EXPECT_THROW(sg::config::get(sg::config::StringKey{"engine/threads"}),
               sg::xbt::InvalidArgument);
}

TEST(ConfigRegistryTest, UnknownKeyDiagnosticListsValidKeys) {
  declare_engine_config();
  try {
    sg::config::get(sg::config::FlagKey{"engine/no-such-key"});
    FAIL() << "expected InvalidArgument";
  } catch (const sg::xbt::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown config key: engine/no-such-key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("engine/sharding"), std::string::npos) << msg;
    EXPECT_NE(msg.find("engine/threads"), std::string::npos) << msg;
  }
}

TEST(ConfigRegistryTest, IntRangeIsEnforced) {
  declare_engine_config();
  EXPECT_THROW(sg::config::set(kCfgThreads, 0), sg::xbt::InvalidArgument);
  EXPECT_THROW(sg::config::set(kCfgThreads, 1000), sg::xbt::InvalidArgument);
  // The raw store (and --cfg passthrough) can hold any double; the typed
  // getter clamps instead of propagating a nonsense thread count.
  sg::xbt::Config::instance().set("engine/threads", 1e9);
  EXPECT_EQ(sg::config::get(kCfgThreads), 256);
  sg::xbt::Config::instance().set("engine/threads", -3.0);
  EXPECT_EQ(sg::config::get(kCfgThreads), 1);
  sg::config::set(kCfgThreads, 1);
}

TEST(ConfigRegistryTest, KeysEnumerationDocumentsEnvSeeds) {
  declare_engine_config();
  sg::kernel::declare_context_config();
  bool saw_threads = false, saw_backend = false;
  for (const auto& info : sg::config::keys()) {
    if (info.name == "engine/threads") {
      saw_threads = true;
      EXPECT_EQ(info.env, "SG_THREADS");
      EXPECT_EQ(info.type, sg::config::Type::kInt);
      EXPECT_FALSE(info.description.empty());
    }
    if (info.name == "contexts/backend") {
      saw_backend = true;
      EXPECT_EQ(info.env, "SG_CONTEXTS");
      EXPECT_EQ(info.type, sg::config::Type::kString);
    }
  }
  EXPECT_TRUE(saw_threads);
  EXPECT_TRUE(saw_backend);
}

TEST(ConfigRegistryTest, RawStringKeyedAccessKeepsWorking) {
  // The registry is a typed façade over xbt::Config: raw set/get on the same
  // storage must stay coherent with the typed accessors (existing call
  // sites and the --cfg command-line path use the raw store).
  declare_engine_config();
  auto& cfg = sg::xbt::Config::instance();
  cfg.set("engine/threads", 2.0);
  EXPECT_EQ(sg::config::get(kCfgThreads), 2);
  sg::config::set(kCfgThreads, 3);
  EXPECT_DOUBLE_EQ(cfg.get("engine/threads"), 3.0);
  sg::config::set(kCfgThreads, 1);
}

}  // namespace
