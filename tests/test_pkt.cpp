/// Tests for the packet-level TCP simulator, including mini validation runs
/// against the fluid (MaxMin) model — the paper's headline comparison.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "pkt/pkt.hpp"
#include "platform/builders.hpp"
#include "topo/brite.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::pkt;
using sg::platform::Platform;

class PktTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }
};

TEST_F(PktTest, SingleFlowSaturatesLink) {
  // 10 MB over a 1.25 MB/s link with small latency: goodput approaches
  // bandwidth * 1460/1500 (header overhead).
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 1e-3);
  PacketNet net(p, TcpParams::ns2());
  const int f = net.add_flow({0, 1, 1e7, 0.0});
  net.run();
  const auto& r = net.result(f);
  ASSERT_TRUE(r.finished);
  const double goodput_cap = 1.25e6 * 1460.0 / 1500.0;
  EXPECT_GT(r.throughput, goodput_cap * 0.9);
  EXPECT_LE(r.throughput, goodput_cap * 1.01);
}

TEST_F(PktTest, WindowLimitsLongFatPipe) {
  // 50 ms one-way: RTT ~0.1 s; rwnd 65536 -> rate ~ 655 KB/s even though the
  // link could do 12.5 MB/s.
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e7, 0.05);
  PacketNet net(p, TcpParams::ns2());
  const int f = net.add_flow({0, 1, 5e6, 0.0});
  net.run();
  const auto& r = net.result(f);
  ASSERT_TRUE(r.finished);
  const double window_rate = 65536.0 / 0.1;
  EXPECT_GT(r.throughput, window_rate * 0.75);
  EXPECT_LT(r.throughput, window_rate * 1.15);
}

TEST_F(PktTest, TwoFlowsShareFairlyWithLargeBuffers) {
  // When the bottleneck queue can hold both receive windows, neither flow
  // ever drops: both sit window-limited and share equally.
  TcpParams params = TcpParams::ns2();
  params.queue_limit_packets = 120;  // > 2 * rwnd/mss (2 * 45)
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 2e-3);
  PacketNet net(p, params);
  const int f1 = net.add_flow({0, 1, 5e6, 0.0});
  const int f2 = net.add_flow({0, 1, 5e6, 0.0});
  net.run();
  const auto& r1 = net.result(f1);
  const auto& r2 = net.result(f2);
  ASSERT_TRUE(r1.finished);
  ASSERT_TRUE(r2.finished);
  EXPECT_NEAR(r1.finish_time / r2.finish_time, 1.0, 0.25);
  const double total_time = std::max(r1.finish_time, r2.finish_time);
  const double goodput_cap = 1.25e6 * 1460.0 / 1500.0;
  EXPECT_NEAR(1e7 / total_time, goodput_cap, goodput_cap * 0.15);
}

TEST_F(PktTest, SmallBufferCaptureEffect) {
  // With a queue smaller than the sum of the windows, Reno exhibits the
  // classic capture effect: the established flow keeps a standing queue and
  // never drops, while the other loses repeatedly. The link still stays
  // busy, and both flows do complete.
  TcpParams params = TcpParams::ns2();
  params.queue_limit_packets = 50;
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 2e-3);
  PacketNet net(p, params);
  const int f1 = net.add_flow({0, 1, 5e6, 0.0});
  const int f2 = net.add_flow({0, 1, 5e6, 0.0});
  net.run();
  const auto& r1 = net.result(f1);
  const auto& r2 = net.result(f2);
  ASSERT_TRUE(r1.finished);
  ASSERT_TRUE(r2.finished);
  EXPECT_GT(net.total_drops(), 0);
  // Winner cruises loss-free; loser pays retransmits.
  const auto& winner = r1.finish_time < r2.finish_time ? r1 : r2;
  const auto& loser = r1.finish_time < r2.finish_time ? r2 : r1;
  EXPECT_EQ(winner.retransmits + winner.timeouts, 0);
  EXPECT_GT(loser.retransmits + loser.timeouts, 0);
  // Aggregate utilization remains high despite the unfairness.
  const double goodput_cap = 1.25e6 * 1460.0 / 1500.0;
  EXPECT_NEAR(1e7 / std::max(r1.finish_time, r2.finish_time), goodput_cap, goodput_cap * 0.2);
}

TEST_F(PktTest, CongestionCausesDropsAndRetransmits) {
  // Six aggressive flows through one modest link with a short queue.
  TcpParams params = TcpParams::ns2();
  params.queue_limit_packets = 10;
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 5e-3);
  PacketNet net(p, params);
  for (int i = 0; i < 6; ++i)
    net.add_flow({0, 1, 2e6, 0.0});
  net.run();
  EXPECT_GT(net.total_drops(), 0);
  long retransmits = 0;
  for (size_t i = 0; i < net.flow_count(); ++i)
    retransmits += net.result(static_cast<int>(i)).retransmits + net.result(static_cast<int>(i)).timeouts;
  EXPECT_GT(retransmits, 0);
  for (size_t i = 0; i < net.flow_count(); ++i)
    EXPECT_TRUE(net.result(static_cast<int>(i)).finished) << "flow " << i;
}

TEST_F(PktTest, StaggeredStartRespected) {
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 1e-3);
  PacketNet net(p, TcpParams::ns2());
  const int late = net.add_flow({0, 1, 1e6, 5.0});
  net.run();
  EXPECT_GT(net.result(late).finish_time, 5.0);
}

TEST_F(PktTest, Deterministic) {
  auto run_once = [] {
    Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 1e-3);
    PacketNet net(p, TcpParams::gtnets());
    net.add_flow({0, 1, 3e6, 0.0});
    net.add_flow({1, 0, 2e6, 0.5});
    net.run();
    return std::make_pair(net.result(0).finish_time, net.result(1).finish_time);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(PktTest, MultiHopRoute) {
  Platform p;
  auto a = p.add_host("a", 1e9);
  auto m = p.add_router("m");
  auto b = p.add_host("b", 1e9);
  auto l1 = p.add_link("l1", 1.25e6, 1e-3);
  auto l2 = p.add_link("l2", 2.5e6, 1e-3);
  p.add_edge(a, m, l1);
  p.add_edge(m, b, l2);
  p.seal();
  PacketNet net(p, TcpParams::ns2());
  const int f = net.add_flow({0, 1, 5e6, 0.0});
  net.run();
  const auto& r = net.result(f);
  ASSERT_TRUE(r.finished);
  // Bottleneck is l1.
  EXPECT_LT(r.throughput, 1.25e6);
  EXPECT_GT(r.throughput, 1.25e6 * 0.85);
}

TEST_F(PktTest, PresetsDiffer) {
  auto run_with = [](const TcpParams& params) {
    Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 1e-2);
    PacketNet net(p, params);
    net.add_flow({0, 1, 1e6, 0.0});
    net.run();
    return net.result(0).finish_time;
  };
  const double t_ns2 = run_with(TcpParams::ns2());
  const double t_gtnets = run_with(TcpParams::gtnets());
  EXPECT_NE(t_ns2, t_gtnets);          // different stacks, different details
  EXPECT_NEAR(t_ns2 / t_gtnets, 1.0, 0.35);  // ...but the same ballpark
}

TEST_F(PktTest, EventCountTracksTraffic) {
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 1e-3);
  PacketNet net(p, TcpParams::ns2());
  net.add_flow({0, 1, 1e6, 0.0});
  net.run();
  // ~685 data packets + acks, each with a couple of events.
  EXPECT_GT(net.events_processed(), 1000);
  EXPECT_GT(net.total_packets_forwarded(), 1000);
}

TEST_F(PktTest, LoopbackRejected) {
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 1e-3);
  PacketNet net(p, TcpParams::ns2());
  EXPECT_THROW(net.add_flow({0, 0, 100.0, 0.0}), sg::xbt::InvalidArgument);
}

// -- fluid-vs-packet agreement (the core of the validation experiment) -----------

double fluid_finish_time(const Platform& p, int src, int dst, double bytes) {
  Platform copy = p;
  sg::core::Engine engine(std::move(copy));
  auto comm = engine.comm_start(src, dst, bytes);
  while (comm->state() == sg::core::ActionState::kRunning)
    engine.step();
  return comm->finish_time();
}

TEST_F(PktTest, FluidMatchesPacketSingleLongFlow) {
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e6, 1e-3);
  const double bytes = 2e7;
  PacketNet net(p, TcpParams::ns2());
  net.add_flow({0, 1, bytes, 0.0});
  net.run();
  const double t_pkt = net.result(0).finish_time;
  const double t_fluid = fluid_finish_time(p, 0, 1, bytes);
  EXPECT_NEAR(t_fluid / t_pkt, 1.0, 0.15) << "fluid " << t_fluid << " pkt " << t_pkt;
}

TEST_F(PktTest, FluidMatchesPacketWindowLimited) {
  Platform p = sg::platform::make_dumbbell(1e9, 1.25e7, 0.05);
  const double bytes = 5e6;
  PacketNet net(p, TcpParams::ns2());
  net.add_flow({0, 1, bytes, 0.0});
  net.run();
  const double t_pkt = net.result(0).finish_time;
  const double t_fluid = fluid_finish_time(p, 0, 1, bytes);
  EXPECT_NEAR(t_fluid / t_pkt, 1.0, 0.2) << "fluid " << t_fluid << " pkt " << t_pkt;
}

TEST_F(PktTest, FluidMatchesPacketOnRandomTopology) {
  // Small version of the paper's validation experiment: Waxman topology,
  // 4 long flows, per-flow rate error fluid vs packet within 25%.
  sg::topo::WaxmanSpec spec;
  spec.n_nodes = 12;
  spec.seed = 7;
  spec.bw_min_Bps = 1.25e6;
  spec.bw_max_Bps = 6.25e6;
  Platform p = sg::topo::to_platform(sg::topo::generate_waxman(spec));

  sg::xbt::Rng rng(99);
  struct Pair { int src, dst; };
  std::vector<Pair> pairs;
  while (pairs.size() < 4) {
    int s = static_cast<int>(rng.uniform_int(0, 11));
    int d = static_cast<int>(rng.uniform_int(0, 11));
    if (s != d)
      pairs.push_back({s, d});
  }
  const double bytes = 1e7;

  PacketNet net(p, TcpParams::ns2());
  for (const auto& pair : pairs)
    net.add_flow({pair.src, pair.dst, bytes, 0.0});
  net.run();

  Platform copy = p;
  sg::core::Engine engine(std::move(copy));
  std::vector<sg::core::ActionPtr> comms;
  for (const auto& pair : pairs)
    comms.push_back(engine.comm_start(pair.src, pair.dst, bytes));
  for (int guard = 0; guard < 100000 && engine.running_action_count() > 0; ++guard)
    engine.step();

  for (size_t i = 0; i < pairs.size(); ++i) {
    const double rate_pkt = bytes / net.result(static_cast<int>(i)).finish_time;
    const double rate_fluid = bytes / comms[i]->finish_time();
    EXPECT_NEAR(rate_fluid / rate_pkt, 1.0, 0.25)
        << "flow " << i << ": fluid " << rate_fluid << " B/s vs pkt " << rate_pkt << " B/s";
  }
}

}  // namespace
