/// Tests for the execution tracer and Gantt rendering.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "msg/msg.hpp"
#include "platform/builders.hpp"
#include "viz/gantt.hpp"
#include "xbt/config.hpp"

namespace {

using namespace sg::viz;

class VizTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
  }
  void TearDown() override {
    sg::msg::MSG_clean();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }
};

TEST_F(VizTest, RecordsExecAndComm) {
  sg::core::Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  Tracer tracer(e);
  auto exec = e.exec_start(0, 1e9, 1.0, "work");
  auto comm = e.comm_start(0, 1, 5e7, -1.0, "xfer");
  while (e.running_action_count() > 0)
    e.step();
  (void)exec;
  (void)comm;
  // 1 exec interval + send + recv mirror = 3
  ASSERT_EQ(tracer.intervals().size(), 3u);
  int computes = 0, sends = 0, recvs = 0;
  for (const auto& iv : tracer.intervals()) {
    if (iv.kind == IntervalKind::kCompute) {
      ++computes;
      EXPECT_EQ(iv.host, 0);
      EXPECT_DOUBLE_EQ(iv.start, 0.0);
      EXPECT_DOUBLE_EQ(iv.end, 1.0);
    } else if (iv.kind == IntervalKind::kCommSend) {
      ++sends;
      EXPECT_EQ(iv.host, 0);
    } else if (iv.kind == IntervalKind::kCommRecv) {
      ++recvs;
      EXPECT_EQ(iv.host, 1);
    }
  }
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
  EXPECT_DOUBLE_EQ(tracer.horizon(), 1.0);
}

TEST_F(VizTest, AsciiRenderShape) {
  sg::core::Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  Tracer tracer(e);
  auto a = e.exec_start(0, 1e9);
  while (e.running_action_count() > 0)
    e.step();
  (void)a;
  const std::string chart = tracer.render_ascii(40);
  // Two host rows plus header.
  EXPECT_NE(chart.find("left"), std::string::npos);
  EXPECT_NE(chart.find("right"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);   // compute drawn
  EXPECT_NE(chart.find("|"), std::string::npos);
}

TEST_F(VizTest, CsvExport) {
  sg::core::Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  Tracer tracer(e);
  auto a = e.exec_start(0, 1e9, 1.0, "my-task");
  while (e.running_action_count() > 0)
    e.step();
  (void)a;
  const std::string csv = tracer.to_csv();
  EXPECT_NE(csv.find("host,name,kind,start,end"), std::string::npos);
  EXPECT_NE(csv.find("my-task"), std::string::npos);
  EXPECT_NE(csv.find("compute"), std::string::npos);
}

TEST_F(VizTest, EmptyTracerRenders) {
  sg::core::Engine e(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  Tracer tracer(e);
  EXPECT_EQ(tracer.render_ascii(), "(empty gantt)\n");
}

TEST_F(VizTest, MsgScenarioProducesPlausibleGantt) {
  // Mini version of the paper's figure via the MSG layer.
  using namespace sg::msg;
  MSG_init(sg::platform::make_client_server_lan(2, 1, 1e9, 1e9, 1e7, 1e-4));
  Tracer tracer(MSG_kernel().engine());
  for (int i = 0; i < 2; ++i) {
    MSG_process_create("client" + std::to_string(i + 1), [i] {
      m_task_t t = MSG_task_create("data", 1e8, 1e7);
      MSG_task_put(t, MSG_get_host_by_name("server1"), i);
    }, MSG_get_host_by_name("client" + std::to_string(i + 1)));
  }
  for (int i = 0; i < 2; ++i) {
    MSG_process_create("srv" + std::to_string(i), [i] {
      m_task_t t = nullptr;
      MSG_task_get(&t, i);
      MSG_task_execute(t);
      MSG_task_destroy(t);
    }, MSG_get_host_by_name("server1"));
  }
  MSG_main();
  // Two transfers (send+recv each) and two server executions.
  int computes = 0, sends = 0;
  for (const auto& iv : tracer.intervals()) {
    computes += iv.kind == IntervalKind::kCompute;
    sends += iv.kind == IntervalKind::kCommSend;
  }
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(sends, 2);
  tracer.detach();
}

}  // namespace
