/// Tests for GRAS: the same user code running in simulation mode (on the
/// kernel) and in real-world mode (threads + real TCP on localhost) — the
/// paper's headline feature.
#include <gtest/gtest.h>

#include <atomic>

#include "gras/gras.hpp"
#include "platform/builders.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::gras;
using sg::datadesc::Value;
using sg::datadesc::datadesc_by_name;

class GrasTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
    msgtype_declare("ping", datadesc_by_name("int"));
    msgtype_declare("pong", datadesc_by_name("int"));
  }
  void TearDown() override {
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }
};

/// The paper's ping-pong, written once and deployed twice (sim + real).
struct PingPongApp {
  std::atomic<int> received_pong{0};
  std::atomic<int> server_got{0};

  std::function<void()> client = [this] {
    os_sleep(0.1);  // wait for the server startup (as in the paper)
    auto peer = socket_client("server-host", 4000);
    msg_send(peer, "ping", Value(1234));
    Message m = msg_wait(6.0, "pong");
    received_pong = static_cast<int>(m.payload.as_int());
  };

  std::function<void()> server = [this] {
    cb_register("ping", [this](Message& m) {
      server_got = static_cast<int>(m.payload.as_int());
      msg_send(m.source, "pong", Value(static_cast<int>(m.payload.as_int()) + 1));
    });
    socket_server(4000);
    msg_handle(600.0);
  };
};

TEST_F(GrasTest, PingPongSimulationMode) {
  PingPongApp app;
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 1e-3));
  // Host names in the app are platform hosts; rename via a platform with the
  // right names.
  sg::platform::Platform p;
  auto a = p.add_host("client-host", 1e9);
  auto b = p.add_host("server-host", 1e9);
  p.add_route(a, b, {p.add_link("lan", 1.25e8, 1e-4)});
  SimWorld world2(std::move(p));
  world2.spawn("client", "client-host", app.client);
  world2.spawn("server", "server-host", app.server);
  const double t = world2.run();
  EXPECT_EQ(app.received_pong.load(), 1235);
  EXPECT_EQ(app.server_got.load(), 1234);
  EXPECT_GT(t, 0.1);  // at least the startup sleep
  EXPECT_LT(t, 1.0);  // LAN exchange is fast
}

TEST_F(GrasTest, PingPongRealWorldMode) {
  PingPongApp app;
  RealWorld world;
  world.spawn("server", "server-host", app.server);
  world.spawn("client", "client-host", app.client);
  world.join_all();
  EXPECT_EQ(app.received_pong.load(), 1235);
  EXPECT_EQ(app.server_got.load(), 1234);
}

TEST_F(GrasTest, SimTimedBySurf) {
  // One 1 MB message over a 1 MB/s link: the receiver sees it ~1s later.
  msgtype_declare("blob", datadesc_by_name("string"));
  sg::platform::Platform p;
  auto a = p.add_host("ha", 1e9);
  auto b = p.add_host("hb", 1e9);
  p.add_route(a, b, {p.add_link("slow", 1e6, 0.0)});
  SimWorld world(std::move(p));
  double received_at = -1;
  world.spawn("sender", "ha", [] {
    auto peer = socket_client("hb", 9);
    msg_send(peer, "blob", Value(std::string(1000000, 'x')));
  });
  world.spawn("receiver", "hb", [&] {
    socket_server(9);
    (void)msg_wait(30.0, "blob");
    received_at = os_time();
  });
  world.run();
  // ~1 MB (+ encoding overhead) at 1e6 B/s.
  EXPECT_GT(received_at, 0.9);
  EXPECT_LT(received_at, 1.3);
}

TEST_F(GrasTest, MsgWaitTimeoutSim) {
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  bool timed_out = false;
  double when = -1;
  world.spawn("lonely", "left", [&] {
    socket_server(1);
    try {
      (void)msg_wait(2.0, "ping");
    } catch (const sg::xbt::TimeoutException&) {
      timed_out = true;
      when = os_time();
    }
  });
  world.run();
  EXPECT_TRUE(timed_out);
  EXPECT_NEAR(when, 2.0, 1e-6);
}

TEST_F(GrasTest, MsgWaitTimeoutReal) {
  RealWorld world;
  std::atomic<bool> timed_out{false};
  world.spawn("lonely", "h", [&] {
    socket_server(1);
    try {
      (void)msg_wait(0.2, "ping");
    } catch (const sg::xbt::TimeoutException&) {
      timed_out = true;
    }
  });
  world.join_all();
  EXPECT_TRUE(timed_out);
}

TEST_F(GrasTest, OutOfOrderTypesAreBuffered) {
  // A "pong" arriving while waiting for "ping" must not be lost.
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  int got_ping = 0, got_pong = 0;
  world.spawn("receiver", "left", [&] {
    socket_server(5);
    Message ping = msg_wait(10.0, "ping");  // pong arrives first, gets buffered
    got_ping = static_cast<int>(ping.payload.as_int());
    Message pong = msg_wait(10.0, "pong");  // served from the buffer
    got_pong = static_cast<int>(pong.payload.as_int());
  });
  world.spawn("sender", "right", [&] {
    auto peer = socket_client("left", 5);
    msg_send(peer, "pong", Value(2));
    os_sleep(0.5);
    msg_send(peer, "ping", Value(1));
  });
  world.run();
  EXPECT_EQ(got_ping, 1);
  EXPECT_EQ(got_pong, 2);
}

TEST_F(GrasTest, ConnectToMissingServerFails) {
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  bool refused = false;
  world.spawn("client", "left", [&] {
    try {
      (void)socket_client("right", 404);
    } catch (const sg::xbt::NetworkFailureException&) {
      refused = true;
    }
  });
  world.run();
  EXPECT_TRUE(refused);
}

TEST_F(GrasTest, UnknownMessageTypeRejected) {
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  bool threw = false;
  world.spawn("a", "left", [&] {
    socket_server(1);
    try {
      msg_send(socket_client("left", 1), "undeclared-type", Value(1));
    } catch (const sg::xbt::InvalidArgument&) {
      threw = true;
    }
  });
  world.run();
  EXPECT_TRUE(threw);
}

TEST_F(GrasTest, PayloadShapeCheckedAtSend) {
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  bool threw = false;
  world.spawn("a", "left", [&] {
    socket_server(2);
    auto self_sock = socket_client("left", 2);
    try {
      msg_send(self_sock, "ping", Value("not an int"));
    } catch (const sg::xbt::InvalidArgument&) {
      threw = true;
    }
  });
  world.run();
  EXPECT_TRUE(threw);
}

TEST_F(GrasTest, BenchAlwaysInjectsSimTime) {
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  double sim_elapsed = -1;
  world.spawn("bencher", "left", [&] {
    const double t0 = os_time();
    GRAS_BENCH_ALWAYS_BEGIN();
    // A real computation whose duration gets measured and simulated.
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i)
      x = x * 1.0000001;
    GRAS_BENCH_ALWAYS_END();
    sim_elapsed = os_time() - t0;
  });
  world.run();
  EXPECT_GT(sim_elapsed, 0.0);  // some simulated time passed
  EXPECT_LT(sim_elapsed, 10.0);
}

TEST_F(GrasTest, BenchOnceRunsBlockOnlyOnce) {
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  int executions = 0;
  std::vector<double> durations;
  world.spawn("bencher", "left", [&] {
    for (int i = 0; i < 5; ++i) {
      const double t0 = os_time();
      GRAS_BENCH_ONCE_RUN_ONCE_BEGIN();
      ++executions;
      volatile double x = 1.0;
      for (int j = 0; j < 1000000; ++j)
        x = x * 1.0000001;
      GRAS_BENCH_ONCE_RUN_ONCE_END();
      durations.push_back(os_time() - t0);
    }
  });
  world.run();
  EXPECT_EQ(executions, 1);
  ASSERT_EQ(durations.size(), 5u);
  // Every pass gets charged (roughly) the recorded duration.
  for (double d : durations)
    EXPECT_GT(d, 0.0);
}

TEST_F(GrasTest, MsgHandleDispatchesToCallback) {
  SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  int handled = 0;
  world.spawn("server", "right", [&] {
    cb_register("ping", [&](Message& m) { handled = static_cast<int>(m.payload.as_int()); });
    socket_server(7);
    msg_handle(60.0);
  });
  world.spawn("client", "left", [&] {
    os_sleep(0.1);
    msg_send(socket_client("right", 7), "ping", Value(99));
  });
  world.run();
  EXPECT_EQ(handled, 99);
}

TEST_F(GrasTest, ApiOutsideProcessThrows) {
  EXPECT_THROW(os_time(), sg::xbt::InvalidArgument);
  EXPECT_THROW(socket_server(1), sg::xbt::InvalidArgument);
  EXPECT_THROW(msg_wait(1.0), sg::xbt::InvalidArgument);
}

TEST_F(GrasTest, RealWorldManyMessages) {
  msgtype_declare("count", datadesc_by_name("int"));
  RealWorld world;
  std::atomic<int> sum{0};
  world.spawn("server", "hs", [&] {
    socket_server(4100);
    for (int i = 0; i < 50; ++i) {
      Message m = msg_wait(10.0, "count");
      sum += static_cast<int>(m.payload.as_int());
    }
  });
  world.spawn("client", "hc", [&] {
    auto peer = socket_client("hs", 4100);
    for (int i = 1; i <= 50; ++i)
      msg_send(peer, "count", Value(i));
  });
  world.join_all();
  EXPECT_EQ(sum.load(), 50 * 51 / 2);
}

TEST_F(GrasTest, StructuredPayloadBothModes) {
  auto desc = sg::datadesc::DataDesc::struct_(
      "job", {{"id", datadesc_by_name("int")},
              {"sizes", sg::datadesc::DataDesc::dyn_array(datadesc_by_name("double"), "sizes")},
              {"tag", datadesc_by_name("string")}});
  msgtype_declare("job", desc);
  const Value job(sg::datadesc::ValueStruct{
      {"id", Value(7)},
      {"sizes", Value(sg::datadesc::ValueList{Value(1.5), Value(2.5)})},
      {"tag", Value("hello")},
  });

  // simulation
  {
    SimWorld world(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
    Value got;
    world.spawn("s", "left", [&] {
      socket_server(3);
      got = msg_wait(10.0, "job").payload;
    });
    world.spawn("c", "right", [&] {
      os_sleep(0.01);
      msg_send(socket_client("left", 3), "job", job);
    });
    world.run();
    EXPECT_EQ(got, job);
  }
  // real world
  {
    RealWorld world;
    Value got;
    world.spawn("s", "left", [&] {
      socket_server(3);
      got = msg_wait(10.0, "job").payload;
    });
    world.spawn("c", "right", [&] {
      msg_send(socket_client("left", 3), "job", job);
    });
    world.join_all();
    EXPECT_EQ(got, job);
  }
}

}  // namespace
