/// Tests for the BRITE-style Waxman topology generator and import/export.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "topo/brite.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::topo;

bool is_connected(const Topology& t) {
  if (t.nodes.empty())
    return true;
  std::vector<std::vector<int>> adj(t.nodes.size());
  for (const auto& e : t.edges) {
    adj[static_cast<size_t>(e.from)].push_back(e.to);
    adj[static_cast<size_t>(e.to)].push_back(e.from);
  }
  std::set<int> seen{0};
  std::queue<int> q;
  q.push(0);
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int v : adj[static_cast<size_t>(u)])
      if (seen.insert(v).second)
        q.push(v);
  }
  return seen.size() == t.nodes.size();
}

TEST(Waxman, NodeAndEdgeCounts) {
  WaxmanSpec spec;
  spec.n_nodes = 20;
  spec.m_edges_per_node = 2;
  const Topology t = generate_waxman(spec);
  EXPECT_EQ(t.nodes.size(), 20u);
  // node 1 adds 1 edge (only one candidate), others add 2.
  EXPECT_EQ(t.edges.size(), 1u + 18u * 2u);
}

TEST(Waxman, Deterministic) {
  WaxmanSpec spec;
  spec.n_nodes = 15;
  spec.seed = 99;
  const Topology a = generate_waxman(spec);
  const Topology b = generate_waxman(spec);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].from, b.edges[i].from);
    EXPECT_EQ(a.edges[i].to, b.edges[i].to);
    EXPECT_DOUBLE_EQ(a.edges[i].bandwidth_Bps, b.edges[i].bandwidth_Bps);
  }
}

TEST(Waxman, SeedsChangeTopology) {
  WaxmanSpec spec;
  spec.n_nodes = 15;
  spec.seed = 1;
  const Topology a = generate_waxman(spec);
  spec.seed = 2;
  const Topology b = generate_waxman(spec);
  bool differs = false;
  for (size_t i = 0; i < std::min(a.edges.size(), b.edges.size()); ++i)
    if (a.edges[i].from != b.edges[i].from || a.edges[i].to != b.edges[i].to)
      differs = true;
  EXPECT_TRUE(differs);
}

TEST(Waxman, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WaxmanSpec spec;
    spec.n_nodes = 30;
    spec.seed = seed;
    EXPECT_TRUE(is_connected(generate_waxman(spec))) << "seed " << seed;
  }
}

TEST(Waxman, BandwidthsWithinRange) {
  WaxmanSpec spec;
  spec.n_nodes = 25;
  spec.bw_min_Bps = 5e6;
  spec.bw_max_Bps = 6e6;
  const Topology t = generate_waxman(spec);
  for (const auto& e : t.edges) {
    EXPECT_GE(e.bandwidth_Bps, 5e6);
    EXPECT_LE(e.bandwidth_Bps, 6e6);
    EXPECT_GT(e.latency_s, 0.0);
  }
}

TEST(Waxman, RejectsTinyGraphs) {
  WaxmanSpec spec;
  spec.n_nodes = 1;
  EXPECT_THROW(generate_waxman(spec), sg::xbt::InvalidArgument);
}

TEST(Brite, ExportImportRoundTrip) {
  WaxmanSpec spec;
  spec.n_nodes = 12;
  const Topology t = generate_waxman(spec);
  const Topology u = import_brite(export_brite(t));
  ASSERT_EQ(u.nodes.size(), t.nodes.size());
  ASSERT_EQ(u.edges.size(), t.edges.size());
  for (size_t i = 0; i < t.edges.size(); ++i) {
    EXPECT_EQ(u.edges[i].from, t.edges[i].from);
    EXPECT_EQ(u.edges[i].to, t.edges[i].to);
    EXPECT_NEAR(u.edges[i].bandwidth_Bps, t.edges[i].bandwidth_Bps, 1.0);
    EXPECT_NEAR(u.edges[i].latency_s, t.edges[i].latency_s, 1e-9);
  }
}

TEST(Brite, ImportRejectsGarbage) {
  EXPECT_THROW(import_brite("no sections here"), sg::xbt::InvalidArgument);
  EXPECT_THROW(import_brite("Nodes: (1)\nbroken"), sg::xbt::InvalidArgument);
}

TEST(Brite, ToPlatform) {
  WaxmanSpec spec;
  spec.n_nodes = 10;
  const Topology t = generate_waxman(spec);
  auto p = to_platform(t, "n", 2e9);
  EXPECT_EQ(p.host_count(), 10u);
  EXPECT_EQ(p.link_count(), t.edges.size());
  EXPECT_DOUBLE_EQ(p.host(3).speed_flops, 2e9);
  // Connectivity carried over: all host pairs reachable.
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j)
      EXPECT_TRUE(p.reachable(i, j));
}

}  // namespace
