/// Unit tests for the xbt base toolbox: logging, deterministic RNG, string
/// helpers, unit parsing, and the config store.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"
#include "xbt/units.hpp"

namespace {

using namespace sg::xbt;

// -- logging ------------------------------------------------------------------

TEST(Log, LevelParsing) {
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::debug);
  EXPECT_EQ(log_level_from_string("VERBOSE"), LogLevel::verbose);
  EXPECT_EQ(log_level_from_string("warn"), LogLevel::warning);
  EXPECT_EQ(log_level_from_string("off"), LogLevel::off);
  EXPECT_EQ(log_level_from_string("bogus"), LogLevel::info);
}

TEST(Log, CategoryThresholds) {
  LogCategory cat("log_test_cat");
  EXPECT_FALSE(cat.enabled(LogLevel::debug));  // default threshold is info
  EXPECT_TRUE(cat.enabled(LogLevel::error));
  log_control_set("log_test_cat", LogLevel::debug);
  EXPECT_TRUE(cat.enabled(LogLevel::debug));
  log_control_set("log_test_cat", LogLevel::off);
  EXPECT_FALSE(cat.enabled(LogLevel::critical));
}

TEST(Log, ControlSpecString) {
  LogCategory cat("log_test_spec");
  log_control_apply("log_test_spec:error");
  EXPECT_FALSE(cat.enabled(LogLevel::warning));
  EXPECT_TRUE(cat.enabled(LogLevel::error));
}

// -- rng ------------------------------------------------------------------------

TEST(Rng, DeterministicSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64())
      ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01Range) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.05);
}

// -- strings ----------------------------------------------------------------------

TEST(Str, Split) {
  auto v = split("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[2], "");
  auto w = split("a,b,,c", ',', /*skip_empty=*/true);
  ASSERT_EQ(w.size(), 3u);
}

TEST(Str, SplitWs) {
  auto v = split_ws("  foo \t bar\nbaz ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "foo");
  EXPECT_EQ(v[2], "baz");
}

TEST(Str, TrimAndCase) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(Str, Affixes) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
}

TEST(Str, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 1.2345), "1.23");
}

// -- units -----------------------------------------------------------------------

TEST(Units, Speed) {
  EXPECT_DOUBLE_EQ(parse_speed("1000"), 1000.0);
  EXPECT_DOUBLE_EQ(parse_speed("2Gf"), 2e9);
  EXPECT_DOUBLE_EQ(parse_speed("100Mf"), 1e8);
  EXPECT_THROW(parse_speed("3zips"), InvalidArgument);
}

TEST(Units, Bandwidth) {
  EXPECT_DOUBLE_EQ(parse_bandwidth("125MBps"), 1.25e8);
  EXPECT_DOUBLE_EQ(parse_bandwidth("1Gbps"), 1.25e8);  // bits -> bytes
  EXPECT_DOUBLE_EQ(parse_bandwidth("1KiBps"), 1024.0);
  EXPECT_THROW(parse_bandwidth("5lightyears"), InvalidArgument);
}

TEST(Units, Time) {
  EXPECT_DOUBLE_EQ(parse_time("10ms"), 0.01);
  EXPECT_DOUBLE_EQ(parse_time("50us"), 5e-5);
  EXPECT_DOUBLE_EQ(parse_time("2h"), 7200.0);
  EXPECT_DOUBLE_EQ(parse_time("0.5"), 0.5);
}

TEST(Units, Size) {
  EXPECT_DOUBLE_EQ(parse_size("3.2MB"), 3.2e6);
  EXPECT_DOUBLE_EQ(parse_size("10KiB"), 10240.0);
  EXPECT_DOUBLE_EQ(parse_size("8b"), 1.0);  // bits
  EXPECT_THROW(parse_size(""), InvalidArgument);
}

// -- config -----------------------------------------------------------------------

TEST(Config, DeclareGetSet) {
  Config cfg;
  cfg.declare("x/y", 3.5, "test key");
  EXPECT_DOUBLE_EQ(cfg.get("x/y"), 3.5);
  cfg.set("x/y", 4.0);
  EXPECT_DOUBLE_EQ(cfg.get("x/y"), 4.0);
  cfg.declare("x/y", 99.0);  // re-declare keeps current value
  EXPECT_DOUBLE_EQ(cfg.get("x/y"), 4.0);
}

TEST(Config, UnknownKeyThrows) {
  Config cfg;
  EXPECT_THROW(cfg.get("nope"), InvalidArgument);
  EXPECT_THROW(cfg.set("nope", 1.0), InvalidArgument);
}

TEST(Config, StringsAndApply) {
  Config cfg;
  cfg.declare("a", 1.0);
  cfg.declare_string("mode", "fluid");
  cfg.apply("a:2.5,mode:packet");
  EXPECT_DOUBLE_EQ(cfg.get("a"), 2.5);
  EXPECT_EQ(cfg.get_string("mode"), "packet");
  EXPECT_THROW(cfg.apply("bogus"), InvalidArgument);
}

}  // namespace
