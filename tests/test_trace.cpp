/// Unit tests for trace parsing and replay (availability / failure traces).
#include <gtest/gtest.h>

#include "trace/trace.hpp"
#include "xbt/exception.hpp"

namespace {

using sg::trace::Trace;
using sg::trace::TracePoint;

TEST(Trace, ParseBasic) {
  const Trace t = Trace::parse("t", "# comment\n0.0 1.0\n5.0 0.5\n10 0.8\n");
  ASSERT_EQ(t.points().size(), 3u);
  EXPECT_DOUBLE_EQ(t.points()[1].time, 5.0);
  EXPECT_DOUBLE_EQ(t.points()[1].value, 0.5);
  EXPECT_LT(t.periodicity(), 0);
}

TEST(Trace, ParsePeriodicity) {
  const Trace t = Trace::parse("t", "PERIODICITY 10\n0 1\n5 0\n");
  EXPECT_DOUBLE_EQ(t.periodicity(), 10.0);
  EXPECT_DOUBLE_EQ(t.horizon(), 10.0);
}

TEST(Trace, ParseRejectsDecreasingTimestamps) {
  EXPECT_THROW(Trace::parse("t", "5 1\n0 2\n"), sg::xbt::InvalidArgument);
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_THROW(Trace::parse("t", "1 2 3\n"), sg::xbt::InvalidArgument);
  EXPECT_THROW(Trace::parse("t", "PERIODICITY\n"), sg::xbt::InvalidArgument);
}

TEST(Trace, PointsBeyondPeriodRejected) {
  EXPECT_THROW(Trace::parse("t", "PERIODICITY 10\n0 1\n15 0\n"), sg::xbt::InvalidArgument);
}

TEST(Trace, ValueAtStepFunction) {
  const Trace t = Trace::parse("t", "0 1.0\n5 0.5\n10 0.8\n");
  EXPECT_DOUBLE_EQ(t.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(4.999), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(t.value_at(9.0), 0.5);
  EXPECT_DOUBLE_EQ(t.value_at(100.0), 0.8);  // holds last value
}

TEST(Trace, ValueAtPeriodic) {
  const Trace t = Trace::parse("t", "PERIODICITY 10\n0 1\n5 0.5\n");
  EXPECT_DOUBLE_EQ(t.value_at(2.0), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(7.0), 0.5);
  EXPECT_DOUBLE_EQ(t.value_at(12.0), 1.0);   // wrapped
  EXPECT_DOUBLE_EQ(t.value_at(17.0), 0.5);
  EXPECT_DOUBLE_EQ(t.value_at(100.0), 1.0);  // 100 mod 10 == 0
}

TEST(Trace, NextEventNonPeriodic) {
  const Trace t = Trace::parse("t", "0 1\n5 0.5\n10 0.8\n");
  auto e = t.next_event_after(0.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 5.0);
  EXPECT_DOUBLE_EQ(e->value, 0.5);
  e = t.next_event_after(5.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 10.0);
  EXPECT_FALSE(t.next_event_after(10.0).has_value());
}

TEST(Trace, NextEventPeriodicWraps) {
  const Trace t = Trace::parse("t", "PERIODICITY 10\n0 1\n5 0.5\n");
  auto e = t.next_event_after(5.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 10.0);  // next period's first point
  EXPECT_DOUBLE_EQ(e->value, 1.0);
  e = t.next_event_after(12.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 15.0);
  EXPECT_DOUBLE_EQ(e->value, 0.5);
}

TEST(Trace, EventSequenceIsMonotone) {
  const Trace t = sg::trace::square_wave("w", 1.0, 3.0, 0.0, 2.0);
  double now = 0.0;
  for (int i = 0; i < 20; ++i) {
    auto e = t.next_event_after(now);
    ASSERT_TRUE(e.has_value());
    EXPECT_GT(e->time, now);
    now = e->time;
  }
  EXPECT_DOUBLE_EQ(now, 50.0);  // 20 alternations of a 5s period, 2 events each
}

TEST(Trace, EmptyTraceIsAlwaysOne) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.value_at(123.0), 1.0);
  EXPECT_FALSE(t.next_event_after(0.0).has_value());
}

TEST(Trace, ConstantBuilder) {
  const Trace t = sg::trace::constant_trace("c", 0.25);
  EXPECT_DOUBLE_EQ(t.value_at(0.0), 0.25);
  EXPECT_DOUBLE_EQ(t.value_at(1e9), 0.25);
  EXPECT_FALSE(t.next_event_after(0.0).has_value());
}

TEST(Trace, SquareWaveBuilder) {
  const Trace t = sg::trace::square_wave("w", 1.0, 4.0, 0.0, 6.0);
  EXPECT_DOUBLE_EQ(t.periodicity(), 10.0);
  EXPECT_DOUBLE_EQ(t.value_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.value_at(11.0), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(15.0), 0.0);
}

TEST(Trace, NextEventAfterAlwaysStrictlyAdvances) {
  // Regression: for a periodic trace whose point times are not exactly
  // representable (0.6 here), `base + point` can round back onto the query
  // time after a few periods; next_event_after then returned its own input
  // and a caller chaining events (the engine's trace scheduler) span
  // forever at constant simulated time.
  sg::trace::Trace tr("s", {{0.0, 0.0}, {0.6, 1.0}, {2.9, 0.0}}, 3.0);
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    auto next = tr.next_event_after(t);
    ASSERT_TRUE(next.has_value());
    ASSERT_GT(next->time, t) << "event " << i << " did not advance";
    t = next->time;
  }
  EXPECT_GT(t, 900.0);  // ~3 events per 3-second period
}

}  // namespace
