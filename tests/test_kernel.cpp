/// Tests for the simulation kernel: actor scheduling, rendezvous
/// communication, timeouts, suspension, kills, failures, restarts.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "platform/builders.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::kernel;
using sg::platform::Platform;

class KernelTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
  }
  void TearDown() override {
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }

  static Platform two_hosts() { return sg::platform::make_dumbbell(1e9, 1e8, 0.0); }
};

TEST_F(KernelTest, SingleActorRuns) {
  Kernel k(two_hosts());
  bool ran = false;
  k.spawn("a", 0, [&] { ran = true; });
  k.run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(k.deadlocked());
}

TEST_F(KernelTest, ExecuteAdvancesClock) {
  Kernel k(two_hosts());
  double end_time = -1;
  k.spawn("a", 0, [&] {
    k.execute(2e9);
    end_time = k.now();
  });
  k.run();
  EXPECT_DOUBLE_EQ(end_time, 2.0);
}

TEST_F(KernelTest, SleepOrdering) {
  Kernel k(two_hosts());
  std::vector<std::string> order;
  k.spawn("slow", 0, [&] {
    k.sleep_for(2.0);
    order.push_back("slow");
  });
  k.spawn("fast", 1, [&] {
    k.sleep_for(1.0);
    order.push_back("fast");
  });
  const double end = k.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "fast");
  EXPECT_EQ(order[1], "slow");
  EXPECT_DOUBLE_EQ(end, 2.0);
}

TEST_F(KernelTest, SendRecvTransfersPayloadAndTime) {
  Kernel k(two_hosts());
  int value = 42;
  void* received = nullptr;
  double recv_time = -1;
  ActorId src_id = -1;
  ActorId sender_id = k.spawn("sender", 0, [&] { k.send("mb", &value, 1e8); });
  k.spawn("receiver", 1, [&] {
    received = k.recv("mb", -1.0, &src_id);
    recv_time = k.now();
  });
  k.run();
  EXPECT_EQ(received, &value);
  EXPECT_DOUBLE_EQ(recv_time, 1.0);  // 1e8 bytes at 1e8 B/s
  EXPECT_EQ(src_id, sender_id);
}

TEST_F(KernelTest, RendezvousWaitsForBothSides) {
  Kernel k(two_hosts());
  double send_done = -1;
  k.spawn("sender", 0, [&] {
    k.send("mb", nullptr, 1e8);
    send_done = k.now();
  });
  k.spawn("receiver", 1, [&] {
    k.sleep_for(5.0);  // receiver arrives late
    k.recv("mb");
  });
  k.run();
  EXPECT_DOUBLE_EQ(send_done, 6.0);  // 5s wait + 1s transfer
}

TEST_F(KernelTest, RecvTimeoutThrows) {
  Kernel k(two_hosts());
  bool timed_out = false;
  double when = -1;
  k.spawn("receiver", 0, [&] {
    try {
      k.recv("empty", 0.5);
    } catch (const sg::xbt::TimeoutException&) {
      timed_out = true;
      when = k.now();
    }
  });
  k.run();
  EXPECT_TRUE(timed_out);
  EXPECT_DOUBLE_EQ(when, 0.5);
}

TEST_F(KernelTest, SendTimeoutThrows) {
  Kernel k(two_hosts());
  bool timed_out = false;
  k.spawn("sender", 0, [&] {
    try {
      k.send("nobody", nullptr, 100.0, /*timeout=*/1.5);
    } catch (const sg::xbt::TimeoutException&) {
      timed_out = true;
    }
  });
  k.run();
  EXPECT_TRUE(timed_out);
}

TEST_F(KernelTest, TimeoutMidTransferCancelsPeer) {
  // Tiny timeout on the receiver expires while the (huge) transfer is in
  // flight; the sender sees a network failure.
  Kernel k(two_hosts());
  bool recv_timeout = false;
  bool send_failed = false;
  k.spawn("sender", 0, [&] {
    try {
      k.send("mb", nullptr, 1e12);
    } catch (const sg::xbt::NetworkFailureException&) {
      send_failed = true;
    }
  });
  k.spawn("receiver", 1, [&] {
    try {
      k.recv("mb", 2.0);
    } catch (const sg::xbt::TimeoutException&) {
      recv_timeout = true;
    }
  });
  k.run();
  EXPECT_TRUE(recv_timeout);
  EXPECT_TRUE(send_failed);
}

TEST_F(KernelTest, DetachedSendDelivers) {
  Kernel k(two_hosts());
  double sender_free_at = -1;
  void* got = nullptr;
  int value = 7;
  k.spawn("sender", 0, [&] {
    k.send_detached("mb", &value, 1e8);
    sender_free_at = k.now();  // immediately free
  });
  k.spawn("receiver", 1, [&] { got = k.recv("mb"); });
  k.run();
  EXPECT_DOUBLE_EQ(sender_free_at, 0.0);
  EXPECT_EQ(got, &value);
}

TEST_F(KernelTest, AsyncCommsOverlap) {
  Kernel k(two_hosts());
  double done_at = -1;
  k.spawn("sender", 0, [&] {
    auto c1 = k.send_async("mb1", nullptr, 1e8);
    auto c2 = k.send_async("mb2", nullptr, 1e8);
    k.comm_wait(c1);
    k.comm_wait(c2);
    done_at = k.now();
  });
  k.spawn("receiver", 1, [&] {
    auto c1 = k.recv_async("mb1");
    auto c2 = k.recv_async("mb2");
    k.comm_wait(c2);
    k.comm_wait(c1);
  });
  k.run();
  // The two transfers share the link: 2 x 1e8 bytes at 1e8 B/s total = 2s.
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST_F(KernelTest, CommTestPolling) {
  Kernel k(two_hosts());
  int polls = 0;
  k.spawn("sender", 0, [&] {
    k.sleep_for(1.0);
    k.send("mb", nullptr, 1e8);
  });
  k.spawn("receiver", 1, [&] {
    auto c = k.recv_async("mb");
    while (!k.comm_test(c)) {
      ++polls;
      k.sleep_for(0.5);
    }
  });
  k.run();
  EXPECT_GE(polls, 3);  // ~4 polls: transfer ends at t=2
}

TEST_F(KernelTest, SuspendResumeActor) {
  Kernel k(two_hosts());
  double end_time = -1;
  ActorId worker = k.spawn("worker", 0, [&] {
    k.execute(2e9);  // 2s of work
    end_time = k.now();
  });
  k.spawn("controller", 1, [&] {
    k.sleep_for(1.0);
    k.suspend(worker);
    k.sleep_for(3.0);
    k.resume(worker);
  });
  k.run();
  // 1s of work, 3s frozen, 1s of work.
  EXPECT_DOUBLE_EQ(end_time, 5.0);
}

TEST_F(KernelTest, SelfSuspendUntilResumed) {
  Kernel k(two_hosts());
  double resumed_at = -1;
  ActorId sleeper = k.spawn("sleeper", 0, [&] {
    k.suspend(k.self()->id());
    resumed_at = k.now();
  });
  k.spawn("waker", 1, [&] {
    k.sleep_for(2.5);
    k.resume(sleeper);
  });
  k.run();
  EXPECT_DOUBLE_EQ(resumed_at, 2.5);
}

TEST_F(KernelTest, KillActorRunsRaii) {
  Kernel k(two_hosts());
  bool cleaned_up = false;
  struct Raii {
    bool* flag;
    ~Raii() { *flag = true; }
  };
  ActorId victim = k.spawn("victim", 0, [&] {
    Raii raii{&cleaned_up};
    k.sleep_for(100.0);
  });
  k.spawn("killer", 1, [&] {
    k.sleep_for(1.0);
    k.kill(victim);
  });
  const double end = k.run();
  EXPECT_TRUE(cleaned_up);
  EXPECT_DOUBLE_EQ(end, 1.0);
  EXPECT_FALSE(k.is_alive(victim));
}

TEST_F(KernelTest, KillWakesBlockedPeer) {
  Kernel k(two_hosts());
  bool peer_failed = false;
  ActorId receiver = k.spawn("receiver", 1, [&] { k.recv("mb"); });
  k.spawn("sender", 0, [&] {
    try {
      k.send("mb", nullptr, 1e12);  // huge transfer
    } catch (const sg::xbt::NetworkFailureException&) {
      peer_failed = true;
    }
  });
  k.spawn("killer", 0, [&] {
    k.sleep_for(1.0);
    k.kill(receiver);
  });
  k.run();
  EXPECT_TRUE(peer_failed);
}

TEST_F(KernelTest, ExitSelfTerminates) {
  Kernel k(two_hosts());
  bool after = false;
  k.spawn("quitter", 0, [&] {
    k.exit_self();
    after = true;  // must not run
  });
  k.run();
  EXPECT_FALSE(after);
}

TEST_F(KernelTest, HostFailureKillsResidents) {
  Kernel k(two_hosts());
  bool failure_flagged = false;
  ActorId victim = k.spawn("victim", 0, [&] { k.execute(1e15); });
  k.actor(victim)->on_exit([&](bool failed) { failure_flagged = failed; });
  k.spawn("controller", 1, [&] {
    k.sleep_for(1.0);
    k.host_off(0);
  });
  k.run();
  EXPECT_FALSE(k.is_alive(victim));
  EXPECT_TRUE(failure_flagged);
}

TEST_F(KernelTest, AutoRestartAfterReboot) {
  Kernel k(two_hosts());
  int runs = 0;
  k.spawn("phoenix", 0,
          [&] {
            ++runs;
            Kernel::current()->sleep_for(50.0);
          },
          /*daemon=*/true, /*auto_restart=*/true);
  k.spawn("controller", 1, [&] {
    k.sleep_for(1.0);
    k.host_off(0);
    k.sleep_for(1.0);
    k.host_on(0);
    k.sleep_for(1.0);
  });
  k.run();
  EXPECT_EQ(runs, 2);
}

TEST_F(KernelTest, DaemonsDoNotBlockTermination) {
  Kernel k(two_hosts());
  k.spawn("daemon", 0, [&] {
    while (true)
      k.sleep_for(1.0);
  }, /*daemon=*/true);
  double end_time = -1;
  k.spawn("main", 1, [&] {
    k.sleep_for(2.5);
    end_time = k.now();
  });
  k.run();
  EXPECT_DOUBLE_EQ(end_time, 2.5);
}

TEST_F(KernelTest, DeadlockDetected) {
  Kernel k(two_hosts());
  k.spawn("stuck", 0, [&] { k.recv("never"); });
  k.run();
  EXPECT_TRUE(k.deadlocked());
}

TEST_F(KernelTest, SpawnOnDeadHostThrows) {
  Kernel k(two_hosts());
  k.engine().set_host_state(0, false);
  EXPECT_THROW(k.spawn("x", 0, [] {}), sg::xbt::HostFailureException);
  EXPECT_THROW(k.spawn("x", 99, [] {}), sg::xbt::InvalidArgument);
}

TEST_F(KernelTest, DynamicSpawnFromActor) {
  Kernel k(two_hosts());
  std::vector<int> order;
  k.spawn("parent", 0, [&] {
    order.push_back(1);
    k.spawn("child", 1, [&] { order.push_back(2); });
    k.sleep_for(1.0);
    order.push_back(3);
  });
  k.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST_F(KernelTest, YieldInterleavesActors) {
  Kernel k(two_hosts());
  std::vector<std::string> order;
  k.spawn("a", 0, [&] {
    order.push_back("a1");
    k.yield_now();
    order.push_back("a2");
  });
  k.spawn("b", 1, [&] {
    order.push_back("b1");
    k.yield_now();
    order.push_back("b2");
  });
  k.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "a1");
  EXPECT_EQ(order[1], "b1");
  EXPECT_EQ(order[2], "a2");
  EXPECT_EQ(order[3], "b2");
}

TEST_F(KernelTest, DeterministicReplay) {
  auto run_once = [this]() {
    Kernel k(two_hosts());
    std::vector<double> times;
    for (int i = 0; i < 5; ++i) {
      k.spawn("w" + std::to_string(i), i % 2, [&, i] {
        k.execute(1e8 * (i + 1));
        k.send("sink", nullptr, 1e6 * (i + 1));
      });
    }
    k.spawn("sink", 0, [&] {
      for (int i = 0; i < 5; ++i) {
        k.recv("sink");
        times.push_back(k.now());
      }
    });
    k.run();
    return times;
  };
  const auto t1 = run_once();
  const auto t2 = run_once();
  ASSERT_EQ(t1.size(), 5u);
  EXPECT_EQ(t1, t2);
}

TEST_F(KernelTest, ExecutePriorityFavorsHighWeight) {
  Kernel k(two_hosts());
  double hi_done = -1, lo_done = -1;
  k.spawn("hi", 0, [&] {
    k.execute(1e9, 3.0);
    hi_done = k.now();
  });
  k.spawn("lo", 0, [&] {
    k.execute(1e9, 1.0);
    lo_done = k.now();
  });
  k.run();
  EXPECT_NEAR(hi_done, 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(lo_done, 2.0, 1e-9);
}

TEST_F(KernelTest, ParallelExecute) {
  Kernel k(two_hosts());
  double done = -1;
  k.spawn("p", 0, [&] {
    k.execute_parallel({0, 1}, {1e9, 1e9}, {{0.0, 1e8}, {0.0, 0.0}});
    done = k.now();
  });
  k.run();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST_F(KernelTest, UncaughtActorExceptionIsContained) {
  Kernel k(two_hosts());
  k.spawn("thrower", 0, [] { throw std::runtime_error("boom"); });
  bool other_ran = false;
  k.spawn("other", 1, [&] {
    Kernel::current()->sleep_for(1.0);
    other_ran = true;
  });
  k.run();  // must not crash
  EXPECT_TRUE(other_ran);
}

}  // namespace
