/// Tests for the sharded simulation core: the ShardedMaxMin façade (per-zone
/// solver shards, cross-shard variables as linked replicas, joint group
/// solves), the per-shard event heaps, and the engine-level guarantee that
/// sharding never changes results — rates, completion order, and clocks match
/// an unsharded engine to 1e-9 on random mixed zone platforms under churn and
/// fault flaps, including cross-zone flows spanning >= 3 shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "platform/platform.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"

namespace {

using namespace sg::core;
using sg::platform::ClusterZoneSpec;
using sg::platform::LinkId;
using sg::platform::Platform;
using sg::platform::SharingPolicy;

// ---------------------------------------------------------------------------
// ShardedMaxMin unit behaviour
// ---------------------------------------------------------------------------

TEST(ShardedMaxMin, SingleShardBehavesLikeGlobalSystem) {
  ShardedMaxMin sys(1);
  const auto cpu = sys.new_constraint(100.0);
  const auto a = sys.new_variable(1.0);
  const auto b = sys.new_variable(3.0);
  sys.expand(cpu, a);
  sys.expand(cpu, b);
  sys.solve();
  EXPECT_NEAR(sys.value(a), 25.0, 1e-9);
  EXPECT_NEAR(sys.value(b), 75.0, 1e-9);
  EXPECT_NEAR(sys.usage(cpu), 100.0, 1e-9);
  EXPECT_EQ(sys.variable_shard_span(a), 1);
  EXPECT_EQ(sys.group_solve_count(), 0u);
}

TEST(ShardedMaxMin, DetachedVariableGetsUnconstrainedRate) {
  ShardedMaxMin sys(3);
  const auto v = sys.new_variable(2.0);
  EXPECT_EQ(sys.variable_shard_span(v), 0);
  EXPECT_TRUE(sys.needs_solve());
  sys.solve();
  EXPECT_GE(sys.value(v), ShardedMaxMin::kUnlimited);
  sys.set_weight(v, 0.0);
  sys.solve();
  EXPECT_EQ(sys.value(v), 0.0);
}

TEST(ShardedMaxMin, CrossShardVariableCouplesItsShards) {
  // One flow crossing three shards: zone 1 uplink, backbone WAN, zone 2
  // downlink. The allocation must respect the tightest constraint wherever
  // it lives, and all shards must agree on the value.
  ShardedMaxMin sys(3);
  const auto up = sys.new_constraint_in(1, 100.0);
  const auto wan = sys.new_constraint_in(0, 40.0);
  const auto down = sys.new_constraint_in(2, 100.0);
  const auto flow = sys.new_variable(1.0);
  sys.expand(up, flow);
  sys.expand(wan, flow);
  sys.expand(down, flow);
  EXPECT_EQ(sys.variable_shard_span(flow), 3);
  sys.solve();
  EXPECT_NEAR(sys.value(flow), 40.0, 1e-9);
  EXPECT_EQ(sys.group_solve_count(), 1u);
  EXPECT_NEAR(sys.usage(up), 40.0, 1e-9);
  EXPECT_NEAR(sys.usage(down), 40.0, 1e-9);

  // Tighten the zone-2 downlink: the change must propagate through the
  // coupled group even though the mutation is in a different shard.
  sys.set_capacity(down, 10.0);
  sys.solve();
  EXPECT_NEAR(sys.value(flow), 10.0, 1e-9);
}

TEST(ShardedMaxMin, CrossShardFlowSharesWithLocalFlows) {
  // An intra-zone flow shares the uplink with a cross-zone flow; the global
  // max-min solution couples the zones through it.
  ShardedMaxMin sys(3);
  const auto up1 = sys.new_constraint_in(1, 100.0);
  const auto wan = sys.new_constraint_in(0, 1000.0);
  const auto up2 = sys.new_constraint_in(2, 30.0);
  const auto local = sys.new_variable(1.0);
  sys.expand(up1, local);
  const auto cross = sys.new_variable(1.0);
  sys.expand(up1, cross);
  sys.expand(wan, cross);
  sys.expand(up2, cross);
  sys.solve();
  // cross is capped at 30 by zone 2; local then grows to 70 on up1.
  EXPECT_NEAR(sys.value(cross), 30.0, 1e-9);
  EXPECT_NEAR(sys.value(local), 70.0, 1e-9);
}

TEST(ShardedMaxMin, IntraShardChurnNeverTouchesOtherShards) {
  ShardedMaxMin sys(4);
  std::vector<ShardedMaxMin::CnstId> cnsts;
  for (ShardedMaxMin::ShardId s = 1; s <= 3; ++s)
    cnsts.push_back(sys.new_constraint_in(s, 100.0));
  // Seed every shard with one flow and solve once (first solve is full).
  std::vector<ShardedMaxMin::VarId> seed;
  for (auto c : cnsts) {
    const auto v = sys.new_variable(1.0);
    sys.expand(c, v);
    seed.push_back(v);
  }
  sys.solve();
  const auto idle2 = sys.shard(2).solve_stats();
  const auto idle3 = sys.shard(3).solve_stats();

  // Churn only in shard 1.
  for (int i = 0; i < 100; ++i) {
    const auto v = sys.new_variable(1.0);
    sys.expand(cnsts[0], v);
    sys.solve();
    sys.release_variable(v);
    sys.solve();
  }
  EXPECT_EQ(sys.group_solve_count(), 0u);
  EXPECT_EQ(sys.shard(2).solve_stats().solves, idle2.solves);
  EXPECT_EQ(sys.shard(3).solve_stats().solves, idle3.solves);
  EXPECT_NEAR(sys.value(seed[1]), 100.0, 1e-9);
  EXPECT_NEAR(sys.value(seed[2]), 100.0, 1e-9);
}

TEST(ShardedMaxMin, ReleasedCrossShardVariableRecyclesCleanly) {
  ShardedMaxMin sys(3);
  const auto c1 = sys.new_constraint_in(1, 100.0);
  const auto c2 = sys.new_constraint_in(2, 50.0);
  const auto cross = sys.new_variable(1.0);
  sys.expand(c1, cross);
  sys.expand(c2, cross);
  sys.solve();
  EXPECT_NEAR(sys.value(cross), 50.0, 1e-9);
  sys.release_variable(cross);
  sys.solve();
  EXPECT_NEAR(sys.usage(c1), 0.0, 1e-12);
  EXPECT_NEAR(sys.usage(c2), 0.0, 1e-12);
  // The recycled id must come back as a fresh single-shard variable.
  const auto v = sys.new_variable(1.0);
  EXPECT_EQ(v, cross);
  sys.expand(c1, v);
  sys.solve();
  EXPECT_EQ(sys.variable_shard_span(v), 1);
  EXPECT_NEAR(sys.value(v), 100.0, 1e-9);
}

TEST(ShardedMaxMin, FatpipeCapsFoldAcrossShards) {
  // A fatpipe in another shard must cap the linked variable exactly like the
  // global solver would (effective bound = min over all shards' caps).
  ShardedMaxMin sys(3);
  const auto shared1 = sys.new_constraint_in(1, 100.0);
  const auto fat = sys.new_constraint_in(0, 12.0, /*shared=*/false);
  const auto v = sys.new_variable(1.0);
  sys.expand(shared1, v);
  sys.expand(fat, v, 2.0);  // cap: 12 / 2 = 6
  const auto other = sys.new_variable(1.0);
  sys.expand(shared1, other);
  sys.solve();
  EXPECT_NEAR(sys.value(v), 6.0, 1e-9);
  EXPECT_NEAR(sys.value(other), 94.0, 1e-9);
}

// Regression: a local churn whose closure covers more than half of a shard's
// live variables used to escalate to a whole-shard solve_full(), which
// recomputed the shard's linked replicas *locally* — ignoring the sibling
// shards' constraints and splitting the replica values. The escalation must
// stay disabled in any shard hosting linked replicas.
TEST(ShardedMaxMin, LocalFullSolveEscalationMustNotSplitLinkedReplicas) {
  ShardedMaxMin sys(2);
  const auto zone_link = sys.new_constraint_in(1, 100.0);
  const auto backbone = sys.new_constraint_in(0, 10.0);
  const auto cross = sys.new_variable(1.0);
  sys.expand(zone_link, cross);
  sys.expand(backbone, cross);
  // Four zone-local variables on their own constraints: churning them makes
  // the closure cover 4 of the shard's 5 live variables (> half).
  std::vector<ShardedMaxMin::VarId> locals;
  for (int i = 0; i < 4; ++i) {
    const auto c = sys.new_constraint_in(1, 50.0);
    const auto v = sys.new_variable(1.0);
    sys.expand(c, v);
    locals.push_back(v);
  }
  sys.solve();
  ASSERT_NEAR(sys.value(cross), 10.0, 1e-9);  // capped by the backbone

  for (double w : {2.0, 3.0, 1.5}) {
    for (auto v : locals)
      sys.set_weight(v, w);
    sys.solve();
    // The cross flow was not in the dirty closure: its value must not move,
    // and in particular must not be recomputed against zone constraints only.
    EXPECT_NEAR(sys.value(cross), 10.0, 1e-9);
    EXPECT_NEAR(sys.usage(backbone), 10.0, 1e-9);
    EXPECT_NEAR(sys.usage(zone_link), 10.0, 1e-9);
  }
  // And a change that does reach it still solves the coupled group.
  sys.set_capacity(backbone, 25.0);
  sys.solve();
  EXPECT_NEAR(sys.value(cross), 25.0, 1e-9);
}

TEST(ShardedMaxMin, InvalidArgumentsThrow) {
  ShardedMaxMin sys(2);
  EXPECT_THROW(sys.new_constraint_in(2, 10.0), sg::xbt::InvalidArgument);
  EXPECT_THROW(sys.new_constraint_in(-1, 10.0), sg::xbt::InvalidArgument);
  const auto c = sys.new_constraint_in(1, 10.0);
  const auto v = sys.new_variable(1.0);
  EXPECT_THROW(sys.expand(c + 100, v), sg::xbt::InvalidArgument);
  EXPECT_THROW(sys.expand(c, v + 100), sg::xbt::InvalidArgument);
  sys.release_variable(v);
  EXPECT_THROW(sys.expand(c, v), sg::xbt::InvalidArgument);
  ShardedMaxMin busy(1);
  busy.new_constraint(1.0);
  EXPECT_THROW(busy.init_shards(4), sg::xbt::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Property sweep: sharded ≡ global at the solver level
// ---------------------------------------------------------------------------

// Mirror a random mutation history into a sharded system (4 zone shards +
// backbone) and a single global MaxMinSystem. Variables pick a random zone
// route (intra-zone) or a cross route through the backbone touching up to 3
// zones (>= 3 shards); mutations include weight/bound churn, releases, and
// capacity fault flaps (capacity -> 0 and back). After every solve, every
// live variable must agree to 1e-9.
TEST(ShardedEquivalence, MatchesGlobalSolverUnderChurnAndFaults) {
  sg::xbt::Rng rng(20260731);
  constexpr int kZones = 4;
  constexpr int kCnstsPerZone = 4;
  constexpr int kBackboneCnsts = 3;
  ShardedMaxMin sharded(kZones + 1);
  MaxMinSystem global;

  struct Cnst {
    ShardedMaxMin::CnstId s;
    MaxMinSystem::CnstId g;
    double capacity;
  };
  std::vector<std::vector<Cnst>> zone_cnsts(kZones);
  std::vector<Cnst> backbone;
  for (int z = 0; z < kZones; ++z)
    for (int c = 0; c < kCnstsPerZone; ++c) {
      const double cap = rng.uniform(20.0, 500.0);
      const bool shared = rng.uniform01() < 0.8;
      zone_cnsts[static_cast<size_t>(z)].push_back(
          {sharded.new_constraint_in(z + 1, cap, shared), global.new_constraint(cap, shared), cap});
    }
  for (int c = 0; c < kBackboneCnsts; ++c) {
    const double cap = rng.uniform(50.0, 800.0);
    const bool shared = rng.uniform01() < 0.5;  // WANs are often fatpipes
    backbone.push_back(
        {sharded.new_constraint_in(0, cap, shared), global.new_constraint(cap, shared), cap});
  }

  struct Var {
    ShardedMaxMin::VarId s;
    MaxMinSystem::VarId g;
  };
  std::vector<Var> live;
  int cross_flows = 0;
  auto add_var = [&] {
    const double weight = rng.uniform01() < 0.1 ? 0.0 : rng.uniform(0.5, 4.0);
    const double bound = rng.uniform01() < 0.3 ? rng.uniform(5.0, 200.0) : MaxMinSystem::kNoBound;
    Var v{sharded.new_variable(weight, bound), global.new_variable(weight, bound)};
    auto touch = [&](const Cnst& c) {
      const double coeff = rng.uniform(0.5, 2.0);
      sharded.expand(c.s, v.s, coeff);
      global.expand(c.g, v.g, coeff);
    };
    const size_t za = rng.uniform_int(0, kZones - 1);
    touch(zone_cnsts[za][rng.uniform_int(0, kCnstsPerZone - 1)]);
    if (rng.uniform01() < 0.35) {
      // Cross-zone: backbone plus up to two more zones (span up to 4 shards).
      ++cross_flows;
      touch(backbone[rng.uniform_int(0, kBackboneCnsts - 1)]);
      const size_t zb = rng.uniform_int(0, kZones - 1);
      if (zb != za)
        touch(zone_cnsts[zb][rng.uniform_int(0, kCnstsPerZone - 1)]);
      if (rng.uniform01() < 0.3) {
        const size_t zc = rng.uniform_int(0, kZones - 1);
        if (zc != za && zc != zb)
          touch(zone_cnsts[zc][rng.uniform_int(0, kCnstsPerZone - 1)]);
      }
    } else if (rng.uniform01() < 0.3) {
      touch(zone_cnsts[za][rng.uniform_int(0, kCnstsPerZone - 1)]);
    }
    live.push_back(v);
  };

  auto all_cnsts = [&](auto&& fn) {
    for (auto& zc : zone_cnsts)
      for (Cnst& c : zc)
        fn(c);
    for (Cnst& c : backbone)
      fn(c);
  };
  std::vector<Cnst*> flat_cnsts;
  all_cnsts([&](Cnst& c) { flat_cnsts.push_back(&c); });
  std::vector<Cnst*> dead;  // fault-flapped constraints awaiting heal

  for (int i = 0; i < 40; ++i)
    add_var();

  int checked = 0;
  for (int step = 1; step <= 1200; ++step) {
    const double kind = rng.uniform01();
    if (kind < 0.3 || live.empty()) {
      add_var();
    } else if (kind < 0.5) {
      const size_t k = rng.uniform_int(0, live.size() - 1);
      sharded.release_variable(live[k].s);
      global.release_variable(live[k].g);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else if (kind < 0.65) {
      const Var& v = live[rng.uniform_int(0, live.size() - 1)];
      const double w = rng.uniform01() < 0.15 ? 0.0 : rng.uniform(0.5, 4.0);
      sharded.set_weight(v.s, w);
      global.set_weight(v.g, w);
    } else if (kind < 0.78) {
      const Var& v = live[rng.uniform_int(0, live.size() - 1)];
      const double b = rng.uniform01() < 0.3 ? MaxMinSystem::kNoBound : rng.uniform(5.0, 200.0);
      sharded.set_bound(v.s, b);
      global.set_bound(v.g, b);
    } else if (kind < 0.92 || dead.empty()) {
      // Fault flap down: a resource loses all capacity.
      Cnst* c = flat_cnsts[rng.uniform_int(0, flat_cnsts.size() - 1)];
      sharded.set_capacity(c->s, 0.0);
      global.set_capacity(c->g, 0.0);
      dead.push_back(c);
    } else {
      // Heal a dead resource.
      const size_t k = rng.uniform_int(0, dead.size() - 1);
      Cnst* c = dead[k];
      sharded.set_capacity(c->s, c->capacity);
      global.set_capacity(c->g, c->capacity);
      dead.erase(dead.begin() + static_cast<std::ptrdiff_t>(k));
    }

    sharded.solve();
    global.solve();
    if (step % 3 == 0) {
      for (const Var& v : live) {
        const double want = global.value(v.g);
        ASSERT_NEAR(sharded.value(v.s), want, 1e-9 * std::max(1.0, std::abs(want)))
            << "step " << step << " sharded var " << v.s;
        ++checked;
      }
    }
  }
  EXPECT_GT(cross_flows, 50);
  EXPECT_GT(checked, 1000);
  EXPECT_GT(sharded.group_solve_count(), 0u);
  // Sharded full-solve must agree too.
  sharded.solve_full();
  global.solve_full();
  for (const Var& v : live) {
    const double want = global.value(v.g);
    EXPECT_NEAR(sharded.value(v.s), want, 1e-9 * std::max(1.0, std::abs(want)));
  }
}

// changed_variables() must report exactly the moved allocations (the engine
// refreshes only those rates — a missed report is a silently wrong clock).
TEST(ShardedEquivalence, ChangedVariablesCoverEveryMovedAllocation) {
  sg::xbt::Rng rng(987);
  ShardedMaxMin sys(3);
  std::vector<ShardedMaxMin::CnstId> cnsts;
  for (int s = 0; s < 3; ++s)
    for (int c = 0; c < 2; ++c)
      cnsts.push_back(sys.new_constraint_in(s, rng.uniform(50.0, 200.0)));
  std::vector<ShardedMaxMin::VarId> live;
  for (int i = 0; i < 30; ++i) {
    const auto v = sys.new_variable(rng.uniform(0.5, 2.0));
    sys.expand(cnsts[rng.uniform_int(0, cnsts.size() - 1)], v);
    if (rng.uniform01() < 0.4)
      sys.expand(cnsts[rng.uniform_int(0, cnsts.size() - 1)], v);
    live.push_back(v);
  }
  sys.solve();
  std::vector<double> last(live.size());
  for (size_t k = 0; k < live.size(); ++k)
    last[k] = sys.value(live[k]);

  for (int step = 0; step < 200; ++step) {
    sys.set_weight(live[rng.uniform_int(0, live.size() - 1)], rng.uniform(0.5, 3.0));
    if (step % 7 == 0)
      sys.set_capacity(cnsts[rng.uniform_int(0, cnsts.size() - 1)], rng.uniform(50.0, 200.0));
    sys.solve();
    std::vector<char> reported(live.size(), 0);
    for (ShardedMaxMin::VarId v : sys.changed_variables())
      for (size_t k = 0; k < live.size(); ++k)
        if (live[k] == v)
          reported[k] = 1;
    for (size_t k = 0; k < live.size(); ++k) {
      const double now = sys.value(live[k]);
      if (now != last[k]) {
        ASSERT_TRUE(reported[k]) << "allocation of var " << live[k] << " moved from " << last[k]
                                 << " to " << now << " without a changed_variables report";
      }
      last[k] = now;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine level
// ---------------------------------------------------------------------------

/// Pin the model parameters to clean values and restore defaults afterwards.
class ShardedEngineTest : public ::testing::Test {
protected:
  void SetUp() override {
    declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);  // effectively no window cap
    cfg.set("engine/sharding", 1.0);
    cfg.set("engine/kill-transit-comms", 0.0);
  }
  void TearDown() override {
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
    cfg.set("engine/sharding", 1.0);
    cfg.set("engine/kill-transit-comms", 0.0);
  }
};

// Two 4-host cluster zones behind a WAN fatpipe, plus one unzoned host on a
// router — the standard mixed-topology fixture.
Platform make_two_zone_platform(int per_zone = 4) {
  Platform p;
  for (int z = 0; z < 2; ++z) {
    ClusterZoneSpec zone;
    zone.name = "z" + std::to_string(z);
    zone.count = per_zone;
    zone.host_speed = 1e9;
    zone.link_bandwidth = 1e8;
    zone.link_latency = 0;  // keep the fluid math exact for unit checks
    zone.backbone_bandwidth = 1e9;
    zone.backbone_latency = 0;
    p.add_cluster_zone(zone);
  }
  const LinkId wan = p.add_link("wan", 5e8, 0, SharingPolicy::kFatpipe);
  p.add_edge(p.zone_gateway(0), p.zone_gateway(1), wan);
  const auto router = p.add_router("r");
  const LinkId rlink = p.add_link("r-up", 2e8, 0);
  p.add_edge(p.zone_gateway(0), router, rlink);
  const auto lone = p.add_host("lone", 1e9);
  const LinkId lonelink = p.add_link("lone-up", 2e8, 0);
  p.add_edge(router, lone, lonelink);
  p.seal();
  return p;
}

TEST_F(ShardedEngineTest, ShardMapPartitionsZonesAndBackbone) {
  Platform p = make_two_zone_platform();
  const auto& map = p.shard_map();
  EXPECT_EQ(map.shard_count, 3);
  EXPECT_EQ(map.host_shard[0], 1);  // z00
  EXPECT_EQ(map.host_shard[4], 2);  // z10
  EXPECT_EQ(map.host_shard[8], 0);  // lone host is backbone
  EXPECT_EQ(map.link_shard[*p.link_by_name("z00-link")], 1);
  EXPECT_EQ(map.link_shard[*p.link_by_name("z10-link")], 2);
  EXPECT_EQ(map.link_shard[*p.link_by_name("wan")], 0);
  EXPECT_EQ(map.link_shard[*p.link_by_name("z0-backbone")], 0);
  // Gateway links: the WAN and the router uplink hang off gateways; the
  // cluster backbones cross into the gateways too.
  EXPECT_FALSE(map.gateway_links.empty());
  const auto& gl = map.gateway_links;
  EXPECT_NE(std::find(gl.begin(), gl.end(), *p.link_by_name("wan")), gl.end());
}

TEST_F(ShardedEngineTest, CrossZoneCommSpansThreeShards) {
  Engine e(make_two_zone_platform());
  EXPECT_EQ(e.shard_count(), 3);
  auto comm = e.comm_start(0, 4, 1e6);  // z00 -> z10
  e.step(0.0);  // assign rates without firing the completion
  const ShardedMaxMin& sys = e.sharing_system();
  // The flow's variable has replicas in zone 1, backbone, and zone 2.
  EXPECT_GT(sys.shard(1).variable_count(), 0u);
  EXPECT_GT(sys.shard(0).variable_count(), 0u);
  EXPECT_GT(sys.shard(2).variable_count(), 0u);
  EXPECT_GT(sys.group_solve_count(), 0u);
  // Rate: min(uplink 1e8, backbone, wan fatpipe, downlink) = 1e8.
  EXPECT_NEAR(comm->rate(), 1e8, 1.0);
}

TEST_F(ShardedEngineTest, IntraZoneChurnLeavesOtherShardsCold) {
  Engine e(make_two_zone_platform());
  // Park a flow in zone 2 so its shard has state that must stay untouched.
  auto parked = e.comm_start(4, 5, 1e18);
  e.step(0.0);
  const auto idle = e.sharing_system().shard(2).solve_stats();
  const auto idle_groups = e.sharing_system().group_solve_count();

  // Churn in zone 1 only.
  auto flow = e.comm_start(0, 1, 1e6);
  for (int i = 0; i < 200; ++i) {
    auto fired = e.step();
    for (auto& ev : fired)
      if (ev.action.get() == flow.get())
        flow = e.comm_start(0, 1, 1e6);
  }
  EXPECT_EQ(e.sharing_system().shard(2).solve_stats().solves, idle.solves);
  EXPECT_EQ(e.sharing_system().group_solve_count(), idle_groups);
  EXPECT_EQ(parked->state(), ActionState::kRunning);
}

// The headline engine property: a sharded engine and a single-shard engine
// must produce the same simulation — completion clocks, rates, failure sets
// — on a random mixed-zone platform under churn and trace-free fault flaps.
TEST_F(ShardedEngineTest, ShardedEngineMatchesGlobalEngineUnderChurnAndFaults) {
  constexpr int kZones = 3;
  constexpr int kPerZone = 4;
  constexpr int kSlots = 24;
  constexpr int kSteps = 600;
  sg::xbt::Rng rng(777);

  auto build = [&] {
    Platform p;
    for (int z = 0; z < kZones; ++z) {
      ClusterZoneSpec zone;
      zone.name = "z" + std::to_string(z);
      zone.count = kPerZone;
      zone.host_speed = 1e9;
      zone.link_bandwidth = 1e8;
      zone.link_latency = 5e-5;
      zone.backbone_bandwidth = 6e8;
      zone.backbone_latency = 1e-4;
      zone.backbone_fatpipe = (z == 1);
      p.add_cluster_zone(zone);
    }
    for (int z = 1; z < kZones; ++z) {
      const LinkId wan = p.add_link("wan" + std::to_string(z), 4e8, 1e-3, SharingPolicy::kFatpipe);
      p.add_edge(p.zone_gateway(0), p.zone_gateway(z), wan);
    }
    p.seal();
    return p;
  };

  auto& cfg = sg::xbt::Config::instance();
  cfg.set("engine/sharding", 1.0);
  Engine sharded(build());
  cfg.set("engine/sharding", 0.0);
  Engine global(build());
  ASSERT_EQ(sharded.shard_count(), kZones + 1);
  ASSERT_EQ(global.shard_count(), 1);

  const int n_hosts = kZones * kPerZone;
  // Deterministic slot plan: slot -> (src, dst, kind). A third of the slots
  // cross zones (>= 3 shards), the rest stay inside one zone.
  struct Slot {
    int src, dst;
    bool exec;
    int completions = 0;
  };
  std::vector<Slot> slots;
  for (int s = 0; s < kSlots; ++s) {
    Slot slot;
    slot.exec = (s % 6 == 5);
    const int za = s % kZones;
    slot.src = za * kPerZone + static_cast<int>(rng.uniform_int(0, kPerZone - 1));
    if (s % 3 == 0 && !slot.exec) {
      const int zb = (za + 1 + s / 3) % kZones;
      slot.dst = zb * kPerZone + static_cast<int>(rng.uniform_int(0, kPerZone - 1));
    } else {
      slot.dst = za * kPerZone + static_cast<int>(rng.uniform_int(0, kPerZone - 1));
    }
    slots.push_back(slot);
  }
  auto work_of = [](const Slot& s, int completion) {
    // Deterministic per-restart size, order-independent.
    return s.exec ? 3e7 * (1.0 + (completion % 5)) : 2e6 * (1.0 + ((s.src + completion) % 7));
  };

  struct Driver {
    Engine* e;
    std::vector<ActionPtr> current;   // per slot; null while slot is idle
    std::vector<int> completions;
    std::vector<int> failures;
  };
  Driver A{&sharded, {}, {}, {}};
  Driver B{&global, {}, {}, {}};
  auto start_slot = [&](Driver& d, const std::vector<Slot>& sl, size_t k) {
    const Slot& s = sl[k];
    if (!d.e->host_is_on(s.src) || !d.e->host_is_on(s.dst)) {
      d.current[k] = nullptr;
      return;
    }
    ActionPtr a = s.exec ? d.e->exec_start(s.src, work_of(s, d.completions[k]))
                         : d.e->comm_start(s.src, s.dst, work_of(s, d.completions[k]));
    a->user_data = reinterpret_cast<void*>(k + 1);
    d.current[k] = a;
  };
  for (Driver* d : {&A, &B}) {
    d->current.resize(kSlots);
    d->completions.assign(kSlots, 0);
    d->failures.assign(kSlots, 0);
    for (size_t k = 0; k < kSlots; ++k)
      start_slot(*d, slots, k);
  }

  // Fault plan: (time, host-or-link, index, on) — applied to both engines at
  // the same simulated instant.
  struct Fault {
    double t;
    bool is_host;
    int index;
    bool on;
  };
  std::vector<Fault> faults;
  {
    sg::xbt::Rng frng(4242);
    double t = 0.02;
    for (int i = 0; i < 25; ++i) {
      const bool is_host = frng.uniform01() < 0.5;
      const int index = is_host ? static_cast<int>(frng.uniform_int(0, n_hosts - 1))
                                : static_cast<int>(frng.uniform_int(0, kZones * kPerZone - 1));
      faults.push_back({t, is_host, index, false});
      faults.push_back({t + frng.uniform(0.01, 0.05), is_host, index, true});
      t += frng.uniform(0.02, 0.08);
    }
    std::sort(faults.begin(), faults.end(), [](const Fault& a, const Fault& b) { return a.t < b.t; });
  }

  auto drive = [&](Driver& d) {
    size_t next_fault = 0;
    for (int step = 0; step < kSteps; ++step) {
      const double bound = next_fault < faults.size() ? faults[next_fault].t
                                                      : std::numeric_limits<double>::infinity();
      auto fired = d.e->step(bound);
      if (fired.empty() && next_fault < faults.size() && d.e->now() >= faults[next_fault].t) {
        const Fault& f = faults[next_fault++];
        if (f.is_host)
          d.e->set_host_state(f.index, f.on);
        else
          d.e->set_link_state(f.index, f.on);
        if (f.on)  // heal: restart every idle slot
          for (size_t k = 0; k < slots.size(); ++k)
            if (d.current[k] == nullptr)
              start_slot(d, slots, k);
        continue;
      }
      for (auto& ev : fired) {
        const size_t k = reinterpret_cast<size_t>(ev.action->user_data);
        if (k == 0 || k > slots.size())
          continue;
        if (ev.failed) {
          // Stay idle until a heal restarts the slot: an immediate retry over
          // a still-dead link would fail right back, step after step.
          ++d.failures[k - 1];
          d.current[k - 1] = nullptr;
        } else {
          ++d.completions[k - 1];
          start_slot(d, slots, k - 1);
        }
      }
    }
  };
  drive(A);
  drive(B);

  // The two engines ran the same scenario: clocks, counts and failure sets
  // must agree (1e-9 relative on time; exact on integer counts).
  EXPECT_NEAR(A.e->now(), B.e->now(), 1e-9 * std::max(1.0, B.e->now()));
  int total_completions = 0, total_failures = 0;
  for (size_t k = 0; k < slots.size(); ++k) {
    EXPECT_EQ(A.completions[k], B.completions[k]) << "slot " << k;
    EXPECT_EQ(A.failures[k], B.failures[k]) << "slot " << k;
    total_completions += A.completions[k];
    total_failures += A.failures[k];
    const ActionPtr& a = A.current[k];
    const ActionPtr& b = B.current[k];
    ASSERT_EQ(a == nullptr, b == nullptr) << "slot " << k;
    if (a && a->state() == ActionState::kRunning && b->state() == ActionState::kRunning) {
      EXPECT_NEAR(a->rate(), b->rate(), 1e-9 * std::max(1.0, b->rate())) << "slot " << k;
      EXPECT_NEAR(a->remaining(), b->remaining(), 1e-6 * std::max(1.0, b->remaining()))
          << "slot " << k;
    }
  }
  // The sweep must have exercised real churn, real faults, and real
  // cross-shard coupling.
  EXPECT_GT(total_completions, 200);
  EXPECT_GT(total_failures, 5);
  EXPECT_GT(sharded.sharing_system().group_solve_count(), 0u);
  EXPECT_EQ(global.sharing_system().group_solve_count(), 0u);
}

// ---------------------------------------------------------------------------
// engine/kill-transit-comms (L07-style host-death semantics)
// ---------------------------------------------------------------------------

// Three hosts on a switch: a comm src -> dst does not touch a third host,
// and — in CM02 — does not touch its own endpoints' CPUs either.
Platform make_star3() {
  Platform p;
  const auto sw = p.add_router("sw");
  for (int i = 0; i < 3; ++i) {
    const auto h = p.add_host("h" + std::to_string(i), 1e9);
    const LinkId l = p.add_link("l" + std::to_string(i), 1e8, 0);
    p.add_edge(h, sw, l);
  }
  p.seal();
  return p;
}

TEST_F(ShardedEngineTest, TransitCommSurvivesEndpointDeathByDefault) {
  Engine e(make_star3());
  auto comm = e.comm_start(0, 1, 1e8);
  e.step(0.0);
  e.set_host_state(0, false);  // source host dies mid-transfer
  auto events = e.step();
  for (auto& ev : events)
    EXPECT_FALSE(ev.failed) << "CM02 transit comm must not fail with its endpoint";
  // It still completes at the normal date (1e8 B at 1e8 B/s = 1 s).
  while (comm->state() == ActionState::kRunning)
    e.step();
  EXPECT_EQ(comm->state(), ActionState::kDone);
  EXPECT_NEAR(comm->finish_time(), 1.0, 1e-9);
}

TEST_F(ShardedEngineTest, KillTransitCommsFailsCommsOfDeadEndpoints) {
  sg::xbt::Config::instance().set("engine/kill-transit-comms", 1.0);
  Engine e(make_star3());
  auto out = e.comm_start(0, 1, 1e8);       // dead host is the source
  auto in = e.comm_start(2, 0, 1e8);        // dead host is the destination
  auto bystander = e.comm_start(1, 2, 1e8); // does not touch host 0
  e.step(0.0);
  e.set_host_state(0, false);
  auto events = e.step();
  int failed = 0;
  for (auto& ev : events) {
    EXPECT_TRUE(ev.failed);
    EXPECT_TRUE(ev.action.get() == out.get() || ev.action.get() == in.get());
    ++failed;
  }
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(out->state(), ActionState::kFailed);
  EXPECT_EQ(in->state(), ActionState::kFailed);
  EXPECT_EQ(bystander->state(), ActionState::kRunning);
  while (bystander->state() == ActionState::kRunning)
    e.step();
  EXPECT_EQ(bystander->state(), ActionState::kDone);
}

TEST_F(ShardedEngineTest, KillTransitLoopbackCommFailsExactlyOnce) {
  sg::xbt::Config::instance().set("engine/kill-transit-comms", 1.0);
  Engine e(make_star3());
  auto loop = e.comm_start(0, 0, 1e8);  // loopback: registered once, also on
  e.step(0.0);                          // the loopback constraint
  e.set_host_state(0, false);
  auto events = e.step();
  int failures = 0;
  for (auto& ev : events)
    if (ev.action.get() == loop.get())
      ++failures;
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(loop->state(), ActionState::kFailed);
}

TEST_F(ShardedEngineTest, KillTransitCompletedCommLeavesNoStaleIndexEntry) {
  sg::xbt::Config::instance().set("engine/kill-transit-comms", 1.0);
  Engine e(make_star3());
  auto first = e.comm_start(0, 1, 1e6);
  while (first->state() == ActionState::kRunning)
    e.step();
  EXPECT_EQ(first->state(), ActionState::kDone);
  auto second = e.comm_start(1, 2, 1e8);  // re-uses the recycled slot
  e.step(0.0);
  e.set_host_state(0, false);  // must not fail anything (old entry is gone)
  auto events = e.step(0.1);   // second's completion is at t=1
  for (auto& ev : events)
    EXPECT_FALSE(ev.failed);
  EXPECT_EQ(second->state(), ActionState::kRunning);
}

TEST_F(ShardedEngineTest, KillTransitSuspendedCommFailsToo) {
  sg::xbt::Config::instance().set("engine/kill-transit-comms", 1.0);
  Engine e(make_star3());
  auto comm = e.comm_start(0, 1, 1e8);
  e.step(0.0);
  comm->suspend();
  e.set_host_state(1, false);
  e.step();
  EXPECT_EQ(comm->state(), ActionState::kFailed);
}

}  // namespace
