/// Tests for SMPI: point-to-point semantics (matching, wildcards, unexpected
/// messages, eager vs rendezvous), every collective, timing on heterogeneous
/// platforms, and the SMPI_BENCH replay machinery.
#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.hpp"
#include "platform/builders.hpp"
#include "smpi/smpi.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::smpi;

class SmpiTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
  }
  void TearDown() override {
    bench_reset();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }

  static sg::platform::Platform cluster(int n, double speed = 1e9) {
    sg::platform::ClusterSpec spec;
    spec.count = n;
    spec.host_speed = speed;
    spec.link_bandwidth = 1.25e8;
    spec.link_latency = 1e-5;
    spec.backbone_bandwidth = 1.25e9;
    return sg::platform::make_cluster(spec);
  }
};

TEST_F(SmpiTest, RankAndSize) {
  std::vector<int> seen(4, -1);
  smpi_run(cluster(4), 4, [&](int rank) {
    EXPECT_EQ(MPI_Comm_rank(), rank);
    EXPECT_EQ(MPI_Comm_size(), 4);
    seen[static_cast<size_t>(rank)] = rank;
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(seen[static_cast<size_t>(r)], r);
}

TEST_F(SmpiTest, SendRecvRoundTrip) {
  int received = -1;
  smpi_run(cluster(2), 2, [&](int rank) {
    if (rank == 0) {
      int value = 4242;
      MPI_Send(&value, 1, MPI_INT, 1, 0);
    } else {
      Status st;
      int value = 0;
      MPI_Recv(&value, 1, MPI_INT, 0, 0, &st);
      received = value;
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 0);
      EXPECT_EQ(st.bytes, sizeof(int));
    }
  });
  EXPECT_EQ(received, 4242);
}

TEST_F(SmpiTest, TagMatchingOutOfOrder) {
  // Messages with tag 2 then tag 1; receiver asks for tag 1 first.
  std::vector<int> order;
  smpi_run(cluster(2), 2, [&](int rank) {
    if (rank == 0) {
      int a = 100, b = 200;
      MPI_Send(&a, 1, MPI_INT, 1, /*tag=*/2);
      MPI_Send(&b, 1, MPI_INT, 1, /*tag=*/1);
    } else {
      int v = 0;
      MPI_Recv(&v, 1, MPI_INT, 0, 1);
      order.push_back(v);  // 200
      MPI_Recv(&v, 1, MPI_INT, 0, 2);
      order.push_back(v);  // 100 (from the unexpected queue)
    }
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 200);
  EXPECT_EQ(order[1], 100);
}

TEST_F(SmpiTest, AnySourceAnyTag) {
  int total = 0;
  smpi_run(cluster(4), 4, [&](int rank) {
    if (rank == 0) {
      for (int i = 0; i < 3; ++i) {
        int v = 0;
        Status st;
        MPI_Recv(&v, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, &st);
        EXPECT_EQ(v, st.source * 10 + st.tag);
        total += v;
      }
    } else {
      int v = rank * 10 + rank;
      MPI_Send(&v, 1, MPI_INT, 0, rank);
    }
  });
  EXPECT_EQ(total, 11 + 22 + 33);
}

TEST_F(SmpiTest, EagerSendDoesNotBlock) {
  // Both ranks MPI_Send before MPI_Recv: safe for small (eager) messages.
  bool done = false;
  smpi_run(cluster(2), 2, [&](int rank) {
    const int peer = 1 - rank;
    int mine = rank, theirs = -1;
    MPI_Send(&mine, 1, MPI_INT, peer, 7);
    MPI_Recv(&theirs, 1, MPI_INT, peer, 7);
    EXPECT_EQ(theirs, peer);
    if (rank == 0)
      done = true;
  });
  EXPECT_TRUE(done);
}

TEST_F(SmpiTest, LargeMessageRendezvous) {
  // Above the eager threshold the sender blocks until the receiver arrives.
  double send_done = -1;
  smpi_run(cluster(2), 2, [&](int rank) {
    const int n = 1 << 20;  // 4 MiB of ints > 64 KiB threshold
    static std::vector<int> buf(static_cast<size_t>(n), 5);
    if (rank == 0) {
      MPI_Send(buf.data(), n, MPI_INT, 1, 0);
      send_done = MPI_Wtime();
    } else {
      static std::vector<int> in(static_cast<size_t>(n));
      SMPI_Compute(2e9);  // receiver busy for 2 simulated seconds
      MPI_Recv(in.data(), n, MPI_INT, 0, 0);
      EXPECT_EQ(in[12345], 5);
    }
  });
  EXPECT_GT(send_done, 2.0);  // sender had to wait for the rendezvous
}

TEST_F(SmpiTest, IsendIrecvOverlap) {
  std::vector<int> got(2, -1);
  smpi_run(cluster(2), 2, [&](int rank) {
    const int peer = 1 - rank;
    int mine = 1000 + rank, theirs = -1;
    Request s = MPI_Isend(&mine, 1, MPI_INT, peer, 3);
    Request r = MPI_Irecv(&theirs, 1, MPI_INT, peer, 3);
    MPI_Wait(r);
    MPI_Wait(s);
    got[static_cast<size_t>(rank)] = theirs;
  });
  EXPECT_EQ(got[0], 1001);
  EXPECT_EQ(got[1], 1000);
}

TEST_F(SmpiTest, WaitallCompletesEverything) {
  int sum = 0;
  smpi_run(cluster(4), 4, [&](int rank) {
    if (rank == 0) {
      std::vector<int> vals(3);
      std::vector<Request> reqs;
      for (int r = 1; r < 4; ++r)
        reqs.push_back(MPI_Irecv(&vals[static_cast<size_t>(r - 1)], 1, MPI_INT, r, 0));
      MPI_Waitall(reqs);
      sum = vals[0] + vals[1] + vals[2];
    } else {
      MPI_Send(&rank, 1, MPI_INT, 0, 0);
    }
  });
  EXPECT_EQ(sum, 6);
}

TEST_F(SmpiTest, Barrier) {
  // After the barrier, everyone must have seen everyone's pre-barrier mark.
  std::vector<int> marks(8, 0);
  bool ok = true;
  smpi_run(cluster(8), 8, [&](int rank) {
    marks[static_cast<size_t>(rank)] = 1;
    MPI_Barrier();
    for (int r = 0; r < 8; ++r)
      if (marks[static_cast<size_t>(r)] != 1)
        ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST_F(SmpiTest, BcastAllRootsAllSizes) {
  for (int size : {2, 3, 5, 8}) {
    for (int root = 0; root < size; ++root) {
      std::vector<int> results(static_cast<size_t>(size), -1);
      smpi_run(cluster(size), size, [&, root](int rank) {
        int v = (rank == root) ? 777 : 0;
        MPI_Bcast(&v, 1, MPI_INT, root);
        results[static_cast<size_t>(rank)] = v;
      });
      for (int r = 0; r < size; ++r)
        EXPECT_EQ(results[static_cast<size_t>(r)], 777) << "size " << size << " root " << root;
    }
  }
}

TEST_F(SmpiTest, ReduceSumDoubles) {
  double result = 0;
  const int P = 6;
  smpi_run(cluster(P), P, [&](int rank) {
    double v = rank + 1.5;
    double out = 0;
    MPI_Reduce(&v, &out, 1, MPI_DOUBLE, MPI_SUM, 2);
    if (rank == 2)
      result = out;
  });
  double expect = 0;
  for (int r = 0; r < P; ++r)
    expect += r + 1.5;
  EXPECT_DOUBLE_EQ(result, expect);
}

TEST_F(SmpiTest, ReduceMaxMinProd) {
  int rmax = 0, rmin = 0, rprod = 0;
  smpi_run(cluster(4), 4, [&](int rank) {
    int v = rank + 1;
    int out = 0;
    MPI_Reduce(&v, &out, 1, MPI_INT, MPI_MAX, 0);
    if (rank == 0)
      rmax = out;
    MPI_Reduce(&v, &out, 1, MPI_INT, MPI_MIN, 0);
    if (rank == 0)
      rmin = out;
    MPI_Reduce(&v, &out, 1, MPI_INT, MPI_PROD, 0);
    if (rank == 0)
      rprod = out;
  });
  EXPECT_EQ(rmax, 4);
  EXPECT_EQ(rmin, 1);
  EXPECT_EQ(rprod, 24);
}

TEST_F(SmpiTest, AllreduceVector) {
  bool all_ok = true;
  const int P = 5;
  smpi_run(cluster(P), P, [&](int rank) {
    std::vector<double> v{double(rank), double(rank * 2)};
    std::vector<double> out(2);
    MPI_Allreduce(v.data(), out.data(), 2, MPI_DOUBLE, MPI_SUM);
    if (out[0] != 0 + 1 + 2 + 3 + 4 || out[1] != 2 * (0 + 1 + 2 + 3 + 4))
      all_ok = false;
  });
  EXPECT_TRUE(all_ok);
}

TEST_F(SmpiTest, GatherScatter) {
  std::vector<int> gathered(6, -1);
  std::vector<int> scattered(6, -1);
  smpi_run(cluster(6), 6, [&](int rank) {
    int v = rank * rank;
    std::vector<int> all(6);
    MPI_Gather(&v, 1, MPI_INT, all.data(), 0);
    if (rank == 0) {
      gathered = all;
      for (int i = 0; i < 6; ++i)
        all[static_cast<size_t>(i)] = 100 + i;
    }
    int mine = -1;
    MPI_Scatter(all.data(), 1, MPI_INT, &mine, 0);
    scattered[static_cast<size_t>(rank)] = mine;
  });
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(gathered[static_cast<size_t>(r)], r * r);
    EXPECT_EQ(scattered[static_cast<size_t>(r)], 100 + r);
  }
}

TEST_F(SmpiTest, Allgather) {
  bool ok = true;
  const int P = 7;
  smpi_run(cluster(P), P, [&](int rank) {
    int v = 10 * rank;
    std::vector<int> all(P, -1);
    MPI_Allgather(&v, 1, MPI_INT, all.data());
    for (int r = 0; r < P; ++r)
      if (all[static_cast<size_t>(r)] != 10 * r)
        ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST_F(SmpiTest, Alltoall) {
  bool ok = true;
  const int P = 4;
  smpi_run(cluster(P), P, [&](int rank) {
    std::vector<int> send(P), recv(P, -1);
    for (int r = 0; r < P; ++r)
      send[static_cast<size_t>(r)] = rank * 100 + r;  // destined to r
    MPI_Alltoall(send.data(), 1, MPI_INT, recv.data());
    for (int r = 0; r < P; ++r)
      if (recv[static_cast<size_t>(r)] != r * 100 + rank)
        ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST_F(SmpiTest, WtimeAdvancesWithCompute) {
  double t0 = -1, t1 = -1;
  smpi_run(cluster(1), 1, [&](int) {
    t0 = MPI_Wtime();
    SMPI_Compute(3e9);
    t1 = MPI_Wtime();
  });
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 3.0);
}

TEST_F(SmpiTest, HeterogeneitySlowsReplay) {
  // SMPI_BENCH_ONCE measures on the (fast) measuring host, then replays the
  // same flops on a host 4x slower -> 4x the simulated time.
  sg::platform::Platform p;
  p.add_host("fast", 4e9);
  p.add_host("slow", 1e9);
  auto l = p.add_link("l", 1.25e8, 1e-5);
  p.add_route(p.node_by_name("fast").value(), p.node_by_name("slow").value(), {l});
  std::vector<double> elapsed(2, -1);
  smpi_run(std::move(p), 2, [&](int rank) {
    MPI_Barrier();
    const double t0 = MPI_Wtime();
    // rank 0 measures for real; rank 1 replays the recorded flops.
    if (rank == 1) {
      int token;
      MPI_Recv(&token, 1, MPI_INT, 0, 9);  // wait until rank 0 measured
    }
    SMPI_BENCH_ONCE_RUN_ONCE_BEGIN();
    volatile double x = 1.0;
    for (int i = 0; i < 5000000; ++i)
      x = x * 1.0000001;
    SMPI_BENCH_ONCE_RUN_ONCE_END();
    if (rank == 0) {
      int token = 1;
      MPI_Send(&token, 1, MPI_INT, 1, 9);
    }
    elapsed[static_cast<size_t>(rank)] = MPI_Wtime() - t0;
  }, {"fast", "slow"});
  ASSERT_GT(elapsed[0], 0.0);
  // rank1's time includes waiting for the token; subtract rank0's part...
  // easier invariant: replay on the 4x slower host takes ~4x the measured
  // simulated time of rank 0.
  EXPECT_GT(elapsed[1], elapsed[0] * 2.0);
}

TEST_F(SmpiTest, CommunicationTimeScalesWithSize) {
  std::vector<double> times;
  for (double mb : {1.0, 4.0}) {
    double recv_done = -1;
    smpi_run(cluster(2), 2, [&, mb](int rank) {
      const int n = static_cast<int>(mb * 1e6 / 8);
      static std::vector<double> buf;
      buf.assign(static_cast<size_t>(n), 1.0);
      if (rank == 0) {
        MPI_Send(buf.data(), n, MPI_DOUBLE, 1, 0);
      } else {
        MPI_Recv(buf.data(), n, MPI_DOUBLE, 0, 0);
        recv_done = MPI_Wtime();
      }
    });
    times.push_back(recv_done);
  }
  // 4x the bytes ≈ 4x the transfer time (latency negligible here).
  EXPECT_NEAR(times[1] / times[0], 4.0, 0.3);
}

TEST_F(SmpiTest, InvalidRankRejected) {
  bool threw = false;
  smpi_run(cluster(2), 2, [&](int rank) {
    if (rank == 0) {
      int v = 0;
      try {
        MPI_Send(&v, 1, MPI_INT, 7, 0);
      } catch (const sg::xbt::InvalidArgument&) {
        threw = true;
      }
    }
  });
  EXPECT_TRUE(threw);
}

TEST_F(SmpiTest, TruncatedRecvRejected) {
  bool threw = false;
  smpi_run(cluster(2), 2, [&](int rank) {
    if (rank == 0) {
      std::vector<int> v(8, 1);
      MPI_Send(v.data(), 8, MPI_INT, 1, 0);
    } else {
      int v[2];
      try {
        MPI_Recv(v, 2, MPI_INT, 0, 0);
      } catch (const sg::xbt::InvalidArgument&) {
        threw = true;
      }
    }
  });
  EXPECT_TRUE(threw);
}

}  // namespace
