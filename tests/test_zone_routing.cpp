/// Property tests for hierarchical zone routing: on random cluster and mixed
/// zone/graph platforms, every route(src, dst) must return exactly the link
/// sequence and latency the flat graph-mode resolution produces — zone
/// composition is an O(1) fast path, never a different answer. The flat
/// reference platform is a structural twin built with plain add_host /
/// add_link / add_edge in the same declaration order, so node and link ids
/// coincide and link sequences compare directly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "topo/brite.hpp"
#include "xbt/exception.hpp"
#include "xbt/random.hpp"
#include "xbt/str.hpp"

namespace {

using namespace sg::platform;

/// Flat twin of add_cluster_zone(): same names, same creation order, no zone
/// metadata — routes resolve through plain graph-mode Dijkstra.
void add_cluster_flat(Platform& p, const ClusterZoneSpec& spec) {
  const std::string& prefix = spec.host_prefix.empty() ? spec.name : spec.host_prefix;
  const NodeId hub = p.add_router(spec.name + "-switch");
  if (spec.backbone_bandwidth > 0) {
    const NodeId out = p.add_router(spec.name + "-out");
    LinkSpec bb;
    bb.name = spec.name + "-backbone";
    bb.bandwidth_Bps = spec.backbone_bandwidth;
    bb.latency_s = spec.backbone_latency;
    bb.policy = spec.backbone_fatpipe ? SharingPolicy::kFatpipe : SharingPolicy::kShared;
    p.add_edge(hub, out, p.add_link(bb));
  }
  for (int m = 0; m < spec.count; ++m) {
    const std::string name = sg::xbt::format("%s%d", prefix.c_str(), m);
    const NodeId h = p.add_host(name, spec.host_speed);
    const LinkId l = p.add_link(name + "-link", spec.link_bandwidth, spec.link_latency);
    p.add_edge(h, hub, l);
  }
}

/// Flat twin of sg::topo::add_to_platform() (no zone record).
void add_topology_flat(Platform& p, const sg::topo::Topology& topo, const std::string& prefix,
                       double host_speed) {
  std::vector<NodeId> ids;
  for (size_t i = 0; i < topo.nodes.size(); ++i)
    ids.push_back(p.add_host(sg::xbt::format("%s%zu", prefix.c_str(), i), host_speed));
  for (size_t i = 0; i < topo.edges.size(); ++i) {
    const auto& e = topo.edges[i];
    const LinkId l =
        p.add_link(sg::xbt::format("%s-l%zu", prefix.c_str(), i), e.bandwidth_Bps, e.latency_s);
    p.add_edge(ids[static_cast<size_t>(e.from)], ids[static_cast<size_t>(e.to)], l);
  }
}

/// Every pair must agree on reachability; reachable pairs must agree on the
/// exact link sequence and latency.
void expect_equivalent(const Platform& zoned, const Platform& flat) {
  ASSERT_EQ(zoned.host_count(), flat.host_count());
  ASSERT_EQ(zoned.link_count(), flat.link_count());
  const int n = static_cast<int>(zoned.host_count());
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      const bool r = flat.reachable(s, d);
      ASSERT_EQ(zoned.reachable(s, d), r)
          << "pair " << zoned.host(s).name << " -> " << zoned.host(d).name;
      if (!r || s == d)
        continue;
      EXPECT_EQ(zoned.route(s, d).links(), flat.route(s, d).links())
          << "pair " << zoned.host(s).name << " -> " << zoned.host(d).name;
      EXPECT_DOUBLE_EQ(zoned.route(s, d).latency(), flat.route(s, d).latency())
          << "pair " << zoned.host(s).name << " -> " << zoned.host(d).name;
    }
}

/// Random mixed platform: 2-3 cluster zones (random shape, some without a
/// backbone, some fatpipe), a random WAN router mesh with distinct random
/// latencies (unique shortest paths), a BRITE graph zone, free hosts, and a
/// sprinkle of explicit routes. Built twice: with zones, and flat.
struct Scenario {
  Platform zoned;
  Platform flat;

  explicit Scenario(std::uint64_t seed) {
    sg::xbt::Rng rng(seed);

    std::vector<ClusterZoneSpec> clusters;
    const int n_clusters = 2 + static_cast<int>(rng.uniform_int(0, 1));
    for (int c = 0; c < n_clusters; ++c) {
      ClusterZoneSpec spec;
      spec.name = "c" + std::to_string(c);
      spec.count = 3 + static_cast<int>(rng.uniform_int(0, 7));
      spec.link_bandwidth = rng.uniform(1e7, 1e9);
      spec.link_latency = rng.uniform(1e-6, 1e-4);
      if (rng.uniform01() < 0.3) {
        spec.backbone_bandwidth = 0;  // hub doubles as the gateway
      } else {
        spec.backbone_bandwidth = rng.uniform(1e8, 1e10);
        spec.backbone_latency = rng.uniform(1e-5, 1e-3);
        spec.backbone_fatpipe = rng.uniform01() < 0.5;
      }
      clusters.push_back(spec);
    }

    for (const auto& spec : clusters) {
      zoned.add_cluster_zone(spec);
      add_cluster_flat(flat, spec);
    }

    // WAN mesh: routers in a random tree plus chords, distinct latencies.
    const int n_routers = 3 + static_cast<int>(rng.uniform_int(0, 2));
    std::vector<NodeId> zr, fr;
    for (int r = 0; r < n_routers; ++r) {
      const std::string name = "wan-r" + std::to_string(r);
      zr.push_back(zoned.add_router(name));
      fr.push_back(flat.add_router(name));
    }
    int wan_link = 0;
    auto connect = [&](NodeId za, NodeId fa, NodeId zb, NodeId fb) {
      const std::string name = "wan-l" + std::to_string(wan_link++);
      const double bw = rng.uniform(1e7, 1e9);
      const double lat = rng.uniform(1e-4, 1e-1) * (1.0 + rng.uniform01());  // distinct w.p. 1
      zoned.add_edge(za, zb, zoned.add_link(name, bw, lat));
      flat.add_edge(fa, fb, flat.add_link(name, bw, lat));
    };
    for (int r = 1; r < n_routers; ++r) {
      const int parent = static_cast<int>(rng.uniform_int(0, r - 1));
      connect(zr[r], fr[r], zr[parent], fr[parent]);
    }
    if (n_routers >= 3 && rng.uniform01() < 0.7)  // a chord: alternative paths
      connect(zr[0], fr[0], zr[n_routers - 1], fr[n_routers - 1]);

    // Attach each cluster gateway to a random router (one cluster is left
    // dangling 20% of the time: cross-zone pairs must then be unreachable in
    // both builds).
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (c + 1 == clusters.size() && rng.uniform01() < 0.2)
        continue;
      const int r = static_cast<int>(rng.uniform_int(0, n_routers - 1));
      const NodeId zgw = zoned.zone_gateway(static_cast<ZoneId>(c));
      const auto fgw = flat.node_by_name(zoned.node_name(zgw));
      connect(zgw, fgw.value(), zr[r], fr[r]);
    }

    // A BRITE WAN as a graph zone, attached to a router.
    sg::topo::WaxmanSpec wspec;
    wspec.n_nodes = 4;
    wspec.seed = seed * 11 + 3;
    const auto topo = sg::topo::generate_waxman(wspec);
    const ZoneId gz = sg::topo::add_to_platform(zoned, topo, "brite", 1e9);
    add_topology_flat(flat, topo, "brite", 1e9);
    {
      const NodeId zgw = zoned.zone_gateway(gz);
      const auto fgw = flat.node_by_name(zoned.node_name(zgw));
      const int r = static_cast<int>(rng.uniform_int(0, n_routers - 1));
      connect(zgw, *fgw, zr[r], fr[r]);
    }

    // Free (zone-less) hosts on random routers.
    const int n_free = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < n_free; ++h) {
      const std::string name = "free" + std::to_string(h);
      const NodeId zh = zoned.add_host(name, 1e9);
      const NodeId fh = flat.add_host(name, 1e9);
      const int r = static_cast<int>(rng.uniform_int(0, n_routers - 1));
      connect(zh, fh, zr[r], fr[r]);
    }

    // Explicit routes must win over zone composition — in both builds, so
    // answers keep matching. One intra-cluster pair, one cross pair.
    const int n_hosts = static_cast<int>(zoned.host_count());
    for (int i = 0; i < 2; ++i) {
      const int a = static_cast<int>(rng.uniform_int(0, n_hosts - 1));
      const int b = static_cast<int>(rng.uniform_int(0, n_hosts - 1));
      if (a == b)
        continue;
      const std::string name = "explicit" + std::to_string(i);
      const double bw = 1e8;
      const double lat = rng.uniform(1e-4, 1e-2);
      const LinkId zl = zoned.add_link(name, bw, lat);
      const LinkId fl = flat.add_link(name, bw, lat);
      zoned.add_route(zoned.host_node(a), zoned.host_node(b), {zl});
      flat.add_route(flat.host_node(a), flat.host_node(b), {fl});
    }

    zoned.seal();
    flat.seal();
  }
};

TEST(ZoneRouting, HierarchicalMatchesFlatOnRandomMixedPlatforms) {
  for (std::uint64_t seed : {1u, 5u, 17u, 23u, 42u, 77u, 91u, 123u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Scenario sc(seed);
    expect_equivalent(sc.zoned, sc.flat);
  }
}

TEST(ZoneRouting, ExplicitRouteWinsOverClusterComposition) {
  Platform p;
  ClusterZoneSpec spec;
  spec.name = "c";
  spec.count = 4;
  p.add_cluster_zone(spec);
  const LinkId shortcut = p.add_link("shortcut", 1e9, 1e-6);
  p.add_route(p.host_node(0), p.host_node(3), {shortcut});
  p.seal();
  EXPECT_EQ(p.route(0, 3).links(), std::vector<LinkId>{shortcut});
  EXPECT_EQ(p.route(3, 0).links(), std::vector<LinkId>{shortcut});
  // Other pairs still compose through the zone rule.
  EXPECT_EQ(p.route(0, 2).size(), 2u);
}

TEST(ZoneRouting, IntraClusterCompositionLeavesNoPerPairState) {
  ClusterZoneSpec spec;
  spec.name = "big";
  spec.count = 512;
  Platform p;
  p.add_cluster_zone(spec);
  p.seal();
  sg::xbt::Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const int s = static_cast<int>(rng.uniform_int(0, spec.count - 1));
    const int d = static_cast<int>(rng.uniform_int(0, spec.count - 1));
    if (s == d)
      continue;
    const RouteView r = p.route(s, d);
    ASSERT_EQ(r.size(), 2u);
    ASSERT_DOUBLE_EQ(r.latency(), 2 * spec.link_latency);
  }
  // No pair cache entries, no Dijkstra trees, O(hosts) segments.
  EXPECT_EQ(p.resolved_route_count(), 0u);
  EXPECT_EQ(p.cached_sssp_tree_count(), 0u);
  EXPECT_EQ(p.interned_segment_count(), 3u * 512u);
}

TEST(ZoneRouting, CrossZonePairsAreMemoizedPerGatewayPairOnly) {
  Platform p;
  for (int c = 0; c < 2; ++c) {
    ClusterZoneSpec spec;
    spec.name = "z" + std::to_string(c);
    spec.count = 64;
    p.add_cluster_zone(spec);
  }
  const LinkId wan = p.add_link("wan", 1e9, 1e-2, SharingPolicy::kFatpipe);
  p.add_edge(p.zone_gateway(0), p.zone_gateway(1), wan);
  p.seal();
  sg::xbt::Rng rng(5);
  const size_t segs_before = p.interned_segment_count();
  for (int i = 0; i < 2000; ++i) {
    const int s = static_cast<int>(rng.uniform_int(0, 63));
    const int d = 64 + static_cast<int>(rng.uniform_int(0, 63));
    const RouteView r = p.route(s, d);
    ASSERT_EQ(r.size(), 5u);  // up, backbone, wan, backbone, down
  }
  // One interned gateway->gateway segment serves all 4096 member pairs, and
  // none of them entered the per-pair cache.
  EXPECT_EQ(p.interned_segment_count(), segs_before + 1);
  EXPECT_EQ(p.resolved_route_count(), 0u);
}

TEST(ZoneRouting, DanglingClusterIsUnreachableWithGoodDiagnostics) {
  Platform p;
  ClusterZoneSpec spec;
  spec.name = "island";
  spec.count = 2;
  p.add_cluster_zone(spec);
  p.add_host("mainland", 1e9);
  p.seal();
  EXPECT_TRUE(p.reachable(0, 1));
  EXPECT_FALSE(p.reachable(0, 2));
  try {
    (void)p.route(0, 2);
    FAIL() << "expected xbt::InvalidArgument";
  } catch (const sg::xbt::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("island0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mainland"), std::string::npos) << msg;
  }
}

}  // namespace
