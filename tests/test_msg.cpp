/// Tests for the MSG prototyping API, including a faithful re-run of the
/// paper's client/server listing.
#include <gtest/gtest.h>

#include <vector>

#include "msg/msg.hpp"
#include "platform/builders.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"

namespace {

using namespace sg::msg;

class MsgTest : public ::testing::Test {
protected:
  void SetUp() override {
    sg::core::declare_engine_config();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1.0);
    cfg.set("network/tcp-gamma", 1e18);
  }
  void TearDown() override {
    MSG_clean();
    auto& cfg = sg::xbt::Config::instance();
    cfg.set("network/bandwidth-factor", 1460.0 / 1500.0);
    cfg.set("network/tcp-gamma", 65536.0);
  }
};

TEST_F(MsgTest, HostLookups) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  EXPECT_EQ(MSG_get_host_number(), 2);
  auto h = MSG_get_host_by_name("left");
  EXPECT_EQ(MSG_host_get_name(h), "left");
  EXPECT_DOUBLE_EQ(MSG_host_get_speed(h), 1e9);
  EXPECT_TRUE(MSG_host_is_on(h));
  EXPECT_THROW(MSG_get_host_by_name("nope"), sg::xbt::InvalidArgument);
}

TEST_F(MsgTest, TaskExecuteTiming) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  double done = -1;
  MSG_process_create("worker", [&] {
    m_task_t t = MSG_task_create("work", 3e9, 0.0);
    MSG_task_execute(t);
    MSG_task_destroy(t);
    done = MSG_get_clock();
  }, MSG_get_host_by_name("left"));
  MSG_main();
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST_F(MsgTest, PaperClientServer) {
  // The paper's listing: client sends a "Remote" task (30 MFlop compute
  // payload / 3.2 MB comm payload) to the server, executes a local task,
  // then waits for the server's ack (0 flop, 10 KB).
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  constexpr int PORT_22 = 2;
  constexpr int PORT_23 = 3;
  double client_done = -1;

  MSG_process_create("client", [&] {
    m_host_t destination = MSG_get_host_by_name("right");
    /* simulated data transfer */
    m_task_t remote = MSG_task_create("Remote", 30.0e6, 3.2e6);
    MSG_task_put(remote, destination, PORT_22);
    /* simulated task execution */
    m_task_t local = MSG_task_create("Local", 10.50e6, 3.2e6);
    MSG_task_execute(local);
    MSG_task_destroy(local);
    /* simulated data reception */
    m_task_t ack = nullptr;
    MSG_task_get(&ack, PORT_23);
    MSG_task_destroy(ack);
    client_done = MSG_get_clock();
  }, MSG_get_host_by_name("left"));

  MSG_process_create("server", [&] {
    m_task_t task = nullptr;
    MSG_task_get(&task, PORT_22);
    MSG_task_execute(task);
    m_host_t source = task->source;
    MSG_task_destroy(task);
    m_task_t ack = MSG_task_create("Ack", 0, 0.01e6);
    MSG_task_put(ack, source, PORT_23);
  }, MSG_get_host_by_name("right"));

  MSG_main();
  // transfer 3.2e6/1e8 = 0.032 ; server exec 30e6/1e9 = 0.030
  // client local exec 10.5e6/1e9 = 0.0105 (overlaps with server)
  // ack 1e4/1e8 = 1e-4. Total = 0.032 + 0.030 + 0.0001 = 0.0621
  EXPECT_NEAR(client_done, 0.0621, 1e-9);
}

TEST_F(MsgTest, TaskSourceIsFilledIn) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  m_host_t seen_source;
  MSG_process_create("sender", [&] {
    m_task_t t = MSG_task_create("t", 0, 1e6);
    MSG_task_put(t, MSG_get_host_by_name("right"), 0);
  }, MSG_get_host_by_name("left"));
  MSG_process_create("receiver", [&] {
    m_task_t t = nullptr;
    MSG_task_get(&t, 0);
    seen_source = t->source;
    MSG_task_destroy(t);
  }, MSG_get_host_by_name("right"));
  MSG_main();
  EXPECT_EQ(seen_source, MSG_get_host_by_name("left"));
}

TEST_F(MsgTest, GetWithTimeoutThrows) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  bool timed_out = false;
  MSG_process_create("r", [&] {
    m_task_t t = nullptr;
    try {
      MSG_task_get_with_timeout(&t, 1, 0.25);
    } catch (const sg::xbt::TimeoutException&) {
      timed_out = true;
    }
  }, MSG_host_by_index(0));
  MSG_main();
  EXPECT_TRUE(timed_out);
}

TEST_F(MsgTest, ListenProbesChannel) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  bool before = true, after = false;
  MSG_process_create("r", [&] {
    before = MSG_task_listen(4);
    MSG_process_sleep(1.0);
    after = MSG_task_listen(4);
    m_task_t t = nullptr;
    MSG_task_get(&t, 4);
    MSG_task_destroy(t);
  }, MSG_host_by_index(0));
  MSG_process_create("s", [&] {
    m_task_t t = MSG_task_create("t", 0, 1e3);
    MSG_task_put(t, MSG_host_by_index(0), 4);
  }, MSG_host_by_index(1));
  MSG_main();
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST_F(MsgTest, ChannelRangeChecked) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0), /*channels=*/4);
  bool threw = false;
  MSG_process_create("r", [&] {
    m_task_t t = nullptr;
    try {
      MSG_task_get(&t, 7);
    } catch (const sg::xbt::InvalidArgument&) {
      threw = true;
    }
  }, MSG_host_by_index(0));
  MSG_main();
  EXPECT_TRUE(threw);
}

TEST_F(MsgTest, PutBoundedCapsRate) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  double done = -1;
  MSG_process_create("s", [&] {
    m_task_t t = MSG_task_create("t", 0, 1e6);
    MSG_task_put_bounded(t, MSG_host_by_index(1), 0, 1e5);
    done = MSG_get_clock();
  }, MSG_host_by_index(0));
  MSG_process_create("r", [&] {
    m_task_t t = nullptr;
    MSG_task_get(&t, 0);
    MSG_task_destroy(t);
  }, MSG_host_by_index(1));
  MSG_main();
  EXPECT_NEAR(done, 10.0, 1e-9);
}

TEST_F(MsgTest, ProcessLifecycleOps) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  double worker_done = -1;
  auto worker = MSG_process_create("worker", [&] {
    MSG_task_execute(std::unique_ptr<Task>(MSG_task_create("w", 2e9, 0)).get());
    worker_done = MSG_get_clock();
  }, MSG_host_by_index(0));
  MSG_process_create("boss", [&] {
    EXPECT_TRUE(MSG_process_is_alive(worker));
    EXPECT_EQ(MSG_process_get_name(worker), "worker");
    MSG_process_sleep(0.5);
    MSG_process_suspend(worker);
    MSG_process_sleep(1.0);
    MSG_process_resume(worker);
  }, MSG_host_by_index(1));
  MSG_main();
  EXPECT_DOUBLE_EQ(worker_done, 3.0);  // 2s work + 1s suspended
}

TEST_F(MsgTest, ParallelTask) {
  MSG_init(sg::platform::make_dumbbell(1e9, 1e8, 0.0));
  double done = -1;
  MSG_process_create("p", [&] {
    MSG_parallel_task_execute("pt", {MSG_host_by_index(0), MSG_host_by_index(1)},
                              {1e9, 1e9}, {{0.0, 1e8}, {0.0, 0.0}});
    done = MSG_get_clock();
  }, MSG_host_by_index(0));
  MSG_main();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST_F(MsgTest, ConcurrentClientsInterfereOnSharedSegment) {
  // Three clients upload simultaneously to one server through the hub
  // segment: the shared link serializes their aggregate bandwidth.
  MSG_init(sg::platform::make_client_server_lan(3, 1, 1e9, 1e9, 1e8, 0.0));
  std::vector<double> done(3, -1);
  for (int i = 0; i < 3; ++i) {
    MSG_process_create("client" + std::to_string(i), [&, i] {
      m_task_t t = MSG_task_create("data", 0, 1e8);
      MSG_task_put(t, MSG_get_host_by_name("server1"), i);
      done[static_cast<size_t>(i)] = MSG_get_clock();
    }, MSG_get_host_by_name("client" + std::to_string(i + 1)));
  }
  // One receiver per channel so all three transfers are in flight together.
  for (int i = 0; i < 3; ++i) {
    MSG_process_create("server-recv" + std::to_string(i), [i] {
      m_task_t t = nullptr;
      MSG_task_get(&t, i);
      MSG_task_destroy(t);
    }, MSG_get_host_by_name("server1"));
  }
  MSG_main();
  // All three share the 1e8 B/s hub segment -> each needs 3s.
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(done[static_cast<size_t>(i)], 3.0, 1e-6);
}

}  // namespace
