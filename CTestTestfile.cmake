# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/test_datadesc[1]_include.cmake")
include("/root/repo/test_engine[1]_include.cmake")
include("/root/repo/test_fault_injection[1]_include.cmake")
include("/root/repo/test_gras[1]_include.cmake")
include("/root/repo/test_integration[1]_include.cmake")
include("/root/repo/test_kernel[1]_include.cmake")
include("/root/repo/test_maxmin[1]_include.cmake")
include("/root/repo/test_msg[1]_include.cmake")
include("/root/repo/test_pkt[1]_include.cmake")
include("/root/repo/test_platform[1]_include.cmake")
include("/root/repo/test_routing_lazy[1]_include.cmake")
include("/root/repo/test_smpi[1]_include.cmake")
include("/root/repo/test_toolbox[1]_include.cmake")
include("/root/repo/test_topo[1]_include.cmake")
include("/root/repo/test_trace[1]_include.cmake")
include("/root/repo/test_viz[1]_include.cmake")
include("/root/repo/test_xbt[1]_include.cmake")
include("/root/repo/test_zone_routing[1]_include.cmake")
