/// \file runtime.hpp
/// Internal: the virtualization layer that lets the same GRAS code run on
/// the simulator or on real sockets. Each GRAS process is bound to one
/// Runtime implementing the transport and the clock — keyed by the current
/// kernel actor in simulation mode (fibers share one OS thread, so a
/// thread-local cannot tell simulated processes apart) and by a thread-local
/// in real-life mode (one OS thread per process).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "gras/gras.hpp"

namespace sg::gras::detail {

class Runtime {
public:
  virtual ~Runtime() = default;

  virtual void socket_server(int port) = 0;
  virtual SocketPtr socket_client(const std::string& host, int port) = 0;
  virtual void msg_send(const SocketPtr& socket, const std::string& type,
                        const datadesc::Value& payload) = 0;
  /// Wait for a message of type `want` (any type when empty).
  virtual Message msg_wait(double timeout, const std::string& want) = 0;

  virtual double time() = 0;
  virtual void sleep(double seconds) = 0;
  /// Account `seconds` of measured real computation (simulation mode turns
  /// this into a simulated execution; real mode does nothing).
  virtual void inject_compute(double seconds) = 0;

  const std::string& name() const { return name_; }

  /// Per-process callback table (msg_handle dispatch).
  std::map<std::string, std::function<void(Message&)>> callbacks;

protected:
  explicit Runtime(std::string name) : name_(std::move(name)) {}
  std::string name_;
};

/// The runtime of the calling real-life GRAS process (null outside any).
Runtime*& tl_runtime();

/// Fetch + check: throws InvalidArgument outside a GRAS process.
Runtime& current_runtime();

/// RAII binding of a Runtime to the calling process for its lifetime:
/// registers against the current kernel actor when inside a simulation,
/// against the current thread otherwise.
class CurrentScope {
public:
  explicit CurrentScope(Runtime* rt);
  ~CurrentScope();
  CurrentScope(const CurrentScope&) = delete;
  CurrentScope& operator=(const CurrentScope&) = delete;

private:
  long actor_id_;  ///< -1 when bound through the thread-local
};

/// Encoded-message framing overhead added to the simulated/real wire size.
constexpr size_t kHeaderOverhead = 16;

}  // namespace sg::gras::detail
