/// \file runtime.hpp
/// Internal: the virtualization layer that lets the same GRAS code run on
/// the simulator or on real sockets. Each GRAS process is bound (through a
/// thread-local) to one Runtime implementing the transport and the clock.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "gras/gras.hpp"

namespace sg::gras::detail {

class Runtime {
public:
  virtual ~Runtime() = default;

  virtual void socket_server(int port) = 0;
  virtual SocketPtr socket_client(const std::string& host, int port) = 0;
  virtual void msg_send(const SocketPtr& socket, const std::string& type,
                        const datadesc::Value& payload) = 0;
  /// Wait for a message of type `want` (any type when empty).
  virtual Message msg_wait(double timeout, const std::string& want) = 0;

  virtual double time() = 0;
  virtual void sleep(double seconds) = 0;
  /// Account `seconds` of measured real computation (simulation mode turns
  /// this into a simulated execution; real mode does nothing).
  virtual void inject_compute(double seconds) = 0;

  const std::string& name() const { return name_; }

  /// Per-process callback table (msg_handle dispatch).
  std::map<std::string, std::function<void(Message&)>> callbacks;

protected:
  explicit Runtime(std::string name) : name_(std::move(name)) {}
  std::string name_;
};

/// The runtime of the calling GRAS process (null outside any process).
Runtime*& tl_runtime();

/// Fetch + check: throws InvalidArgument outside a GRAS process.
Runtime& current_runtime();

/// Encoded-message framing overhead added to the simulated/real wire size.
constexpr size_t kHeaderOverhead = 16;

}  // namespace sg::gras::detail
