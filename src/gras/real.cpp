/// Real-world-mode GRAS: the same per-process API carried by real TCP
/// sockets. Each process is an OS thread with its own message queue; every
/// socket (outgoing connection or accepted peer) has a reader thread that
/// decodes incoming frames into the owning process's queue.
///
/// Frame format (all big-endian):
///   u32 magic 'GRAS' | u16 type-name length | name bytes | u32 payload | payload
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <thread>
#include <vector>

#include "gras/runtime.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(gras_rl, "GRAS real-world transport");

namespace sg::gras {

using Clock = std::chrono::steady_clock;

namespace {

constexpr std::uint32_t kMagic = 0x47524153;  // "GRAS"

void write_all(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0)
      throw xbt::NetworkFailureException("socket write failed");
    p += w;
    n -= static_cast<size_t>(w);
  }
}

/// Returns false on orderly EOF at a frame boundary.
bool read_all(int fd, void* data, size_t n, bool eof_ok) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) {
      if (eof_ok && got == 0)
        return false;
      throw xbt::NetworkFailureException("socket closed mid-frame");
    }
    if (r < 0)
      throw xbt::NetworkFailureException("socket read failed");
    got += static_cast<size_t>(r);
  }
  return true;
}

struct Frame {
  std::string type;
  std::vector<std::uint8_t> wire;
};

void send_frame(int fd, const std::string& type, const std::vector<std::uint8_t>& wire) {
  std::vector<std::uint8_t> header;
  header.reserve(10 + type.size());
  auto put32 = [&](std::uint32_t v) {
    header.push_back(static_cast<std::uint8_t>(v >> 24));
    header.push_back(static_cast<std::uint8_t>(v >> 16));
    header.push_back(static_cast<std::uint8_t>(v >> 8));
    header.push_back(static_cast<std::uint8_t>(v));
  };
  put32(kMagic);
  header.push_back(static_cast<std::uint8_t>(type.size() >> 8));
  header.push_back(static_cast<std::uint8_t>(type.size()));
  header.insert(header.end(), type.begin(), type.end());
  put32(static_cast<std::uint32_t>(wire.size()));
  write_all(fd, header.data(), header.size());
  if (!wire.empty())
    write_all(fd, wire.data(), wire.size());
}

bool recv_frame(int fd, Frame& out) {
  std::uint8_t hdr[6];
  if (!read_all(fd, hdr, 6, /*eof_ok=*/true))
    return false;
  const std::uint32_t magic = (std::uint32_t(hdr[0]) << 24) | (std::uint32_t(hdr[1]) << 16) |
                              (std::uint32_t(hdr[2]) << 8) | hdr[3];
  if (magic != kMagic)
    throw xbt::NetworkFailureException("bad frame magic");
  const size_t name_len = (size_t(hdr[4]) << 8) | hdr[5];
  out.type.resize(name_len);
  read_all(fd, out.type.data(), name_len, false);
  std::uint8_t len4[4];
  read_all(fd, len4, 4, false);
  const std::uint32_t payload_len =
      (std::uint32_t(len4[0]) << 24) | (std::uint32_t(len4[1]) << 16) | (std::uint32_t(len4[2]) << 8) | len4[3];
  out.wire.resize(payload_len);
  if (payload_len > 0)
    read_all(fd, out.wire.data(), payload_len, false);
  return true;
}

class RealRuntime;

/// A connected TCP endpoint (outgoing or accepted).
class RealSocket final : public Socket, public std::enable_shared_from_this<RealSocket> {
public:
  RealSocket(int fd, std::string label) : fd_(fd), label_(std::move(label)) {}
  ~RealSocket() override { close_fd(); }

  std::string peer() const override { return label_; }

  void send(const std::string& type, const std::vector<std::uint8_t>& wire) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    send_frame(fd_, type, wire);
  }

  int fd() const { return fd_; }

  void close_fd() {
    int expected = fd_.exchange(-1);
    if (expected >= 0) {
      ::shutdown(expected, SHUT_RDWR);
      ::close(expected);
    }
  }

private:
  std::atomic<int> fd_;
  std::string label_;
  std::mutex write_mutex_;
};

}  // namespace

// ---------------------------------------------------------------------------

struct RealWorld::RealState {
  std::mutex mutex;
  std::condition_variable cv;
  /// Virtual DNS + port space: (host name, app port) -> real TCP port.
  std::map<std::pair<std::string, int>, int> port_table;
  std::vector<std::thread> process_threads;
  Clock::time_point start = Clock::now();
  std::atomic<bool> shutting_down{false};
};

namespace {

class RealRuntime final : public detail::Runtime {
public:
  RealRuntime(std::string name, std::string host, RealWorld::RealState* world)
      : Runtime(std::move(name)), host_(std::move(host)), world_(world) {}

  ~RealRuntime() override { teardown(); }

  void socket_server(int port) override {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
      throw xbt::NetworkFailureException("cannot create server socket");
    int on = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral: the OS picks a free port
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 || ::listen(fd, 16) != 0) {
      ::close(fd);
      throw xbt::NetworkFailureException("cannot bind/listen");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    const int real_port = ntohs(addr.sin_port);
    {
      std::lock_guard<std::mutex> lock(world_->mutex);
      world_->port_table[{host_, port}] = real_port;
    }
    world_->cv.notify_all();
    listen_fds_.push_back(fd);
    acceptors_.emplace_back([this, fd] { accept_loop(fd); });
    SG_DEBUG(gras_rl, "'%s' listening: virtual %s:%d -> 127.0.0.1:%d", name_.c_str(), host_.c_str(),
             0, real_port);
  }

  SocketPtr socket_client(const std::string& host, int port) override {
    int real_port = -1;
    {
      std::unique_lock<std::mutex> lock(world_->mutex);
      const bool found = world_->cv.wait_for(lock, std::chrono::seconds(10), [&] {
        return world_->port_table.count({host, port}) != 0;
      });
      if (!found)
        throw xbt::NetworkFailureException("socket_client: no server at " + host + ":" +
                                           std::to_string(port));
      real_port = world_->port_table[{host, port}];
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
      throw xbt::NetworkFailureException("cannot create client socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(real_port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw xbt::NetworkFailureException("connect refused: " + host + ":" + std::to_string(port));
    }
    auto sock = std::make_shared<RealSocket>(fd, host + ":" + std::to_string(port));
    attach_reader(sock);
    return sock;
  }

  void msg_send(const SocketPtr& socket, const std::string& type,
                const datadesc::Value& payload) override {
    auto* sock = dynamic_cast<RealSocket*>(socket.get());
    if (sock == nullptr)
      throw xbt::InvalidArgument("msg_send: not a real-world socket");
    const auto wire =
        datadesc::ndr_codec().encode(*msgtype_payload(type), payload, datadesc::native_arch());
    sock->send(type, wire);
  }

  Message msg_wait(double timeout, const std::string& want) override {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    const auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                             std::chrono::duration<double>(timeout < 0 ? 3600.0 : timeout));
    while (true) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (want.empty() || it->type == want) {
          Message m = std::move(*it);
          queue_.erase(it);
          return m;
        }
      }
      if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One final scan in case of a lost race.
        for (auto it = queue_.begin(); it != queue_.end(); ++it)
          if (want.empty() || it->type == want) {
            Message m = std::move(*it);
            queue_.erase(it);
            return m;
          }
        throw xbt::TimeoutException("msg_wait: timeout");
      }
    }
  }

  double time() override {
    return std::chrono::duration<double>(Clock::now() - world_->start).count();
  }

  void sleep(double seconds) override {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  void inject_compute(double) override {
    // Real mode: the measured time has genuinely passed already.
  }

  void teardown() {
    if (torn_down_)
      return;
    torn_down_ = true;
    for (int fd : listen_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    {
      std::lock_guard<std::mutex> lock(sockets_mutex_);
      for (auto& s : sockets_)
        s->close_fd();
    }
    for (auto& t : acceptors_)
      if (t.joinable())
        t.join();
    for (auto& t : readers_)
      if (t.joinable())
        t.join();
  }

private:
  void accept_loop(int listen_fd) {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0)
        return;  // listening socket closed: process is done
      auto sock = std::make_shared<RealSocket>(fd, "peer@" + name_);
      attach_reader(sock);
    }
  }

  void attach_reader(const std::shared_ptr<RealSocket>& sock) {
    std::lock_guard<std::mutex> lock(sockets_mutex_);
    sockets_.push_back(sock);
    readers_.emplace_back([this, sock] { reader_loop(sock); });
  }

  void reader_loop(std::shared_ptr<RealSocket> sock) {
    try {
      Frame frame;
      while (sock->fd() >= 0 && recv_frame(sock->fd(), frame)) {
        Message m;
        m.type = frame.type;
        if (!msgtype_known(frame.type)) {
          SG_WARN(gras_rl, "'%s': frame of unknown type '%s' dropped", name_.c_str(),
                  frame.type.c_str());
          continue;
        }
        m.payload = datadesc::ndr_codec().decode(*msgtype_payload(frame.type), frame.wire,
                                                 datadesc::native_arch());
        m.source = sock;
        {
          std::lock_guard<std::mutex> lock(queue_mutex_);
          queue_.push_back(std::move(m));
        }
        queue_cv_.notify_all();
      }
    } catch (const std::exception& e) {
      if (!world_->shutting_down)
        SG_DEBUG(gras_rl, "'%s': reader ended: %s", name_.c_str(), e.what());
    }
  }

  std::string host_;
  RealWorld::RealState* world_;

  std::vector<int> listen_fds_;
  std::vector<std::thread> acceptors_;
  std::vector<std::thread> readers_;
  std::mutex sockets_mutex_;
  std::vector<std::shared_ptr<RealSocket>> sockets_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Message> queue_;
  bool torn_down_ = false;
};

}  // namespace

RealWorld::RealWorld() : state_(std::make_shared<RealState>()) {}

RealWorld::~RealWorld() {
  state_->shutting_down = true;
  for (auto& t : state_->process_threads)
    if (t.joinable())
      t.join();
}

void RealWorld::spawn(const std::string& name, const std::string& host, std::function<void()> body) {
  auto state = state_;
  state_->process_threads.emplace_back([name, host, state, body = std::move(body)] {
    RealRuntime runtime(name, host, state.get());
    {
      detail::CurrentScope scope(&runtime);
      try {
        body();
      } catch (const std::exception& e) {
        SG_ERROR(gras_rl, "GRAS process '%s' died: %s", name.c_str(), e.what());
      }
    }
    runtime.teardown();
  });
}

double RealWorld::join_all() {
  for (auto& t : state_->process_threads)
    if (t.joinable())
      t.join();
  return std::chrono::duration<double>(Clock::now() - state_->start).count();
}

int RealWorld::base_port() const { return 0; }  // ephemeral ports: no fixed base

}  // namespace sg::gras
