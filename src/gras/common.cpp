/// Mode-independent pieces of GRAS: the message type registry, the
/// per-process API dispatch, callback handling, and the benchmarking
/// machinery.
#include <chrono>
#include <mutex>
#include <unordered_map>

#include "gras/runtime.hpp"
#include "kernel/kernel.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(gras, "GRAS middleware");

namespace sg::gras {

namespace detail {

namespace {
// Simulated GRAS processes, keyed by kernel actor id. Access is serialized
// by the kernel's switch protocol; real-life processes never touch this map.
std::unordered_map<long, Runtime*>& actor_runtimes() {
  static std::unordered_map<long, Runtime*> map;
  return map;
}
}  // namespace

Runtime*& tl_runtime() {
  static thread_local Runtime* rt = nullptr;
  return rt;
}

Runtime& current_runtime() {
  // The thread-local wins: it is only ever set on real-life process threads,
  // which may run concurrently with a simulation in the main thread.
  if (Runtime* rt = tl_runtime())
    return *rt;
  if (const kernel::Actor* a = kernel::Kernel::self()) {
    auto& map = actor_runtimes();
    auto it = map.find(a->id());
    if (it != map.end())
      return *it->second;
  }
  throw xbt::InvalidArgument("this GRAS call must be made from a GRAS process");
}

CurrentScope::CurrentScope(Runtime* rt) {
  if (const kernel::Actor* a = kernel::Kernel::self()) {
    actor_id_ = a->id();
    actor_runtimes()[actor_id_] = rt;
  } else {
    actor_id_ = -1;
    tl_runtime() = rt;
  }
}

CurrentScope::~CurrentScope() {
  if (actor_id_ >= 0)
    actor_runtimes().erase(actor_id_);
  else
    tl_runtime() = nullptr;
}

}  // namespace detail

// -- message types -------------------------------------------------------------

namespace {

struct MsgTypeRegistry {
  std::mutex mutex;
  std::map<std::string, datadesc::DataDescPtr> types;
};

MsgTypeRegistry& msgtype_registry() {
  static MsgTypeRegistry reg;
  return reg;
}

}  // namespace

void msgtype_declare(const std::string& name, datadesc::DataDescPtr payload) {
  if (!payload)
    throw xbt::InvalidArgument("msgtype_declare: null payload description");
  auto& reg = msgtype_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.types[name] = std::move(payload);
}

datadesc::DataDescPtr msgtype_payload(const std::string& name) {
  auto& reg = msgtype_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.types.find(name);
  if (it == reg.types.end())
    throw xbt::InvalidArgument("unknown message type: " + name);
  return it->second;
}

bool msgtype_known(const std::string& name) {
  auto& reg = msgtype_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.types.count(name) != 0;
}

// -- per-process API ---------------------------------------------------------------

void socket_server(int port) { detail::current_runtime().socket_server(port); }

SocketPtr socket_client(const std::string& host, int port) {
  return detail::current_runtime().socket_client(host, port);
}

void msg_send(const SocketPtr& socket, const std::string& type, const datadesc::Value& payload) {
  if (!socket)
    throw xbt::InvalidArgument("msg_send: null socket");
  msgtype_payload(type)->check(payload);  // catch shape errors at the sender
  detail::current_runtime().msg_send(socket, type, payload);
}

Message msg_wait(double timeout, const std::string& want) {
  return detail::current_runtime().msg_wait(timeout, want);
}

void cb_register(const std::string& type, std::function<void(Message&)> callback) {
  detail::current_runtime().callbacks[type] = std::move(callback);
}

void msg_handle(double timeout) {
  auto& rt = detail::current_runtime();
  Message msg = rt.msg_wait(timeout, "");
  auto it = rt.callbacks.find(msg.type);
  if (it == rt.callbacks.end()) {
    SG_WARN(gras, "process '%s': no callback for message type '%s'; dropping", rt.name().c_str(),
            msg.type.c_str());
    return;
  }
  it->second(msg);
}

double os_time() { return detail::current_runtime().time(); }
void os_sleep(double seconds) { detail::current_runtime().sleep(seconds); }
const std::string& process_name() { return detail::current_runtime().name(); }

// -- benchmarking --------------------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

struct BenchState {
  Clock::time_point start;
  bool running = false;
  // "once" support
  bool once_measuring = false;
  std::string once_key;
};

BenchState& bench_state() {
  static thread_local BenchState state;
  return state;
}

struct OnceCache {
  std::mutex mutex;
  std::map<std::string, double> durations;
};

OnceCache& once_cache() {
  static OnceCache cache;
  return cache;
}

}  // namespace

void bench_always_begin() {
  auto& st = bench_state();
  if (st.running)
    throw xbt::InvalidArgument("GRAS_BENCH_ALWAYS_BEGIN: bench already running");
  st.running = true;
  st.start = Clock::now();
}

void bench_always_end() {
  auto& st = bench_state();
  if (!st.running)
    throw xbt::InvalidArgument("GRAS_BENCH_ALWAYS_END without BEGIN");
  st.running = false;
  const double dt = std::chrono::duration<double>(Clock::now() - st.start).count();
  detail::current_runtime().inject_compute(dt);
}

bool bench_once_begin(const char* file, int line) {
  auto& st = bench_state();
  if (st.running)
    throw xbt::InvalidArgument("GRAS bench: nested bench blocks are not supported");
  st.once_key = std::string(file) + ":" + std::to_string(line);
  double cached = -1.0;
  {
    // Never hold the lock across inject_compute: in simulation mode it
    // yields the actor, and a peer contending on the mutex would deadlock
    // the scheduler.
    auto& cache = once_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    auto it = cache.durations.find(st.once_key);
    if (it != cache.durations.end())
      cached = it->second;
  }
  if (cached >= 0) {
    // Already measured: only inject the recorded duration, skip the block.
    detail::current_runtime().inject_compute(cached);
    st.once_measuring = false;
    return false;
  }
  st.running = true;
  st.once_measuring = true;
  st.start = Clock::now();
  return true;
}

void bench_once_end() {
  auto& st = bench_state();
  if (!st.once_measuring) {
    return;  // replayed pass: nothing to close
  }
  st.running = false;
  st.once_measuring = false;
  const double dt = std::chrono::duration<double>(Clock::now() - st.start).count();
  {
    auto& cache = once_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.durations.emplace(st.once_key, dt);
  }
  detail::current_runtime().inject_compute(dt);
}

}  // namespace sg::gras
