/// \file gras.hpp
/// GRAS — the paper's "Grid Reality And Simulation" interface: an API to
/// develop *production* distributed applications that run unmodified either
/// inside the simulator (on kernel actors, timed by SURF) or in the real
/// world (threads + TCP sockets).
///
/// The per-process API mirrors the paper's listings:
///   msgtype_declare("ping", datadesc_by_name("int"));
///   auto peer = socket_client("server-host", 4000);
///   msg_send(peer, "ping", Value(1234));
///   Message m = msg_wait(6.0, "pong");
///   cb_register("ping", [](Message& m) { ... });
///   msg_handle(600.0);
/// plus the virtualized OS layer (os_time / os_sleep) and the automatic
/// CPU benchmarking macros (GRAS_BENCH_*).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "datadesc/codec.hpp"
#include "datadesc/datadesc.hpp"
#include "kernel/kernel.hpp"
#include "platform/platform.hpp"

namespace sg::gras {

// -- message types -------------------------------------------------------------

/// Declare (or re-declare, idempotently) a message type and its payload
/// description. Shared by all processes of the world.
void msgtype_declare(const std::string& name, datadesc::DataDescPtr payload);
datadesc::DataDescPtr msgtype_payload(const std::string& name);
bool msgtype_known(const std::string& name);

// -- sockets & messages -----------------------------------------------------------

class Socket {
public:
  virtual ~Socket() = default;
  /// Human-readable peer identification ("host:port" or actor name).
  virtual std::string peer() const = 0;
};
using SocketPtr = std::shared_ptr<Socket>;

struct Message {
  std::string type;
  datadesc::Value payload;
  SocketPtr source;  ///< reply path to the expeditor
};

// -- per-process API (valid inside a spawned GRAS process, either mode) ---------------

/// Listen for incoming connections on `port` (per-host port space in
/// simulation; real TCP port in real-world mode).
void socket_server(int port);

/// Connect to a peer ("host" is a platform host name in simulation mode,
/// a DNS name/IP in real-world mode).
SocketPtr socket_client(const std::string& host, int port);

/// Send a typed message through a socket.
void msg_send(const SocketPtr& socket, const std::string& type, const datadesc::Value& payload);

/// Wait up to `timeout` seconds for a message (of type `want`, or any type
/// when empty). Throws xbt::TimeoutException.
Message msg_wait(double timeout, const std::string& want = "");

/// Register a callback for a message type (used by msg_handle).
void cb_register(const std::string& type, std::function<void(Message&)> callback);

/// Wait for one message (up to `timeout`) and dispatch it to its callback.
/// Messages without a callback are logged and dropped.
void msg_handle(double timeout);

/// Virtualized OS layer.
double os_time();
void os_sleep(double seconds);
/// Name of the current GRAS process.
const std::string& process_name();

// -- automatic benchmarking ("automatic benchmarking of application code") ------------

/// Start/stop measuring a computation block. In simulation mode the measured
/// real duration is injected into the simulator as an equivalent execution;
/// in real-world mode the time simply passes.
void bench_always_begin();
void bench_always_end();

/// "Run once" variant: the block executes for real the first time it is
/// reached (per call site); subsequent passes only inject the recorded
/// duration. Returns whether the block must actually run.
bool bench_once_begin(const char* file, int line);
void bench_once_end();

// -- deployment: simulation mode -------------------------------------------------------

/// A simulated deployment of GRAS processes on a platform.
class SimWorld {
public:
  explicit SimWorld(platform::Platform platform);
  ~SimWorld();

  /// Create a GRAS process on a host. The function body uses the per-process
  /// API above, exactly as it would in real-world mode.
  void spawn(const std::string& name, const std::string& host, std::function<void()> body);

  /// Run the simulation to completion; returns final simulated time.
  double run();

  kernel::Kernel& kernel() { return *kernel_; }

  struct SimState;  ///< internal (public for the transport implementation)

private:
  std::unique_ptr<kernel::Kernel> kernel_;
  std::shared_ptr<SimState> state_;
};

// -- deployment: real-world mode ---------------------------------------------------------

/// A real deployment: each GRAS process is an OS thread speaking real TCP on
/// localhost (the paper runs the same code on LANs/WANs; the transport is
/// identical, only the addresses change).
class RealWorld {
public:
  RealWorld();
  ~RealWorld();

  /// Launch a process. `host` is used for socket_client name resolution among
  /// the world's processes ("virtual DNS": host -> 127.0.0.1 + port offset).
  void spawn(const std::string& name, const std::string& host, std::function<void()> body);

  /// Wait for every process to return. Returns wall-clock elapsed seconds.
  double join_all();

  /// Base TCP port of the world's port space (ports are offset from it).
  int base_port() const;

  struct RealState;  ///< internal (public for the transport implementation)

private:
  std::shared_ptr<RealState> state_;
};

}  // namespace sg::gras

/// Paper-style benchmarking macros.
#define GRAS_BENCH_ALWAYS_BEGIN() ::sg::gras::bench_always_begin()
#define GRAS_BENCH_ALWAYS_END() ::sg::gras::bench_always_end()
#define GRAS_BENCH_ONCE_RUN_ONCE_BEGIN() \
  if (::sg::gras::bench_once_begin(__FILE__, __LINE__)) {
#define GRAS_BENCH_ONCE_RUN_ONCE_END() \
  }                                    \
  ::sg::gras::bench_once_end()
