/// Simulation-mode GRAS: processes are kernel actors; sockets resolve to
/// per-actor mailboxes; the wire cost of a message is the size of its NDR
/// encoding (plus framing), timed by the SURF network model.
#include "gras/runtime.hpp"

#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(gras_sim, "GRAS simulation transport");

namespace sg::gras {

using datadesc::Value;

struct SimWorld::SimState {
  /// (host index, port) -> listening actor.
  std::map<std::pair<int, int>, kernel::ActorId> port_table;
};

namespace {

/// What actually travels through the kernel mailbox.
struct SimEnvelope {
  std::string type;
  std::vector<std::uint8_t> wire;
  kernel::ActorId sender;
};

class SimSocket final : public Socket {
public:
  SimSocket(kernel::ActorId dst, kernel::MailboxId mbox, std::string label)
      : dst_(dst), mbox_(mbox), label_(std::move(label)) {}
  std::string peer() const override { return label_; }
  kernel::ActorId dst() const { return dst_; }
  kernel::MailboxId mbox() const { return mbox_; }

private:
  kernel::ActorId dst_;
  kernel::MailboxId mbox_;  ///< interned once at connect; sends are id-keyed
  std::string label_;
};

kernel::MailboxId actor_mailbox(kernel::Kernel* k, kernel::ActorId id) {
  return k->mailbox_by_name("gras:" + std::to_string(id));
}

class SimRuntime final : public detail::Runtime {
public:
  SimRuntime(std::string name, kernel::Kernel* kernel, SimWorld::SimState* world)
      : Runtime(std::move(name)), kernel_(kernel), world_(world) {}

  void socket_server(int port) override {
    const auto* self = kernel::Kernel::self();
    world_->port_table[{self->host(), port}] = self->id();
    SG_DEBUG(gras_sim, "'%s' listens on port %d", name_.c_str(), port);
  }

  SocketPtr socket_client(const std::string& host, int port) override {
    auto host_idx = kernel_->engine().platform().host_by_name(host);
    if (!host_idx)
      throw xbt::InvalidArgument("socket_client: unknown host " + host);
    // Emulate TCP connect retries: the server process may not have opened
    // its socket yet (the paper's client sleeps 1s for exactly this reason).
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto it = world_->port_table.find({*host_idx, port});
      if (it != world_->port_table.end() && kernel_->is_alive(it->second))
        return std::make_shared<SimSocket>(it->second, actor_mailbox(kernel_, it->second),
                                           host + ":" + std::to_string(port));
      kernel_->sleep_for(0.1);
    }
    throw xbt::NetworkFailureException("socket_client: connection refused by " + host + ":" +
                                       std::to_string(port));
  }

  void msg_send(const SocketPtr& socket, const std::string& type, const Value& payload) override {
    const auto* sock = dynamic_cast<const SimSocket*>(socket.get());
    if (sock == nullptr)
      throw xbt::InvalidArgument("msg_send: not a simulation socket");
    auto* env = new SimEnvelope();
    env->type = type;
    env->wire = datadesc::ndr_codec().encode(*msgtype_payload(type), payload,
                                             datadesc::native_arch());
    env->sender = kernel::Kernel::self()->id();
    const double bytes = static_cast<double>(env->wire.size() + detail::kHeaderOverhead);
    // TCP write semantics: buffered, the sender does not wait for delivery.
    kernel_->send_detached(sock->mbox(), env, bytes);
  }

  Message msg_wait(double timeout, const std::string& want) override {
    // Serve from the local reorder buffer first.
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (want.empty() || it->type == want) {
        Message m = std::move(*it);
        pending_.erase(it);
        return m;
      }
    }
    const double deadline = kernel_->now() + timeout;
    while (true) {
      const double remaining = timeout < 0 ? -1.0 : deadline - kernel_->now();
      if (timeout >= 0 && remaining <= 0)
        throw xbt::TimeoutException("msg_wait: no '" + (want.empty() ? "any" : want) +
                                    "' message within timeout");
      void* raw = kernel_->recv(self_mbox(), remaining);
      std::unique_ptr<SimEnvelope> env(static_cast<SimEnvelope*>(raw));
      Message m;
      m.type = env->type;
      m.payload = datadesc::ndr_codec().decode(*msgtype_payload(env->type), env->wire,
                                               datadesc::native_arch());
      std::string label = "actor:" + std::to_string(env->sender);
      if (const auto* actor = kernel_->actor(env->sender))
        label = actor->name();
      m.source = std::make_shared<SimSocket>(env->sender, actor_mailbox(kernel_, env->sender), label);
      if (want.empty() || m.type == want)
        return m;
      pending_.push_back(std::move(m));
    }
  }

  double time() override { return kernel_->now(); }

  void sleep(double seconds) override { kernel_->sleep_for(seconds); }

  void inject_compute(double seconds) override {
    if (seconds <= 0)
      return;
    const int host = kernel::Kernel::self()->host();
    const double speed = kernel_->engine().host_speed(host);
    kernel_->execute(seconds * (speed > 0 ? speed : 1e9));
  }

private:
  kernel::MailboxId self_mbox() {
    if (self_mbox_ == kernel::kNoMailbox)
      self_mbox_ = actor_mailbox(kernel_, kernel::Kernel::self()->id());
    return self_mbox_;
  }

  kernel::Kernel* kernel_;
  SimWorld::SimState* world_;
  kernel::MailboxId self_mbox_ = kernel::kNoMailbox;
  std::deque<Message> pending_;
};

}  // namespace

SimWorld::SimWorld(platform::Platform platform)
    : kernel_(std::make_unique<kernel::Kernel>(std::move(platform))),
      state_(std::make_shared<SimState>()) {}

SimWorld::~SimWorld() = default;

void SimWorld::spawn(const std::string& name, const std::string& host, std::function<void()> body) {
  auto host_idx = kernel_->engine().platform().host_by_name(host);
  if (!host_idx)
    throw xbt::InvalidArgument("SimWorld::spawn: unknown host " + host);
  kernel::Kernel* k = kernel_.get();
  auto state = state_;
  kernel_->spawn(name, *host_idx, [name, k, state, body = std::move(body)] {
    SimRuntime runtime(name, k, state.get());
    detail::CurrentScope scope(&runtime);  // unbinds on any exit, kills included
    body();
  });
}

double SimWorld::run() { return kernel_->run(); }

}  // namespace sg::gras
