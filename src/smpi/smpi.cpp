#include "smpi/smpi.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>

#include "kernel/kernel.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(smpi, "SMPI interface");

namespace sg::smpi {

const Datatype MPI_BYTE{1, "MPI_BYTE"};
const Datatype MPI_CHAR{1, "MPI_CHAR"};
const Datatype MPI_INT{4, "MPI_INT"};
const Datatype MPI_LONG{8, "MPI_LONG"};
const Datatype MPI_FLOAT{4, "MPI_FLOAT"};
const Datatype MPI_DOUBLE{8, "MPI_DOUBLE"};

namespace {

/// A message in flight (payload copied at send time).
struct Envelope {
  int src;
  int tag;
  std::vector<std::uint8_t> data;
};

struct RankState;

struct World {
  kernel::Kernel* kernel = nullptr;
  int size = 0;
  std::vector<RankState*> ranks;
  double eager_threshold = 65536;
};

struct RankState {
  World* world = nullptr;
  int rank = -1;
  kernel::MailboxId mbox = kernel::kNoMailbox;  ///< interned once at world setup
  std::deque<std::unique_ptr<Envelope>> unexpected;
};

// Rank state keyed by kernel actor id, not by thread: under the fiber
// context backend every rank shares the maestro's OS thread, so a
// thread_local cannot tell ranks apart. Access is serialized by the kernel.
std::unordered_map<long, RankState*>& actor_ranks() {
  static std::unordered_map<long, RankState*> map;
  return map;
}

/// RAII binding of a rank to its actor (unbinds on any exit, kills included).
struct RankScope {
  long actor_id;
  explicit RankScope(RankState* st) : actor_id(kernel::Kernel::self()->id()) {
    actor_ranks()[actor_id] = st;
  }
  ~RankScope() { actor_ranks().erase(actor_id); }
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;
};

RankState& self() {
  if (const kernel::Actor* a = kernel::Kernel::self()) {
    auto& map = actor_ranks();
    auto it = map.find(a->id());
    if (it != map.end())
      return *it->second;
  }
  throw xbt::InvalidArgument("MPI call outside of an SMPI rank");
}

bool matches(const Envelope& env, int source, int tag) {
  return (source == MPI_ANY_SOURCE || env.src == source) && (tag == MPI_ANY_TAG || env.tag == tag);
}

}  // namespace

struct RequestRec {
  enum class Kind { kSend, kRecv } kind;
  bool done = false;
  // send side
  kernel::CommPtr comm;       ///< only for rendezvous (large) sends
  Envelope* sent = nullptr;   ///< envelope handed to the kernel (owned by receiver on completion)
  // recv side
  void* buf = nullptr;
  size_t capacity = 0;
  int source = MPI_ANY_SOURCE;
  int tag = MPI_ANY_TAG;
  Status status;
};

namespace {

void deliver(RequestRec& req, std::unique_ptr<Envelope> env) {
  if (env->data.size() > req.capacity)
    throw xbt::InvalidArgument("MPI_Recv: message truncated (" + std::to_string(env->data.size()) +
                               " > " + std::to_string(req.capacity) + " bytes)");
  std::memcpy(req.buf, env->data.data(), env->data.size());
  req.status.source = env->src;
  req.status.tag = env->tag;
  req.status.bytes = env->data.size();
  req.done = true;
}

/// Blocking progress for a receive request: consume envelopes from the rank
/// mailbox until one matches, buffering the others (unexpected queue).
void progress_recv(RankState& st, RequestRec& req) {
  // 1. unexpected queue
  for (auto it = st.unexpected.begin(); it != st.unexpected.end(); ++it) {
    if (matches(**it, req.source, req.tag)) {
      auto env = std::move(*it);
      st.unexpected.erase(it);
      deliver(req, std::move(env));
      return;
    }
  }
  // 2. pull from the wire
  while (true) {
    void* raw = st.world->kernel->recv(st.mbox, -1.0);
    std::unique_ptr<Envelope> env(static_cast<Envelope*>(raw));
    if (matches(*env, req.source, req.tag)) {
      deliver(req, std::move(env));
      return;
    }
    st.unexpected.push_back(std::move(env));
  }
}

}  // namespace

// -- world --------------------------------------------------------------------

double smpi_run(platform::Platform platform, int nranks, std::function<void(int)> rank_main,
                const std::vector<std::string>& host_names) {
  if (nranks <= 0)
    throw xbt::InvalidArgument("smpi_run: need at least one rank");
  auto& cfg = xbt::Config::instance();
  cfg.declare("smpi/eager-threshold", 65536.0,
              "messages below this size are sent eagerly (buffered); larger ones rendezvous");

  kernel::Kernel kernel(std::move(platform));
  World world;
  world.kernel = &kernel;
  world.size = nranks;
  world.ranks.resize(static_cast<size_t>(nranks));
  world.eager_threshold = cfg.get("smpi/eager-threshold");

  const auto& p = kernel.engine().platform();
  std::vector<int> hosts;
  if (host_names.empty()) {
    for (int r = 0; r < nranks; ++r)
      hosts.push_back(r % static_cast<int>(p.host_count()));
  } else {
    for (const std::string& name : host_names) {
      auto idx = p.host_by_name(name);
      if (!idx)
        throw xbt::InvalidArgument("smpi_run: unknown host " + name);
      hosts.push_back(*idx);
    }
    if (static_cast<int>(hosts.size()) != nranks)
      throw xbt::InvalidArgument("smpi_run: host list size != nranks");
  }

  std::vector<std::unique_ptr<RankState>> states;
  for (int r = 0; r < nranks; ++r) {
    auto st = std::make_unique<RankState>();
    st->world = &world;
    st->rank = r;
    st->mbox = kernel.mailbox_by_name("smpi:" + std::to_string(r));
    world.ranks[static_cast<size_t>(r)] = st.get();
    states.push_back(std::move(st));
  }

  for (int r = 0; r < nranks; ++r) {
    RankState* st = states[static_cast<size_t>(r)].get();
    kernel.spawn("rank" + std::to_string(r), hosts[static_cast<size_t>(r)], [st, rank_main] {
      RankScope scope(st);
      rank_main(st->rank);
    });
  }
  return kernel.run();
}

// -- rank-side API ---------------------------------------------------------------

int MPI_Comm_rank() { return self().rank; }
int MPI_Comm_size() { return self().world->size; }
double MPI_Wtime() { return self().world->kernel->now(); }

namespace {

Request isend_impl(const void* buf, int count, const Datatype& type, int dest, int tag) {
  RankState& st = self();
  if (dest < 0 || dest >= st.world->size)
    throw xbt::InvalidArgument("MPI_Send: bad destination rank " + std::to_string(dest));
  auto req = std::make_shared<RequestRec>();
  req->kind = RequestRec::Kind::kSend;
  const size_t bytes = static_cast<size_t>(count) * type.size;
  auto* env = new Envelope();
  env->src = st.rank;
  env->tag = tag;
  env->data.resize(bytes);
  if (bytes > 0)
    std::memcpy(env->data.data(), buf, bytes);
  // On the wire both the payload and a small header travel.
  const double wire_bytes = static_cast<double>(bytes) + 32.0;
  if (static_cast<double>(bytes) <= st.world->eager_threshold) {
    // Eager: buffered send, sender is immediately free.
    st.world->kernel->send_detached(st.world->ranks[static_cast<size_t>(dest)]->mbox, env, wire_bytes);
    req->done = true;
  } else {
    // Rendezvous: completes when the receiver has it.
    req->comm = st.world->kernel->send_async(st.world->ranks[static_cast<size_t>(dest)]->mbox, env, wire_bytes);
    req->sent = env;
  }
  return req;
}

}  // namespace

void MPI_Send(const void* buf, int count, const Datatype& type, int dest, int tag) {
  Request req = isend_impl(buf, count, type, dest, tag);
  MPI_Wait(req);
}

Request MPI_Isend(const void* buf, int count, const Datatype& type, int dest, int tag) {
  return isend_impl(buf, count, type, dest, tag);
}

Request MPI_Irecv(void* buf, int count, const Datatype& type, int source, int tag) {
  auto req = std::make_shared<RequestRec>();
  req->kind = RequestRec::Kind::kRecv;
  req->buf = buf;
  req->capacity = static_cast<size_t>(count) * type.size;
  req->source = source;
  req->tag = tag;
  return req;
}

void MPI_Recv(void* buf, int count, const Datatype& type, int source, int tag, Status* status) {
  Request req = MPI_Irecv(buf, count, type, source, tag);
  MPI_Wait(req, status);
}

void MPI_Wait(Request& request, Status* status) {
  if (!request)
    throw xbt::InvalidArgument("MPI_Wait: null request");
  RankState& st = self();
  if (!request->done) {
    if (request->kind == RequestRec::Kind::kRecv) {
      progress_recv(st, *request);
    } else {
      st.world->kernel->comm_wait(request->comm);
      request->done = true;
    }
  }
  if (status != nullptr)
    *status = request->status;
}

void MPI_Waitall(std::vector<Request>& requests) {
  for (auto& r : requests)
    MPI_Wait(r);
}

bool MPI_Test(Request& request, Status* status) {
  if (!request)
    throw xbt::InvalidArgument("MPI_Test: null request");
  RankState& st = self();
  if (!request->done) {
    if (request->kind == RequestRec::Kind::kRecv) {
      for (auto it = st.unexpected.begin(); it != st.unexpected.end(); ++it) {
        if (matches(**it, request->source, request->tag)) {
          auto env = std::move(*it);
          st.unexpected.erase(it);
          deliver(*request, std::move(env));
          break;
        }
      }
    } else if (st.world->kernel->comm_test(request->comm)) {
      request->done = true;
    }
  }
  if (request->done && status != nullptr)
    *status = request->status;
  return request->done;
}

void MPI_Sendrecv(const void* sendbuf, int sendcount, const Datatype& type, int dest, int sendtag,
                  void* recvbuf, int recvcount, int source, int recvtag, Status* status) {
  Request send = MPI_Isend(sendbuf, sendcount, type, dest, sendtag);
  Request recv = MPI_Irecv(recvbuf, recvcount, type, source, recvtag);
  MPI_Wait(recv, status);
  MPI_Wait(send);
}

// -- collectives -------------------------------------------------------------------

namespace {
constexpr int kCollTagBase = 1 << 20;  // keep collective traffic away from user tags
}

void MPI_Barrier() {
  // Dissemination barrier: ceil(log2 P) rounds.
  const int size = MPI_Comm_size();
  const int rank = MPI_Comm_rank();
  char token = 0;
  for (int round = 0, dist = 1; dist < size; ++round, dist <<= 1) {
    const int to = (rank + dist) % size;
    const int from = (rank - dist % size + size) % size;
    MPI_Sendrecv(&token, 1, MPI_BYTE, to, kCollTagBase + round, &token, 1, from,
                 kCollTagBase + round);
  }
}

void MPI_Bcast(void* buf, int count, const Datatype& type, int root) {
  // Binomial tree rooted at `root`.
  const int size = MPI_Comm_size();
  const int rank = MPI_Comm_rank();
  const int rel = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      const int src = (rel - mask + root) % size;
      MPI_Recv(buf, count, type, src, kCollTagBase + 100);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      const int dst = (rel + mask + root) % size;
      MPI_Send(buf, count, type, dst, kCollTagBase + 100);
    }
    mask >>= 1;
  }
}

namespace {

void apply_op(Op op, const Datatype& type, const void* in, void* inout, int count) {
  auto combine = [op](auto a, auto b) {
    switch (op) {
      case Op::kSum: return a + b;
      case Op::kProd: return a * b;
      case Op::kMax: return a > b ? a : b;
      case Op::kMin: return a < b ? a : b;
    }
    return a;
  };
  if (type.size == MPI_INT.size && type.name == MPI_INT.name) {
    const int* a = static_cast<const int*>(in);
    int* b = static_cast<int*>(inout);
    for (int i = 0; i < count; ++i)
      b[i] = combine(a[i], b[i]);
  } else if (type.name == MPI_DOUBLE.name) {
    const double* a = static_cast<const double*>(in);
    double* b = static_cast<double*>(inout);
    for (int i = 0; i < count; ++i)
      b[i] = combine(a[i], b[i]);
  } else if (type.name == MPI_FLOAT.name) {
    const float* a = static_cast<const float*>(in);
    float* b = static_cast<float*>(inout);
    for (int i = 0; i < count; ++i)
      b[i] = combine(a[i], b[i]);
  } else if (type.name == MPI_LONG.name) {
    const long* a = static_cast<const long*>(in);
    long* b = static_cast<long*>(inout);
    for (int i = 0; i < count; ++i)
      b[i] = combine(a[i], b[i]);
  } else {
    throw xbt::InvalidArgument(std::string("MPI_Reduce: unsupported datatype ") + type.name);
  }
}

}  // namespace

void MPI_Reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op,
                int root) {
  // Binomial reduction tree (commutative ops).
  const int size = MPI_Comm_size();
  const int rank = MPI_Comm_rank();
  const int rel = (rank - root + size) % size;
  const size_t bytes = static_cast<size_t>(count) * type.size;

  std::vector<std::uint8_t> acc(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);
  std::vector<std::uint8_t> incoming(bytes);

  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      const int dst = (rel - mask + root) % size;
      MPI_Send(acc.data(), count, type, dst, kCollTagBase + 200);
      break;
    }
    if (rel + mask < size) {
      const int src = (rel + mask + root) % size;
      MPI_Recv(incoming.data(), count, type, src, kCollTagBase + 200);
      apply_op(op, type, incoming.data(), acc.data(), count);
    }
    mask <<= 1;
  }
  if (rank == root)
    std::memcpy(recvbuf, acc.data(), bytes);
}

void MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op) {
  MPI_Reduce(sendbuf, recvbuf, count, type, op, 0);
  MPI_Bcast(recvbuf, count, type, 0);
}

void MPI_Gather(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf, int root) {
  const int size = MPI_Comm_size();
  const int rank = MPI_Comm_rank();
  const size_t chunk = static_cast<size_t>(sendcount) * type.size;
  if (rank == root) {
    auto* out = static_cast<std::uint8_t*>(recvbuf);
    std::memcpy(out + static_cast<size_t>(rank) * chunk, sendbuf, chunk);
    for (int r = 0; r < size; ++r) {
      if (r == root)
        continue;
      MPI_Recv(out + static_cast<size_t>(r) * chunk, sendcount, type, r, kCollTagBase + 300);
    }
  } else {
    MPI_Send(sendbuf, sendcount, type, root, kCollTagBase + 300);
  }
}

void MPI_Scatter(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf, int root) {
  const int size = MPI_Comm_size();
  const int rank = MPI_Comm_rank();
  const size_t chunk = static_cast<size_t>(sendcount) * type.size;
  if (rank == root) {
    const auto* in = static_cast<const std::uint8_t*>(sendbuf);
    std::memcpy(recvbuf, in + static_cast<size_t>(rank) * chunk, chunk);
    for (int r = 0; r < size; ++r) {
      if (r == root)
        continue;
      MPI_Send(in + static_cast<size_t>(r) * chunk, sendcount, type, r, kCollTagBase + 400);
    }
  } else {
    MPI_Recv(recvbuf, sendcount, type, root, kCollTagBase + 400);
  }
}

void MPI_Allgather(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf) {
  // Ring allgather: P-1 steps, each forwarding the previously received block.
  const int size = MPI_Comm_size();
  const int rank = MPI_Comm_rank();
  const size_t chunk = static_cast<size_t>(sendcount) * type.size;
  auto* out = static_cast<std::uint8_t*>(recvbuf);
  std::memcpy(out + static_cast<size_t>(rank) * chunk, sendbuf, chunk);
  const int to = (rank + 1) % size;
  const int from = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    // Standard ring schedule: at step s, forward block (rank - s) and
    // receive block (rank - s - 1), everything mod P.
    const int send_block = (rank - step + size * 8) % size;
    const int recv_block = (rank - step - 1 + size * 8) % size;
    MPI_Sendrecv(out + static_cast<size_t>(send_block) * chunk, sendcount, type, to,
                 kCollTagBase + 500 + step, out + static_cast<size_t>(recv_block) * chunk, sendcount,
                 from, kCollTagBase + 500 + step);
  }
}

void MPI_Alltoall(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf) {
  // Pairwise exchange.
  const int size = MPI_Comm_size();
  const int rank = MPI_Comm_rank();
  const size_t chunk = static_cast<size_t>(sendcount) * type.size;
  const auto* in = static_cast<const std::uint8_t*>(sendbuf);
  auto* out = static_cast<std::uint8_t*>(recvbuf);
  std::memcpy(out + static_cast<size_t>(rank) * chunk, in + static_cast<size_t>(rank) * chunk, chunk);
  for (int step = 1; step < size; ++step) {
    const int to = (rank + step) % size;
    const int from = (rank - step + size) % size;
    MPI_Sendrecv(in + static_cast<size_t>(to) * chunk, sendcount, type, to, kCollTagBase + 600 + step,
                 out + static_cast<size_t>(from) * chunk, sendcount, from, kCollTagBase + 600 + step);
  }
}

void SMPI_Compute(double flops) { self().world->kernel->execute(flops); }

// -- benchmarking ---------------------------------------------------------------------

namespace {

using BClock = std::chrono::steady_clock;

struct BenchTls {
  BClock::time_point start;
  bool running = false;
  bool measuring_once = false;
  std::string once_key;
};

BenchTls& bench_tls() {
  static thread_local BenchTls tls;
  return tls;
}

struct BenchCache {
  std::mutex mutex;
  std::map<std::string, double> flops;  ///< keyed by call site
};

BenchCache& bench_cache() {
  static BenchCache cache;
  return cache;
}

double local_speed() {
  RankState& st = self();
  kernel::Actor* a = kernel::Kernel::self();
  const double s = st.world->kernel->engine().host_speed(a->host());
  return s > 0 ? s : 1e9;
}

}  // namespace

bool bench_once_begin(const char* file, int line) {
  auto& tls = bench_tls();
  if (tls.running)
    throw xbt::InvalidArgument("SMPI bench: nested bench blocks are not supported");
  tls.once_key = std::string(file) + ":" + std::to_string(line);
  double cached = -1.0;
  {
    // Never hold the lock across a simcall: SMPI_Compute yields the actor,
    // and another rank contending on the mutex would deadlock the maestro.
    auto& cache = bench_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    auto it = cache.flops.find(tls.once_key);
    if (it != cache.flops.end())
      cached = it->second;
  }
  if (cached >= 0) {
    // Replay: simulate the recorded work on the local (maybe slower) host.
    SMPI_Compute(cached);
    tls.measuring_once = false;
    return false;
  }
  tls.running = true;
  tls.measuring_once = true;
  tls.start = BClock::now();
  return true;
}

void bench_once_end() {
  auto& tls = bench_tls();
  if (!tls.measuring_once)
    return;
  tls.running = false;
  tls.measuring_once = false;
  const double dt = std::chrono::duration<double>(BClock::now() - tls.start).count();
  const double flops = dt * local_speed();
  {
    auto& cache = bench_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.flops.emplace(tls.once_key, flops);
  }
  SMPI_Compute(flops);
}

void bench_always_begin() {
  auto& tls = bench_tls();
  if (tls.running)
    throw xbt::InvalidArgument("SMPI bench: nested bench blocks are not supported");
  tls.running = true;
  tls.start = BClock::now();
}

void bench_always_end() {
  auto& tls = bench_tls();
  if (!tls.running)
    throw xbt::InvalidArgument("SMPI_BENCH_ALWAYS_END without BEGIN");
  tls.running = false;
  const double dt = std::chrono::duration<double>(BClock::now() - tls.start).count();
  SMPI_Compute(dt * local_speed());
}

void bench_reset() {
  auto& cache = bench_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.flops.clear();
}

}  // namespace sg::smpi
