/// \file smpi.hpp
/// SMPI — the paper's interface for studying "how an existing MPI
/// application reacts to platform heterogeneity". A subset of MPI large
/// enough for real applications (pt2pt with tag/source matching, persistent
/// unexpected-message queues, the classic collectives) executes on simulated
/// processes, one per rank; computation between MPI calls is captured with
/// the SMPI_BENCH_* macros and replayed on the simulated hosts.
///
/// Ranks run as kernel actors inside one OS process, so buffers are plain
/// pointers and messages are copied at send time (eager) or at rendezvous.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace sg::smpi {

// -- minimal MPI vocabulary ---------------------------------------------------

struct Datatype {
  size_t size;
  const char* name;
};
extern const Datatype MPI_BYTE;
extern const Datatype MPI_CHAR;
extern const Datatype MPI_INT;
extern const Datatype MPI_LONG;
extern const Datatype MPI_FLOAT;
extern const Datatype MPI_DOUBLE;

enum class Op { kSum, kMax, kMin, kProd };
constexpr Op MPI_SUM = Op::kSum;
constexpr Op MPI_MAX = Op::kMax;
constexpr Op MPI_MIN = Op::kMin;
constexpr Op MPI_PROD = Op::kProd;

constexpr int MPI_ANY_SOURCE = -1;
constexpr int MPI_ANY_TAG = -1;

struct Status {
  int source = -1;
  int tag = -1;
  size_t bytes = 0;
};

struct RequestRec;
using Request = std::shared_ptr<RequestRec>;

// -- world --------------------------------------------------------------------

/// Run an "MPI application": spawn `nranks` processes executing `rank_main`,
/// mapped round-robin onto the platform hosts (or onto `host_names` when
/// given), and simulate to completion. Returns the simulated makespan.
double smpi_run(platform::Platform platform, int nranks, std::function<void(int)> rank_main,
                const std::vector<std::string>& host_names = {});

// -- rank-side API (callable from within rank_main) ------------------------------

int MPI_Comm_rank();
int MPI_Comm_size();
double MPI_Wtime();

void MPI_Send(const void* buf, int count, const Datatype& type, int dest, int tag);
void MPI_Recv(void* buf, int count, const Datatype& type, int source, int tag,
              Status* status = nullptr);
Request MPI_Isend(const void* buf, int count, const Datatype& type, int dest, int tag);
Request MPI_Irecv(void* buf, int count, const Datatype& type, int source, int tag);
void MPI_Wait(Request& request, Status* status = nullptr);
void MPI_Waitall(std::vector<Request>& requests);
/// Non-blocking completion probe (progress is made inside Wait).
bool MPI_Test(Request& request, Status* status = nullptr);
void MPI_Sendrecv(const void* sendbuf, int sendcount, const Datatype& type, int dest, int sendtag,
                  void* recvbuf, int recvcount, int source, int recvtag, Status* status = nullptr);

void MPI_Barrier();
void MPI_Bcast(void* buf, int count, const Datatype& type, int root);
void MPI_Reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op, int root);
void MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, const Datatype& type, Op op);
void MPI_Gather(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf, int root);
void MPI_Scatter(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf, int root);
void MPI_Allgather(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf);
void MPI_Alltoall(const void* sendbuf, int sendcount, const Datatype& type, void* recvbuf);

/// Simulate raw local computation (used when flop counts are known instead
/// of measured).
void SMPI_Compute(double flops);

// -- automatic benchmarking ------------------------------------------------------

/// First pass per call site: run the block for real, measure it, convert to
/// flops at the measuring host's speed. Later passes: skip the block and
/// replay the recorded flops on the local (possibly slower) host — this is
/// what makes the heterogeneity study possible without touching app code.
bool bench_once_begin(const char* file, int line);
void bench_once_end();
/// Measure and inject every time.
void bench_always_begin();
void bench_always_end();

/// Drop all cached SMPI_BENCH_ONCE measurements (between experiments).
void bench_reset();

}  // namespace sg::smpi

#define SMPI_BENCH_ONCE_RUN_ONCE_BEGIN() \
  if (::sg::smpi::bench_once_begin(__FILE__, __LINE__)) {
#define SMPI_BENCH_ONCE_RUN_ONCE_END() \
  }                                    \
  ::sg::smpi::bench_once_end()
#define SMPI_BENCH_ALWAYS_BEGIN() ::sg::smpi::bench_always_begin()
#define SMPI_BENCH_ALWAYS_END() ::sg::smpi::bench_always_end()
