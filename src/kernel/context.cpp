#include "kernel/context.hpp"

#include <array>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <semaphore>
#include <thread>
#include <vector>

#include <sys/mman.h>
#include <unistd.h>

#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"

// AddressSanitizer must be told about every stack switch, or its fake-stack
// bookkeeping (and stack-use-after-return detection) corrupts the moment a
// fiber yields. The protocol: the departing context calls
// __sanitizer_start_switch_fiber(save_slot, dest_bottom, dest_size) — with a
// null save_slot when it is terminating, so ASan retires its fake stack —
// and the first thing code does on the destination stack is
// __sanitizer_finish_switch_fiber(own_saved_fake, &from_bottom, &from_size).
#if defined(__SANITIZE_ADDRESS__)
#define SG_ASAN_FIBER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SG_ASAN_FIBER 1
#endif
#endif

#ifdef SG_ASAN_FIBER
#include <sanitizer/common_interface_defs.h>
#endif

// The fiber backend switches stacks with ~20 instructions of hand-rolled
// assembly on x86-64 (ucontext's swapcontext issues a sigprocmask syscall on
// every switch, ~10x the cost). Other architectures fall back to ucontext.
#if defined(__x86_64__) && defined(__GNUC__)
#define SG_RAW_CONTEXT 1
#else
#include <ucontext.h>
#endif

SG_LOG_NEW_CATEGORY(context, "actor execution contexts");

namespace sg::kernel {

namespace {
thread_local int t_context_lane = 0;
}  // namespace

void set_context_lane(int lane) {
  t_context_lane = (lane < 0 || lane >= kMaxContextLanes) ? 0 : lane;
}
int context_lane() { return t_context_lane; }

void declare_context_config() {
  config::declare(kCfgContextBackend, "fiber",
                  "execution backend for simulated processes: 'fiber' (pooled user-space "
                  "stacks, scales to millions of actors) or 'thread' (one OS thread per "
                  "actor, debugger-friendly)",
                  "SG_CONTEXTS");
  config::declare(kCfgContextStackSize, 128.0 * 1024,
                  "usable stack bytes per fiber (rounded up to whole pages); pages are "
                  "committed lazily, so small per-actor footprints come from touching "
                  "few pages, not from tiny virtual sizes");
  config::declare(kCfgContextGuardPages, 1, 0, 64,
                  "inaccessible guard pages below each fiber stack; set 0 for 1M+ actor "
                  "runs — every guard splits a kernel VMA and vm.max_map_count caps those");
}

namespace {

inline void asan_start_switch(void** fake_stack_save, const void* dest_bottom, size_t dest_size) {
#ifdef SG_ASAN_FIBER
  __sanitizer_start_switch_fiber(fake_stack_save, dest_bottom, dest_size);
#else
  (void)fake_stack_save;
  (void)dest_bottom;
  (void)dest_size;
#endif
}

inline void asan_finish_switch(void* own_fake_stack, const void** from_bottom, size_t* from_size) {
#ifdef SG_ASAN_FIBER
  __sanitizer_finish_switch_fiber(own_fake_stack, from_bottom, from_size);
#else
  (void)own_fake_stack;
  (void)from_bottom;
  (void)from_size;
#endif
}

// ---------------------------------------------------------------------------
// Thread backend: one OS thread per actor, serialized by two semaphores.
// ---------------------------------------------------------------------------

class ThreadContext final : public Context {
public:
  explicit ThreadContext(std::function<void()> body) : Context(std::move(body)) {
    thread_ = std::thread([this] { trampoline(); });
  }

  ~ThreadContext() override {
    if (!finished_) {
      // The actor never ran to completion; unwind it so the thread can exit.
      kill_requested_ = true;
      go_.release();
      done_.acquire();
    }
    if (thread_.joinable())
      thread_.join();
  }

  bool resume_and_wait() override {
    go_.release();
    done_.acquire();
    return finished_;
  }

  void yield() override {
    done_.release();
    go_.acquire();
    if (kill_requested_)
      throw ForcedExit{};
  }

private:
  void trampoline() {
    go_.acquire();  // wait for the first resume
    run_body();
    done_.release();  // give control back to maestro, thread exits
  }

  std::thread thread_;
  std::binary_semaphore go_{0};    // maestro -> actor
  std::binary_semaphore done_{0};  // actor -> maestro
};

class ThreadContextFactory final : public ContextFactory {
public:
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<ThreadContext>(std::move(body));
  }
  const char* backend_name() const override { return "thread"; }
};

// ---------------------------------------------------------------------------
// Fiber backend: pooled stackful fibers switched in user space.
// ---------------------------------------------------------------------------

/// Slab-allocated stack pool. Stacks are carved out of large anonymous
/// mmaps (one VMA per ~256 stacks instead of one per stack — Linux caps a
/// process at vm.max_map_count VMAs, which per-stack mmaps would exhaust
/// around 65k actors), committed lazily by the kernel as pages are touched,
/// and recycled LIFO so a respawned actor reuses cache- and TLB-hot pages.
///
/// Lane safety: under engine/parallel-actors a stack is acquired on whatever
/// worker lane first resumes the actor and released on whatever lane unwinds
/// it. Recycling goes through small per-lane LIFO caches keyed off
/// context_lane() — the hot acquire/release path never takes a lock and
/// keeps its cache-warm stacks lane-local — while the cold paths (carving a
/// fresh stack out of a slab, mapping a new slab, and the shared overflow
/// list that rebalances stacks released on a different lane than they were
/// acquired on) serialize on one mutex.
class StackPool {
public:
  StackPool(size_t usable_bytes, size_t guard_bytes)
      : page_(static_cast<size_t>(sysconf(_SC_PAGESIZE))),
        usable_(round_up(usable_bytes, page_)),
        guard_(round_up(guard_bytes, page_)),
        stride_(usable_ + guard_) {}

  ~StackPool() {
    for (void* slab : slabs_)
      ::munmap(slab, slab_bytes());
  }

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Returns the lowest usable address of a stack (just above its guard).
  void* acquire() {
    auto& free = lanes_[static_cast<size_t>(context_lane())].free;
    if (!free.empty()) {
      void* s = free.back();
      free.pop_back();
      return s;
    }
    std::lock_guard<std::mutex> lock(slab_mutex_);
    if (!overflow_.empty()) {
      void* s = overflow_.back();
      overflow_.pop_back();
      return s;
    }
    if (slabs_.empty() || cursor_ == kStacksPerSlab) {
      void* slab = ::mmap(nullptr, slab_bytes(), PROT_READ | PROT_WRITE,
                          MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
      if (slab == MAP_FAILED)
        throw xbt::InvalidArgument("fiber stack pool: mmap failed (out of memory or VMAs?)");
      slabs_.push_back(slab);
      cursor_ = 0;
    }
    char* base = static_cast<char*>(slabs_.back()) + cursor_ * stride_;
    ++cursor_;
    ++carved_;
    if (guard_ > 0 && ::mprotect(base, guard_, PROT_NONE) != 0)
      throw xbt::InvalidArgument("fiber stack pool: mprotect(guard) failed");
    return base + guard_;
  }

  void release(void* stack) {
    auto& free = lanes_[static_cast<size_t>(context_lane())].free;
    if (free.size() < kLaneCacheCap) {
      free.push_back(stack);
      return;
    }
    // Beyond the small lane-local cache, spill to the shared overflow list.
    // Stacks are acquired on whichever lane first resumes an actor but often
    // released on the maestro (kill unwinds, reaps); without the spill the
    // maestro's list would hoard every recycled stack while the other lanes
    // carve fresh ones forever.
    std::lock_guard<std::mutex> lock(slab_mutex_);
    overflow_.push_back(stack);
  }

  size_t usable_bytes() const { return usable_; }
  // Aggregated accounting; exact when called from a serial section (the
  // kernel only reads pool stats between scheduling phases).
  size_t carved() const {
    std::lock_guard<std::mutex> lock(slab_mutex_);
    return carved_;
  }
  size_t free_count() const {
    size_t n;
    {
      std::lock_guard<std::mutex> lock(slab_mutex_);
      n = overflow_.size();
    }
    for (const auto& lane : lanes_)
      n += lane.free.size();
    return n;
  }
  size_t slab_count() const {
    std::lock_guard<std::mutex> lock(slab_mutex_);
    return slabs_.size();
  }

private:
  static constexpr size_t kStacksPerSlab = 256;
  /// Stacks a lane keeps to itself before spilling to the shared overflow.
  static constexpr size_t kLaneCacheCap = 8;
  static size_t round_up(size_t v, size_t to) { return (v + to - 1) / to * to; }
  size_t slab_bytes() const { return stride_ * kStacksPerSlab; }

  /// Padded so two lanes' free-list hot fields never share a cache line.
  struct alignas(64) LaneFreeList {
    std::vector<void*> free;  ///< LIFO of usable-base pointers
  };

  size_t page_;
  size_t usable_;
  size_t guard_;
  size_t stride_;
  std::array<LaneFreeList, kMaxContextLanes> lanes_;
  mutable std::mutex slab_mutex_;   ///< guards the slab list, carve cursor, overflow
  std::vector<void*> overflow_;     ///< spill-over free stacks, any lane may take
  std::vector<void*> slabs_;
  size_t cursor_ = kStacksPerSlab;  ///< next uncarved stack in slabs_.back()
  size_t carved_ = 0;
};

class FiberContext;
extern "C" void sg_fiber_main(void* ctx);  // shared C entry, both switch flavors

#ifdef SG_RAW_CONTEXT

// sg_raw_swap(void** save_sp, void* restore_sp): push the callee-saved
// registers, publish the old stack pointer, adopt the new one, pop, return.
// The System V AMD64 callee-saved set is rbp/rbx/r12-r15; everything else is
// caller-saved and already spilled by the compiler around the call.
__asm__(
    ".text\n"
    ".globl sg_raw_swap\n"
    ".type sg_raw_swap,@function\n"
    "sg_raw_swap:\n"
    "    pushq %rbp\n"
    "    pushq %rbx\n"
    "    pushq %r12\n"
    "    pushq %r13\n"
    "    pushq %r14\n"
    "    pushq %r15\n"
    "    movq %rsp, (%rdi)\n"
    "    movq %rsi, %rsp\n"
    "    popq %r15\n"
    "    popq %r14\n"
    "    popq %r13\n"
    "    popq %r12\n"
    "    popq %rbx\n"
    "    popq %rbp\n"
    "    ret\n"
    ".size sg_raw_swap, .-sg_raw_swap\n"
    // First-entry stub: a fresh fiber's fake frame parks the entry function
    // in the r12 slot and its argument in the r13 slot; the ret in
    // sg_raw_swap lands here with the stack 16-byte aligned minus the usual
    // return-address slot (the push restores call-site alignment for the
    // callq). sg_fiber_main never returns.
    ".globl sg_fiber_boot\n"
    ".type sg_fiber_boot,@function\n"
    "sg_fiber_boot:\n"
    "    pushq %rbp\n"
    "    movq %r13, %rdi\n"
    "    callq *%r12\n"
    "    ud2\n"
    ".size sg_fiber_boot, .-sg_fiber_boot\n");

extern "C" {
void sg_raw_swap(void** save_sp, void* restore_sp);
void sg_fiber_boot();
}

#endif  // SG_RAW_CONTEXT

class FiberContext final : public Context {
public:
  FiberContext(std::function<void()> body, StackPool* pool)
      : Context(std::move(body)), pool_(pool) {}

  ~FiberContext() override {
    if (started_ && !finished_) {
      // Unwind the parked body (ForcedExit out of yield) so RAII runs.
      kill_requested_ = true;
      while (!finished_)
        resume_and_wait();
    }
    if (stack_ != nullptr)
      pool_->release(stack_);
  }

  bool resume_and_wait() override {
    if (finished_)
      return true;
    if (!started_)
      start();
    // The resumer's ASan fake stack parks in *this* context (not a global):
    // resumes nest — an actor killing another unwinds the victim from inside
    // its own quantum — and each nesting level must keep its own slot.
    asan_start_switch(&resumer_fake_stack_, stack_, pool_->usable_bytes());
    swap_to_fiber();
    asan_finish_switch(resumer_fake_stack_, nullptr, nullptr);
    if (finished_ && stack_ != nullptr) {
      // The body has fully unwound: recycle the stack right away so a dead
      // actor costs no committed pages while its Actor record lingers.
      pool_->release(stack_);
      stack_ = nullptr;
    }
    return finished_;
  }

  void yield() override {
    asan_start_switch(&fiber_fake_stack_, resumer_bottom_, resumer_size_);
    swap_to_maestro();
    // Re-learn who resumed us: it may be the maestro or another fiber.
    asan_finish_switch(fiber_fake_stack_, &resumer_bottom_, &resumer_size_);
    if (kill_requested_)
      throw ForcedExit{};
  }

  /// Body trampoline, running on the fiber stack (called via sg_fiber_main).
  void fiber_entry() {
    // Complete the very first switch; learn the resumer's stack identity.
    asan_finish_switch(nullptr, &resumer_bottom_, &resumer_size_);
    run_body();
    // Terminating switch: null save slot tells ASan to retire this fiber's
    // fake stack; a finished context is never resumed again.
    asan_start_switch(nullptr, resumer_bottom_, resumer_size_);
    swap_to_maestro();
    __builtin_unreachable();
  }

private:
  void start();
  void swap_to_fiber();
  void swap_to_maestro();

  StackPool* pool_;
  void* stack_ = nullptr;  ///< lowest usable address; allocated on first resume
  bool started_ = false;
  void* fiber_fake_stack_ = nullptr;    ///< ASan fake-stack slot for this fiber
  void* resumer_fake_stack_ = nullptr;  ///< ASan fake-stack slot of whoever resumed us
  const void* resumer_bottom_ = nullptr;  ///< resumer's stack, target of our next yield
  size_t resumer_size_ = 0;

#ifdef SG_RAW_CONTEXT
  void* fiber_sp_ = nullptr;    ///< fiber's saved stack pointer while parked
  void* maestro_sp_ = nullptr;  ///< resumer's saved stack pointer while the fiber runs
#else
  ucontext_t fiber_uc_;
  ucontext_t maestro_uc_;
#endif
};

extern "C" void sg_fiber_main(void* ctx) { static_cast<FiberContext*>(ctx)->fiber_entry(); }

#ifdef SG_RAW_CONTEXT

void FiberContext::start() {
  stack_ = pool_->acquire();
  started_ = true;
  // Build the fake frame sg_raw_swap will pop on first entry (stack grows
  // down from the 16-byte-aligned top): a return-address slot pointing at
  // sg_fiber_boot, then the six callee-saved slots with the entry function
  // in r12 and its argument in r13.
  void** top = reinterpret_cast<void**>(
      reinterpret_cast<uintptr_t>(static_cast<char*>(stack_) + pool_->usable_bytes()) & ~uintptr_t{15});
  *--top = nullptr;                                     // padding: keeps boot entry misaligned-by-8
  *--top = reinterpret_cast<void*>(&sg_fiber_boot);     // popped by ret
  *--top = nullptr;                                     // rbp
  *--top = nullptr;                                     // rbx
  *--top = reinterpret_cast<void*>(&sg_fiber_main);     // r12: entry function
  *--top = this;                                        // r13: entry argument
  *--top = nullptr;                                     // r14
  *--top = nullptr;                                     // r15
  fiber_sp_ = top;
}

void FiberContext::swap_to_fiber() { sg_raw_swap(&maestro_sp_, fiber_sp_); }
void FiberContext::swap_to_maestro() { sg_raw_swap(&fiber_sp_, maestro_sp_); }

#else  // ucontext fallback

namespace {
void fiber_uc_entry(unsigned hi, unsigned lo) {
  sg_fiber_main(reinterpret_cast<void*>((static_cast<uintptr_t>(hi) << 32) |
                                        static_cast<uintptr_t>(lo)));
}
}  // namespace

void FiberContext::start() {
  stack_ = pool_->acquire();
  started_ = true;
  getcontext(&fiber_uc_);
  fiber_uc_.uc_stack.ss_sp = stack_;
  fiber_uc_.uc_stack.ss_size = pool_->usable_bytes();
  fiber_uc_.uc_link = nullptr;
  const auto addr = reinterpret_cast<uintptr_t>(this);
  makecontext(&fiber_uc_, reinterpret_cast<void (*)()>(&fiber_uc_entry), 2,
              static_cast<unsigned>(addr >> 32), static_cast<unsigned>(addr & 0xffffffffu));
}

void FiberContext::swap_to_fiber() { swapcontext(&maestro_uc_, &fiber_uc_); }
void FiberContext::swap_to_maestro() { swapcontext(&fiber_uc_, &maestro_uc_); }

#endif  // SG_RAW_CONTEXT

class FiberContextFactory final : public ContextFactory {
public:
  FiberContextFactory(size_t stack_bytes, size_t guard_bytes) : pool_(stack_bytes, guard_bytes) {}

  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<FiberContext>(std::move(body), &pool_);
  }
  const char* backend_name() const override { return "fiber"; }

  PoolStats pool_stats() const override {
    return {pool_.carved(), pool_.free_count(), pool_.slab_count(), pool_.usable_bytes()};
  }

private:
  StackPool pool_;
};

}  // namespace

std::unique_ptr<ContextFactory> ContextFactory::from_config() {
  declare_context_config();
  const std::string backend = config::get(kCfgContextBackend);
  if (backend == "thread")
    return std::make_unique<ThreadContextFactory>();
  if (backend == "fiber") {
    const auto stack = static_cast<size_t>(config::get(kCfgContextStackSize));
    const auto guard_pages = static_cast<size_t>(config::get(kCfgContextGuardPages));
    const auto page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    return std::make_unique<FiberContextFactory>(stack, guard_pages * page);
  }
  throw xbt::InvalidArgument("contexts/backend must be 'fiber' or 'thread', got '" + backend + "'");
}

}  // namespace sg::kernel
