#include "kernel/context.hpp"

#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(context, "actor execution contexts");

namespace sg::kernel {

Context::Context(std::function<void()> body) : body_(std::move(body)) {
  thread_ = std::thread([this] { trampoline(); });
}

Context::~Context() {
  if (!finished_) {
    // The actor never ran to completion; unwind it so the thread can exit.
    kill_requested_ = true;
    go_.release();
    done_.acquire();
  }
  if (thread_.joinable())
    thread_.join();
}

void Context::trampoline() {
  go_.acquire();  // wait for the first resume
  if (!kill_requested_) {
    try {
      body_();
    } catch (const ForcedExit&) {
      // normal kill path
    } catch (...) {
      failure_ = std::current_exception();
    }
  }
  finished_ = true;
  done_.release();  // give control back to maestro, thread exits
}

bool Context::resume_and_wait() {
  started_ = true;
  go_.release();
  done_.acquire();
  return finished_;
}

void Context::yield() {
  done_.release();
  go_.acquire();
  if (kill_requested_)
    throw ForcedExit{};
}

}  // namespace sg::kernel
