/// \file kernel.hpp
/// The simulation kernel ("maestro"): owns the SURF engine, schedules actor
/// contexts, matches communications on mailboxes, arms timeout timers, and
/// propagates resource failures to the actors they strand.
///
/// ## Execution model
///
/// Scheduling proceeds in rounds. Each round snapshots every shard's ready
/// batch, then runs two phases:
///
///  * **Scheduling phase** — each batched actor is resumed and runs user
///    code up to its next simcall. The simcall follows the lists-local rule:
///    side effects confined to the actor's home shard (matching on a
///    home-shard mailbox, allocating from the shard's comm pool) commit
///    inline; everything else — engine action creation, timers, wakes,
///    spawns, kills, cross-shard mailboxes — is *recorded* into a
///    PendingSimcall and the actor parks.
///  * **Serial epilogue** — the maestro replays the records in fixed shard
///    order (batch order within a shard, quantum order within an actor):
///    starts the matched comms, creates engine actions, arms timers, reaps
///    zombies, runs exit callbacks. Non-blocking simcalls resume their actor
///    inline here, so the rest of that quantum runs under classic serial
///    semantics.
///
/// With `engine/parallel-actors` off (default) the scheduling phase runs on
/// the maestro; with it on, it fans out over the engine's ShardWorkers lanes
/// (lane_of = shard % lanes, the same mapping as the engine's solve/advance
/// phases). Because everything order-sensitive is committed by the serial
/// epilogue either way, the observable schedule — event logs, clocks,
/// counters — is identical at every lane count, and identical to serial.
///
/// Scale shape (the "millions of users" path): actors live in a chunked slot
/// arena with O(1) spawn/death and slot+stack recycling, mailbox names are
/// interned to dense ids once at the API boundary (each mailbox homed on the
/// interning actor's shard), comm control blocks are pooled per shard, and
/// the ready set is split into per-shard run queues keyed off
/// Platform::shard_map() — a round drains one zone's wakeups as a batch, so
/// the solver and heap shard that zone's simcalls touch stay cache-resident,
/// while the fixed shard rotation keeps the schedule deterministic and
/// reproducible across context backends and lane counts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "kernel/actor.hpp"
#include "kernel/comm.hpp"

namespace sg::kernel {

struct CommBlockPool;  // LIFO recycler for comm control blocks (kernel.cpp)

class Kernel {
public:
  explicit Kernel(platform::Platform platform);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  core::Engine& engine() { return engine_; }
  double now() const { return engine_.now(); }

  // -- lifecycle --------------------------------------------------------------
  /// Create a process on a host. It will start running inside run().
  /// daemon actors do not prevent simulation termination; auto_restart actors
  /// are respawned when their host reboots after a failure.
  ActorId spawn(const std::string& name, int host, std::function<void()> body, bool daemon = false,
                bool auto_restart = false);

  /// Run the simulation until no non-daemon actor remains (or deadlock).
  /// Returns the final simulated time.
  double run();

  /// True when run() ended because live actors were all stuck forever.
  bool deadlocked() const { return deadlocked_; }

  // -- actor-side simcalls -----------------------------------------------------
  /// The actor currently executing (nullptr on the maestro), and its kernel.
  static Actor* self();
  static Kernel* current();

  /// Simulate `flops` of computation on the calling actor's host.
  void execute(double flops, double priority = 1.0);
  /// Simulate a parallel task spanning several hosts (flops per host) and the
  /// communications between them (bytes[i][j] from hosts[i] to hosts[j]).
  void execute_parallel(const std::vector<int>& hosts, const std::vector<double>& flops,
                        const std::vector<std::vector<double>>& bytes);
  /// Simulate a delay.
  void sleep_for(double duration);
  /// Cooperatively yield (reschedule self at the back of the ready queue).
  void yield_now();
  /// Terminate the calling actor.
  [[noreturn]] void exit_self();

  // -- mailboxes ---------------------------------------------------------------
  /// Intern a mailbox name to its dense id (creating the mailbox on first
  /// use). Call once at the API boundary; the id-keyed simcalls below are
  /// the hot path — no hashing, no string construction per communication.
  MailboxId mailbox_by_name(const std::string& name);
  /// The name a mailbox id was interned from (logging / debugging).
  const std::string& mailbox_name(MailboxId id) const { return mailbox_names_[static_cast<size_t>(id)]; }

  /// Blocking send: rendezvous on the mailbox, then transfer `bytes` from the
  /// caller's host to the receiver's host. timeout < 0 = wait forever.
  void send(MailboxId mailbox, void* payload, double bytes, double timeout = -1.0, double rate = -1.0);
  /// Fire-and-forget send (the comm lives on after the caller moves on).
  void send_detached(MailboxId mailbox, void* payload, double bytes, double rate = -1.0);
  /// Blocking receive. Returns the payload; source (if non-null) receives the
  /// sending actor's id.
  void* recv(MailboxId mailbox, double timeout = -1.0, ActorId* source = nullptr);

  /// Asynchronous variants (used by SMPI's Isend/Irecv).
  CommPtr send_async(MailboxId mailbox, void* payload, double bytes, double rate = -1.0);
  CommPtr recv_async(MailboxId mailbox);

  /// Is a send already queued on this mailbox? (message probe)
  bool comm_waiting(MailboxId mailbox);

  // String-keyed convenience wrappers (one interning each; fine for cold
  // paths and tests, wasteful in per-message loops).
  void send(const std::string& mailbox, void* payload, double bytes, double timeout = -1.0,
            double rate = -1.0) {
    send(mailbox_by_name(mailbox), payload, bytes, timeout, rate);
  }
  void send_detached(const std::string& mailbox, void* payload, double bytes, double rate = -1.0) {
    send_detached(mailbox_by_name(mailbox), payload, bytes, rate);
  }
  void* recv(const std::string& mailbox, double timeout = -1.0, ActorId* source = nullptr) {
    return recv(mailbox_by_name(mailbox), timeout, source);
  }
  CommPtr send_async(const std::string& mailbox, void* payload, double bytes, double rate = -1.0) {
    return send_async(mailbox_by_name(mailbox), payload, bytes, rate);
  }
  CommPtr recv_async(const std::string& mailbox) { return recv_async(mailbox_by_name(mailbox)); }
  bool comm_waiting(const std::string& mailbox);

  /// Wait for an async comm; throws like send/recv. Returns the payload.
  void* comm_wait(const CommPtr& comm, double timeout = -1.0);
  /// Non-blocking completion test.
  bool comm_test(const CommPtr& comm);

  // -- actor management ---------------------------------------------------------
  void suspend(ActorId id);
  void resume(ActorId id);
  void kill(ActorId id);

  bool is_alive(ActorId id) const;
  Actor* actor(ActorId id);
  size_t alive_actor_count() const { return live_count_; }
  /// Ids of all live actors (snapshot, ascending).
  std::vector<ActorId> live_actors() const;

  // -- platform control (fault injection) ---------------------------------------
  void host_off(int host);
  void host_on(int host);

  // -- platform control (dynamic membership) ------------------------------------
  /// Join a new host to a sealed platform (cluster zone auto-wiring). Returns
  /// the new host index. Serial-section only (maestro / between runs).
  int join_host(platform::ZoneId zone, const std::string& name = "", double speed_flops = -1.0);
  /// Join with an explicit spec, attachment node and uplink (graph zones).
  int join_host(const platform::HostSpec& spec, platform::NodeId attach,
                const platform::LinkSpec& uplink);
  /// Remove a host from the membership: residents are killed, transit comms
  /// fail under `engine/kill-transit-comms`, constraints are released. Legal
  /// from an actor (a simcall) or from maestro.
  void leave_host(int host);
  /// Bring a departed host back: constraints are recreated through the
  /// id-recycling paths and auto-restart residents respawn.
  void rejoin_host(int host);

  // -- introspection -------------------------------------------------------------
  /// Scheduler counters (monotonic over the kernel's lifetime). Wakeups and
  /// context switches accumulate in per-lane counters (a plain shared
  /// increment from concurrent lanes would be a data race) and are summed
  /// here on read; call from a serial section for an exact snapshot.
  struct Stats {
    std::uint64_t actors_spawned = 0;
    std::uint64_t wakeups = 0;           ///< blocked -> ready transitions
    std::uint64_t context_switches = 0;  ///< scheduler -> actor resumes
  };
  Stats stats() const;
  /// The context backend in use (pool stats, backend name).
  const ContextFactory& context_factory() const { return *context_factory_; }

private:
  struct Timer {
    double time;
    ActorId actor;
    std::uint32_t gen;
    bool operator>(const Timer& o) const { return time > o.time; }
  };

  struct RestartSpec {
    std::string name;
    int host;
    std::function<void()> body;
    bool daemon;
  };

  // -- actor slot arena ---------------------------------------------------------
  // Chunked so Actor addresses are stable while slots of dead actors (and
  // their fiber stacks) are recycled. 256 actors per chunk.
  static constexpr unsigned kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  struct ActorChunk;

  Actor* slot(std::uint32_t s) const;
  Actor* allocate_actor(ActorId id, const std::string& name, int host, std::function<void()> body,
                        bool daemon, bool auto_restart);
  /// Destroy a dead actor and recycle its slot. Only legal once the actor is
  /// no longer in a ready queue (scheduler sweeps reap deferred zombies).
  void reap_actor(Actor* a);
  void host_list_insert(Actor* a);
  void host_list_remove(Actor* a);
  std::int32_t shard_for_host(int host) const;

  /// Run one actor: publish it as current, resume its context, and handle
  /// its termination. Safe to call re-entrantly (an actor killing another).
  void resume_context(Actor* a);
  void handle_actor_end(Actor* a);
  void schedule(Actor* a);
  void wake(Actor* a, WakeStatus status);
  /// Park the calling actor until woken; returns the wake status.
  WakeStatus block_self(Actor* a, double timeout);

  // -- round-based scheduling (see the execution-model notes above) -------------
  /// One actor's quantum as observed by the scheduling phase: what it
  /// recorded, the comms its inline simcalls matched, whether its body ended.
  struct RanActor {
    Actor* actor = nullptr;
    ActorId id = -1;  ///< guards against the slot being reaped + reused mid-epilogue
    PendingSimcall* rec = nullptr;
    std::vector<CommPtr> started;  ///< home-shard matches, in quantum order
    bool finished = false;
    bool zombie = false;  ///< popped dead: reap in the epilogue
  };
  /// Snapshot batches, run the scheduling phase (serial or on `workers`),
  /// then commit the epilogue. Returns true when any actor ran.
  bool run_scheduling_round(core::ShardWorkers* workers);
  /// Drain one shard's batch; runs on the shard's lane during the phase.
  void run_shard_batch(int shard, int lanes);
  /// Serial commit of one quantum's record.
  void commit_ran(RanActor& r);
  /// Commit helper: park-for-wait bookkeeping for a (possibly fresh) comm.
  void commit_comm_wait(Actor* a, PendingSimcall& rec, const CommPtr& comm);
  /// Actor side: publish `rec` and park until the epilogue commits it.
  void record_and_park(Actor* a, PendingSimcall& rec);
  /// Epilogue side: resume a parked actor inline (non-blocking simcalls).
  void serial_resume(Actor* a);
  void arm_timeout(Actor* a, double timeout);
  size_t total_ready() const;
  /// True while the calling thread executes a scheduling phase (i.e. self()
  /// must defer or stay lists-local rather than mutate shared kernel state).
  static bool in_scheduling_phase();

  CommPtr make_comm(Actor* for_actor);
  Mailbox& mailbox_ref(MailboxId id) { return mailboxes_[static_cast<size_t>(id)]; }
  MailboxId intern_mailbox(const std::string& name, std::int32_t home);
  CommPtr send_async_impl(Actor* a, MailboxId mb, void* payload, double bytes, double rate);
  CommPtr recv_async_impl(Actor* a, MailboxId mb);
  void start_comm(const CommPtr& comm);
  void finish_comm(const CommPtr& comm, WakeStatus result);
  void handle_action_event(const core::ActionEvent& ev);
  void fire_due_timers();
  void detach_from_comm(Actor* a);
  void kill_internal(Actor* a, bool by_failure);
  void process_resource_changes();
  void remove_from_mailbox(const CommPtr& comm);
  /// Kill every live actor (id order) and reap zombies left in run queues.
  void teardown_all_actors();

  // Declared first so it is destroyed last: Actor teardown returns fiber
  // stacks to the factory's pool.
  std::unique_ptr<ContextFactory> context_factory_;
  core::Engine engine_;

  // Actor arena + indexes.
  std::vector<std::unique_ptr<ActorChunk>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t slot_high_ = 0;  ///< slots carved so far
  std::unordered_map<ActorId, std::uint32_t> id_to_slot_;  ///< live + zombie actors
  ActorId next_actor_id_ = 1;
  std::vector<std::int32_t> host_live_head_;  ///< per host: first live resident slot
  size_t live_count_ = 0;
  size_t live_nondaemon_ = 0;

  // Per-shard run queues (see the file comment).
  std::vector<std::deque<Actor*>> ready_;
  // Round scratch: per-shard batch sizes and quantum records; each lane
  // writes only its own shards' entries during the scheduling phase.
  std::vector<size_t> batch_;
  std::vector<std::vector<RanActor>> ran_;

  // Interned mailboxes. The tables are only mutated serially; scheduling-
  // phase reads (name lookups, home checks) are therefore race-free.
  std::deque<Mailbox> mailboxes_;  ///< by id; deque keeps references stable
  std::vector<std::string> mailbox_names_;
  std::unordered_map<std::string, MailboxId> mailbox_ids_;

  /// Per-shard comm-block pools: a home lane allocates from its own shard's
  /// pool lock-free of the others; deallocation (a CommPtr can drop on any
  /// thread) is mutex-guarded inside the pool.
  std::vector<std::shared_ptr<CommBlockPool>> comm_pools_;
  std::unordered_map<const core::Action*, CommPtr> inflight_;  ///< running transfers
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::vector<std::pair<int, bool>> host_changes_;  ///< deferred (host, now_on)
  std::vector<RestartSpec> pending_restarts_;  ///< respawn when host returns
  Stats stats_;  ///< serial-only counters (actors_spawned)
  /// Per-lane wakeup/switch counters, padded so lanes never share a line.
  struct alignas(64) LaneCounters {
    std::uint64_t wakeups = 0;
    std::uint64_t context_switches = 0;
  };
  std::vector<LaneCounters> lane_counters_;
  bool parallel_actors_ = false;  ///< engine/parallel-actors, snapshotted at build
  bool deadlocked_ = false;
  bool running_ = false;
};

}  // namespace sg::kernel
