/// \file kernel.hpp
/// The simulation kernel ("maestro"): owns the SURF engine, schedules actor
/// contexts, matches communications on mailboxes, arms timeout timers, and
/// propagates resource failures to the actors they strand.
///
/// Threading model: strictly serialized. The maestro runs actors one at a
/// time; an actor executing a simcall may safely touch kernel state directly
/// because nothing else runs concurrently.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "kernel/actor.hpp"
#include "kernel/comm.hpp"

namespace sg::kernel {

class Kernel {
public:
  explicit Kernel(platform::Platform platform);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  core::Engine& engine() { return engine_; }
  double now() const { return engine_.now(); }

  // -- lifecycle --------------------------------------------------------------
  /// Create a process on a host. It will start running inside run().
  /// daemon actors do not prevent simulation termination; auto_restart actors
  /// are respawned when their host reboots after a failure.
  ActorId spawn(const std::string& name, int host, std::function<void()> body, bool daemon = false,
                bool auto_restart = false);

  /// Run the simulation until no non-daemon actor remains (or deadlock).
  /// Returns the final simulated time.
  double run();

  /// True when run() ended because live actors were all stuck forever.
  bool deadlocked() const { return deadlocked_; }

  // -- actor-side simcalls -----------------------------------------------------
  /// The actor currently executing (nullptr on the maestro), and its kernel.
  static Actor* self();
  static Kernel* current();

  /// Simulate `flops` of computation on the calling actor's host.
  void execute(double flops, double priority = 1.0);
  /// Simulate a parallel task spanning several hosts (flops per host) and the
  /// communications between them (bytes[i][j] from hosts[i] to hosts[j]).
  void execute_parallel(const std::vector<int>& hosts, const std::vector<double>& flops,
                        const std::vector<std::vector<double>>& bytes);
  /// Simulate a delay.
  void sleep_for(double duration);
  /// Cooperatively yield (reschedule self at the back of the ready queue).
  void yield_now();
  /// Terminate the calling actor.
  [[noreturn]] void exit_self();

  /// Blocking send: rendezvous on `mailbox`, then transfer `bytes` from the
  /// caller's host to the receiver's host. timeout < 0 = wait forever.
  void send(const std::string& mailbox, void* payload, double bytes, double timeout = -1.0,
            double rate = -1.0);
  /// Fire-and-forget send (the comm lives on after the caller moves on).
  void send_detached(const std::string& mailbox, void* payload, double bytes, double rate = -1.0);
  /// Blocking receive. Returns the payload; source (if non-null) receives the
  /// sending actor's id.
  void* recv(const std::string& mailbox, double timeout = -1.0, ActorId* source = nullptr);

  /// Asynchronous variants (used by SMPI's Isend/Irecv).
  CommPtr send_async(const std::string& mailbox, void* payload, double bytes, double rate = -1.0);
  CommPtr recv_async(const std::string& mailbox);
  /// Wait for an async comm; throws like send/recv. Returns the payload.
  void* comm_wait(const CommPtr& comm, double timeout = -1.0);
  /// Non-blocking completion test.
  bool comm_test(const CommPtr& comm) const { return comm->state == Comm::State::kFinished; }

  /// Is a send already queued on this mailbox? (message probe)
  bool comm_waiting(const std::string& mailbox) const;

  // -- actor management ---------------------------------------------------------
  void suspend(ActorId id);
  void resume(ActorId id);
  void kill(ActorId id);

  bool is_alive(ActorId id) const;
  Actor* actor(ActorId id);
  size_t alive_actor_count() const;
  /// Ids of all live actors (snapshot).
  std::vector<ActorId> live_actors() const;

  // -- platform control (fault injection) ---------------------------------------
  void host_off(int host);
  void host_on(int host);

private:
  struct Timer {
    double time;
    ActorId actor;
    std::uint64_t gen;
    bool operator>(const Timer& o) const { return time > o.time; }
  };

  Mailbox& mailbox(const std::string& name) { return mailboxes_[name]; }

  void run_actor(Actor* a);
  void handle_actor_end(Actor* a);
  void schedule(Actor* a);
  void wake(Actor* a, WakeStatus status);
  /// Park the calling actor until woken; returns the wake status.
  WakeStatus block_self(Actor* a, double timeout);

  void start_comm(const CommPtr& comm);
  void finish_comm(const CommPtr& comm, WakeStatus result);
  void handle_action_event(const core::ActionEvent& ev);
  void fire_due_timers();
  void detach_from_comm(Actor* a);
  void kill_internal(Actor* a, bool by_failure);
  void process_resource_changes();
  void remove_from_mailbox(const CommPtr& comm);

  core::Engine engine_;
  std::map<ActorId, std::unique_ptr<Actor>> actors_;  // retained after death (stable pointers)
  ActorId next_actor_id_ = 1;
  std::deque<Actor*> ready_;
  std::map<std::string, Mailbox> mailboxes_;
  std::map<const core::Action*, CommPtr> inflight_;  ///< running transfers
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::vector<std::pair<int, bool>> host_changes_;  ///< deferred (host, now_on)
  bool deadlocked_ = false;
  bool running_ = false;

  struct RestartSpec {
    std::string name;
    int host;
    std::function<void()> body;
    bool daemon;
  };
  std::vector<RestartSpec> pending_restarts_;  ///< respawn when host returns
};

}  // namespace sg::kernel
