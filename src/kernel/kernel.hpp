/// \file kernel.hpp
/// The simulation kernel ("maestro"): owns the SURF engine, schedules actor
/// contexts, matches communications on mailboxes, arms timeout timers, and
/// propagates resource failures to the actors they strand.
///
/// Threading model: strictly serialized. The maestro runs actors one at a
/// time; an actor executing a simcall may safely touch kernel state directly
/// because nothing else runs concurrently. Whether actors are OS threads or
/// pooled fibers is a Context backend choice (context.hpp) — the kernel is
/// backend-agnostic and schedules identically under both.
///
/// Scale shape (the "millions of users" path): actors live in a chunked slot
/// arena with O(1) spawn/death and slot+stack recycling, mailbox names are
/// interned to dense ids once at the API boundary, comm control blocks are
/// pooled, and the ready set is split into per-shard run queues keyed off
/// Platform::shard_map() — a sweep drains one zone's wakeups as a batch, so
/// the solver and heap shard that zone's simcalls touch stay cache-resident,
/// while a fixed shard rotation keeps the schedule deterministic and
/// reproducible across context backends.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "kernel/actor.hpp"
#include "kernel/comm.hpp"

namespace sg::kernel {

struct CommBlockPool;  // LIFO recycler for comm control blocks (kernel.cpp)

class Kernel {
public:
  explicit Kernel(platform::Platform platform);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  core::Engine& engine() { return engine_; }
  double now() const { return engine_.now(); }

  // -- lifecycle --------------------------------------------------------------
  /// Create a process on a host. It will start running inside run().
  /// daemon actors do not prevent simulation termination; auto_restart actors
  /// are respawned when their host reboots after a failure.
  ActorId spawn(const std::string& name, int host, std::function<void()> body, bool daemon = false,
                bool auto_restart = false);

  /// Run the simulation until no non-daemon actor remains (or deadlock).
  /// Returns the final simulated time.
  double run();

  /// True when run() ended because live actors were all stuck forever.
  bool deadlocked() const { return deadlocked_; }

  // -- actor-side simcalls -----------------------------------------------------
  /// The actor currently executing (nullptr on the maestro), and its kernel.
  static Actor* self();
  static Kernel* current();

  /// Simulate `flops` of computation on the calling actor's host.
  void execute(double flops, double priority = 1.0);
  /// Simulate a parallel task spanning several hosts (flops per host) and the
  /// communications between them (bytes[i][j] from hosts[i] to hosts[j]).
  void execute_parallel(const std::vector<int>& hosts, const std::vector<double>& flops,
                        const std::vector<std::vector<double>>& bytes);
  /// Simulate a delay.
  void sleep_for(double duration);
  /// Cooperatively yield (reschedule self at the back of the ready queue).
  void yield_now();
  /// Terminate the calling actor.
  [[noreturn]] void exit_self();

  // -- mailboxes ---------------------------------------------------------------
  /// Intern a mailbox name to its dense id (creating the mailbox on first
  /// use). Call once at the API boundary; the id-keyed simcalls below are
  /// the hot path — no hashing, no string construction per communication.
  MailboxId mailbox_by_name(const std::string& name);
  /// The name a mailbox id was interned from (logging / debugging).
  const std::string& mailbox_name(MailboxId id) const { return mailbox_names_[static_cast<size_t>(id)]; }

  /// Blocking send: rendezvous on the mailbox, then transfer `bytes` from the
  /// caller's host to the receiver's host. timeout < 0 = wait forever.
  void send(MailboxId mailbox, void* payload, double bytes, double timeout = -1.0, double rate = -1.0);
  /// Fire-and-forget send (the comm lives on after the caller moves on).
  void send_detached(MailboxId mailbox, void* payload, double bytes, double rate = -1.0);
  /// Blocking receive. Returns the payload; source (if non-null) receives the
  /// sending actor's id.
  void* recv(MailboxId mailbox, double timeout = -1.0, ActorId* source = nullptr);

  /// Asynchronous variants (used by SMPI's Isend/Irecv).
  CommPtr send_async(MailboxId mailbox, void* payload, double bytes, double rate = -1.0);
  CommPtr recv_async(MailboxId mailbox);

  /// Is a send already queued on this mailbox? (message probe)
  bool comm_waiting(MailboxId mailbox) const;

  // String-keyed convenience wrappers (one interning each; fine for cold
  // paths and tests, wasteful in per-message loops).
  void send(const std::string& mailbox, void* payload, double bytes, double timeout = -1.0,
            double rate = -1.0) {
    send(mailbox_by_name(mailbox), payload, bytes, timeout, rate);
  }
  void send_detached(const std::string& mailbox, void* payload, double bytes, double rate = -1.0) {
    send_detached(mailbox_by_name(mailbox), payload, bytes, rate);
  }
  void* recv(const std::string& mailbox, double timeout = -1.0, ActorId* source = nullptr) {
    return recv(mailbox_by_name(mailbox), timeout, source);
  }
  CommPtr send_async(const std::string& mailbox, void* payload, double bytes, double rate = -1.0) {
    return send_async(mailbox_by_name(mailbox), payload, bytes, rate);
  }
  CommPtr recv_async(const std::string& mailbox) { return recv_async(mailbox_by_name(mailbox)); }
  bool comm_waiting(const std::string& mailbox) const;

  /// Wait for an async comm; throws like send/recv. Returns the payload.
  void* comm_wait(const CommPtr& comm, double timeout = -1.0);
  /// Non-blocking completion test.
  bool comm_test(const CommPtr& comm) const { return comm->state == Comm::State::kFinished; }

  // -- actor management ---------------------------------------------------------
  void suspend(ActorId id);
  void resume(ActorId id);
  void kill(ActorId id);

  bool is_alive(ActorId id) const;
  Actor* actor(ActorId id);
  size_t alive_actor_count() const { return live_count_; }
  /// Ids of all live actors (snapshot, ascending).
  std::vector<ActorId> live_actors() const;

  // -- platform control (fault injection) ---------------------------------------
  void host_off(int host);
  void host_on(int host);

  // -- introspection -------------------------------------------------------------
  /// Scheduler counters (monotonic over the kernel's lifetime).
  struct Stats {
    std::uint64_t actors_spawned = 0;
    std::uint64_t wakeups = 0;           ///< blocked -> ready transitions
    std::uint64_t context_switches = 0;  ///< maestro -> actor resumes
  };
  const Stats& stats() const { return stats_; }
  /// The context backend in use (pool stats, backend name).
  const ContextFactory& context_factory() const { return *context_factory_; }

private:
  struct Timer {
    double time;
    ActorId actor;
    std::uint32_t gen;
    bool operator>(const Timer& o) const { return time > o.time; }
  };

  struct RestartSpec {
    std::string name;
    int host;
    std::function<void()> body;
    bool daemon;
  };

  // -- actor slot arena ---------------------------------------------------------
  // Chunked so Actor addresses are stable while slots of dead actors (and
  // their fiber stacks) are recycled. 256 actors per chunk.
  static constexpr unsigned kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  struct ActorChunk;

  Actor* slot(std::uint32_t s) const;
  Actor* allocate_actor(ActorId id, const std::string& name, int host, std::function<void()> body,
                        bool daemon, bool auto_restart);
  /// Destroy a dead actor and recycle its slot. Only legal once the actor is
  /// no longer in a ready queue (scheduler sweeps reap deferred zombies).
  void reap_actor(Actor* a);
  void host_list_insert(Actor* a);
  void host_list_remove(Actor* a);
  std::int32_t shard_for_host(int host) const;

  /// Run one actor: publish it as current, resume its context, and handle
  /// its termination. Safe to call re-entrantly (an actor killing another).
  void resume_context(Actor* a);
  void handle_actor_end(Actor* a);
  void schedule(Actor* a);
  void wake(Actor* a, WakeStatus status);
  /// Park the calling actor until woken; returns the wake status.
  WakeStatus block_self(Actor* a, double timeout);

  CommPtr make_comm();
  Mailbox& mailbox_ref(MailboxId id) { return mailboxes_[static_cast<size_t>(id)]; }
  void start_comm(const CommPtr& comm);
  void finish_comm(const CommPtr& comm, WakeStatus result);
  void handle_action_event(const core::ActionEvent& ev);
  void fire_due_timers();
  void detach_from_comm(Actor* a);
  void kill_internal(Actor* a, bool by_failure);
  void process_resource_changes();
  void remove_from_mailbox(const CommPtr& comm);
  /// Kill every live actor (id order) and reap zombies left in run queues.
  void teardown_all_actors();

  // Declared first so it is destroyed last: Actor teardown returns fiber
  // stacks to the factory's pool.
  std::unique_ptr<ContextFactory> context_factory_;
  core::Engine engine_;

  // Actor arena + indexes.
  std::vector<std::unique_ptr<ActorChunk>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t slot_high_ = 0;  ///< slots carved so far
  std::unordered_map<ActorId, std::uint32_t> id_to_slot_;  ///< live + zombie actors
  ActorId next_actor_id_ = 1;
  std::vector<std::int32_t> host_live_head_;  ///< per host: first live resident slot
  size_t live_count_ = 0;
  size_t live_nondaemon_ = 0;

  // Per-shard run queues (see the file comment).
  std::vector<std::deque<Actor*>> ready_;
  size_t ready_count_ = 0;

  // Interned mailboxes.
  std::deque<Mailbox> mailboxes_;  ///< by id; deque keeps references stable
  std::vector<std::string> mailbox_names_;
  std::unordered_map<std::string, MailboxId> mailbox_ids_;

  std::shared_ptr<CommBlockPool> comm_pool_;
  std::unordered_map<const core::Action*, CommPtr> inflight_;  ///< running transfers
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::vector<std::pair<int, bool>> host_changes_;  ///< deferred (host, now_on)
  std::vector<RestartSpec> pending_restarts_;  ///< respawn when host returns
  Stats stats_;
  bool deadlocked_ = false;
  bool running_ = false;
};

}  // namespace sg::kernel
