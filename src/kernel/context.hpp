/// \file context.hpp
/// Cooperative execution contexts for simulated processes.
///
/// The paper's MSG model runs *all simulated application processes within a
/// single OS process*. We realize each simulated process as an OS thread that
/// is strictly serialized against the scheduler ("maestro") through a pair of
/// binary semaphores: at any instant exactly one thread — maestro or one
/// actor — is running. This gives deterministic scheduling (and therefore
/// reproducible simulations) while letting user code block naturally inside
/// simcalls.
#pragma once

#include <exception>
#include <functional>
#include <semaphore>
#include <thread>

namespace sg::kernel {

/// Thrown inside an actor context to unwind its stack when it gets killed.
/// User code must let it propagate (catching it cancels the kill... just as
/// in real SimGrid).
struct ForcedExit {};

class Context {
public:
  /// `body` runs on a dedicated thread, but only while the maestro is parked
  /// in resume_and_wait().
  explicit Context(std::function<void()> body);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Maestro side: let the actor run until it yields or terminates.
  /// Returns true when the body has finished (normally or by exception).
  bool resume_and_wait();

  /// Actor side: hand control back to the maestro. If a kill was requested
  /// while parked, throws ForcedExit upon wakeup.
  void yield();

  /// Maestro side: request the actor to die at its next wakeup. Call
  /// resume_and_wait() afterwards to actually unwind it.
  void request_kill() { kill_requested_ = true; }

  bool finished() const { return finished_; }

  /// The exception (if any) that escaped the body, for error reporting.
  std::exception_ptr failure() const { return failure_; }

private:
  void trampoline();

  std::function<void()> body_;
  std::thread thread_;
  std::binary_semaphore go_{0};    // maestro -> actor
  std::binary_semaphore done_{0};  // actor -> maestro
  bool kill_requested_ = false;
  bool finished_ = false;
  bool started_ = false;
  std::exception_ptr failure_;
};

}  // namespace sg::kernel
