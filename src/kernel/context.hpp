/// \file context.hpp
/// Cooperative execution contexts for simulated processes.
///
/// The paper's MSG model runs *all simulated application processes within a
/// single OS process*. How a simulated process is realized is a pluggable
/// backend behind the Context interface, selected with the
/// `contexts/backend` config key (or the SG_CONTEXTS environment variable):
///
///  * `fiber` (default) — pooled stackful fibers switched in user space.
///    Stacks are small (`contexts/stack-size`, default 128 KiB), carved out
///    of slab mmaps, committed lazily by the kernel page by page, and
///    recycled through a free list when an actor dies. A context costs a
///    few hundred bytes until it first runs; this is the backend that
///    scales to 1M+ simulated actors.
///  * `thread` — one OS thread per actor, strictly serialized against the
///    maestro through a pair of binary semaphores. Megabytes of stack and a
///    kernel schedule per actor, but every debugging / profiling tool
///    understands it natively. Kept for debugging and as the reference
///    implementation for the backend-equivalence test sweep.
///
/// ## Switch protocol invariants (all backends)
///
/// 1. **Per-lane serialization.** Each context is driven by at most one OS
///    thread at a time: resume_and_wait() transfers control resumer->actor
///    and returns only when the actor has yielded or terminated; yield()
///    transfers actor->resumer and returns only at the next resume. With
///    `engine/parallel-actors` off the resumer is always the maestro and the
///    whole simulation is strictly serialized; with it on, the kernel's
///    scheduling phase resumes disjoint shards' contexts on different worker
///    lanes concurrently — but any one context still sees a strictly serial
///    resume/yield history, and successive resumes of the same context (even
///    from different lanes) are ordered through the lane barrier. Both
///    backends support cross-thread resumes: the fiber backend saves the
///    resumer's stack per resume, the thread backend hands off through
///    semaphores.
/// 2. **Resumer-side calls vs actor-side calls.** resume_and_wait() and
///    request_kill() may only be called by the current resumer (maestro or
///    owning lane); yield() may only be called from inside the context's
///    body. Backends are free to assume this (the fiber backend keeps the
///    resumer's saved stack pointer in the context being resumed).
/// 3. **Kill protocol.** request_kill() arms the kill; the *next* wakeup of
///    the body (via resume_and_wait()) throws ForcedExit inside yield(), so
///    the body unwinds with normal C++ semantics (RAII runs). A context
///    whose body never started skips the body entirely. After ForcedExit —
///    or normal return, or an escaped exception — the context reports
///    finished() and must never be resumed again.
/// 4. **Termination switch.** The final switch back to the maestro happens
///    after the body has fully unwound; the backend may release the
///    execution resources (stack, thread) as soon as finished() is true.
///    Under ASan, the terminating switch passes a null fake-stack save slot
///    so the sanitizer retires the fiber's fake stack (see context.cpp).
/// 5. **Exception containment.** Anything escaping the body except
///    ForcedExit is captured into failure(); it never crosses onto the
///    maestro stack.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <string>

#include "xbt/settings.hpp"

namespace sg::kernel {

/// Thrown inside an actor context to unwind its stack when it gets killed.
/// User code must let it propagate (catching it cancels the kill... just as
/// in real SimGrid).
struct ForcedExit {};

/// Typed config keys owned by the context layer; declare_context_config()
/// registers them. contexts/backend is seeded by SG_CONTEXTS.
inline constexpr config::StringKey kCfgContextBackend{"contexts/backend"};
inline constexpr config::NumberKey kCfgContextStackSize{"contexts/stack-size"};
inline constexpr config::IntKey kCfgContextGuardPages{"contexts/guard-pages"};

/// Register the `contexts/*` config keys (idempotent).
void declare_context_config();

/// Worker-lane id of the calling OS thread, used to pick per-lane context
/// resources (the fiber backend's stack free lists). Thread-local; defaults
/// to 0 (the maestro). The kernel tags each worker lane before resuming
/// actors on it and resets the maestro to 0 for the serial phases.
void set_context_lane(int lane);
int context_lane();

/// Number of per-lane resource slots backends keep. engine/threads is capped
/// at 256, so lane ids are always < kMaxContextLanes.
inline constexpr int kMaxContextLanes = 256;

class Context {
public:
  virtual ~Context() = default;

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Maestro side: let the actor run until it yields or terminates.
  /// Returns true when the body has finished (normally or by exception).
  virtual bool resume_and_wait() = 0;

  /// Actor side: hand control back to the maestro. If a kill was requested
  /// while parked, throws ForcedExit upon wakeup.
  virtual void yield() = 0;

  /// Maestro side: request the actor to die at its next wakeup. Call
  /// resume_and_wait() afterwards to actually unwind it.
  void request_kill() { kill_requested_ = true; }

  bool finished() const { return finished_; }

  /// The exception (if any) that escaped the body, for error reporting.
  std::exception_ptr failure() const { return failure_; }

protected:
  explicit Context(std::function<void()> body) : body_(std::move(body)) {}

  /// Shared trampoline guts: run the body under the kill/containment rules.
  void run_body() {
    if (!kill_requested_) {
      try {
        body_();
      } catch (const ForcedExit&) {
        // normal kill path
      } catch (...) {
        failure_ = std::current_exception();
      }
    }
    finished_ = true;
  }

  std::function<void()> body_;
  bool kill_requested_ = false;
  bool finished_ = false;
  std::exception_ptr failure_;
};

/// Creates contexts of one backend flavor and owns their shared resources
/// (the fiber backend's stack pool lives here, so stacks are recycled
/// across the whole kernel rather than per actor).
class ContextFactory {
public:
  virtual ~ContextFactory() = default;

  virtual std::unique_ptr<Context> create(std::function<void()> body) = 0;
  virtual const char* backend_name() const = 0;

  /// Stack-pool accounting (all zero for backends without pooled stacks).
  /// Totals are aggregated over the per-lane free lists; call from a serial
  /// section (no lane concurrently acquiring) for an exact snapshot.
  struct PoolStats {
    size_t stacks_allocated = 0;  ///< stacks carved out of slabs so far
    size_t stacks_free = 0;       ///< currently parked in the free list
    size_t slabs = 0;             ///< slab mmaps backing the stacks
    size_t stack_bytes = 0;       ///< usable bytes per stack
  };
  virtual PoolStats pool_stats() const { return {}; }

  /// Build the backend selected by the `contexts/backend` config key
  /// ("fiber" or "thread"; the SG_CONTEXTS environment variable seeds the
  /// default). Throws xbt::InvalidArgument on an unknown name.
  static std::unique_ptr<ContextFactory> from_config();
};

}  // namespace sg::kernel
