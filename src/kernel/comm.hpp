/// \file comm.hpp
/// Rendezvous communications. A mailbox is a named meeting point: the first
/// party (sender or receiver) queues a Comm; the counterpart merges into it
/// and the data transfer starts on the platform route between their hosts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/action.hpp"
#include "kernel/actor.hpp"

namespace sg::kernel {

struct Comm {
  enum class State {
    kQueuedSend,  ///< sender waiting for a receiver
    kQueuedRecv,  ///< receiver waiting for a sender
    kStarted,     ///< transfer in flight
    kFinished,    ///< completed / failed / timed out / canceled
  };

  std::string mailbox;
  State state = State::kQueuedSend;

  Actor* sender = nullptr;
  Actor* receiver = nullptr;
  void* payload = nullptr;
  double bytes = 0;
  double rate = -1;      ///< optional cap on the transfer rate
  bool detached = false; ///< sender does not wait for completion

  bool sender_waiting = false;
  bool receiver_waiting = false;

  core::ActionPtr action;       ///< engine transfer once started
  WakeStatus result = WakeStatus::kOk;  ///< outcome, valid when kFinished
};

struct Mailbox {
  std::deque<CommPtr> queued_sends;
  std::deque<CommPtr> queued_recvs;
};

}  // namespace sg::kernel
