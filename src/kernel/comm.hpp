/// \file comm.hpp
/// Rendezvous communications. A mailbox is a named meeting point: the first
/// party (sender or receiver) queues a Comm; the counterpart merges into it
/// and the data transfer starts on the platform route between their hosts.
///
/// Comm control blocks are recycled through the kernel's block pool (one
/// fused allocation per comm, LIFO reuse) and carry the *interned* mailbox
/// id — names are resolved once at the API boundary, never on the per-send
/// hot path.
///
/// ## Endpoint lifetime invariant
///
/// `sender` / `receiver` are raw pointers into the kernel's actor arena,
/// and a dead actor's slot may be reaped and reused. The pointers are
/// therefore only dereferenced while the matching `*_waiting` flag is true
/// and the comm is not kFinished: a waiting party is blocked on this very
/// comm, hence alive. Every path that finishes a comm (completion, timeout,
/// cancel, kill, failure) marks it kFinished *before* the owning actors can
/// die, and all wake paths check the state first. Anything needed after the
/// comm is over — who sent, between which hosts — is stored by value
/// (`sender_id`, `src_host`, ...), never read through the pointers.
#pragma once

#include <cstdint>
#include <deque>

#include "core/action.hpp"
#include "kernel/actor.hpp"

namespace sg::kernel {

struct Comm {
  enum class State : std::uint8_t {
    kQueuedSend,  ///< sender waiting for a receiver
    kQueuedRecv,  ///< receiver waiting for a sender
    kMatched,     ///< both parties met on the mailbox's home lane during a
                  ///< scheduling phase; the engine transfer starts when the
                  ///< maestro replays the lane's pending starts (kernel.hpp)
    kStarted,     ///< transfer in flight
    kFinished,    ///< completed / failed / timed out / canceled
  };

  MailboxId mailbox = kNoMailbox;
  State state = State::kQueuedSend;
  WakeStatus result = WakeStatus::kOk;  ///< outcome, valid when kFinished
  bool detached = false;  ///< sender does not wait for completion
  bool sender_waiting = false;
  bool receiver_waiting = false;

  Actor* sender = nullptr;    ///< see the endpoint lifetime invariant above
  Actor* receiver = nullptr;
  ActorId sender_id = -1;     ///< by-value copies, safe after the actors die
  ActorId receiver_id = -1;
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;

  void* payload = nullptr;
  double bytes = 0;
  double rate = -1;      ///< optional cap on the transfer rate
  core::ActionPtr action;  ///< engine transfer once started
};

struct Mailbox {
  std::deque<CommPtr> queued_sends;
  std::deque<CommPtr> queued_recvs;
  /// Run-queue shard whose lane may match on this mailbox inline during a
  /// parallel scheduling phase (assigned at intern time: the interning
  /// actor's shard, 0 when interned from the maestro). Actors on any other
  /// shard go through the deferred-simcall path instead, so the queues are
  /// only ever touched by the home lane or the serial maestro.
  std::int32_t home = 0;
};

}  // namespace sg::kernel
