/// \file membership.hpp
/// Graceful-degradation helpers for dynamic platform membership.
///
/// The kernel exposes the raw churn verbs (Kernel::join_host / leave_host /
/// rejoin_host); this layer is what application actors build on to survive
/// them:
///
///   * a membership driver — a daemon that walks the hosts' `churn` traces
///     and promotes trace edges to whole-host departure (leave_host) and
///     return (rejoin_host), the membership analogue of the engine's
///     state-trace scheduling;
///   * restart-on-rejoin registration — a daemon spawned through here dies
///     with its host and respawns when the host rejoins, via the kernel's
///     auto-restart machinery;
///   * a bounded-retry-with-backoff comm wrapper, so a sender/receiver rides
///     out a vanished peer (timeout, network failure, departed host) instead
///     of dying with it.
///
/// Retry parameters come from the config registry (membership/retry-*) and
/// can be overridden per call through RetryPolicy.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "trace/trace.hpp"
#include "xbt/settings.hpp"

namespace sg::kernel {

inline constexpr config::IntKey kCfgRetryMax{"membership/retry-max"};
inline constexpr config::NumberKey kCfgRetryTimeout{"membership/retry-timeout"};
inline constexpr config::NumberKey kCfgRetryBackoff{"membership/retry-backoff"};
inline constexpr config::NumberKey kCfgRetryMaxTimeout{"membership/retry-max-timeout"};

/// Declare the membership/* config keys (idempotent).
void declare_membership_config();

/// Bounded-retry parameters for retry_send / retry_recv. Each attempt runs
/// with `timeout`; on failure the next attempt's timeout is multiplied by
/// `backoff` (capped at `max_timeout`) and the actor sleeps the *previous*
/// timeout before retrying, so a flapping peer is probed at geometrically
/// spaced dates rather than hammered.
struct RetryPolicy {
  int max_attempts = 4;       ///< total attempts (>= 1)
  double timeout = 1.0;       ///< first attempt's comm timeout, s
  double backoff = 2.0;       ///< timeout multiplier between attempts
  double max_timeout = 30.0;  ///< cap on the per-attempt timeout, s

  /// Policy seeded from the membership/retry-* config keys.
  static RetryPolicy from_config();
};

/// Blocking send with bounded retry. Returns true when an attempt completed,
/// false when every attempt failed (timeout, network failure, or a departed /
/// down peer). Never throws the transient comm exceptions it absorbs.
bool retry_send(Kernel& k, MailboxId mailbox, void* payload, double bytes,
                const RetryPolicy& policy = RetryPolicy::from_config());

/// Blocking receive with bounded retry. Returns the payload, or nullptr when
/// every attempt failed. `source` (if non-null) receives the sender's id on
/// success.
void* retry_recv(Kernel& k, MailboxId mailbox,
                 const RetryPolicy& policy = RetryPolicy::from_config(),
                 ActorId* source = nullptr);

/// One churned host: its membership trace (1 = member, 0 = departed).
struct HostChurn {
  int host = -1;
  sg::trace::Trace availability;
};

/// Spawn the membership driver: a daemon on `driver_host` that sleeps from
/// trace edge to trace edge and calls Kernel::leave_host / rejoin_host as
/// each host's trace drops to <= 0.5 resp. rises above it. Edges at equal
/// dates apply in ascending host order (deterministic under parallel
/// scheduling). The daemon exits when no trace has a further edge; periodic
/// traces churn forever (daemons don't block termination). Run it on a host
/// that is not itself churned.
ActorId start_membership_driver(Kernel& k, int driver_host, std::vector<HostChurn> churn);

/// Convenience: collect every platform host with a non-empty HostSpec::churn
/// trace and drive those.
ActorId start_membership_driver(Kernel& k, int driver_host);

/// Spawn `body` as a daemon with auto-restart: it is killed when `host`
/// departs (or fails) and respawned by the kernel when the host rejoins (or
/// reboots) — the restart-on-rejoin registration from the membership surface.
ActorId register_rejoin_daemon(Kernel& k, const std::string& name, int host,
                               std::function<void()> body);

}  // namespace sg::kernel
