#include "kernel/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(kernel, "simulation kernel (maestro)");

namespace sg::kernel {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

thread_local Actor* tl_current_actor = nullptr;
thread_local Kernel* tl_current_kernel = nullptr;
Kernel* g_active_kernel = nullptr;

double clock_provider() { return g_active_kernel ? g_active_kernel->now() : -1.0; }
const char* actor_provider() { return tl_current_actor ? tl_current_actor->name().c_str() : nullptr; }

/// Translate a wake status into the exception the simcall should raise.
void check_status(WakeStatus st) {
  switch (st) {
    case WakeStatus::kOk:
      return;
    case WakeStatus::kTimeout:
      throw xbt::TimeoutException();
    case WakeStatus::kHostFailure:
      throw xbt::HostFailureException();
    case WakeStatus::kNetworkFailure:
      throw xbt::NetworkFailureException();
    case WakeStatus::kCanceled:
      throw xbt::CancelException();
  }
}
}  // namespace

Actor::Actor(ActorId id, std::string name, int host, std::function<void()> body, bool daemon,
             bool auto_restart)
    : id_(id), name_(std::move(name)), host_(host), body_(std::move(body)), daemon_(daemon),
      auto_restart_(auto_restart) {}

Kernel::Kernel(platform::Platform platform) : engine_(std::move(platform)) {
  engine_.set_resource_observer([this](bool is_host, int index, bool on) {
    if (is_host)
      host_changes_.push_back({index, on});
  });
  g_active_kernel = this;
  xbt::log_set_clock_provider(&clock_provider);
  xbt::log_set_actor_provider(&actor_provider);
}

Kernel::~Kernel() {
  // Unwind any live context so its thread exits (Context dtor handles it).
  actors_.clear();
  if (g_active_kernel == this)
    g_active_kernel = nullptr;
}

Actor* Kernel::self() { return tl_current_actor; }
Kernel* Kernel::current() { return tl_current_kernel ? tl_current_kernel : g_active_kernel; }

ActorId Kernel::spawn(const std::string& name, int host, std::function<void()> body, bool daemon,
                      bool auto_restart) {
  if (host < 0 || static_cast<size_t>(host) >= engine_.platform().host_count())
    throw xbt::InvalidArgument("spawn: no such host");
  if (!engine_.host_is_on(host))
    throw xbt::HostFailureException("spawn: host " + engine_.platform().host(host).name + " is down");
  const ActorId id = next_actor_id_++;
  auto actor = std::make_unique<Actor>(id, name, host, body, daemon, auto_restart);
  Actor* a = actor.get();
  a->context_ = std::make_unique<Context>([this, a] {
    tl_current_actor = a;
    tl_current_kernel = this;
    a->body_();
  });
  actors_.emplace(id, std::move(actor));
  schedule(a);
  SG_DEBUG(kernel, "spawned actor %ld '%s' on %s", id, name.c_str(),
           engine_.platform().host(host).name.c_str());
  return id;
}

void Kernel::schedule(Actor* a) {
  if (a->state_ == Actor::State::kReady && !a->suspended_ && !a->in_ready_queue_) {
    ready_.push_back(a);
    a->in_ready_queue_ = true;
  }
}

void Kernel::wake(Actor* a, WakeStatus status) {
  if (a->state_ != Actor::State::kBlocked)
    return;
  a->wake_status_ = status;
  a->state_ = Actor::State::kReady;
  ++a->timer_gen_;
  a->blocked_action_.reset();
  a->blocked_comm_.reset();
  schedule(a);
}

WakeStatus Kernel::block_self(Actor* a, double timeout) {
  a->state_ = Actor::State::kBlocked;
  if (timeout >= 0)
    timers_.push(Timer{engine_.now() + timeout, a->id_, a->timer_gen_});
  a->context_->yield();
  return a->wake_status_;
}

void Kernel::run_actor(Actor* a) {
  const bool finished = a->context_->resume_and_wait();
  if (finished)
    handle_actor_end(a);
}

void Kernel::handle_actor_end(Actor* a) {
  if (a->state_ == Actor::State::kDead)
    return;
  a->state_ = Actor::State::kDead;
  ++a->timer_gen_;
  a->blocked_action_.reset();
  a->blocked_comm_.reset();
  if (a->context_->failure()) {
    try {
      std::rethrow_exception(a->context_->failure());
    } catch (const std::exception& e) {
      SG_ERROR(kernel, "actor '%s' died of an uncaught exception: %s", a->name_.c_str(), e.what());
    } catch (...) {
      SG_ERROR(kernel, "actor '%s' died of an uncaught exception", a->name_.c_str());
    }
  }
  for (auto& cb : a->exit_callbacks_)
    cb(a->killed_by_failure_);
  if (a->auto_restart_ && a->killed_by_failure_)
    pending_restarts_.push_back({a->name_, a->host_, a->body_, a->daemon_});
  SG_DEBUG(kernel, "actor %ld '%s' terminated", a->id_, a->name_.c_str());
}

double Kernel::run() {
  running_ = true;
  long idle_rounds = 0;
  while (true) {
    bool any_ran = false;
    while (!ready_.empty()) {
      Actor* a = ready_.front();
      ready_.pop_front();
      a->in_ready_queue_ = false;
      if (a->state_ != Actor::State::kReady || a->suspended_)
        continue;
      any_ran = true;
      run_actor(a);
      process_resource_changes();
    }

    size_t nondaemon = 0;
    for (const auto& [id, a] : actors_)
      if (a->alive() && !a->daemon())
        ++nondaemon;
    if (nondaemon == 0)
      break;

    const double timer_bound = timers_.empty() ? kInf : timers_.top().time;
    auto events = engine_.step(timer_bound);
    for (const auto& ev : events)
      handle_action_event(ev);
    fire_due_timers();
    process_resource_changes();

    if (!events.empty() || any_ran || !ready_.empty()) {
      idle_rounds = 0;
      continue;
    }
    const double next = engine_.next_event_time();
    if (next == kInf && timers_.empty() && ready_.empty()) {
      deadlocked_ = true;
      SG_WARN(kernel, "deadlock: %zu actor(s) blocked forever at t=%g; stopping the simulation",
              alive_actor_count(), engine_.now());
      for (const auto& [id, a] : actors_)
        if (a->alive())
          SG_WARN(kernel, "  blocked actor: '%s' on %s", a->name_.c_str(),
                  engine_.platform().host(a->host_).name.c_str());
      break;
    }
    if (++idle_rounds > 1000000) {
      deadlocked_ = true;
      SG_ERROR(kernel, "giving up: 1e6 idle scheduling rounds (runaway trace events?)");
      break;
    }
  }

  // Tear down survivors (daemons, deadlocked actors).
  for (auto& [id, a] : actors_)
    if (a->alive())
      kill_internal(a.get(), false);
  running_ = false;
  return engine_.now();
}

// -- simcalls ---------------------------------------------------------------

void Kernel::execute(double flops, double priority) {
  Actor* a = self();
  assert(a != nullptr && "execute() must be called from an actor");
  auto action = engine_.exec_start(a->host_, flops, priority, a->name_ + ":exec");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::execute_parallel(const std::vector<int>& hosts, const std::vector<double>& flops,
                              const std::vector<std::vector<double>>& bytes) {
  Actor* a = self();
  assert(a != nullptr && "execute_parallel() must be called from an actor");
  auto action = engine_.ptask_start(hosts, flops, bytes, a->name_ + ":ptask");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::sleep_for(double duration) {
  Actor* a = self();
  assert(a != nullptr && "sleep_for() must be called from an actor");
  if (duration <= 0) {
    yield_now();
    return;
  }
  auto action = engine_.sleep_start(a->host_, duration, a->name_ + ":sleep");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::yield_now() {
  Actor* a = self();
  assert(a != nullptr);
  a->state_ = Actor::State::kReady;
  schedule(a);
  a->context_->yield();
}

void Kernel::exit_self() {
  assert(self() != nullptr);
  throw ForcedExit{};
}

CommPtr Kernel::send_async(const std::string& mb, void* payload, double bytes, double rate) {
  Actor* a = self();
  assert(a != nullptr && "send must be called from an actor");
  Mailbox& box = mailbox(mb);
  if (!box.queued_recvs.empty()) {
    CommPtr comm = box.queued_recvs.front();
    box.queued_recvs.pop_front();
    comm->sender = a;
    comm->payload = payload;
    comm->bytes = bytes;
    comm->rate = rate;
    start_comm(comm);
    return comm;
  }
  auto comm = std::make_shared<Comm>();
  comm->mailbox = mb;
  comm->state = Comm::State::kQueuedSend;
  comm->sender = a;
  comm->payload = payload;
  comm->bytes = bytes;
  comm->rate = rate;
  box.queued_sends.push_back(comm);
  return comm;
}

CommPtr Kernel::recv_async(const std::string& mb) {
  Actor* a = self();
  assert(a != nullptr && "recv must be called from an actor");
  Mailbox& box = mailbox(mb);
  if (!box.queued_sends.empty()) {
    CommPtr comm = box.queued_sends.front();
    box.queued_sends.pop_front();
    comm->receiver = a;
    start_comm(comm);
    return comm;
  }
  auto comm = std::make_shared<Comm>();
  comm->mailbox = mb;
  comm->state = Comm::State::kQueuedRecv;
  comm->receiver = a;
  box.queued_recvs.push_back(comm);
  return comm;
}

void Kernel::start_comm(const CommPtr& comm) {
  comm->state = Comm::State::kStarted;
  comm->action = engine_.comm_start(comm->sender->host_, comm->receiver->host_, comm->bytes, comm->rate,
                                    "comm:" + comm->mailbox);
  inflight_.emplace(comm->action.get(), comm);
}

void Kernel::finish_comm(const CommPtr& comm, WakeStatus result) {
  comm->state = Comm::State::kFinished;
  comm->result = result;
  // Identity guards: wake each party only while it is still blocked on this
  // very communication (a straggler event must never wake an actor that has
  // meanwhile blocked on something else).
  if (comm->receiver != nullptr && comm->receiver_waiting && comm->receiver->blocked_comm_ == comm)
    wake(comm->receiver, result);
  if (comm->sender != nullptr && comm->sender_waiting && comm->sender->blocked_comm_ == comm)
    wake(comm->sender, result);
}

void* Kernel::comm_wait(const CommPtr& comm, double timeout) {
  Actor* a = self();
  assert(a != nullptr);
  WakeStatus st;
  if (comm->state == Comm::State::kFinished) {
    st = comm->result;
  } else {
    if (a == comm->sender)
      comm->sender_waiting = true;
    else
      comm->receiver_waiting = true;
    a->blocked_comm_ = comm;
    st = block_self(a, timeout);
    if (a == comm->sender)
      comm->sender_waiting = false;
    else
      comm->receiver_waiting = false;
  }
  check_status(st);
  return comm->payload;
}

void Kernel::send(const std::string& mb, void* payload, double bytes, double timeout, double rate) {
  comm_wait(send_async(mb, payload, bytes, rate), timeout);
}

void Kernel::send_detached(const std::string& mb, void* payload, double bytes, double rate) {
  CommPtr comm = send_async(mb, payload, bytes, rate);
  comm->detached = true;
}

void* Kernel::recv(const std::string& mb, double timeout, ActorId* source) {
  CommPtr comm = recv_async(mb);
  void* payload = comm_wait(comm, timeout);
  if (source != nullptr)
    *source = comm->sender != nullptr ? comm->sender->id() : -1;
  return payload;
}

bool Kernel::comm_waiting(const std::string& mb) const {
  auto it = mailboxes_.find(mb);
  return it != mailboxes_.end() && !it->second.queued_sends.empty();
}

// -- event handling -----------------------------------------------------------

void Kernel::handle_action_event(const core::ActionEvent& ev) {
  const core::Action* act = ev.action.get();
  switch (act->kind()) {
    case core::ActionKind::kExec:
    case core::ActionKind::kSleep:
    case core::ActionKind::kPtask: {
      Actor* a = static_cast<Actor*>(act->user_data);
      // Identity guard: only wake the actor while it still waits on this
      // exact action (stale cancel events must not leak a spurious kOk).
      if (a != nullptr && a->blocked_action_.get() == act)
        wake(a, ev.failed ? WakeStatus::kHostFailure : WakeStatus::kOk);
      break;
    }
    case core::ActionKind::kComm: {
      auto it = inflight_.find(act);
      if (it == inflight_.end())
        return;
      CommPtr comm = it->second;
      inflight_.erase(it);
      if (comm->state == Comm::State::kFinished)
        return;  // already resolved by a timeout or a kill
      finish_comm(comm, ev.failed ? WakeStatus::kNetworkFailure : WakeStatus::kOk);
      break;
    }
  }
}

void Kernel::fire_due_timers() {
  while (!timers_.empty() && timers_.top().time <= engine_.now() + 1e-12) {
    const Timer t = timers_.top();
    timers_.pop();
    auto it = actors_.find(t.actor);
    if (it == actors_.end())
      continue;
    Actor* a = it->second.get();
    if (a->state_ != Actor::State::kBlocked || t.gen != a->timer_gen_)
      continue;  // stale timer
    if (a->blocked_comm_ != nullptr) {
      CommPtr comm = a->blocked_comm_;
      if (comm->state == Comm::State::kQueuedSend || comm->state == Comm::State::kQueuedRecv) {
        remove_from_mailbox(comm);
        comm->state = Comm::State::kFinished;
        comm->result = WakeStatus::kTimeout;
        wake(a, WakeStatus::kTimeout);
      } else if (comm->state == Comm::State::kStarted) {
        comm->state = Comm::State::kFinished;
        comm->result = WakeStatus::kCanceled;
        Actor* peer = (a == comm->sender) ? comm->receiver : comm->sender;
        wake(a, WakeStatus::kTimeout);
        if (peer != nullptr && ((peer == comm->sender && comm->sender_waiting) ||
                                (peer == comm->receiver && comm->receiver_waiting)))
          wake(peer, WakeStatus::kNetworkFailure);
        if (comm->action)
          comm->action->cancel();
      } else {
        wake(a, WakeStatus::kTimeout);
      }
    } else if (a->blocked_action_ != nullptr) {
      auto action = a->blocked_action_;
      wake(a, WakeStatus::kTimeout);
      action->cancel();
    } else {
      wake(a, WakeStatus::kTimeout);
    }
  }
}

void Kernel::remove_from_mailbox(const CommPtr& comm) {
  auto it = mailboxes_.find(comm->mailbox);
  if (it == mailboxes_.end())
    return;
  auto scrub = [&](std::deque<CommPtr>& q) {
    q.erase(std::remove(q.begin(), q.end(), comm), q.end());
  };
  scrub(it->second.queued_sends);
  scrub(it->second.queued_recvs);
}

void Kernel::detach_from_comm(Actor* a) {
  if (a->blocked_comm_ == nullptr)
    return;
  CommPtr comm = a->blocked_comm_;
  if (comm->state == Comm::State::kQueuedSend || comm->state == Comm::State::kQueuedRecv) {
    remove_from_mailbox(comm);
    comm->state = Comm::State::kFinished;
    comm->result = WakeStatus::kCanceled;
  } else if (comm->state == Comm::State::kStarted) {
    comm->state = Comm::State::kFinished;
    comm->result = WakeStatus::kCanceled;
    Actor* peer = (a == comm->sender) ? comm->receiver : comm->sender;
    if (peer != nullptr && ((peer == comm->sender && comm->sender_waiting) ||
                            (peer == comm->receiver && comm->receiver_waiting)))
      wake(peer, WakeStatus::kNetworkFailure);
    if (comm->action)
      comm->action->cancel();
  }
  a->blocked_comm_.reset();
}

// -- actor management -----------------------------------------------------------

void Kernel::suspend(ActorId id) {
  Actor* a = actor(id);
  if (a == nullptr || !a->alive() || a->suspended_)
    return;
  a->suspended_ = true;
  if (a->blocked_action_)
    a->blocked_action_->suspend();
  if (a->blocked_comm_ && a->blocked_comm_->state == Comm::State::kStarted && a->blocked_comm_->action)
    a->blocked_comm_->action->suspend();
  if (a == self()) {
    a->state_ = Actor::State::kReady;  // runnable again as soon as resumed
    a->context_->yield();
  }
}

void Kernel::resume(ActorId id) {
  Actor* a = actor(id);
  if (a == nullptr || !a->alive() || !a->suspended_)
    return;
  a->suspended_ = false;
  if (a->blocked_action_)
    a->blocked_action_->resume();
  if (a->blocked_comm_ && a->blocked_comm_->state == Comm::State::kStarted && a->blocked_comm_->action)
    a->blocked_comm_->action->resume();
  schedule(a);
}

void Kernel::kill(ActorId id) {
  Actor* a = actor(id);
  if (a == nullptr || !a->alive())
    return;
  kill_internal(a, false);
}

void Kernel::kill_internal(Actor* a, bool by_failure) {
  if (!a->alive())
    return;
  a->killed_by_failure_ = by_failure;
  if (a == self())
    throw ForcedExit{};
  detach_from_comm(a);
  if (a->blocked_action_) {
    auto action = a->blocked_action_;
    a->blocked_action_.reset();
    action->cancel();
  }
  a->context_->request_kill();
  while (!a->context_->finished())
    a->context_->resume_and_wait();
  handle_actor_end(a);
}

bool Kernel::is_alive(ActorId id) const {
  auto it = actors_.find(id);
  return it != actors_.end() && it->second->alive();
}

Actor* Kernel::actor(ActorId id) {
  auto it = actors_.find(id);
  return it == actors_.end() ? nullptr : it->second.get();
}

size_t Kernel::alive_actor_count() const {
  size_t n = 0;
  for (const auto& [id, a] : actors_)
    if (a->alive())
      ++n;
  return n;
}

std::vector<ActorId> Kernel::live_actors() const {
  std::vector<ActorId> out;
  for (const auto& [id, a] : actors_)
    if (a->alive())
      out.push_back(id);
  return out;
}

// -- platform control -------------------------------------------------------------

void Kernel::host_off(int host) { engine_.set_host_state(host, false); }
void Kernel::host_on(int host) { engine_.set_host_state(host, true); }

void Kernel::process_resource_changes() {
  while (!host_changes_.empty()) {
    auto [host, on] = host_changes_.front();
    host_changes_.erase(host_changes_.begin());
    if (!on) {
      // Kill every actor living on the failed host.
      std::vector<Actor*> victims;
      for (auto& [id, a] : actors_)
        if (a->alive() && a->host_ == host)
          victims.push_back(a.get());
      for (Actor* a : victims) {
        SG_VERB(kernel, "host %s failed: killing actor '%s'",
                engine_.platform().host(host).name.c_str(), a->name_.c_str());
        kill_internal(a, true);
      }
    } else {
      // Respawn auto-restart actors that died with this host.
      std::vector<RestartSpec> todo;
      auto it = pending_restarts_.begin();
      while (it != pending_restarts_.end()) {
        if (it->host == host) {
          todo.push_back(*it);
          it = pending_restarts_.erase(it);
        } else {
          ++it;
        }
      }
      for (const auto& spec : todo) {
        SG_VERB(kernel, "host %s is back: restarting actor '%s'",
                engine_.platform().host(host).name.c_str(), spec.name.c_str());
        spawn(spec.name, spec.host, spec.body, spec.daemon, /*auto_restart=*/true);
      }
    }
  }
}

}  // namespace sg::kernel
