#include "kernel/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <mutex>
#include <new>

#include "core/workers.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"
#include "xbt/str.hpp"

SG_LOG_NEW_CATEGORY(kernel, "simulation kernel (maestro)");

namespace sg::kernel {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// The actor currently executing and its kernel, per OS thread: during a
// parallel scheduling phase every lane has its own current actor. Under the
// thread context backend the semaphore handoff publishes the resumer's write
// to the actor's thread (release before acquire), so the actor-side reads in
// self()/current() go through the *resuming lane's* slot — resume_context
// and run_shard_batch set these on the resuming thread, and ThreadContext
// bodies read them via the kernel passing through the resume (see
// resume_context). g_active_kernel stays a plain global: it is only written
// from kernel construction/destruction (serial by definition).
thread_local Actor* g_current_actor = nullptr;
thread_local Kernel* g_current_kernel = nullptr;
Kernel* g_active_kernel = nullptr;

double clock_provider() { return g_active_kernel ? g_active_kernel->now() : -1.0; }
const char* actor_provider() { return g_current_actor ? g_current_actor->name().c_str() : nullptr; }

/// Translate a wake status into the exception the simcall should raise.
void check_status(WakeStatus st) {
  switch (st) {
    case WakeStatus::kOk:
      return;
    case WakeStatus::kTimeout:
      throw xbt::TimeoutException();
    case WakeStatus::kHostFailure:
      throw xbt::HostFailureException();
    case WakeStatus::kNetworkFailure:
      throw xbt::NetworkFailureException();
    case WakeStatus::kCanceled:
      throw xbt::CancelException();
  }
}
}  // namespace

Actor::Actor(ActorId id, std::string name, int host, std::function<void()> body, bool daemon,
             bool auto_restart)
    : id_(id), host_(host), daemon_(daemon), auto_restart_(auto_restart), name_(std::move(name)),
      body_(std::move(body)) {}

// -- comm control-block pool ---------------------------------------------------
// Same shape as the engine's ActionBlockPool: allocate_shared fuses the Comm
// and its shared_ptr control block into one allocation of a single size,
// which a LIFO free list then recycles — at millions of rendezvous per run
// the allocator drops off the profile and recycled blocks come back
// cache-warm. One pool per run-queue shard: allocation happens on the home
// lane (or the maestro), but the last CommPtr reference to a block can drop
// on any thread, so both sides of the free list take the pool's mutex.

struct CommBlockPool {
  static constexpr size_t kMaxFreeBlocks = 64 * 1024;
  std::mutex mutex;
  std::vector<void*> free_blocks;
  size_t block_bytes = 0;  ///< learned from the first allocation

  ~CommBlockPool() {
    for (void* p : free_blocks)
      ::operator delete(p);
  }

  void* allocate(size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex);
    if (block_bytes == 0)
      block_bytes = bytes;
    if (bytes == block_bytes && !free_blocks.empty()) {
      void* p = free_blocks.back();
      free_blocks.pop_back();
      return p;
    }
    return ::operator new(bytes);
  }

  void deallocate(void* p, size_t bytes) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (bytes == block_bytes && free_blocks.size() < kMaxFreeBlocks) {
        free_blocks.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }
};

namespace {
template <typename T>
struct CommPoolAllocator {
  using value_type = T;

  explicit CommPoolAllocator(std::shared_ptr<CommBlockPool> pool) : pool_(std::move(pool)) {}
  template <typename U>
  CommPoolAllocator(const CommPoolAllocator<U>& other) : pool_(other.pool_) {}

  T* allocate(size_t n) { return static_cast<T*>(pool_->allocate(n * sizeof(T))); }
  void deallocate(T* p, size_t n) { pool_->deallocate(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const CommPoolAllocator<U>& other) const {
    return pool_ == other.pool_;
  }

  std::shared_ptr<CommBlockPool> pool_;
};
}  // namespace

CommPtr Kernel::make_comm(Actor* for_actor) {
  const size_t shard = for_actor != nullptr ? static_cast<size_t>(for_actor->shard_) : 0;
  return std::allocate_shared<Comm>(CommPoolAllocator<Comm>(comm_pools_[shard]));
}

// -- actor slot arena ----------------------------------------------------------

struct Kernel::ActorChunk {
  alignas(Actor) unsigned char raw[sizeof(Actor) * kChunkSize];
};

Actor* Kernel::slot(std::uint32_t s) const {
  auto* chunk = const_cast<ActorChunk*>(chunks_[s >> kChunkShift].get());
  return std::launder(reinterpret_cast<Actor*>(chunk->raw + sizeof(Actor) * (s & (kChunkSize - 1))));
}

Actor* Kernel::allocate_actor(ActorId id, const std::string& name, int host, std::function<void()> body,
                              bool daemon, bool auto_restart) {
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = slot_high_++;
    if ((s >> kChunkShift) >= chunks_.size())
      chunks_.push_back(std::make_unique<ActorChunk>());
  }
  void* raw = chunks_[s >> kChunkShift]->raw + sizeof(Actor) * (s & (kChunkSize - 1));
  Actor* a = new (raw) Actor(id, name, host, std::move(body), daemon, auto_restart);
  a->slot_ = s;
  return a;
}

void Kernel::reap_actor(Actor* a) {
  assert(!a->in_ready_queue_ && "cannot reap an actor still queued");
  id_to_slot_.erase(a->id_);
  const std::uint32_t s = a->slot_;
  a->~Actor();  // the Context dtor returns the fiber stack to the pool
  free_slots_.push_back(s);
}

void Kernel::host_list_insert(Actor* a) {
  auto& head = host_live_head_[static_cast<size_t>(a->host_)];
  a->host_prev_ = -1;
  a->host_next_ = head;
  if (head != -1)
    slot(static_cast<std::uint32_t>(head))->host_prev_ = static_cast<std::int32_t>(a->slot_);
  head = static_cast<std::int32_t>(a->slot_);
}

void Kernel::host_list_remove(Actor* a) {
  if (a->host_prev_ != -1)
    slot(static_cast<std::uint32_t>(a->host_prev_))->host_next_ = a->host_next_;
  else
    host_live_head_[static_cast<size_t>(a->host_)] = a->host_next_;
  if (a->host_next_ != -1)
    slot(static_cast<std::uint32_t>(a->host_next_))->host_prev_ = a->host_prev_;
  a->host_prev_ = a->host_next_ = -1;
}

std::int32_t Kernel::shard_for_host(int host) const {
  if (ready_.size() <= 1)
    return 0;
  const auto& sm = engine_.platform().shard_map();
  if (static_cast<size_t>(host) < sm.host_shard.size()) {
    const std::int32_t s = sm.host_shard[static_cast<size_t>(host)];
    if (s >= 0 && static_cast<size_t>(s) < ready_.size())
      return s;
  }
  return 0;
}

// -- kernel lifecycle ----------------------------------------------------------

Kernel::Kernel(platform::Platform platform)
    : context_factory_(ContextFactory::from_config()), engine_(std::move(platform)) {
  engine_.set_resource_observer([this](bool is_host, int index, bool on) {
    if (is_host)
      host_changes_.push_back({index, on});
  });
  const auto& pf = engine_.platform();
  host_live_head_.assign(pf.host_count(), -1);
  const auto& sm = pf.shard_map();
  const bool sharded = sm.shard_count > 0 && sm.host_shard.size() == pf.host_count();
  ready_.resize(sharded ? static_cast<size_t>(sm.shard_count) : 1);
  batch_.resize(ready_.size());
  ran_.resize(ready_.size());
  comm_pools_.resize(ready_.size());
  for (auto& pool : comm_pools_)
    pool = std::make_shared<CommBlockPool>();
  lane_counters_.resize(static_cast<size_t>(std::max(1, engine_.thread_count())));
  parallel_actors_ =
      config::get(core::kCfgParallelActors) && engine_.thread_count() > 1 && ready_.size() > 1;
  g_active_kernel = this;
  xbt::log_set_clock_provider(&clock_provider);
  xbt::log_set_actor_provider(&actor_provider);
  SG_DEBUG(kernel, "kernel up: %s contexts, %zu run-queue shard(s), %s scheduling",
           context_factory_->backend_name(), ready_.size(),
           parallel_actors_ ? "parallel" : "serial");
}

Kernel::~Kernel() {
  teardown_all_actors();
  if (g_active_kernel == this)
    g_active_kernel = nullptr;
}

void Kernel::teardown_all_actors() {
  // Kill survivors in id order (deterministic exit-callback order). Work
  // from ids, not pointers: killing one actor can transitively end others
  // (exit callbacks), and ended actors are reaped eagerly.
  for (ActorId id : live_actors()) {
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end())
      continue;
    Actor* a = slot(it->second);
    if (a->alive())
      kill_internal(a, false);
  }
  // Reap the zombies those deaths left in the run queues.
  for (auto& q : ready_) {
    while (!q.empty()) {
      Actor* a = q.front();
      q.pop_front();
      a->in_ready_queue_ = false;
      if (!a->alive())
        reap_actor(a);
    }
  }
}

Actor* Kernel::self() { return g_current_actor; }
Kernel* Kernel::current() { return g_current_kernel != nullptr ? g_current_kernel : g_active_kernel; }

ActorId Kernel::spawn(const std::string& name, int host, std::function<void()> body, bool daemon,
                      bool auto_restart) {
  if (Actor* a = self(); a != nullptr && a->phase_quantum_) {
    // Spawning touches the slot arena, the id map and (via schedule) a ready
    // queue that may belong to another lane — serial work, all of it.
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kSpawn;
    rec.name = &name;
    rec.host = host;
    rec.spawn_body = &body;
    rec.spawn_daemon = daemon;
    rec.spawn_auto_restart = auto_restart;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    return rec.spawned;
  }
  if (host < 0 || static_cast<size_t>(host) >= engine_.platform().host_count())
    throw xbt::InvalidArgument("spawn: no such host");
  if (!engine_.host_present(host))
    throw xbt::HostFailureException(
        "spawn: host " + engine_.platform().host(host).name + " departed at t=" +
        xbt::format("%g", engine_.platform().host_departed_at(host)) +
        " (rejoin_host() restores it)");
  if (!engine_.host_is_on(host))
    throw xbt::HostFailureException("spawn: host " + engine_.platform().host(host).name + " is down");
  const ActorId id = next_actor_id_++;
  Actor* a = allocate_actor(id, name, host, std::move(body), daemon, auto_restart);
  a->shard_ = shard_for_host(host);
  a->context_ = context_factory_->create([this, a] {
    // Publish identity in the *body's* thread-local slots: thread-backend
    // actors run on their own OS thread, which resume_context (running on
    // the resuming lane) cannot reach. Fibers run on the resuming thread,
    // where resume_context already published the same values.
    g_current_actor = a;
    g_current_kernel = this;
    a->body_();
  });
  id_to_slot_.emplace(id, a->slot_);
  host_list_insert(a);
  ++live_count_;
  if (!a->daemon_)
    ++live_nondaemon_;
  ++stats_.actors_spawned;
  schedule(a);
  SG_DEBUG(kernel, "spawned actor %ld '%s' on %s", id, name.c_str(),
           engine_.platform().host(host).name.c_str());
  return id;
}

void Kernel::schedule(Actor* a) {
  if (a->state_ == Actor::State::kReady && !a->suspended_ && !a->in_ready_queue_) {
    ready_[static_cast<size_t>(a->shard_)].push_back(a);
    a->in_ready_queue_ = true;
  }
}

size_t Kernel::total_ready() const {
  size_t n = 0;
  for (const auto& q : ready_)
    n += q.size();
  return n;
}

bool Kernel::in_scheduling_phase() {
  return g_current_actor != nullptr && g_current_actor->phase_quantum_;
}

void Kernel::wake(Actor* a, WakeStatus status) {
  if (a->state_ != Actor::State::kBlocked)
    return;
  a->wake_status_ = status;
  a->state_ = Actor::State::kReady;
  ++a->timer_gen_;
  if (a->blocked_action_) {
    // Unhook before any straggler event for this action can observe a slot
    // that was meanwhile reaped and reused.
    a->blocked_action_->user_data = nullptr;
    a->blocked_action_.reset();
  }
  a->blocked_comm_.reset();
  ++lane_counters_[static_cast<size_t>(context_lane())].wakeups;
  schedule(a);
}

Kernel::Stats Kernel::stats() const {
  Stats out = stats_;
  for (const auto& lane : lane_counters_) {
    out.wakeups += lane.wakeups;
    out.context_switches += lane.context_switches;
  }
  return out;
}

WakeStatus Kernel::block_self(Actor* a, double timeout) {
  a->state_ = Actor::State::kBlocked;
  if (timeout >= 0)
    timers_.push(Timer{engine_.now() + timeout, a->id_, a->timer_gen_});
  a->context_->yield();
  return a->wake_status_;
}

void Kernel::resume_context(Actor* a) {
  // Re-entrant: an actor killing another resumes the victim from inside its
  // own quantum, so save/restore rather than set/clear.
  Actor* const prev_actor = g_current_actor;
  Kernel* const prev_kernel = g_current_kernel;
  g_current_actor = a;
  g_current_kernel = this;
  ++lane_counters_[static_cast<size_t>(context_lane())].context_switches;
  const bool finished = a->context_->resume_and_wait();
  g_current_actor = prev_actor;
  g_current_kernel = prev_kernel;
  if (finished)
    handle_actor_end(a);  // may reap `a` — do not touch it afterwards
}

void Kernel::handle_actor_end(Actor* a) {
  if (a->state_ == Actor::State::kDead)
    return;
  a->state_ = Actor::State::kDead;
  a->pending_ = nullptr;
  ++a->timer_gen_;
  if (a->blocked_action_) {
    a->blocked_action_->user_data = nullptr;
    a->blocked_action_.reset();
  }
  a->blocked_comm_.reset();
  host_list_remove(a);
  --live_count_;
  if (!a->daemon_)
    --live_nondaemon_;
  if (a->context_->failure()) {
    try {
      std::rethrow_exception(a->context_->failure());
    } catch (const std::exception& e) {
      SG_ERROR(kernel, "actor '%s' died of an uncaught exception: %s", a->name_.c_str(), e.what());
    } catch (...) {
      SG_ERROR(kernel, "actor '%s' died of an uncaught exception", a->name_.c_str());
    }
  }
  for (auto& cb : a->exit_callbacks_)
    cb(a->killed_by_failure_);
  if (a->auto_restart_ && a->killed_by_failure_)
    pending_restarts_.push_back({a->name_, a->host_, a->body_, a->daemon_});
  SG_DEBUG(kernel, "actor %ld '%s' terminated", a->id_, a->name_.c_str());
  // Recycle the slot right away unless the actor still sits in a run queue
  // (killed while ready); the scheduler sweep reaps it when popped.
  if (!a->in_ready_queue_)
    reap_actor(a);
}

double Kernel::run() {
  running_ = true;
  long idle_rounds = 0;
  // The scheduling phase fans out only when the flag is on AND there is
  // something to fan out over (multiple lanes, multiple shards).
  core::ShardWorkers* const workers =
      (parallel_actors_ && ready_.size() > 1) ? engine_.workers() : nullptr;
  while (true) {
    bool any_ran = false;
    while (total_ready() > 0)
      any_ran = run_scheduling_round(workers) || any_ran;

    if (live_nondaemon_ == 0)
      break;

    // Engine time advance: engine/threads parallelism lives entirely below
    // this call, and all actor-visible effects are committed serially above.
    const double timer_bound = timers_.empty() ? kInf : timers_.top().time;
    const auto events = engine_.run_until(timer_bound);
    for (const auto& ev : events)
      handle_action_event(ev);
    fire_due_timers();
    process_resource_changes();

    if (!events.empty() || any_ran || total_ready() > 0) {
      idle_rounds = 0;
      continue;
    }
    const double next = engine_.next_event_time();
    if (next == kInf && timers_.empty() && total_ready() == 0) {
      deadlocked_ = true;
      SG_WARN(kernel, "deadlock: %zu actor(s) blocked forever at t=%g; stopping the simulation",
              alive_actor_count(), engine_.now());
      for (ActorId id : live_actors()) {
        const Actor* a = slot(id_to_slot_.at(id));
        SG_WARN(kernel, "  blocked actor: '%s' on %s", a->name_.c_str(),
                engine_.platform().host(a->host_).name.c_str());
      }
      break;
    }
    if (++idle_rounds > 1000000) {
      deadlocked_ = true;
      SG_ERROR(kernel, "giving up: 1e6 idle scheduling rounds (runaway trace events?)");
      break;
    }
  }

  // Tear down survivors (daemons, deadlocked actors).
  teardown_all_actors();
  running_ = false;
  return engine_.now();
}

// -- round-based scheduling -----------------------------------------------------

bool Kernel::run_scheduling_round(core::ShardWorkers* workers) {
  const int shards = static_cast<int>(ready_.size());
  // Snapshot every shard's batch up front: a round runs exactly the actors
  // that were ready when it began, in both modes, so mid-round wakes always
  // land in the next round regardless of which shard they touch.
  for (int s = 0; s < shards; ++s) {
    batch_[static_cast<size_t>(s)] = ready_[static_cast<size_t>(s)].size();
    ran_[static_cast<size_t>(s)].clear();
  }

  // Scheduling phase: user code runs up to its next simcall (see the
  // execution-model notes in kernel.hpp). Lane i drains shards ≡ i (mod
  // lanes) — the same ShardWorkers mapping, pool, and generation barrier as
  // the engine's solve/advance phases.
  if (workers != nullptr) {
    const int lanes = engine_.thread_count();
    workers->run(shards, [this, lanes](int s) { run_shard_batch(s, lanes); });
    set_context_lane(0);  // back to the maestro's lane for the serial phases
  } else {
    for (int s = 0; s < shards; ++s)
      run_shard_batch(s, 1);
  }

  // Serial epilogue: commit every quantum in fixed shard order, batch order
  // within a shard. All engine actions, timers, wakes, spawns, kills, and
  // reaps happen here, so their order — and thus the event log — does not
  // depend on lane interleaving.
  bool any_ran = false;
  for (int s = 0; s < shards; ++s) {
    for (RanActor& r : ran_[static_cast<size_t>(s)]) {
      if (!r.zombie)
        any_ran = true;
      commit_ran(r);
      process_resource_changes();
    }
    ran_[static_cast<size_t>(s)].clear();  // drop CommPtr references promptly
  }
  return any_ran;
}

void Kernel::run_shard_batch(int shard, int lanes) {
  set_context_lane(lanes > 1 ? shard % lanes : 0);
  auto& q = ready_[static_cast<size_t>(shard)];
  auto& ran = ran_[static_cast<size_t>(shard)];
  for (size_t n = batch_[static_cast<size_t>(shard)]; n > 0; --n) {
    Actor* a = q.front();
    q.pop_front();
    a->in_ready_queue_ = false;
    if (!a->alive()) {
      // Killed while queued: reaping touches the shared arena, so defer it
      // to the epilogue (deterministic zombie reaping).
      RanActor r;
      r.actor = a;
      r.id = a->id_;
      r.zombie = true;
      ran.push_back(std::move(r));
      continue;
    }
    if (a->state_ != Actor::State::kReady || a->suspended_)
      continue;
    RanActor r;
    r.actor = a;
    r.id = a->id_;
    a->pending_ = nullptr;
    a->phase_quantum_ = true;
    a->phase_starts_ = &r.started;
    // Resume on this lane. Not resume_context(): a body that finishes here
    // must have its end handled by the epilogue, not the lane.
    Actor* const prev_actor = g_current_actor;
    Kernel* const prev_kernel = g_current_kernel;
    g_current_actor = a;
    g_current_kernel = this;
    ++lane_counters_[static_cast<size_t>(context_lane())].context_switches;
    r.finished = a->context_->resume_and_wait();
    g_current_actor = prev_actor;
    g_current_kernel = prev_kernel;
    a->phase_quantum_ = false;
    a->phase_starts_ = nullptr;  // r.started moves below; never read parked
    r.rec = r.finished ? nullptr : a->pending_;
    assert((r.finished || r.rec != nullptr) && "a quantum must end in a simcall or termination");
    ran.push_back(std::move(r));
  }
}

void Kernel::record_and_park(Actor* a, PendingSimcall& rec) {
  a->pending_ = &rec;
  a->state_ = Actor::State::kBlocked;
  a->context_->yield();
  // Woken by the epilogue: the record was committed (results valid), or the
  // actor was resumed with a wake status after blocking.
}

void Kernel::serial_resume(Actor* a) {
  a->state_ = Actor::State::kReady;
  resume_context(a);
}

void Kernel::arm_timeout(Actor* a, double timeout) {
  if (timeout >= 0)
    timers_.push(Timer{engine_.now() + timeout, a->id_, a->timer_gen_});
}

void Kernel::commit_comm_wait(Actor* a, PendingSimcall& rec, const CommPtr& comm) {
  if (comm->state == Comm::State::kFinished) {
    // Already resolved: requeue the actor with the comm's outcome. (Both
    // modes take this same path, so the schedules agree by construction.)
    wake(a, comm->result);
    return;
  }
  if (comm->sender_id == a->id_)
    comm->sender_waiting = true;
  else
    comm->receiver_waiting = true;
  a->blocked_comm_ = comm;
  arm_timeout(a, rec.timeout);
}

void Kernel::commit_ran(RanActor& r) {
  if (r.zombie) {
    reap_actor(r.actor);
    return;
  }
  Actor* a = r.actor;
  // Replay the quantum's inline-matched comm starts first: in program order
  // they happened before whatever the actor last recorded — and they must
  // replay even if the actor was killed meanwhile, or the matched peer would
  // be stranded on a comm that never starts. A comm detached (finished) by
  // such a kill is skipped via the state guard.
  for (CommPtr& c : r.started)
    if (c->state == Comm::State::kMatched)
      start_comm(c);
  r.started.clear();

  // Identity guard: an earlier commit in this same epilogue may have killed
  // the actor — and its slot may already host a respawned successor.
  auto it = id_to_slot_.find(r.id);
  if (it == id_to_slot_.end() || slot(it->second) != a)
    return;

  if (r.finished) {
    if (a->alive())
      handle_actor_end(a);
    return;
  }
  if (!a->alive() || a->pending_ != r.rec)
    return;  // killed while parked earlier in this epilogue; already unwound
  PendingSimcall* rec = r.rec;
  a->pending_ = nullptr;

  switch (rec->kind) {
    case PendingSimcall::Kind::kYield:
      a->state_ = Actor::State::kReady;
      schedule(a);
      break;

    case PendingSimcall::Kind::kExec:
    case PendingSimcall::Kind::kPtask:
    case PendingSimcall::Kind::kSleep:
      try {
        core::ActionPtr action;
        if (rec->kind == PendingSimcall::Kind::kExec)
          action = engine_.exec_start(a->host_, rec->flops, rec->priority, a->name_ + ":exec");
        else if (rec->kind == PendingSimcall::Kind::kPtask)
          action = engine_.ptask_start(*rec->ptask_hosts, *rec->ptask_flops, *rec->ptask_bytes,
                                       a->name_ + ":ptask");
        else
          action = engine_.sleep_start(a->host_, rec->duration, a->name_ + ":sleep");
        action->user_data = a;
        if (a->suspended_)
          action->suspend();  // suspended while parked: start the work paused
        a->blocked_action_ = std::move(action);
      } catch (...) {
        // Surface creation failures (host down, bad arguments) inside the
        // actor, as the inline path would have.
        rec->error = std::current_exception();
        wake(a, WakeStatus::kOk);
      }
      break;

    case PendingSimcall::Kind::kSendWait: {
      CommPtr comm = send_async_impl(a, rec->mailbox, rec->payload, rec->bytes, rec->rate);
      rec->comm = comm;
      commit_comm_wait(a, *rec, comm);
      break;
    }
    case PendingSimcall::Kind::kRecvWait: {
      CommPtr comm = recv_async_impl(a, rec->mailbox);
      rec->comm = comm;
      commit_comm_wait(a, *rec, comm);
      break;
    }
    case PendingSimcall::Kind::kCommWait:
      commit_comm_wait(a, *rec, rec->comm);
      break;

    case PendingSimcall::Kind::kSendAsync: {
      CommPtr comm = send_async_impl(a, rec->mailbox, rec->payload, rec->bytes, rec->rate);
      comm->detached = rec->detached;
      rec->comm = comm;
      serial_resume(a);
      break;
    }
    case PendingSimcall::Kind::kRecvAsync:
      rec->comm = recv_async_impl(a, rec->mailbox);
      serial_resume(a);
      break;

    case PendingSimcall::Kind::kCommTest:
      rec->flag_result = rec->comm->state == Comm::State::kFinished;
      serial_resume(a);
      break;
    case PendingSimcall::Kind::kCommProbe:
      rec->flag_result =
          rec->mailbox != kNoMailbox && !mailbox_ref(rec->mailbox).queued_sends.empty();
      serial_resume(a);
      break;

    case PendingSimcall::Kind::kInternMailbox:
      rec->interned = intern_mailbox(*rec->name, a->shard_);
      serial_resume(a);
      break;

    case PendingSimcall::Kind::kSpawn:
      try {
        rec->spawned = spawn(*rec->name, rec->host, std::move(*rec->spawn_body),
                             rec->spawn_daemon, rec->spawn_auto_restart);
      } catch (...) {
        rec->error = std::current_exception();
      }
      serial_resume(a);
      break;

    case PendingSimcall::Kind::kKill: {
      Actor* victim = actor(rec->target);
      if (victim != nullptr && victim->alive())
        kill_internal(victim, false);
      // The victim's exit callbacks may have killed the caller in turn.
      if (a->alive())
        serial_resume(a);
      break;
    }

    case PendingSimcall::Kind::kSuspendSelf:
      // Like the inline self-suspend: runnable again the moment someone
      // resume()s it; stays parked until then.
      a->suspended_ = true;
      a->state_ = Actor::State::kReady;
      break;
    case PendingSimcall::Kind::kSuspendOther:
      suspend(rec->target);
      serial_resume(a);
      break;
    case PendingSimcall::Kind::kResume:
      resume(rec->target);
      serial_resume(a);
      break;

    case PendingSimcall::Kind::kHostState:
      try {
        engine_.set_host_state(rec->host, rec->host_on);
      } catch (...) {
        rec->error = std::current_exception();
      }
      // Resource changes are processed when this quantum fully ends (after
      // the serial continuation blocks), matching the inline ordering.
      serial_resume(a);
      break;

    case PendingSimcall::Kind::kLeaveHost:
      try {
        engine_.leave_host(rec->host);
      } catch (...) {
        rec->error = std::current_exception();
      }
      serial_resume(a);
      break;
    case PendingSimcall::Kind::kRejoinHost:
      try {
        engine_.rejoin_host(rec->host);
      } catch (...) {
        rec->error = std::current_exception();
      }
      serial_resume(a);
      break;

    case PendingSimcall::Kind::kNone:
      assert(false && "parked without a record");
      break;
  }
}

// -- simcalls ---------------------------------------------------------------

void Kernel::execute(double flops, double priority) {
  Actor* a = self();
  assert(a != nullptr && "execute() must be called from an actor");
  if (a->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kExec;
    rec.flops = flops;
    rec.priority = priority;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    check_status(a->wake_status_);
    return;
  }
  auto action = engine_.exec_start(a->host_, flops, priority, a->name_ + ":exec");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::execute_parallel(const std::vector<int>& hosts, const std::vector<double>& flops,
                              const std::vector<std::vector<double>>& bytes) {
  Actor* a = self();
  assert(a != nullptr && "execute_parallel() must be called from an actor");
  if (a->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kPtask;
    rec.ptask_hosts = &hosts;
    rec.ptask_flops = &flops;
    rec.ptask_bytes = &bytes;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    check_status(a->wake_status_);
    return;
  }
  auto action = engine_.ptask_start(hosts, flops, bytes, a->name_ + ":ptask");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::sleep_for(double duration) {
  Actor* a = self();
  assert(a != nullptr && "sleep_for() must be called from an actor");
  if (duration <= 0) {
    yield_now();
    return;
  }
  if (a->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kSleep;
    rec.duration = duration;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    check_status(a->wake_status_);
    return;
  }
  auto action = engine_.sleep_start(a->host_, duration, a->name_ + ":sleep");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::yield_now() {
  Actor* a = self();
  assert(a != nullptr);
  if (a->phase_quantum_) {
    // The requeue touches the shard's own deque, but the epilogue does it
    // instead so the ready order interleaves identically in both modes.
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kYield;
    record_and_park(a, rec);
    return;
  }
  a->state_ = Actor::State::kReady;
  schedule(a);
  a->context_->yield();
}

void Kernel::exit_self() {
  assert(self() != nullptr);
  throw ForcedExit{};
}

// -- mailboxes & communications -------------------------------------------------

MailboxId Kernel::mailbox_by_name(const std::string& name) {
  Actor* a = self();
  if (a != nullptr && a->phase_quantum_) {
    // The id map is only mutated serially, so phase-time lookups are
    // race-free; a miss defers the insertion to the epilogue.
    auto it = mailbox_ids_.find(name);
    if (it != mailbox_ids_.end())
      return it->second;
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kInternMailbox;
    rec.name = &name;
    record_and_park(a, rec);
    return rec.interned;
  }
  return intern_mailbox(name, a != nullptr ? a->shard_ : 0);
}

MailboxId Kernel::intern_mailbox(const std::string& name, std::int32_t home) {
  auto [it, inserted] = mailbox_ids_.try_emplace(name, MailboxId{0});
  if (inserted) {
    it->second = static_cast<MailboxId>(mailboxes_.size());
    mailboxes_.emplace_back();
    mailboxes_.back().home = home;
    mailbox_names_.push_back(name);
  }
  return it->second;
}

CommPtr Kernel::send_async(MailboxId mb, void* payload, double bytes, double rate) {
  Actor* a = self();
  assert(a != nullptr && "send must be called from an actor");
  if (a->phase_quantum_ && mailbox_ref(mb).home != a->shard_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kSendAsync;
    rec.mailbox = mb;
    rec.payload = payload;
    rec.bytes = bytes;
    rec.rate = rate;
    record_and_park(a, rec);
    return rec.comm;
  }
  return send_async_impl(a, mb, payload, bytes, rate);
}

CommPtr Kernel::send_async_impl(Actor* a, MailboxId mb, void* payload, double bytes, double rate) {
  Mailbox& box = mailbox_ref(mb);
  if (!box.queued_recvs.empty()) {
    CommPtr comm = box.queued_recvs.front();
    box.queued_recvs.pop_front();
    comm->sender = a;
    comm->sender_id = a->id_;
    comm->src_host = a->host_;
    comm->payload = payload;
    comm->bytes = bytes;
    comm->rate = rate;
    if (a->phase_quantum_) {
      // Lanes never touch the engine: park the match until the maestro
      // replays this shard's pending starts (lists-local rule, kernel.hpp).
      comm->state = Comm::State::kMatched;
      a->phase_starts_->push_back(comm);
    } else {
      start_comm(comm);
    }
    return comm;
  }
  CommPtr comm = make_comm(a);
  comm->mailbox = mb;
  comm->state = Comm::State::kQueuedSend;
  comm->sender = a;
  comm->sender_id = a->id_;
  comm->src_host = a->host_;
  comm->payload = payload;
  comm->bytes = bytes;
  comm->rate = rate;
  box.queued_sends.push_back(comm);
  return comm;
}

CommPtr Kernel::recv_async(MailboxId mb) {
  Actor* a = self();
  assert(a != nullptr && "recv must be called from an actor");
  if (a->phase_quantum_ && mailbox_ref(mb).home != a->shard_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kRecvAsync;
    rec.mailbox = mb;
    record_and_park(a, rec);
    return rec.comm;
  }
  return recv_async_impl(a, mb);
}

CommPtr Kernel::recv_async_impl(Actor* a, MailboxId mb) {
  Mailbox& box = mailbox_ref(mb);
  if (!box.queued_sends.empty()) {
    CommPtr comm = box.queued_sends.front();
    box.queued_sends.pop_front();
    comm->receiver = a;
    comm->receiver_id = a->id_;
    comm->dst_host = a->host_;
    if (a->phase_quantum_) {
      comm->state = Comm::State::kMatched;
      a->phase_starts_->push_back(comm);
    } else {
      start_comm(comm);
    }
    return comm;
  }
  CommPtr comm = make_comm(a);
  comm->mailbox = mb;
  comm->state = Comm::State::kQueuedRecv;
  comm->receiver = a;
  comm->receiver_id = a->id_;
  comm->dst_host = a->host_;
  box.queued_recvs.push_back(comm);
  return comm;
}

void Kernel::start_comm(const CommPtr& comm) {
  comm->state = Comm::State::kStarted;
  // By-value host ids: a detached sender may be long dead by the time its
  // queued comm finds a receiver.
  comm->action = engine_.comm_start(comm->src_host, comm->dst_host, comm->bytes, comm->rate);
  inflight_.emplace(comm->action.get(), comm);
}

void Kernel::finish_comm(const CommPtr& comm, WakeStatus result) {
  comm->state = Comm::State::kFinished;
  comm->result = result;
  // Identity guards: wake each party only while it is still blocked on this
  // very communication (a straggler event must never wake an actor that has
  // meanwhile blocked on something else). A waiting party is, by the
  // endpoint lifetime invariant (comm.hpp), necessarily alive.
  if (comm->receiver != nullptr && comm->receiver_waiting && comm->receiver->blocked_comm_ == comm)
    wake(comm->receiver, result);
  if (comm->sender != nullptr && comm->sender_waiting && comm->sender->blocked_comm_ == comm)
    wake(comm->sender, result);
}

void* Kernel::comm_wait(const CommPtr& comm, double timeout) {
  Actor* a = self();
  assert(a != nullptr);
  if (a->phase_quantum_) {
    // Even a home-shard comm defers the wait: its state can be flipped by the
    // serial epilogue only, and both modes must park at the same point.
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kCommWait;
    rec.comm = comm;
    rec.timeout = timeout;
    record_and_park(a, rec);
    if (comm->sender_id == a->id_)
      comm->sender_waiting = false;
    else
      comm->receiver_waiting = false;
    check_status(a->wake_status_);
    return comm->payload;
  }
  WakeStatus st;
  if (comm->state == Comm::State::kFinished) {
    st = comm->result;
  } else {
    const bool is_sender = comm->sender_id == a->id_;
    if (is_sender)
      comm->sender_waiting = true;
    else
      comm->receiver_waiting = true;
    a->blocked_comm_ = comm;
    st = block_self(a, timeout);
    if (is_sender)
      comm->sender_waiting = false;
    else
      comm->receiver_waiting = false;
  }
  check_status(st);
  return comm->payload;
}

void Kernel::send(MailboxId mb, void* payload, double bytes, double timeout, double rate) {
  Actor* a = self();
  assert(a != nullptr && "send must be called from an actor");
  if (a->phase_quantum_ && mailbox_ref(mb).home != a->shard_) {
    // Fused enqueue+wait: one park instead of an async record followed by a
    // second park in comm_wait.
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kSendWait;
    rec.mailbox = mb;
    rec.payload = payload;
    rec.bytes = bytes;
    rec.rate = rate;
    rec.timeout = timeout;
    record_and_park(a, rec);
    if (rec.comm)
      rec.comm->sender_waiting = false;
    check_status(a->wake_status_);
    return;
  }
  comm_wait(send_async(mb, payload, bytes, rate), timeout);
}

void Kernel::send_detached(MailboxId mb, void* payload, double bytes, double rate) {
  Actor* a = self();
  assert(a != nullptr && "send_detached must be called from an actor");
  if (a->phase_quantum_ && mailbox_ref(mb).home != a->shard_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kSendAsync;
    rec.mailbox = mb;
    rec.payload = payload;
    rec.bytes = bytes;
    rec.rate = rate;
    rec.detached = true;
    record_and_park(a, rec);
    return;
  }
  CommPtr comm = send_async_impl(a, mb, payload, bytes, rate);
  comm->detached = true;
}

void* Kernel::recv(MailboxId mb, double timeout, ActorId* source) {
  Actor* a = self();
  assert(a != nullptr && "recv must be called from an actor");
  if (a->phase_quantum_ && mailbox_ref(mb).home != a->shard_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kRecvWait;
    rec.mailbox = mb;
    rec.timeout = timeout;
    record_and_park(a, rec);
    if (rec.comm)
      rec.comm->receiver_waiting = false;
    check_status(a->wake_status_);
    if (source != nullptr)
      *source = rec.comm->sender_id;
    return rec.comm->payload;
  }
  CommPtr comm = recv_async(mb);
  void* payload = comm_wait(comm, timeout);
  if (source != nullptr)
    *source = comm->sender_id;
  return payload;
}

bool Kernel::comm_waiting(MailboxId mb) {
  Actor* a = self();
  if (a != nullptr && a->phase_quantum_ && mailbox_ref(mb).home != a->shard_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kCommProbe;
    rec.mailbox = mb;
    record_and_park(a, rec);
    return rec.flag_result;
  }
  return !mailboxes_[static_cast<size_t>(mb)].queued_sends.empty();
}

bool Kernel::comm_waiting(const std::string& mb) {
  // Probe without interning: an unknown name trivially has nothing queued.
  // The id map only mutates serially, so the phase-time find is race-free.
  auto it = mailbox_ids_.find(mb);
  return it != mailbox_ids_.end() && comm_waiting(it->second);
}

bool Kernel::comm_test(const CommPtr& comm) {
  Actor* a = self();
  if (a != nullptr && a->phase_quantum_ &&
      (comm->mailbox == kNoMailbox || mailbox_ref(comm->mailbox).home != a->shard_)) {
    // A foreign-shard comm may be getting matched by its home lane right
    // now; only the serial epilogue can read its state safely.
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kCommTest;
    rec.comm = comm;
    record_and_park(a, rec);
    return rec.flag_result;
  }
  return comm->state == Comm::State::kFinished;
}

// -- event handling -----------------------------------------------------------

void Kernel::handle_action_event(const core::ActionEvent& ev) {
  const core::Action* act = ev.action.get();
  switch (act->kind()) {
    case core::ActionKind::kExec:
    case core::ActionKind::kSleep:
    case core::ActionKind::kPtask: {
      Actor* a = static_cast<Actor*>(act->user_data);
      // Identity guard: only wake the actor while it still waits on this
      // exact action (stale cancel events must not leak a spurious kOk).
      // user_data is nulled whenever an actor detaches from an action, so a
      // straggler event can never reach a reaped (and possibly reused) slot.
      if (a != nullptr && a->blocked_action_.get() == act)
        wake(a, ev.failed ? WakeStatus::kHostFailure : WakeStatus::kOk);
      break;
    }
    case core::ActionKind::kComm: {
      auto it = inflight_.find(act);
      if (it == inflight_.end())
        return;
      CommPtr comm = it->second;
      inflight_.erase(it);
      if (comm->state == Comm::State::kFinished)
        return;  // already resolved by a timeout or a kill
      finish_comm(comm, ev.failed ? WakeStatus::kNetworkFailure : WakeStatus::kOk);
      break;
    }
  }
}

void Kernel::fire_due_timers() {
  while (!timers_.empty() && timers_.top().time <= engine_.now() + 1e-12) {
    const Timer t = timers_.top();
    timers_.pop();
    auto it = id_to_slot_.find(t.actor);
    if (it == id_to_slot_.end())
      continue;  // actor reaped
    Actor* a = slot(it->second);
    if (a->state_ != Actor::State::kBlocked || t.gen != a->timer_gen_)
      continue;  // stale timer
    if (a->blocked_comm_ != nullptr) {
      CommPtr comm = a->blocked_comm_;
      if (comm->state == Comm::State::kQueuedSend || comm->state == Comm::State::kQueuedRecv) {
        remove_from_mailbox(comm);
        comm->state = Comm::State::kFinished;
        comm->result = WakeStatus::kTimeout;
        wake(a, WakeStatus::kTimeout);
      } else if (comm->state == Comm::State::kStarted) {
        comm->state = Comm::State::kFinished;
        comm->result = WakeStatus::kCanceled;
        const bool a_is_sender = comm->sender_id == a->id_;
        Actor* peer = a_is_sender ? comm->receiver : comm->sender;
        wake(a, WakeStatus::kTimeout);
        if (peer != nullptr && (a_is_sender ? comm->receiver_waiting : comm->sender_waiting))
          wake(peer, WakeStatus::kNetworkFailure);
        if (comm->action)
          comm->action->cancel();
      } else {
        wake(a, WakeStatus::kTimeout);
      }
    } else if (a->blocked_action_ != nullptr) {
      auto action = a->blocked_action_;
      wake(a, WakeStatus::kTimeout);
      action->cancel();
    } else {
      wake(a, WakeStatus::kTimeout);
    }
  }
}

void Kernel::remove_from_mailbox(const CommPtr& comm) {
  if (comm->mailbox == kNoMailbox)
    return;
  Mailbox& box = mailbox_ref(comm->mailbox);
  auto scrub = [&](std::deque<CommPtr>& q) {
    q.erase(std::remove(q.begin(), q.end(), comm), q.end());
  };
  scrub(box.queued_sends);
  scrub(box.queued_recvs);
}

void Kernel::detach_from_comm(Actor* a) {
  if (a->blocked_comm_ == nullptr)
    return;
  CommPtr comm = a->blocked_comm_;
  if (comm->state == Comm::State::kQueuedSend || comm->state == Comm::State::kQueuedRecv) {
    remove_from_mailbox(comm);
    comm->state = Comm::State::kFinished;
    comm->result = WakeStatus::kCanceled;
  } else if (comm->state == Comm::State::kMatched) {
    // Matched during the scheduling phase but its engine transfer was never
    // started (the party died before the pending start replayed). There is
    // no action to cancel; just fail the peer if it is already waiting.
    comm->state = Comm::State::kFinished;
    comm->result = WakeStatus::kCanceled;
    const bool a_is_sender = comm->sender_id == a->id_;
    Actor* peer = a_is_sender ? comm->receiver : comm->sender;
    if (peer != nullptr && (a_is_sender ? comm->receiver_waiting : comm->sender_waiting))
      wake(peer, WakeStatus::kNetworkFailure);
  } else if (comm->state == Comm::State::kStarted) {
    comm->state = Comm::State::kFinished;
    comm->result = WakeStatus::kCanceled;
    const bool a_is_sender = comm->sender_id == a->id_;
    Actor* peer = a_is_sender ? comm->receiver : comm->sender;
    if (peer != nullptr && (a_is_sender ? comm->receiver_waiting : comm->sender_waiting))
      wake(peer, WakeStatus::kNetworkFailure);
    if (comm->action)
      comm->action->cancel();
  }
  a->blocked_comm_.reset();
}

// -- actor management -----------------------------------------------------------

void Kernel::suspend(ActorId id) {
  if (Actor* caller = self(); caller != nullptr && caller->phase_quantum_) {
    PendingSimcall rec;
    if (id == caller->id_) {
      // Self-suspend parks right here; the commit flips the flag and leaves
      // the actor out of the queues until someone calls resume().
      rec.kind = PendingSimcall::Kind::kSuspendSelf;
      record_and_park(caller, rec);
    } else {
      // Reading the target's state from a lane would race with the lane that
      // owns it — the commit does the lookup and the flag work serially.
      rec.kind = PendingSimcall::Kind::kSuspendOther;
      rec.target = id;
      record_and_park(caller, rec);
    }
    return;
  }
  Actor* a = actor(id);
  if (a == nullptr || !a->alive() || a->suspended_)
    return;
  a->suspended_ = true;
  if (a->blocked_action_)
    a->blocked_action_->suspend();
  if (a->blocked_comm_ && a->blocked_comm_->state == Comm::State::kStarted && a->blocked_comm_->action)
    a->blocked_comm_->action->suspend();
  if (a == self()) {
    a->state_ = Actor::State::kReady;  // runnable again as soon as resumed
    a->context_->yield();
  }
}

void Kernel::resume(ActorId id) {
  if (Actor* caller = self(); caller != nullptr && caller->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kResume;
    rec.target = id;
    record_and_park(caller, rec);
    return;
  }
  Actor* a = actor(id);
  if (a == nullptr || !a->alive() || !a->suspended_)
    return;
  a->suspended_ = false;
  if (a->blocked_action_)
    a->blocked_action_->resume();
  if (a->blocked_comm_ && a->blocked_comm_->state == Comm::State::kStarted && a->blocked_comm_->action)
    a->blocked_comm_->action->resume();
  schedule(a);
}

void Kernel::kill(ActorId id) {
  if (Actor* caller = self(); caller != nullptr && caller->phase_quantum_) {
    if (id == caller->id_) {
      caller->killed_by_failure_ = false;
      throw ForcedExit{};
    }
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kKill;
    rec.target = id;
    record_and_park(caller, rec);
    return;
  }
  Actor* a = actor(id);
  if (a == nullptr || !a->alive())
    return;
  kill_internal(a, false);
}

void Kernel::kill_internal(Actor* a, bool by_failure) {
  if (!a->alive())
    return;
  a->killed_by_failure_ = by_failure;
  if (a == self())
    throw ForcedExit{};
  detach_from_comm(a);
  if (a->blocked_action_) {
    auto action = a->blocked_action_;
    action->user_data = nullptr;
    a->blocked_action_.reset();
    action->cancel();
  }
  a->pending_ = nullptr;
  if (a->context_->finished()) {
    // The body already ran to completion during a scheduling phase and its
    // end handling is waiting for the epilogue commit; resuming a finished
    // context would never come back. Finish it here instead.
    handle_actor_end(a);
    return;
  }
  a->context_->request_kill();
  // Resume until the body has unwound (RAII during the unwind may yield).
  // Track by id, not pointer: the final resume runs handle_actor_end, which
  // may reap the slot.
  const ActorId id = a->id_;
  while (true) {
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end())
      return;  // reaped
    Actor* cur = slot(it->second);
    if (!cur->alive())
      return;  // zombie awaiting its run-queue reap
    resume_context(cur);
  }
}

bool Kernel::is_alive(ActorId id) const {
  auto it = id_to_slot_.find(id);
  return it != id_to_slot_.end() && slot(it->second)->alive();
}

Actor* Kernel::actor(ActorId id) {
  auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? nullptr : slot(it->second);
}

std::vector<ActorId> Kernel::live_actors() const {
  std::vector<ActorId> out;
  out.reserve(live_count_);
  for (const auto& [id, s] : id_to_slot_)
    if (slot(s)->alive())
      out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

// -- platform control -------------------------------------------------------------

void Kernel::host_off(int host) {
  if (Actor* a = self(); a != nullptr && a->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kHostState;
    rec.host = host;
    rec.host_on = false;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    return;
  }
  engine_.set_host_state(host, false);
}

void Kernel::host_on(int host) {
  if (Actor* a = self(); a != nullptr && a->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kHostState;
    rec.host = host;
    rec.host_on = true;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    return;
  }
  engine_.set_host_state(host, true);
}

// -- platform control (dynamic membership) --------------------------------------

int Kernel::join_host(platform::ZoneId zone, const std::string& name, double speed_flops) {
  const int h = engine_.join_host(zone, name, speed_flops);
  while (host_live_head_.size() < engine_.platform().host_count())
    host_live_head_.push_back(-1);
  return h;
}

int Kernel::join_host(const platform::HostSpec& spec, platform::NodeId attach,
                      const platform::LinkSpec& uplink) {
  const int h = engine_.join_host(spec, attach, uplink);
  while (host_live_head_.size() < engine_.platform().host_count())
    host_live_head_.push_back(-1);
  return h;
}

void Kernel::leave_host(int host) {
  if (Actor* a = self(); a != nullptr && a->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kLeaveHost;
    rec.host = host;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    return;
  }
  engine_.leave_host(host);
}

void Kernel::rejoin_host(int host) {
  if (Actor* a = self(); a != nullptr && a->phase_quantum_) {
    PendingSimcall rec;
    rec.kind = PendingSimcall::Kind::kRejoinHost;
    rec.host = host;
    record_and_park(a, rec);
    if (rec.error)
      std::rethrow_exception(rec.error);
    return;
  }
  engine_.rejoin_host(host);
}

void Kernel::process_resource_changes() {
  while (!host_changes_.empty()) {
    auto [host, on] = host_changes_.front();
    host_changes_.erase(host_changes_.begin());
    if (!on) {
      // Kill every actor living on the failed host. The per-host live list
      // makes this O(residents); collected as ids (a victim's exit callback
      // may kill — and reap — another victim) and sorted for a deterministic
      // kill order.
      std::vector<ActorId> victims;
      for (std::int32_t s = host_live_head_[static_cast<size_t>(host)]; s != -1;
           s = slot(static_cast<std::uint32_t>(s))->host_next_)
        victims.push_back(slot(static_cast<std::uint32_t>(s))->id_);
      std::sort(victims.begin(), victims.end());
      for (ActorId id : victims) {
        Actor* a = actor(id);
        if (a == nullptr || !a->alive())
          continue;
        SG_VERB(kernel, "host %s failed: killing actor '%s'",
                engine_.platform().host(host).name.c_str(), a->name_.c_str());
        kill_internal(a, true);
      }
    } else {
      // Respawn auto-restart actors that died with this host.
      std::vector<RestartSpec> todo;
      auto it = pending_restarts_.begin();
      while (it != pending_restarts_.end()) {
        if (it->host == host) {
          todo.push_back(std::move(*it));
          it = pending_restarts_.erase(it);
        } else {
          ++it;
        }
      }
      for (const auto& spec : todo) {
        SG_VERB(kernel, "host %s is back: restarting actor '%s'",
                engine_.platform().host(host).name.c_str(), spec.name.c_str());
        spawn(spec.name, spec.host, spec.body, spec.daemon, /*auto_restart=*/true);
      }
    }
  }
}

}  // namespace sg::kernel
