#include "kernel/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <new>

#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(kernel, "simulation kernel (maestro)");

namespace sg::kernel {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// The actor currently executing and its kernel. Plain globals, not
// thread_local: under the fiber backend every actor shares the maestro's OS
// thread, and under the thread backend the semaphore handoff in the context
// makes the maestro's write visible to the actor's thread (publish before
// release, the actor only reads). Strict serialization (context.hpp
// invariant 1) rules out concurrent access.
Actor* g_current_actor = nullptr;
Kernel* g_current_kernel = nullptr;
Kernel* g_active_kernel = nullptr;

double clock_provider() { return g_active_kernel ? g_active_kernel->now() : -1.0; }
const char* actor_provider() { return g_current_actor ? g_current_actor->name().c_str() : nullptr; }

/// Translate a wake status into the exception the simcall should raise.
void check_status(WakeStatus st) {
  switch (st) {
    case WakeStatus::kOk:
      return;
    case WakeStatus::kTimeout:
      throw xbt::TimeoutException();
    case WakeStatus::kHostFailure:
      throw xbt::HostFailureException();
    case WakeStatus::kNetworkFailure:
      throw xbt::NetworkFailureException();
    case WakeStatus::kCanceled:
      throw xbt::CancelException();
  }
}
}  // namespace

Actor::Actor(ActorId id, std::string name, int host, std::function<void()> body, bool daemon,
             bool auto_restart)
    : id_(id), host_(host), daemon_(daemon), auto_restart_(auto_restart), name_(std::move(name)),
      body_(std::move(body)) {}

// -- comm control-block pool ---------------------------------------------------
// Same shape as the engine's ActionBlockPool: allocate_shared fuses the Comm
// and its shared_ptr control block into one allocation of a single size,
// which a LIFO free list then recycles — at millions of rendezvous per run
// the allocator drops off the profile and recycled blocks come back
// cache-warm.

struct CommBlockPool {
  static constexpr size_t kMaxFreeBlocks = 64 * 1024;
  std::vector<void*> free_blocks;
  size_t block_bytes = 0;  ///< learned from the first allocation

  ~CommBlockPool() {
    for (void* p : free_blocks)
      ::operator delete(p);
  }

  void* allocate(size_t bytes) {
    if (block_bytes == 0)
      block_bytes = bytes;
    if (bytes == block_bytes && !free_blocks.empty()) {
      void* p = free_blocks.back();
      free_blocks.pop_back();
      return p;
    }
    return ::operator new(bytes);
  }

  void deallocate(void* p, size_t bytes) {
    if (bytes == block_bytes && free_blocks.size() < kMaxFreeBlocks) {
      free_blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }
};

namespace {
template <typename T>
struct CommPoolAllocator {
  using value_type = T;

  explicit CommPoolAllocator(std::shared_ptr<CommBlockPool> pool) : pool_(std::move(pool)) {}
  template <typename U>
  CommPoolAllocator(const CommPoolAllocator<U>& other) : pool_(other.pool_) {}

  T* allocate(size_t n) { return static_cast<T*>(pool_->allocate(n * sizeof(T))); }
  void deallocate(T* p, size_t n) { pool_->deallocate(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const CommPoolAllocator<U>& other) const {
    return pool_ == other.pool_;
  }

  std::shared_ptr<CommBlockPool> pool_;
};
}  // namespace

CommPtr Kernel::make_comm() { return std::allocate_shared<Comm>(CommPoolAllocator<Comm>(comm_pool_)); }

// -- actor slot arena ----------------------------------------------------------

struct Kernel::ActorChunk {
  alignas(Actor) unsigned char raw[sizeof(Actor) * kChunkSize];
};

Actor* Kernel::slot(std::uint32_t s) const {
  auto* chunk = const_cast<ActorChunk*>(chunks_[s >> kChunkShift].get());
  return std::launder(reinterpret_cast<Actor*>(chunk->raw + sizeof(Actor) * (s & (kChunkSize - 1))));
}

Actor* Kernel::allocate_actor(ActorId id, const std::string& name, int host, std::function<void()> body,
                              bool daemon, bool auto_restart) {
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = slot_high_++;
    if ((s >> kChunkShift) >= chunks_.size())
      chunks_.push_back(std::make_unique<ActorChunk>());
  }
  void* raw = chunks_[s >> kChunkShift]->raw + sizeof(Actor) * (s & (kChunkSize - 1));
  Actor* a = new (raw) Actor(id, name, host, std::move(body), daemon, auto_restart);
  a->slot_ = s;
  return a;
}

void Kernel::reap_actor(Actor* a) {
  assert(!a->in_ready_queue_ && "cannot reap an actor still queued");
  id_to_slot_.erase(a->id_);
  const std::uint32_t s = a->slot_;
  a->~Actor();  // the Context dtor returns the fiber stack to the pool
  free_slots_.push_back(s);
}

void Kernel::host_list_insert(Actor* a) {
  auto& head = host_live_head_[static_cast<size_t>(a->host_)];
  a->host_prev_ = -1;
  a->host_next_ = head;
  if (head != -1)
    slot(static_cast<std::uint32_t>(head))->host_prev_ = static_cast<std::int32_t>(a->slot_);
  head = static_cast<std::int32_t>(a->slot_);
}

void Kernel::host_list_remove(Actor* a) {
  if (a->host_prev_ != -1)
    slot(static_cast<std::uint32_t>(a->host_prev_))->host_next_ = a->host_next_;
  else
    host_live_head_[static_cast<size_t>(a->host_)] = a->host_next_;
  if (a->host_next_ != -1)
    slot(static_cast<std::uint32_t>(a->host_next_))->host_prev_ = a->host_prev_;
  a->host_prev_ = a->host_next_ = -1;
}

std::int32_t Kernel::shard_for_host(int host) const {
  if (ready_.size() <= 1)
    return 0;
  const auto& sm = engine_.platform().shard_map();
  if (static_cast<size_t>(host) < sm.host_shard.size()) {
    const std::int32_t s = sm.host_shard[static_cast<size_t>(host)];
    if (s >= 0 && static_cast<size_t>(s) < ready_.size())
      return s;
  }
  return 0;
}

// -- kernel lifecycle ----------------------------------------------------------

Kernel::Kernel(platform::Platform platform)
    : context_factory_(ContextFactory::from_config()), engine_(std::move(platform)),
      comm_pool_(std::make_shared<CommBlockPool>()) {
  engine_.set_resource_observer([this](bool is_host, int index, bool on) {
    if (is_host)
      host_changes_.push_back({index, on});
  });
  const auto& pf = engine_.platform();
  host_live_head_.assign(pf.host_count(), -1);
  const auto& sm = pf.shard_map();
  const bool sharded = sm.shard_count > 0 && sm.host_shard.size() == pf.host_count();
  ready_.resize(sharded ? static_cast<size_t>(sm.shard_count) : 1);
  g_active_kernel = this;
  xbt::log_set_clock_provider(&clock_provider);
  xbt::log_set_actor_provider(&actor_provider);
  SG_DEBUG(kernel, "kernel up: %s contexts, %zu run-queue shard(s)",
           context_factory_->backend_name(), ready_.size());
}

Kernel::~Kernel() {
  teardown_all_actors();
  if (g_active_kernel == this)
    g_active_kernel = nullptr;
}

void Kernel::teardown_all_actors() {
  // Kill survivors in id order (deterministic exit-callback order). Work
  // from ids, not pointers: killing one actor can transitively end others
  // (exit callbacks), and ended actors are reaped eagerly.
  for (ActorId id : live_actors()) {
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end())
      continue;
    Actor* a = slot(it->second);
    if (a->alive())
      kill_internal(a, false);
  }
  // Reap the zombies those deaths left in the run queues.
  for (auto& q : ready_) {
    while (!q.empty()) {
      Actor* a = q.front();
      q.pop_front();
      --ready_count_;
      a->in_ready_queue_ = false;
      if (!a->alive())
        reap_actor(a);
    }
  }
}

Actor* Kernel::self() { return g_current_actor; }
Kernel* Kernel::current() { return g_current_kernel != nullptr ? g_current_kernel : g_active_kernel; }

ActorId Kernel::spawn(const std::string& name, int host, std::function<void()> body, bool daemon,
                      bool auto_restart) {
  if (host < 0 || static_cast<size_t>(host) >= engine_.platform().host_count())
    throw xbt::InvalidArgument("spawn: no such host");
  if (!engine_.host_is_on(host))
    throw xbt::HostFailureException("spawn: host " + engine_.platform().host(host).name + " is down");
  const ActorId id = next_actor_id_++;
  Actor* a = allocate_actor(id, name, host, std::move(body), daemon, auto_restart);
  a->shard_ = shard_for_host(host);
  a->context_ = context_factory_->create([a] { a->body_(); });
  id_to_slot_.emplace(id, a->slot_);
  host_list_insert(a);
  ++live_count_;
  if (!a->daemon_)
    ++live_nondaemon_;
  ++stats_.actors_spawned;
  schedule(a);
  SG_DEBUG(kernel, "spawned actor %ld '%s' on %s", id, name.c_str(),
           engine_.platform().host(host).name.c_str());
  return id;
}

void Kernel::schedule(Actor* a) {
  if (a->state_ == Actor::State::kReady && !a->suspended_ && !a->in_ready_queue_) {
    ready_[static_cast<size_t>(a->shard_)].push_back(a);
    ++ready_count_;
    a->in_ready_queue_ = true;
  }
}

void Kernel::wake(Actor* a, WakeStatus status) {
  if (a->state_ != Actor::State::kBlocked)
    return;
  a->wake_status_ = status;
  a->state_ = Actor::State::kReady;
  ++a->timer_gen_;
  if (a->blocked_action_) {
    // Unhook before any straggler event for this action can observe a slot
    // that was meanwhile reaped and reused.
    a->blocked_action_->user_data = nullptr;
    a->blocked_action_.reset();
  }
  a->blocked_comm_.reset();
  ++stats_.wakeups;
  schedule(a);
}

WakeStatus Kernel::block_self(Actor* a, double timeout) {
  a->state_ = Actor::State::kBlocked;
  if (timeout >= 0)
    timers_.push(Timer{engine_.now() + timeout, a->id_, a->timer_gen_});
  a->context_->yield();
  return a->wake_status_;
}

void Kernel::resume_context(Actor* a) {
  // Re-entrant: an actor killing another resumes the victim from inside its
  // own quantum, so save/restore rather than set/clear.
  Actor* const prev_actor = g_current_actor;
  Kernel* const prev_kernel = g_current_kernel;
  g_current_actor = a;
  g_current_kernel = this;
  ++stats_.context_switches;
  const bool finished = a->context_->resume_and_wait();
  g_current_actor = prev_actor;
  g_current_kernel = prev_kernel;
  if (finished)
    handle_actor_end(a);  // may reap `a` — do not touch it afterwards
}

void Kernel::handle_actor_end(Actor* a) {
  if (a->state_ == Actor::State::kDead)
    return;
  a->state_ = Actor::State::kDead;
  ++a->timer_gen_;
  if (a->blocked_action_) {
    a->blocked_action_->user_data = nullptr;
    a->blocked_action_.reset();
  }
  a->blocked_comm_.reset();
  host_list_remove(a);
  --live_count_;
  if (!a->daemon_)
    --live_nondaemon_;
  if (a->context_->failure()) {
    try {
      std::rethrow_exception(a->context_->failure());
    } catch (const std::exception& e) {
      SG_ERROR(kernel, "actor '%s' died of an uncaught exception: %s", a->name_.c_str(), e.what());
    } catch (...) {
      SG_ERROR(kernel, "actor '%s' died of an uncaught exception", a->name_.c_str());
    }
  }
  for (auto& cb : a->exit_callbacks_)
    cb(a->killed_by_failure_);
  if (a->auto_restart_ && a->killed_by_failure_)
    pending_restarts_.push_back({a->name_, a->host_, a->body_, a->daemon_});
  SG_DEBUG(kernel, "actor %ld '%s' terminated", a->id_, a->name_.c_str());
  // Recycle the slot right away unless the actor still sits in a run queue
  // (killed while ready); the scheduler sweep reaps it when popped.
  if (!a->in_ready_queue_)
    reap_actor(a);
}

double Kernel::run() {
  running_ = true;
  long idle_rounds = 0;
  while (true) {
    bool any_ran = false;
    while (ready_count_ > 0) {
      // One sweep over the shard queues. Each shard runs the batch of actors
      // that were ready when the sweep reached it — a zone's wakeups execute
      // back to back against that zone's solver shard, and the fixed shard
      // rotation keeps the global order deterministic. Actors readied during
      // a batch run in the next sweep. With a single shard (flat platforms)
      // this degenerates to the plain FIFO order.
      for (auto& q : ready_) {
        for (size_t batch = q.size(); batch > 0; --batch) {
          Actor* a = q.front();
          q.pop_front();
          --ready_count_;
          a->in_ready_queue_ = false;
          if (!a->alive()) {
            reap_actor(a);  // killed while queued
            continue;
          }
          if (a->state_ != Actor::State::kReady || a->suspended_)
            continue;
          any_ran = true;
          resume_context(a);
          process_resource_changes();
        }
      }
    }

    if (live_nondaemon_ == 0)
      break;

    // Actors are maestro-serialized (mailboxes and comm pools are shared
    // state); engine/threads parallelism lives entirely below this call.
    const double timer_bound = timers_.empty() ? kInf : timers_.top().time;
    const auto events = engine_.run_until(timer_bound);
    for (const auto& ev : events)
      handle_action_event(ev);
    fire_due_timers();
    process_resource_changes();

    if (!events.empty() || any_ran || ready_count_ > 0) {
      idle_rounds = 0;
      continue;
    }
    const double next = engine_.next_event_time();
    if (next == kInf && timers_.empty() && ready_count_ == 0) {
      deadlocked_ = true;
      SG_WARN(kernel, "deadlock: %zu actor(s) blocked forever at t=%g; stopping the simulation",
              alive_actor_count(), engine_.now());
      for (ActorId id : live_actors()) {
        const Actor* a = slot(id_to_slot_.at(id));
        SG_WARN(kernel, "  blocked actor: '%s' on %s", a->name_.c_str(),
                engine_.platform().host(a->host_).name.c_str());
      }
      break;
    }
    if (++idle_rounds > 1000000) {
      deadlocked_ = true;
      SG_ERROR(kernel, "giving up: 1e6 idle scheduling rounds (runaway trace events?)");
      break;
    }
  }

  // Tear down survivors (daemons, deadlocked actors).
  teardown_all_actors();
  running_ = false;
  return engine_.now();
}

// -- simcalls ---------------------------------------------------------------

void Kernel::execute(double flops, double priority) {
  Actor* a = self();
  assert(a != nullptr && "execute() must be called from an actor");
  auto action = engine_.exec_start(a->host_, flops, priority, a->name_ + ":exec");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::execute_parallel(const std::vector<int>& hosts, const std::vector<double>& flops,
                              const std::vector<std::vector<double>>& bytes) {
  Actor* a = self();
  assert(a != nullptr && "execute_parallel() must be called from an actor");
  auto action = engine_.ptask_start(hosts, flops, bytes, a->name_ + ":ptask");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::sleep_for(double duration) {
  Actor* a = self();
  assert(a != nullptr && "sleep_for() must be called from an actor");
  if (duration <= 0) {
    yield_now();
    return;
  }
  auto action = engine_.sleep_start(a->host_, duration, a->name_ + ":sleep");
  action->user_data = a;
  a->blocked_action_ = action;
  check_status(block_self(a, -1.0));
}

void Kernel::yield_now() {
  Actor* a = self();
  assert(a != nullptr);
  a->state_ = Actor::State::kReady;
  schedule(a);
  a->context_->yield();
}

void Kernel::exit_self() {
  assert(self() != nullptr);
  throw ForcedExit{};
}

// -- mailboxes & communications -------------------------------------------------

MailboxId Kernel::mailbox_by_name(const std::string& name) {
  auto [it, inserted] = mailbox_ids_.try_emplace(name, MailboxId{0});
  if (inserted) {
    it->second = static_cast<MailboxId>(mailboxes_.size());
    mailboxes_.emplace_back();
    mailbox_names_.push_back(name);
  }
  return it->second;
}

CommPtr Kernel::send_async(MailboxId mb, void* payload, double bytes, double rate) {
  Actor* a = self();
  assert(a != nullptr && "send must be called from an actor");
  Mailbox& box = mailbox_ref(mb);
  if (!box.queued_recvs.empty()) {
    CommPtr comm = box.queued_recvs.front();
    box.queued_recvs.pop_front();
    comm->sender = a;
    comm->sender_id = a->id_;
    comm->src_host = a->host_;
    comm->payload = payload;
    comm->bytes = bytes;
    comm->rate = rate;
    start_comm(comm);
    return comm;
  }
  CommPtr comm = make_comm();
  comm->mailbox = mb;
  comm->state = Comm::State::kQueuedSend;
  comm->sender = a;
  comm->sender_id = a->id_;
  comm->src_host = a->host_;
  comm->payload = payload;
  comm->bytes = bytes;
  comm->rate = rate;
  box.queued_sends.push_back(comm);
  return comm;
}

CommPtr Kernel::recv_async(MailboxId mb) {
  Actor* a = self();
  assert(a != nullptr && "recv must be called from an actor");
  Mailbox& box = mailbox_ref(mb);
  if (!box.queued_sends.empty()) {
    CommPtr comm = box.queued_sends.front();
    box.queued_sends.pop_front();
    comm->receiver = a;
    comm->receiver_id = a->id_;
    comm->dst_host = a->host_;
    start_comm(comm);
    return comm;
  }
  CommPtr comm = make_comm();
  comm->mailbox = mb;
  comm->state = Comm::State::kQueuedRecv;
  comm->receiver = a;
  comm->receiver_id = a->id_;
  comm->dst_host = a->host_;
  box.queued_recvs.push_back(comm);
  return comm;
}

void Kernel::start_comm(const CommPtr& comm) {
  comm->state = Comm::State::kStarted;
  // By-value host ids: a detached sender may be long dead by the time its
  // queued comm finds a receiver.
  comm->action = engine_.comm_start(comm->src_host, comm->dst_host, comm->bytes, comm->rate);
  inflight_.emplace(comm->action.get(), comm);
}

void Kernel::finish_comm(const CommPtr& comm, WakeStatus result) {
  comm->state = Comm::State::kFinished;
  comm->result = result;
  // Identity guards: wake each party only while it is still blocked on this
  // very communication (a straggler event must never wake an actor that has
  // meanwhile blocked on something else). A waiting party is, by the
  // endpoint lifetime invariant (comm.hpp), necessarily alive.
  if (comm->receiver != nullptr && comm->receiver_waiting && comm->receiver->blocked_comm_ == comm)
    wake(comm->receiver, result);
  if (comm->sender != nullptr && comm->sender_waiting && comm->sender->blocked_comm_ == comm)
    wake(comm->sender, result);
}

void* Kernel::comm_wait(const CommPtr& comm, double timeout) {
  Actor* a = self();
  assert(a != nullptr);
  WakeStatus st;
  if (comm->state == Comm::State::kFinished) {
    st = comm->result;
  } else {
    const bool is_sender = comm->sender_id == a->id_;
    if (is_sender)
      comm->sender_waiting = true;
    else
      comm->receiver_waiting = true;
    a->blocked_comm_ = comm;
    st = block_self(a, timeout);
    if (is_sender)
      comm->sender_waiting = false;
    else
      comm->receiver_waiting = false;
  }
  check_status(st);
  return comm->payload;
}

void Kernel::send(MailboxId mb, void* payload, double bytes, double timeout, double rate) {
  comm_wait(send_async(mb, payload, bytes, rate), timeout);
}

void Kernel::send_detached(MailboxId mb, void* payload, double bytes, double rate) {
  CommPtr comm = send_async(mb, payload, bytes, rate);
  comm->detached = true;
}

void* Kernel::recv(MailboxId mb, double timeout, ActorId* source) {
  CommPtr comm = recv_async(mb);
  void* payload = comm_wait(comm, timeout);
  if (source != nullptr)
    *source = comm->sender_id;
  return payload;
}

bool Kernel::comm_waiting(MailboxId mb) const {
  return !mailboxes_[static_cast<size_t>(mb)].queued_sends.empty();
}

bool Kernel::comm_waiting(const std::string& mb) const {
  // Probe without interning: an unknown name trivially has nothing queued.
  auto it = mailbox_ids_.find(mb);
  return it != mailbox_ids_.end() && comm_waiting(it->second);
}

// -- event handling -----------------------------------------------------------

void Kernel::handle_action_event(const core::ActionEvent& ev) {
  const core::Action* act = ev.action.get();
  switch (act->kind()) {
    case core::ActionKind::kExec:
    case core::ActionKind::kSleep:
    case core::ActionKind::kPtask: {
      Actor* a = static_cast<Actor*>(act->user_data);
      // Identity guard: only wake the actor while it still waits on this
      // exact action (stale cancel events must not leak a spurious kOk).
      // user_data is nulled whenever an actor detaches from an action, so a
      // straggler event can never reach a reaped (and possibly reused) slot.
      if (a != nullptr && a->blocked_action_.get() == act)
        wake(a, ev.failed ? WakeStatus::kHostFailure : WakeStatus::kOk);
      break;
    }
    case core::ActionKind::kComm: {
      auto it = inflight_.find(act);
      if (it == inflight_.end())
        return;
      CommPtr comm = it->second;
      inflight_.erase(it);
      if (comm->state == Comm::State::kFinished)
        return;  // already resolved by a timeout or a kill
      finish_comm(comm, ev.failed ? WakeStatus::kNetworkFailure : WakeStatus::kOk);
      break;
    }
  }
}

void Kernel::fire_due_timers() {
  while (!timers_.empty() && timers_.top().time <= engine_.now() + 1e-12) {
    const Timer t = timers_.top();
    timers_.pop();
    auto it = id_to_slot_.find(t.actor);
    if (it == id_to_slot_.end())
      continue;  // actor reaped
    Actor* a = slot(it->second);
    if (a->state_ != Actor::State::kBlocked || t.gen != a->timer_gen_)
      continue;  // stale timer
    if (a->blocked_comm_ != nullptr) {
      CommPtr comm = a->blocked_comm_;
      if (comm->state == Comm::State::kQueuedSend || comm->state == Comm::State::kQueuedRecv) {
        remove_from_mailbox(comm);
        comm->state = Comm::State::kFinished;
        comm->result = WakeStatus::kTimeout;
        wake(a, WakeStatus::kTimeout);
      } else if (comm->state == Comm::State::kStarted) {
        comm->state = Comm::State::kFinished;
        comm->result = WakeStatus::kCanceled;
        const bool a_is_sender = comm->sender_id == a->id_;
        Actor* peer = a_is_sender ? comm->receiver : comm->sender;
        wake(a, WakeStatus::kTimeout);
        if (peer != nullptr && (a_is_sender ? comm->receiver_waiting : comm->sender_waiting))
          wake(peer, WakeStatus::kNetworkFailure);
        if (comm->action)
          comm->action->cancel();
      } else {
        wake(a, WakeStatus::kTimeout);
      }
    } else if (a->blocked_action_ != nullptr) {
      auto action = a->blocked_action_;
      wake(a, WakeStatus::kTimeout);
      action->cancel();
    } else {
      wake(a, WakeStatus::kTimeout);
    }
  }
}

void Kernel::remove_from_mailbox(const CommPtr& comm) {
  if (comm->mailbox == kNoMailbox)
    return;
  Mailbox& box = mailbox_ref(comm->mailbox);
  auto scrub = [&](std::deque<CommPtr>& q) {
    q.erase(std::remove(q.begin(), q.end(), comm), q.end());
  };
  scrub(box.queued_sends);
  scrub(box.queued_recvs);
}

void Kernel::detach_from_comm(Actor* a) {
  if (a->blocked_comm_ == nullptr)
    return;
  CommPtr comm = a->blocked_comm_;
  if (comm->state == Comm::State::kQueuedSend || comm->state == Comm::State::kQueuedRecv) {
    remove_from_mailbox(comm);
    comm->state = Comm::State::kFinished;
    comm->result = WakeStatus::kCanceled;
  } else if (comm->state == Comm::State::kStarted) {
    comm->state = Comm::State::kFinished;
    comm->result = WakeStatus::kCanceled;
    const bool a_is_sender = comm->sender_id == a->id_;
    Actor* peer = a_is_sender ? comm->receiver : comm->sender;
    if (peer != nullptr && (a_is_sender ? comm->receiver_waiting : comm->sender_waiting))
      wake(peer, WakeStatus::kNetworkFailure);
    if (comm->action)
      comm->action->cancel();
  }
  a->blocked_comm_.reset();
}

// -- actor management -----------------------------------------------------------

void Kernel::suspend(ActorId id) {
  Actor* a = actor(id);
  if (a == nullptr || !a->alive() || a->suspended_)
    return;
  a->suspended_ = true;
  if (a->blocked_action_)
    a->blocked_action_->suspend();
  if (a->blocked_comm_ && a->blocked_comm_->state == Comm::State::kStarted && a->blocked_comm_->action)
    a->blocked_comm_->action->suspend();
  if (a == self()) {
    a->state_ = Actor::State::kReady;  // runnable again as soon as resumed
    a->context_->yield();
  }
}

void Kernel::resume(ActorId id) {
  Actor* a = actor(id);
  if (a == nullptr || !a->alive() || !a->suspended_)
    return;
  a->suspended_ = false;
  if (a->blocked_action_)
    a->blocked_action_->resume();
  if (a->blocked_comm_ && a->blocked_comm_->state == Comm::State::kStarted && a->blocked_comm_->action)
    a->blocked_comm_->action->resume();
  schedule(a);
}

void Kernel::kill(ActorId id) {
  Actor* a = actor(id);
  if (a == nullptr || !a->alive())
    return;
  kill_internal(a, false);
}

void Kernel::kill_internal(Actor* a, bool by_failure) {
  if (!a->alive())
    return;
  a->killed_by_failure_ = by_failure;
  if (a == self())
    throw ForcedExit{};
  detach_from_comm(a);
  if (a->blocked_action_) {
    auto action = a->blocked_action_;
    action->user_data = nullptr;
    a->blocked_action_.reset();
    action->cancel();
  }
  a->context_->request_kill();
  // Resume until the body has unwound (RAII during the unwind may yield).
  // Track by id, not pointer: the final resume runs handle_actor_end, which
  // may reap the slot.
  const ActorId id = a->id_;
  while (true) {
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end())
      return;  // reaped
    Actor* cur = slot(it->second);
    if (!cur->alive())
      return;  // zombie awaiting its run-queue reap
    resume_context(cur);
  }
}

bool Kernel::is_alive(ActorId id) const {
  auto it = id_to_slot_.find(id);
  return it != id_to_slot_.end() && slot(it->second)->alive();
}

Actor* Kernel::actor(ActorId id) {
  auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? nullptr : slot(it->second);
}

std::vector<ActorId> Kernel::live_actors() const {
  std::vector<ActorId> out;
  out.reserve(live_count_);
  for (const auto& [id, s] : id_to_slot_)
    if (slot(s)->alive())
      out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

// -- platform control -------------------------------------------------------------

void Kernel::host_off(int host) { engine_.set_host_state(host, false); }
void Kernel::host_on(int host) { engine_.set_host_state(host, true); }

void Kernel::process_resource_changes() {
  while (!host_changes_.empty()) {
    auto [host, on] = host_changes_.front();
    host_changes_.erase(host_changes_.begin());
    if (!on) {
      // Kill every actor living on the failed host. The per-host live list
      // makes this O(residents); collected as ids (a victim's exit callback
      // may kill — and reap — another victim) and sorted for a deterministic
      // kill order.
      std::vector<ActorId> victims;
      for (std::int32_t s = host_live_head_[static_cast<size_t>(host)]; s != -1;
           s = slot(static_cast<std::uint32_t>(s))->host_next_)
        victims.push_back(slot(static_cast<std::uint32_t>(s))->id_);
      std::sort(victims.begin(), victims.end());
      for (ActorId id : victims) {
        Actor* a = actor(id);
        if (a == nullptr || !a->alive())
          continue;
        SG_VERB(kernel, "host %s failed: killing actor '%s'",
                engine_.platform().host(host).name.c_str(), a->name_.c_str());
        kill_internal(a, true);
      }
    } else {
      // Respawn auto-restart actors that died with this host.
      std::vector<RestartSpec> todo;
      auto it = pending_restarts_.begin();
      while (it != pending_restarts_.end()) {
        if (it->host == host) {
          todo.push_back(std::move(*it));
          it = pending_restarts_.erase(it);
        } else {
          ++it;
        }
      }
      for (const auto& spec : todo) {
        SG_VERB(kernel, "host %s is back: restarting actor '%s'",
                engine_.platform().host(host).name.c_str(), spec.name.c_str());
        spawn(spec.name, spec.host, spec.body, spec.daemon, /*auto_restart=*/true);
      }
    }
  }
}

}  // namespace sg::kernel
