/// \file actor.hpp
/// Simulated processes ("processes can be created, suspended, resumed and
/// terminated dynamically" — the paper's MSG process model, shared by GRAS
/// and SMPI in simulation mode).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "kernel/context.hpp"

namespace sg::kernel {

using ActorId = long;

/// Why a blocked actor was woken up.
enum class WakeStatus {
  kOk,
  kTimeout,
  kHostFailure,
  kNetworkFailure,
  kCanceled,
};

struct Comm;
using CommPtr = std::shared_ptr<Comm>;

class Kernel;

/// One simulated process. All state is owned by the kernel; user code
/// interacts through Kernel's simcall methods and through the ids.
class Actor {
public:
  Actor(ActorId id, std::string name, int host, std::function<void()> body, bool daemon, bool auto_restart);

  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }
  int host() const { return host_; }
  bool daemon() const { return daemon_; }
  bool auto_restart() const { return auto_restart_; }

  enum class State {
    kReady,    ///< scheduled (or suspended-but-runnable)
    kBlocked,  ///< waiting in a simcall
    kDead,
  };
  State state() const { return state_; }
  bool suspended() const { return suspended_; }
  bool alive() const { return state_ != State::kDead; }

  /// Register a callback run (on the maestro) when the actor terminates.
  void on_exit(std::function<void(bool /*failed*/)> cb) { exit_callbacks_.push_back(std::move(cb)); }

  /// Arbitrary user slot (MSG attaches its process data here).
  void* user_data = nullptr;

private:
  friend class Kernel;

  ActorId id_;
  std::string name_;
  int host_;
  std::function<void()> body_;  ///< kept for auto-restart
  bool daemon_;
  bool auto_restart_;

  std::unique_ptr<Context> context_;
  State state_ = State::kReady;
  bool suspended_ = false;
  bool in_ready_queue_ = false;
  bool killed_by_failure_ = false;

  // What the actor is blocked on (at most one at a time).
  core::ActionPtr blocked_action_;
  CommPtr blocked_comm_;
  WakeStatus wake_status_ = WakeStatus::kOk;
  std::uint64_t timer_gen_ = 0;  ///< invalidates in-flight timeout timers

  std::vector<std::function<void(bool)>> exit_callbacks_;
};

}  // namespace sg::kernel
