/// \file actor.hpp
/// Simulated processes ("processes can be created, suspended, resumed and
/// terminated dynamically" — the paper's MSG process model, shared by GRAS
/// and SMPI in simulation mode).
///
/// Actors live in the kernel's chunked slot arena (kernel.hpp): creation and
/// death are O(1) slot pushes, dead actors' slots (and their fiber stacks)
/// are recycled, and the hot per-actor state below is packed so a parked
/// actor costs well under 200 bytes on top of its (lazily committed) stack
/// pages. Cross-actor bookkeeping — which actors live on a host, which are
/// ready per shard — is index-linked through the slot ids rather than held
/// in per-actor containers, like the PR 3 solver arena.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "kernel/context.hpp"

namespace sg::kernel {

using ActorId = long;

/// Interned mailbox name: a dense index into the kernel's mailbox table.
/// Kernel::mailbox_by_name() converts a name exactly once at the API
/// boundary; every queue/match/send afterwards is an array index.
using MailboxId = std::int32_t;
constexpr MailboxId kNoMailbox = -1;

/// Why a blocked actor was woken up.
enum class WakeStatus {
  kOk,
  kTimeout,
  kHostFailure,
  kNetworkFailure,
  kCanceled,
};

struct Comm;
using CommPtr = std::shared_ptr<Comm>;

class Kernel;

/// One simulated process. All state is owned by the kernel; user code
/// interacts through Kernel's simcall methods and through the ids.
class Actor {
public:
  Actor(ActorId id, std::string name, int host, std::function<void()> body, bool daemon, bool auto_restart);

  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }
  int host() const { return host_; }
  bool daemon() const { return daemon_; }
  bool auto_restart() const { return auto_restart_; }

  enum class State : std::uint8_t {
    kReady,    ///< scheduled (or suspended-but-runnable)
    kBlocked,  ///< waiting in a simcall
    kDead,
  };
  State state() const { return state_; }
  bool suspended() const { return suspended_; }
  bool alive() const { return state_ != State::kDead; }

  /// Register a callback run (on the maestro) when the actor terminates.
  void on_exit(std::function<void(bool /*failed*/)> cb) { exit_callbacks_.push_back(std::move(cb)); }

  /// Arbitrary user slot (MSG attaches its process data here).
  void* user_data = nullptr;

private:
  friend class Kernel;

  ActorId id_;
  std::int32_t host_;
  std::int32_t shard_ = 0;  ///< run-queue shard (from Platform::shard_map())

  // Intrusive membership in the per-host live list (slot indices, -1 = end):
  // host failure kills residents in O(residents), not O(all actors ever).
  std::int32_t host_prev_ = -1;
  std::int32_t host_next_ = -1;
  std::uint32_t slot_ = 0;  ///< own index in the kernel's actor arena

  State state_ = State::kReady;
  bool daemon_;
  bool auto_restart_;
  bool suspended_ = false;
  bool in_ready_queue_ = false;
  bool killed_by_failure_ = false;
  WakeStatus wake_status_ = WakeStatus::kOk;
  std::uint32_t timer_gen_ = 0;  ///< invalidates in-flight timeout timers

  std::string name_;
  std::function<void()> body_;  ///< kept for auto-restart
  std::unique_ptr<Context> context_;

  // What the actor is blocked on (at most one at a time).
  core::ActionPtr blocked_action_;
  CommPtr blocked_comm_;

  std::vector<std::function<void(bool)>> exit_callbacks_;
};

}  // namespace sg::kernel
