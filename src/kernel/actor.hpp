/// \file actor.hpp
/// Simulated processes ("processes can be created, suspended, resumed and
/// terminated dynamically" — the paper's MSG process model, shared by GRAS
/// and SMPI in simulation mode).
///
/// Actors live in the kernel's chunked slot arena (kernel.hpp): creation and
/// death are O(1) slot pushes, dead actors' slots (and their fiber stacks)
/// are recycled, and the hot per-actor state below is packed so a parked
/// actor costs well under 200 bytes on top of its (lazily committed) stack
/// pages. Cross-actor bookkeeping — which actors live on a host, which are
/// ready per shard — is index-linked through the slot ids rather than held
/// in per-actor containers, like the PR 3 solver arena.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "kernel/context.hpp"

namespace sg::kernel {

using ActorId = long;

/// Interned mailbox name: a dense index into the kernel's mailbox table.
/// Kernel::mailbox_by_name() converts a name exactly once at the API
/// boundary; every queue/match/send afterwards is an array index.
using MailboxId = std::int32_t;
constexpr MailboxId kNoMailbox = -1;

/// Why a blocked actor was woken up.
enum class WakeStatus {
  kOk,
  kTimeout,
  kHostFailure,
  kNetworkFailure,
  kCanceled,
};

struct Comm;
using CommPtr = std::shared_ptr<Comm>;

class Kernel;

/// A simcall recorded during a scheduling phase and committed by the maestro
/// in the serial epilogue (the deferred-simcall half of the lists-local rule;
/// see the execution-model notes in kernel.hpp). The record itself lives in
/// the simcall wrapper's stack frame: the actor parks right after filling it
/// in, so the frame — including any pointed-to arguments — stays stable until
/// the commit, and result fields written by the commit are read back by the
/// wrapper when the actor next runs.
struct PendingSimcall {
  enum class Kind : std::uint8_t {
    kNone,
    kYield,          ///< yield_now / sleep_for(<=0): requeue for the next round
    kExec,           ///< execute(flops, priority); blocks
    kPtask,          ///< execute_parallel(hosts, flops, bytes); blocks
    kSleep,          ///< sleep_for(duration > 0); blocks
    kSendWait,       ///< blocking send: async enqueue/match fused with the wait
    kRecvWait,       ///< blocking recv, same fusion
    kCommWait,       ///< comm_wait(comm, timeout) on an existing comm; blocks
    kSendAsync,      ///< cross-shard send_async / send_detached; resumes after
    kRecvAsync,      ///< cross-shard recv_async; resumes after
    kCommTest,       ///< comm_test(comm); resumes after
    kCommProbe,      ///< comm_waiting on a non-home mailbox; resumes after
    kInternMailbox,  ///< mailbox_by_name first use; resumes after
    kSpawn,          ///< spawn(...); resumes after
    kKill,           ///< kill(other); resumes after
    kSuspendSelf,    ///< suspend(self): parks until resumed by someone
    kSuspendOther,   ///< suspend(other); resumes after
    kResume,         ///< resume(other); resumes after
    kHostState,      ///< host_off / host_on; resumes after
    kLeaveHost,      ///< leave_host(host); resumes after
    kRejoinHost,     ///< rejoin_host(host); resumes after
  };

  Kind kind = Kind::kNone;

  // Arguments — only the fields relevant to `kind` are meaningful. Pointer
  // fields point into the parked wrapper's frame (stable, see above).
  double flops = 0;
  double priority = 1.0;
  double duration = 0;
  double bytes = 0;
  double rate = -1.0;
  double timeout = -1.0;
  MailboxId mailbox = kNoMailbox;
  void* payload = nullptr;
  bool detached = false;
  bool host_on = false;
  ActorId target = -1;
  int host = -1;
  CommPtr comm;  ///< kCommWait/kCommTest argument; kSendWait/... result
  const std::vector<int>* ptask_hosts = nullptr;
  const std::vector<double>* ptask_flops = nullptr;
  const std::vector<std::vector<double>>* ptask_bytes = nullptr;
  const std::string* name = nullptr;          ///< kInternMailbox / kSpawn
  std::function<void()>* spawn_body = nullptr;
  bool spawn_daemon = false;
  bool spawn_auto_restart = false;

  // Results, filled by the commit.
  ActorId spawned = -1;
  MailboxId interned = kNoMailbox;
  bool flag_result = false;            ///< kCommTest / kCommProbe
  std::exception_ptr error;            ///< rethrown by the wrapper on resume
};

/// One simulated process. All state is owned by the kernel; user code
/// interacts through Kernel's simcall methods and through the ids.
class Actor {
public:
  Actor(ActorId id, std::string name, int host, std::function<void()> body, bool daemon, bool auto_restart);

  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }
  int host() const { return host_; }
  bool daemon() const { return daemon_; }
  bool auto_restart() const { return auto_restart_; }

  enum class State : std::uint8_t {
    kReady,    ///< scheduled (or suspended-but-runnable)
    kBlocked,  ///< waiting in a simcall
    kDead,
  };
  State state() const { return state_; }
  bool suspended() const { return suspended_; }
  bool alive() const { return state_ != State::kDead; }

  /// Register a callback run (on the maestro) when the actor terminates.
  void on_exit(std::function<void(bool /*failed*/)> cb) { exit_callbacks_.push_back(std::move(cb)); }

  /// Arbitrary user slot (MSG attaches its process data here).
  void* user_data = nullptr;

private:
  friend class Kernel;

  ActorId id_;
  std::int32_t host_;
  std::int32_t shard_ = 0;  ///< run-queue shard (from Platform::shard_map())

  // Intrusive membership in the per-host live list (slot indices, -1 = end):
  // host failure kills residents in O(residents), not O(all actors ever).
  std::int32_t host_prev_ = -1;
  std::int32_t host_next_ = -1;
  std::uint32_t slot_ = 0;  ///< own index in the kernel's actor arena

  State state_ = State::kReady;
  bool daemon_;
  bool auto_restart_;
  bool suspended_ = false;
  bool in_ready_queue_ = false;
  bool killed_by_failure_ = false;
  WakeStatus wake_status_ = WakeStatus::kOk;
  std::uint32_t timer_gen_ = 0;  ///< invalidates in-flight timeout timers

  std::string name_;
  std::function<void()> body_;  ///< kept for auto-restart
  std::unique_ptr<Context> context_;

  // What the actor is blocked on (at most one at a time).
  core::ActionPtr blocked_action_;
  CommPtr blocked_comm_;

  /// Simcall recorded in the current scheduling phase, awaiting its serial
  /// commit; points into the parked wrapper's frame (see PendingSimcall).
  PendingSimcall* pending_ = nullptr;

  /// True while the actor's quantum runs inside a scheduling phase. Carried
  /// on the actor — not in a thread-local — because thread-backend bodies
  /// execute on their own OS thread, not on the resuming lane. Set by the
  /// lane right before the resume and cleared right after it; the context
  /// switch handshake orders both against the body.
  bool phase_quantum_ = false;
  /// Comms this quantum matched inline on its home mailboxes, pending their
  /// serial engine start (valid only while phase_quantum_ is set).
  std::vector<CommPtr>* phase_starts_ = nullptr;

  std::vector<std::function<void(bool)>> exit_callbacks_;
};

}  // namespace sg::kernel
