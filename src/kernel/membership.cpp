#include "kernel/membership.hpp"

#include <algorithm>
#include <limits>

#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(membership, "dynamic membership driver and retry helpers");

namespace sg::kernel {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void declare_membership_config() {
  config::declare(kCfgRetryMax, 4, 1, 1000,
                  "bounded-retry comm helpers: total attempts before giving up");
  config::declare(kCfgRetryTimeout, 1.0,
                  "bounded-retry comm helpers: first attempt's timeout, seconds");
  config::declare(kCfgRetryBackoff, 2.0,
                  "bounded-retry comm helpers: timeout multiplier between attempts");
  config::declare(kCfgRetryMaxTimeout, 30.0,
                  "bounded-retry comm helpers: cap on the per-attempt timeout, seconds");
}

RetryPolicy RetryPolicy::from_config() {
  declare_membership_config();
  RetryPolicy p;
  p.max_attempts = static_cast<int>(config::get(kCfgRetryMax));
  p.timeout = config::get(kCfgRetryTimeout);
  p.backoff = config::get(kCfgRetryBackoff);
  p.max_timeout = config::get(kCfgRetryMaxTimeout);
  return p;
}

namespace {

/// Shared retry loop: run `attempt` with a growing timeout, sleeping the
/// failed attempt's timeout before the next try. Absorbs the transient comm
/// failures (timeout, network failure, host down/departed); anything else —
/// cancellation, invalid arguments — propagates.
template <typename Attempt>
bool retry_loop(Kernel& k, const RetryPolicy& policy, const char* what, Attempt&& attempt) {
  double timeout = std::min(policy.timeout, policy.max_timeout);
  for (int n = 1; n <= std::max(1, policy.max_attempts); ++n) {
    try {
      attempt(timeout);
      return true;
    } catch (const xbt::TimeoutException& e) {
      SG_VERB(membership, "%s attempt %d/%d timed out: %s", what, n, policy.max_attempts, e.what());
    } catch (const xbt::NetworkFailureException& e) {
      SG_VERB(membership, "%s attempt %d/%d hit a network failure: %s", what, n,
              policy.max_attempts, e.what());
    } catch (const xbt::HostFailureException& e) {
      SG_VERB(membership, "%s attempt %d/%d hit a host failure: %s", what, n, policy.max_attempts,
              e.what());
    }
    if (n < policy.max_attempts) {
      k.sleep_for(timeout);  // back off before probing the peer again
      timeout = std::min(timeout * policy.backoff, policy.max_timeout);
    }
  }
  return false;
}

}  // namespace

bool retry_send(Kernel& k, MailboxId mailbox, void* payload, double bytes,
                const RetryPolicy& policy) {
  return retry_loop(k, policy, "send",
                    [&](double timeout) { k.send(mailbox, payload, bytes, timeout); });
}

void* retry_recv(Kernel& k, MailboxId mailbox, const RetryPolicy& policy, ActorId* source) {
  void* payload = nullptr;
  const bool ok = retry_loop(k, policy, "recv", [&](double timeout) {
    payload = k.recv(mailbox, timeout, source);
  });
  return ok ? payload : nullptr;
}

ActorId start_membership_driver(Kernel& k, int driver_host, std::vector<HostChurn> churn) {
  churn.erase(std::remove_if(churn.begin(), churn.end(),
                             [](const HostChurn& c) { return c.availability.empty(); }),
              churn.end());
  std::sort(churn.begin(), churn.end(),
            [](const HostChurn& a, const HostChurn& b) { return a.host < b.host; });
  return k.spawn("membership-driver", driver_host,
                 [&k, churn = std::move(churn)] {
                   double t = k.now();
                   std::vector<std::optional<sg::trace::TracePoint>> edges(churn.size());
                   while (true) {
                     // Next edge across every trace; nullopt everywhere = done.
                     double next = kInf;
                     for (size_t i = 0; i < churn.size(); ++i) {
                       edges[i] = churn[i].availability.next_event_after(t);
                       if (edges[i])
                         next = std::min(next, edges[i]->time);
                     }
                     if (next == kInf)
                       return;
                     if (next > t)
                       k.sleep_for(next - t);
                     t = next;
                     // Apply every edge landing exactly at `next`, ascending
                     // host order. Compare membership against the platform —
                     // a host may have been churned externally in between.
                     for (size_t i = 0; i < churn.size(); ++i) {
                       if (!edges[i] || edges[i]->time != next)
                         continue;
                       const int h = churn[i].host;
                       const bool member = k.engine().host_present(h);
                       if (edges[i]->value <= 0.5 && member) {
                         SG_VERB(membership, "t=%g: host %s departs", t,
                                 k.engine().platform().host(h).name.c_str());
                         k.leave_host(h);
                       } else if (edges[i]->value > 0.5 && !member) {
                         SG_VERB(membership, "t=%g: host %s returns", t,
                                 k.engine().platform().host(h).name.c_str());
                         k.rejoin_host(h);
                       }
                     }
                   }
                 },
                 /*daemon=*/true);
}

ActorId start_membership_driver(Kernel& k, int driver_host) {
  std::vector<HostChurn> churn;
  const auto& pf = k.engine().platform();
  for (size_t h = 0; h < pf.host_count(); ++h)
    if (!pf.host(static_cast<int>(h)).churn.empty())
      churn.push_back({static_cast<int>(h), pf.host(static_cast<int>(h)).churn});
  return start_membership_driver(k, driver_host, std::move(churn));
}

ActorId register_rejoin_daemon(Kernel& k, const std::string& name, int host,
                               std::function<void()> body) {
  return k.spawn(name, host, std::move(body), /*daemon=*/true, /*auto_restart=*/true);
}

}  // namespace sg::kernel
