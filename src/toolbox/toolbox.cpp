#include "toolbox/toolbox.hpp"

#include <algorithm>

#include "datadesc/datadesc.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(toolbox, "grid application toolbox");

namespace sg::toolbox {

using datadesc::DataDesc;
using datadesc::Value;
using datadesc::ValueList;
using datadesc::ValueStruct;
using datadesc::datadesc_by_name;

void declare_toolbox_messages() {
  gras::msgtype_declare("tb:probe", datadesc_by_name("string"));   // payload blob
  gras::msgtype_declare("tb:probe-ack", datadesc_by_name("int"));  // round id
  gras::msgtype_declare(
      "tb:topo-report",
      DataDesc::struct_("topo_report",
                        {{"node", datadesc_by_name("string")},
                         {"neighbours", DataDesc::dyn_array(datadesc_by_name("string"), "nbrs")}}));
}

// -- CPU monitoring ----------------------------------------------------------------

void cpu_monitor_body(double period, int count, std::vector<Sample>& out, CpuReader reader) {
  out.clear();
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back({gras::os_time(), reader()});
    gras::os_sleep(period);
  }
}

// -- bandwidth probing ----------------------------------------------------------------

double bandwidth_probe(const std::string& host, int port, double probe_bytes) {
  declare_toolbox_messages();
  auto peer = gras::socket_client(host, port);
  const std::string blob(static_cast<size_t>(probe_bytes), 'p');
  const double t0 = gras::os_time();
  gras::msg_send(peer, "tb:probe", Value(blob));
  (void)gras::msg_wait(600.0, "tb:probe-ack");
  const double rtt = gras::os_time() - t0;
  if (rtt <= 0)
    return 0;
  // The ack is tiny; the forward transfer dominates.
  return probe_bytes / rtt;
}

void bandwidth_echo_body(int port, int rounds) {
  declare_toolbox_messages();
  gras::socket_server(port);
  for (int i = 0; i < rounds; ++i) {
    gras::Message m = gras::msg_wait(600.0, "tb:probe");
    gras::msg_send(m.source, "tb:probe-ack", Value(i));
  }
}

// -- topology discovery ---------------------------------------------------------------

std::vector<std::pair<std::string, std::string>> DiscoveredTopology::edges() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [node, nbrs] : neighbours)
    for (const std::string& n : nbrs) {
      auto e = std::minmax(node, n);
      out.emplace_back(e.first, e.second);
    }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void topology_report_body(const std::string& my_name, const std::vector<std::string>& neighbours,
                          const std::string& collector_host, int collector_port) {
  declare_toolbox_messages();
  auto collector = gras::socket_client(collector_host, collector_port);
  ValueList nbrs;
  for (const std::string& n : neighbours)
    nbrs.emplace_back(n);
  gras::msg_send(collector, "tb:topo-report",
                 Value(ValueStruct{{"node", Value(my_name)}, {"neighbours", Value(std::move(nbrs))}}));
}

DiscoveredTopology topology_collect_body(int port, int expected_reports) {
  declare_toolbox_messages();
  gras::socket_server(port);
  DiscoveredTopology topo;
  for (int i = 0; i < expected_reports; ++i) {
    gras::Message m = gras::msg_wait(600.0, "tb:topo-report");
    const std::string node = m.payload.field("node").as_string();
    std::vector<std::string> nbrs;
    for (const Value& v : m.payload.field("neighbours").as_list())
      nbrs.push_back(v.as_string());
    topo.neighbours[node] = std::move(nbrs);
    SG_DEBUG(toolbox, "collected report %d/%d from %s", i + 1, expected_reports, node.c_str());
  }
  return topo;
}

}  // namespace sg::toolbox
