/// \file toolbox.hpp
/// The Grid Application Toolbox sketched in the paper's "work in progress":
/// platform monitoring (CPU and network) and network topology discovery,
/// built as GRAS applications so they run in simulation or real-world mode.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gras/gras.hpp"

namespace sg::toolbox {

/// One sample of a monitored quantity.
struct Sample {
  double time;
  double value;
};

/// Declare the toolbox message types (idempotent; every entry point calls it).
void declare_toolbox_messages();

// -- CPU monitoring ------------------------------------------------------------

/// GRAS process body: sample the *local* host's CPU availability every
/// `period` seconds, `count` times, and record into `out`. Availability is
/// measured the NWS way: time a calibrated spin loop and compare against its
/// unloaded duration — in simulation mode we read the engine through the
/// same interface the real sensor would use.
using CpuReader = std::function<double()>;
void cpu_monitor_body(double period, int count, std::vector<Sample>& out, CpuReader reader);

// -- bandwidth probing ------------------------------------------------------------

/// Measure the achievable bandwidth from this process to `host`:`port` by
/// timing `probe_bytes` of payload (NWS-style active probe). The peer must
/// run bandwidth_echo_body. Returns bytes/s.
double bandwidth_probe(const std::string& host, int port, double probe_bytes);

/// Echo service for bandwidth probes: handles `rounds` probes then returns.
void bandwidth_echo_body(int port, int rounds);

// -- topology discovery ---------------------------------------------------------

/// Each node reports its neighbour list to a collector; the collector
/// assembles the adjacency map. Returns, on the collector, the discovered
/// edge list (pairs of host names, canonical order).
struct DiscoveredTopology {
  std::map<std::string, std::vector<std::string>> neighbours;
  std::vector<std::pair<std::string, std::string>> edges() const;
};

/// Node body: report `my_name` with its neighbour list to the collector.
void topology_report_body(const std::string& my_name, const std::vector<std::string>& neighbours,
                          const std::string& collector_host, int collector_port);

/// Collector body: gather `expected_reports` reports.
DiscoveredTopology topology_collect_body(int port, int expected_reports);

}  // namespace sg::toolbox
