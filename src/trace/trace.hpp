/// \file trace.hpp
/// Trace-based simulation support ("Trace-based simulation of performance
/// variations due to external load" and "of dynamic resource failures" in the
/// paper).
///
/// A trace is a piecewise-constant function of time given as sorted
/// (timestamp, value) points, optionally periodic. Availability traces scale
/// a resource's capacity in [0,1]; state traces toggle it up (1) / down (0).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace sg::trace {

struct TracePoint {
  double time;   ///< seconds since trace origin
  double value;  ///< availability fraction or up/down flag
};

class Trace {
public:
  Trace() = default;
  Trace(std::string name, std::vector<TracePoint> points, double periodicity);

  /// Parse the SimGrid-style text format:
  ///   # comment
  ///   PERIODICITY 10.0
  ///   0.0  1.0
  ///   5.0  0.5
  /// Timestamps must be non-decreasing; throws InvalidArgument otherwise.
  static Trace parse(const std::string& name, const std::string& text);

  /// Load from a file on disk (same format).
  static Trace load(const std::string& path);

  const std::string& name() const { return name_; }
  bool empty() const { return points_.empty(); }
  double periodicity() const { return periodicity_; }
  const std::vector<TracePoint>& points() const { return points_; }

  /// Value of the step function at time t (>= 0). Before the first point the
  /// value of the first point is used (a trace conventionally starts at 0).
  double value_at(double t) const;

  /// First event time strictly greater than t, together with the value it
  /// switches to. nullopt when the trace has no further change (non-periodic
  /// trace exhausted, or <=1 distinct point).
  std::optional<TracePoint> next_event_after(double t) const;

  /// Duration covered by one period (periodic) resp. by the whole point list.
  double horizon() const;

private:
  std::string name_;
  std::vector<TracePoint> points_;
  double periodicity_ = -1.0;  ///< <=0 : non-periodic
};

/// Convenience builders used heavily by tests and benches.
Trace constant_trace(const std::string& name, double value);
/// Square wave alternating hi/lo with the given phase durations, periodic.
Trace square_wave(const std::string& name, double hi, double hi_duration, double lo, double lo_duration);

}  // namespace sg::trace
