#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "xbt/exception.hpp"
#include "xbt/str.hpp"

namespace sg::trace {

Trace::Trace(std::string name, std::vector<TracePoint> points, double periodicity)
    : name_(std::move(name)), points_(std::move(points)), periodicity_(periodicity) {
  for (size_t i = 1; i < points_.size(); ++i)
    if (points_[i].time < points_[i - 1].time)
      throw xbt::InvalidArgument("trace " + name_ + ": timestamps must be non-decreasing");
  if (periodicity_ > 0 && !points_.empty() && points_.back().time > periodicity_)
    throw xbt::InvalidArgument("trace " + name_ + ": points exceed periodicity");
}

Trace Trace::parse(const std::string& name, const std::string& text) {
  std::vector<TracePoint> points;
  double periodicity = -1.0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = xbt::trim(line);
    if (t.empty() || t[0] == '#')
      continue;
    auto tokens = xbt::split_ws(t);
    if (xbt::to_lower(tokens[0]) == "periodicity") {
      if (tokens.size() != 2)
        throw xbt::InvalidArgument("trace " + name + ": bad PERIODICITY line");
      periodicity = std::stod(tokens[1]);
      continue;
    }
    if (tokens.size() != 2)
      throw xbt::InvalidArgument("trace " + name + ": bad line: " + t);
    points.push_back({std::stod(tokens[0]), std::stod(tokens[1])});
  }
  return Trace(name, std::move(points), periodicity);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw xbt::InvalidArgument("cannot open trace file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(path, buf.str());
}

double Trace::value_at(double t) const {
  if (points_.empty())
    return 1.0;
  double local = t;
  if (periodicity_ > 0)
    local = std::fmod(t, periodicity_);
  // Last point with time <= local.
  auto it = std::upper_bound(points_.begin(), points_.end(), local,
                             [](double v, const TracePoint& p) { return v < p.time; });
  if (it == points_.begin()) {
    // Before the first point: in a periodic trace the value wraps from the
    // end of the previous period; otherwise hold the first value.
    if (periodicity_ > 0 && t >= periodicity_)
      return points_.back().value;
    return points_.front().value;
  }
  return std::prev(it)->value;
}

std::optional<TracePoint> Trace::next_event_after(double t) const {
  if (points_.empty())
    return std::nullopt;
  if (periodicity_ <= 0) {
    auto it = std::upper_bound(points_.begin(), points_.end(), t,
                               [](double v, const TracePoint& p) { return v < p.time; });
    if (it == points_.end())
      return std::nullopt;
    return *it;
  }
  // Periodic: find position within the current period, wrap if needed.
  const double base = std::floor(t / periodicity_) * periodicity_;
  const double local = t - base;
  auto it = std::upper_bound(points_.begin(), points_.end(), local,
                             [](double v, const TracePoint& p) { return v < p.time; });
  // `t - base` and `base + time` round independently, so the candidate can
  // land exactly on (or before) t; returning it would make a caller that
  // chains next_event_after re-fire the same event forever. Skip forward
  // until the date is strictly in the future (at most one extra period).
  double b = base;
  while (true) {
    if (it == points_.end()) {
      b += periodicity_;
      it = points_.begin();
    }
    const double at = b + it->time;
    if (at > t)
      return TracePoint{at, it->value};
    ++it;
  }
}

double Trace::horizon() const {
  if (periodicity_ > 0)
    return periodicity_;
  return points_.empty() ? 0.0 : points_.back().time;
}

Trace constant_trace(const std::string& name, double value) {
  return Trace(name, {{0.0, value}}, -1.0);
}

Trace square_wave(const std::string& name, double hi, double hi_duration, double lo, double lo_duration) {
  return Trace(name, {{0.0, hi}, {hi_duration, lo}}, hi_duration + lo_duration);
}

}  // namespace sg::trace
