/// \file gantt.hpp
/// Execution tracing and Gantt-chart rendering — reproduces the paper's
/// figure "Gantt chart for an execution of the above code for 2 servers and
/// 3 clients" (dark portions = computations, light portions = comms).
///
/// The tracer observes engine action transitions; every completed action
/// becomes an interval on its host's row (communications also appear on the
/// destination host's row, as receptions).
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"

namespace sg::viz {

enum class IntervalKind { kCompute, kCommSend, kCommRecv, kSleep };

struct Interval {
  int host;
  IntervalKind kind;
  double start;
  double end;
  std::string label;
};

class Tracer {
public:
  /// Install on an engine. The tracer must outlive the observation period;
  /// call detach() (or destroy the engine first) when done.
  explicit Tracer(core::Engine& engine);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void detach();

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Render an ASCII Gantt chart: one row per host, `width` character
  /// columns spanning [0, horizon]. '#' compute, '=' send, '-' receive,
  /// 'z' sleep, '.' idle.
  std::string render_ascii(int width = 100) const;

  /// CSV export: host,name,kind,start,end
  std::string to_csv() const;

  /// Latest interval end (the chart horizon).
  double horizon() const;

private:
  core::Engine* engine_;
  std::vector<Interval> intervals_;
};

const char* interval_kind_name(IntervalKind kind);

}  // namespace sg::viz
