#include "viz/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "xbt/str.hpp"

namespace sg::viz {

const char* interval_kind_name(IntervalKind kind) {
  switch (kind) {
    case IntervalKind::kCompute: return "compute";
    case IntervalKind::kCommSend: return "send";
    case IntervalKind::kCommRecv: return "recv";
    case IntervalKind::kSleep: return "sleep";
  }
  return "?";
}

Tracer::Tracer(core::Engine& engine) : engine_(&engine) {
  engine.set_action_observer([this](const core::Action& action, core::ActionState /*old_state*/,
                                    core::ActionState new_state) {
    if (new_state != core::ActionState::kDone && new_state != core::ActionState::kFailed &&
        new_state != core::ActionState::kCanceled)
      return;  // only record completed activity
    if (std::isnan(action.finish_time()))
      return;
    switch (action.kind()) {
      case core::ActionKind::kExec:
      case core::ActionKind::kPtask:
        intervals_.push_back({action.host(), IntervalKind::kCompute, action.start_time(),
                              action.finish_time(), action.name()});
        break;
      case core::ActionKind::kSleep:
        intervals_.push_back({action.host(), IntervalKind::kSleep, action.start_time(),
                              action.finish_time(), action.name()});
        break;
      case core::ActionKind::kComm:
        intervals_.push_back({action.host(), IntervalKind::kCommSend, action.start_time(),
                              action.finish_time(), action.name()});
        if (action.peer_host() >= 0 && action.peer_host() != action.host())
          intervals_.push_back({action.peer_host(), IntervalKind::kCommRecv, action.start_time(),
                                action.finish_time(), action.name()});
        break;
    }
  });
}

Tracer::~Tracer() { detach(); }

void Tracer::detach() {
  if (engine_ != nullptr) {
    engine_->set_action_observer(nullptr);
    engine_ = nullptr;
  }
}

double Tracer::horizon() const {
  double h = 0;
  for (const Interval& iv : intervals_)
    h = std::max(h, iv.end);
  return h;
}

std::string Tracer::render_ascii(int width) const {
  const double h = horizon();
  if (h <= 0 || engine_ == nullptr)
    return "(empty gantt)\n";
  const auto& platform = engine_->platform();
  const size_t n_hosts = platform.host_count();

  // Longest host name for row alignment.
  size_t name_width = 0;
  for (size_t i = 0; i < n_hosts; ++i)
    name_width = std::max(name_width, platform.host(static_cast<int>(i)).name.size());

  std::vector<std::string> rows(n_hosts, std::string(static_cast<size_t>(width), '.'));
  auto mark = [&](const Interval& iv, char c) {
    if (iv.host < 0 || static_cast<size_t>(iv.host) >= n_hosts)
      return;
    int a = static_cast<int>(std::floor(iv.start / h * width));
    int b = static_cast<int>(std::ceil(iv.end / h * width));
    a = std::clamp(a, 0, width - 1);
    b = std::clamp(b, a + 1, width);
    for (int x = a; x < b; ++x) {
      char& cell = rows[static_cast<size_t>(iv.host)][static_cast<size_t>(x)];
      // compute ('#') wins over comm which wins over sleep over idle
      auto rank = [](char ch) {
        switch (ch) {
          case '#': return 4;
          case '=': return 3;
          case '-': return 2;
          case 'z': return 1;
          default: return 0;
        }
      };
      if (rank(c) > rank(cell))
        cell = c;
    }
  };
  for (const Interval& iv : intervals_) {
    switch (iv.kind) {
      case IntervalKind::kCompute: mark(iv, '#'); break;
      case IntervalKind::kCommSend: mark(iv, '='); break;
      case IntervalKind::kCommRecv: mark(iv, '-'); break;
      case IntervalKind::kSleep: mark(iv, 'z'); break;
    }
  }

  std::ostringstream out;
  out << xbt::format("Gantt over [0, %.6g] s   (#: compute, =: send, -: recv, z: sleep)\n", h);
  for (size_t i = 0; i < n_hosts; ++i) {
    std::string name = platform.host(static_cast<int>(i)).name;
    name.resize(name_width, ' ');
    out << name << " |" << rows[i] << "|\n";
  }
  return out.str();
}

std::string Tracer::to_csv() const {
  std::ostringstream out;
  out << "host,name,kind,start,end\n";
  out.precision(9);
  for (const Interval& iv : intervals_)
    out << iv.host << "," << iv.label << "," << interval_kind_name(iv.kind) << "," << iv.start << ","
        << iv.end << "\n";
  return out.str();
}

}  // namespace sg::viz
