/// \file arch.hpp
/// Architecture descriptors for cross-architecture data exchange — the basis
/// of GRAS's "simple and cross-architecture communication of complex data
/// structures" (the paper lists 12 CPU architectures; we model the byte
/// order, C type widths and alignment rules that actually matter on the
/// wire, including the three from the paper's tables: PowerPC, Sparc, x86).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sg::datadesc {

/// Logical C scalar types whose layout varies across architectures.
enum class CType : int {
  kInt8 = 0,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kLong,    ///< 4 bytes on ILP32 (x86/sparc/ppc), 8 on LP64 (amd64/sparc64)
  kULong,
  kFloat,   ///< IEEE-754 binary32 everywhere; endianness differs
  kDouble,  ///< IEEE-754 binary64
  kCount_,
};

struct ArchDesc {
  int id = -1;
  std::string name;
  bool big_endian = false;
  std::uint8_t sizes[static_cast<int>(CType::kCount_)] = {};
  std::uint8_t aligns[static_cast<int>(CType::kCount_)] = {};

  std::uint8_t size_of(CType t) const { return sizes[static_cast<int>(t)]; }
  std::uint8_t align_of(CType t) const { return aligns[static_cast<int>(t)]; }
};

/// The built-in architecture table. Guaranteed stable ids (wire format!):
///   0 x86 (ia32)   1 sparc (v8)   2 ppc (32)   3 amd64   4 sparc64   5 arm32
const std::vector<ArchDesc>& arch_table();

const ArchDesc& arch_by_id(int id);
const ArchDesc& arch_by_name(const std::string& name);

/// Architecture this process natively matches (amd64 layout on our target).
const ArchDesc& native_arch();

}  // namespace sg::datadesc
