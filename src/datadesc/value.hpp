/// \file value.hpp
/// Architecture-neutral in-memory representation of described data: the tree
/// form a payload takes between encode and decode. Scalars are held widened
/// (int64 / uint64 / double); structure mirrors the DataDesc.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace sg::datadesc {

class Value;
using ValueList = std::vector<Value>;
/// Field order matters (wire order), so structs are ordered name/value pairs.
using ValueStruct = std::vector<std::pair<std::string, Value>>;

class Value {
public:
  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}                    // NOLINT(google-explicit-constructor)
  Value(uint64_t v) : data_(v) {}                   // NOLINT
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : data_(v) {}                     // NOLINT
  Value(std::string v) : data_(std::move(v)) {}     // NOLINT
  Value(const char* v) : data_(std::string(v)) {}   // NOLINT
  Value(ValueList v) : data_(std::move(v)) {}       // NOLINT
  Value(ValueStruct v) : data_(std::move(v)) {}     // NOLINT

  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_uint() const { return std::holds_alternative<uint64_t>(data_); }
  bool is_float() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_list() const { return std::holds_alternative<ValueList>(data_); }
  bool is_struct() const { return std::holds_alternative<ValueStruct>(data_); }
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  static Value null() {
    Value v;
    v.data_ = std::monostate{};
    return v;
  }

  int64_t as_int() const;
  uint64_t as_uint() const;
  double as_float() const;
  const std::string& as_string() const;
  const ValueList& as_list() const;
  ValueList& as_list();
  const ValueStruct& as_struct() const;
  ValueStruct& as_struct();

  /// Struct field access by name (throws if absent).
  const Value& field(const std::string& name) const;

  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

  /// Debug rendering (also used by tests for diffs).
  std::string to_string() const;

private:
  std::variant<std::monostate, int64_t, uint64_t, double, std::string, ValueList, ValueStruct> data_;
};

}  // namespace sg::datadesc
