/// CDR codec ("omniorb" in the paper's tables): CORBA Common Data
/// Representation. Fixed IDL widths (long = 4 bytes regardless of the C
/// long), natural alignment, sender endianness announced by a flag byte;
/// the receiver byte-swaps when the flag differs from its own order.
#include "datadesc/codec.hpp"
#include "datadesc/wire.hpp"

namespace sg::datadesc {
namespace {

/// CDR width for a scalar (IDL fixed sizes).
int cdr_size(CType t) {
  switch (t) {
    case CType::kInt8:
    case CType::kUInt8:
      return 1;
    case CType::kInt16:
    case CType::kUInt16:
      return 2;
    case CType::kInt32:
    case CType::kUInt32:
    case CType::kLong:   // IDL long is 32-bit
    case CType::kULong:
    case CType::kFloat:
      return 4;
    default:
      return 8;
  }
}

class CdrCodec final : public Codec {
public:
  const char* name() const override { return "omniorb"; }

  std::vector<std::uint8_t> encode(const DataDesc& desc, const Value& v,
                                   const ArchDesc& sender) const override {
    WireWriter w;
    w.put_u8(sender.big_endian ? 0 : 1);  // CDR: 1 = little-endian
    encode_node(w, desc, v, sender.big_endian);
    return w.take();
  }

  Value decode(const DataDesc& desc, const std::vector<std::uint8_t>& buf,
               const ArchDesc& receiver) const override {
    WireReader r(buf);
    const bool big_endian = r.get_u8() == 0;
    return decode_node(r, desc, big_endian, receiver);
  }

private:
  static void encode_node(WireWriter& w, const DataDesc& d, const Value& v, bool be) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = cdr_size(t);
        w.align(static_cast<size_t>(size));
        if (ctype_is_float(t)) {
          w.put_bits(float_to_bits(v.as_float(), size == 4), size, be);
        } else if (ctype_is_signed(t)) {
          check_int_fits(v.as_int(), size, d.name());
          w.put_bits(static_cast<std::uint64_t>(v.as_int()), size, be);
        } else {
          check_uint_fits(v.as_uint(), size, d.name());
          w.put_bits(v.as_uint(), size, be);
        }
        break;
      }
      case DataDesc::Kind::kString: {
        // CDR string: u32 length including terminating NUL, then bytes + NUL.
        const std::string& s = v.as_string();
        w.align(4);
        w.put_bits(s.size() + 1, 4, be);
        w.put_bytes(s.data(), s.size());
        w.put_u8(0);
        break;
      }
      case DataDesc::Kind::kStruct:
        for (size_t i = 0; i < d.fields().size(); ++i)
          encode_node(w, *d.fields()[i].desc, v.as_struct()[i].second, be);
        break;
      case DataDesc::Kind::kFixedArray:
        for (const Value& e : v.as_list())
          encode_node(w, *d.element(), e, be);
        break;
      case DataDesc::Kind::kDynArray:  // IDL sequence
        w.align(4);
        w.put_bits(v.as_list().size(), 4, be);
        for (const Value& e : v.as_list())
          encode_node(w, *d.element(), e, be);
        break;
      case DataDesc::Kind::kRef:
        w.put_u8(v.is_null() ? 0 : 1);
        if (!v.is_null())
          encode_node(w, *d.element(), v, be);
        break;
    }
  }

  static Value decode_node(WireReader& r, const DataDesc& d, bool be, const ArchDesc& receiver) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = cdr_size(t);
        r.align(static_cast<size_t>(size));
        const std::uint64_t bits = r.get_bits(size, be);
        if (ctype_is_float(t))
          return Value(bits_to_float(bits, size == 4));
        if (ctype_is_signed(t)) {
          const std::int64_t x = sign_extend(bits, size);
          check_int_fits(x, receiver.size_of(t), d.name() + " (receiver)");
          return Value(x);
        }
        check_uint_fits(bits, receiver.size_of(t), d.name() + " (receiver)");
        return Value(bits);
      }
      case DataDesc::Kind::kString: {
        r.align(4);
        const auto len = static_cast<size_t>(r.get_bits(4, be));
        if (len == 0)
          throw xbt::InvalidArgument("cdr: zero-length string (missing NUL)");
        std::string s(len - 1, '\0');
        r.get_bytes(s.data(), len - 1);
        r.skip(1);  // NUL
        return Value(std::move(s));
      }
      case DataDesc::Kind::kStruct: {
        ValueStruct out;
        out.reserve(d.fields().size());
        for (const auto& f : d.fields())
          out.emplace_back(f.name, decode_node(r, *f.desc, be, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kFixedArray: {
        ValueList out;
        out.reserve(d.array_size());
        for (size_t i = 0; i < d.array_size(); ++i)
          out.push_back(decode_node(r, *d.element(), be, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kDynArray: {
        r.align(4);
        const auto n = static_cast<size_t>(r.get_bits(4, be));
        ValueList out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i)
          out.push_back(decode_node(r, *d.element(), be, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kRef: {
        if (r.get_u8() == 0)
          return Value::null();
        return decode_node(r, *d.element(), be, receiver);
      }
    }
    throw xbt::InvalidArgument("cdr: corrupt description");
  }
};

}  // namespace

const Codec& cdr_codec() {
  static CdrCodec codec;
  return codec;
}

}  // namespace sg::datadesc
