/// \file datadesc.hpp
/// Data description trees — GRAS's `gras_datadesc` mechanism. A DataDesc
/// describes the logical shape of a message payload: scalars (with
/// architecture-dependent layout), strings, fixed and dynamic arrays,
/// structures, and nullable references.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datadesc/arch.hpp"
#include "datadesc/value.hpp"

namespace sg::datadesc {

class DataDesc;
using DataDescPtr = std::shared_ptr<const DataDesc>;

class DataDesc {
public:
  enum class Kind { kScalar, kString, kStruct, kFixedArray, kDynArray, kRef };

  struct Field {
    std::string name;
    DataDescPtr desc;
  };

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  CType ctype() const { return ctype_; }
  const std::vector<Field>& fields() const { return fields_; }
  const DataDescPtr& element() const { return element_; }
  size_t array_size() const { return array_size_; }

  // -- factories ---------------------------------------------------------------
  static DataDescPtr scalar(CType type, const std::string& name = "");
  static DataDescPtr string(const std::string& name = "string");
  static DataDescPtr struct_(const std::string& name, std::vector<Field> fields);
  static DataDescPtr fixed_array(DataDescPtr element, size_t count, const std::string& name = "");
  static DataDescPtr dyn_array(DataDescPtr element, const std::string& name = "");
  static DataDescPtr ref(DataDescPtr pointee, const std::string& name = "");

  /// Validate that a value matches this description (recursively); throws
  /// xbt::InvalidArgument with a path on mismatch.
  void check(const Value& v, const std::string& path = "") const;

private:
  explicit DataDesc(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  CType ctype_ = CType::kInt32;
  std::vector<Field> fields_;
  DataDescPtr element_;
  size_t array_size_ = 0;
};

/// The global "by name" registry used by gras_datadesc_by_name (pre-seeded
/// with the primitive types: "int8".."uint64", "long", "ulong", "float",
/// "double", "int" (=int32), "string").
DataDescPtr datadesc_by_name(const std::string& name);
void datadesc_register(const std::string& name, DataDescPtr desc);

}  // namespace sg::datadesc
