/// \file pastry.hpp
/// The "Pastry message" exchanged in the paper's GRAS tables: a realistic
/// chunk of Pastry DHT node state — GUIDs, a leafset of node handles, one
/// routing-table row, and an application payload.
#pragma once

#include "datadesc/datadesc.hpp"
#include "xbt/random.hpp"

namespace sg::datadesc {

/// Description of one Pastry node handle: 128-bit GUID (4 x u32),
/// IPv4 address, port, and a proximity metric.
DataDescPtr pastry_handle_desc();

/// Description of the full Pastry message (see file comment).
DataDescPtr pastry_message_desc();

/// Generate a pseudo-random message matching pastry_message_desc().
/// `payload_bytes` sizes the application payload string.
Value make_pastry_message(xbt::Rng& rng, size_t payload_bytes = 256);

}  // namespace sg::datadesc
