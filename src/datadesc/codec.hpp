/// \file codec.hpp
/// Wire codecs. Each implements the on-the-wire strategy of one of the
/// systems compared in the paper's GRAS tables:
///
///  * "gras"    — NDR / receiver-makes-right: sender emits its native layout
///                 (byte order, type widths, alignment) prefixed by its
///                 architecture id; the receiver converts only on mismatch.
///  * "mpich"   — XDR-style canonical representation: everything big-endian
///                 padded to 4/8-byte units; both sides always convert.
///  * "omniorb" — CDR: fixed CORBA widths, sender endianness + flag byte,
///                 receiver swaps when flags differ.
///  * "pbio"    — self-describing binary: a metadata section describing the
///                 format precedes natively-laid-out data; the receiver
///                 interprets metadata to convert.
///  * "xml"     — tagged text; maximal portability, maximal cost.
#pragma once

#include <cstdint>
#include <vector>

#include "datadesc/datadesc.hpp"

namespace sg::datadesc {

class Codec {
public:
  virtual ~Codec() = default;
  virtual const char* name() const = 0;

  /// Serialize `v` (which must match `desc`) as emitted by a host of
  /// architecture `sender`.
  virtual std::vector<std::uint8_t> encode(const DataDesc& desc, const Value& v,
                                           const ArchDesc& sender) const = 0;

  /// Deserialize on a host of architecture `receiver`. Throws
  /// xbt::InvalidArgument on malformed input or unrepresentable values
  /// (e.g. a 64-bit long received by a 32-bit architecture).
  virtual Value decode(const DataDesc& desc, const std::vector<std::uint8_t>& buf,
                       const ArchDesc& receiver) const = 0;
};

const Codec& ndr_codec();    ///< "gras"
const Codec& xdr_codec();    ///< "mpich"
const Codec& cdr_codec();    ///< "omniorb"
const Codec& pbio_codec();   ///< "pbio"
const Codec& xml_codec();    ///< "xml"

const Codec& codec_by_name(const std::string& name);
std::vector<const Codec*> all_codecs();

}  // namespace sg::datadesc
