#include "datadesc/arch.hpp"

#include "xbt/exception.hpp"

namespace sg::datadesc {
namespace {

constexpr int kN = static_cast<int>(CType::kCount_);

ArchDesc make_arch(int id, const std::string& name, bool big_endian, int long_size,
                   int i64_align, int f64_align) {
  ArchDesc a;
  a.id = id;
  a.name = name;
  a.big_endian = big_endian;
  const std::uint8_t sizes[kN] = {1, 1, 2, 2, 4, 4, 8, 8,
                                  static_cast<std::uint8_t>(long_size),
                                  static_cast<std::uint8_t>(long_size), 4, 8};
  std::uint8_t aligns[kN];
  for (int i = 0; i < kN; ++i)
    aligns[i] = sizes[i];
  aligns[static_cast<int>(CType::kInt64)] = static_cast<std::uint8_t>(i64_align);
  aligns[static_cast<int>(CType::kUInt64)] = static_cast<std::uint8_t>(i64_align);
  aligns[static_cast<int>(CType::kDouble)] = static_cast<std::uint8_t>(f64_align);
  for (int i = 0; i < kN; ++i) {
    a.sizes[i] = sizes[i];
    a.aligns[i] = aligns[i];
  }
  return a;
}

}  // namespace

const std::vector<ArchDesc>& arch_table() {
  // Historic layouts: classic ia32 aligns 8-byte quantities on 4 bytes
  // (i386 System V ABI); RISC ILP32 machines align them on 8.
  static const std::vector<ArchDesc> table = {
      make_arch(0, "x86", /*big_endian=*/false, /*long=*/4, /*i64_align=*/4, /*f64_align=*/4),
      make_arch(1, "sparc", /*big_endian=*/true, /*long=*/4, /*i64_align=*/8, /*f64_align=*/8),
      make_arch(2, "ppc", /*big_endian=*/true, /*long=*/4, /*i64_align=*/8, /*f64_align=*/8),
      make_arch(3, "amd64", /*big_endian=*/false, /*long=*/8, /*i64_align=*/8, /*f64_align=*/8),
      make_arch(4, "sparc64", /*big_endian=*/true, /*long=*/8, /*i64_align=*/8, /*f64_align=*/8),
      make_arch(5, "arm32", /*big_endian=*/false, /*long=*/4, /*i64_align=*/8, /*f64_align=*/8),
  };
  return table;
}

const ArchDesc& arch_by_id(int id) {
  const auto& table = arch_table();
  if (id < 0 || static_cast<size_t>(id) >= table.size())
    throw xbt::InvalidArgument("unknown architecture id: " + std::to_string(id));
  return table[static_cast<size_t>(id)];
}

const ArchDesc& arch_by_name(const std::string& name) {
  for (const ArchDesc& a : arch_table())
    if (a.name == name)
      return a;
  throw xbt::InvalidArgument("unknown architecture: " + name);
}

const ArchDesc& native_arch() { return arch_by_name("amd64"); }

}  // namespace sg::datadesc
