/// XML codec: tagged-text serialization, the "maximally portable, maximally
/// expensive" comparison point of the paper's tables. Values are printed and
/// re-parsed as text; strings are entity-escaped.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "datadesc/codec.hpp"
#include "datadesc/wire.hpp"
#include "xbt/str.hpp"

namespace sg::datadesc {
namespace {

void xml_escape(const std::string& in, std::string& out) {
  for (char c : in) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

std::string xml_unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '&') {
      out += in[i];
      continue;
    }
    if (in.compare(i, 5, "&amp;") == 0) {
      out += '&';
      i += 4;
    } else if (in.compare(i, 4, "&lt;") == 0) {
      out += '<';
      i += 3;
    } else if (in.compare(i, 4, "&gt;") == 0) {
      out += '>';
      i += 3;
    } else if (in.compare(i, 6, "&quot;") == 0) {
      out += '"';
      i += 5;
    } else {
      out += '&';
    }
  }
  return out;
}

/// Minimal pull parser over the subset we emit.
class XmlParser {
public:
  explicit XmlParser(const std::string& text) : text_(text) {}

  /// Consume "<tag>"; returns false (without consuming) if the next tag is
  /// not `tag` (e.g. a closing tag).
  bool open(const std::string& tag) {
    skip_ws();
    const std::string want = "<" + tag + ">";
    if (text_.compare(pos_, want.size(), want) == 0) {
      pos_ += want.size();
      return true;
    }
    return false;
  }

  void close(const std::string& tag) {
    skip_ws();
    const std::string want = "</" + tag + ">";
    if (text_.compare(pos_, want.size(), want) != 0)
      throw xbt::InvalidArgument("xml: expected " + want + " at offset " + std::to_string(pos_));
    pos_ += want.size();
  }

  /// Text up to the next '<'.
  std::string text_content() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '<')
      ++pos_;
    return text_.substr(start, pos_ - start);
  }

  size_t tell() const { return pos_; }
  void seek(size_t pos) { pos_ = pos; }

private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == '\n' || text_[pos_] == ' ' || text_[pos_] == '\t'))
      ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

class XmlCodec final : public Codec {
public:
  const char* name() const override { return "xml"; }

  std::vector<std::uint8_t> encode(const DataDesc& desc, const Value& v,
                                   const ArchDesc& sender) const override {
    (void)sender;  // text is architecture-independent
    std::string out;
    out.reserve(1024);
    out += "<?xml version=\"1.0\"?>\n";
    encode_node(out, desc, v);
    return {out.begin(), out.end()};
  }

  Value decode(const DataDesc& desc, const std::vector<std::uint8_t>& buf,
               const ArchDesc& receiver) const override {
    std::string text(buf.begin(), buf.end());
    const size_t hdr = text.find("?>\n");
    if (hdr == std::string::npos)
      throw xbt::InvalidArgument("xml: missing prolog");
    const std::string body = text.substr(hdr + 3);
    XmlParser p(body);
    return decode_node(p, desc, receiver);
  }

private:
  static void encode_node(std::string& out, const DataDesc& d, const Value& v) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        out += "<s>";
        if (ctype_is_float(t))
          out += xbt::format("%.17g", v.as_float());
        else if (ctype_is_signed(t))
          out += xbt::format("%" PRId64, v.as_int());
        else
          out += xbt::format("%" PRIu64, v.as_uint());
        out += "</s>\n";
        break;
      }
      case DataDesc::Kind::kString:
        out += "<str>";
        xml_escape(v.as_string(), out);
        out += "</str>\n";
        break;
      case DataDesc::Kind::kStruct:
        out += "<struct>\n";
        for (size_t i = 0; i < d.fields().size(); ++i)
          encode_node(out, *d.fields()[i].desc, v.as_struct()[i].second);
        out += "</struct>\n";
        break;
      case DataDesc::Kind::kFixedArray:
      case DataDesc::Kind::kDynArray:
        out += "<list>\n";
        for (const Value& e : v.as_list())
          encode_node(out, *d.element(), e);
        out += "</list>\n";
        break;
      case DataDesc::Kind::kRef:
        if (v.is_null()) {
          out += "<nil></nil>\n";
        } else {
          out += "<ref>\n";
          encode_node(out, *d.element(), v);
          out += "</ref>\n";
        }
        break;
    }
  }

  static Value decode_node(XmlParser& p, const DataDesc& d, const ArchDesc& receiver) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        if (!p.open("s"))
          throw xbt::InvalidArgument("xml: expected <s>");
        const std::string text = p.text_content();
        p.close("s");
        const CType t = d.ctype();
        if (ctype_is_float(t))
          return Value(std::strtod(text.c_str(), nullptr));
        if (ctype_is_signed(t)) {
          const std::int64_t x = std::strtoll(text.c_str(), nullptr, 10);
          check_int_fits(x, receiver.size_of(t), d.name() + " (receiver)");
          return Value(x);
        }
        const std::uint64_t x = std::strtoull(text.c_str(), nullptr, 10);
        check_uint_fits(x, receiver.size_of(t), d.name() + " (receiver)");
        return Value(x);
      }
      case DataDesc::Kind::kString: {
        if (!p.open("str"))
          throw xbt::InvalidArgument("xml: expected <str>");
        const std::string text = p.text_content();
        p.close("str");
        return Value(xml_unescape(text));
      }
      case DataDesc::Kind::kStruct: {
        if (!p.open("struct"))
          throw xbt::InvalidArgument("xml: expected <struct>");
        ValueStruct out;
        out.reserve(d.fields().size());
        for (const auto& f : d.fields())
          out.emplace_back(f.name, decode_node(p, *f.desc, receiver));
        p.close("struct");
        return Value(std::move(out));
      }
      case DataDesc::Kind::kFixedArray:
      case DataDesc::Kind::kDynArray: {
        if (!p.open("list"))
          throw xbt::InvalidArgument("xml: expected <list>");
        ValueList out;
        if (d.kind() == DataDesc::Kind::kFixedArray) {
          out.reserve(d.array_size());
          for (size_t i = 0; i < d.array_size(); ++i)
            out.push_back(decode_node(p, *d.element(), receiver));
        } else {
          // Dynamic: elements until the closing tag.
          while (true) {
            const size_t mark = p.tell();
            try {
              out.push_back(decode_node(p, *d.element(), receiver));
            } catch (const xbt::InvalidArgument&) {
              p.seek(mark);
              break;
            }
          }
        }
        p.close("list");
        return Value(std::move(out));
      }
      case DataDesc::Kind::kRef: {
        if (p.open("nil")) {
          p.close("nil");
          return Value::null();
        }
        if (!p.open("ref"))
          throw xbt::InvalidArgument("xml: expected <ref> or <nil>");
        Value v = decode_node(p, *d.element(), receiver);
        p.close("ref");
        return v;
      }
    }
    throw xbt::InvalidArgument("xml: corrupt description");
  }
};

}  // namespace

const Codec& xml_codec() {
  static XmlCodec codec;
  return codec;
}

const Codec& codec_by_name(const std::string& name) {
  for (const Codec* c : all_codecs())
    if (name == c->name())
      return *c;
  throw xbt::InvalidArgument("no codec named '" + name + "'");
}

std::vector<const Codec*> all_codecs() {
  return {&ndr_codec(), &xdr_codec(), &cdr_codec(), &pbio_codec(), &xml_codec()};
}

}  // namespace sg::datadesc
