#include "datadesc/value.hpp"

#include <sstream>

#include "xbt/exception.hpp"

namespace sg::datadesc {

int64_t Value::as_int() const {
  if (is_int())
    return std::get<int64_t>(data_);
  if (is_uint())
    return static_cast<int64_t>(std::get<uint64_t>(data_));
  throw xbt::InvalidArgument("Value is not an integer: " + to_string());
}

uint64_t Value::as_uint() const {
  if (is_uint())
    return std::get<uint64_t>(data_);
  if (is_int())
    return static_cast<uint64_t>(std::get<int64_t>(data_));
  throw xbt::InvalidArgument("Value is not an integer: " + to_string());
}

double Value::as_float() const {
  if (is_float())
    return std::get<double>(data_);
  throw xbt::InvalidArgument("Value is not a float: " + to_string());
}

const std::string& Value::as_string() const {
  if (!is_string())
    throw xbt::InvalidArgument("Value is not a string: " + to_string());
  return std::get<std::string>(data_);
}

const ValueList& Value::as_list() const {
  if (!is_list())
    throw xbt::InvalidArgument("Value is not a list: " + to_string());
  return std::get<ValueList>(data_);
}

ValueList& Value::as_list() {
  if (!is_list())
    throw xbt::InvalidArgument("Value is not a list");
  return std::get<ValueList>(data_);
}

const ValueStruct& Value::as_struct() const {
  if (!is_struct())
    throw xbt::InvalidArgument("Value is not a struct: " + to_string());
  return std::get<ValueStruct>(data_);
}

ValueStruct& Value::as_struct() {
  if (!is_struct())
    throw xbt::InvalidArgument("Value is not a struct");
  return std::get<ValueStruct>(data_);
}

const Value& Value::field(const std::string& name) const {
  for (const auto& [k, v] : as_struct())
    if (k == name)
      return v;
  throw xbt::InvalidArgument("no such field: " + name);
}

std::string Value::to_string() const {
  std::ostringstream out;
  if (is_null()) {
    out << "null";
  } else if (is_int()) {
    out << std::get<int64_t>(data_);
  } else if (is_uint()) {
    out << std::get<uint64_t>(data_) << "u";
  } else if (is_float()) {
    out.precision(17);
    out << std::get<double>(data_);
  } else if (is_string()) {
    out << '"' << std::get<std::string>(data_) << '"';
  } else if (is_list()) {
    out << "[";
    bool first = true;
    for (const Value& v : std::get<ValueList>(data_)) {
      if (!first)
        out << ", ";
      first = false;
      out << v.to_string();
    }
    out << "]";
  } else {
    out << "{";
    bool first = true;
    for (const auto& [k, v] : std::get<ValueStruct>(data_)) {
      if (!first)
        out << ", ";
      first = false;
      out << k << ": " << v.to_string();
    }
    out << "}";
  }
  return out.str();
}

}  // namespace sg::datadesc
