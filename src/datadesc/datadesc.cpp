#include "datadesc/datadesc.hpp"

#include <map>
#include <mutex>

#include "xbt/exception.hpp"

namespace sg::datadesc {

DataDescPtr DataDesc::scalar(CType type, const std::string& name) {
  auto d = std::shared_ptr<DataDesc>(new DataDesc(Kind::kScalar));
  d->ctype_ = type;
  d->name_ = name.empty() ? "scalar" : name;
  return d;
}

DataDescPtr DataDesc::string(const std::string& name) {
  auto d = std::shared_ptr<DataDesc>(new DataDesc(Kind::kString));
  d->name_ = name;
  return d;
}

DataDescPtr DataDesc::struct_(const std::string& name, std::vector<Field> fields) {
  auto d = std::shared_ptr<DataDesc>(new DataDesc(Kind::kStruct));
  d->name_ = name;
  d->fields_ = std::move(fields);
  return d;
}

DataDescPtr DataDesc::fixed_array(DataDescPtr element, size_t count, const std::string& name) {
  if (!element)
    throw xbt::InvalidArgument("fixed_array: null element description");
  auto d = std::shared_ptr<DataDesc>(new DataDesc(Kind::kFixedArray));
  d->element_ = std::move(element);
  d->array_size_ = count;
  d->name_ = name.empty() ? "array" : name;
  return d;
}

DataDescPtr DataDesc::dyn_array(DataDescPtr element, const std::string& name) {
  if (!element)
    throw xbt::InvalidArgument("dyn_array: null element description");
  auto d = std::shared_ptr<DataDesc>(new DataDesc(Kind::kDynArray));
  d->element_ = std::move(element);
  d->name_ = name.empty() ? "dynarray" : name;
  return d;
}

DataDescPtr DataDesc::ref(DataDescPtr pointee, const std::string& name) {
  if (!pointee)
    throw xbt::InvalidArgument("ref: null pointee description");
  auto d = std::shared_ptr<DataDesc>(new DataDesc(Kind::kRef));
  d->element_ = std::move(pointee);
  d->name_ = name.empty() ? "ref" : name;
  return d;
}

void DataDesc::check(const Value& v, const std::string& path) const {
  const std::string where = path.empty() ? name_ : path;
  switch (kind_) {
    case Kind::kScalar:
      if (ctype_ == CType::kFloat || ctype_ == CType::kDouble) {
        if (!v.is_float())
          throw xbt::InvalidArgument(where + ": expected float value");
      } else if (!v.is_int() && !v.is_uint()) {
        throw xbt::InvalidArgument(where + ": expected integer value");
      }
      break;
    case Kind::kString:
      if (!v.is_string())
        throw xbt::InvalidArgument(where + ": expected string value");
      break;
    case Kind::kStruct: {
      if (!v.is_struct())
        throw xbt::InvalidArgument(where + ": expected struct value");
      const auto& sv = v.as_struct();
      if (sv.size() != fields_.size())
        throw xbt::InvalidArgument(where + ": field count mismatch");
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (sv[i].first != fields_[i].name)
          throw xbt::InvalidArgument(where + ": field '" + sv[i].first + "' where '" +
                                     fields_[i].name + "' expected");
        fields_[i].desc->check(sv[i].second, where + "." + fields_[i].name);
      }
      break;
    }
    case Kind::kFixedArray: {
      if (!v.is_list())
        throw xbt::InvalidArgument(where + ": expected list value");
      if (v.as_list().size() != array_size_)
        throw xbt::InvalidArgument(where + ": fixed array size mismatch");
      for (size_t i = 0; i < array_size_; ++i)
        element_->check(v.as_list()[i], where + "[" + std::to_string(i) + "]");
      break;
    }
    case Kind::kDynArray: {
      if (!v.is_list())
        throw xbt::InvalidArgument(where + ": expected list value");
      size_t i = 0;
      for (const Value& e : v.as_list())
        element_->check(e, where + "[" + std::to_string(i++) + "]");
      break;
    }
    case Kind::kRef:
      if (!v.is_null())
        element_->check(v, where + "*");
      break;
  }
}

namespace {

std::map<std::string, DataDescPtr>& registry() {
  static std::map<std::string, DataDescPtr> reg = [] {
    std::map<std::string, DataDescPtr> r;
    r["int8"] = DataDesc::scalar(CType::kInt8, "int8");
    r["uint8"] = DataDesc::scalar(CType::kUInt8, "uint8");
    r["int16"] = DataDesc::scalar(CType::kInt16, "int16");
    r["uint16"] = DataDesc::scalar(CType::kUInt16, "uint16");
    r["int32"] = DataDesc::scalar(CType::kInt32, "int32");
    r["uint32"] = DataDesc::scalar(CType::kUInt32, "uint32");
    r["int64"] = DataDesc::scalar(CType::kInt64, "int64");
    r["uint64"] = DataDesc::scalar(CType::kUInt64, "uint64");
    r["long"] = DataDesc::scalar(CType::kLong, "long");
    r["ulong"] = DataDesc::scalar(CType::kULong, "ulong");
    r["float"] = DataDesc::scalar(CType::kFloat, "float");
    r["double"] = DataDesc::scalar(CType::kDouble, "double");
    r["int"] = DataDesc::scalar(CType::kInt32, "int");
    r["string"] = DataDesc::string();
    return r;
  }();
  return reg;
}

}  // namespace

DataDescPtr datadesc_by_name(const std::string& name) {
  auto& reg = registry();
  auto it = reg.find(name);
  if (it == reg.end())
    throw xbt::InvalidArgument("no datadesc named '" + name + "'");
  return it->second;
}

void datadesc_register(const std::string& name, DataDescPtr desc) {
  registry()[name] = std::move(desc);
}

}  // namespace sg::datadesc
