#include "datadesc/pastry.hpp"

namespace sg::datadesc {

DataDescPtr pastry_handle_desc() {
  static const DataDescPtr desc = DataDesc::struct_(
      "pastry_handle",
      {
          {"guid", DataDesc::fixed_array(DataDesc::scalar(CType::kUInt32, "guid_word"), 4)},
          {"ip", DataDesc::scalar(CType::kUInt32, "ip")},
          {"port", DataDesc::scalar(CType::kUInt16, "port")},
          {"proximity", DataDesc::scalar(CType::kDouble, "proximity")},
      });
  return desc;
}

DataDescPtr pastry_message_desc() {
  static const DataDescPtr desc = DataDesc::struct_(
      "pastry_message",
      {
          {"type", DataDesc::scalar(CType::kInt32, "type")},
          {"hops", DataDesc::scalar(CType::kLong, "hops")},
          {"timestamp", DataDesc::scalar(CType::kDouble, "timestamp")},
          {"source", pastry_handle_desc()},
          {"dest", pastry_handle_desc()},
          {"leafset", DataDesc::fixed_array(pastry_handle_desc(), 16, "leafset")},
          {"routing_row", DataDesc::fixed_array(pastry_handle_desc(), 16, "routing_row")},
          {"row_index", DataDesc::scalar(CType::kInt32, "row_index")},
          {"payload", DataDesc::string("payload")},
          {"forward", DataDesc::ref(pastry_handle_desc(), "forward")},
      });
  return desc;
}

namespace {

Value make_handle(xbt::Rng& rng) {
  ValueList guid;
  for (int i = 0; i < 4; ++i)
    guid.emplace_back(static_cast<uint64_t>(rng.uniform_int(0, 0xFFFFFFFFu)));
  return Value(ValueStruct{
      {"guid", Value(std::move(guid))},
      {"ip", Value(static_cast<uint64_t>(rng.uniform_int(0x0A000001, 0x0AFFFFFE)))},
      {"port", Value(static_cast<uint64_t>(rng.uniform_int(1024, 65535)))},
      {"proximity", Value(rng.uniform(0.1e-3, 250e-3))},
  });
}

}  // namespace

Value make_pastry_message(xbt::Rng& rng, size_t payload_bytes) {
  ValueList leafset;
  ValueList row;
  for (int i = 0; i < 16; ++i) {
    leafset.push_back(make_handle(rng));
    row.push_back(make_handle(rng));
  }
  std::string payload;
  payload.reserve(payload_bytes);
  static const char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789<>&\"";
  for (size_t i = 0; i < payload_bytes; ++i)
    payload += alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)];

  return Value(ValueStruct{
      {"type", Value(static_cast<int64_t>(rng.uniform_int(0, 7)))},
      {"hops", Value(static_cast<int64_t>(rng.uniform_int(0, 16)))},
      {"timestamp", Value(rng.uniform(0.0, 1e6))},
      {"source", make_handle(rng)},
      {"dest", make_handle(rng)},
      {"leafset", Value(std::move(leafset))},
      {"routing_row", Value(std::move(row))},
      {"row_index", Value(static_cast<int64_t>(rng.uniform_int(0, 39)))},
      {"payload", Value(std::move(payload))},
      {"forward", rng.uniform01() < 0.5 ? Value::null() : make_handle(rng)},
  });
}

}  // namespace sg::datadesc
