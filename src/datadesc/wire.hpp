/// \file wire.hpp
/// Low-level byte stream reader/writer shared by the codecs: alignment
/// padding, explicit endianness, explicit scalar widths, range checking.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "datadesc/arch.hpp"
#include "xbt/exception.hpp"

namespace sg::datadesc {

class WireWriter {
public:
  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  void align(size_t alignment) {
    if (alignment > 1)
      while (buf_.size() % alignment != 0)
        buf_.push_back(0);
  }

  void put_bytes(const void* data, size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  /// Write the low `size` bytes of `bits` with the requested byte order.
  void put_bits(std::uint64_t bits, int size, bool big_endian) {
    std::uint8_t tmp[8];
    for (int i = 0; i < size; ++i)
      tmp[i] = static_cast<std::uint8_t>(bits >> (8 * i));  // little-endian order
    if (big_endian)
      for (int i = size - 1; i >= 0; --i)
        buf_.push_back(tmp[i]);
    else
      put_bytes(tmp, static_cast<size_t>(size));
  }

private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
public:
  explicit WireReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }
  bool exhausted() const { return pos_ >= buf_.size(); }

  void align(size_t alignment) {
    if (alignment > 1)
      while (pos_ % alignment != 0)
        skip(1);
  }

  void skip(size_t n) {
    need(n);
    pos_ += n;
  }

  std::uint8_t get_u8() {
    need(1);
    return buf_[pos_++];
  }

  void get_bytes(void* out, size_t n) {
    need(n);
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::uint64_t get_bits(int size, bool big_endian) {
    need(static_cast<size_t>(size));
    std::uint64_t bits = 0;
    if (big_endian) {
      for (int i = 0; i < size; ++i)
        bits = (bits << 8) | buf_[pos_ + static_cast<size_t>(i)];
    } else {
      for (int i = size - 1; i >= 0; --i)
        bits = (bits << 8) | buf_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += static_cast<size_t>(size);
    return bits;
  }

private:
  void need(size_t n) const {
    if (pos_ + n > buf_.size())
      throw xbt::InvalidArgument("wire: truncated buffer (need " + std::to_string(n) + " at " +
                                 std::to_string(pos_) + "/" + std::to_string(buf_.size()) + ")");
  }

  const std::vector<std::uint8_t>& buf_;
  size_t pos_ = 0;
};

/// Sign-extend the low `size` bytes of `bits`.
inline std::int64_t sign_extend(std::uint64_t bits, int size) {
  if (size >= 8)
    return static_cast<std::int64_t>(bits);
  const std::uint64_t sign_bit = 1ULL << (8 * size - 1);
  const std::uint64_t mask = (1ULL << (8 * size)) - 1;
  bits &= mask;
  if (bits & sign_bit)
    bits |= ~mask;
  return static_cast<std::int64_t>(bits);
}

/// Check a signed value fits in `size` bytes.
inline void check_int_fits(std::int64_t v, int size, const std::string& what) {
  if (size >= 8)
    return;
  const std::int64_t hi = (1LL << (8 * size - 1)) - 1;
  const std::int64_t lo = -hi - 1;
  if (v < lo || v > hi)
    throw xbt::InvalidArgument(what + ": value " + std::to_string(v) + " does not fit in " +
                               std::to_string(size) + " bytes");
}

inline void check_uint_fits(std::uint64_t v, int size, const std::string& what) {
  if (size >= 8)
    return;
  const std::uint64_t hi = (1ULL << (8 * size)) - 1;
  if (v > hi)
    throw xbt::InvalidArgument(what + ": value " + std::to_string(v) + " does not fit in " +
                               std::to_string(size) + " bytes");
}

inline std::uint64_t float_to_bits(double v, bool single) {
  if (single) {
    const float f = static_cast<float>(v);
    return std::bit_cast<std::uint32_t>(f);
  }
  return std::bit_cast<std::uint64_t>(v);
}

inline double bits_to_float(std::uint64_t bits, bool single) {
  if (single)
    return static_cast<double>(std::bit_cast<float>(static_cast<std::uint32_t>(bits)));
  return std::bit_cast<double>(bits);
}

inline bool ctype_is_float(CType t) { return t == CType::kFloat || t == CType::kDouble; }
inline bool ctype_is_signed(CType t) {
  switch (t) {
    case CType::kInt8:
    case CType::kInt16:
    case CType::kInt32:
    case CType::kInt64:
    case CType::kLong:
      return true;
    default:
      return false;
  }
}

}  // namespace sg::datadesc
