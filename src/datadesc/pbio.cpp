/// PBIO-style codec: self-describing binary. Every message carries a
/// metadata section describing the format (field names, kinds, scalar types)
/// followed by the data in the sender's native layout. The receiver parses
/// the metadata, checks it against the expected description, and interprets
/// the data through it. (Real PBIO caches formats per peer; shipping the
/// metadata per message models its format-negotiation overhead.)
#include "datadesc/codec.hpp"
#include "datadesc/wire.hpp"

namespace sg::datadesc {
namespace {

class PbioCodec final : public Codec {
public:
  const char* name() const override { return "pbio"; }

  std::vector<std::uint8_t> encode(const DataDesc& desc, const Value& v,
                                   const ArchDesc& sender) const override {
    WireWriter w;
    w.put_u8(static_cast<std::uint8_t>(sender.id));
    encode_meta(w, desc);
    encode_data(w, desc, v, sender);
    return w.take();
  }

  Value decode(const DataDesc& desc, const std::vector<std::uint8_t>& buf,
               const ArchDesc& receiver) const override {
    WireReader r(buf);
    const ArchDesc& sender = arch_by_id(r.get_u8());
    check_meta(r, desc);
    return decode_data(r, desc, sender, receiver);
  }

private:
  // -- metadata: kind byte, ctype byte, name, children ----------------------------
  static void encode_meta(WireWriter& w, const DataDesc& d) {
    w.put_u8(static_cast<std::uint8_t>(d.kind()));
    w.put_u8(static_cast<std::uint8_t>(d.ctype()));
    w.put_bits(d.name().size(), 2, true);
    w.put_bytes(d.name().data(), d.name().size());
    switch (d.kind()) {
      case DataDesc::Kind::kStruct:
        w.put_bits(d.fields().size(), 2, true);
        for (const auto& f : d.fields()) {
          w.put_bits(f.name.size(), 2, true);
          w.put_bytes(f.name.data(), f.name.size());
          encode_meta(w, *f.desc);
        }
        break;
      case DataDesc::Kind::kFixedArray:
        w.put_bits(d.array_size(), 4, true);
        encode_meta(w, *d.element());
        break;
      case DataDesc::Kind::kDynArray:
      case DataDesc::Kind::kRef:
        encode_meta(w, *d.element());
        break;
      default:
        break;
    }
  }

  /// Parse the incoming metadata and verify it structurally matches what the
  /// receiver expects (PBIO's format-compatibility check).
  static void check_meta(WireReader& r, const DataDesc& d) {
    const auto kind = static_cast<DataDesc::Kind>(r.get_u8());
    const auto ctype = static_cast<CType>(r.get_u8());
    const auto name_len = static_cast<size_t>(r.get_bits(2, true));
    std::string name(name_len, '\0');
    r.get_bytes(name.data(), name_len);
    if (kind != d.kind())
      throw xbt::InvalidArgument("pbio: format mismatch at '" + d.name() + "'");
    switch (kind) {
      case DataDesc::Kind::kScalar:
        if (ctype != d.ctype())
          throw xbt::InvalidArgument("pbio: scalar type mismatch at '" + d.name() + "'");
        break;
      case DataDesc::Kind::kStruct: {
        const auto n = static_cast<size_t>(r.get_bits(2, true));
        if (n != d.fields().size())
          throw xbt::InvalidArgument("pbio: field count mismatch at '" + d.name() + "'");
        for (const auto& f : d.fields()) {
          const auto fn_len = static_cast<size_t>(r.get_bits(2, true));
          std::string fn(fn_len, '\0');
          r.get_bytes(fn.data(), fn_len);
          if (fn != f.name)
            throw xbt::InvalidArgument("pbio: field name mismatch: got '" + fn + "', want '" +
                                       f.name + "'");
          check_meta(r, *f.desc);
        }
        break;
      }
      case DataDesc::Kind::kFixedArray: {
        const auto n = static_cast<size_t>(r.get_bits(4, true));
        if (n != d.array_size())
          throw xbt::InvalidArgument("pbio: array size mismatch at '" + d.name() + "'");
        check_meta(r, *d.element());
        break;
      }
      case DataDesc::Kind::kDynArray:
      case DataDesc::Kind::kRef:
        check_meta(r, *d.element());
        break;
      default:
        break;
    }
  }

  // -- data: native sender layout (like NDR, alignment included) -------------------
  static void encode_data(WireWriter& w, const DataDesc& d, const Value& v, const ArchDesc& arch) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = arch.size_of(t);
        w.align(arch.align_of(t));
        if (ctype_is_float(t)) {
          w.put_bits(float_to_bits(v.as_float(), size == 4), size, arch.big_endian);
        } else if (ctype_is_signed(t)) {
          check_int_fits(v.as_int(), size, d.name());
          w.put_bits(static_cast<std::uint64_t>(v.as_int()), size, arch.big_endian);
        } else {
          check_uint_fits(v.as_uint(), size, d.name());
          w.put_bits(v.as_uint(), size, arch.big_endian);
        }
        break;
      }
      case DataDesc::Kind::kString: {
        const std::string& s = v.as_string();
        w.align(4);
        w.put_bits(s.size(), 4, arch.big_endian);
        w.put_bytes(s.data(), s.size());
        break;
      }
      case DataDesc::Kind::kStruct:
        for (size_t i = 0; i < d.fields().size(); ++i)
          encode_data(w, *d.fields()[i].desc, v.as_struct()[i].second, arch);
        break;
      case DataDesc::Kind::kFixedArray:
        for (const Value& e : v.as_list())
          encode_data(w, *d.element(), e, arch);
        break;
      case DataDesc::Kind::kDynArray:
        w.align(4);
        w.put_bits(v.as_list().size(), 4, arch.big_endian);
        for (const Value& e : v.as_list())
          encode_data(w, *d.element(), e, arch);
        break;
      case DataDesc::Kind::kRef:
        w.put_u8(v.is_null() ? 0 : 1);
        if (!v.is_null())
          encode_data(w, *d.element(), v, arch);
        break;
    }
  }

  static Value decode_data(WireReader& r, const DataDesc& d, const ArchDesc& sender,
                           const ArchDesc& receiver) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = sender.size_of(t);
        r.align(sender.align_of(t));
        const std::uint64_t bits = r.get_bits(size, sender.big_endian);
        if (ctype_is_float(t))
          return Value(bits_to_float(bits, size == 4));
        if (ctype_is_signed(t)) {
          const std::int64_t x = sign_extend(bits, size);
          check_int_fits(x, receiver.size_of(t), d.name() + " (receiver)");
          return Value(x);
        }
        check_uint_fits(bits, receiver.size_of(t), d.name() + " (receiver)");
        return Value(bits);
      }
      case DataDesc::Kind::kString: {
        r.align(4);
        const auto len = static_cast<size_t>(r.get_bits(4, sender.big_endian));
        std::string s(len, '\0');
        r.get_bytes(s.data(), len);
        return Value(std::move(s));
      }
      case DataDesc::Kind::kStruct: {
        ValueStruct out;
        out.reserve(d.fields().size());
        for (const auto& f : d.fields())
          out.emplace_back(f.name, decode_data(r, *f.desc, sender, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kFixedArray: {
        ValueList out;
        out.reserve(d.array_size());
        for (size_t i = 0; i < d.array_size(); ++i)
          out.push_back(decode_data(r, *d.element(), sender, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kDynArray: {
        r.align(4);
        const auto n = static_cast<size_t>(r.get_bits(4, sender.big_endian));
        ValueList out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i)
          out.push_back(decode_data(r, *d.element(), sender, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kRef: {
        if (r.get_u8() == 0)
          return Value::null();
        return decode_data(r, *d.element(), sender, receiver);
      }
    }
    throw xbt::InvalidArgument("pbio: corrupt description");
  }
};

}  // namespace

const Codec& pbio_codec() {
  static PbioCodec codec;
  return codec;
}

}  // namespace sg::datadesc
