/// NDR ("receiver makes right") codec — the GRAS wire format. The sender
/// writes its native layout, so a homogeneous exchange costs near-raw-memory
/// speed on both sides; the receiver performs byte swapping and integer
/// resizing only when architectures differ.
#include "datadesc/codec.hpp"
#include "datadesc/wire.hpp"

namespace sg::datadesc {
namespace {

class NdrCodec final : public Codec {
public:
  const char* name() const override { return "gras"; }

  std::vector<std::uint8_t> encode(const DataDesc& desc, const Value& v,
                                   const ArchDesc& sender) const override {
    WireWriter w;
    w.put_u8(static_cast<std::uint8_t>(sender.id));
    encode_node(w, desc, v, sender);
    return w.take();
  }

  Value decode(const DataDesc& desc, const std::vector<std::uint8_t>& buf,
               const ArchDesc& receiver) const override {
    WireReader r(buf);
    const ArchDesc& sender = arch_by_id(r.get_u8());
    return decode_node(r, desc, sender, receiver);
  }

private:
  static void encode_node(WireWriter& w, const DataDesc& d, const Value& v, const ArchDesc& arch) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = arch.size_of(t);
        w.align(arch.align_of(t));
        if (ctype_is_float(t)) {
          w.put_bits(float_to_bits(v.as_float(), size == 4), size, arch.big_endian);
        } else if (ctype_is_signed(t)) {
          const std::int64_t x = v.as_int();
          check_int_fits(x, size, d.name());
          w.put_bits(static_cast<std::uint64_t>(x), size, arch.big_endian);
        } else {
          const std::uint64_t x = v.as_uint();
          check_uint_fits(x, size, d.name());
          w.put_bits(x, size, arch.big_endian);
        }
        break;
      }
      case DataDesc::Kind::kString: {
        const std::string& s = v.as_string();
        w.align(4);
        w.put_bits(s.size(), 4, arch.big_endian);
        w.put_bytes(s.data(), s.size());
        break;
      }
      case DataDesc::Kind::kStruct:
        for (size_t i = 0; i < d.fields().size(); ++i)
          encode_node(w, *d.fields()[i].desc, v.as_struct()[i].second, arch);
        break;
      case DataDesc::Kind::kFixedArray:
        for (const Value& e : v.as_list())
          encode_node(w, *d.element(), e, arch);
        break;
      case DataDesc::Kind::kDynArray: {
        w.align(4);
        w.put_bits(v.as_list().size(), 4, arch.big_endian);
        for (const Value& e : v.as_list())
          encode_node(w, *d.element(), e, arch);
        break;
      }
      case DataDesc::Kind::kRef: {
        w.put_u8(v.is_null() ? 0 : 1);
        if (!v.is_null())
          encode_node(w, *d.element(), v, arch);
        break;
      }
    }
  }

  static Value decode_node(WireReader& r, const DataDesc& d, const ArchDesc& sender,
                           const ArchDesc& receiver) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = sender.size_of(t);
        r.align(sender.align_of(t));
        const std::uint64_t bits = r.get_bits(size, sender.big_endian);
        if (ctype_is_float(t))
          return Value(bits_to_float(bits, size == 4));
        if (ctype_is_signed(t)) {
          const std::int64_t x = sign_extend(bits, size);
          // receiver-makes-right: the receiver must be able to represent it
          check_int_fits(x, receiver.size_of(t), d.name() + " (receiver)");
          return Value(x);
        }
        check_uint_fits(bits, receiver.size_of(t), d.name() + " (receiver)");
        return Value(bits);
      }
      case DataDesc::Kind::kString: {
        r.align(4);
        const auto len = static_cast<size_t>(r.get_bits(4, sender.big_endian));
        std::string s(len, '\0');
        r.get_bytes(s.data(), len);
        return Value(std::move(s));
      }
      case DataDesc::Kind::kStruct: {
        ValueStruct out;
        out.reserve(d.fields().size());
        for (const auto& f : d.fields())
          out.emplace_back(f.name, decode_node(r, *f.desc, sender, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kFixedArray: {
        ValueList out;
        out.reserve(d.array_size());
        for (size_t i = 0; i < d.array_size(); ++i)
          out.push_back(decode_node(r, *d.element(), sender, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kDynArray: {
        r.align(4);
        const auto n = static_cast<size_t>(r.get_bits(4, sender.big_endian));
        ValueList out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i)
          out.push_back(decode_node(r, *d.element(), sender, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kRef: {
        if (r.get_u8() == 0)
          return Value::null();
        return decode_node(r, *d.element(), sender, receiver);
      }
    }
    throw xbt::InvalidArgument("ndr: corrupt description");
  }
};

}  // namespace

const Codec& ndr_codec() {
  static NdrCodec codec;
  return codec;
}

}  // namespace sg::datadesc
