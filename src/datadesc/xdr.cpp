/// XDR-style codec ("mpich" in the paper's tables): a canonical external
/// representation — big-endian, 4-byte quantization (8 for 64-bit types).
/// Both peers always convert to/from the canonical form, which makes the
/// homogeneous case pay the same CPU cost as the heterogeneous one.
#include "datadesc/codec.hpp"
#include "datadesc/wire.hpp"

namespace sg::datadesc {
namespace {

/// XDR unit size for a scalar: everything is at least 4 bytes on the wire.
int xdr_size(CType t) {
  switch (t) {
    case CType::kInt64:
    case CType::kUInt64:
    case CType::kLong:   // transmitted as hyper so LP64 senders never truncate
    case CType::kULong:
    case CType::kDouble:
      return 8;
    default:
      return 4;
  }
}

class XdrCodec final : public Codec {
public:
  const char* name() const override { return "mpich"; }

  std::vector<std::uint8_t> encode(const DataDesc& desc, const Value& v,
                                   const ArchDesc& sender) const override {
    (void)sender;  // canonical representation: sender layout is irrelevant
    WireWriter w;
    encode_node(w, desc, v);
    return w.take();
  }

  Value decode(const DataDesc& desc, const std::vector<std::uint8_t>& buf,
               const ArchDesc& receiver) const override {
    WireReader r(buf);
    return decode_node(r, desc, receiver);
  }

private:
  static void encode_node(WireWriter& w, const DataDesc& d, const Value& v) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = xdr_size(t);
        if (ctype_is_float(t)) {
          w.put_bits(float_to_bits(v.as_float(), size == 4), size, /*big_endian=*/true);
        } else if (ctype_is_signed(t)) {
          check_int_fits(v.as_int(), size, d.name());
          w.put_bits(static_cast<std::uint64_t>(v.as_int()), size, true);
        } else {
          check_uint_fits(v.as_uint(), size, d.name());
          w.put_bits(v.as_uint(), size, true);
        }
        break;
      }
      case DataDesc::Kind::kString: {
        const std::string& s = v.as_string();
        w.put_bits(s.size(), 4, true);
        w.put_bytes(s.data(), s.size());
        w.align(4);  // XDR pads opaque data to 4 bytes
        break;
      }
      case DataDesc::Kind::kStruct:
        for (size_t i = 0; i < d.fields().size(); ++i)
          encode_node(w, *d.fields()[i].desc, v.as_struct()[i].second);
        break;
      case DataDesc::Kind::kFixedArray:
        for (const Value& e : v.as_list())
          encode_node(w, *d.element(), e);
        break;
      case DataDesc::Kind::kDynArray:
        w.put_bits(v.as_list().size(), 4, true);
        for (const Value& e : v.as_list())
          encode_node(w, *d.element(), e);
        break;
      case DataDesc::Kind::kRef:
        w.put_bits(v.is_null() ? 0 : 1, 4, true);  // XDR optional-data
        if (!v.is_null())
          encode_node(w, *d.element(), v);
        break;
    }
  }

  static Value decode_node(WireReader& r, const DataDesc& d, const ArchDesc& receiver) {
    switch (d.kind()) {
      case DataDesc::Kind::kScalar: {
        const CType t = d.ctype();
        const int size = xdr_size(t);
        const std::uint64_t bits = r.get_bits(size, true);
        if (ctype_is_float(t))
          return Value(bits_to_float(bits, size == 4));
        if (ctype_is_signed(t)) {
          const std::int64_t x = sign_extend(bits, size);
          check_int_fits(x, receiver.size_of(t), d.name() + " (receiver)");
          return Value(x);
        }
        check_uint_fits(bits, receiver.size_of(t), d.name() + " (receiver)");
        return Value(bits);
      }
      case DataDesc::Kind::kString: {
        const auto len = static_cast<size_t>(r.get_bits(4, true));
        std::string s(len, '\0');
        r.get_bytes(s.data(), len);
        r.align(4);
        return Value(std::move(s));
      }
      case DataDesc::Kind::kStruct: {
        ValueStruct out;
        out.reserve(d.fields().size());
        for (const auto& f : d.fields())
          out.emplace_back(f.name, decode_node(r, *f.desc, receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kFixedArray: {
        ValueList out;
        out.reserve(d.array_size());
        for (size_t i = 0; i < d.array_size(); ++i)
          out.push_back(decode_node(r, *d.element(), receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kDynArray: {
        const auto n = static_cast<size_t>(r.get_bits(4, true));
        ValueList out;
        out.reserve(n);
        for (size_t i = 0; i < n; ++i)
          out.push_back(decode_node(r, *d.element(), receiver));
        return Value(std::move(out));
      }
      case DataDesc::Kind::kRef: {
        if (r.get_bits(4, true) == 0)
          return Value::null();
        return decode_node(r, *d.element(), receiver);
      }
    }
    throw xbt::InvalidArgument("xdr: corrupt description");
  }
};

}  // namespace

const Codec& xdr_codec() {
  static XdrCodec codec;
  return codec;
}

}  // namespace sg::datadesc
