#include "msg/msg.hpp"

#include <memory>

#include "xbt/exception.hpp"
#include "xbt/log.hpp"
#include "xbt/str.hpp"

SG_LOG_NEW_CATEGORY(msg, "MSG prototyping interface");

namespace sg::msg {
namespace {

struct MsgGlobals {
  std::unique_ptr<kernel::Kernel> kernel;
  int channels = 16;
  /// Interned mailbox of (host, channel), host-major, filled lazily. MSG's
  /// per-message hot path never builds a mailbox-name string.
  std::vector<kernel::MailboxId> channel_mbox;
};

MsgGlobals& globals() {
  static MsgGlobals g;
  return g;
}

kernel::Kernel& the_kernel() {
  auto& g = globals();
  if (!g.kernel)
    throw xbt::InvalidArgument("MSG_init() must be called first");
  return *g.kernel;
}

kernel::MailboxId channel_mailbox(int host, int channel) {
  auto& g = globals();
  if (channel < 0 || channel >= g.channels)
    throw xbt::InvalidArgument(xbt::format("channel %d out of range [0, %d)", channel, g.channels));
  if (g.channel_mbox.empty())
    g.channel_mbox.assign(the_kernel().engine().platform().host_count() *
                              static_cast<size_t>(g.channels),
                          kernel::kNoMailbox);
  auto& mbox = g.channel_mbox[static_cast<size_t>(host) * static_cast<size_t>(g.channels) +
                              static_cast<size_t>(channel)];
  if (mbox == kernel::kNoMailbox)
    mbox = the_kernel().mailbox_by_name(xbt::format("msg:%d:%d", host, channel));
  return mbox;
}

int self_host_index() {
  kernel::Actor* a = kernel::Kernel::self();
  if (a == nullptr)
    throw xbt::InvalidArgument("this MSG call must be made from a process");
  return a->host();
}

}  // namespace

void MSG_init(platform::Platform platform, int channels) {
  auto& g = globals();
  g.kernel = std::make_unique<kernel::Kernel>(std::move(platform));
  g.channels = channels;
  g.channel_mbox.clear();  // ids belong to the previous kernel
}

void MSG_clean() {
  auto& g = globals();
  g.kernel.reset();
  g.channel_mbox.clear();
}

double MSG_main() { return the_kernel().run(); }

double MSG_get_clock() { return the_kernel().now(); }

kernel::Kernel& MSG_kernel() { return the_kernel(); }

// -- hosts ---------------------------------------------------------------------

m_host_t MSG_get_host_by_name(const std::string& name) {
  auto idx = the_kernel().engine().platform().host_by_name(name);
  if (!idx)
    throw xbt::InvalidArgument("no such host: " + name);
  return m_host_t{*idx};
}

int MSG_get_host_number() { return static_cast<int>(the_kernel().engine().platform().host_count()); }

m_host_t MSG_host_by_index(int index) {
  if (index < 0 || index >= MSG_get_host_number())
    throw xbt::InvalidArgument("host index out of range");
  return m_host_t{index};
}

const std::string& MSG_host_get_name(m_host_t host) {
  return the_kernel().engine().platform().host(host.index).name;
}

double MSG_host_get_speed(m_host_t host) { return the_kernel().engine().host_speed(host.index); }

bool MSG_host_is_on(m_host_t host) { return the_kernel().engine().host_is_on(host.index); }

m_host_t MSG_host_self() { return m_host_t{self_host_index()}; }

// -- processes -------------------------------------------------------------------

kernel::ActorId MSG_process_create(const std::string& name, ProcessFn fn, m_host_t host, bool daemon,
                                   bool auto_restart) {
  return the_kernel().spawn(name, host.index, std::move(fn), daemon, auto_restart);
}

kernel::ActorId MSG_process_self() {
  kernel::Actor* a = kernel::Kernel::self();
  if (a == nullptr)
    throw xbt::InvalidArgument("MSG_process_self() outside of a process");
  return a->id();
}

const std::string& MSG_process_get_name(kernel::ActorId pid) {
  kernel::Actor* a = the_kernel().actor(pid);
  if (a == nullptr)
    throw xbt::InvalidArgument("no such process");
  return a->name();
}

void MSG_process_suspend(kernel::ActorId pid) { the_kernel().suspend(pid); }
void MSG_process_resume(kernel::ActorId pid) { the_kernel().resume(pid); }
void MSG_process_kill(kernel::ActorId pid) { the_kernel().kill(pid); }
bool MSG_process_is_alive(kernel::ActorId pid) { return the_kernel().is_alive(pid); }
void MSG_process_sleep(double duration) { the_kernel().sleep_for(duration); }
void MSG_process_exit() { the_kernel().exit_self(); }

// -- tasks -----------------------------------------------------------------------

m_task_t MSG_task_create(const std::string& name, double flops, double bytes, void* data) {
  auto* task = new Task();
  task->name = name;
  task->compute_flops = flops;
  task->comm_bytes = bytes;
  task->data = data;
  return task;
}

void MSG_task_destroy(m_task_t task) { delete task; }

void MSG_task_execute(m_task_t task) {
  if (task == nullptr)
    throw xbt::InvalidArgument("MSG_task_execute: null task");
  if (task->compute_flops > 0)
    the_kernel().execute(task->compute_flops, task->priority);
}

namespace {
void task_put_impl(m_task_t task, m_host_t dest, int channel, double timeout, double rate) {
  if (task == nullptr)
    throw xbt::InvalidArgument("MSG_task_put: null task");
  task->source = MSG_host_self();
  task->sender = MSG_process_self();
  the_kernel().send(channel_mailbox(dest.index, channel), task, task->comm_bytes, timeout, rate);
}
}  // namespace

void MSG_task_put(m_task_t task, m_host_t dest, int channel) {
  task_put_impl(task, dest, channel, -1.0, -1.0);
}

void MSG_task_put_with_timeout(m_task_t task, m_host_t dest, int channel, double timeout) {
  task_put_impl(task, dest, channel, timeout, -1.0);
}

void MSG_task_put_bounded(m_task_t task, m_host_t dest, int channel, double max_rate) {
  task_put_impl(task, dest, channel, -1.0, max_rate);
}

void MSG_task_get(m_task_t* task, int channel) { MSG_task_get_with_timeout(task, channel, -1.0); }

void MSG_task_get_with_timeout(m_task_t* task, int channel, double timeout) {
  if (task == nullptr)
    throw xbt::InvalidArgument("MSG_task_get: null out-parameter");
  void* payload = the_kernel().recv(channel_mailbox(self_host_index(), channel), timeout);
  *task = static_cast<m_task_t>(payload);
}

bool MSG_task_listen(int channel) {
  return the_kernel().comm_waiting(channel_mailbox(self_host_index(), channel));
}

void MSG_parallel_task_execute(const std::string& name, const std::vector<m_host_t>& hosts,
                               const std::vector<double>& flops,
                               const std::vector<std::vector<double>>& bytes) {
  (void)name;
  std::vector<int> host_indices;
  host_indices.reserve(hosts.size());
  for (const m_host_t& h : hosts)
    host_indices.push_back(h.index);
  the_kernel().execute_parallel(host_indices, flops, bytes);
}

}  // namespace sg::msg
