/// \file msg.hpp
/// The MSG interface — the paper's API "for rapid application prototyping to
/// test and evaluate distributed algorithms" (simulation mode only).
///
/// The abstraction matches the paper exactly:
///  * applications consist of processes, created/suspended/resumed/killed
///    dynamically;
///  * processes synchronize by exchanging tasks;
///  * a task has a computation payload (flops) and a communication payload
///    (bytes);
///  * all processes share one address space, so tasks carry arbitrary
///    pointers.
///
/// Function names mirror the 2006 MSG API so the paper's client/server
/// listing compiles almost verbatim (see examples/quickstart.cpp).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "kernel/kernel.hpp"
#include "platform/platform.hpp"

namespace sg::msg {

/// A host handle (index into the platform's host table).
struct m_host_t {
  int index = -1;
  bool valid() const { return index >= 0; }
  friend bool operator==(const m_host_t&, const m_host_t&) = default;
};

/// A task: named unit of work with a compute payload (flops) and a
/// communication payload (bytes). `data` travels with the task (all MSG
/// processes share the address space).
struct Task {
  std::string name;
  double compute_flops = 0;
  double comm_bytes = 0;
  void* data = nullptr;
  double priority = 1.0;
  m_host_t source;                 ///< filled in by MSG_task_put
  kernel::ActorId sender = -1;     ///< likewise
};
using m_task_t = Task*;

using ProcessFn = std::function<void()>;

// -- environment --------------------------------------------------------------

/// Initialize MSG on a platform. `channels` is the number of communication
/// ports available on every host (MSG_set_channel_number in historic MSG).
void MSG_init(platform::Platform platform, int channels = 16);

/// Tear down the global MSG instance (implicit at next MSG_init).
void MSG_clean();

/// Run the simulation until every process terminated. Returns final sim time.
double MSG_main();

/// Current simulated time.
double MSG_get_clock();

// -- hosts ---------------------------------------------------------------------

m_host_t MSG_get_host_by_name(const std::string& name);
int MSG_get_host_number();
m_host_t MSG_host_by_index(int index);
const std::string& MSG_host_get_name(m_host_t host);
/// Peak speed (flop/s) times current availability.
double MSG_host_get_speed(m_host_t host);
bool MSG_host_is_on(m_host_t host);
/// Host of the calling process.
m_host_t MSG_host_self();

// -- processes -------------------------------------------------------------------

kernel::ActorId MSG_process_create(const std::string& name, ProcessFn fn, m_host_t host,
                                   bool daemon = false, bool auto_restart = false);
kernel::ActorId MSG_process_self();
const std::string& MSG_process_get_name(kernel::ActorId pid);
void MSG_process_suspend(kernel::ActorId pid);
void MSG_process_resume(kernel::ActorId pid);
void MSG_process_kill(kernel::ActorId pid);
bool MSG_process_is_alive(kernel::ActorId pid);
void MSG_process_sleep(double duration);
[[noreturn]] void MSG_process_exit();

// -- tasks -----------------------------------------------------------------------

/// Create a task carrying `flops` of computation and `bytes` of data.
m_task_t MSG_task_create(const std::string& name, double flops, double bytes, void* data = nullptr);
void MSG_task_destroy(m_task_t task);

/// Execute the task's computation payload on the calling process's host.
void MSG_task_execute(m_task_t task);

/// Send the task to `dest` on the given channel; blocks until the receiver
/// has fully received it (rendezvous + transfer).
void MSG_task_put(m_task_t task, m_host_t dest, int channel);
void MSG_task_put_with_timeout(m_task_t task, m_host_t dest, int channel, double timeout);
/// Rate-capped variant (sender-side throttling).
void MSG_task_put_bounded(m_task_t task, m_host_t dest, int channel, double max_rate);

/// Receive a task on one of the calling host's channels; blocks until a task
/// arrives. Throws xbt::TimeoutException when the timeout expires first.
void MSG_task_get(m_task_t* task, int channel);
void MSG_task_get_with_timeout(m_task_t* task, int channel, double timeout);

/// True when a task is already queued on this channel of the calling host.
bool MSG_task_listen(int channel);

/// Simulate a parallel task over several hosts (amounts in flops; bytes[i][j]
/// transferred from hosts[i] to hosts[j]) — the paper's "parallel tasks"
/// resource-sharing feature.
void MSG_parallel_task_execute(const std::string& name, const std::vector<m_host_t>& hosts,
                               const std::vector<double>& flops,
                               const std::vector<std::vector<double>>& bytes);

/// Access to the underlying kernel (benches/tests hook the engine observer).
kernel::Kernel& MSG_kernel();

}  // namespace sg::msg
