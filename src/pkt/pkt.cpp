#include "pkt/pkt.hpp"

#include <algorithm>
#include <cmath>

#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(pkt, "packet-level network simulator");

namespace sg::pkt {

TcpParams TcpParams::ns2() {
  TcpParams p;
  p.init_cwnd_segments = 1;
  p.delayed_ack = false;
  // Buffers provisioned at bandwidth-delay scale, as in the era's validation
  // studies (tiny queues would exercise our simplified Reno's weakest spot —
  // go-back-N timeout recovery — rather than steady-state sharing).
  p.queue_limit_packets = 100;
  return p;
}

TcpParams TcpParams::gtnets() {
  TcpParams p;
  p.init_cwnd_segments = 2;
  p.delayed_ack = true;
  p.queue_limit_packets = 100;
  return p;
}

PacketNet::PacketNet(const platform::Platform& platform, TcpParams params)
    : params_(params), jitter_rng_(params.seed) {
  if (!platform.sealed())
    throw xbt::InvalidArgument("PacketNet: platform must be sealed");
  links_.resize(platform.link_count());
  for (size_t l = 0; l < platform.link_count(); ++l) {
    const auto& spec = platform.link(static_cast<platform::LinkId>(l));
    links_[l].bandwidth = spec.bandwidth_Bps;
    links_[l].delay = spec.latency_s;
  }
  // Routes are copied per flow at add_flow() time (we only need the platform
  // during construction of flows; store a pointer via lambda-free design).
  platform_ = &platform;
}

int PacketNet::add_flow(const FlowSpec& spec) {
  FlowState f;
  f.spec = spec;
  // Materialize the per-flow paths: packet forwarding indexes hops randomly,
  // and the RouteView is invalidated by the reverse-route resolution below.
  f.path = platform_->route(spec.src_host, spec.dst_host).links();
  if (f.path.empty())
    throw xbt::InvalidArgument("PacketNet: loopback flows are not simulated at packet level");
  f.rpath = platform_->route(spec.dst_host, spec.src_host).links();
  f.cwnd = params_.init_cwnd_segments * params_.mss;
  f.ssthresh = params_.init_ssthresh_segments * params_.mss;
  f.rto = params_.min_rto;
  flows_.push_back(std::move(f));
  results_.emplace_back();
  const int id = static_cast<int>(flows_.size() - 1);
  schedule(spec.start_time, EventKind::kFlowStart, id);
  return id;
}

void PacketNet::schedule(double time, EventKind kind, int index, std::uint64_t gen) {
  events_.push(Event{time, order_counter_++, kind, index, gen, Packet{}});
}

void PacketNet::schedule_arrival(double time, const Packet& pkt) {
  events_.push(Event{time, order_counter_++, EventKind::kArrival, -1, 0, pkt});
}

double PacketNet::packet_size(const Packet& pkt) const {
  return pkt.is_ack ? params_.header_bytes : pkt.payload + params_.header_bytes;
}

void PacketNet::enqueue_on_link(platform::LinkId link, const Packet& pkt) {
  LinkState& l = links_[static_cast<size_t>(link)];
  if (static_cast<int>(l.queue.size()) >= params_.queue_limit_packets) {
    ++drops_;
    return;  // drop-tail
  }
  l.queue.push_back(pkt);
  if (!l.busy)
    start_transmission(link);
}

void PacketNet::start_transmission(platform::LinkId link) {
  LinkState& l = links_[static_cast<size_t>(link)];
  if (l.queue.empty()) {
    l.busy = false;
    return;
  }
  l.busy = true;
  const double tx = packet_size(l.queue.front()) / l.bandwidth;
  schedule(now_ + tx, EventKind::kLinkDone, link);
}

void PacketNet::handle_link_done(int link) {
  LinkState& l = links_[static_cast<size_t>(link)];
  Packet pkt = l.queue.front();
  l.queue.pop_front();
  ++packets_forwarded_;
  // Propagation: the packet reaches the far end after the link delay.
  ++pkt.hop;
  const double jitter = params_.jitter > 0 ? jitter_rng_.uniform(0.0, params_.jitter) : 0.0;
  schedule_arrival(now_ + l.delay + jitter, pkt);
  start_transmission(link);
}

void PacketNet::handle_arrival(Packet& pkt) {
  FlowState& f = flows_[static_cast<size_t>(pkt.flow)];
  const auto& path = pkt.is_ack ? f.rpath : f.path;
  if (static_cast<size_t>(pkt.hop) < path.size()) {
    enqueue_on_link(path[static_cast<size_t>(pkt.hop)], pkt);
    return;
  }
  // Reached the endpoint.
  if (pkt.is_ack)
    sender_on_ack(f, pkt.flow, pkt.seq, pkt.sent_time);
  else
    receiver_on_data(f, pkt.flow, pkt);
}

void PacketNet::emit_data_packet(FlowState& f, int flow_id, std::int64_t seq) {
  Packet pkt;
  pkt.flow = flow_id;
  pkt.seq = seq;
  pkt.payload = static_cast<int>(
      std::min<std::int64_t>(static_cast<std::int64_t>(params_.mss),
                             static_cast<std::int64_t>(f.spec.bytes) - seq));
  pkt.is_ack = false;
  pkt.hop = 0;
  pkt.sent_time = now_;
  ++results_[static_cast<size_t>(flow_id)].packets_sent;
  enqueue_on_link(f.path[0], pkt);
}

void PacketNet::sender_try_send(FlowState& f, int flow_id) {
  const std::int64_t total = static_cast<std::int64_t>(f.spec.bytes);
  const double window = std::min(f.cwnd, params_.rcv_window_bytes);
  while (f.next_seq < total &&
         static_cast<double>(f.next_seq - f.highest_acked) < window) {
    emit_data_packet(f, flow_id, f.next_seq);
    f.next_seq += std::min<std::int64_t>(static_cast<std::int64_t>(params_.mss), total - f.next_seq);
  }
  if (!f.timer_armed && f.next_seq > f.highest_acked)
    arm_timer(f, flow_id);
}

void PacketNet::arm_timer(FlowState& f, int flow_id) {
  // Lazy restartable timer: one outstanding event; on fire, if ACK progress
  // happened since arming, the deadline just slides forward.
  if (f.timer_armed)
    return;
  f.timer_armed = true;
  ++f.timeout_gen;
  f.last_progress = now_;
  schedule(now_ + f.rto * f.rto_backoff, EventKind::kTimeout, flow_id, f.timeout_gen);
}

void PacketNet::sender_on_ack(FlowState& f, int flow_id, std::int64_t ackno, double sent_time) {
  if (f.done)
    return;
  if (ackno > f.highest_acked) {
    f.highest_acked = ackno;
    f.dupacks = 0;
    f.rto_backoff = 1.0;
    f.last_progress = now_;
    // RTT estimation (timestamp-style sample).
    const double sample = now_ - sent_time;
    f.srtt = (f.srtt < 0) ? sample : 0.875 * f.srtt + 0.125 * sample;
    f.rto = std::max(params_.min_rto, 2.0 * f.srtt);
    // Window growth.
    if (f.cwnd < f.ssthresh)
      f.cwnd += params_.mss;  // slow start
    else
      f.cwnd += params_.mss * params_.mss / f.cwnd;  // congestion avoidance
    if (f.highest_acked >= static_cast<std::int64_t>(f.spec.bytes)) {
      finish_flow(f, flow_id);
      return;
    }
    arm_timer(f, flow_id);
    sender_try_send(f, flow_id);
  } else {
    ++f.dupacks;
    if (f.dupacks == params_.dupack_threshold) {
      // Fast retransmit + Reno window halving.
      ++results_[static_cast<size_t>(flow_id)].retransmits;
      const double flight = static_cast<double>(f.next_seq - f.highest_acked);
      f.ssthresh = std::max(flight / 2.0, 2.0 * params_.mss);
      f.cwnd = f.ssthresh + 3 * params_.mss;
      emit_data_packet(f, flow_id, f.highest_acked);
      arm_timer(f, flow_id);
    } else if (f.dupacks > params_.dupack_threshold) {
      f.cwnd += params_.mss;  // window inflation during recovery
      sender_try_send(f, flow_id);
    }
  }
}

void PacketNet::receiver_on_data(FlowState& f, int flow_id, const Packet& pkt) {
  const std::int64_t end = pkt.seq + pkt.payload;
  bool in_order = false;
  if (pkt.seq <= f.rcv_next && end > f.rcv_next) {
    f.rcv_next = end;
    in_order = true;
    // Drain any out-of-order ranges now contiguous.
    bool merged = true;
    while (merged) {
      merged = false;
      for (auto it = f.ooo.begin(); it != f.ooo.end(); ++it) {
        if (it->first <= f.rcv_next && it->second > f.rcv_next) {
          f.rcv_next = it->second;
          f.ooo.erase(it);
          merged = true;
          break;
        }
        if (it->second <= f.rcv_next) {
          f.ooo.erase(it);
          merged = true;
          break;
        }
      }
    }
  } else if (pkt.seq > f.rcv_next) {
    f.ooo.emplace_back(pkt.seq, end);
  }
  // ACK policy: immediate ACK on out-of-order (dup ack); delayed ACK
  // coalesces every second in-order segment.
  if (!in_order) {
    send_ack(f, flow_id, pkt.sent_time);
    return;
  }
  if (params_.delayed_ack) {
    if (++f.unacked_in_order >= 2 || f.rcv_next >= static_cast<std::int64_t>(f.spec.bytes)) {
      f.unacked_in_order = 0;
      send_ack(f, flow_id, pkt.sent_time);
    }
  } else {
    send_ack(f, flow_id, pkt.sent_time);
  }
}

void PacketNet::send_ack(FlowState& f, int flow_id, double echo_time) {
  Packet ack;
  ack.flow = flow_id;
  ack.seq = f.rcv_next;
  ack.payload = 0;
  ack.is_ack = true;
  ack.hop = 0;
  // Timestamp echo: carry the triggering data packet's send time so the
  // sender can sample a full RTT.
  ack.sent_time = echo_time;
  enqueue_on_link(f.rpath[0], ack);
}

void PacketNet::handle_timeout(FlowState& f, int flow_id) {
  if (f.done)
    return;
  f.timer_armed = false;
  if (f.highest_acked >= f.next_seq)
    return;  // everything acked meanwhile
  // Progress since arming: slide the deadline instead of firing.
  const double deadline = f.last_progress + f.rto * f.rto_backoff;
  if (now_ + 1e-12 < deadline) {
    f.timer_armed = true;
    ++f.timeout_gen;
    schedule(deadline, EventKind::kTimeout, flow_id, f.timeout_gen);
    return;
  }
  ++results_[static_cast<size_t>(flow_id)].timeouts;
  const double flight = static_cast<double>(f.next_seq - f.highest_acked);
  f.ssthresh = std::max(flight / 2.0, 2.0 * params_.mss);
  f.cwnd = params_.mss;
  f.next_seq = f.highest_acked;  // go-back-N
  f.dupacks = 0;
  f.rto_backoff = std::min(f.rto_backoff * 2.0, 64.0);
  sender_try_send(f, flow_id);
}

void PacketNet::finish_flow(FlowState& f, int flow_id) {
  f.done = true;
  FlowResult& r = results_[static_cast<size_t>(flow_id)];
  r.finished = true;
  r.finish_time = now_;
  r.bytes = f.spec.bytes;
  const double duration = now_ - f.spec.start_time;
  r.throughput = duration > 0 ? f.spec.bytes / duration : 0;
  ++flows_done_;
}

double PacketNet::run(double until) {
  while (!events_.empty() && flows_done_ < flows_.size()) {
    Event ev = events_.top();
    if (ev.time > until) {
      now_ = until;
      return now_;
    }
    events_.pop();
    now_ = std::max(now_, ev.time);
    ++events_processed_;
    switch (ev.kind) {
      case EventKind::kFlowStart: {
        FlowState& f = flows_[static_cast<size_t>(ev.index)];
        if (f.spec.bytes <= 0) {
          finish_flow(f, ev.index);
          break;
        }
        sender_try_send(f, ev.index);
        break;
      }
      case EventKind::kLinkDone:
        handle_link_done(ev.index);
        break;
      case EventKind::kArrival:
        handle_arrival(ev.packet);
        break;
      case EventKind::kTimeout: {
        FlowState& f = flows_[static_cast<size_t>(ev.index)];
        if (ev.gen == f.timeout_gen)
          handle_timeout(f, ev.index);
        break;
      }
    }
  }
  return now_;
}

}  // namespace sg::pkt
