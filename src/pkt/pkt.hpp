/// \file pkt.hpp
/// Packet-level network simulation — our in-tree stand-in for NS2 / GTNetS,
/// against which the paper validates SURF's MaxMin fluid model ("For
/// short-lived flows, one can use more accurate, but more expensive,
/// packet-level simulation").
///
/// The model: store-and-forward links with drop-tail queues (one queue per
/// link, shared by both directions, mirroring the fluid model's single
/// shared resource per link), and TCP-Reno flows: slow start, congestion
/// avoidance, triple-duplicate-ACK fast retransmit, and RTO with exponential
/// backoff. Two parameter presets ("ns2", "gtnets") play the role of the two
/// packet simulators compared in the paper.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "xbt/random.hpp"

namespace sg::pkt {

struct TcpParams {
  double mss = 1460.0;          ///< TCP payload bytes per segment
  double header_bytes = 40.0;   ///< TCP/IP header per packet (and ACK size)
  int init_cwnd_segments = 2;
  double init_ssthresh_segments = 64.0;
  double rcv_window_bytes = 65536.0;  ///< flow-control cap on in-flight data
  int dupack_threshold = 3;
  double min_rto = 0.2;
  bool delayed_ack = false;     ///< ACK every 2nd in-order segment
  int queue_limit_packets = 100;
  /// Small random per-hop processing delay (uniform in [0, jitter]); breaks
  /// the phase-effect lockout of synchronized flows, as real stacks do.
  double jitter = 2e-6;
  std::uint64_t seed = 1;       ///< jitter PRNG seed (simulation stays deterministic)

  /// NS2-flavoured defaults (initial window 1, no delayed ACKs, short queues).
  static TcpParams ns2();
  /// GTNetS-flavoured defaults (initial window 2, delayed ACKs, longer queues).
  static TcpParams gtnets();
};

struct FlowSpec {
  int src_host = 0;
  int dst_host = 0;
  double bytes = 0;
  double start_time = 0;
};

struct FlowResult {
  bool finished = false;
  double finish_time = std::numeric_limits<double>::quiet_NaN();
  double bytes = 0;
  /// Average goodput bytes/s over [start, finish].
  double throughput = 0;
  long packets_sent = 0;
  long retransmits = 0;
  long timeouts = 0;
};

/// One packet-level simulation over a platform's topology. Uses the same
/// routes as the fluid model, so a validation run compares *models*, not
/// topologies.
class PacketNet {
public:
  PacketNet(const platform::Platform& platform, TcpParams params);

  /// Register a TCP flow; returns its id.
  int add_flow(const FlowSpec& spec);

  /// Run until all flows finish (or `until`, if finite, is reached).
  /// Returns the final simulation time.
  double run(double until = std::numeric_limits<double>::infinity());

  double now() const { return now_; }
  const FlowResult& result(int flow) const { return results_.at(static_cast<size_t>(flow)); }
  size_t flow_count() const { return flows_.size(); }

  long total_packets_forwarded() const { return packets_forwarded_; }
  long total_drops() const { return drops_; }
  /// Number of events processed (the "cost" of packet-level accuracy).
  long events_processed() const { return events_processed_; }

private:
  struct Packet {
    int flow = -1;
    std::int64_t seq = 0;      ///< first payload byte (data) / cumulative ack (ack)
    int payload = 0;           ///< payload bytes (0 for pure ACK)
    bool is_ack = false;
    int hop = 0;               ///< index into the flow's link path
    double sent_time = 0;      ///< original transmission time (RTT sampling)
  };

  enum class EventKind { kFlowStart, kLinkDone, kArrival, kTimeout };
  struct Event {
    double time;
    std::uint64_t order;  ///< FIFO tie-break
    EventKind kind;
    int index;            ///< flow (start/timeout) or link (link-done)
    std::uint64_t gen;    ///< timeout generation
    Packet packet;        ///< for arrivals
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : order > o.order;
    }
  };

  struct LinkState {
    double bandwidth;  ///< bytes/s
    double delay;
    std::deque<Packet> queue;
    bool busy = false;
  };

  struct FlowState {
    FlowSpec spec;
    std::vector<platform::LinkId> path;     ///< forward route
    std::vector<platform::LinkId> rpath;    ///< reverse route (ACKs)
    // sender
    double cwnd = 0;
    double ssthresh = 0;
    std::int64_t next_seq = 0;
    std::int64_t highest_acked = 0;
    int dupacks = 0;
    double srtt = -1;
    double rto = 0.2;
    double rto_backoff = 1.0;
    double last_progress = 0;  ///< time of last forward ACK progress
    std::uint64_t timeout_gen = 0;
    bool timer_armed = false;
    bool done = false;
    // receiver
    std::int64_t rcv_next = 0;
    std::vector<std::pair<std::int64_t, std::int64_t>> ooo;  ///< out-of-order ranges
    int unacked_in_order = 0;  ///< delayed-ACK counter
  };

  void schedule(double time, EventKind kind, int index, std::uint64_t gen = 0);
  void schedule_arrival(double time, const Packet& pkt);
  void enqueue_on_link(platform::LinkId link, const Packet& pkt);
  void start_transmission(platform::LinkId link);
  void handle_link_done(int link);
  void handle_arrival(Packet& pkt);
  void sender_try_send(FlowState& f, int flow_id);
  void sender_on_ack(FlowState& f, int flow_id, std::int64_t ackno, double sent_time);
  void receiver_on_data(FlowState& f, int flow_id, const Packet& pkt);
  void send_ack(FlowState& f, int flow_id, double echo_time);
  void handle_timeout(FlowState& f, int flow_id);
  void arm_timer(FlowState& f, int flow_id);
  void emit_data_packet(FlowState& f, int flow_id, std::int64_t seq);
  void finish_flow(FlowState& f, int flow_id);
  double packet_size(const Packet& pkt) const;

  TcpParams params_;
  xbt::Rng jitter_rng_;
  const platform::Platform* platform_ = nullptr;
  std::vector<LinkState> links_;
  std::vector<FlowState> flows_;
  std::vector<FlowResult> results_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0;
  std::uint64_t order_counter_ = 0;
  size_t flows_done_ = 0;
  long packets_forwarded_ = 0;
  long drops_ = 0;
  long events_processed_ = 0;
};

}  // namespace sg::pkt
