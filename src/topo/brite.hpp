/// \file brite.hpp
/// Random topology generation in the style of the BRITE generator, which the
/// paper uses for its validation experiment ("Random topology generated with
/// BRITE (random bandwidths and latencies)"), plus import/export of a
/// BRITE-compatible file format and conversion to a sg::platform::Platform.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "xbt/random.hpp"

namespace sg::topo {

struct TopoNode {
  double x = 0;
  double y = 0;
};

struct TopoEdge {
  int from = 0;
  int to = 0;
  double bandwidth_Bps = 0;  ///< assigned capacity
  double latency_s = 0;      ///< propagation delay (from Euclidean length)
};

struct Topology {
  std::vector<TopoNode> nodes;
  std::vector<TopoEdge> edges;
};

/// Parameters of the Waxman growth model as BRITE implements it.
struct WaxmanSpec {
  int n_nodes = 10;
  int m_edges_per_node = 2;     ///< new node connects to m existing nodes
  double alpha = 0.25;          ///< Waxman alpha (edge probability scale)
  double beta = 0.35;           ///< Waxman beta (distance sensitivity)
  double plane_size = 1000.0;   ///< nodes placed in [0,plane)^2
  double bw_min_Bps = 1.25e6;   ///< random capacity lower bound (10 Mb/s)
  double bw_max_Bps = 1.25e7;   ///< random capacity upper bound (100 Mb/s)
  double latency_per_unit = 1e-6;  ///< seconds of delay per plane distance unit
  std::uint64_t seed = 42;
};

/// Generate a connected Waxman topology. New nodes attach to m existing
/// nodes sampled with probability proportional to alpha*exp(-d/(beta*L)),
/// which is BRITE's incremental Waxman variant and guarantees connectivity.
Topology generate_waxman(const WaxmanSpec& spec);

/// Serialize to a BRITE-style file ("Topology:", "Nodes:", "Edges:" sections).
std::string export_brite(const Topology& topo);

/// Parse a BRITE-style file produced by export_brite (also tolerates the
/// original BRITE column layout).
Topology import_brite(const std::string& text);

/// Convert to a platform: every topology node becomes a host named
/// "<prefix><i>" with the given speed; every edge becomes a shared link.
/// Routing is derived from the graph (latency-shortest paths).
platform::Platform to_platform(const Topology& topo, const std::string& prefix = "node",
                               double host_speed = 1e9);

/// Import the topology into an existing platform as a Dijkstra (graph) zone
/// named `prefix`: hosts/links/edges are created as in to_platform() and the
/// hosts become zone members, routed through the flat graph exactly as
/// unzoned hosts are — including traffic from cluster zones, which runs
/// Dijkstra from the cluster gateway straight to the member. The node at
/// `gateway_index` is recorded as the zone's conventional attach point
/// (zone_gateway() introspection; connect cluster gateways or WAN links to
/// it with add_edge) but does not constrain routing. Returns the zone id.
platform::ZoneId add_to_platform(platform::Platform& p, const Topology& topo,
                                 const std::string& prefix, double host_speed = 1e9,
                                 int gateway_index = 0);

}  // namespace sg::topo
