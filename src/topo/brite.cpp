#include "topo/brite.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "xbt/exception.hpp"
#include "xbt/str.hpp"

namespace sg::topo {

Topology generate_waxman(const WaxmanSpec& spec) {
  if (spec.n_nodes < 2)
    throw xbt::InvalidArgument("waxman: need at least 2 nodes");
  xbt::Rng rng(spec.seed);
  Topology topo;
  topo.nodes.reserve(static_cast<size_t>(spec.n_nodes));
  for (int i = 0; i < spec.n_nodes; ++i)
    topo.nodes.push_back({rng.uniform(0, spec.plane_size), rng.uniform(0, spec.plane_size)});

  const double max_dist = spec.plane_size * std::sqrt(2.0);
  auto dist = [&](int a, int b) {
    const double dx = topo.nodes[static_cast<size_t>(a)].x - topo.nodes[static_cast<size_t>(b)].x;
    const double dy = topo.nodes[static_cast<size_t>(a)].y - topo.nodes[static_cast<size_t>(b)].y;
    return std::sqrt(dx * dx + dy * dy);
  };

  for (int i = 1; i < spec.n_nodes; ++i) {
    const int m = std::min(spec.m_edges_per_node, i);
    // Waxman-weighted sampling without replacement among nodes [0, i).
    std::vector<double> weight(static_cast<size_t>(i));
    for (int j = 0; j < i; ++j)
      weight[static_cast<size_t>(j)] = spec.alpha * std::exp(-dist(i, j) / (spec.beta * max_dist));
    std::set<int> chosen;
    while (static_cast<int>(chosen.size()) < m) {
      double total = 0;
      for (int j = 0; j < i; ++j)
        if (!chosen.count(j))
          total += weight[static_cast<size_t>(j)];
      double pick = rng.uniform01() * total;
      int sel = -1;
      for (int j = 0; j < i; ++j) {
        if (chosen.count(j))
          continue;
        pick -= weight[static_cast<size_t>(j)];
        if (pick <= 0) {
          sel = j;
          break;
        }
      }
      if (sel < 0) {  // numerical fallthrough: take the last free node
        for (int j = i - 1; j >= 0; --j)
          if (!chosen.count(j)) {
            sel = j;
            break;
          }
      }
      chosen.insert(sel);
    }
    for (int j : chosen) {
      TopoEdge e;
      e.from = j;
      e.to = i;
      e.bandwidth_Bps = rng.uniform(spec.bw_min_Bps, spec.bw_max_Bps);
      e.latency_s = dist(i, j) * spec.latency_per_unit;
      topo.edges.push_back(e);
    }
  }
  return topo;
}

std::string export_brite(const Topology& topo) {
  std::ostringstream out;
  out.precision(17);  // lossless double round-trip
  out << "Topology: ( " << topo.nodes.size() << " Nodes, " << topo.edges.size() << " Edges )\n";
  out << "Model ( 2 ): Waxman\n\n";
  out << "Nodes: ( " << topo.nodes.size() << " )\n";
  for (size_t i = 0; i < topo.nodes.size(); ++i)
    out << i << " " << topo.nodes[i].x << " " << topo.nodes[i].y << " 0 0 0 RT_NODE\n";
  out << "\nEdges: ( " << topo.edges.size() << " )\n";
  for (size_t i = 0; i < topo.edges.size(); ++i) {
    const TopoEdge& e = topo.edges[i];
    const double dx = topo.nodes[static_cast<size_t>(e.from)].x - topo.nodes[static_cast<size_t>(e.to)].x;
    const double dy = topo.nodes[static_cast<size_t>(e.from)].y - topo.nodes[static_cast<size_t>(e.to)].y;
    const double length = std::sqrt(dx * dx + dy * dy);
    // id from to length delay bandwidth as_from as_to type
    out << i << " " << e.from << " " << e.to << " " << length << " " << e.latency_s << " "
        << e.bandwidth_Bps << " 0 0 E_RT\n";
  }
  return out.str();
}

Topology import_brite(const std::string& text) {
  Topology topo;
  std::istringstream in(text);
  std::string line;
  enum class Section { none, nodes, edges } section = Section::none;
  while (std::getline(in, line)) {
    const std::string t = xbt::trim(line);
    if (t.empty())
      continue;
    if (xbt::starts_with(t, "Nodes:")) {
      section = Section::nodes;
      continue;
    }
    if (xbt::starts_with(t, "Edges:")) {
      section = Section::edges;
      continue;
    }
    if (xbt::starts_with(t, "Topology:") || xbt::starts_with(t, "Model"))
      continue;
    auto tokens = xbt::split_ws(t);
    if (section == Section::nodes) {
      if (tokens.size() < 3)
        throw xbt::InvalidArgument("brite: bad node line: " + t);
      const size_t id = std::stoul(tokens[0]);
      if (topo.nodes.size() <= id)
        topo.nodes.resize(id + 1);
      topo.nodes[id] = {std::stod(tokens[1]), std::stod(tokens[2])};
    } else if (section == Section::edges) {
      if (tokens.size() < 6)
        throw xbt::InvalidArgument("brite: bad edge line: " + t);
      TopoEdge e;
      e.from = std::stoi(tokens[1]);
      e.to = std::stoi(tokens[2]);
      e.latency_s = std::stod(tokens[4]);
      e.bandwidth_Bps = std::stod(tokens[5]);
      topo.edges.push_back(e);
    }
  }
  if (topo.nodes.empty())
    throw xbt::InvalidArgument("brite: no Nodes section found");
  return topo;
}

namespace {
std::vector<platform::NodeId> add_topology(platform::Platform& p, const Topology& topo,
                                           const std::string& prefix, double host_speed) {
  std::vector<platform::NodeId> ids;
  ids.reserve(topo.nodes.size());
  for (size_t i = 0; i < topo.nodes.size(); ++i)
    ids.push_back(p.add_host(xbt::format("%s%zu", prefix.c_str(), i), host_speed));
  for (size_t i = 0; i < topo.edges.size(); ++i) {
    const TopoEdge& e = topo.edges[i];
    const platform::LinkId l =
        p.add_link(xbt::format("%s-l%zu", prefix.c_str(), i), e.bandwidth_Bps, e.latency_s);
    p.add_edge(ids[static_cast<size_t>(e.from)], ids[static_cast<size_t>(e.to)], l);
  }
  return ids;
}
}  // namespace

platform::Platform to_platform(const Topology& topo, const std::string& prefix, double host_speed) {
  platform::Platform p;
  add_topology(p, topo, prefix, host_speed);
  p.seal();
  return p;
}

platform::ZoneId add_to_platform(platform::Platform& p, const Topology& topo,
                                 const std::string& prefix, double host_speed, int gateway_index) {
  if (gateway_index < 0 || static_cast<size_t>(gateway_index) >= topo.nodes.size())
    throw xbt::InvalidArgument("add_to_platform: gateway index out of range");
  const std::vector<platform::NodeId> ids = add_topology(p, topo, prefix, host_speed);
  const platform::ZoneId zone =
      p.add_graph_zone(prefix, ids[static_cast<size_t>(gateway_index)]);
  for (platform::NodeId n : ids)
    p.zone_add_host(zone, p.host_index(n));
  return zone;
}

}  // namespace sg::topo
