#include "core/engine.hpp"

#include <algorithm>
#include <cmath>

#include "core/workers.hpp"
#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"
#include "xbt/str.hpp"

SG_LOG_NEW_CATEGORY(surf, "SURF simulation engine");

namespace sg::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-12;

/// Time tolerance at date t: completions planned within this window of the
/// step target fire now. Relative so that `target - now_` cancellation noise
/// (~DBL_EPSILON * now) can never strand an action with an un-completable
/// remainder.
inline double time_eps_at(double t) { return 1e-9 * std::max(1.0, std::abs(t)); }

/// Default display names, indexed by ActionKind. Actions created with these
/// names (the overwhelming majority) occupy no slot in the name side table.
const std::string kDefaultNames[] = {"exec", "comm", "ptask", "sleep"};

/// "host X departed at t=…" for activity starts on a host that left the
/// platform — distinct from the transient "is down" of a state flap.
[[noreturn]] void throw_host_departed(const char* what, const platform::Platform& pf, int host) {
  throw xbt::HostFailureException(std::string(what) + ": host " + pf.host(host).name +
                                  " departed at t=" + xbt::format("%g", pf.host_departed_at(host)) +
                                  " (rejoin_host() restores it)");
}
}  // namespace

void declare_engine_config() {
  config::declare(kCfgTcpGamma, 65536.0,
                  "TCP window size (bytes); flow rate is capped at gamma / (2 * route latency)");
  config::declare(kCfgBandwidthFactor, 1460.0 / 1500.0,
                  "fraction of nominal link bandwidth usable as goodput (TCP/IP header overhead)");
  config::declare(kCfgLoopbackBw, 1e10, "intra-host communication bandwidth, B/s");
  config::declare(kCfgLoopbackLat, 1e-7, "intra-host communication latency, s");
  config::declare(kCfgSharding,
                  true,
                  "partition the solver and event heaps by platform zone (off: one global shard); "
                  "results are identical either way");
  config::declare(kCfgKillTransitComms,
                  false,
                  "a host's death also fails every comm it is an endpoint of (L07-style); "
                  "off keeps CM02 semantics where transit comms outlive their endpoints");
  config::declare(kCfgThreads, 1, 1, 256,
                  "worker threads for per-shard stepping, clamped to the shard count "
                  "(1 = serial; results are identical at any value)",
                  "SG_THREADS");
  config::declare(kCfgParallelActors, false,
                  "resume actor contexts on the engine/threads worker lanes (one lane "
                  "drains the run-queue shards it owns); off = serial scheduling on the "
                  "maestro; the observable schedule is identical either way",
                  "SG_PARALLEL_ACTORS");
  config::declare(kCfgProfile, false,
                  "collect per-phase wall times and per-lane fan-out occupancy in "
                  "run_until() (read through Engine::phase_stats()); small constant "
                  "overhead per round, no effect on results",
                  "SG_PROFILE");
}

/// Per-shard state co-owned by the engine and (via the allocator copy in
/// every control block) by each of that shard's actions: the LIFO block
/// recycler and the lazily-populated name side table. Living here rather
/// than in the Engine keeps both safe for ActionPtrs that outlive their
/// engine; having one per shard lets every worker lane allocate and free
/// only through its own shards' pools, lock-free.
///
/// The recycler serves the single block size allocate_shared<ConcreteAction>
/// requests (action + control block fused). Steady-state churn re-uses the
/// block freed by the previous event — still cache-hot — instead of paying a
/// malloc/free round-trip and pulling cold lines per action.
struct ActionBlockPool {
  /// Cap on retained free blocks (~10 MB at typical block sizes): beyond a
  /// concurrency spike of this size, freed blocks go back to the allocator
  /// instead of pinning peak memory for the rest of the run.
  static constexpr size_t kMaxFreeBlocks = 64 * 1024;
  std::vector<void*> free_blocks;
  size_t block_bytes = 0;  ///< learned from the first allocation
  /// Custom display names (see Engine::set_action_name); actions created
  /// with their kind's default name have no entry.
  std::unordered_map<const Action*, std::string> names;

  ~ActionBlockPool() {
    for (void* p : free_blocks)
      ::operator delete(p);
  }
  void* allocate(size_t bytes) {
    if (bytes == block_bytes && !free_blocks.empty()) {
      void* p = free_blocks.back();
      free_blocks.pop_back();
      return p;
    }
    if (block_bytes == 0)
      block_bytes = bytes;
    return ::operator new(bytes);
  }
  void deallocate(void* p, size_t bytes) {
    if (bytes == block_bytes && free_blocks.size() < kMaxFreeBlocks) {
      free_blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }
};

// ---------------------------------------------------------------------------
// Action methods (need Engine internals)
// ---------------------------------------------------------------------------

Action::Action(Engine* engine, ActionKind kind, double total, double priority)
    : engine_(engine),
      remaining_(total),
      kind_(kind),
      priority_(priority),
      total_(total),
      start_time_(engine->now()) {}

Action::~Action() {
  // The name side table lives in the block pool, which this action's
  // control block co-owns (the allocator stored there holds a shared_ptr
  // and is destroyed only after this destructor runs) — so the erase is
  // safe even for an ActionPtr that outlives its engine.
  if (has_name_)
    pool_->names.erase(this);
}

const std::string& Action::name() const {
  if (has_name_) {
    auto it = pool_->names.find(this);
    if (it != pool_->names.end())
      return it->second;
  }
  return kDefaultNames[static_cast<size_t>(kind_)];
}

void Action::suspend() {
  if (state_ != ActionState::kRunning)
    return;
  engine_->sync_progress(*this);  // freeze progress at the suspension date
  state_ = ActionState::kSuspended;
  if (var_ >= 0 && !in_latency_phase_)
    engine_->sys_.set_weight(var_, 0.0);
  if (kind_ == ActionKind::kSleep)
    rate_ = 0.0;
  engine_->orphan_heap_entry(*this);  // completion date is now +inf
  engine_->notify(*this, ActionState::kRunning, ActionState::kSuspended);
}

void Action::resume() {
  if (state_ != ActionState::kSuspended)
    return;
  engine_->sync_progress(*this);  // restart the progress clock at now
  state_ = ActionState::kRunning;
  if (var_ >= 0 && !in_latency_phase_)
    engine_->sys_.set_weight(var_, priority_);
  if (kind_ == ActionKind::kSleep)
    rate_ = 1.0;
  // rate_ still holds the pre-suspension allocation; if the solver zeroed it
  // meanwhile, the post-resume solve will report the change and reschedule.
  engine_->schedule_completion(
      engine_->shards_[static_cast<size_t>(shard_)].running[run_idx_]);
  engine_->notify(*this, ActionState::kSuspended, ActionState::kRunning);
}

void Action::cancel() {
  if (state_ != ActionState::kRunning && state_ != ActionState::kSuspended)
    return;
  engine_->finish_action(engine_->shards_[static_cast<size_t>(shard_)].running[run_idx_],
                         ActionState::kCanceled, nullptr);
}

double Action::remaining() const {
  if (state_ != ActionState::kRunning || in_latency_phase_ || rate_ <= 0)
    return remaining_;
  return std::max(0.0, remaining_ - rate_ * (engine_->now_ - last_update_));
}

double Action::latency_remaining() const {
  if (state_ != ActionState::kRunning || !in_latency_phase_)
    return latency_remaining_;
  return std::max(0.0, latency_remaining_ - (engine_->now_ - last_update_));
}

void Action::set_priority(double priority) {
  priority_ = priority;
  if (var_ >= 0 && !in_latency_phase_ && state_ == ActionState::kRunning)
    engine_->sys_.set_weight(var_, priority);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {
/// Shell that exposes Action's protected constructor so allocate_shared can
/// fuse the control block and the action into one pooled block (one
/// allocation per action, and the refcount lands next to the hot fields).
struct ConcreteAction : Action {
  ConcreteAction(Engine* engine, ActionKind kind, double total, double priority)
      : Action(engine, kind, total, priority) {}
};

/// Routes allocate_shared through a shard's block pool. Holds the pool by
/// shared_ptr: the copy stored in each control block keeps the pool alive
/// until the last action is gone.
template <typename T>
struct PoolAllocator {
  using value_type = T;
  std::shared_ptr<ActionBlockPool> pool;

  explicit PoolAllocator(std::shared_ptr<ActionBlockPool> p) : pool(std::move(p)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool(other.pool) {}

  T* allocate(size_t n) { return static_cast<T*>(pool->allocate(n * sizeof(T))); }
  void deallocate(T* p, size_t n) { pool->deallocate(p, n * sizeof(T)); }
  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool == other.pool;
  }
};

ActionPtr make_action(const std::shared_ptr<ActionBlockPool>& pool, Engine* engine, ActionKind kind,
                      double total, double priority) {
  return std::allocate_shared<ConcreteAction>(PoolAllocator<ConcreteAction>(pool), engine, kind, total,
                                              priority);
}
}  // namespace

void Engine::set_action_name(Action* action, const std::string& name) {
  if (name == kDefaultNames[static_cast<size_t>(action->kind_)])
    return;
  // The name lives in the action's shard's pool (shard_ must be set first).
  ActionBlockPool& pool = *shards_[static_cast<size_t>(action->shard_)].pool;
  pool.names[action] = name;
  action->pool_ = &pool;
  action->has_name_ = true;
}

Engine::Engine(platform::Platform platform) : platform_(std::move(platform)) {
  if (!platform_.sealed())
    platform_.seal();
  declare_engine_config();
  tcp_gamma_ = config::get(kCfgTcpGamma);
  bandwidth_factor_ = config::get(kCfgBandwidthFactor);
  loopback_bw_ = config::get(kCfgLoopbackBw);
  loopback_lat_ = config::get(kCfgLoopbackLat);
  kill_transit_comms_ = config::get(kCfgKillTransitComms);

  // Size the solver shards and event heaps from the platform's shard map
  // (zones + backbone); engine/sharding=0 collapses everything into one
  // global shard — bit-for-bit the pre-sharding behaviour.
  const platform::ShardMap& smap = platform_.shard_map();
  const bool sharding = config::get(kCfgSharding);
  const int n_shards = sharding ? smap.shard_count : 1;
  sys_.init_shards(n_shards);
  shards_.resize(static_cast<size_t>(n_shards));
  for (ShardState& ss : shards_)
    ss.pool = std::make_shared<ActionBlockPool>();

  // Worker lanes: more threads than shards would idle, so clamp. The pool is
  // only spun up when it can actually be used.
  const long threads = config::get(kCfgThreads);
  lanes_ = static_cast<int>(std::clamp<long>(threads, 1, n_shards));
  if (lanes_ > 1)
    workers_ = std::make_unique<ShardWorkers>(lanes_);
  lane_scratch_ = std::vector<LaneScratch>(static_cast<size_t>(lanes_));
  heap_tree_.reset(2 * n_shards);
  trace_tree_.reset(n_shards);
  profile_ = config::get(kCfgProfile);
  if (profile_)
    probe_ = std::make_unique<PhaseProbe>(lanes_);

  hosts_.resize(platform_.host_count());
  for (size_t h = 0; h < platform_.host_count(); ++h) {
    const auto& spec = platform_.host(static_cast<int>(h));
    HostRes& res = hosts_[h];
    if (!spec.availability.empty())
      res.scale = spec.availability.value_at(0.0);
    if (!spec.state.empty())
      res.on = spec.state.value_at(0.0) > 0.5;
    res.shard = sharding ? smap.host_shard[h] : 0;
    res.cnst = sys_.new_constraint_in(res.shard, res.on ? spec.speed_flops * res.scale : 0.0,
                                      /*shared=*/true);
  }
  links_.resize(platform_.link_count());
  for (size_t l = 0; l < platform_.link_count(); ++l) {
    const auto& spec = platform_.link(static_cast<platform::LinkId>(l));
    LinkRes& res = links_[l];
    if (!spec.availability.empty())
      res.scale = spec.availability.value_at(0.0);
    if (!spec.state.empty())
      res.on = spec.state.value_at(0.0) > 0.5;
    res.shard = sharding ? smap.link_shard[l] : 0;
    res.cnst = sys_.new_constraint_in(res.shard,
                                      res.on ? spec.bandwidth_Bps * res.scale * bandwidth_factor_ : 0.0,
                                      spec.policy == platform::SharingPolicy::kShared);
  }
  schedule_trace_events();
}

Engine::~Engine() = default;

std::int32_t Engine::trace_shard(TraceEvent::Kind kind, int index) const {
  if (kind == TraceEvent::Kind::kHostAvail || kind == TraceEvent::Kind::kHostState)
    return hosts_[static_cast<size_t>(index)].shard;
  return links_[static_cast<size_t>(index)].shard;
}

void Engine::schedule_trace_events() {
  for (size_t h = 0; h < platform_.host_count(); ++h) {
    const auto& spec = platform_.host(static_cast<int>(h));
    if (!spec.availability.empty())
      schedule_next(spec.availability, TraceEvent::Kind::kHostAvail, static_cast<int>(h), 0.0);
    if (!spec.state.empty())
      schedule_next(spec.state, TraceEvent::Kind::kHostState, static_cast<int>(h), 0.0);
  }
  for (size_t l = 0; l < platform_.link_count(); ++l) {
    const auto& spec = platform_.link(static_cast<platform::LinkId>(l));
    if (!spec.availability.empty())
      schedule_next(spec.availability, TraceEvent::Kind::kLinkAvail, static_cast<int>(l), 0.0);
    if (!spec.state.empty())
      schedule_next(spec.state, TraceEvent::Kind::kLinkState, static_cast<int>(l), 0.0);
  }
}

void Engine::schedule_next(const trace::Trace& trace, TraceEvent::Kind kind, int index, double after) {
  auto next = trace.next_event_after(after);
  if (next) {
    const std::int32_t shard = trace_shard(kind, index);
    shards_[static_cast<size_t>(shard)].traces.push(
        TraceEvent{next->time, kind, index, next->value});
    mark_heads_dirty(shard);
  }
}

double Engine::next_trace_time() {
  // trace_tree_ leaves hold the RAW next trace dates; clamping the winner to
  // now() afterwards is equivalent to clamping every leaf (max-of-min
  // commutes with a shared bound) and keeps the leaves update-stable.
  sync_head_trees();
  return std::max(trace_tree_.min_key(), now_);
}

void Engine::mark_heads_dirty(int shard) {
  ShardState& ss = shards_[static_cast<size_t>(shard)];
  if (ss.heads_dirty)
    return;
  ss.heads_dirty = true;
  // Each shard is only ever touched by the maestro or by its canonical lane
  // (the advance fan-out buckets due shards by lane_of), so this append
  // never races: a lane writes only its own dirty list.
  lane_scratch_[static_cast<size_t>(ShardWorkers::lane_of(shard, lanes_))].dirty.push_back(shard);
}

void Engine::sync_head_trees() {
  // Leaf values are pure functions of the shards' current heads, so the
  // refresh order (lane-major here) cannot affect the trees' final state.
  for (LaneScratch& ls : lane_scratch_) {
    for (const std::int32_t shard : ls.dirty) {
      ShardState& ss = shards_[static_cast<size_t>(shard)];
      ss.heads_dirty = false;
      heap_tree_.update(2 * shard, ss.events.latency.head_lb);
      heap_tree_.update(2 * shard + 1, ss.events.completion.head_lb);
      trace_tree_.update(shard, ss.traces.empty() ? kInf : ss.traces.top().time);
    }
    ls.dirty.clear();
  }
}

ActionPtr Engine::exec_start(int host, double flops, double priority) {
  return exec_start_impl(host, flops, priority, nullptr);
}

ActionPtr Engine::exec_start(int host, double flops, double priority, const std::string& name) {
  return exec_start_impl(host, flops, priority, &name);
}

ActionPtr Engine::exec_start_impl(int host, double flops, double priority, const std::string* name) {
  HostRes& res = hosts_.at(static_cast<size_t>(host));
  if (!res.on) {
    if (!platform_.host_present(host))
      throw_host_departed("exec_start", platform_, host);
    throw xbt::HostFailureException("exec_start: host " + platform_.host(host).name + " is down");
  }
  auto action = make_action(shards_[static_cast<size_t>(res.shard)].pool, this, ActionKind::kExec,
                            flops, priority);
  action->host_ = host;
  action->shard_ = res.shard;
  if (name != nullptr)
    set_action_name(action.get(), *name);  // before notify: observers read name()
  bind_var(action.get(), sys_.new_variable(priority));
  sys_.expand(res.cnst, action->var_, 1.0);
  add_running(action);
  if (action->remaining_ <= 0)
    schedule_completion(action);  // zero work: completes now even if starved
  notify(*action, ActionState::kRunning, ActionState::kRunning);
  SG_DEBUG(surf, "exec_start on %s: %.0f flops", platform_.host(host).name.c_str(), flops);
  return action;
}

ShardedMaxMin::CnstId Engine::loopback_constraint(int host) {
  HostRes& res = hosts_.at(static_cast<size_t>(host));
  if (res.loopback < 0)
    res.loopback = sys_.new_constraint_in(res.shard, res.on ? loopback_bw_ : 0.0, /*shared=*/true);
  return res.loopback;
}

ActionPtr Engine::comm_start(int src_host, int dst_host, double bytes, double rate_limit,
                             const std::string& name) {
  return comm_start_impl(src_host, dst_host, bytes, rate_limit, &name);
}

ActionPtr Engine::comm_start(int src_host, int dst_host, double bytes, double rate_limit) {
  return comm_start_impl(src_host, dst_host, bytes, rate_limit, nullptr);
}

ActionPtr Engine::comm_start_impl(int src_host, int dst_host, double bytes, double rate_limit,
                                  const std::string* name) {
  // Resolve the route (and the shard affinity that follows from it) before
  // allocating, so the action comes from its own shard's block pool.
  // Heap/solver affinity: intra-zone transfers stay in their zone's shard;
  // anything crossing a zone boundary lives with the backbone.
  const std::int32_t src_shard = hosts_.at(static_cast<size_t>(src_host)).shard;
  const std::int32_t dst_shard = hosts_.at(static_cast<size_t>(dst_host)).shard;
  const std::int32_t shard = src_shard == dst_shard ? src_shard : 0;

  double latency = 0.0;
  bool dead_route = false;
  platform::RouteView route;  // empty until resolved; consumed immediately
  if (src_host == dst_host) {
    latency = loopback_lat_;
    // The loopback is part of the host: it dies (and fails its comms) with it.
    if (!hosts_[static_cast<size_t>(src_host)].on)
      dead_route = true;
  } else if (!platform_.host_present(src_host) || !platform_.host_present(dst_host)) {
    // A departed endpoint has no route (route() would throw "departed at
    // t=…"): fail the comm gracefully so the sender can retry or give up.
    dead_route = true;
  } else {
    route = platform_.route(src_host, dst_host);
    latency = route.latency();
    for (platform::LinkId l : route)
      if (!links_[static_cast<size_t>(l)].on) {
        dead_route = true;
        break;
      }
  }

  auto action = make_action(shards_[static_cast<size_t>(shard)].pool, this, ActionKind::kComm,
                            bytes, 1.0);
  action->host_ = src_host;
  action->peer_host_ = dst_host;
  action->shard_ = shard;
  if (name != nullptr)
    set_action_name(action.get(), *name);  // before notify: observers read name()

  if (dead_route) {
    // The communication fails immediately; report it through the next step
    // so the kernel sees a normal failure event.
    action->state_ = ActionState::kFailed;
    action->finish_time_ = now_;
    pending_.push_back(ActionEvent{action, true});
    return action;
  }

  double bound = ShardedMaxMin::kNoBound;
  if (rate_limit > 0)
    bound = rate_limit;
  if (latency > 0 && src_host != dst_host) {
    const double tcp_cap = tcp_gamma_ / (2.0 * latency);
    bound = (bound < 0) ? tcp_cap : std::min(bound, tcp_cap);
  }

  bind_var(action.get(), sys_.new_variable(0.0, bound));  // weight 0 during latency phase
  if (src_host == dst_host) {
    sys_.expand(loopback_constraint(src_host), action->var_, 1.0);
  } else {
    for (platform::LinkId l : route)
      sys_.expand(links_[static_cast<size_t>(l)].cnst, action->var_, 1.0);
  }

  action->latency_remaining_ = latency;
  if (latency > 0) {
    action->in_latency_phase_ = true;
  } else {
    action->in_latency_phase_ = false;
    sys_.set_weight(action->var_, action->priority_);
  }

  add_running(action);
  if (kill_transit_comms_)
    endpoint_lists_add(action);
  if (action->in_latency_phase_ || action->remaining_ <= 0)
    schedule_completion(action);  // latency expiry (or zero bytes): date known now
  notify(*action, ActionState::kRunning, ActionState::kRunning);
  return action;
}

ActionPtr Engine::ptask_start(const std::vector<int>& hosts, const std::vector<double>& flops,
                              const std::vector<std::vector<double>>& bytes, const std::string& name) {
  auto action = ptask_start(hosts, flops, bytes);
  set_action_name(action.get(), name);
  return action;
}

ActionPtr Engine::ptask_start(const std::vector<int>& hosts, const std::vector<double>& flops,
                              const std::vector<std::vector<double>>& bytes) {
  if (hosts.empty() || flops.size() != hosts.size())
    throw xbt::InvalidArgument("ptask_start: hosts/flops size mismatch");
  if (!bytes.empty() && bytes.size() != hosts.size())
    throw xbt::InvalidArgument("ptask_start: bytes matrix must be n x n");
  for (int h : hosts)
    if (!hosts_.at(static_cast<size_t>(h)).on) {
      if (!platform_.host_present(h))
        throw_host_departed("ptask_start", platform_, h);
      throw xbt::HostFailureException("ptask_start: host is down");
    }

  std::int32_t shard = hosts_[static_cast<size_t>(hosts[0])].shard;
  for (int h : hosts)
    if (hosts_[static_cast<size_t>(h)].shard != shard) {
      shard = 0;  // spans zones: backbone affinity
      break;
    }

  // The action's "amount" is the normalized fraction of the whole task;
  // coefficient k on a resource means "rate v consumes k*v of the resource",
  // so at completion (integral of v = 1) exactly flops[i] / bytes[i][j] have
  // been consumed. This is SimGrid's L07 parallel-task model.
  auto action = make_action(shards_[static_cast<size_t>(shard)].pool, this, ActionKind::kPtask,
                            1.0, 1.0);
  action->shard_ = shard;
  bind_var(action.get(), sys_.new_variable(0.0));

  double latency = 0.0;
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (flops[i] > 0)
      sys_.expand(hosts_[static_cast<size_t>(hosts[i])].cnst, action->var_, flops[i]);
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i].size() != hosts.size())
      throw xbt::InvalidArgument("ptask_start: bytes matrix must be n x n");
    for (size_t j = 0; j < bytes[i].size(); ++j) {
      if (i == j || bytes[i][j] <= 0)
        continue;
      const auto route = platform_.route(hosts[i], hosts[j]);
      latency = std::max(latency, route.latency());
      for (platform::LinkId l : route)
        sys_.expand(links_[static_cast<size_t>(l)].cnst, action->var_, bytes[i][j]);
    }
  }

  action->latency_remaining_ = latency;
  if (latency > 0) {
    action->in_latency_phase_ = true;
  } else {
    sys_.set_weight(action->var_, action->priority_);
  }
  add_running(action);
  if (action->in_latency_phase_)
    schedule_completion(action);
  return action;
}

ActionPtr Engine::sleep_start(int host, double duration, const std::string& name) {
  auto action = sleep_start(host, duration);
  set_action_name(action.get(), name);
  return action;
}

ActionPtr Engine::sleep_start(int host, double duration) {
  HostRes& res = hosts_.at(static_cast<size_t>(host));
  if (!res.on) {
    if (!platform_.host_present(host))
      throw_host_departed("sleep_start", platform_, host);
    throw xbt::HostFailureException("sleep_start: host is down");
  }
  auto action = make_action(shards_[static_cast<size_t>(res.shard)].pool, this, ActionKind::kSleep,
                            duration, 1.0);
  action->host_ = host;
  action->shard_ = res.shard;
  action->rate_ = 1.0;  // time passes at rate 1
  // Sleeps have no solver variable, so the arena cannot index them; the
  // per-host sleep list keeps host-failure sweeps O(affected).
  action->host_list_idx_ = static_cast<std::uint32_t>(res.sleeps.size());
  res.sleeps.push_back(action.get());
  add_running(action);
  schedule_completion(action);  // sleeps never change rate: date known now
  return action;
}

void Engine::bind_var(Action* action, ShardedMaxMin::VarId var) {
  action->var_ = var;
  if (action_of_var_.size() <= static_cast<size_t>(var))
    action_of_var_.resize(static_cast<size_t>(var) + 1, nullptr);
  action_of_var_[static_cast<size_t>(var)] = action;
}

void Engine::add_running(const ActionPtr& action) {
  action->last_update_ = now_;
  ShardState& ss = shards_[static_cast<size_t>(action->shard_)];
  if (!ss.free_slots.empty()) {
    const size_t idx = ss.free_slots.back();
    ss.free_slots.pop_back();
    action->run_idx_ = idx;
    ss.running[idx] = action;
  } else {
    action->run_idx_ = ss.running.size();
    ss.running.push_back(action);
  }
  ++ss.running_count;
}

size_t Engine::running_action_count() const {
  size_t n = 0;
  for (const ShardState& ss : shards_)
    n += ss.running_count;
  return n;
}

void Engine::sync_progress(Action& a) {
  if (a.state_ == ActionState::kRunning) {
    const double dt = now_ - a.last_update_;
    if (dt > 0) {
      if (a.in_latency_phase_)
        a.latency_remaining_ = std::max(0.0, a.latency_remaining_ - dt);
      else if (a.rate_ > 0)
        a.remaining_ = std::max(0.0, a.remaining_ - a.rate_ * dt);
    }
  }
  a.last_update_ = now_;
}

void Engine::EventHeap::push(double date, std::uint64_t stamp, ActionPtr action) {
  head_lb = std::min(head_lb, date);
  size_t hole = dates.size();
  dates.push_back(date);
  payloads.push_back(Payload{stamp, std::move(action)});
  // Sift up: the compare loop reads only the dense dates array.
  while (hole > 0) {
    const size_t parent = (hole - 1) / 4;
    if (dates[parent] <= dates[hole])
      break;
    std::swap(dates[parent], dates[hole]);
    std::swap(payloads[parent], payloads[hole]);
    hole = parent;
  }
}

void Engine::EventHeap::sift_down(size_t hole) {
  const size_t n = dates.size();
  while (true) {
    const size_t first_child = 4 * hole + 1;
    if (first_child >= n)
      break;
    size_t best = first_child;
    const size_t end = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < end; ++c)
      if (dates[c] < dates[best])
        best = c;
    if (dates[hole] <= dates[best])
      break;
    std::swap(dates[hole], dates[best]);
    std::swap(payloads[hole], payloads[best]);
    hole = best;
  }
}

void Engine::EventHeap::pop_front() {
  dates.front() = dates.back();
  dates.pop_back();
  payloads.front() = std::move(payloads.back());
  payloads.pop_back();
  if (!dates.empty()) {
    sift_down(0);
    head_lb = dates.front();
  } else {
    head_lb = std::numeric_limits<double>::infinity();
  }
}

void Engine::EventHeap::rebuild() {
  for (size_t i = dates.size() / 4 + 1; i-- > 0;)
    sift_down(i);
  head_lb = dates.empty() ? std::numeric_limits<double>::infinity() : dates.front();
}

double Engine::reap_heap_top(EventHeap& heap, size_t& stale) {
  while (!heap.empty() && heap.top().stamp != heap.top().action->heap_stamp_) {
    heap.pop_front();
    --stale;
  }
  return heap.empty() ? kInf : heap.top_date();
}

void Engine::compact_completion_heap(ShardEvents& se) {
  EventHeap& heap = se.completion;
  size_t kept = 0;
  for (size_t i = 0; i < heap.size(); ++i) {
    if (heap.payloads[i].stamp != heap.payloads[i].action->heap_stamp_)
      continue;
    heap.dates[kept] = heap.dates[i];
    heap.payloads[kept] = std::move(heap.payloads[i]);
    ++kept;
  }
  heap.dates.resize(kept);
  heap.payloads.resize(kept);
  se.completion_stale = 0;
  heap.rebuild();
}

void Engine::orphan_heap_entry(Action& a) {
  ++a.heap_stamp_;  // any entry already in a heap is now stale
  if (a.in_heap_) {
    // A live entry sits in the latency heap exactly while the action is in
    // its latency phase (the expiry pop clears in_heap_ first).
    ShardEvents& se = shards_[static_cast<size_t>(a.shard_)].events;
    ++(a.in_latency_phase_ ? se.latency_stale : se.completion_stale);
    a.in_heap_ = false;
  }
}

void Engine::schedule_completion(const ActionPtr& a) {
  orphan_heap_entry(*a);
  const double date = action_finish_date(*a);
  if (date == kInf)
    return;  // no push: head bounds can only tighten, no leaf refresh needed
  mark_heads_dirty(a->shard_);
  a->in_heap_ = true;
  ShardEvents& se = shards_[static_cast<size_t>(a->shard_)].events;
  if (a->in_latency_phase_) {
    // Near-term event: keep it out of the big heap (see the member docs).
    se.latency.push(date, a->heap_stamp_, a);
    return;
  }
  se.completion.push(date, a->heap_stamp_, a);
  // Stale entries are normally reaped as they surface at the top, but ones
  // buried under a far-future top would otherwise pin their (possibly
  // finished) actions and grow the heap. Compact once they dominate. (The
  // latency heap needs no compaction: its entries expire within a route
  // latency of being pushed.)
  if (se.completion_stale >= 8 && se.completion_stale * 2 > se.completion.size())
    compact_completion_heap(se);
}

double Engine::shard_event_source(ShardEvents& se, EventHeap** out_heap, size_t** out_stale) {
  const double lat = reap_heap_top(se.latency, se.latency_stale);
  const double comp = reap_heap_top(se.completion, se.completion_stale);
  // The latency heap wins date ties, matching the tournament tree's leaf
  // order (2s before 2s+1).
  if (lat <= comp && lat != kInf) {
    *out_heap = &se.latency;
    *out_stale = &se.latency_stale;
    return lat;
  }
  if (comp != kInf) {
    *out_heap = &se.completion;
    *out_stale = &se.completion_stale;
    return comp;
  }
  *out_heap = nullptr;
  *out_stale = nullptr;
  return kInf;
}

double Engine::next_completion_date() {
  // Incremental target pick: the tournament tree holds every shard heap's
  // cached head bound (leaf 2s = latency, 2s+1 = completion — leaf order is
  // the tie-break). A stale head can only UNDERSTATE its heap's true next
  // date, so the apparent winner is reaped; if its true date still equals
  // the tree minimum it beats every other leaf's lower bound and wins.
  // Otherwise the corrected bound goes back into the tree and we re-pick:
  // O(log shards) per iteration, iterations bounded by stale heads.
  sync_head_trees();
  while (true) {
    const double lb = heap_tree_.min_key();
    if (lb == kInf)
      return kInf;
    const int leaf = heap_tree_.min_leaf();
    ShardEvents& se = shards_[static_cast<size_t>(leaf >> 1)].events;
    EventHeap& heap = (leaf & 1) != 0 ? se.completion : se.latency;
    size_t& stale = (leaf & 1) != 0 ? se.completion_stale : se.latency_stale;
    const double d = reap_heap_top(heap, stale);
    if (d == lb)
      return d;
    heap_tree_.update(leaf, d);  // the reap left head_lb exact (== d)
  }
}

void Engine::share_resources(PhaseProbe* probe) {
  // Sleeps manage their rate directly (1, or 0 while suspended); everyone
  // else mirrors its solver allocation. Only actions whose allocation moved
  // in this (incremental) solve need a refresh — and only those need a new
  // completion date: an unchanged rate leaves the heap entry valid.
  if (!sys_.needs_solve())
    return;
  sys_.solve(workers_.get(), probe);
  const auto& changed = sys_.changed_variables();
  if (changed.empty())
    return;
  // Rate refresh fans out by lane: each lane scans the full changed list and
  // refreshes the actions whose shard maps to it, so every heap receives the
  // same push subsequence (hence the same final state) as a serial scan —
  // at any lane count.
  auto refresh_lane = [&](int lane, int lanes) {
    for (ShardedMaxMin::VarId v : changed) {
      Action* a = action_of_var_[static_cast<size_t>(v)];
      if (a == nullptr || ShardWorkers::lane_of(a->shard_, lanes) != lane)
        continue;
      sync_progress(*a);  // fold in progress made at the old rate
      a->rate_ = sys_.value(v);
      schedule_completion(shards_[static_cast<size_t>(a->shard_)].running[a->run_idx_]);
    }
  };
  if (workers_) {
    workers_->run_lanes(refresh_lane, probe);
  } else if (probe != nullptr) {
    const std::uint64_t t0 = phase_clock_ns();
    refresh_lane(0, 1);
    const std::uint64_t dt = phase_clock_ns() - t0;
    probe->parallel_ns += dt;
    probe->lanes[0].busy_ns += dt;
  } else {
    refresh_lane(0, 1);
  }
}

double Engine::action_finish_date(const Action& a) const {
  if (a.state_ == ActionState::kSuspended)
    return kInf;
  if (a.in_latency_phase_)
    return now_ + a.latency_remaining_;
  if (a.remaining_ <= 0)
    return now_;
  if (a.rate_ > 0)
    return now_ + a.remaining_ / a.rate_;
  return kInf;
}

double Engine::next_event_time() {
  share_resources(nullptr);
  if (!pending_.empty())
    return now_;
  return std::min(next_completion_date(), next_trace_time());
}

std::vector<ActionEvent> Engine::step(double bound) {
  const StepLog log = run_until(bound);
  std::vector<ActionEvent> out;
  out.reserve(log.size());
  out.insert(out.end(), log.begin(), log.end());
  // Release the published buffers right away: like the old move-out, this
  // drops the engine's strong references to the fired actions immediately.
  release_step_log();
  return out;
}

void Engine::release_step_log() {
  for (const std::int32_t owner : log_owners_)
    if (owner >= 0)
      shards_[static_cast<size_t>(owner)].fired.clear();
  log_owners_.clear();
  log_segs_.clear();
  log_total_ = 0;
  events_.clear();
  deferred_events_.clear();
}

StepLog Engine::run_until(double deadline) {
  release_step_log();  // the previous round's view expires now

  // Deliver immediately-failed / externally-finished activities first.
  if (!pending_.empty()) {
    std::swap(events_, pending_);
    if (!events_.empty()) {
      log_segs_.push_back({events_.data(), events_.size()});
      log_owners_.push_back(-1);
      log_total_ = events_.size();
    }
    return {log_segs_.data(), log_segs_.size(), log_total_};
  }

  const bool prof = profile_;
  const std::uint64_t t0 = prof ? phase_clock_ns() : 0;
  share_resources(probe_.get());
  const std::uint64_t t1 = prof ? phase_clock_ns() : 0;

  // Next event: earliest valid completion date or trace event. Completion
  // dates were computed when the rates were assigned, in absolute time, so
  // no floating-point advance can strand an action with an un-completable
  // remainder.
  const double next_completion = next_completion_date();
  const double next_trace = next_trace_time();
  const double target = std::min({next_completion, next_trace, deadline});
  if (target == kInf) {
    if (prof) {
      const std::uint64_t t = phase_clock_ns();
      pstats_.solve_ns += t1 - t0;
      pstats_.pick_ns += t - t1;
      pstats_.total_ns += t - t0;
    }
    return {};  // nothing will ever happen
  }
  const double eps = time_eps_at(target);
  now_ = target;
  if (next_completion > target + eps && next_trace > target + kTimeEps) {
    // Pure jump to the deadline: no event fires, nothing to advance.
    if (prof) {
      const std::uint64_t t = phase_clock_ns();
      pstats_.solve_ns += t1 - t0;
      pstats_.pick_ns += t - t1;
      pstats_.total_ns += t - t0;
    }
    return {};
  }

  // Collect the shards with something due this round — trace events at or
  // before now_ (+ the trace tie window) and heap heads at or before target
  // + eps — in ascending shard order. Heap head bounds can only understate,
  // so a listed shard may turn out to have nothing due; advance_shard
  // handles that as a cheap no-op. Batching means several shards sharing
  // the target date (or its tie-break window) advance in ONE fan-out.
  due_shards_.clear();
  trace_tree_.for_each_leaf_le(now_ + kTimeEps,
                               [&](int s) { due_shards_.push_back(s); });
  const size_t n_trace_due = due_shards_.size();
  heap_tree_.for_each_leaf_le(target + eps, [&](int leaf) {
    const std::int32_t s = leaf >> 1;
    // A shard's two leaves visit consecutively — dedup within this pass.
    if (due_shards_.size() == n_trace_due || due_shards_.back() != s)
      due_shards_.push_back(s);
  });
  if (n_trace_due > 0) {  // merge the two ascending runs
    std::sort(due_shards_.begin(), due_shards_.end());
    due_shards_.erase(std::unique(due_shards_.begin(), due_shards_.end()), due_shards_.end());
  }
  const std::uint64_t t2 = prof ? phase_clock_ns() : 0;

  // Advance the due shards (in parallel when lanes were configured): trace
  // events first, then due heap entries. Cost: O(fired + stale + log(shard
  // heap)) per due shard — quiet shards are never touched. The fan-out is
  // bucketed by each shard's canonical lane (lane_of), preserving the
  // invariant that shard state is only ever written by maestro or its lane.
  if (workers_) {
    for (const std::int32_t s : due_shards_)
      lane_scratch_[static_cast<size_t>(ShardWorkers::lane_of(s, lanes_))].due.push_back(s);
    auto advance_lane = [&](int lane, int) {
      for (const std::int32_t s : lane_scratch_[static_cast<size_t>(lane)].due)
        advance_shard(s, target, eps);
    };
    workers_->run_lanes(advance_lane, probe_.get());
    for (LaneScratch& ls : lane_scratch_)
      ls.due.clear();
  } else if (prof) {
    const std::uint64_t ta = phase_clock_ns();
    for (const std::int32_t s : due_shards_)
      advance_shard(s, target, eps);
    const std::uint64_t dt = phase_clock_ns() - ta;
    probe_->parallel_ns += dt;
    probe_->lanes[0].busy_ns += dt;
  } else {
    for (const std::int32_t s : due_shards_)
      advance_shard(s, target, eps);
  }
  const std::uint64_t t3 = prof ? phase_clock_ns() : 0;

  process_deferred();
  gather_step_results();
  if (prof) {
    const std::uint64_t t4 = phase_clock_ns();
    pstats_.solve_ns += t1 - t0;
    pstats_.pick_ns += t2 - t1;
    pstats_.advance_ns += t3 - t2;
    pstats_.epilogue_ns += t4 - t3;
    pstats_.total_ns += t4 - t0;
    ++pstats_.rounds;
    pstats_.events += log_total_;
  }
  return {log_segs_.data(), log_segs_.size(), log_total_};
}

Engine::PhaseStats Engine::phase_stats() const {
  PhaseStats out = pstats_;
  out.lane_busy_ns.assign(static_cast<size_t>(lanes_), 0);
  if (probe_) {
    out.parallel_ns = probe_->parallel_ns;
    for (int l = 0; l < lanes_; ++l)
      out.lane_busy_ns[static_cast<size_t>(l)] = probe_->lanes[static_cast<size_t>(l)].busy_ns;
  }
  return out;
}

void Engine::advance_shard(int shard, double target, double eps) {
  static_assert(kTraceEventsBeforeCompletions);
  ShardState& ss = shards_[static_cast<size_t>(shard)];
  // Everything below may pop trace / heap heads; one conservative mark here
  // covers all of it (runs on this shard's canonical lane, so the push into
  // the lane-local dirty list is race-free under the parallel fan-out).
  mark_heads_dirty(shard);

  // Trace events due now — applied BEFORE the heap events at the same date
  // (see kTraceEventsBeforeCompletions): a resource dying exactly when an
  // action would complete fails the action.
  while (!ss.traces.empty() && ss.traces.top().time <= now_ + kTimeEps) {
    const TraceEvent ev = ss.traces.top();
    ss.traces.pop();
    apply_trace_event(shard, ev);
  }

  // Pop every due event-heap entry (latency expiries from the small near-
  // term heap, completions from the big one). Stale entries (stamp mismatch)
  // are skipped; latency expiries switch the action to its data phase; the
  // rest are real completions. Anything touching state outside this shard is
  // deferred to the serial epilogue.
  while (true) {
    EventHeap* src = nullptr;
    size_t* stale = nullptr;
    const double date = shard_event_source(ss.events, &src, &stale);
    if (src == nullptr || date > target + eps)
      break;
    ActionPtr a = std::move(src->top().action);
    src->pop_front();
    a->in_heap_ = false;
    if (a->state_ != ActionState::kRunning)
      continue;
    const ShardedMaxMin::ShardId home =
        a->var_ >= 0 ? sys_.home_shard(a->var_) : ShardedMaxMin::kDetachedShard;
    // The endpoint comm indexes live on the hosts: only touch them from this
    // lane when both endpoints' hosts belong to this shard.
    const bool lists_local =
        !a->in_endpoint_lists_ ||
        (hosts_[static_cast<size_t>(a->host_)].shard == shard &&
         hosts_[static_cast<size_t>(a->peer_host_)].shard == shard);
    if (a->in_latency_phase_) {
      if (home == shard && lists_local) {
        // Latency just expired: start consuming bandwidth. The data phase
        // gets its rate (and completion date) from the next sharing
        // recomputation — unless there is no data to transfer at all.
        sync_progress(*a);
        a->in_latency_phase_ = false;
        a->latency_remaining_ = 0;
        sys_.set_weight(a->var_, a->priority_);
        if (a->remaining_ <= 0)
          finish_action_local(shard, std::move(a), ActionState::kDone);
      } else {
        // The weight flip touches other shards' dirty sets (linked replicas)
        // or the shared detached list: epilogue work.
        ss.deferred.push_back(DeferredOp{DeferredOp::Kind::kLatencyExpiry, std::move(a)});
      }
    } else if ((home == ShardedMaxMin::kDetachedShard || home == shard) && lists_local) {
      finish_action_local(shard, std::move(a), ActionState::kDone);
    } else {
      ss.deferred.push_back(DeferredOp{DeferredOp::Kind::kCompletion, std::move(a)});
    }
  }
}

void Engine::apply_trace_event(int shard, const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEvent::Kind::kHostAvail: {
      hosts_[static_cast<size_t>(ev.index)].scale = ev.value;
      refresh_host_capacity(ev.index);
      schedule_next(platform_.host(ev.index).availability, ev.kind, ev.index, ev.time);
      break;
    }
    case TraceEvent::Kind::kHostState: {
      apply_host_state_sharded(shard, ev.index, ev.value > 0.5);
      schedule_next(platform_.host(ev.index).state, ev.kind, ev.index, ev.time);
      break;
    }
    case TraceEvent::Kind::kLinkAvail: {
      links_[static_cast<size_t>(ev.index)].scale = ev.value;
      refresh_link_capacity(static_cast<platform::LinkId>(ev.index));
      schedule_next(platform_.link(static_cast<platform::LinkId>(ev.index)).availability, ev.kind, ev.index,
                    ev.time);
      break;
    }
    case TraceEvent::Kind::kLinkState: {
      apply_link_state_sharded(shard, static_cast<platform::LinkId>(ev.index), ev.value > 0.5);
      schedule_next(platform_.link(static_cast<platform::LinkId>(ev.index)).state, ev.kind, ev.index, ev.time);
      break;
    }
  }
}

void Engine::refresh_host_capacity(int host) {
  const HostRes& res = hosts_[static_cast<size_t>(host)];
  if (res.cnst < 0)
    return;  // departed: constraint released; scale/state were still recorded
  sys_.set_capacity(res.cnst, res.on ? platform_.host(host).speed_flops * res.scale : 0.0);
  if (res.loopback >= 0)
    sys_.set_capacity(res.loopback, res.on ? loopback_bw_ : 0.0);
}

void Engine::refresh_link_capacity(platform::LinkId link) {
  const LinkRes& res = links_[static_cast<size_t>(link)];
  if (res.cnst < 0)
    return;  // private link of a departed host
  sys_.set_capacity(res.cnst,
                    res.on ? platform_.link(link).bandwidth_Bps * res.scale * bandwidth_factor_ : 0.0);
}

void Engine::fail_constraint_sharded(int shard, ShardedMaxMin::CnstId cnst) {
  // The solver's element arena IS the cnst -> actions index: walk the
  // constraint's user list and map variables back to actions. Collect
  // before finishing — finishing releases the victim's variable, which
  // mutates the very list being walked. Duplicate entries (a variable
  // expanded twice on the constraint) and actions spanning several failed
  // constraints are deduplicated by the finish idempotence guard: each
  // action emits exactly one failure event.
  //
  // Reading a cross-shard victim's slot from here is race-free: an action
  // whose variable spans shards is never finished inside a parallel phase
  // (every lane defers it), so its slot entry is stable for the whole phase.
  std::vector<ActionPtr> victims;
  sys_.for_each_variable_on(cnst, [&](ShardedMaxMin::VarId v, double) {
    Action* a = action_of_var_[static_cast<size_t>(v)];
    if (a != nullptr && (victims.empty() || victims.back().get() != a))
      victims.push_back(shards_[static_cast<size_t>(a->shard_)].running[a->run_idx_]);
  });
  for (ActionPtr& a : victims)
    fail_one_sharded(shard, std::move(a));
}

void Engine::fail_one_sharded(int shard, ActionPtr action) {
  const ShardedMaxMin::ShardId home =
      action->var_ >= 0 ? sys_.home_shard(action->var_) : ShardedMaxMin::kDetachedShard;
  const bool lists_local =
      !action->in_endpoint_lists_ ||
      (hosts_[static_cast<size_t>(action->host_)].shard == shard &&
       hosts_[static_cast<size_t>(action->peer_host_)].shard == shard);
  if (action->shard_ == shard && (home == ShardedMaxMin::kDetachedShard || home == shard) &&
      lists_local)
    finish_action_local(shard, std::move(action), ActionState::kFailed);
  else
    shards_[static_cast<size_t>(shard)].deferred.push_back(
        DeferredOp{DeferredOp::Kind::kFailure, std::move(action)});
}

void Engine::apply_host_state_sharded(int shard, int host, bool on) {
  HostRes& res = hosts_[static_cast<size_t>(host)];
  if (res.cnst < 0) {
    // Departed host: its trace chain keeps ticking (so a rejoin resumes in
    // phase) but flaps neither fail anything nor reach the observer.
    res.on = on;
    return;
  }
  if (res.on == on)
    return;
  res.on = on;
  refresh_host_capacity(host);
  if (!on) {
    fail_constraint_sharded(shard, res.cnst);
    if (res.loopback >= 0)
      fail_constraint_sharded(shard, res.loopback);
    // Sleeps are always local: a sleep's action lives in its host's shard.
    std::vector<ActionPtr> victims;
    for (Action* a : res.sleeps)
      victims.push_back(shards_[static_cast<size_t>(shard)].running[a->run_idx_]);
    for (ActionPtr& a : victims)
      finish_action_local(shard, std::move(a), ActionState::kFailed);
    if (kill_transit_comms_) {
      // Comms already killed through a dead constraint (loopback) are
      // skipped by the finish idempotence guard.
      victims.clear();
      for (Action* a : res.comms)
        victims.push_back(shards_[static_cast<size_t>(a->shard_)].running[a->run_idx_]);
      for (ActionPtr& a : victims)
        fail_one_sharded(shard, std::move(a));
    }
  }
  if (resource_observer_)
    shards_[static_cast<size_t>(shard)].notices.push_back(
        Notice{nullptr, ActionState::kRunning, ActionState::kRunning, true, host, on});
}

void Engine::apply_link_state_sharded(int shard, platform::LinkId link, bool on) {
  LinkRes& res = links_[static_cast<size_t>(link)];
  if (res.cnst < 0) {  // private link of a departed host: silent (see above)
    res.on = on;
    return;
  }
  if (res.on == on)
    return;
  res.on = on;
  refresh_link_capacity(link);
  if (!on)
    fail_constraint_sharded(shard, res.cnst);
  if (resource_observer_)
    shards_[static_cast<size_t>(shard)].notices.push_back(
        Notice{nullptr, ActionState::kRunning, ActionState::kRunning, false, link, on});
}

void Engine::finish_action_local(int shard, ActionPtr action, ActionState final_state) {
  // Idempotence guard, as in finish_action: a failure may reach the same
  // action through several constraints of this shard.
  if (action->state_ != ActionState::kRunning && action->state_ != ActionState::kSuspended)
    return;
  ShardState& ss = shards_[static_cast<size_t>(shard)];
  sync_progress(*action);  // credit progress made since the last rate change
  const ActionState old_state = action->state_;
  action->state_ = final_state;
  action->finish_time_ = now_;
  if (final_state == ActionState::kDone)
    action->remaining_ = 0;
  orphan_heap_entry(*action);  // orphan any entry still in the completion heap
  if (action->var_ >= 0) {
    action_of_var_[static_cast<size_t>(action->var_)] = nullptr;
    // Release into this shard's arena only; the global id is recycled
    // serially (commit_released, fixed shard order) so id reuse — and with
    // it every downstream ordering — stays identical at any lane count.
    sys_.release_variable_local(action->var_);
    ss.released.push_back(action->var_);
    action->var_ = -1;
  }
  if (action->kind_ == ActionKind::kSleep && action->host_ >= 0) {
    // O(1) removal from the host's sleep index.
    auto& sleeps = hosts_[static_cast<size_t>(action->host_)].sleeps;
    const std::uint32_t si = action->host_list_idx_;
    sleeps[si] = sleeps.back();
    sleeps[si]->host_list_idx_ = si;
    sleeps.pop_back();
  } else if (action->in_endpoint_lists_) {
    endpoint_list_remove(action->host_, action->host_list_idx_);
    if (action->peer_host_ != action->host_)
      endpoint_list_remove(action->peer_host_, action->peer_list_idx_);
    action->in_endpoint_lists_ = false;
  }
  // O(1) removal: clear the slot and recycle it (LIFO keeps it cache-hot).
  const size_t idx = action->run_idx_;
  ss.running[idx].reset();
  ss.free_slots.push_back(idx);
  --ss.running_count;
  if (observer_)
    ss.notices.push_back(Notice{action, old_state, final_state, false, -1, false});
  ss.fired.push_back(ActionEvent{std::move(action), final_state == ActionState::kFailed});
}

void Engine::process_deferred() {
  // Failures first — they stem from trace events, which the tie-break says
  // precede completions at the same date (a cross-shard action discovered
  // both completing and failing must fail) — then latency expiries and
  // completions; within each pass, fixed shard order then discovery order.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::int32_t s : due_shards_) {
      ShardState& ss = shards_[static_cast<size_t>(s)];
      for (DeferredOp& op : ss.deferred) {
        const bool failure = op.kind == DeferredOp::Kind::kFailure;
        if (failure != (pass == 0) || !op.action)
          continue;
        if (op.kind == DeferredOp::Kind::kLatencyExpiry) {
          ActionPtr a = std::move(op.action);
          if (a->state_ != ActionState::kRunning)
            continue;  // failed meanwhile (pass 0)
          sync_progress(*a);
          a->in_latency_phase_ = false;
          a->latency_remaining_ = 0;
          if (a->var_ >= 0)
            sys_.set_weight(a->var_, a->priority_);
          if (a->remaining_ <= 0)
            finish_action(std::move(a), ActionState::kDone, &deferred_events_, &deferred_notices_);
        } else {
          finish_action(std::move(op.action), failure ? ActionState::kFailed : ActionState::kDone,
                        &deferred_events_, &deferred_notices_);
        }
      }
    }
  }
  for (const std::int32_t s : due_shards_)
    shards_[static_cast<size_t>(s)].deferred.clear();
}

void Engine::gather_step_results() {
  // Commit the ids released inside the parallel phase, in fixed shard order
  // (due_shards_ is ascending): the free-list order — hence id reuse — is
  // the same at any lane count. Only advanced shards can hold releases.
  for (const std::int32_t s : due_shards_) {
    ShardState& ss = shards_[static_cast<size_t>(s)];
    if (!ss.released.empty()) {
      sys_.commit_released(ss.released.data(), ss.released.size());
      ss.released.clear();
    }
  }
  // Publish the per-shard event logs shard-major as a zero-copy sequence of
  // segments (the epilogue's last); the buffers stay put until the next
  // run_until()/step(). Empty segments are skipped up front, so a shard
  // that advanced without firing — or a zero-event round — never reaches
  // the published view.
  for (const std::int32_t s : due_shards_) {
    ShardState& ss = shards_[static_cast<size_t>(s)];
    if (ss.fired.empty())
      continue;
    log_segs_.push_back({ss.fired.data(), ss.fired.size()});
    log_owners_.push_back(s);
    log_total_ += ss.fired.size();
  }
  if (!deferred_events_.empty()) {
    log_segs_.push_back({deferred_events_.data(), deferred_events_.size()});
    log_owners_.push_back(-1);
    log_total_ += deferred_events_.size();
  }
  // Observers fire last, in the same canonical order, after every mutation
  // is committed — they may re-enter the engine (cancel, new activities).
  // Re-entry lands in pending_, never in the buffers published above.
  for (const std::int32_t s : due_shards_) {
    ShardState& ss = shards_[static_cast<size_t>(s)];
    for (const Notice& n : ss.notices)
      fire_notice(n);
    ss.notices.clear();
  }
  for (const Notice& n : deferred_notices_)
    fire_notice(n);
  deferred_notices_.clear();
}

void Engine::fire_notice(const Notice& n) {
  if (n.action != nullptr)
    notify(*n.action, n.old_state, n.new_state);
  else if (resource_observer_)
    resource_observer_(n.res_is_host, n.res_index, n.res_on);
}

void Engine::endpoint_lists_add(const ActionPtr& action) {
  Action* a = action.get();
  auto& src = hosts_[static_cast<size_t>(a->host_)].comms;
  a->host_list_idx_ = static_cast<std::uint32_t>(src.size());
  src.push_back(a);
  if (a->peer_host_ != a->host_) {
    auto& dst = hosts_[static_cast<size_t>(a->peer_host_)].comms;
    a->peer_list_idx_ = static_cast<std::uint32_t>(dst.size());
    dst.push_back(a);
  }
  a->in_endpoint_lists_ = true;
}

void Engine::endpoint_list_remove(int host, std::uint32_t idx) {
  // O(1) swap-removal. The moved action may sit in this list as a source or
  // as a destination endpoint; patch whichever index points here.
  auto& comms = hosts_[static_cast<size_t>(host)].comms;
  comms[idx] = comms.back();
  comms.pop_back();
  if (static_cast<size_t>(idx) < comms.size()) {
    Action* moved = comms[idx];
    if (moved->host_ == host)
      moved->host_list_idx_ = idx;
    else
      moved->peer_list_idx_ = idx;
  }
}

// Takes the ActionPtr by value: callers may pass a reference into a slot
// table, which the slot reset below would otherwise invalidate mid-function.
void Engine::finish_action(ActionPtr action, ActionState final_state, std::vector<ActionEvent>* out,
                           std::vector<Notice>* out_notices) {
  // Idempotence guard: an observer notified below may re-enter and finish
  // (e.g. cancel) an action that a caller already collected as a victim —
  // and a failure may reach the same action through several constraints.
  // Finishing twice would reuse the stale run_idx_ and corrupt the slots.
  if (action->state_ != ActionState::kRunning && action->state_ != ActionState::kSuspended)
    return;
  sync_progress(*action);  // credit progress made since the last rate change
  const ActionState old_state = action->state_;
  action->state_ = final_state;
  action->finish_time_ = now_;
  if (final_state == ActionState::kDone)
    action->remaining_ = 0;
  orphan_heap_entry(*action);  // orphan any entry still in the completion heap
  if (action->var_ >= 0) {
    action_of_var_[static_cast<size_t>(action->var_)] = nullptr;
    sys_.release_variable(action->var_);
    action->var_ = -1;
  }
  if (action->kind_ == ActionKind::kSleep && action->host_ >= 0) {
    // O(1) removal from the host's sleep index.
    auto& sleeps = hosts_[static_cast<size_t>(action->host_)].sleeps;
    const std::uint32_t si = action->host_list_idx_;
    sleeps[si] = sleeps.back();
    sleeps[si]->host_list_idx_ = si;
    sleeps.pop_back();
  } else if (action->in_endpoint_lists_) {
    endpoint_list_remove(action->host_, action->host_list_idx_);
    if (action->peer_host_ != action->host_)
      endpoint_list_remove(action->peer_host_, action->peer_list_idx_);
    action->in_endpoint_lists_ = false;
  }
  // O(1) removal: clear the slot and recycle it (LIFO keeps it cache-hot).
  ShardState& ss = shards_[static_cast<size_t>(action->shard_)];
  const size_t idx = action->run_idx_;
  ss.running[idx].reset();
  ss.free_slots.push_back(idx);
  --ss.running_count;
  if (out_notices != nullptr)
    out_notices->push_back(Notice{action, old_state, final_state, false, -1, false});
  else
    notify(*action, old_state, final_state);
  if (out != nullptr)
    out->push_back(ActionEvent{action, final_state == ActionState::kFailed});
  else
    pending_.push_back(ActionEvent{action, final_state == ActionState::kFailed});
}

void Engine::notify(const Action& action, ActionState old_state, ActionState new_state) {
  if (observer_)
    observer_(action, old_state, new_state);
}

double Engine::host_speed(int host) const {
  const HostRes& res = hosts_.at(static_cast<size_t>(host));
  return res.on ? platform_.host(host).speed_flops * res.scale : 0.0;
}

double Engine::link_bandwidth(platform::LinkId link) const {
  const LinkRes& res = links_.at(static_cast<size_t>(link));
  return res.on ? platform_.link(link).bandwidth_Bps * res.scale : 0.0;
}

double Engine::host_load(int host) {
  share_resources(nullptr);
  return sys_.usage(hosts_.at(static_cast<size_t>(host)).cnst);
}

double Engine::link_load(platform::LinkId link) {
  share_resources(nullptr);
  return sys_.usage(links_.at(static_cast<size_t>(link)).cnst);
}

void Engine::fail_actions_on_constraint(ShardedMaxMin::CnstId cnst, std::vector<ActionEvent>& out) {
  // Same collect-then-finish shape as fail_constraint_sharded, but each
  // victim goes through finish_action with an inline notify — observers see
  // every failure as it happens and may cancel pending victims (deduplicated
  // by the idempotence guard).
  std::vector<ActionPtr> victims;
  sys_.for_each_variable_on(cnst, [&](ShardedMaxMin::VarId v, double) {
    Action* a = action_of_var_[static_cast<size_t>(v)];
    if (a != nullptr && (victims.empty() || victims.back().get() != a))
      victims.push_back(shards_[static_cast<size_t>(a->shard_)].running[a->run_idx_]);
  });
  for (const ActionPtr& a : victims)
    finish_action(a, ActionState::kFailed, &out);
}

void Engine::fail_sleeps_on_host(int host, std::vector<ActionEvent>& out) {
  // Copy out of the index first: finish_action swap-removes from it.
  std::vector<ActionPtr> victims;
  for (Action* a : hosts_[static_cast<size_t>(host)].sleeps)
    victims.push_back(shards_[static_cast<size_t>(a->shard_)].running[a->run_idx_]);
  for (const ActionPtr& a : victims)
    finish_action(a, ActionState::kFailed, &out);
}

void Engine::fail_endpoint_comms(int host, std::vector<ActionEvent>& out) {
  // Comms already killed through a dead constraint (loopback) are skipped by
  // finish_action's idempotence.
  std::vector<ActionPtr> victims;
  for (Action* a : hosts_[static_cast<size_t>(host)].comms)
    victims.push_back(shards_[static_cast<size_t>(a->shard_)].running[a->run_idx_]);
  for (const ActionPtr& a : victims)
    finish_action(a, ActionState::kFailed, &out);
}

void Engine::apply_host_state(int host, bool on, std::vector<ActionEvent>& out) {
  HostRes& res = hosts_[static_cast<size_t>(host)];
  if (res.cnst < 0) {  // departed: flaps are recorded but inert (see sharded twin)
    res.on = on;
    return;
  }
  if (res.on == on)
    return;
  res.on = on;
  refresh_host_capacity(host);
  if (!on) {
    fail_actions_on_constraint(res.cnst, out);
    if (res.loopback >= 0)
      fail_actions_on_constraint(res.loopback, out);
    fail_sleeps_on_host(host, out);
    if (kill_transit_comms_)
      fail_endpoint_comms(host, out);
  }
  if (resource_observer_)
    resource_observer_(true, host, on);
}

void Engine::apply_link_state(platform::LinkId link, bool on, std::vector<ActionEvent>& out) {
  LinkRes& res = links_[static_cast<size_t>(link)];
  if (res.cnst < 0) {  // private link of a departed host: inert
    res.on = on;
    return;
  }
  if (res.on == on)
    return;
  res.on = on;
  refresh_link_capacity(link);
  if (!on)
    fail_actions_on_constraint(res.cnst, out);
  if (resource_observer_)
    resource_observer_(false, link, on);
}

void Engine::set_host_state(int host, bool on) {
  hosts_.at(static_cast<size_t>(host));  // range check with the usual exception
  platform_.check_host_present(host, "set_host_state");  // "departed at t=…"
  std::vector<ActionEvent> out;
  apply_host_state(host, on, out);
  for (auto& ev : out)
    pending_.push_back(std::move(ev));
}

void Engine::set_link_state(platform::LinkId link, bool on) {
  links_.at(static_cast<size_t>(link));  // range check with the usual exception
  std::vector<ActionEvent> out;
  apply_link_state(link, on, out);
  for (auto& ev : out)
    pending_.push_back(std::move(ev));
}

void Engine::set_host_scale(int host, double scale) {
  hosts_.at(static_cast<size_t>(host)).scale = scale;
  refresh_host_capacity(host);
}

void Engine::set_link_scale(platform::LinkId link, double scale) {
  links_.at(static_cast<size_t>(link)).scale = scale;
  refresh_link_capacity(link);
}

// ---------------------------------------------------------------------------
// Dynamic membership
// ---------------------------------------------------------------------------

int Engine::join_host(platform::ZoneId zone, const std::string& name, double speed_flops) {
  const int h = platform_.join_host(zone, name, speed_flops);
  adopt_new_resources();
  return h;
}

int Engine::join_host(const platform::HostSpec& spec, platform::NodeId attach,
                      const platform::LinkSpec& uplink) {
  const int h = platform_.join_host(spec, attach, uplink);
  adopt_new_resources();
  return h;
}

void Engine::adopt_new_resources() {
  const platform::ShardMap& smap = platform_.shard_map();
  for (size_t h = hosts_.size(); h < platform_.host_count(); ++h) {
    const auto& spec = platform_.host(static_cast<int>(h));
    HostRes res;
    if (!spec.availability.empty())
      res.scale = spec.availability.value_at(now_);
    if (!spec.state.empty())
      res.on = spec.state.value_at(now_) > 0.5;
    // With engine/sharding off the shard map still names zone shards the
    // engine never built; everything collapses to the single shard 0.
    const std::int32_t ps = smap.host_shard[h];
    res.shard = static_cast<size_t>(ps) < shards_.size() ? ps : 0;
    res.cnst = sys_.new_constraint_in(res.shard, res.on ? spec.speed_flops * res.scale : 0.0,
                                      /*shared=*/true);
    hosts_.push_back(std::move(res));
    if (!spec.availability.empty())
      schedule_next(spec.availability, TraceEvent::Kind::kHostAvail, static_cast<int>(h), now_);
    if (!spec.state.empty())
      schedule_next(spec.state, TraceEvent::Kind::kHostState, static_cast<int>(h), now_);
  }
  for (size_t l = links_.size(); l < platform_.link_count(); ++l) {
    const auto& spec = platform_.link(static_cast<platform::LinkId>(l));
    LinkRes res;
    if (!spec.availability.empty())
      res.scale = spec.availability.value_at(now_);
    if (!spec.state.empty())
      res.on = spec.state.value_at(now_) > 0.5;
    const std::int32_t ps = smap.link_shard[l];
    res.shard = static_cast<size_t>(ps) < shards_.size() ? ps : 0;
    res.cnst = sys_.new_constraint_in(res.shard,
                                      res.on ? spec.bandwidth_Bps * res.scale * bandwidth_factor_ : 0.0,
                                      spec.policy == platform::SharingPolicy::kShared);
    links_.push_back(std::move(res));
    if (!spec.availability.empty())
      schedule_next(spec.availability, TraceEvent::Kind::kLinkAvail, static_cast<int>(l), now_);
    if (!spec.state.empty())
      schedule_next(spec.state, TraceEvent::Kind::kLinkState, static_cast<int>(l), now_);
  }
}

void Engine::leave_host(int host) {
  hosts_.at(static_cast<size_t>(host));  // range check with the usual exception
  const std::vector<platform::LinkId> private_links = platform_.host_private_links(host);
  platform_.leave_host(host, now_);  // validates presence; routes now refuse the host

  // Structured teardown: everything on the host, its loopback, and its
  // private links fails — exactly once each (the finish idempotence guard
  // dedups victims reached through several dead constraints), observers
  // firing inline as ever for explicit state changes.
  std::vector<ActionEvent> out;
  apply_host_state(host, false, out);
  for (platform::LinkId l : private_links)
    apply_link_state(l, false, out);

  // Release the constraints through the solver's id-recycling paths: the
  // fail sweeps above emptied them, and a released id is reused by the next
  // constraint creation (a later join or rejoin).
  HostRes& res = hosts_[static_cast<size_t>(host)];
  if (res.cnst >= 0) {
    sys_.release_constraint(res.cnst);
    res.cnst = -1;
  }
  if (res.loopback >= 0) {
    sys_.release_constraint(res.loopback);
    res.loopback = -1;
  }
  for (platform::LinkId l : private_links) {
    LinkRes& lres = links_[static_cast<size_t>(l)];
    if (lres.cnst >= 0) {
      sys_.release_constraint(lres.cnst);
      lres.cnst = -1;
    }
  }
  for (auto& ev : out)
    pending_.push_back(std::move(ev));
}

void Engine::rejoin_host(int host) {
  hosts_.at(static_cast<size_t>(host));  // range check with the usual exception
  platform_.rejoin_host(host);           // validates "is already present"

  // Bring-up mirrors construction, evaluated at now(): the trace chains kept
  // ticking while the host was away (the departed guards recorded their
  // values), so capacity and up/down state resume exactly in phase.
  HostRes& res = hosts_[static_cast<size_t>(host)];
  const auto& spec = platform_.host(host);
  res.scale = spec.availability.empty() ? res.scale : spec.availability.value_at(now_);
  res.on = spec.state.empty() ? true : spec.state.value_at(now_) > 0.5;
  res.cnst = sys_.new_constraint_in(res.shard, res.on ? spec.speed_flops * res.scale : 0.0,
                                    /*shared=*/true);
  // res.loopback stays -1: recreated lazily by the first self-comm.
  for (platform::LinkId l : platform_.host_private_links(host)) {
    LinkRes& lres = links_[static_cast<size_t>(l)];
    if (lres.cnst >= 0)
      continue;  // shared with another present host (not actually private)
    const auto& lspec = platform_.link(l);
    lres.scale = lspec.availability.empty() ? lres.scale : lspec.availability.value_at(now_);
    lres.on = lspec.state.empty() ? true : lspec.state.value_at(now_) > 0.5;
    lres.cnst = sys_.new_constraint_in(lres.shard,
                                       lres.on ? lspec.bandwidth_Bps * lres.scale * bandwidth_factor_ : 0.0,
                                       lspec.policy == platform::SharingPolicy::kShared);
  }
  // The return is a resource bring-up: the kernel's observer respawns the
  // host's restart-on-rejoin daemons on this notification.
  if (resource_observer_ && res.on)
    resource_observer_(true, host, true);
}

}  // namespace sg::core
