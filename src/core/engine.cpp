#include "core/engine.hpp"

#include <algorithm>
#include <cmath>

#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/log.hpp"

SG_LOG_NEW_CATEGORY(surf, "SURF simulation engine");

namespace sg::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-12;

/// Time tolerance at date t: completions planned within this window of the
/// step target fire now. Relative so that `target - now_` cancellation noise
/// (~DBL_EPSILON * now) can never strand an action with an un-completable
/// remainder.
inline double time_eps_at(double t) { return 1e-9 * std::max(1.0, std::abs(t)); }
}  // namespace

void declare_engine_config() {
  auto& cfg = xbt::Config::instance();
  cfg.declare("network/tcp-gamma", 65536.0,
              "TCP window size (bytes); flow rate is capped at gamma / (2 * route latency)");
  cfg.declare("network/bandwidth-factor", 1460.0 / 1500.0,
              "fraction of nominal link bandwidth usable as goodput (TCP/IP header overhead)");
  cfg.declare("network/loopback-bw", 1e10, "intra-host communication bandwidth, B/s");
  cfg.declare("network/loopback-lat", 1e-7, "intra-host communication latency, s");
}

// ---------------------------------------------------------------------------
// Action methods (need Engine internals)
// ---------------------------------------------------------------------------

Action::Action(Engine* engine, ActionKind kind, std::string name, double total, double priority)
    : engine_(engine),
      kind_(kind),
      name_(std::move(name)),
      total_(total),
      remaining_(total),
      priority_(priority),
      start_time_(engine->now()) {}

void Action::suspend() {
  if (state_ != ActionState::kRunning)
    return;
  state_ = ActionState::kSuspended;
  if (var_ >= 0 && !in_latency_phase_)
    engine_->sys_.set_weight(var_, 0.0);
  if (kind_ == ActionKind::kSleep)
    rate_ = 0.0;
  engine_->notify(*this, ActionState::kRunning, ActionState::kSuspended);
}

void Action::resume() {
  if (state_ != ActionState::kSuspended)
    return;
  state_ = ActionState::kRunning;
  if (var_ >= 0 && !in_latency_phase_)
    engine_->sys_.set_weight(var_, priority_);
  if (kind_ == ActionKind::kSleep)
    rate_ = 1.0;
  engine_->notify(*this, ActionState::kSuspended, ActionState::kRunning);
}

void Action::cancel() {
  if (state_ != ActionState::kRunning && state_ != ActionState::kSuspended)
    return;
  // Find our shared handle in the engine and finish through the normal path.
  for (const ActionPtr& a : engine_->running_)
    if (a.get() == this) {
      engine_->finish_action(a, ActionState::kCanceled, nullptr);
      return;
    }
}

void Action::set_priority(double priority) {
  priority_ = priority;
  if (var_ >= 0 && !in_latency_phase_ && state_ == ActionState::kRunning)
    engine_->sys_.set_weight(var_, priority);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(platform::Platform platform) : platform_(std::move(platform)) {
  if (!platform_.sealed())
    platform_.seal();
  declare_engine_config();
  auto& cfg = xbt::Config::instance();
  tcp_gamma_ = cfg.get("network/tcp-gamma");
  bandwidth_factor_ = cfg.get("network/bandwidth-factor");
  loopback_bw_ = cfg.get("network/loopback-bw");
  loopback_lat_ = cfg.get("network/loopback-lat");

  hosts_.resize(platform_.host_count());
  for (size_t h = 0; h < platform_.host_count(); ++h) {
    const auto& spec = platform_.host(static_cast<int>(h));
    HostRes& res = hosts_[h];
    if (!spec.availability.empty())
      res.scale = spec.availability.value_at(0.0);
    if (!spec.state.empty())
      res.on = spec.state.value_at(0.0) > 0.5;
    res.cnst = sys_.new_constraint(res.on ? spec.speed_flops * res.scale : 0.0, /*shared=*/true);
  }
  links_.resize(platform_.link_count());
  for (size_t l = 0; l < platform_.link_count(); ++l) {
    const auto& spec = platform_.link(static_cast<platform::LinkId>(l));
    LinkRes& res = links_[l];
    if (!spec.availability.empty())
      res.scale = spec.availability.value_at(0.0);
    if (!spec.state.empty())
      res.on = spec.state.value_at(0.0) > 0.5;
    res.cnst = sys_.new_constraint(res.on ? spec.bandwidth_Bps * res.scale * bandwidth_factor_ : 0.0,
                                   spec.policy == platform::SharingPolicy::kShared);
  }
  schedule_trace_events();
}

Engine::~Engine() = default;

void Engine::schedule_trace_events() {
  for (size_t h = 0; h < platform_.host_count(); ++h) {
    const auto& spec = platform_.host(static_cast<int>(h));
    if (!spec.availability.empty())
      schedule_next(spec.availability, TraceEvent::Kind::kHostAvail, static_cast<int>(h), 0.0);
    if (!spec.state.empty())
      schedule_next(spec.state, TraceEvent::Kind::kHostState, static_cast<int>(h), 0.0);
  }
  for (size_t l = 0; l < platform_.link_count(); ++l) {
    const auto& spec = platform_.link(static_cast<platform::LinkId>(l));
    if (!spec.availability.empty())
      schedule_next(spec.availability, TraceEvent::Kind::kLinkAvail, static_cast<int>(l), 0.0);
    if (!spec.state.empty())
      schedule_next(spec.state, TraceEvent::Kind::kLinkState, static_cast<int>(l), 0.0);
  }
}

void Engine::schedule_next(const trace::Trace& trace, TraceEvent::Kind kind, int index, double after) {
  auto next = trace.next_event_after(after);
  if (next)
    trace_events_.push(TraceEvent{next->time, kind, index, next->value});
}

ActionPtr Engine::exec_start(int host, double flops, double priority, const std::string& name) {
  HostRes& res = hosts_.at(static_cast<size_t>(host));
  if (!res.on)
    throw xbt::HostFailureException("exec_start: host " + platform_.host(host).name + " is down");
  auto action = ActionPtr(new Action(this, ActionKind::kExec, name, flops, priority));
  action->host_ = host;
  bind_var(action.get(), sys_.new_variable(priority));
  sys_.expand(res.cnst, action->var_, 1.0);
  action->cnsts_used_.push_back(res.cnst);
  running_.push_back(action);
  notify(*action, ActionState::kRunning, ActionState::kRunning);
  SG_DEBUG(surf, "exec_start %s on %s: %.0f flops", name.c_str(), platform_.host(host).name.c_str(), flops);
  return action;
}

MaxMinSystem::CnstId Engine::loopback_constraint(int host) {
  HostRes& res = hosts_.at(static_cast<size_t>(host));
  if (res.loopback < 0)
    res.loopback = sys_.new_constraint(loopback_bw_, /*shared=*/true);
  return res.loopback;
}

ActionPtr Engine::comm_start(int src_host, int dst_host, double bytes, double rate_limit,
                             const std::string& name) {
  auto action = ActionPtr(new Action(this, ActionKind::kComm, name, bytes, 1.0));
  action->host_ = src_host;
  action->peer_host_ = dst_host;

  double latency = 0.0;
  bool dead_route = false;
  if (src_host == dst_host) {
    latency = loopback_lat_;
    action->cnsts_used_.push_back(loopback_constraint(src_host));
  } else {
    const auto& route = platform_.route(src_host, dst_host);
    latency = route.latency;
    for (platform::LinkId l : route.links) {
      const LinkRes& res = links_[static_cast<size_t>(l)];
      if (!res.on)
        dead_route = true;
      action->cnsts_used_.push_back(res.cnst);
    }
  }

  if (dead_route) {
    // The communication fails immediately; report it through the next step()
    // so the kernel sees a normal failure event.
    action->state_ = ActionState::kFailed;
    action->finish_time_ = now_;
    action->cnsts_used_.clear();
    pending_.push_back(ActionEvent{action, true});
    return action;
  }

  double bound = MaxMinSystem::kNoBound;
  if (rate_limit > 0)
    bound = rate_limit;
  if (latency > 0 && src_host != dst_host) {
    const double tcp_cap = tcp_gamma_ / (2.0 * latency);
    bound = (bound < 0) ? tcp_cap : std::min(bound, tcp_cap);
  }

  bind_var(action.get(), sys_.new_variable(0.0, bound));  // weight 0 during latency phase
  for (MaxMinSystem::CnstId c : action->cnsts_used_)
    sys_.expand(c, action->var_, 1.0);

  action->latency_remaining_ = latency;
  if (latency > 0) {
    action->in_latency_phase_ = true;
  } else {
    action->in_latency_phase_ = false;
    sys_.set_weight(action->var_, action->priority_);
  }

  running_.push_back(action);
  notify(*action, ActionState::kRunning, ActionState::kRunning);
  return action;
}

ActionPtr Engine::ptask_start(const std::vector<int>& hosts, const std::vector<double>& flops,
                              const std::vector<std::vector<double>>& bytes, const std::string& name) {
  if (hosts.empty() || flops.size() != hosts.size())
    throw xbt::InvalidArgument("ptask_start: hosts/flops size mismatch");
  if (!bytes.empty() && bytes.size() != hosts.size())
    throw xbt::InvalidArgument("ptask_start: bytes matrix must be n x n");
  for (int h : hosts)
    if (!hosts_.at(static_cast<size_t>(h)).on)
      throw xbt::HostFailureException("ptask_start: host is down");

  // The action's "amount" is the normalized fraction of the whole task;
  // coefficient k on a resource means "rate v consumes k*v of the resource",
  // so at completion (integral of v = 1) exactly flops[i] / bytes[i][j] have
  // been consumed. This is SimGrid's L07 parallel-task model.
  auto action = ActionPtr(new Action(this, ActionKind::kPtask, name, 1.0, 1.0));
  bind_var(action.get(), sys_.new_variable(0.0));

  double latency = 0.0;
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (flops[i] > 0) {
      const auto cnst = hosts_[static_cast<size_t>(hosts[i])].cnst;
      sys_.expand(cnst, action->var_, flops[i]);
      action->cnsts_used_.push_back(cnst);
    }
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i].size() != hosts.size())
      throw xbt::InvalidArgument("ptask_start: bytes matrix must be n x n");
    for (size_t j = 0; j < bytes[i].size(); ++j) {
      if (i == j || bytes[i][j] <= 0)
        continue;
      const auto& route = platform_.route(hosts[i], hosts[j]);
      latency = std::max(latency, route.latency);
      for (platform::LinkId l : route.links) {
        const LinkRes& res = links_[static_cast<size_t>(l)];
        sys_.expand(res.cnst, action->var_, bytes[i][j]);
        action->cnsts_used_.push_back(res.cnst);
      }
    }
  }

  action->latency_remaining_ = latency;
  if (latency > 0) {
    action->in_latency_phase_ = true;
  } else {
    sys_.set_weight(action->var_, action->priority_);
  }
  running_.push_back(action);
  return action;
}

ActionPtr Engine::sleep_start(int host, double duration, const std::string& name) {
  HostRes& res = hosts_.at(static_cast<size_t>(host));
  if (!res.on)
    throw xbt::HostFailureException("sleep_start: host is down");
  auto action = ActionPtr(new Action(this, ActionKind::kSleep, name, duration, 1.0));
  action->host_ = host;
  action->rate_ = 1.0;  // time passes at rate 1
  running_.push_back(action);
  return action;
}

void Engine::bind_var(Action* action, MaxMinSystem::VarId var) {
  action->var_ = var;
  if (action_of_var_.size() <= static_cast<size_t>(var))
    action_of_var_.resize(static_cast<size_t>(var) + 1, nullptr);
  action_of_var_[static_cast<size_t>(var)] = action;
}

void Engine::share_resources() {
  // Sleeps manage their rate directly (1, or 0 while suspended); everyone
  // else mirrors its solver allocation. Only actions whose allocation moved
  // in this (incremental) solve need a refresh.
  sys_.solve();
  for (MaxMinSystem::VarId v : sys_.changed_variables()) {
    Action* a = action_of_var_[static_cast<size_t>(v)];
    if (a != nullptr)
      a->rate_ = sys_.value(v);
  }
}

double Engine::action_finish_date(const Action& a) const {
  if (a.state_ == ActionState::kSuspended)
    return kInf;
  if (a.in_latency_phase_)
    return now_ + a.latency_remaining_;
  if (a.remaining_ <= 0)
    return now_;
  if (a.rate_ > 0)
    return now_ + a.remaining_ / a.rate_;
  return kInf;
}

double Engine::next_event_time() {
  share_resources();
  if (!pending_.empty())
    return now_;
  double best = kInf;
  for (const ActionPtr& a : running_)
    best = std::min(best, action_finish_date(*a));
  if (!trace_events_.empty())
    best = std::min(best, std::max(trace_events_.top().time, now_));
  return best;
}

std::vector<ActionEvent> Engine::step(double bound) {
  std::vector<ActionEvent> out;

  // Deliver immediately-failed activities first.
  if (!pending_.empty()) {
    out = std::move(pending_);
    pending_.clear();
    return out;
  }

  share_resources();

  // Planned completion dates, computed before any floating-point advance so
  // that cancellation noise in (target - now_) cannot strand an action.
  double next = kInf;
  for (const ActionPtr& a : running_) {
    a->planned_finish_ = action_finish_date(*a);
    next = std::min(next, a->planned_finish_);
  }
  if (!trace_events_.empty())
    next = std::min(next, std::max(trace_events_.top().time, now_));

  const double target = std::min(next, bound);
  if (target == kInf)
    return out;  // nothing will ever happen
  const double dt = std::max(0.0, target - now_);
  const double eps = time_eps_at(target);

  // Advance all running actions by dt.
  for (const ActionPtr& a : running_) {
    if (a->state_ == ActionState::kSuspended)
      continue;
    if (a->in_latency_phase_)
      a->latency_remaining_ = std::max(0.0, a->latency_remaining_ - dt);
    else if (a->rate_ > 0)
      a->remaining_ = std::max(0.0, a->remaining_ - a->rate_ * dt);
  }
  now_ = target;

  // Latency phases that just expired start consuming bandwidth. Their data
  // phase begins at the next step, so their planned date is consumed here
  // (except when there is no data to transfer at all).
  for (const ActionPtr& a : running_) {
    if (a->state_ != ActionState::kSuspended && a->in_latency_phase_ && a->planned_finish_ <= target + eps) {
      a->in_latency_phase_ = false;
      a->latency_remaining_ = 0;
      if (a->var_ >= 0)
        sys_.set_weight(a->var_, a->priority_);
      if (a->remaining_ > 0)
        a->planned_finish_ = kInf;  // not a data completion
    }
  }

  // Completions: every action whose planned date falls in this step.
  // finish_action mutates running_, so collect first.
  std::vector<ActionPtr> finished;
  for (const ActionPtr& a : running_)
    if (a->state_ == ActionState::kRunning && !a->in_latency_phase_ && a->planned_finish_ <= target + eps)
      finished.push_back(a);
  for (const ActionPtr& a : finished)
    finish_action(a, ActionState::kDone, &out);

  // Trace events due now.
  while (!trace_events_.empty() && trace_events_.top().time <= now_ + kTimeEps) {
    TraceEvent ev = trace_events_.top();
    trace_events_.pop();
    apply_trace_event(ev, out);
  }

  return out;
}

void Engine::apply_trace_event(const TraceEvent& ev, std::vector<ActionEvent>& out) {
  switch (ev.kind) {
    case TraceEvent::Kind::kHostAvail: {
      hosts_[static_cast<size_t>(ev.index)].scale = ev.value;
      refresh_host_capacity(ev.index);
      schedule_next(platform_.host(ev.index).availability, ev.kind, ev.index, ev.time);
      break;
    }
    case TraceEvent::Kind::kHostState: {
      const bool on = ev.value > 0.5;
      HostRes& res = hosts_[static_cast<size_t>(ev.index)];
      if (res.on != on) {
        res.on = on;
        refresh_host_capacity(ev.index);
        if (!on) {
          fail_actions_on_constraint(res.cnst, out);
          // sleeps on this host die too
          std::vector<ActionPtr> victims;
          for (const ActionPtr& a : running_)
            if (a->kind_ == ActionKind::kSleep && a->host_ == ev.index)
              victims.push_back(a);
          for (const ActionPtr& a : victims)
            finish_action(a, ActionState::kFailed, &out);
        }
        if (resource_observer_)
          resource_observer_(true, ev.index, on);
      }
      schedule_next(platform_.host(ev.index).state, ev.kind, ev.index, ev.time);
      break;
    }
    case TraceEvent::Kind::kLinkAvail: {
      links_[static_cast<size_t>(ev.index)].scale = ev.value;
      refresh_link_capacity(static_cast<platform::LinkId>(ev.index));
      schedule_next(platform_.link(static_cast<platform::LinkId>(ev.index)).availability, ev.kind, ev.index,
                    ev.time);
      break;
    }
    case TraceEvent::Kind::kLinkState: {
      const bool on = ev.value > 0.5;
      LinkRes& res = links_[static_cast<size_t>(ev.index)];
      if (res.on != on) {
        res.on = on;
        refresh_link_capacity(static_cast<platform::LinkId>(ev.index));
        if (!on)
          fail_actions_on_constraint(res.cnst, out);
        if (resource_observer_)
          resource_observer_(false, ev.index, on);
      }
      schedule_next(platform_.link(static_cast<platform::LinkId>(ev.index)).state, ev.kind, ev.index, ev.time);
      break;
    }
  }
}

void Engine::refresh_host_capacity(int host) {
  const HostRes& res = hosts_[static_cast<size_t>(host)];
  sys_.set_capacity(res.cnst, res.on ? platform_.host(host).speed_flops * res.scale : 0.0);
}

void Engine::refresh_link_capacity(platform::LinkId link) {
  const LinkRes& res = links_[static_cast<size_t>(link)];
  sys_.set_capacity(res.cnst,
                    res.on ? platform_.link(link).bandwidth_Bps * res.scale * bandwidth_factor_ : 0.0);
}

void Engine::fail_actions_on_constraint(MaxMinSystem::CnstId cnst, std::vector<ActionEvent>& out) {
  std::vector<ActionPtr> victims;
  for (const ActionPtr& a : running_)
    if (std::find(a->cnsts_used_.begin(), a->cnsts_used_.end(), cnst) != a->cnsts_used_.end())
      victims.push_back(a);
  for (const ActionPtr& a : victims)
    finish_action(a, ActionState::kFailed, &out);
}

void Engine::finish_action(const ActionPtr& action, ActionState final_state, std::vector<ActionEvent>* out) {
  const ActionState old_state = action->state_;
  action->state_ = final_state;
  action->finish_time_ = now_;
  if (final_state == ActionState::kDone)
    action->remaining_ = 0;
  if (action->var_ >= 0) {
    action_of_var_[static_cast<size_t>(action->var_)] = nullptr;
    sys_.release_variable(action->var_);
    action->var_ = -1;
  }
  running_.erase(std::remove(running_.begin(), running_.end(), action), running_.end());
  notify(*action, old_state, final_state);
  if (out != nullptr)
    out->push_back(ActionEvent{action, final_state == ActionState::kFailed});
  else
    pending_.push_back(ActionEvent{action, final_state == ActionState::kFailed});
}

void Engine::notify(const Action& action, ActionState old_state, ActionState new_state) {
  if (observer_)
    observer_(action, old_state, new_state);
}

double Engine::host_speed(int host) const {
  const HostRes& res = hosts_.at(static_cast<size_t>(host));
  return res.on ? platform_.host(host).speed_flops * res.scale : 0.0;
}

double Engine::link_bandwidth(platform::LinkId link) const {
  const LinkRes& res = links_.at(static_cast<size_t>(link));
  return res.on ? platform_.link(link).bandwidth_Bps * res.scale : 0.0;
}

double Engine::host_load(int host) {
  share_resources();
  return sys_.usage(hosts_.at(static_cast<size_t>(host)).cnst);
}

double Engine::link_load(platform::LinkId link) {
  share_resources();
  return sys_.usage(links_.at(static_cast<size_t>(link)).cnst);
}

void Engine::set_host_state(int host, bool on) {
  HostRes& res = hosts_.at(static_cast<size_t>(host));
  if (res.on == on)
    return;
  res.on = on;
  refresh_host_capacity(host);
  if (!on) {
    std::vector<ActionEvent> out;
    fail_actions_on_constraint(res.cnst, out);
    std::vector<ActionPtr> victims;
    for (const ActionPtr& a : running_)
      if (a->kind_ == ActionKind::kSleep && a->host_ == host)
        victims.push_back(a);
    for (const ActionPtr& a : victims)
      finish_action(a, ActionState::kFailed, &out);
    for (auto& ev : out)
      pending_.push_back(std::move(ev));
  }
  if (resource_observer_)
    resource_observer_(true, host, on);
}

void Engine::set_link_state(platform::LinkId link, bool on) {
  LinkRes& res = links_.at(static_cast<size_t>(link));
  if (res.on == on)
    return;
  res.on = on;
  refresh_link_capacity(link);
  if (!on) {
    std::vector<ActionEvent> out;
    fail_actions_on_constraint(res.cnst, out);
    for (auto& ev : out)
      pending_.push_back(std::move(ev));
  }
  if (resource_observer_)
    resource_observer_(false, link, on);
}

void Engine::set_host_scale(int host, double scale) {
  hosts_.at(static_cast<size_t>(host)).scale = scale;
  refresh_host_capacity(host);
}

void Engine::set_link_scale(platform::LinkId link, double scale) {
  links_.at(static_cast<size_t>(link)).scale = scale;
  refresh_link_capacity(link);
}

}  // namespace sg::core
