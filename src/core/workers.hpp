/// \file workers.hpp
/// ShardWorkers — the engine's persistent worker pool for per-shard phases.
///
/// One lane per configured thread; lane 0 is always the calling (maestro)
/// thread, lanes 1..n-1 are OS threads parked on a condition variable
/// between phases. A phase is a barrier-style fan-out: every lane runs its
/// statically assigned slice of the work (shard s on lane s % lanes), the
/// caller blocks until all lanes are done, and the first exception thrown
/// by any lane is rethrown on the caller. Static assignment keeps the
/// shard -> lane mapping a pure function of the shard id, so any state a
/// lane writes "for its shards" is written by exactly one thread per phase
/// no matter how the OS schedules the lanes — the foundation of the
/// engine's parallel == serial determinism guarantee.
#pragma once

#include <functional>
#include <memory>

namespace sg::core {

class ShardWorkers {
public:
  /// Spawns `lanes - 1` worker threads (lane 0 is the caller).
  explicit ShardWorkers(int lanes);
  ~ShardWorkers();
  ShardWorkers(const ShardWorkers&) = delete;
  ShardWorkers& operator=(const ShardWorkers&) = delete;

  int lanes() const { return lanes_; }

  /// The static shard -> lane assignment, shared by every phase.
  static int lane_of(int shard, int lanes) { return shard % lanes; }

  /// Run fn(item) for every item in [0, n_items): item i executes on lane
  /// i % lanes, each lane walking its items in ascending order. `on_main`,
  /// when given, runs on the calling thread after lane 0's items — the
  /// engine uses it to co-solve the cross-shard coupled groups concurrently
  /// with the other lanes' independent work. Returns once every lane has
  /// finished. Not reentrant.
  void run(int n_items, const std::function<void(int)>& fn,
           const std::function<void()>& on_main = {});

  /// Run fn(lane, lanes) once per lane (lane 0 on the calling thread):
  /// the sharded-by-filter variant for phases whose work list is not
  /// indexed by shard (each lane scans the list and keeps the entries
  /// whose shard maps to it).
  void run_lanes(const std::function<void(int, int)>& fn);

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  ///< null when lanes_ == 1
  int lanes_;
};

}  // namespace sg::core
