/// \file workers.hpp
/// ShardWorkers — the engine's persistent worker pool for per-shard phases.
///
/// One lane per configured thread; lane 0 is always the calling (maestro)
/// thread, lanes 1..n-1 are OS threads parked on a condition variable
/// between phases. A phase is a barrier-style fan-out: every lane runs its
/// statically assigned slice of the work (shard s on lane s % lanes), the
/// caller blocks until all lanes are done, and the first exception thrown
/// by any lane is rethrown on the caller. Static assignment keeps the
/// shard -> lane mapping a pure function of the shard id, so any state a
/// lane writes "for its shards" is written by exactly one thread per phase
/// no matter how the OS schedules the lanes — the foundation of the
/// engine's parallel == serial determinism guarantee.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace sg::core {

/// Non-owning callable reference: a context pointer plus a call thunk, the
/// allocation-free std::function replacement for the phase fan-out hot path.
/// The referred callable must outlive every call — trivially satisfied by
/// phase fan-outs, where the lambda lives in the caller's frame for the
/// whole barrier.
template <typename Sig>
class FnRef;

template <typename R, typename... Args>
class FnRef<R(Args...)> {
public:
  FnRef() = default;
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FnRef>>>
  FnRef(F&& f)  // NOLINT: implicit by design, mirrors std::function_ref
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* ctx, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(ctx))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(ctx_, std::forward<Args>(args)...); }
  explicit operator bool() const { return call_ != nullptr; }

private:
  void* ctx_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

/// Monotonic nanosecond clock shared by the phase profiler's call sites.
inline std::uint64_t phase_clock_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Phase-profiling sink (engine/profile): per-lane busy nanoseconds plus the
/// wall time spent inside the instrumented fan-outs. Each lane writes only
/// its own cache-line-padded slot during a phase, and the maestro reads the
/// slots only after the phase barrier (the pool's mutex/condvar handshake
/// publishes them), so plain loads/stores are race-free.
struct PhaseProbe {
  struct alignas(64) LaneSlot {
    std::uint64_t busy_ns = 0;
  };
  std::vector<LaneSlot> lanes;
  std::uint64_t parallel_ns = 0;  ///< maestro-side wall inside fan-outs

  explicit PhaseProbe(int lane_count) : lanes(static_cast<size_t>(lane_count)) {}
};

class ShardWorkers {
public:
  /// Spawns `lanes - 1` worker threads (lane 0 is the caller).
  explicit ShardWorkers(int lanes);
  ~ShardWorkers();
  ShardWorkers(const ShardWorkers&) = delete;
  ShardWorkers& operator=(const ShardWorkers&) = delete;

  int lanes() const { return lanes_; }

  /// The static shard -> lane assignment, shared by every phase.
  static int lane_of(int shard, int lanes) { return shard % lanes; }

  /// Run fn(item) for every item in [0, n_items): item i executes on lane
  /// i % lanes, each lane walking its items in ascending order. `on_main`,
  /// when given, runs on the calling thread after lane 0's items. With
  /// `probe`, each lane adds its slice time to its busy slot and the caller
  /// adds the phase wall time to parallel_ns. Returns once every lane has
  /// finished. Not reentrant.
  void run(int n_items, FnRef<void(int)> fn, FnRef<void()> on_main = {},
           PhaseProbe* probe = nullptr);

  /// Run fn(lane, lanes) once per lane (lane 0 on the calling thread):
  /// the sharded-by-filter variant for phases whose work list is not
  /// indexed by shard (each lane scans the list and keeps the entries
  /// whose shard maps to it).
  void run_lanes(FnRef<void(int, int)> fn, PhaseProbe* probe = nullptr);

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  ///< null when lanes_ == 1
  int lanes_;
};

}  // namespace sg::core
