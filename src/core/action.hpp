/// \file action.hpp
/// Actions are the unit of resource consumption in SURF: an execution on a
/// CPU, a data transfer across a route, or a parallel task spanning both.
/// The engine assigns each running action a rate from the MaxMin solution
/// and advances its remaining work as simulated time passes.
///
/// The steady-state Action object is deliberately small (~2 cache lines,
/// control block included): the per-event hot path (rate refresh, heap pop,
/// completion) reads the leading fields; state/kind/flags are packed into
/// single bytes; the display name lives in a lazily-populated side table
/// co-owned by the action's own control block (most actions keep their
/// kind's default name and pay nothing); and the set of constraints the
/// action consumes is not stored here at all — it is read from the solver's
/// element arena, which the engine also uses as its cnst -> actions
/// failure-propagation index.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "core/maxmin.hpp"

namespace sg::core {

class Engine;
struct ActionBlockPool;

enum class ActionState : std::uint8_t {
  kRunning,   ///< progressing (or waiting out its latency phase)
  kSuspended, ///< paused by the application; consumes nothing
  kDone,      ///< completed successfully
  kFailed,    ///< a resource it used died
  kCanceled,  ///< cancelled by the application
};

enum class ActionKind : std::uint8_t { kExec, kComm, kPtask, kSleep };

/// One resource-consuming activity. Created via Engine::exec_start /
/// comm_start / ptask_start / sleep_start; owned jointly by the engine (while
/// running) and the caller.
class Action {
public:
  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;
  ~Action();

  ActionState state() const { return state_; }
  ActionKind kind() const { return kind_; }
  /// Display name: the name passed at creation, or the kind's default
  /// ("exec", "comm", "ptask", "sleep"). Looked up in a side table the
  /// action's control block co-owns, so the action itself stays slim and
  /// the name outlives the engine together with the ActionPtr.
  const std::string& name() const;

  double total() const { return total_; }
  /// Remaining work as of the engine's current simulated time. Progress is
  /// tracked lazily (synced when the action's rate changes), so this
  /// extrapolates from the last sync point.
  double remaining() const;
  /// Rate allocated by the last sharing recomputation (work units per second).
  double rate() const { return rate_; }
  double start_time() const { return start_time_; }
  /// Completion (or failure) date; NaN while still running.
  double finish_time() const { return finish_time_; }
  /// Remaining latency phase (communications only), as of the engine's
  /// current simulated time.
  double latency_remaining() const;

  double priority() const { return priority_; }

  /// Pause/resume the action (used by process suspension). Suspended actions
  /// release their resource share.
  void suspend();
  void resume();
  /// Abort; the action transitions to kCanceled and is reaped by the engine.
  void cancel();
  /// Change the sharing priority (weight) of a running action.
  void set_priority(double priority);

  /// Host the action runs on: exec/sleep host, or comm source host.
  int host() const { return host_; }
  /// Destination host of a communication (-1 otherwise).
  int peer_host() const { return peer_host_; }

  /// Arbitrary user payload (the kernel attaches the waiting activity).
  void* user_data = nullptr;

protected:
  // Protected, not private: the engine instantiates actions through a local
  // derived shell so std::make_shared can fuse the control block and the
  // action into one allocation (see Engine's make_action).
  Action(Engine* engine, ActionKind kind, double total, double priority);

private:
  friend class Engine;

  // Field order groups what the per-event hot path (rate refresh, heap
  // pop, completion) touches into the leading cache line; packed metadata
  // and the rarely-read fields trail.
  Engine* engine_;
  double remaining_;
  double rate_ = 0;
  double last_update_ = 0;     ///< date remaining_/latency_remaining_ were last synced
  std::uint64_t heap_stamp_ = 0;  ///< completion-heap entries older than this are stale
  size_t run_idx_ = 0;         ///< index in the engine's running_ vector (O(1) removal)
  double latency_remaining_ = 0;
  double finish_time_ = std::numeric_limits<double>::quiet_NaN();
  ShardedMaxMin::VarId var_ = -1;
  /// Index in the source host's per-host action index (the sleep list, or —
  /// with engine/kill-transit-comms — the endpoint-comm list).
  std::uint32_t host_list_idx_ = 0;
  /// Index in the destination host's endpoint-comm list (kill-transit only).
  std::uint32_t peer_list_idx_ = 0;
  int host_ = -1;  ///< host an exec/sleep runs on (failure propagation)
  int peer_host_ = -1;  ///< comm destination host
  /// Event-heap / solver affinity: the zone shard when the whole activity
  /// stays inside one zone, the backbone shard (0) otherwise. Assigned at
  /// creation from the platform's shard map.
  std::int32_t shard_ = 0;
  ActionState state_ = ActionState::kRunning;
  ActionKind kind_;
  bool in_latency_phase_ = false;
  bool in_heap_ = false;  ///< has a live (non-stale) completion-heap entry
  bool has_name_ = false;  ///< a custom name sits in pool_->names
  bool in_endpoint_lists_ = false;  ///< registered in the hosts' comm indexes
  double priority_;
  double total_;
  double start_time_ = 0;
  /// Shared pool + name table; co-owned by this action's control block, so
  /// it outlives the action (and possibly the engine). Set only for actions
  /// with a custom name (has_name_).
  ActionBlockPool* pool_ = nullptr;
};

using ActionPtr = std::shared_ptr<Action>;

}  // namespace sg::core
