/// \file action.hpp
/// Actions are the unit of resource consumption in SURF: an execution on a
/// CPU, a data transfer across a route, or a parallel task spanning both.
/// The engine assigns each running action a rate from the MaxMin solution
/// and advances its remaining work as simulated time passes.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/maxmin.hpp"

namespace sg::core {

class Engine;

enum class ActionState {
  kRunning,   ///< progressing (or waiting out its latency phase)
  kSuspended, ///< paused by the application; consumes nothing
  kDone,      ///< completed successfully
  kFailed,    ///< a resource it used died
  kCanceled,  ///< cancelled by the application
};

enum class ActionKind { kExec, kComm, kPtask, kSleep };

/// One resource-consuming activity. Created via Engine::exec_start /
/// comm_start / ptask_start / sleep_start; owned jointly by the engine (while
/// running) and the caller.
class Action {
public:
  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ActionState state() const { return state_; }
  ActionKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  double total() const { return total_; }
  double remaining() const { return remaining_; }
  /// Rate allocated by the last sharing recomputation (work units per second).
  double rate() const { return rate_; }
  double start_time() const { return start_time_; }
  /// Completion (or failure) date; NaN while still running.
  double finish_time() const { return finish_time_; }
  /// Remaining latency phase (communications only).
  double latency_remaining() const { return latency_remaining_; }

  double priority() const { return priority_; }

  /// Pause/resume the action (used by process suspension). Suspended actions
  /// release their resource share.
  void suspend();
  void resume();
  /// Abort; the action transitions to kCanceled and is reaped by the engine.
  void cancel();
  /// Change the sharing priority (weight) of a running action.
  void set_priority(double priority);

  /// Host the action runs on: exec/sleep host, or comm source host.
  int host() const { return host_; }
  /// Destination host of a communication (-1 otherwise).
  int peer_host() const { return peer_host_; }

  /// Arbitrary user payload (the kernel attaches the waiting activity).
  void* user_data = nullptr;

private:
  friend class Engine;
  Action(Engine* engine, ActionKind kind, std::string name, double total, double priority);

  Engine* engine_;
  ActionKind kind_;
  std::string name_;
  double total_;
  double remaining_;
  double rate_ = 0;
  double priority_;
  double start_time_ = 0;
  double finish_time_ = std::numeric_limits<double>::quiet_NaN();
  double latency_remaining_ = 0;
  double rate_bound_ = MaxMinSystem::kNoBound;  ///< e.g. TCP window cap
  double planned_finish_ = 0;  ///< engine-internal: completion date this step
  MaxMinSystem::VarId var_ = -1;
  ActionState state_ = ActionState::kRunning;
  bool in_latency_phase_ = false;
  int host_ = -1;  ///< host an exec/sleep runs on (failure propagation)
  int peer_host_ = -1;  ///< comm destination host
  std::vector<MaxMinSystem::CnstId> cnsts_used_;  ///< for failure propagation
};

using ActionPtr = std::shared_ptr<Action>;

}  // namespace sg::core
