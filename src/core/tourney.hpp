/// \file tourney.hpp
/// TourneyTree — an incrementally maintained winner (tournament) tree over a
/// fixed set of double keys, used by the engine's target pick.
///
/// The engine keeps one leaf per shard event source (heap head bound, trace
/// top). Re-selecting the global minimum after a round used to be a linear
/// scan over every shard's cached heads; with the tree, refreshing the
/// leaves of the shards whose heads actually changed costs O(log shards)
/// each, and the minimum (or the full set of leaves at or below a bound) is
/// read off the internal nodes without touching the quiet shards at all.
///
/// Ties resolve to the SMALLER leaf index — with the engine's leaf layout
/// (latency head before completion head, shards in ascending order) this
/// reproduces the tie order of the old scan exactly: earlier shard first,
/// latency beats completion at equal dates.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace sg::core {

class TourneyTree {
public:
  /// Size the tree for `n` leaves, all keyed +inf. Leaves are padded up to
  /// the next power of two so every internal node has exactly two children.
  void reset(int n) {
    n_leaves_ = n < 0 ? 0 : n;
    base_ = 1;
    while (base_ < static_cast<size_t>(n_leaves_))
      base_ <<= 1;
    key_.assign(2 * base_, kInf);
  }

  int size() const { return n_leaves_; }

  double key(int leaf) const { return key_[base_ + static_cast<size_t>(leaf)]; }

  /// Set one leaf's key and replay its matches up to the root: O(log n).
  void update(int leaf, double k) {
    size_t i = base_ + static_cast<size_t>(leaf);
    if (key_[i] == k)
      return;
    key_[i] = k;
    for (i >>= 1; i >= 1; i >>= 1) {
      const double winner = std::min(key_[2 * i], key_[2 * i + 1]);
      if (key_[i] == winner)
        break;  // the rematch changes nothing further up
      key_[i] = winner;
    }
  }

  /// The minimum key over all leaves (+inf when every leaf is +inf).
  double min_key() const { return key_[1]; }

  /// Leaf index holding min_key(); ties go to the smaller index (the left
  /// child is preferred on equal keys all the way down).
  int min_leaf() const {
    size_t i = 1;
    while (i < base_)
      i = key_[2 * i] <= key_[2 * i + 1] ? 2 * i : 2 * i + 1;
    return static_cast<int>(i - base_);
  }

  /// Visit every leaf whose key is <= bound, in ascending leaf order (a
  /// left-first descent that skips any subtree whose winner exceeds the
  /// bound). Cost: O(hits * log n), independent of the quiet leaves.
  template <typename Fn>
  void for_each_leaf_le(double bound, Fn&& fn) const {
    if (key_[1] > bound)
      return;
    descend(1, bound, fn);
  }

private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  template <typename Fn>
  void descend(size_t i, double bound, Fn&& fn) const {
    if (i >= base_) {
      fn(static_cast<int>(i - base_));
      return;
    }
    if (key_[2 * i] <= bound)
      descend(2 * i, bound, fn);
    if (key_[2 * i + 1] <= bound)
      descend(2 * i + 1, bound, fn);
  }

  std::vector<double> key_;  ///< 1-based heap layout; leaves at [base_, 2*base_)
  size_t base_ = 1;          ///< first leaf slot (power of two)
  int n_leaves_ = 0;
};

}  // namespace sg::core
