#include "core/workers.hpp"

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sg::core {

struct ShardWorkers::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   ///< wakes the lanes for a new phase
  std::condition_variable done_cv;   ///< wakes the caller at the barrier
  std::uint64_t generation = 0;      ///< bumped once per phase
  int pending = 0;                   ///< worker lanes still running the phase
  bool stop = false;

  // Phase descriptor, valid while generation is current. Exactly one of
  // item_fn / lane_fn is set.
  const std::function<void(int)>* item_fn = nullptr;
  const std::function<void(int, int)>* lane_fn = nullptr;
  int n_items = 0;
  int lanes = 0;

  std::exception_ptr first_error;
  std::vector<std::thread> threads;

  void record_error() {
    std::lock_guard<std::mutex> lock(mutex);
    if (!first_error)
      first_error = std::current_exception();
  }

  void run_slice(int lane, const std::function<void(int)>* items,
                 const std::function<void(int, int)>* per_lane, int n) {
    try {
      if (items != nullptr) {
        for (int i = lane; i < n; i += lanes)
          (*items)(i);
      } else {
        (*per_lane)(lane, lanes);
      }
    } catch (...) {
      record_error();
    }
  }

  void worker_main(int lane) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* items = nullptr;
      const std::function<void(int, int)>* per_lane = nullptr;
      int n = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        if (stop)
          return;
        seen = generation;
        items = item_fn;
        per_lane = lane_fn;
        n = n_items;
      }
      run_slice(lane, items, per_lane, n);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--pending == 0)
          done_cv.notify_one();
      }
    }
  }
};

ShardWorkers::ShardWorkers(int lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  if (lanes_ == 1)
    return;
  impl_ = std::make_unique<Impl>();
  impl_->lanes = lanes_;
  impl_->threads.reserve(lanes_ - 1);
  for (int lane = 1; lane < lanes_; ++lane)
    impl_->threads.emplace_back([this, lane] { impl_->worker_main(lane); });
}

ShardWorkers::~ShardWorkers() {
  if (!impl_)
    return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads)
    t.join();
}

void ShardWorkers::run(int n_items, const std::function<void(int)>& fn,
                       const std::function<void()>& on_main) {
  if (!impl_) {
    for (int i = 0; i < n_items; ++i)
      fn(i);
    if (on_main)
      on_main();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->item_fn = &fn;
    impl_->lane_fn = nullptr;
    impl_->n_items = n_items;
    impl_->pending = lanes_ - 1;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  impl_->run_slice(0, &fn, nullptr, n_items);
  try {
    if (on_main)
      on_main();
  } catch (...) {
    impl_->record_error();
  }
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
    if (impl_->first_error) {
      std::exception_ptr err = impl_->first_error;
      impl_->first_error = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

void ShardWorkers::run_lanes(const std::function<void(int, int)>& fn) {
  if (!impl_) {
    fn(0, 1);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->item_fn = nullptr;
    impl_->lane_fn = &fn;
    impl_->n_items = 0;
    impl_->pending = lanes_ - 1;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  impl_->run_slice(0, nullptr, &fn, 0);
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
    if (impl_->first_error) {
      std::exception_ptr err = impl_->first_error;
      impl_->first_error = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

}  // namespace sg::core
