#include "core/workers.hpp"

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sg::core {

struct ShardWorkers::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   ///< wakes the lanes for a new phase
  std::condition_variable done_cv;   ///< wakes the caller at the barrier
  std::uint64_t generation = 0;      ///< bumped once per phase
  int pending = 0;                   ///< worker lanes still running the phase
  bool stop = false;

  // Phase descriptor, valid while generation is current. Exactly one of
  // item_fn / lane_fn is engaged. FnRefs are two pointers — copied into the
  // descriptor by value, no allocation per phase.
  FnRef<void(int)> item_fn;
  FnRef<void(int, int)> lane_fn;
  int n_items = 0;
  int lanes = 0;
  PhaseProbe* probe = nullptr;

  std::exception_ptr first_error;
  std::vector<std::thread> threads;

  void record_error() {
    std::lock_guard<std::mutex> lock(mutex);
    if (!first_error)
      first_error = std::current_exception();
  }

  void run_slice(int lane, FnRef<void(int)> items, FnRef<void(int, int)> per_lane, int n) {
    try {
      if (items) {
        for (int i = lane; i < n; i += lanes)
          items(i);
      } else {
        per_lane(lane, lanes);
      }
    } catch (...) {
      record_error();
    }
  }

  void worker_main(int lane) {
    std::uint64_t seen = 0;
    while (true) {
      FnRef<void(int)> items;
      FnRef<void(int, int)> per_lane;
      int n = 0;
      PhaseProbe* phase_probe = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        if (stop)
          return;
        seen = generation;
        items = item_fn;
        per_lane = lane_fn;
        n = n_items;
        phase_probe = probe;
      }
      const std::uint64_t t0 = phase_probe != nullptr ? phase_clock_ns() : 0;
      run_slice(lane, items, per_lane, n);
      if (phase_probe != nullptr)
        phase_probe->lanes[static_cast<size_t>(lane)].busy_ns += phase_clock_ns() - t0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--pending == 0)
          done_cv.notify_one();
      }
    }
  }
};

ShardWorkers::ShardWorkers(int lanes) : lanes_(lanes < 1 ? 1 : lanes) {
  if (lanes_ == 1)
    return;
  impl_ = std::make_unique<Impl>();
  impl_->lanes = lanes_;
  impl_->threads.reserve(lanes_ - 1);
  for (int lane = 1; lane < lanes_; ++lane)
    impl_->threads.emplace_back([this, lane] { impl_->worker_main(lane); });
}

ShardWorkers::~ShardWorkers() {
  if (!impl_)
    return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads)
    t.join();
}

void ShardWorkers::run(int n_items, FnRef<void(int)> fn, FnRef<void()> on_main,
                       PhaseProbe* probe) {
  if (!impl_) {
    const std::uint64_t t0 = probe != nullptr ? phase_clock_ns() : 0;
    for (int i = 0; i < n_items; ++i)
      fn(i);
    if (on_main)
      on_main();
    if (probe != nullptr) {
      const std::uint64_t dt = phase_clock_ns() - t0;
      probe->lanes[0].busy_ns += dt;
      probe->parallel_ns += dt;
    }
    return;
  }
  const std::uint64_t wall0 = probe != nullptr ? phase_clock_ns() : 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->item_fn = fn;
    impl_->lane_fn = {};
    impl_->n_items = n_items;
    impl_->probe = probe;
    impl_->pending = lanes_ - 1;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  const std::uint64_t t0 = probe != nullptr ? phase_clock_ns() : 0;
  impl_->run_slice(0, fn, {}, n_items);
  try {
    if (on_main)
      on_main();
  } catch (...) {
    impl_->record_error();
  }
  if (probe != nullptr)
    probe->lanes[0].busy_ns += phase_clock_ns() - t0;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
    if (impl_->first_error) {
      std::exception_ptr err = impl_->first_error;
      impl_->first_error = nullptr;
      lock.unlock();
      if (probe != nullptr)
        probe->parallel_ns += phase_clock_ns() - wall0;
      std::rethrow_exception(err);
    }
  }
  if (probe != nullptr)
    probe->parallel_ns += phase_clock_ns() - wall0;
}

void ShardWorkers::run_lanes(FnRef<void(int, int)> fn, PhaseProbe* probe) {
  if (!impl_) {
    const std::uint64_t t0 = probe != nullptr ? phase_clock_ns() : 0;
    fn(0, 1);
    if (probe != nullptr) {
      const std::uint64_t dt = phase_clock_ns() - t0;
      probe->lanes[0].busy_ns += dt;
      probe->parallel_ns += dt;
    }
    return;
  }
  const std::uint64_t wall0 = probe != nullptr ? phase_clock_ns() : 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->item_fn = {};
    impl_->lane_fn = fn;
    impl_->n_items = 0;
    impl_->probe = probe;
    impl_->pending = lanes_ - 1;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  const std::uint64_t t0 = probe != nullptr ? phase_clock_ns() : 0;
  impl_->run_slice(0, {}, fn, 0);
  if (probe != nullptr)
    probe->lanes[0].busy_ns += phase_clock_ns() - t0;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
    if (impl_->first_error) {
      std::exception_ptr err = impl_->first_error;
      impl_->first_error = nullptr;
      lock.unlock();
      if (probe != nullptr)
        probe->parallel_ns += phase_clock_ns() - wall0;
      std::rethrow_exception(err);
    }
  }
  if (probe != nullptr)
    probe->parallel_ns += phase_clock_ns() - wall0;
}

}  // namespace sg::core
