/// \file maxmin.hpp
/// The unifying MaxMin fairness model at the heart of SURF (paper:
/// "allocate as much capacity to all tasks in a way that maximizes the
/// minimum capacity allocation over all tasks").
///
/// The system consists of
///  * constraints — resources with a capacity C_c (CPU flop/s, link byte/s),
///  * variables   — activity rates v_i, optionally upper-bounded (b_i) and
///                  weighted (w_i, growth share / priority),
///  * elements    — "variable i consumes coeff * v_i of constraint c".
///
/// solve() computes the weighted max-min fair allocation by progressive
/// filling: all active variables grow proportionally to their weight until a
/// constraint saturates (shared) or a variable hits its bound; saturated
/// participants freeze and filling continues. Fatpipe (non-shared)
/// constraints cap each variable individually instead of dividing capacity —
/// the behaviour of an over-provisioned backbone.
///
/// The same solver is used for computation, communication, their
/// interference, and parallel tasks, exactly as the paper describes.
#pragma once

#include <cstddef>
#include <vector>

namespace sg::core {

class MaxMinSystem {
public:
  using VarId = int;
  using CnstId = int;
  static constexpr double kNoBound = -1.0;
  /// Rate assigned to a variable that no constraint or bound restricts.
  static constexpr double kUnlimited = 1e30;

  /// Create a resource constraint. `shared`: capacity divided among users;
  /// otherwise each user is individually capped (fatpipe).
  CnstId new_constraint(double capacity, bool shared = true);

  /// Create an activity variable. weight > 0 makes it active (its allocation
  /// grows proportionally to weight); weight == 0 suspends it (allocation 0).
  VarId new_variable(double weight, double bound = kNoBound);

  /// Declare that variable consumes `coeff` units of `cnst` per unit of rate.
  void expand(CnstId cnst, VarId var, double coeff = 1.0);

  /// Release a variable (its consumption disappears from all constraints).
  void release_variable(VarId var);

  void set_capacity(CnstId cnst, double capacity);
  double capacity(CnstId cnst) const;
  void set_weight(VarId var, double weight);
  double weight(VarId var) const;
  void set_bound(VarId var, double bound);
  double bound(VarId var) const;

  /// Allocation computed by the last solve().
  double value(VarId var) const;

  /// Total consumption of a constraint under the last solution
  /// (sum for shared constraints, max for fatpipe).
  double usage(CnstId cnst) const;

  /// Number of live (not released) variables.
  size_t variable_count() const { return live_vars_; }
  size_t constraint_count() const { return cnsts_.size(); }

  /// Run progressive filling. Idempotent between modifications.
  void solve();

private:
  struct Variable;
  struct Element {
    VarId var;
    double coeff;
  };
  struct Constraint {
    double capacity;
    bool shared;
    std::vector<Element> elems;
    size_t dead_elems = 0;
    void compact(const std::vector<Variable>& vars);
  };
  struct Variable {
    double weight;
    double bound;
    double value = 0;
    bool alive = true;
    std::vector<CnstId> cnsts;      ///< constraints this variable uses
    std::vector<double> coeffs;     ///< parallel to cnsts
  };

  std::vector<Constraint> cnsts_;
  std::vector<Variable> vars_;
  std::vector<VarId> free_vars_;
  size_t live_vars_ = 0;
};

}  // namespace sg::core
