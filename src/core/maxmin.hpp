/// \file maxmin.hpp
/// The unifying MaxMin fairness model at the heart of SURF (paper:
/// "allocate as much capacity to all tasks in a way that maximizes the
/// minimum capacity allocation over all tasks").
///
/// The system consists of
///  * constraints — resources with a capacity C_c (CPU flop/s, link byte/s),
///  * variables   — activity rates v_i, optionally upper-bounded (b_i) and
///                  weighted (w_i, growth share / priority),
///  * elements    — "variable i consumes coeff * v_i of constraint c".
///
/// solve() computes the weighted max-min fair allocation by progressive
/// filling: all active variables grow proportionally to their weight until a
/// constraint saturates (shared) or a variable hits its bound; saturated
/// participants freeze and filling continues. Fatpipe (non-shared)
/// constraints cap each variable individually instead of dividing capacity —
/// the behaviour of an over-provisioned backbone.
///
/// The same solver is used for computation, communication, their
/// interference, and parallel tasks, exactly as the paper describes.
///
/// ## Solver internals: dirty sets and partial invalidation
///
/// Re-running progressive filling over the whole system on every state
/// change is O(constraints x elements x filling rounds) — the cost that kept
/// the original SURF from scaling. Instead, the system tracks *dirtiness* at
/// the granularity of individual variables and constraints:
///
///  * every mutation (new_variable, expand, release_variable, set_weight,
///    set_bound, set_capacity) marks the touched variable/constraint dirty —
///    no-op mutations (setting a value to itself) mark nothing;
///  * solve() computes the transitive closure of the dirty seeds over the
///    bipartite variable-constraint graph. Because the max-min allocation of
///    a connected component is independent of every other component, this
///    closure is exactly the union of the components whose allocation can
///    have changed;
///  * progressive filling then runs restricted to that closure. Allocations
///    of untouched components are left frozen, so the per-event cost is
///    O(affected subgraph), not O(whole system);
///  * when the closure covers more than half of the live variables, solve()
///    falls back to solve_full() — the from-scratch path, also available
///    directly for equivalence testing;
///  * changed_variables() reports which allocations moved in the last
///    solve(), letting callers (the SURF engine) refresh only those rates.
///
/// The decomposition is sound because progressive filling has a unique fixed
/// point (the weighted max-min fair allocation), and disjoint components
/// share no constraint: filling them together or separately yields the same
/// allocation.
#pragma once

#include <cstddef>
#include <vector>

namespace sg::core {

class MaxMinSystem {
public:
  using VarId = int;
  using CnstId = int;
  static constexpr double kNoBound = -1.0;
  /// Rate assigned to a variable that no constraint or bound restricts.
  static constexpr double kUnlimited = 1e30;

  /// Create a resource constraint. `shared`: capacity divided among users;
  /// otherwise each user is individually capped (fatpipe).
  CnstId new_constraint(double capacity, bool shared = true);

  /// Create an activity variable. weight > 0 makes it active (its allocation
  /// grows proportionally to weight); weight == 0 suspends it (allocation 0).
  VarId new_variable(double weight, double bound = kNoBound);

  /// Declare that variable consumes `coeff` units of `cnst` per unit of rate.
  /// Throws xbt::InvalidArgument on an out-of-range id or a released variable.
  void expand(CnstId cnst, VarId var, double coeff = 1.0);

  /// Release a variable (its consumption disappears from all constraints).
  void release_variable(VarId var);

  void set_capacity(CnstId cnst, double capacity);
  double capacity(CnstId cnst) const;
  void set_weight(VarId var, double weight);
  double weight(VarId var) const;
  void set_bound(VarId var, double bound);
  double bound(VarId var) const;

  /// Allocation computed by the last solve().
  double value(VarId var) const;

  /// Total consumption of a constraint under the last solution
  /// (sum for shared constraints, max for fatpipe).
  double usage(CnstId cnst) const;

  /// Number of live (not released) variables.
  size_t variable_count() const { return live_vars_; }
  size_t constraint_count() const { return cnsts_.size(); }

  /// Run progressive filling incrementally: only the connected components
  /// touched by a mutation since the last solve are recomputed; untouched
  /// allocations stay frozen. Idempotent between modifications.
  void solve();

  /// Recompute every allocation from scratch (the incremental path falls
  /// back to this when most of the system is dirty; tests use it to check
  /// incremental ≡ full).
  void solve_full();

  /// True when a mutation since the last solve may have changed allocations.
  bool needs_solve() const {
    return full_solve_pending_ || !dirty_vars_.empty() || !dirty_cnsts_.empty();
  }

  /// Variables whose allocation changed in the last solve()/solve_full().
  /// Valid until the next solve.
  const std::vector<VarId>& changed_variables() const { return changed_vars_; }

  /// Counters for observing the incremental behaviour (tests/benches).
  struct SolveStats {
    size_t solves = 0;        ///< solve() calls that had dirty work to do
    size_t full_solves = 0;   ///< of which ran the from-scratch path
    size_t vars_visited = 0;  ///< cumulative size of the re-solved subsets
  };
  const SolveStats& solve_stats() const { return stats_; }

private:
  struct Variable;
  struct Element {
    VarId var;
    double coeff;
  };
  struct Constraint {
    double capacity;
    bool shared;
    std::vector<Element> elems;  ///< only live variables: release removes eagerly
  };
  struct Variable {
    double weight;
    double bound;
    double value = 0;
    bool alive = true;
    std::vector<CnstId> cnsts;      ///< constraints this variable uses
    std::vector<double> coeffs;     ///< parallel to cnsts
  };

  void mark_var_dirty(VarId var);
  /// need_traverse: the change affects users beyond the dirtied variable
  /// itself (capacity moved). Shared constraints always traverse.
  void mark_cnst_dirty(CnstId cnst, bool need_traverse);
  /// Progressive filling restricted to the given variables/constraints.
  /// Every live variable of a listed constraint must be listed too.
  void solve_subset(const std::vector<VarId>& svars, const std::vector<CnstId>& scnsts);

  std::vector<Constraint> cnsts_;
  std::vector<Variable> vars_;
  std::vector<VarId> free_vars_;
  size_t live_vars_ = 0;

  // -- dirty tracking --------------------------------------------------------
  std::vector<char> var_dirty_;          ///< indexed by VarId
  std::vector<char> cnst_dirty_;         ///< indexed by CnstId
  std::vector<char> cnst_dirty_traverse_;  ///< closure must reach the users
  std::vector<VarId> dirty_vars_;
  std::vector<CnstId> dirty_cnsts_;
  bool full_solve_pending_ = true;  ///< first solve is always full
  std::vector<VarId> changed_vars_;
  SolveStats stats_;

  // -- persistent scratch (reset only for the affected subset, so that an
  //    incremental solve never pays O(system size)) --------------------------
  std::vector<VarId> affected_vars_;
  std::vector<CnstId> affected_cnsts_;
  std::vector<char> traverse_cnst_;  ///< parallel to affected_cnsts_ in solve()
  std::vector<char> var_in_set_;
  std::vector<char> cnst_in_set_;
  std::vector<char> active_;              ///< all-zero between solves
  std::vector<double> effective_bound_;
  std::vector<double> remaining_;
  std::vector<double> old_values_;        ///< parallel to the subset list
};

}  // namespace sg::core
